module cosmo

go 1.22
