package parallel

import (
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrderPreserved(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i * 3
	}
	for _, workers := range []int{1, 2, 3, 8, 64, 1000, 2000} {
		out := Map(workers, items, func(i int, v int) int { return v + i })
		for i, v := range out {
			if v != i*4 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*4)
			}
		}
	}
}

func TestMapEmptyInput(t *testing.T) {
	out := Map(8, nil, func(i int, v int) int { return v })
	if len(out) != 0 {
		t.Fatalf("empty input produced %d results", len(out))
	}
	out = Map(8, []int{}, func(i int, v int) int { return v })
	if len(out) != 0 {
		t.Fatalf("empty slice produced %d results", len(out))
	}
}

func TestMapWorkersNormalization(t *testing.T) {
	items := []int{1, 2, 3}
	for _, workers := range []int{-5, -1, 0} {
		out := Map(workers, items, func(i int, v int) int { return v * 2 })
		if out[0] != 2 || out[1] != 4 || out[2] != 6 {
			t.Fatalf("workers=%d: wrong results %v", workers, out)
		}
	}
	cfg := Config{Workers: -1}.Normalize(100)
	if cfg.Workers != runtime.GOMAXPROCS(0) && cfg.Workers != 100 {
		t.Errorf("Workers normalized to %d, want GOMAXPROCS or n", cfg.Workers)
	}
	if cfg.Workers < 1 {
		t.Errorf("Workers normalized to %d < 1", cfg.Workers)
	}
	cfg = Config{Workers: 8}.Normalize(3)
	if cfg.Workers != 3 {
		t.Errorf("Workers should clamp to item count: got %d", cfg.Workers)
	}
	cfg = Config{Workers: 4}.Normalize(0)
	if cfg.Workers != 1 {
		t.Errorf("Workers on empty input should floor at 1: got %d", cfg.Workers)
	}
}

// TestMapChunkBoundaries sweeps sizes around every chunk boundary so an
// off-by-one in chunk math (dropping the last partial chunk, double
// processing an edge index) cannot hide.
func TestMapChunkBoundaries(t *testing.T) {
	for _, chunk := range []int{1, 2, 3, 7} {
		for n := 0; n <= 4*chunk+1; n++ {
			items := make([]int, n)
			for i := range items {
				items[i] = i
			}
			var calls atomic.Int64
			out := MapConfig(Config{Workers: 4, ChunkSize: chunk}, items, func(i int, v int) int {
				calls.Add(1)
				return v + 1
			})
			if int(calls.Load()) != n {
				t.Fatalf("chunk=%d n=%d: fn called %d times", chunk, n, calls.Load())
			}
			for i, v := range out {
				if v != i+1 {
					t.Fatalf("chunk=%d n=%d: out[%d] = %d", chunk, n, i, v)
				}
			}
		}
	}
}

func TestMapPanicPropagation(t *testing.T) {
	items := make([]int, 100)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		if !strings.Contains(msg, "boom-42") {
			t.Errorf("panic message lost original value: %q", msg)
		}
		if !strings.Contains(msg, "worker stack") {
			t.Errorf("panic message lost worker stack: %q", msg)
		}
	}()
	Map(8, items, func(i int, v int) int {
		if i == 42 {
			panic("boom-42")
		}
		return v
	})
}

// TestMapPanicFirstChunkWins: with several panicking items the reported
// chunk is the lowest, keeping failures reproducible across schedules.
func TestMapPanicFirstChunkWins(t *testing.T) {
	items := make([]int, 64)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(r.(string), "boom-03") {
			t.Errorf("want lowest-index panic boom-03, got %q", r)
		}
	}()
	MapConfig(Config{Workers: 4, ChunkSize: 1}, items, func(i int, v int) int {
		if i == 3 || i == 40 || i == 63 {
			panic("boom-" + string(rune('0'+i/10)) + string(rune('0'+i%10)))
		}
		return v
	})
}

func TestMapPanicSequentialFastPath(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sequential fast path swallowed panic")
		}
	}()
	Map(1, []int{0}, func(i int, v int) int { panic("seq") })
}

func TestForEach(t *testing.T) {
	items := make([]int, 500)
	out := make([]int64, len(items))
	ForEach(7, items, func(i int, v int) { atomic.AddInt64(&out[i], int64(i)) })
	for i, v := range out {
		if v != int64(i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestParallelMapRaceStress hammers the pool with shared read-only state and
// per-index writes under the race detector.
func TestParallelMapRaceStress(t *testing.T) {
	shared := make([]float64, 4096)
	rng := rand.New(rand.NewSource(7))
	for i := range shared {
		shared[i] = rng.Float64()
	}
	for round := 0; round < 20; round++ {
		items := make([]int, 2000)
		for i := range items {
			items[i] = i
		}
		out := Map(16, items, func(i int, v int) float64 {
			s := 0.0
			for j := 0; j < 64; j++ {
				s += shared[(v*31+j)%len(shared)]
			}
			return s
		})
		if len(out) != len(items) {
			t.Fatal("length mismatch")
		}
	}
}

func BenchmarkMap(b *testing.B) {
	items := make([]int, 1<<14)
	for i := range items {
		items[i] = i
	}
	work := func(i int, v int) float64 {
		s := 0.0
		for j := 0; j < 200; j++ {
			s += float64(v*j) * 1.000001
		}
		return s
	}
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Map(1, items, work)
		}
	})
	b.Run("pool", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Map(0, items, work)
		}
	})
}
