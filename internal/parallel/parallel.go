// Package parallel provides the bounded, order-preserving worker pool
// that the offline pipeline stages fan out on. The contract every caller
// relies on:
//
//   - Order preservation: Map(w, items, fn) returns results[i] = fn(i,
//     items[i]) regardless of worker count or scheduling, so a parallel
//     stage produces byte-identical output to its sequential form as
//     long as fn itself is deterministic per index.
//   - Bounded concurrency: at most Workers goroutines run fn at a time;
//     items are dispatched in contiguous chunks to amortize scheduling.
//   - Panic propagation: a panic inside fn is captured (first one wins,
//     by lowest chunk index) and re-raised on the calling goroutine with
//     the worker's stack appended, after all workers have drained.
//
// Stages stay deterministic under this pool by deriving any randomness
// from a per-index seed (see llm.Teacher and DESIGN.md "Determinism
// under parallelism") and by serializing order-sensitive merges (dedup,
// KG admission) over the order-preserved results.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Config tunes a pool invocation. The zero value is valid: Workers
// defaults to GOMAXPROCS and ChunkSize to an automatic split that gives
// each worker several chunks for load balancing.
type Config struct {
	// Workers is the maximum number of concurrent goroutines; values
	// <= 0 normalize to runtime.GOMAXPROCS(0).
	Workers int
	// ChunkSize is the number of consecutive items dispatched to a
	// worker at a time; values <= 0 pick an automatic size.
	ChunkSize int
}

// Normalize resolves defaulted fields against n pending items.
func (c Config) Normalize(n int) Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > n {
		c.Workers = n
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.ChunkSize <= 0 {
		// ~4 chunks per worker balances load without excessive handoffs.
		c.ChunkSize = (n + c.Workers*4 - 1) / (c.Workers * 4)
		if c.ChunkSize < 1 {
			c.ChunkSize = 1
		}
	}
	return c
}

// panicValue records a captured worker panic plus its stack.
type panicValue struct {
	chunk int
	val   any
	stack []byte
}

// Map applies fn to every item across at most workers goroutines and
// returns the results in input order. workers <= 0 means GOMAXPROCS.
// fn receives the item's index and value; it must not assume anything
// about execution order. A panic in fn propagates to the caller.
func Map[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	return MapConfig(Config{Workers: workers}, items, fn)
}

// MapConfig is Map with explicit chunking control.
func MapConfig[T, R any](cfg Config, items []T, fn func(i int, item T) R) []R {
	n := len(items)
	out := make([]R, n)
	if n == 0 {
		return out
	}
	cfg = cfg.Normalize(n)
	if cfg.Workers == 1 {
		// Fast path: no goroutines, no channels; identical semantics.
		for i := range items {
			out[i] = fn(i, items[i])
		}
		return out
	}

	numChunks := (n + cfg.ChunkSize - 1) / cfg.ChunkSize
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked *panicValue
	)
	next := make(chan int)
	record := func(chunk int, val any) {
		buf := make([]byte, 8192)
		buf = buf[:runtime.Stack(buf, false)]
		mu.Lock()
		if panicked == nil || chunk < panicked.chunk {
			panicked = &panicValue{chunk: chunk, val: val, stack: buf}
		}
		mu.Unlock()
	}
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range next {
				lo := chunk * cfg.ChunkSize
				hi := lo + cfg.ChunkSize
				if hi > n {
					hi = n
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							record(chunk, r)
						}
					}()
					for i := lo; i < hi; i++ {
						out[i] = fn(i, items[i])
					}
				}()
			}
		}()
	}
	for chunk := 0; chunk < numChunks; chunk++ {
		next <- chunk
	}
	close(next)
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("parallel: worker panic on chunk %d: %v\n\nworker stack:\n%s",
			panicked.chunk, panicked.val, panicked.stack))
	}
	return out
}

// ForEach applies fn to every item for its side effects, preserving the
// pool's bounded-concurrency and panic-propagation contract.
func ForEach[T any](workers int, items []T, fn func(i int, item T)) {
	MapConfig(Config{Workers: workers}, items, func(i int, item T) struct{} {
		fn(i, item)
		return struct{}{}
	})
}
