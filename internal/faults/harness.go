package faults

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cosmo/internal/cluster"
	"cosmo/internal/serving"
)

// ClusterHarness is an in-process multi-node serving tier for chaos
// tests: n serving.Deployments, each wrapped as a LocalBackend behind
// its own FaultyBackend transport injector, fronted by one Router. No
// sockets, fully hermetic, race-clean — kill a node mid-run with
// Faults[i].SetDown(true), make it a straggler with SetExtraLatency,
// and assert on the router's counters.
type ClusterHarness struct {
	Deployments []*serving.Deployment
	Faults      []*FaultyBackend
	Router      *cluster.Router
}

// HarnessConfig shapes a ClusterHarness.
type HarnessConfig struct {
	// Nodes is the cluster size (default 3).
	Nodes int
	// Router tunes the router (replication, hedging, breakers...).
	Router cluster.Config
	// Transport is each node's injector config (Seed is offset per
	// node so streams are independent but reproducible).
	Transport TransportConfig
	// Keys are preloaded into every node's yearly cache layer, so
	// /intent?q=<key> answers 200 from any node — the fixed keyspace
	// the chaos load runs over.
	Keys []string
}

// NewClusterHarness assembles the tier. Every deployment is ready, has
// the keys preloaded, and serves through an echo responder; node names
// are "node0".."node<n-1>".
func NewClusterHarness(cfg HarnessConfig) (*ClusterHarness, error) {
	n := cfg.Nodes
	if n <= 0 {
		n = 3
	}
	h := &ClusterHarness{
		Deployments: make([]*serving.Deployment, 0, n),
		Faults:      make([]*FaultyBackend, 0, n),
	}
	specs := make([]cluster.NodeSpec, 0, n)
	for i := 0; i < n; i++ {
		dep := serving.NewDeploymentContext(
			serving.DeployConfig{DailyCacheCap: 1024, QueueCap: 1024},
			serving.ContextResponderFunc(func(ctx context.Context, q string) (serving.Feature, error) {
				if err := ctx.Err(); err != nil {
					return serving.Feature{}, err
				}
				return serving.Feature{Query: q, Intents: []string{"used for " + q}}, nil
			}))
		if len(cfg.Keys) > 0 {
			feats := make([]serving.Feature, 0, len(cfg.Keys))
			now := dep.Clock.Now()
			for _, k := range cfg.Keys {
				feats = append(feats, serving.Feature{
					Query:     k,
					Intents:   []string{"used for " + k},
					Version:   1,
					CreatedAt: now,
				})
			}
			dep.Cache.ReplaceYearly(feats)
		}
		dep.SetReady(true)
		tcfg := cfg.Transport
		tcfg.Seed += int64(i) // independent, reproducible per-node streams
		fb := WrapBackend(cluster.NewLocalBackend(dep), tcfg)
		h.Deployments = append(h.Deployments, dep)
		h.Faults = append(h.Faults, fb)
		specs = append(specs, cluster.NodeSpec{Name: fmt.Sprintf("node%d", i), Backend: fb})
	}
	router, err := cluster.New(specs, cfg.Router)
	if err != nil {
		return nil, err
	}
	h.Router = router
	return h, nil
}

// Lookup routes one /intent query through the harness router.
func (h *ClusterHarness) Lookup(ctx context.Context, key string) (cluster.Result, error) {
	return h.Router.Do(ctx, cluster.Request{
		Key:      key,
		Path:     "/intent",
		RawQuery: "q=" + key,
	})
}

// RunLoad drives workers*perWorker lookups over keys (round-robin per
// worker) and returns each request's latency plus the count of
// client-visible failures. mid, when non-nil, runs exactly once, from
// the worker that completes the halfway-th request — the mid-run hook
// chaos tests use to kill a node with load still in flight.
func (h *ClusterHarness) RunLoad(ctx context.Context, workers, perWorker int, keys []string, mid func()) (latencies []time.Duration, failures int) {
	if workers <= 0 {
		workers = 1
	}
	if perWorker <= 0 {
		perWorker = 1
	}
	lat := make([]time.Duration, workers*perWorker)
	fail := make([]int, workers)
	half := int64(workers * perWorker / 2)
	var completed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := keys[(w*perWorker+i)%len(keys)]
				t0 := time.Now()
				res, err := h.Lookup(ctx, key)
				lat[w*perWorker+i] = time.Since(t0)
				if err != nil || res.Status >= 400 {
					fail[w]++
				}
				if completed.Add(1) == half && mid != nil {
					mid()
				}
			}
		}(w)
	}
	wg.Wait()
	for _, f := range fail {
		failures += f
	}
	return lat, failures
}
