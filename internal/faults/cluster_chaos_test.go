package faults

import (
	"context"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"cosmo/internal/cluster"
)

func chaosKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("chaos-key-%d", i)
	}
	return keys
}

// dumpClusterMetrics appends the router's /metrics body to the file
// named by COSMO_CLUSTER_METRICS — the CI chaos smoke uploads it as an
// artifact.
func dumpClusterMetrics(t *testing.T, h *ClusterHarness) {
	t.Helper()
	path := os.Getenv("COSMO_CLUSTER_METRICS")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("metrics dump: %v", err)
		return
	}
	defer f.Close() //cosmo:lint-ignore dropped-error best-effort artifact dump
	fmt.Fprintf(f, "# %s\n", t.Name())
	h.Router.WriteMetrics(f)
}

func durationQuantile(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lat))
	copy(s, lat)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// TestClusterChaosNodeDeath kills one of three nodes mid-load at
// replication 2 and requires zero client-visible failures plus
// deterministic failover: every key the dead node owned lands on the
// key's next replica from the pre-death preference order, and repeated
// lookups keep landing there.
func TestClusterChaosNodeDeath(t *testing.T) {
	keys := chaosKeys(64)
	h, err := NewClusterHarness(HarnessConfig{
		Nodes: 3,
		Keys:  keys,
		Router: cluster.Config{
			Replication:      2,
			BreakerThreshold: 3,
			BreakerCooldown:  time.Hour, // dead stays dead for this test
		},
	})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	ctx := context.Background()
	h.Router.CheckHealth(ctx)

	// The victim is keys[0]'s primary, so at least its keys must fail
	// over. Record every key's pre-death replica set first.
	before := make(map[string][]string, len(keys))
	for _, k := range keys {
		rs := h.Router.ReplicaSet(k)
		if len(rs) != 2 {
			t.Fatalf("replica set for %q = %v, want 2 nodes", k, rs)
		}
		before[k] = rs
	}
	victimName := before[keys[0]][0]
	victim := -1
	for i := range h.Faults {
		if fmt.Sprintf("node%d", i) == victimName {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("victim %q not found", victimName)
	}

	// The kill is passive-path only: no health probe runs during the
	// load, so detection happens through refused attempts feeding the
	// victim's breaker — failover first, breaker exclusion after.
	lat, failures := h.RunLoad(ctx, 8, 50, keys, func() {
		h.Faults[victim].SetDown(true)
	})
	if !h.Faults[victim].Down() {
		t.Fatal("mid-run hook never fired; the kill did not happen")
	}
	h.Router.CheckHealth(ctx) // the next active probe notices the death
	if failures != 0 {
		t.Fatalf("%d client-visible failures with replication 2 and one node down, want 0", failures)
	}
	if len(lat) != 8*50 {
		t.Fatalf("latencies for %d requests, want %d", len(lat), 8*50)
	}

	// Deterministic failover: the dead node's keys each moved to their
	// next pre-death replica; other keys kept their primary. Same key,
	// same surviving replica — twice.
	for _, k := range keys {
		want := before[k][0]
		if want == victimName {
			want = before[k][1]
		}
		for round := 0; round < 2; round++ {
			rs := h.Router.ReplicaSet(k)
			if len(rs) == 0 || rs[0] != want {
				t.Fatalf("key %q round %d: replica set %v, want primary %s (deterministic failover)",
					k, round, rs, want)
			}
		}
		res, err := h.Lookup(ctx, k)
		if err != nil || res.Status != 200 {
			t.Fatalf("key %q after death: status %d err %v, want 200", k, res.Status, err)
		}
	}

	s := h.Router.Stats()
	if s.Errors != 0 {
		t.Fatalf("router error counter = %d, want 0", s.Errors)
	}
	if s.Failovers == 0 {
		t.Fatal("no failovers recorded although the victim owned keys")
	}
	var victimStats cluster.NodeStats
	for _, n := range s.Nodes {
		if n.Name == victimName {
			victimStats = n
		}
	}
	if victimStats.Health != cluster.HealthDown {
		t.Fatalf("victim health = %v, want down", victimStats.Health)
	}
	if victimStats.Exclusions == 0 {
		t.Fatalf("victim was never excluded from a replica set: %+v", victimStats)
	}
	dumpClusterMetrics(t, h)
}

// TestClusterChaosStragglerHedging makes one of three nodes a 10x
// straggler and requires the hedged read path to keep the client p99
// within 3x the no-fault baseline, with a non-zero hedge-win counter.
func TestClusterChaosStragglerHedging(t *testing.T) {
	// The base latency is deliberately large relative to scheduler noise:
	// the assertion is a ratio against the no-fault baseline, so margin
	// scales with the base. (At 40ms the hedged worst path is
	// ~delay+base ≈ 88ms against a 3x-baseline limit of ~125ms.)
	const base = 40 * time.Millisecond
	keys := chaosKeys(48)
	h, err := NewClusterHarness(HarnessConfig{
		Nodes: 3,
		Keys:  keys,
		Router: cluster.Config{
			Replication:     2,
			MinHedgeSamples: 16,
			HedgeMin:        time.Millisecond,
			HedgeMax:        250 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	ctx := context.Background()
	h.Router.CheckHealth(ctx)
	for _, fb := range h.Faults {
		fb.SetExtraLatency(base) // every node serves at ~20ms
	}

	// Phase A: no straggler. Warms every node's histogram past
	// MinHedgeSamples and measures the no-fault baseline.
	latA, failA := h.RunLoad(ctx, 8, 50, keys, nil)
	if failA != 0 {
		t.Fatalf("%d failures in the no-fault phase", failA)
	}
	baseline := durationQuantile(latA, 0.99)
	if baseline < base {
		t.Fatalf("baseline p99 %v below the injected floor %v; harness is broken", baseline, base)
	}

	// Phase B: node0 serves at 10x. Hedging (delay derived from the
	// healthy nodes' p99) must bound the tail.
	h.Faults[0].SetExtraLatency(10 * base)
	latB, failB := h.RunLoad(ctx, 8, 50, keys, nil)
	if failB != 0 {
		t.Fatalf("%d failures in the straggler phase", failB)
	}
	p99 := durationQuantile(latB, 0.99)
	if limit := 3 * baseline; p99 > limit {
		t.Fatalf("straggler-phase p99 %v exceeds 3x baseline (%v); hedging is not bounding the tail", p99, limit)
	}
	s := h.Router.Stats()
	if s.Hedges == 0 || s.HedgeWins == 0 {
		t.Fatalf("hedges=%d hedgeWins=%d, want both non-zero with a 10x straggler", s.Hedges, s.HedgeWins)
	}
	if s.Errors != 0 {
		t.Fatalf("router error counter = %d, want 0", s.Errors)
	}
	dumpClusterMetrics(t, h)
}
