package faults

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"cosmo/internal/cluster"
)

// Transport-level injected faults, distinguishable from organic node
// errors in tests.
var (
	// ErrRefused simulates a refused connection (node process dead, or
	// a network partition between router and node).
	ErrRefused = errors.New("faults: connection refused (injected)")
)

// TransportConfig sets per-call fault probabilities for a FaultyBackend.
// Rates are clamped to [0, 1] and applied in priority order — refuse,
// hang, 5xx, latency — from a single seeded roll, the same splitmix64
// derivation as the responder injector, so a chaos run is exactly
// reproducible.
type TransportConfig struct {
	// Seed drives the deterministic per-call roll.
	Seed int64
	// RefuseRate is the probability a call fails immediately with
	// ErrRefused, as a dead or partitioned node would.
	RefuseRate float64
	// HangRate is the probability a call blocks until its context is
	// cancelled — a wedged node; the router's attempt timeout bounds it.
	HangRate float64
	// FiveXXRate is the probability a call answers 503 with no body (a
	// 5xx burst is an episode of elevated FiveXXRate bracketed with
	// SetEnabled).
	FiveXXRate float64
	// LatencyRate is the probability a call is delayed by Latency
	// before passing through.
	LatencyRate float64
	// Latency is the injected delay for latency-spiked calls (default
	// 50ms when LatencyRate is set).
	Latency time.Duration
}

func (c TransportConfig) withDefaults() TransportConfig {
	c.RefuseRate = clamp01(c.RefuseRate)
	c.HangRate = clamp01(c.HangRate)
	c.FiveXXRate = clamp01(c.FiveXXRate)
	c.LatencyRate = clamp01(c.LatencyRate)
	if c.Latency <= 0 {
		c.Latency = 50 * time.Millisecond
	}
	return c
}

// TransportStats counts injected transport faults by kind.
type TransportStats struct {
	Calls     uint64 // rolls performed (enabled, non-episode calls)
	Refusals  uint64 // includes down/partition episode refusals
	Hangs     uint64
	FiveXX    uint64
	Latencies uint64
	Clean     uint64
}

// FaultyBackend interposes transport faults in front of a cluster
// Backend: seeded per-call rolls (refused connections, hangs honoring
// ctx, 5xx, latency spikes) plus explicit episode switches — SetDown
// for node death or a partition (every call and health probe refused),
// SetExtraLatency for a straggler episode (a fixed delay added to every
// call, e.g. 10x the healthy latency). Safe for concurrent use.
type FaultyBackend struct {
	inner   cluster.Backend
	cfg     TransportConfig
	enabled atomic.Bool
	down    atomic.Bool
	extraNs atomic.Int64
	calls   atomic.Uint64

	refusals  atomic.Uint64
	hangs     atomic.Uint64
	fivexx    atomic.Uint64
	latencies atomic.Uint64
	clean     atomic.Uint64
}

// WrapBackend builds an enabled FaultyBackend over inner.
func WrapBackend(inner cluster.Backend, cfg TransportConfig) *FaultyBackend {
	f := &FaultyBackend{inner: inner, cfg: cfg.withDefaults()}
	f.enabled.Store(true)
	return f
}

// SetEnabled toggles rate-based injection; a disabled backend passes
// calls through without consuming a roll, so episodes can be bracketed
// without perturbing the deterministic sequence. Episode switches
// (SetDown, SetExtraLatency) act regardless.
func (f *FaultyBackend) SetEnabled(on bool) { f.enabled.Store(on) }

// SetDown starts or ends a death/partition episode: while down, every
// call and every health probe is refused.
func (f *FaultyBackend) SetDown(down bool) { f.down.Store(down) }

// Down reports whether a death/partition episode is active.
func (f *FaultyBackend) Down() bool { return f.down.Load() }

// SetExtraLatency starts (d > 0) or ends (d <= 0) a straggler episode:
// every call is delayed by d before reaching the node. The delay
// honors ctx, so a hedged winner still cancels the straggling loser.
func (f *FaultyBackend) SetExtraLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	f.extraNs.Store(int64(d))
}

// Stats snapshots the fault counters.
func (f *FaultyBackend) Stats() TransportStats {
	return TransportStats{
		Calls:     f.calls.Load(),
		Refusals:  f.refusals.Load(),
		Hangs:     f.hangs.Load(),
		FiveXX:    f.fivexx.Load(),
		Latencies: f.latencies.Load(),
		Clean:     f.clean.Load(),
	}
}

// Do applies episode switches, then one seeded fault roll, then passes
// through to the inner backend.
func (f *FaultyBackend) Do(ctx context.Context, path, rawQuery string) (cluster.Result, error) {
	if f.down.Load() {
		f.refusals.Add(1)
		return cluster.Result{}, ErrRefused
	}
	if extra := time.Duration(f.extraNs.Load()); extra > 0 {
		if err := waitCtx(ctx, extra); err != nil {
			return cluster.Result{}, err
		}
	}
	if f.enabled.Load() {
		u := roll(f.cfg.Seed, f.calls.Add(1)-1)
		switch {
		case u < f.cfg.RefuseRate:
			f.refusals.Add(1)
			return cluster.Result{}, ErrRefused
		case u < f.cfg.RefuseRate+f.cfg.HangRate:
			f.hangs.Add(1)
			<-ctx.Done()
			return cluster.Result{}, ctx.Err()
		case u < f.cfg.RefuseRate+f.cfg.HangRate+f.cfg.FiveXXRate:
			f.fivexx.Add(1)
			return cluster.Result{Status: 503}, nil
		case u < f.cfg.RefuseRate+f.cfg.HangRate+f.cfg.FiveXXRate+f.cfg.LatencyRate:
			f.latencies.Add(1)
			if err := waitCtx(ctx, f.cfg.Latency); err != nil {
				return cluster.Result{}, err
			}
		default:
			f.clean.Add(1)
		}
	}
	return f.inner.Do(ctx, path, rawQuery)
}

// Check refuses health probes while down (a dead node's /readyz is
// unreachable too) and otherwise passes through, so drain states still
// surface.
func (f *FaultyBackend) Check(ctx context.Context) cluster.Health {
	if f.down.Load() {
		return cluster.HealthDown
	}
	return f.inner.Check(ctx)
}

// waitCtx blocks for d or until ctx is done.
func waitCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
