package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"cosmo/internal/cluster"
)

// okClusterBackend is a trivially healthy cluster.Backend.
type okClusterBackend struct{}

func (okClusterBackend) Do(ctx context.Context, path, rawQuery string) (cluster.Result, error) {
	return cluster.Result{Status: 200, Body: []byte("ok")}, nil
}

func (okClusterBackend) Check(ctx context.Context) cluster.Health { return cluster.HealthReady }

func TestTransportInjectorDeterministic(t *testing.T) {
	cfg := TransportConfig{Seed: 42, RefuseRate: 0.2, FiveXXRate: 0.2, LatencyRate: 0.1, Latency: time.Microsecond}
	run := func() TransportStats {
		fb := WrapBackend(okClusterBackend{}, cfg)
		for i := 0; i < 500; i++ {
			_, _ = fb.Do(context.Background(), "/intent", "q=x") //cosmo:lint-ignore dropped-error the injected failures are the point; counted via Stats
		}
		return fb.Stats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("same seed produced different fault streams:\n%+v\n%+v", s1, s2)
	}
	if s1.Refusals == 0 || s1.FiveXX == 0 || s1.Latencies == 0 || s1.Clean == 0 {
		t.Fatalf("expected every configured fault kind to fire over 500 calls: %+v", s1)
	}
	if got := s1.Refusals + s1.FiveXX + s1.Latencies + s1.Clean; got != 500 {
		t.Fatalf("fault kinds sum to %d, want 500", got)
	}
}

func TestTransportInjectorDownEpisode(t *testing.T) {
	fb := WrapBackend(okClusterBackend{}, TransportConfig{})
	if _, err := fb.Do(context.Background(), "/intent", ""); err != nil {
		t.Fatalf("healthy call failed: %v", err)
	}
	if got := fb.Check(context.Background()); got != cluster.HealthReady {
		t.Fatalf("healthy check = %v, want ready", got)
	}
	fb.SetDown(true)
	if _, err := fb.Do(context.Background(), "/intent", ""); !errors.Is(err, ErrRefused) {
		t.Fatalf("down call err = %v, want ErrRefused", err)
	}
	if got := fb.Check(context.Background()); got != cluster.HealthDown {
		t.Fatalf("down check = %v, want down (a dead node's /readyz is unreachable too)", got)
	}
	fb.SetDown(false)
	if _, err := fb.Do(context.Background(), "/intent", ""); err != nil {
		t.Fatalf("recovered call failed: %v", err)
	}
}

func TestTransportInjectorHangHonorsContext(t *testing.T) {
	fb := WrapBackend(okClusterBackend{}, TransportConfig{Seed: 1, HangRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := fb.Do(ctx, "/intent", "")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang err = %v, want the context's deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hang outlived its context by %v", elapsed)
	}
	if fb.Stats().Hangs != 1 {
		t.Fatalf("hangs = %d, want 1", fb.Stats().Hangs)
	}
}

func TestTransportInjectorStragglerHonorsContext(t *testing.T) {
	fb := WrapBackend(okClusterBackend{}, TransportConfig{})
	fb.SetExtraLatency(10 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := fb.Do(ctx, "/intent", ""); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("straggler err = %v, want the context's deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("straggler delay outlived its context by %v", elapsed)
	}
	fb.SetExtraLatency(0)
	if _, err := fb.Do(context.Background(), "/intent", ""); err != nil {
		t.Fatalf("call after episode end failed: %v", err)
	}
}

func TestTransportInjectorDisabledPassesThrough(t *testing.T) {
	fb := WrapBackend(okClusterBackend{}, TransportConfig{Seed: 1, RefuseRate: 1})
	fb.SetEnabled(false)
	for i := 0; i < 10; i++ {
		if _, err := fb.Do(context.Background(), "/intent", ""); err != nil {
			t.Fatalf("disabled injector still injected: %v", err)
		}
	}
	if s := fb.Stats(); s.Calls != 0 {
		t.Fatalf("disabled injector consumed %d rolls, want 0 (episodes must not perturb the sequence)", s.Calls)
	}
}
