// Package faults is a seeded, deterministic fault injector for chaos
// testing the serving stack. An Injector wraps any
// serving.ContextResponder and, per call, rolls one of: an injected
// error, a latency spike, a hang that honors context cancellation, a
// panic, or clean passthrough. The roll is a pure function of
// (seed, call index) — the same splitmix64 derivation the resilience
// layer uses for backoff jitter — so a chaos run is exactly
// reproducible: same seed, same call order, same faults. No global
// math/rand state is touched (seeded-rand lint contract) and no wall
// clock is read (wallclock lint contract; the latency spike uses a
// timer, not time.Now).
package faults

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"cosmo/internal/serving"
)

// ErrInjected is the error returned by injected failures, so tests and
// callers can distinguish chaos from organic responder errors.
var ErrInjected = errors.New("faults: injected failure")

// Config sets per-call fault probabilities. Rates are clamped to [0, 1]
// and applied in priority order — panic, hang, latency, error — from a
// single roll, so their sum (capped at 1) is the total fault rate.
type Config struct {
	// Seed drives the deterministic per-call roll.
	Seed int64
	// ErrorRate is the probability a call fails immediately with
	// ErrInjected.
	ErrorRate float64
	// LatencyRate is the probability a call is delayed by Latency
	// before passing through (the call still succeeds — slow, not
	// broken — which is how it exercises caller timeouts).
	LatencyRate float64
	// Latency is the injected delay for latency-spike calls (default
	// 50ms when a LatencyRate is set).
	Latency time.Duration
	// HangRate is the probability a call blocks until its context is
	// cancelled, simulating a wedged backend. Callers must bound calls
	// with a context deadline (the serving resilience layer does).
	HangRate float64
	// PanicRate is the probability a call panics, exercising recover
	// paths.
	PanicRate float64
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

func (c Config) withDefaults() Config {
	c.ErrorRate = clamp01(c.ErrorRate)
	c.LatencyRate = clamp01(c.LatencyRate)
	c.HangRate = clamp01(c.HangRate)
	c.PanicRate = clamp01(c.PanicRate)
	if c.Latency <= 0 {
		c.Latency = 50 * time.Millisecond
	}
	return c
}

// Stats counts injected faults by kind.
type Stats struct {
	Calls     uint64 // rolls performed (enabled calls only)
	Errors    uint64
	Latencies uint64
	Hangs     uint64
	Panics    uint64
	Clean     uint64
}

// Injector decides, per call, whether to inject a fault. Safe for
// concurrent use; the call counter is atomic and each roll is pure.
type Injector struct {
	cfg     Config
	enabled atomic.Bool
	calls   atomic.Uint64

	errors    atomic.Uint64
	latencies atomic.Uint64
	hangs     atomic.Uint64
	panics    atomic.Uint64
	clean     atomic.Uint64
}

// New builds an enabled injector.
func New(cfg Config) *Injector {
	i := &Injector{cfg: cfg.withDefaults()}
	i.enabled.Store(true)
	return i
}

// SetEnabled toggles injection; a disabled injector passes every call
// through without consuming a roll, so chaos episodes can be bracketed
// mid-run without perturbing the deterministic sequence.
func (i *Injector) SetEnabled(on bool) { i.enabled.Store(on) }

// Enabled reports whether faults are being injected.
func (i *Injector) Enabled() bool { return i.enabled.Load() }

// Stats snapshots the fault counters.
func (i *Injector) Stats() Stats {
	return Stats{
		Calls:     i.calls.Load(),
		Errors:    i.errors.Load(),
		Latencies: i.latencies.Load(),
		Hangs:     i.hangs.Load(),
		Panics:    i.panics.Load(),
		Clean:     i.clean.Load(),
	}
}

// roll derives a uniform value in [0, 1) for call index n — splitmix64
// finalization, matching the resilience layer's jitter derivation.
func roll(seed int64, n uint64) float64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(n+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1 << 53)
}

// Inject performs one fault decision: it returns nil for passthrough,
// ErrInjected for an injected error, blocks until ctx is done for a
// hang (returning ctx.Err()), sleeps for a latency spike (then returns
// nil), or panics. Callers invoke it before their real work.
func (i *Injector) Inject(ctx context.Context) error {
	if !i.enabled.Load() {
		return nil
	}
	u := roll(i.cfg.Seed, i.calls.Add(1)-1)
	switch {
	case u < i.cfg.PanicRate:
		i.panics.Add(1)
		panic(ErrInjected)
	case u < i.cfg.PanicRate+i.cfg.HangRate:
		i.hangs.Add(1)
		<-ctx.Done()
		return ctx.Err()
	case u < i.cfg.PanicRate+i.cfg.HangRate+i.cfg.LatencyRate:
		i.latencies.Add(1)
		t := time.NewTimer(i.cfg.Latency)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case u < i.cfg.PanicRate+i.cfg.HangRate+i.cfg.LatencyRate+i.cfg.ErrorRate:
		i.errors.Add(1)
		return ErrInjected
	}
	i.clean.Add(1)
	return nil
}

// faultyResponder interposes an Injector in front of a responder.
type faultyResponder struct {
	inner serving.ContextResponder
	inj   *Injector
}

func (f *faultyResponder) RespondContext(ctx context.Context, query string) (serving.Feature, error) {
	if err := f.inj.Inject(ctx); err != nil {
		return serving.Feature{}, err
	}
	return f.inner.RespondContext(ctx, query)
}

// Wrap interposes the injector in front of inner: each call first runs
// one fault decision, and only clean or latency-spiked calls reach the
// inner responder. Wrap composes under serving.NewResilient, which is
// exactly how the chaos tests (and cosmo-serve's -fault-rate mode)
// assemble the stack: Resilient(faults.Wrap(model)).
func Wrap(inner serving.ContextResponder, inj *Injector) serving.ContextResponder {
	return &faultyResponder{inner: inner, inj: inj}
}

// Sequence is a deterministic boolean stream for client-side chaos
// (cosmo-loadgen aborts requests mid-flight at a seeded rate). Each
// Next() consumes one roll.
type Sequence struct {
	seed int64
	rate float64
	n    atomic.Uint64
}

// NewSequence builds a sequence firing true at the given rate.
func NewSequence(seed int64, rate float64) *Sequence {
	return &Sequence{seed: seed, rate: clamp01(rate)}
}

// Next reports whether the next event should be injected.
func (s *Sequence) Next() bool {
	return roll(s.seed, s.n.Add(1)-1) < s.rate
}
