package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cosmo/internal/kg"
	"cosmo/internal/serving"
)

// okResponder is the healthy model backend behind the injector.
func okResponder() serving.ContextResponder {
	return serving.ContextResponderFunc(func(ctx context.Context, q string) (serving.Feature, error) {
		if err := ctx.Err(); err != nil {
			return serving.Feature{}, err
		}
		return serving.Feature{Query: q, Intents: []string{"used for " + q}}, nil
	})
}

// TestChaosServingSurvivesFaults is the acceptance chaos test: a
// deployment whose responder errors (>=20%), hangs, panics and lags is
// hammered concurrently under -race. Every request must be served
// without blocking, and once the faults stop, the accounting ledger
// must balance exactly — no query silently lost.
func TestChaosServingSurvivesFaults(t *testing.T) {
	inj := New(Config{
		Seed:        99,
		ErrorRate:   0.20,
		HangRate:    0.05,
		PanicRate:   0.05,
		LatencyRate: 0.05,
		Latency:     time.Millisecond,
	})
	res := serving.NewResilient(Wrap(okResponder(), inj), serving.ResilienceConfig{
		CallTimeout:      5 * time.Millisecond,
		MaxRetries:       1,
		BackoffBase:      100 * time.Microsecond,
		BackoffMax:       time.Millisecond,
		Seed:             99,
		BreakerThreshold: 10,
		BreakerCooldown:  20 * time.Millisecond,
		BreakerProbes:    1,
	})
	d := serving.NewDeploymentContext(serving.DeployConfig{DailyCacheCap: 256, QueueCap: 512}, res)
	d.SetReady(true)

	const (
		workers = 8
		perW    = 500
		keys    = 256
	)
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		// Batch processor churns concurrently with the request traffic,
		// exactly as StartWorker does in production.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					d.RunBatchContext(context.Background(), 32)
				}
			}
		}()
		var tw sync.WaitGroup
		for w := 0; w < workers; w++ {
			tw.Add(1)
			go func(w int) {
				defer tw.Done()
				for i := 0; i < perW; i++ {
					d.HandleQuery(fmt.Sprintf("q%d", (w*perW+i)%keys))
				}
			}(w)
		}
		tw.Wait()
		close(stop)
		wg.Wait()
	}()
	select {
	case <-chaosDone:
	case <-time.After(60 * time.Second):
		t.Fatal("hot path blocked: chaos traffic did not complete")
	}

	// The hot path served every request: each HandleQuery recorded a hit
	// or a miss, regardless of responder health.
	cs := d.Cache.Stats()
	if got := cs.Hits + cs.Misses; got != workers*perW {
		t.Errorf("served %d lookups, want %d", got, workers*perW)
	}

	// Quiesce: stop injecting and drain until the queue empties (the
	// breaker may need a cooldown to re-close along the way).
	inj.SetEnabled(false)
	deadline := time.After(30 * time.Second)
	for d.Cache.Stats().BatchQueued > 0 {
		select {
		case <-deadline:
			t.Fatalf("queue never drained after faults stopped: %d left", d.Cache.Stats().BatchQueued)
		default:
			d.RunBatchContext(context.Background(), 64)
		}
	}
	if got := res.BreakerState(); got != serving.BreakerClosed {
		t.Errorf("breaker = %v after recovery, want closed", got)
	}

	// Conservation ledger at quiescence. Enqueue side: every ring push
	// (fresh miss or requeue) was drained, or dropped by the overflow
	// policy, or is still queued (zero here). Serving side: every
	// drained query succeeded or failed, and every failure was requeued
	// or dropped with a metric.
	cs = d.Cache.Stats()
	bt := d.BatchTotals()
	drained := bt.Succeeded + bt.Failed
	pushes := uint64(cs.BatchEnqueued + cs.BatchRequeued)
	if pushes != drained+uint64(cs.BatchDropped)+uint64(cs.BatchQueued) {
		t.Errorf("ledger broken: pushes=%d drained=%d dropped=%d queued=%d",
			pushes, drained, cs.BatchDropped, cs.BatchQueued)
	}
	if bt.Failed != bt.Requeued+bt.RequeueDropped {
		t.Errorf("failure ledger broken: failed=%d requeued=%d requeue-dropped=%d",
			bt.Failed, bt.Requeued, bt.RequeueDropped)
	}
	if uint64(cs.BatchRequeued) != bt.Requeued {
		t.Errorf("requeue counters disagree: cache=%d deployment=%d", cs.BatchRequeued, bt.Requeued)
	}
	if bt.Succeeded == 0 {
		t.Error("no query ever succeeded under 35%% total fault rate with retries")
	}
	// Injected panics were recovered, not fatal (this test is running).
	if s := inj.Stats(); s.Panics == 0 || s.Hangs == 0 || s.Errors == 0 {
		t.Errorf("chaos run did not exercise all fault kinds: %+v", s)
	}
}

// TestChaosBreakerOpensAndRecloses drives the full breaker cycle with a
// deterministic outage episode: closed under healthy traffic, open
// after threshold consecutive failures (rejecting fast), half-open
// after the cooldown, closed again once probes succeed.
func TestChaosBreakerOpensAndRecloses(t *testing.T) {
	clock := serving.NewFakeClock(time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC))
	inj := New(Config{Seed: 5, ErrorRate: 1})
	inj.SetEnabled(false) // healthy to start
	res := serving.NewResilient(Wrap(okResponder(), inj), serving.ResilienceConfig{
		CallTimeout:      50 * time.Millisecond,
		MaxRetries:       -1,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Second,
		BreakerProbes:    2,
		Clock:            clock,
		Seed:             5,
	})
	call := func(q string) error {
		_, err := res.RespondContext(context.Background(), q)
		return err
	}

	for i := 0; i < 5; i++ {
		if err := call("healthy"); err != nil {
			t.Fatalf("healthy call %d: %v", i, err)
		}
	}
	if got := res.BreakerState(); got != serving.BreakerClosed {
		t.Fatalf("state = %v under healthy traffic", got)
	}

	// Outage: threshold consecutive failures trip the breaker.
	inj.SetEnabled(true)
	for i := 0; i < 3; i++ {
		if err := call("outage"); !errors.Is(err, ErrInjected) {
			t.Fatalf("outage call %d: %v", i, err)
		}
	}
	if got := res.BreakerState(); got != serving.BreakerOpen {
		t.Fatalf("state = %v after threshold failures, want open", got)
	}
	if err := call("rejected"); !errors.Is(err, serving.ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v, want fail-fast rejection", err)
	}
	if got := inj.Stats().Errors; got != 3 {
		t.Fatalf("inner responder saw %d calls while open, want 3 (fail-fast)", got)
	}

	// Cooldown elapses; the backend heals; the first probe is admitted.
	clock.Advance(2 * time.Second)
	inj.SetEnabled(false)
	if err := call("probe1"); err != nil {
		t.Fatalf("probe 1: %v", err)
	}
	if got := res.BreakerState(); got != serving.BreakerHalfOpen {
		t.Fatalf("state = %v after first probe, want half-open (2 probes required)", got)
	}
	if err := call("probe2"); err != nil {
		t.Fatalf("probe 2: %v", err)
	}
	if got := res.BreakerState(); got != serving.BreakerClosed {
		t.Fatalf("state = %v after probe quorum, want closed", got)
	}
	rs := res.ResilienceStats()
	if rs.BreakerOpens != 1 || rs.BreakerRejects != 1 {
		t.Errorf("opens=%d rejects=%d, want 1/1", rs.BreakerOpens, rs.BreakerRejects)
	}
}

// TestChaosRefreshAtomicUnderFaults: a DailyRefresh driven through a
// fault-injecting responder fails without installing anything — the
// previous model version, yearly layer and KG snapshot keep serving —
// and the same refresh succeeds once the faults stop.
func TestChaosRefreshAtomicUnderFaults(t *testing.T) {
	d := serving.NewDeployment(serving.DeployConfig{DailyCacheCap: 64},
		serving.ResponderFunc(func(q string) serving.Feature {
			return serving.Feature{Query: q, Intents: []string{"v1"}}
		}))
	world := kg.New()
	world.AddNode(kg.Node{ID: "p1", Label: "tent", Type: kg.NodeProduct})
	snap := world.Freeze()
	d.SetKG(snap)
	for i := 0; i < 4; i++ {
		for j := 0; j <= 4-i; j++ {
			d.HandleQuery(fmt.Sprintf("hot-%d", i))
		}
	}
	if err := d.DailyRefresh(serving.ResponderFunc(func(q string) serving.Feature {
		return serving.Feature{Query: q, Intents: []string{"v2"}}
	}), nil, 4); err != nil {
		t.Fatalf("baseline refresh: %v", err)
	}

	inj := New(Config{Seed: 11, ErrorRate: 1})
	faulty := serving.NewResilient(Wrap(okResponder(), inj), serving.ResilienceConfig{
		CallTimeout: 10 * time.Millisecond,
		MaxRetries:  1,
		BackoffBase: 100 * time.Microsecond,
		Seed:        11,
	})
	err := d.DailyRefreshContext(context.Background(), faulty, nil, 4)
	if err == nil {
		t.Fatal("refresh through a 100% faulty responder succeeded")
	}
	if got := d.Version(); got != 2 {
		t.Errorf("version = %d after failed refresh, want 2", got)
	}
	if d.KG() != snap {
		t.Error("failed refresh swapped the KG snapshot")
	}
	for i := 0; i < 4; i++ {
		f, ok := d.Cache.Lookup(fmt.Sprintf("hot-%d", i))
		if !ok || f.Version != 2 || len(f.Intents) != 1 || f.Intents[0] != "v2" {
			t.Errorf("yearly entry hot-%d corrupted by failed refresh: %+v ok=%v", i, f, ok)
		}
	}
	if got := d.BatchTotals().RefreshFails; got != 1 {
		t.Errorf("refresh failure metric = %d, want 1", got)
	}

	// Faults stop; the identical refresh commits.
	inj.SetEnabled(false)
	if err := d.DailyRefreshContext(context.Background(), faulty, nil, 4); err != nil {
		t.Fatalf("healed refresh: %v", err)
	}
	if got := d.Version(); got != 3 {
		t.Errorf("version = %d after healed refresh, want 3", got)
	}
}
