package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"cosmo/internal/serving"
)

// outcomes classifies 1+MaxRetries of Inject results for determinism
// comparison: "panic", "err", or "ok".
func outcomes(inj *Injector, n int) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = func() (kind string) {
			defer func() {
				if recover() != nil {
					kind = "panic"
				}
			}()
			if err := inj.Inject(context.Background()); err != nil {
				return "err"
			}
			return "ok"
		}()
	}
	return out
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, ErrorRate: 0.4, PanicRate: 0.1}
	a := outcomes(New(cfg), 300)
	b := outcomes(New(cfg), 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %s vs %s", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c := outcomes(New(cfg), 300)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced an identical fault sequence")
	}
}

func TestInjectorRatesAndConservation(t *testing.T) {
	inj := New(Config{Seed: 7, ErrorRate: 0.25})
	const n = 20000
	injected := 0
	for i := 0; i < n; i++ {
		if inj.Inject(context.Background()) != nil {
			injected++
		}
	}
	rate := float64(injected) / n
	if rate < 0.20 || rate > 0.30 {
		t.Errorf("observed error rate %.3f, want ~0.25", rate)
	}
	s := inj.Stats()
	if s.Calls != n {
		t.Errorf("calls = %d, want %d", s.Calls, n)
	}
	if s.Errors+s.Latencies+s.Hangs+s.Panics+s.Clean != s.Calls {
		t.Errorf("stats do not conserve: %+v", s)
	}
}

func TestInjectorHangHonorsContext(t *testing.T) {
	inj := New(Config{Seed: 1, HangRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := inj.Inject(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang returned %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang ignored cancellation for %v", elapsed)
	}
}

func TestInjectorLatencySpike(t *testing.T) {
	inj := New(Config{Seed: 1, LatencyRate: 1, Latency: time.Millisecond})
	if err := inj.Inject(context.Background()); err != nil {
		t.Fatalf("latency spike failed the call: %v", err)
	}
	// A cancelled context cuts the spike short with its error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := inj.Inject(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled latency spike returned %v", err)
	}
}

func TestInjectorDisabledPassesThrough(t *testing.T) {
	inj := New(Config{Seed: 1, ErrorRate: 1})
	inj.SetEnabled(false)
	for i := 0; i < 10; i++ {
		if err := inj.Inject(context.Background()); err != nil {
			t.Fatalf("disabled injector injected: %v", err)
		}
	}
	if got := inj.Stats().Calls; got != 0 {
		t.Errorf("disabled injector consumed %d rolls", got)
	}
	inj.SetEnabled(true)
	if err := inj.Inject(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("re-enabled injector returned %v", err)
	}
}

func TestWrapComposition(t *testing.T) {
	base := serving.ContextResponderFunc(func(ctx context.Context, q string) (serving.Feature, error) {
		return serving.Feature{Query: q, Intents: []string{"real"}}, nil
	})
	inj := New(Config{Seed: 3, ErrorRate: 1})
	wrapped := Wrap(base, inj)
	if _, err := wrapped.RespondContext(context.Background(), "q"); !errors.Is(err, ErrInjected) {
		t.Fatalf("wrapped call returned %v, want ErrInjected", err)
	}
	inj.SetEnabled(false)
	f, err := wrapped.RespondContext(context.Background(), "q")
	if err != nil || len(f.Intents) != 1 {
		t.Fatalf("passthrough = %+v, %v", f, err)
	}
}

func TestSequenceDeterministicRate(t *testing.T) {
	a := NewSequence(9, 0.3)
	b := NewSequence(9, 0.3)
	fires := 0
	const n = 10000
	for i := 0; i < n; i++ {
		av, bv := a.Next(), b.Next()
		if av != bv {
			t.Fatalf("sequences with the same seed diverged at %d", i)
		}
		if av {
			fires++
		}
	}
	rate := float64(fires) / n
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("fire rate %.3f, want ~0.3", rate)
	}
}
