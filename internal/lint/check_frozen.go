package lint

import (
	"go/ast"
	"strings"
)

// frozenServingCheck keeps the serving read path on the immutable
// kg.Snapshot. Every query method of the mutable kg.Graph takes the
// graph's RWMutex; calling one from the request path reintroduces the
// lock contention the frozen-snapshot design exists to remove, and a
// single stray call can hide until production load makes it visible.
// Packages listed in Config.FrozenServingPaths must obtain their view
// via Graph.Freeze() and query the snapshot; the Graph's constructive
// API (AddNode, AddEdge, Freeze, serialization) remains legal so those
// packages can still build and persist graphs.
var frozenServingCheck = Check{
	Name:     "frozen-serving",
	Doc:      "serving-path packages must query frozen kg.Snapshot views, not the locked kg.Graph",
	Severity: SeverityError,
	Run:      runFrozenServing,
}

// frozenGraphMethods are the lock-taking query methods of kg.Graph that
// have a Snapshot equivalent. Constructive and serialization methods
// (AddNode, AddEdge, Freeze, WriteGob, WriteTSV, ...) are not listed:
// the serving path may legitimately freeze or persist a graph.
var frozenGraphMethods = map[string]bool{
	"Node":            true,
	"Nodes":           true,
	"Edges":           true,
	"EdgesFrom":       true,
	"EdgesTo":         true,
	"EdgesByRelation": true,
	"EdgesInDomain":   true,
	"IntentionsFor":   true,
	"RelatedProducts": true,
	"BuildHierarchy":  true,
	"ComputeStats":    true,
	"Subgraph":        true,
	"NumNodes":        true,
	"NumEdges":        true,
	"NumRelations":    true,
}

// kgGraphRecv is the funcKey receiver prefix of kg.Graph's pointer
// methods.
const kgGraphRecv = "(*cosmo/internal/kg.Graph)."

func runFrozenServing(p *Pass) {
	if !pathInAny(p.Pkg.Path(), p.Config.FrozenServingPaths) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			key := funcKey(calleeFunc(p.Info, call))
			if !strings.HasPrefix(key, kgGraphRecv) {
				return true
			}
			method := strings.TrimPrefix(key, kgGraphRecv)
			if !frozenGraphMethods[method] {
				return true
			}
			p.Reportf(call.Pos(), "frozen-serving",
				"(*kg.Graph).%s takes the graph lock on the serving path; freeze a kg.Snapshot and query that instead", method)
			return true
		})
	}
}
