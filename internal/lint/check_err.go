package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// droppedErrorCheck forbids silently discarding errors: a call whose
// error result is never bound (a bare expression statement) or is
// assigned to the blank identifier. A knowledge pipeline that drops an
// error mid-stage produces a silently truncated KG — the worst failure
// mode for a system whose whole point is coverage. Intentional drops
// (best-effort HTTP response writes, merge-dedup inserts) must carry a
// //cosmo:lint-ignore directive saying why the error is unactionable,
// or appear in Config.ErrorAllowlist.
var droppedErrorCheck = Check{
	Name:     "dropped-error",
	Doc:      "forbid error returns dropped as bare statements or assigned to _",
	Severity: SeverityError,
	Run:      runDroppedError,
}

var errorType = types.Universe.Lookup("error").Type()

func runDroppedError(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if pos, ok := dropsError(p, call); ok {
					p.Reportf(pos, "dropped-error",
						"result %s of %s is discarded; handle the error or suppress with a reasoned //cosmo:lint-ignore",
						errorResultLabel(p, call), calleeLabel(p, call))
				}
			case *ast.AssignStmt:
				checkBlankErrorAssign(p, stmt)
			}
			return true
		})
	}
}

// checkBlankErrorAssign flags `_ = fallible()` and `v, _ := twoValued()`
// when the blanked position carries an error.
func checkBlankErrorAssign(p *Pass, stmt *ast.AssignStmt) {
	// Single call returning multiple values: a, _ := f().
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := p.Info.Types[stmt.Rhs[0]].Type.(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range stmt.Lhs {
			if i >= tuple.Len() || !isBlank(lhs) || !types.Identical(tuple.At(i).Type(), errorType) {
				continue
			}
			if allowedCallee(p, call) {
				continue
			}
			p.Reportf(lhs.Pos(), "dropped-error",
				"error result of %s assigned to _; handle it or suppress with a reasoned //cosmo:lint-ignore",
				calleeLabel(p, call))
		}
		return
	}
	// Pairwise assignments: _ = f() (and _, _ = f(), g()).
	if len(stmt.Lhs) != len(stmt.Rhs) {
		return
	}
	for i, lhs := range stmt.Lhs {
		if !isBlank(lhs) {
			continue
		}
		rhs := ast.Unparen(stmt.Rhs[i])
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		tv, ok := p.Info.Types[stmt.Rhs[i]]
		if !ok || !types.Identical(tv.Type, errorType) {
			continue
		}
		if allowedCallee(p, call) {
			continue
		}
		p.Reportf(lhs.Pos(), "dropped-error",
			"error result of %s assigned to _; handle it or suppress with a reasoned //cosmo:lint-ignore",
			calleeLabel(p, call))
	}
}

// dropsError reports whether the call produces an error that the bare
// statement discards, returning the position to report at.
func dropsError(p *Pass, call *ast.CallExpr) (token.Pos, bool) {
	if allowedCallee(p, call) {
		return token.NoPos, false
	}
	tv, ok := p.Info.Types[call]
	if !ok {
		return token.NoPos, false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return call.Pos(), true
			}
		}
	default:
		if types.Identical(tv.Type, errorType) {
			return call.Pos(), true
		}
	}
	return token.NoPos, false
}

// allowedCallee reports whether the call resolves to a function on the
// config's dropped-error allowlist.
func allowedCallee(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return false
	}
	key := funcKey(fn)
	for _, allowed := range p.Config.ErrorAllowlist {
		if key == allowed {
			return true
		}
	}
	return false
}

// calleeLabel renders the callee for a diagnostic ("kg.AddEdge",
// "(*json.Encoder).Encode", or "call" when unresolvable).
func calleeLabel(p *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return "call"
	}
	if key := funcKey(fn); key != "" {
		return key
	}
	return fn.Name()
}

// errorResultLabel says which result is the error ("error" for a
// single result, "#2 (error)" for tuples).
func errorResultLabel(p *Pass, call *ast.CallExpr) string {
	tv, ok := p.Info.Types[call]
	if !ok {
		return "error"
	}
	if t, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return labelForIndex(i, t.Len())
			}
		}
	}
	return "error"
}

func labelForIndex(i, n int) string {
	if n == 1 {
		return "error"
	}
	return fmt.Sprintf("#%d (error)", i+1)
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
