package lint

import (
	"go/ast"
	"go/types"
)

// ctxPropagationCheck enforces the PR 5 responder contract on
// serving-path packages (Config.CtxPaths): cancellation must flow from
// the caller to every callee that can honor it. Two rules:
//
//  1. context.Background() and context.TODO() are banned outside
//     package main — a library function that mints a root context has
//     severed the caller's deadline and cancellation. Tests are never
//     loaded by the lint driver, so they stay free to use Background.
//  2. A function that receives a context.Context must not call the
//     context-less variant of a callee that has a Context sibling
//     (Foo vs FooContext, m.Bar vs m.BarContext): calling RunBatch
//     while holding a ctx silently re-roots the work at Background via
//     the legacy bridge.
//
// The sibling rule is a naming-convention heuristic — it cannot see
// callees whose ctx-taking variant lives under an unrelated name — so
// the check is warn severity; the module still holds itself to zero
// findings at warn.
var ctxPropagationCheck = Check{
	Name:     "ctx-propagation",
	Doc:      "serving-path packages must thread ctx: no Background/TODO outside main, no ctx-less calls when a Context sibling exists",
	Severity: SeverityWarn,
	Run:      runCtxPropagation,
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter, using type info to look through aliases.
func hasCtxParam(info *types.Info, ftype *ast.FuncType) bool {
	if ftype == nil || ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// takesCtx reports whether fn's own signature accepts a
// context.Context parameter.
func takesCtx(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// contextSibling returns the name of fn's Context-taking sibling
// (Foo -> FooContext, with a context.Context parameter), or "".
func contextSibling(fn *types.Func) string {
	want := fn.Name() + "Context"
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || fn.Pkg() == nil {
		return ""
	}
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), want)
	} else {
		obj = fn.Pkg().Scope().Lookup(want)
	}
	sib, ok := obj.(*types.Func)
	if !ok || !takesCtx(sib) {
		return ""
	}
	return want
}

func runCtxPropagation(p *Pass) {
	if !pathInAny(p.Pkg.Path(), p.Config.CtxPaths) {
		return
	}
	isMain := p.Pkg.Name() == "main"
	forEachFuncBody(p.Files, func(fb funcBody) {
		holdsCtx := hasCtxParam(p.Info, fb.ftype)
		inspectShallow(fb.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil {
				return true
			}
			if pkgPath, name, ok := pkgFuncName(fn); ok && pkgPath == "context" && (name == "Background" || name == "TODO") {
				if !isMain {
					p.Reportf(call.Pos(), "ctx-propagation",
						"context.%s severs the caller's cancellation and deadline; accept a ctx parameter and thread it (package main is the only legitimate root)",
						name)
				}
				return true
			}
			if holdsCtx && !takesCtx(fn) {
				if sib := contextSibling(fn); sib != "" {
					p.Reportf(call.Pos(), "ctx-propagation",
						"this function holds a ctx but calls %s, which has a Context sibling; call %s(ctx, ...) so cancellation propagates",
						fn.Name(), sib)
				}
			}
			return true
		})
	})
}
