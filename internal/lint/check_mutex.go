package lint

import (
	"go/ast"
	"go/types"
)

// mutexHygieneCheck guards the two lock mistakes that survive go vet
// and code review alike:
//
//  1. A type containing a sync.Mutex/RWMutex passed or received by
//     value. The copy has its own lock state, so the "critical
//     section" silently stops excluding anything. (go vet's copylocks
//     catches assignments, but a by-value receiver or parameter on
//     your own type is legal and compiles clean.)
//  2. A Lock()/RLock() in a function with several return paths and no
//     matching defer Unlock()/RUnlock(). One early return added later
//     leaks the lock and deadlocks the serving layer under load —
//     exactly the failure mode heavy-traffic code cannot afford.
var mutexHygieneCheck = Check{
	Name:     "mutex-hygiene",
	Doc:      "forbid by-value mutex params/receivers and non-deferred unlocks on multi-return functions",
	Severity: SeverityError,
	Run:      runMutexHygiene,
}

func runMutexHygiene(p *Pass) {
	byValueMutexes(p)
	leakedLocks(p)
}

// byValueMutexes flags receivers and parameters whose non-pointer type
// transitively contains a mutex.
func byValueMutexes(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			var fields []*ast.Field
			if fd.Recv != nil {
				fields = append(fields, fd.Recv.List...)
			}
			if fd.Type.Params != nil {
				fields = append(fields, fd.Type.Params.List...)
			}
			for _, field := range fields {
				tv, ok := p.Info.Types[field.Type]
				if !ok {
					continue
				}
				if _, isPtr := tv.Type.(*types.Pointer); isPtr {
					continue
				}
				locker := lockerName(tv.Type)
				if locker == "" {
					continue
				}
				kind := "parameter"
				if fd.Recv != nil && len(fd.Recv.List) > 0 && field == fd.Recv.List[0] {
					kind = "receiver"
				}
				p.Reportf(field.Type.Pos(), "mutex-hygiene",
					"%s %s of %s contains %s and is passed by value; the copy locks nothing — use a pointer",
					kind, exprText(field.Type), fd.Name.Name, locker)
			}
		}
	}
}

// lockSite is one Lock/RLock call found in a function body.
type lockSite struct {
	call   *ast.CallExpr
	method string // "Lock" or "RLock"
	recv   string // receiver expression text, e.g. "s.mu"
}

// unlockFor maps a lock method to its releasing counterpart.
func unlockFor(method string) string {
	if method == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// leakedLocks flags Lock/RLock calls in function scopes that have
// multiple return statements but no deferred matching unlock on the
// same receiver expression.
func leakedLocks(p *Pass) {
	forEachFuncBody(p.Files, func(fb funcBody) {
		var locks []lockSite
		deferred := map[string]bool{} // "Unlock s.mu" -> true
		inspectShallow(fb.body, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.DeferStmt:
				if m, recv := syncLockMethod(p.Info, stmt.Call); m == "Unlock" || m == "RUnlock" {
					deferred[m+" "+recv] = true
				}
			case *ast.CallExpr:
				if m, recv := syncLockMethod(p.Info, stmt); m == "Lock" || m == "RLock" {
					locks = append(locks, lockSite{call: stmt, method: m, recv: recv})
				}
			}
			return true
		})
		if len(locks) == 0 {
			return
		}
		returns := countReturns(fb.body)
		if returns < 2 {
			return
		}
		for _, l := range locks {
			want := unlockFor(l.method)
			if deferred[want+" "+l.recv] {
				continue
			}
			p.Reportf(l.call.Pos(), "mutex-hygiene",
				"%s.%s() in a function with %d return paths and no defer %s.%s(); an early return leaks the lock",
				l.recv, l.method, returns, l.recv, want)
		}
	})
}
