package lint

import (
	"go/ast"
	"go/types"
)

// wallclockCheck keeps wall-clock reads out of deterministic code. The
// pipeline, simulator, and training stages must produce identical
// output for identical seeds; a time.Now() hiding in one of them makes
// two runs diverge in ways no seed can reproduce. Serving and
// measurement packages legitimately read the clock and are allowlisted
// via Config.WallclockAllow — everything else must take timestamps as
// inputs or go through an injected Clock (see serving.Clock).
var wallclockCheck = Check{
	Name:     "wallclock",
	Doc:      "forbid time.Now/Since/Until outside allowlisted serving/measurement packages",
	Severity: SeverityError,
	Run:      runWallclock,
}

// wallclockForbidden are the time package functions that read the
// process clock.
var wallclockForbidden = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runWallclock(p *Pass) {
	if pathInAny(p.Pkg.Path(), p.Config.WallclockAllow) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, _ := p.Info.Uses[id].(*types.Func)
			pkgPath, name, ok := pkgFuncName(fn)
			if !ok || pkgPath != "time" || !wallclockForbidden[name] {
				return true
			}
			p.Reportf(id.Pos(), "wallclock",
				"time.%s in a deterministic package; inject a Clock or pass timestamps in (allowlist: Config.WallclockAllow)",
				name)
			return true
		})
	}
}
