package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is the suppression comment recognized by the analyzer:
//
//	//cosmo:lint-ignore <check>[,<check>...] <reason>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory — an exception nobody can explain is a bug.
const Directive = "//cosmo:lint-ignore"

// ignoreIndex maps filename -> line -> set of suppressed check names.
type ignoreIndex map[string]map[int]map[string]bool

// suppressed reports whether a finding of check at file:line is covered
// by a directive on the same line or the line above.
func (ix ignoreIndex) suppressed(file string, line int, check string) bool {
	lines := ix[file]
	if lines == nil {
		return false
	}
	return lines[line][check] || lines[line-1][check]
}

// buildIgnoreIndex scans every comment in the package for directives.
// Directives missing a check name or a reason are returned as findings
// under the pseudo-check "lint-ignore" (they cannot suppress anything,
// including themselves).
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) (ignoreIndex, []Finding) {
	ix := ignoreIndex{}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, Directive)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   "lint-ignore",
						Message: "directive names no check: want //cosmo:lint-ignore <check> <reason>",
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   "lint-ignore",
						Message: "directive has no reason: a suppression must say why the exception is safe",
					})
					continue
				}
				lines := ix[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					ix[pos.Filename] = lines
				}
				checks := lines[pos.Line]
				if checks == nil {
					checks = map[string]bool{}
					lines[pos.Line] = checks
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						checks[name] = true
					}
				}
			}
		}
	}
	return ix, bad
}
