package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared AST/type-walking helpers. Checks are written against these so
// a new check is mostly its Run function: resolve callees with
// calleeFunc/pkgFuncName, walk function bodies with forEachFuncBody,
// and compare lock/field expressions with exprText.

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for builtins, conversions, and indirect calls through
// function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgFuncName returns the package path and name of a package-level
// function (methods and nil funcs return ok=false).
func pkgFuncName(fn *types.Func) (pkgPath, name string, ok bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, _ := fn.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// funcKey renders a callee for allowlist matching: "fmt.Printf" for
// package functions, "(*bytes.Buffer).Write" / "(bytes.Buffer).Len"
// for methods.
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		return "(*" + typePath(ptr.Elem()) + ")." + fn.Name()
	}
	return "(" + typePath(recv) + ")." + fn.Name()
}

// typePath renders a (possibly named) type as pkgpath.Name.
func typePath(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return t.String()
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// exprText renders an expression for structural comparison ("s.mu",
// "c.shards[i].daily"). Two syntactically identical expressions render
// identically, which is what the lock- and field-matching heuristics
// need.
func exprText(e ast.Expr) string {
	return types.ExprString(e)
}

// pathHasPrefix reports whether an import path equals prefix or lives
// under it ("cosmo/internal/serving" matches prefix "cosmo/internal").
func pathHasPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// pathInAny reports whether path matches any of the prefixes.
func pathInAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if pathHasPrefix(path, p) {
			return true
		}
	}
	return false
}

// funcBody is one function-shaped scope: a declared function/method or
// a function literal. Literals are analyzed as their own scopes so a
// callback's returns don't count against its enclosing function.
type funcBody struct {
	decl  *ast.FuncDecl // nil for literals
	ftype *ast.FuncType
	body  *ast.BlockStmt
}

// forEachFuncBody visits every function body in the files, treating
// nested function literals as separate scopes.
func forEachFuncBody(files []*ast.File, visit func(fb funcBody)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(funcBody{decl: fd, ftype: fd.Type, body: fd.Body})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					visit(funcBody{ftype: lit.Type, body: lit.Body})
				}
				return true
			})
		}
	}
}

// inspectShallow walks a function body but does not descend into
// nested function literals (they are separate scopes).
func inspectShallow(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			return false
		}
		return visit(n)
	})
}

// countReturns counts return statements in a body, excluding nested
// function literals.
func countReturns(body *ast.BlockStmt) int {
	n := 0
	inspectShallow(body, func(node ast.Node) bool {
		if _, ok := node.(*ast.ReturnStmt); ok {
			n++
		}
		return true
	})
	return n
}

// lockerName reports which sync lock type t transitively contains
// ("sync.Mutex" or "sync.RWMutex"), or "" if none. It looks through
// named types, struct fields (including embedded ones), and arrays —
// the shapes a copy would silently duplicate.
func lockerName(t types.Type) string {
	return lockerNameRec(t, map[types.Type]bool{})
}

func lockerNameRec(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex":
				return "sync.Mutex"
			case "RWMutex":
				return "sync.RWMutex"
			}
		}
		return lockerNameRec(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockerNameRec(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockerNameRec(u.Elem(), seen)
	}
	return ""
}

// syncLockMethod resolves a call like x.Lock() / x.RLock() to the sync
// method name if the callee is a method of sync.Mutex or sync.RWMutex
// (including promoted calls through embedding). It returns the method
// name and the receiver expression text ("s.mu").
func syncLockMethod(info *types.Info, call *ast.CallExpr) (method, recv string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return fn.Name(), exprText(sel.X)
	}
	return "", ""
}
