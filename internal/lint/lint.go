// Package lint is cosmo's project-specific static analyzer. It encodes
// the invariants that keep the reproduction correct but that go vet
// cannot see: all randomness flows from a seeded *rand.Rand, no
// wall-clock reads in deterministic pipeline code, mutexes are never
// copied and lock/unlock pairs survive every return path, long-lived
// serving state never grows without bound, and errors are never
// silently dropped.
//
// The driver loads every package in the module with go/parser and
// go/types (stdlib only — the repo stays dependency-free), runs a
// registry of named checks over each, and emits findings as
//
//	file:line: [check-name] message
//
// Intentional exceptions are suppressed in source with a reasoned
// directive on the offending line or the line above:
//
//	//cosmo:lint-ignore <check> <reason>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"cosmo/internal/parallel"
)

// Severity ranks a check's findings for gating: "error" findings are
// invariant violations that must block a merge; "warn" findings are
// advisory (heuristic checks whose evidence is circumstantial). The
// module itself is held to zero findings at either level; the split
// exists so downstream consumers (CI gates, editors) can choose.
type Severity string

// The two severity levels, ordered warn < error.
const (
	SeverityWarn  Severity = "warn"
	SeverityError Severity = "error"
)

// AtLeast reports whether s meets the gate (error ≥ warn ≥ warn).
func (s Severity) AtLeast(gate Severity) bool {
	return s == SeverityError || gate == SeverityWarn
}

// ParseSeverity validates a severity name from a flag.
func ParseSeverity(s string) (Severity, error) {
	switch Severity(s) {
	case SeverityWarn, SeverityError:
		return Severity(s), nil
	}
	return "", fmt.Errorf("unknown severity %q (want %q or %q)", s, SeverityWarn, SeverityError)
}

// Finding is one analyzer diagnostic.
type Finding struct {
	File     string   `json:"file"` // module-root-relative path
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Check    string   `json:"check"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
}

// String renders the canonical "file:line: [check] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Check, f.Message)
}

// Config tunes which packages a check applies to. Paths are import-path
// prefixes (a prefix matches the path itself or any sub-package).
type Config struct {
	// Checks restricts the run to the named checks; empty means all.
	Checks []string
	// WallclockAllow lists packages where time.Now/Since/Until are
	// legitimate (latency measurement, serving refresh clocks).
	WallclockAllow []string
	// ServingPaths lists packages whose types are long-lived serving
	// state, where unbounded growth of struct fields is a memory leak.
	ServingPaths []string
	// ErrorAllowlist lists callees whose dropped errors are tolerated,
	// keyed as "pkg.Func" or "(*pkg.Type).Method".
	ErrorAllowlist []string
	// FrozenServingPaths lists packages on the serving read path, which
	// must query frozen kg.Snapshot views instead of the locked
	// kg.Graph.
	FrozenServingPaths []string
	// CtxPaths lists packages held to the context-propagation contract:
	// context.Background/TODO are banned outside package main, and a
	// function holding a ctx must not call the context-less variant of a
	// callee that has a Context sibling.
	CtxPaths []string
}

// DefaultConfig returns the repo's own policy: wall-clock reads are
// confined to the serving layer and the load/latency tools, and the
// serving package is held to the bounded-memory invariant.
func DefaultConfig() Config {
	return Config{
		WallclockAllow: []string{
			"cosmo/internal/serving",
			"cosmo/internal/cluster",
			"cosmo/internal/faults",
			"cosmo/cmd/cosmo-serve",
			"cosmo/cmd/cosmo-router",
			"cosmo/cmd/cosmo-loadgen",
			"cosmo/cmd/cosmo-bench",
		},
		ServingPaths: []string{
			"cosmo/internal/serving",
			"cosmo/internal/wire",
		},
		ErrorAllowlist: []string{
			// Printing to an in-memory or best-effort sink; the error is
			// structurally impossible or unactionable.
			"fmt.Print", "fmt.Printf", "fmt.Println",
			"fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln",
			"(*strings.Builder).Write", "(*strings.Builder).WriteString",
			"(*strings.Builder).WriteByte", "(*strings.Builder).WriteRune",
			"(*bytes.Buffer).Write", "(*bytes.Buffer).WriteString",
			"(*bytes.Buffer).WriteByte", "(*bytes.Buffer).WriteRune",
		},
		FrozenServingPaths: []string{
			"cosmo/internal/serving",
			"cosmo/internal/navigation",
			"cosmo/internal/wire",
			"cosmo/cmd/cosmo-serve",
			"cosmo/cmd/cosmo-kg",
		},
		CtxPaths: []string{
			"cosmo/internal/serving",
			"cosmo/internal/cluster",
			"cosmo/internal/faults",
			"cosmo/cmd/cosmo-serve",
			"cosmo/cmd/cosmo-router",
			"cosmo/cmd/cosmo-loadgen",
		},
	}
}

// Check is a named analysis run over one type-checked package.
type Check struct {
	Name     string
	Doc      string
	Severity Severity
	Run      func(*Pass)
}

// AllChecks returns the registry in deterministic order. Adding check
// twelve means writing one Run function against Pass and listing it
// here.
func AllChecks() []Check {
	return []Check{
		seededRandCheck,
		wallclockCheck,
		mutexHygieneCheck,
		unboundedAppendCheck,
		droppedErrorCheck,
		frozenServingCheck,
		uncheckedNarrowingCheck,
		sentinelCompareCheck,
		ctxPropagationCheck,
		allocFreeCheck,
		atomicHygieneCheck,
	}
}

// Pass carries everything a check needs for one package.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Config Config

	severity Severity // of the check currently running
	ignores  ignoreIndex
	relPath  func(string) string
	out      *[]Finding
}

// Reportf records a finding at pos unless a matching
// //cosmo:lint-ignore directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, check, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.suppressed(position.Filename, position.Line, check) {
		return
	}
	*p.out = append(*p.out, Finding{
		File:     p.relPath(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Check:    check,
		Severity: p.severity,
		Message:  fmt.Sprintf(format, args...),
	})
}

// runPackage executes the enabled checks over one package and returns
// its findings, unsorted. It touches no shared state: packages are
// immutable after loading, so the parallel driver fans packages out
// across the worker pool and each invocation appends to its own slice.
func runPackage(pkg *Package, cfg Config, enabled map[string]bool) []Finding {
	var out []Finding
	ignores, bad := buildIgnoreIndex(pkg.Fset, pkg.Files)
	pass := &Pass{
		Fset:    pkg.Fset,
		Files:   pkg.Files,
		Pkg:     pkg.Types,
		Info:    pkg.Info,
		Config:  cfg,
		ignores: ignores,
		relPath: pkg.relPath,
		out:     &out,
	}
	// Malformed directives are findings themselves: a suppression
	// without a reason defeats the self-documentation it exists for.
	for _, f := range bad {
		f.File = pkg.relPath(f.File)
		f.Severity = SeverityError
		out = append(out, f)
	}
	for _, c := range AllChecks() {
		if len(enabled) > 0 && !enabled[c.Name] {
			continue
		}
		pass.severity = c.Severity
		c.Run(pass)
	}
	return out
}

// Run executes the configured checks over the loaded packages and
// returns all findings sorted by file, line, column, check.
func Run(pkgs []*Package, cfg Config) []Finding {
	return RunParallel(pkgs, cfg, 1)
}

// RunParallel is Run with the per-package analysis fanned out across
// workers goroutines (<= 0 means GOMAXPROCS) on the internal/parallel
// pool. The finding order is deterministic and identical for every
// worker count: the pool preserves package order, per-package findings
// are independent, and the final total sort breaks every tie.
func RunParallel(pkgs []*Package, cfg Config, workers int) []Finding {
	enabled := map[string]bool{}
	for _, name := range cfg.Checks {
		enabled[name] = true
	}
	perPkg := parallel.Map(workers, pkgs, func(i int, pkg *Package) []Finding {
		return runPackage(pkg, cfg, enabled)
	})
	var out []Finding
	for _, fs := range perPkg {
		out = append(out, fs...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return out
}

// CountAtLeast reports how many findings meet the severity gate.
func CountAtLeast(findings []Finding, gate Severity) int {
	n := 0
	for _, f := range findings {
		if f.Severity.AtLeast(gate) {
			n++
		}
	}
	return n
}
