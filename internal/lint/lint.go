// Package lint is cosmo's project-specific static analyzer. It encodes
// the invariants that keep the reproduction correct but that go vet
// cannot see: all randomness flows from a seeded *rand.Rand, no
// wall-clock reads in deterministic pipeline code, mutexes are never
// copied and lock/unlock pairs survive every return path, long-lived
// serving state never grows without bound, and errors are never
// silently dropped.
//
// The driver loads every package in the module with go/parser and
// go/types (stdlib only — the repo stays dependency-free), runs a
// registry of named checks over each, and emits findings as
//
//	file:line: [check-name] message
//
// Intentional exceptions are suppressed in source with a reasoned
// directive on the offending line or the line above:
//
//	//cosmo:lint-ignore <check> <reason>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	File    string `json:"file"` // module-root-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the canonical "file:line: [check] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Check, f.Message)
}

// Config tunes which packages a check applies to. Paths are import-path
// prefixes (a prefix matches the path itself or any sub-package).
type Config struct {
	// Checks restricts the run to the named checks; empty means all.
	Checks []string
	// WallclockAllow lists packages where time.Now/Since/Until are
	// legitimate (latency measurement, serving refresh clocks).
	WallclockAllow []string
	// ServingPaths lists packages whose types are long-lived serving
	// state, where unbounded growth of struct fields is a memory leak.
	ServingPaths []string
	// ErrorAllowlist lists callees whose dropped errors are tolerated,
	// keyed as "pkg.Func" or "(*pkg.Type).Method".
	ErrorAllowlist []string
	// FrozenServingPaths lists packages on the serving read path, which
	// must query frozen kg.Snapshot views instead of the locked
	// kg.Graph.
	FrozenServingPaths []string
}

// DefaultConfig returns the repo's own policy: wall-clock reads are
// confined to the serving layer and the load/latency tools, and the
// serving package is held to the bounded-memory invariant.
func DefaultConfig() Config {
	return Config{
		WallclockAllow: []string{
			"cosmo/internal/serving",
			"cosmo/cmd/cosmo-serve",
			"cosmo/cmd/cosmo-loadgen",
			"cosmo/cmd/cosmo-bench",
		},
		ServingPaths: []string{
			"cosmo/internal/serving",
		},
		ErrorAllowlist: []string{
			// Printing to an in-memory or best-effort sink; the error is
			// structurally impossible or unactionable.
			"fmt.Print", "fmt.Printf", "fmt.Println",
			"fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln",
			"(*strings.Builder).Write", "(*strings.Builder).WriteString",
			"(*strings.Builder).WriteByte", "(*strings.Builder).WriteRune",
			"(*bytes.Buffer).Write", "(*bytes.Buffer).WriteString",
			"(*bytes.Buffer).WriteByte", "(*bytes.Buffer).WriteRune",
		},
		FrozenServingPaths: []string{
			"cosmo/internal/serving",
			"cosmo/internal/navigation",
			"cosmo/cmd/cosmo-serve",
			"cosmo/cmd/cosmo-kg",
		},
	}
}

// Check is a named analysis run over one type-checked package.
type Check struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// AllChecks returns the registry in deterministic order. Adding check
// seven means writing one Run function against Pass and listing it
// here.
func AllChecks() []Check {
	return []Check{
		seededRandCheck,
		wallclockCheck,
		mutexHygieneCheck,
		unboundedAppendCheck,
		droppedErrorCheck,
		frozenServingCheck,
	}
}

// Pass carries everything a check needs for one package.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Config Config

	ignores ignoreIndex
	relPath func(string) string
	out     *[]Finding
}

// Reportf records a finding at pos unless a matching
// //cosmo:lint-ignore directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, check, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.suppressed(position.Filename, position.Line, check) {
		return
	}
	*p.out = append(*p.out, Finding{
		File:    p.relPath(position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes the configured checks over the loaded packages and
// returns all findings sorted by file, line, column, check.
func Run(pkgs []*Package, cfg Config) []Finding {
	enabled := map[string]bool{}
	for _, name := range cfg.Checks {
		enabled[name] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		ignores, bad := buildIgnoreIndex(pkg.Fset, pkg.Files)
		pass := &Pass{
			Fset:    pkg.Fset,
			Files:   pkg.Files,
			Pkg:     pkg.Types,
			Info:    pkg.Info,
			Config:  cfg,
			ignores: ignores,
			relPath: pkg.relPath,
			out:     &out,
		}
		// Malformed directives are findings themselves: a suppression
		// without a reason defeats the self-documentation it exists for.
		for _, f := range bad {
			f.File = pkg.relPath(f.File)
			out = append(out, f)
		}
		for _, c := range AllChecks() {
			if len(enabled) > 0 && !enabled[c.Name] {
				continue
			}
			c.Run(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return out
}
