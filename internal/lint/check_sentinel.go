package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// sentinelCompareCheck enforces errors.Is over == / != against exported
// sentinel errors. PR 6's ErrSnapshotMagic/Version/Corrupt family is
// returned wrapped ("%w: ..."), so a direct identity comparison is a
// latent bug: it silently stops matching the moment any layer adds
// context. The check flags binary comparisons and switch cases where
// one operand resolves to an exported package-level variable whose type
// implements error. Comparisons against nil and against unexported
// package-internal sentinels (which never cross a wrap boundary the
// package doesn't control) stay legal.
var sentinelCompareCheck = Check{
	Name:     "sentinel-compare",
	Doc:      "require errors.Is instead of ==/!= against exported sentinel error variables",
	Severity: SeverityError,
	Run:      runSentinelCompare,
}

// errorInterface is the universe error interface, for Implements tests.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// sentinelError resolves e to an exported package-level error variable
// and returns its rendered name ("io.EOF", "kg.ErrSnapshotMagic"), or
// "" if e is anything else.
func sentinelError(info *types.Info, e ast.Expr) string {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || !v.Exported() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !types.Implements(v.Type(), errorInterface) {
		return ""
	}
	return v.Pkg().Name() + "." + v.Name()
}

func runSentinelCompare(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{e.X, e.Y} {
					if name := sentinelError(p.Info, side); name != "" {
						verb := "errors.Is(err, " + name + ")"
						if e.Op == token.NEQ {
							verb = "!" + verb
						}
						p.Reportf(e.OpPos, "sentinel-compare",
							"comparing against sentinel %s with %s breaks once the error is wrapped; use %s",
							name, e.Op, verb)
						return true
					}
				}
			case *ast.SwitchStmt:
				if e.Tag == nil {
					return true
				}
				tv, ok := p.Info.Types[e.Tag]
				if !ok || !types.Implements(tv.Type, errorInterface) {
					return true
				}
				for _, stmt := range e.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, val := range cc.List {
						if name := sentinelError(p.Info, val); name != "" {
							p.Reportf(val.Pos(), "sentinel-compare",
								"switch case %s compares the error by identity and breaks once it is wrapped; use if/else with errors.Is",
								name)
						}
					}
				}
			}
			return true
		})
	}
}
