package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cosmo/internal/parallel"
)

// Parallel module loading. Parsing is embarrassingly parallel (the
// shared token.FileSet locks internally), but type-checking a package
// requires its module-internal imports to be checked first. Instead of
// per-package locking — which deadlocks the worker pool the moment a
// dependency chain is longer than the pool, and makes cycle detection
// racy — the driver runs topological waves: parse everything, read the
// intra-module dependency graph out of the file imports, and
// repeatedly type-check the set of packages whose dependencies are all
// done. An empty ready-set with work remaining is an import cycle,
// detected deterministically with the offending directories named.

// parsedDir is one package directory after the parse phase.
type parsedDir struct {
	dir   string // absolute
	path  string // import path
	files []*ast.File
	deps  []string // absolute dirs of module-internal imports
}

// loadAllParallel loads the given sorted package directories using
// workers goroutines and returns packages in the same order.
func (l *Loader) loadAllParallel(dirs []string, workers int) ([]*Package, error) {
	type parseResult struct {
		pd  *parsedDir
		err error
	}
	dirSet := map[string]bool{}
	for _, dir := range dirs {
		dirSet[dir] = true
	}
	parsed := parallel.Map(workers, dirs, func(_ int, dir string) parseResult {
		pd, err := l.parseDir(dir, dirSet)
		return parseResult{pd: pd, err: err}
	})
	byDir := map[string]*parsedDir{}
	for _, r := range parsed {
		if r.err != nil {
			return nil, r.err // first in directory order: deterministic
		}
		byDir[r.pd.dir] = r.pd
	}

	// Topological waves over the intra-module dependency graph.
	done := map[string]bool{}
	remaining := append([]string(nil), dirs...)
	for len(remaining) > 0 {
		var ready, blocked []string
		for _, dir := range remaining {
			ok := true
			for _, dep := range byDir[dir].deps {
				if !done[dep] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, dir)
			} else {
				blocked = append(blocked, dir)
			}
		}
		if len(ready) == 0 {
			return nil, fmt.Errorf("import cycle among module packages: %s", strings.Join(blocked, ", "))
		}
		type checkResult struct {
			err error
		}
		results := parallel.Map(workers, ready, func(_ int, dir string) checkResult {
			return checkResult{err: l.typeCheckParsed(byDir[dir])}
		})
		for _, r := range results {
			if r.err != nil {
				return nil, r.err
			}
		}
		for _, dir := range ready {
			done[dir] = true
		}
		remaining = blocked
	}

	pkgs := make([]*Package, 0, len(dirs))
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, dir := range dirs {
		pkgs = append(pkgs, l.pkgs[dir])
	}
	return pkgs, nil
}

// parseDir parses the package in dir and extracts its module-internal
// dependency edges (restricted to directories in dirSet, so a stray
// import of a non-existent module path surfaces as a type-check error,
// not a scheduling error).
func (l *Loader) parseDir(dir string, dirSet map[string]bool) (*parsedDir, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	pd := &parsedDir{dir: abs, path: l.importPathFor(abs)}
	depSet := map[string]bool{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		if !fileMatchesBuild(filepath.Join(abs, e.Name())) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pd.files = append(pd.files, f)
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != l.ModulePath && !strings.HasPrefix(path, l.ModulePath+"/") {
				continue
			}
			depDir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath)))
			if dirSet[depDir] {
				depSet[depDir] = true
			}
		}
	}
	if len(pd.files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", abs)
	}
	for dep := range depSet {
		pd.deps = append(pd.deps, dep)
	}
	sort.Strings(pd.deps)
	return pd, nil
}

// typeCheckParsed type-checks one parsed package whose module-internal
// dependencies are already in the memo, and stores the result.
func (l *Loader) typeCheckParsed(pd *parsedDir) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: &waveImporter{l: l}}
	tpkg, err := conf.Check(pd.path, l.fset, pd.files, info)
	if err != nil {
		return fmt.Errorf("type-check %s: %w", pd.path, err)
	}
	l.storePkg(&Package{
		Path:       pd.path,
		Dir:        pd.dir,
		Fset:       l.fset,
		Files:      pd.files,
		Types:      tpkg,
		Info:       info,
		moduleRoot: l.ModuleRoot,
	})
	return nil
}

// storePkg and memoized are the two sides of the parallel package memo.
func (l *Loader) storePkg(pkg *Package) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pkgs[pkg.Dir] = pkg
}

func (l *Loader) memoized(dir string) *Package {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pkgs[dir]
}

// waveImporter resolves imports during a parallel type-check wave.
// Module-internal imports must already be memoized (the wave scheduler
// guarantees dependencies ran in an earlier wave); the stdlib goes
// through the serialized source importer.
type waveImporter struct {
	l *Loader
}

func (w *waveImporter) Import(path string) (*types.Package, error) {
	l := w.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath)))
		pkg := l.memoized(dir)
		if pkg == nil {
			return nil, fmt.Errorf("module package %s not yet loaded (wave scheduling bug)", path)
		}
		return pkg.Types, nil
	}
	return l.stdImport(path)
}
