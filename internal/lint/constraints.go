package lint

import (
	"bufio"
	"go/build/constraint"
	"os"
	"runtime"
	"strings"
)

// cosmo-lint type-checks one concrete build of each package — the host
// GOOS/GOARCH with no extra -tags — so per-platform file pairs (such as
// kg's mmap_unix.go / mmap_fallback.go, which both define mapFile)
// must be filtered the way the go tool filters them, or the loader
// sees duplicate declarations. This file implements that filter:
// //go:build and // +build constraint lines plus the _GOOS/_GOARCH
// filename suffix convention, evaluated against the host build.

// knownOS and knownArch mirror the go tool's recognized filename
// suffixes. A final "_word" component only constrains the file when
// word is one of these.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mipsle": true, "mips64": true,
	"mips64le": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// unixOS is the set of GOOS values that satisfy the "unix" build tag.
var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// matchTag reports whether one build tag is satisfied by the host
// build. Release tags (go1.N) are all treated as satisfied: the lint
// toolchain is at least as new as the module's go directive. Custom
// opt-out tags (e.g. cosmo_nommap) are never set, so lint checks the
// default flavor of each package.
func matchTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "cgo":
		return true
	case "unix":
		return unixOS[runtime.GOOS]
	}
	return strings.HasPrefix(tag, "go1.")
}

// fileMatchesBuild reports whether the go tool would include path when
// building the package for the host GOOS/GOARCH with no extra tags.
// Both the filename-suffix convention and any //go:build (or legacy
// // +build) lines in the header must accept the file.
func fileMatchesBuild(path string) bool {
	if !suffixMatchesBuild(path) {
		return false
	}
	expr, ok := headerConstraint(path)
	if !ok {
		return true
	}
	return expr.Eval(matchTag)
}

// suffixMatchesBuild applies the _GOOS, _GOARCH, and _GOOS_GOARCH
// filename rules.
func suffixMatchesBuild(path string) bool {
	name := path
	if i := strings.LastIndexByte(name, os.PathSeparator); i >= 0 {
		name = name[i+1:]
	}
	name = strings.TrimSuffix(name, ".go")
	// "The name x_GOOS_GOARCH.go is constrained; x_word.go for an
	// unknown word is not." Leading components before the first "_"
	// never constrain.
	parts := strings.Split(name, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			return parts[len(parts)-2] == runtime.GOOS
		}
		return true
	}
	if knownOS[last] {
		return last == runtime.GOOS
	}
	return true
}

// headerConstraint extracts the build constraint from a file's header
// (the lines before the package clause), preferring //go:build over
// legacy // +build lines, which are AND-ed together per the original
// convention. ok is false when the file carries no constraint or
// cannot be read — unreadable files are left in so the parser reports
// the real error.
func headerConstraint(path string) (constraint.Expr, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()

	var plus constraint.Expr
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "package ") {
			break
		}
		if constraint.IsGoBuild(line) {
			if expr, err := constraint.Parse(line); err == nil {
				return expr, true // //go:build wins outright
			}
			continue
		}
		if constraint.IsPlusBuild(line) {
			if expr, err := constraint.Parse(line); err == nil {
				if plus == nil {
					plus = expr
				} else {
					plus = &constraint.AndExpr{X: plus, Y: expr}
				}
			}
		}
	}
	return plus, plus != nil
}
