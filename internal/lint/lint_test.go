package lint

import (
	"encoding/json"
	"fmt"
	"path"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

// moduleRoot locates the repo root (two levels above this package).
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

var (
	loaderOnce sync.Once
	loaderMu   sync.Mutex
	sharedLdr  *Loader
	loaderErr  error
)

// fixtureLoader shares one Loader across tests so the stdlib is
// type-checked once.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	root := moduleRoot(t)
	loaderOnce.Do(func() {
		sharedLdr, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedLdr
}

// loadFixture loads internal/lint/testdata/src/<name>.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l := fixtureLoader(t)
	loaderMu.Lock()
	defer loaderMu.Unlock()
	pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot, "internal", "lint", "testdata", "src", name))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	return pkg
}

// got renders findings as "base.go:line:check" for exact comparison.
func got(findings []Finding) []string {
	out := make([]string, 0, len(findings))
	for _, f := range findings {
		out = append(out, fmt.Sprintf("%s:%d:%s", path.Base(f.File), f.Line, f.Check))
	}
	return out
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFixtures is the per-check contract: each fixture package contains
// known-good and known-bad code plus //cosmo:lint-ignore suppressions,
// and the check must report exactly the bad lines.
func TestFixtures(t *testing.T) {
	cases := []struct {
		name    string // check under test
		fixture string
		config  func(*Config)
		want    []string // "file:line:check", sorted by file then line
	}{
		{
			name:    "seeded-rand",
			fixture: "seededrand",
			want: []string{
				"bad.go:9:seeded-rand",
				"bad.go:10:seeded-rand",
				"bad.go:17:seeded-rand",
				"bad.go:20:seeded-rand",
				// The directive two lines above the call in ignored.go is
				// out of range: suppression is same-line or line-above only.
				"ignored.go:10:seeded-rand",
			},
		},
		{
			name:    "wallclock",
			fixture: "wallclock",
			want: []string{
				"bad.go:9:wallclock",
				"bad.go:13:wallclock",
				"bad.go:17:wallclock",
			},
		},
		{
			name:    "wallclock-allowlisted",
			fixture: "wallclock",
			config: func(c *Config) {
				c.Checks = []string{"wallclock"}
				c.WallclockAllow = append(c.WallclockAllow, "cosmo/internal/lint/testdata/src/wallclock")
			},
			want: nil,
		},
		{
			name:    "mutex-hygiene",
			fixture: "mutexhygiene",
			want: []string{
				"bad.go:13:mutex-hygiene",
				"bad.go:17:mutex-hygiene",
				"bad.go:25:mutex-hygiene",
				"bad.go:35:mutex-hygiene",
			},
		},
		{
			name:    "unbounded-append",
			fixture: "unboundedappend",
			config: func(c *Config) {
				c.Checks = []string{"unbounded-append"}
				c.ServingPaths = []string{"cosmo/internal/lint/testdata/src/unboundedappend"}
			},
			want: []string{
				"bad.go:16:unbounded-append",
				"bad.go:22:unbounded-append",
				"bad.go:26:unbounded-append",
			},
		},
		{
			name:    "unbounded-append-outside-serving",
			fixture: "unboundedappend",
			config: func(c *Config) {
				c.Checks = []string{"unbounded-append"}
				c.ServingPaths = nil // not a serving package: check is silent
			},
			want: nil,
		},
		{
			name:    "dropped-error",
			fixture: "droppederror",
			want: []string{
				"bad.go:12:dropped-error",
				"bad.go:16:dropped-error",
				"bad.go:20:dropped-error",
			},
		},
		{
			name:    "frozen-serving",
			fixture: "frozenserving",
			config: func(c *Config) {
				c.Checks = []string{"frozen-serving"}
				c.FrozenServingPaths = []string{"cosmo/internal/lint/testdata/src/frozenserving"}
			},
			want: []string{
				"bad.go:8:frozen-serving",
				"bad.go:12:frozen-serving",
				"bad.go:17:frozen-serving",
				"bad.go:17:frozen-serving",
				"bad.go:21:frozen-serving",
			},
		},
		{
			name:    "frozen-serving-outside-serving",
			fixture: "frozenserving",
			config: func(c *Config) {
				c.Checks = []string{"frozen-serving"}
				c.FrozenServingPaths = nil // offline pipeline code may use the locked graph
			},
			want: nil,
		},
		{
			name:    "unchecked-narrowing",
			fixture: "uncheckednarrowing",
			want: []string{
				"bad.go:7:unchecked-narrowing",
				"bad.go:11:unchecked-narrowing",
				"bad.go:17:unchecked-narrowing",
				"bad.go:24:unchecked-narrowing",
			},
		},
		{
			name:    "sentinel-compare",
			fixture: "sentinelcompare",
			want: []string{
				"bad.go:13:sentinel-compare",
				"bad.go:17:sentinel-compare",
				"bad.go:22:sentinel-compare",
			},
		},
		{
			name:    "ctx-propagation",
			fixture: "ctxpropagation",
			config: func(c *Config) {
				c.Checks = []string{"ctx-propagation"}
				c.CtxPaths = []string{"cosmo/internal/lint/testdata/src/ctxpropagation"}
			},
			want: []string{
				"bad.go:9:ctx-propagation",
				"bad.go:13:ctx-propagation",
				"bad.go:17:ctx-propagation",
				"bad.go:21:ctx-propagation",
			},
		},
		{
			name:    "ctx-propagation-outside-serving",
			fixture: "ctxpropagation",
			config: func(c *Config) {
				c.Checks = []string{"ctx-propagation"}
				c.CtxPaths = nil // offline code may root its own contexts
			},
			want: nil,
		},
		{
			name:    "alloc-free",
			fixture: "allocfree",
			want: []string{
				"bad.go:11:alloc-free",
				"bad.go:12:alloc-free",
				"bad.go:13:alloc-free",
				"bad.go:14:alloc-free",
				"bad.go:15:alloc-free",
				"bad.go:16:alloc-free",
				"bad.go:17:alloc-free",
				"bad.go:18:alloc-free",
				"bad.go:19:alloc-free",
				"bad.go:20:alloc-free",
				"bad.go:21:alloc-free",
			},
		},
		{
			name:    "atomic-hygiene",
			fixture: "atomichygiene",
			want: []string{
				"bad.go:12:atomic-hygiene",
				"bad.go:16:atomic-hygiene",
				"bad.go:21:atomic-hygiene",
				"bad.go:27:atomic-hygiene",
				"bad.go:42:atomic-hygiene",
			},
		},
		{
			name:    "lint-ignore-directive-validation",
			fixture: "directives",
			want: []string{
				// Malformed directives are findings and suppress nothing.
				"bad.go:8:lint-ignore",
				"bad.go:9:dropped-error",
				"bad.go:11:lint-ignore",
				"bad.go:12:dropped-error",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadFixture(t, tc.fixture)
			cfg := DefaultConfig()
			if tc.config != nil {
				tc.config(&cfg)
			} else {
				// Default: isolate the check named by the case when it is a
				// real check name.
				for _, c := range AllChecks() {
					if c.Name == tc.name {
						cfg.Checks = []string{tc.name}
					}
				}
			}
			findings := Run([]*Package{pkg}, cfg)
			if g := got(findings); !equal(g, tc.want) {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", g, tc.want)
			}
		})
	}
}

// TestFindingString pins the canonical rendering the CI log greps for.
func TestFindingString(t *testing.T) {
	f := Finding{File: "internal/serving/cache.go", Line: 42, Col: 3, Check: "unbounded-append", Message: "grows"}
	want := "internal/serving/cache.go:42: [unbounded-append] grows"
	if f.String() != want {
		t.Errorf("String() = %q, want %q", f.String(), want)
	}
}

// TestFindingJSON pins the machine-readable shape behind -json.
func TestFindingJSON(t *testing.T) {
	data, err := json.Marshal(Finding{File: "a.go", Line: 1, Col: 2, Check: "wallclock", Severity: SeverityError, Message: "m"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"a.go","line":1,"col":2,"check":"wallclock","severity":"error","message":"m"}`
	if string(data) != want {
		t.Errorf("JSON = %s, want %s", data, want)
	}
}

// TestCheckRegistry guards the shipped check set: eleven invariant
// checks, deterministic order, non-empty docs, valid severities.
func TestCheckRegistry(t *testing.T) {
	want := []string{
		"seeded-rand", "wallclock", "mutex-hygiene", "unbounded-append",
		"dropped-error", "frozen-serving", "unchecked-narrowing",
		"sentinel-compare", "ctx-propagation", "alloc-free", "atomic-hygiene",
	}
	checks := AllChecks()
	if len(checks) != len(want) {
		t.Fatalf("got %d checks, want %d", len(checks), len(want))
	}
	for i, c := range checks {
		if c.Name != want[i] {
			t.Errorf("check %d = %q, want %q", i, c.Name, want[i])
		}
		if c.Doc == "" || c.Run == nil {
			t.Errorf("check %q missing doc or run func", c.Name)
		}
		if c.Severity != SeverityWarn && c.Severity != SeverityError {
			t.Errorf("check %q has invalid severity %q", c.Name, c.Severity)
		}
	}
}

// TestSeverity pins the gating algebra the CLI's -severity flag and
// CountAtLeast rely on.
func TestSeverity(t *testing.T) {
	if !SeverityError.AtLeast(SeverityWarn) || !SeverityError.AtLeast(SeverityError) {
		t.Error("error findings must pass both gates")
	}
	if !SeverityWarn.AtLeast(SeverityWarn) {
		t.Error("warn findings must pass the warn gate")
	}
	if SeverityWarn.AtLeast(SeverityError) {
		t.Error("warn findings must not pass the error gate")
	}
	if _, err := ParseSeverity("warn"); err != nil {
		t.Error(err)
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity accepted an unknown level")
	}
	findings := []Finding{
		{Severity: SeverityWarn},
		{Severity: SeverityError},
		{Severity: SeverityWarn},
	}
	if n := CountAtLeast(findings, SeverityWarn); n != 3 {
		t.Errorf("CountAtLeast(warn) = %d, want 3", n)
	}
	if n := CountAtLeast(findings, SeverityError); n != 1 {
		t.Errorf("CountAtLeast(error) = %d, want 1", n)
	}
}

// TestModuleLintClean holds the main tree to its own standard: the
// analyzer must exit clean over every package in the module. This is
// the same gate CI runs via `go run ./cmd/cosmo-lint ./...`.
func TestModuleLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; run without -short")
	}
	l := fixtureLoader(t)
	loaderMu.Lock()
	pkgs, err := l.LoadAll(0)
	loaderMu.Unlock()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	findings := Run(pkgs, DefaultConfig())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
