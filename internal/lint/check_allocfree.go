package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// allocFreeCheck certifies functions annotated
//
//	//cosmo:alloc-free
//
// in their doc comment. The annotation is the static mirror of the
// AllocsPerRun==0 benchmarks guarding the PR 4 hot path
// (Snapshot.IntentionsFor, Snapshot.RelatedProducts, embedding.Embed):
// the tests prove the current compiler emits no allocations, the
// annotation makes the *source-level* discipline that keeps it true
// reviewable and machine-checked. The contract is "no hidden or
// unbounded allocation sites":
//
//   - no append without cap evidence in the same function (a 3-arg
//     make, an x[:0] reslice of pooled scratch, an unsafe.Slice view
//     whose length the author stated, or a slice parameter — appending
//     to a caller-provided destination and returning it is the
//     strconv.Append* idiom: the capacity budget lives with the
//     caller, as internal/wire's encoders rely on);
//   - no non-constant string concatenation, and no string<->[]byte/
//     []rune conversions;
//   - no map or channel make, no map/slice composite literals, no new;
//   - no function literals that capture variables (captured vars
//     escape);
//   - no fmt calls;
//   - no interface boxing: conversions or call arguments placing a
//     non-pointer-shaped concrete value (struct, slice, string,
//     basic) into an interface parameter.
//
// Deliberate, sized allocations — make([]T, n) and struct literals —
// stay legal: the contract bans the allocations that creep in by
// accident, and the AllocsPerRun tests remain the runtime oracle for
// what the compiler actually emits (escape analysis can both save and
// betray you; the static check only sees the source).
var allocFreeCheck = Check{
	Name:     "alloc-free",
	Doc:      "certify //cosmo:alloc-free annotated functions: no hidden or unbounded allocation constructs in the body",
	Severity: SeverityError,
	Run:      runAllocFree,
}

// AllocFreeDirective is the function annotation the alloc-free check
// certifies.
const AllocFreeDirective = "//cosmo:alloc-free"

// hasAllocFreeMarker reports whether the doc comment carries the
// annotation.
func hasAllocFreeMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == AllocFreeDirective || strings.HasPrefix(text, AllocFreeDirective+" ") {
			return true
		}
	}
	return false
}

// builtinName resolves a call to the builtin it invokes ("append",
// "make", "new"), or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// isUnsafeSliceCall reports whether the call is unsafe.Slice(ptr, n) —
// an aliasing view over existing memory with an explicit length bound,
// the mmap-serving counterpart of a 3-arg make: the author stated the
// capacity in the source, so growth against it is reviewable.
func isUnsafeSliceCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	b, ok := info.Uses[sel.Sel].(*types.Builtin)
	return ok && b.Name() == "Slice"
}

// isZeroReslice reports whether e is an x[:0]-style reslice — the
// idiom that re-arms pooled scratch without allocating.
func isZeroReslice(info *types.Info, e ast.Expr) bool {
	sl, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || sl.High == nil {
		return false
	}
	tv, ok := info.Types[sl.High]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v == 0
}

// collectCapEvidence records, per function, every expression that the
// source visibly bounds: assigned from a 3-arg make (explicit cap),
// from an x[:0] reslice, or received as a slice parameter (the
// strconv.Append*-style destination whose capacity the caller owns).
// append onto one of these is growth within a budget the author stated.
func collectCapEvidence(info *types.Info, params *ast.FieldList, body *ast.BlockStmt) map[string]bool {
	capped := map[string]bool{}
	if params != nil {
		for _, f := range params.List {
			for _, name := range f.Names {
				v, ok := info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
					capped[name.Name] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			evidence := false
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if builtinName(info, call) == "make" && len(call.Args) == 3 {
					evidence = true
				}
				if isUnsafeSliceCall(info, call) {
					evidence = true
				}
			}
			if isZeroReslice(info, rhs) {
				evidence = true
			}
			if evidence {
				capped[exprText(ast.Unparen(as.Lhs[i]))] = true
			}
		}
		return true
	})
	return capped
}

// pointerShaped reports whether boxing a value of type t into an
// interface is allocation-free: pointers, interfaces, and the
// pointer-shaped reference types (chan, map, func) fit in the
// interface word; everything else (struct, slice, string, array,
// basic) is copied to the heap.
func pointerShaped(t types.Type) bool {
	if t == nil {
		return true // untyped nil
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer || b.Kind() == types.UntypedNil
	}
	return false
}

// isStringy reports whether t is string-kinded.
func isStringy(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports whether t is []byte or []rune.
func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// capturesOuter reports whether the function literal references a
// variable declared outside its own Pos/End range (a capture, which
// forces the variable — and usually the closure — onto the heap).
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level vars are not captures; anything declared before
		// the literal begins is.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
			return false
		}
		return true
	})
	return captured
}

// checkAllocFreeBody walks one annotated function and reports every
// construct outside the contract.
func checkAllocFreeBody(p *Pass, name string, params *ast.FieldList, body *ast.BlockStmt) {
	capped := collectCapEvidence(p.Info, params, body)
	report := func(pos token.Pos, construct string) {
		p.Reportf(pos, "alloc-free",
			"%s in %s, which is annotated %s; hoist it, pool it, or drop the annotation",
			construct, name, AllocFreeDirective)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			if capturesOuter(p.Info, e) {
				report(e.Pos(), "function literal capturing outer variables (closure + captured vars escape to the heap)")
			}
			return true
		case *ast.CompositeLit:
			tv, ok := p.Info.Types[e]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				report(e.Pos(), "map composite literal")
			case *types.Slice:
				report(e.Pos(), "slice composite literal")
			}
			return true
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := p.Info.Types[e]; ok && tv.Value == nil && isStringy(tv.Type) {
					report(e.Pos(), "non-constant string concatenation")
				}
			}
			return true
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 {
				if tv, ok := p.Info.Types[e.Lhs[0]]; ok && isStringy(tv.Type) {
					report(e.Pos(), "string += concatenation")
				}
			}
			return true
		case *ast.CallExpr:
			checkAllocFreeCall(p, e, capped, report)
			return true
		}
		return true
	})
}

// checkAllocFreeCall applies the per-call rules: builtins, string
// conversions, fmt, and interface boxing.
func checkAllocFreeCall(p *Pass, call *ast.CallExpr, capped map[string]bool, report func(token.Pos, string)) {
	switch builtinName(p.Info, call) {
	case "append":
		if len(call.Args) == 0 {
			return
		}
		dst := ast.Unparen(call.Args[0])
		if capped[exprText(dst)] || isZeroReslice(p.Info, dst) {
			return
		}
		report(call.Pos(), "append without cap evidence (no 3-arg make, [:0] reslice, or slice parameter as the destination in this function)")
		return
	case "make":
		if len(call.Args) == 0 {
			return
		}
		tv, ok := p.Info.Types[call.Args[0]]
		if !ok {
			return
		}
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			report(call.Pos(), "map make")
		case *types.Chan:
			report(call.Pos(), "channel make")
		}
		return
	case "new":
		report(call.Pos(), "new()")
		return
	case "":
		// not a builtin; fall through
	default:
		return
	}

	// Conversions: string <-> []byte/[]rune copy, and boxing into an
	// interface type.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		argTV := p.Info.Types[call.Args[0]]
		if argTV.Value == nil { // constant conversions fold away
			switch {
			case isStringy(tv.Type) && isByteOrRuneSlice(argTV.Type),
				isByteOrRuneSlice(tv.Type) && isStringy(argTV.Type):
				report(call.Pos(), "string/slice conversion (copies the contents)")
			}
		}
		if _, ok := tv.Type.Underlying().(*types.Interface); ok && !pointerShaped(argTV.Type) {
			report(call.Pos(), "interface conversion of a non-pointer value (boxes it on the heap)")
		}
		return
	}

	fn := calleeFunc(p.Info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt."+fn.Name()+" call (formats through interfaces and allocates)")
		return
	}

	// Interface-typed parameters receiving non-pointer-shaped concrete
	// arguments box them.
	sig, _ := p.Info.Types[call.Fun].Type.(*types.Signature)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				param = sig.Params().At(sig.Params().Len() - 1).Type()
			} else {
				sl, _ := sig.Params().At(sig.Params().Len() - 1).Type().Underlying().(*types.Slice)
				if sl == nil {
					continue
				}
				param = sl.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, ok := param.Underlying().(*types.Interface); !ok {
			continue
		}
		argTV, ok := p.Info.Types[arg]
		if !ok || argTV.Value != nil {
			continue
		}
		if !pointerShaped(argTV.Type) {
			report(arg.Pos(), "non-pointer argument passed as interface parameter (boxes it on the heap)")
		}
	}
}

func runAllocFree(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasAllocFreeMarker(fd.Doc) {
				continue
			}
			checkAllocFreeBody(p, fd.Name.Name, fd.Type.Params, fd.Body)
		}
	}
}
