package lint

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

// fixtureNames are every fixture package under testdata/src; linting
// them alongside the module guarantees the equivalence corpus has a
// non-trivial finding set (the module itself is held to zero).
var fixtureNames = []string{
	"seededrand", "wallclock", "mutexhygiene", "unboundedappend",
	"droppederror", "frozenserving", "directives", "uncheckednarrowing",
	"sentinelcompare", "ctxpropagation", "allocfree", "atomichygiene",
}

// fixtureConfig is DefaultConfig widened so the path-gated checks fire
// on their fixture packages.
func fixtureConfig() Config {
	cfg := DefaultConfig()
	cfg.ServingPaths = append(cfg.ServingPaths, "cosmo/internal/lint/testdata/src/unboundedappend")
	cfg.FrozenServingPaths = append(cfg.FrozenServingPaths, "cosmo/internal/lint/testdata/src/frozenserving")
	cfg.CtxPaths = append(cfg.CtxPaths, "cosmo/internal/lint/testdata/src/ctxpropagation")
	return cfg
}

// lintEverything loads the whole module plus every fixture package on
// a fresh Loader and runs all checks with the given worker count,
// returning the marshaled findings.
func lintEverything(t *testing.T, workers int) []byte {
	t.Helper()
	root := moduleRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadAll(workers)
	if err != nil {
		t.Fatalf("LoadAll(workers=%d): %v", workers, err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadAll returned no packages")
	}
	for _, name := range fixtureNames {
		pkg, err := l.LoadDir(filepath.Join(root, "internal", "lint", "testdata", "src", name))
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", name, err)
		}
		pkgs = append(pkgs, pkg)
	}
	findings := RunParallel(pkgs, fixtureConfig(), workers)
	if len(findings) == 0 {
		t.Fatal("fixture corpus produced no findings; the equivalence check would be vacuous")
	}
	data, err := json.Marshal(findings)
	if err != nil {
		t.Fatalf("marshal findings: %v", err)
	}
	return data
}

// TestParallelDriverEquivalence is the determinism contract for the
// parallel driver: linting the module plus the full fixture corpus
// with Workers=1 and Workers=8 must produce byte-identical ordered
// findings. Run under -race this also shakes out data races in the
// wave loader and the per-package check fan-out.
func TestParallelDriverEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-module type-checks are slow; run without -short")
	}
	sequential := lintEverything(t, 1)
	parallel8 := lintEverything(t, 8)
	if !bytes.Equal(sequential, parallel8) {
		t.Errorf("Workers=1 and Workers=8 diverge\n  workers=1: %s\n  workers=8: %s", sequential, parallel8)
	}
}

// TestLoadAllWorkersEquivalence pins the loader half on its own: the
// package list (paths, order) must not depend on the worker count.
func TestLoadAllWorkersEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; run without -short")
	}
	root := moduleRoot(t)
	paths := func(workers int) []string {
		l, err := NewLoader(root)
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		pkgs, err := l.LoadAll(workers)
		if err != nil {
			t.Fatalf("LoadAll(workers=%d): %v", workers, err)
		}
		out := make([]string, 0, len(pkgs))
		for _, p := range pkgs {
			out = append(out, p.Path)
		}
		return out
	}
	one := paths(1)
	eight := paths(8)
	if !equal(one, eight) {
		t.Errorf("package lists diverge\n  workers=1: %v\n  workers=8: %v", one, eight)
	}
}
