package lint

import (
	"go/ast"
	"go/types"
)

// seededRandCheck enforces the determinism contract of the pipeline:
// every random draw must come from an injected *rand.Rand built as
// rand.New(rand.NewSource(seed)). Package-level math/rand functions
// (rand.Intn, rand.Float64, rand.Shuffle, rand.Perm, ...) draw from the
// global generator, whose state is process-wide, unseeded by default,
// and invisible to the experiment configs — any use makes a pipeline
// run unreproducible. Referencing such a function as a value is just as
// bad as calling it, so uses are flagged, not only calls.
var seededRandCheck = Check{
	Name:     "seeded-rand",
	Doc:      "forbid global math/rand functions; randomness must flow from a seeded *rand.Rand",
	Severity: SeverityError,
	Run:      runSeededRand,
}

// seededRandAllowed are the math/rand package functions that construct
// seeded state instead of drawing from the global generator.
var seededRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes an explicit *rand.Rand
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runSeededRand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, _ := p.Info.Uses[id].(*types.Func)
			pkgPath, name, ok := pkgFuncName(fn)
			if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
				return true
			}
			if seededRandAllowed[name] {
				return true
			}
			p.Reportf(id.Pos(), "seeded-rand",
				"%s.%s draws from the global generator; use an injected *rand.Rand (rand.New(rand.NewSource(seed)))",
				pkgPath, name)
			return true
		})
	}
}
