package lint

import (
	"go/ast"
	"go/types"
)

// unboundedAppendCheck guards the bounded-memory invariant of the
// serving layer: a process meant to survive months of heavy traffic
// must never let a struct field grow monotonically per request. This is
// exactly the bug class PR 1 fixed by hand (the unbounded latency
// slice and the queued-map leak) — encoded here so it cannot regress.
//
// The heuristic: inside packages listed in Config.ServingPaths, a
// method that appends to a slice field of its receiver, or writes to a
// map field of its receiver, must contain *some* cap logic for that
// field in the same method — a len()/cap() inspection, a reslice, a
// delete(), or a wholesale reassignment (rebuild/reset). A method that
// only ever adds is reported.
var unboundedAppendCheck = Check{
	Name:     "unbounded-append",
	Doc:      "forbid growth of long-lived serving struct fields without cap logic in the same method",
	Severity: SeverityError,
	Run:      runUnboundedAppend,
}

func runUnboundedAppend(p *Pass) {
	if !pathInAny(p.Pkg.Path(), p.Config.ServingPaths) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvObj := receiverObject(p.Info, fd)
			if recvObj == nil {
				continue
			}
			checkMethodGrowth(p, fd, recvObj)
		}
	}
}

// receiverObject returns the types.Object of the method's receiver
// variable, or nil for anonymous receivers.
func receiverObject(info *types.Info, fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	return info.Defs[names[0]]
}

// growthSite is one statement that grows a receiver field.
type growthSite struct {
	pos   ast.Node
	field string // rendered field expression, e.g. "s.log"
	kind  string // "append" or "map write"
}

func checkMethodGrowth(p *Pass, fd *ast.FuncDecl, recvObj types.Object) {
	var sites []growthSite
	capped := map[string]bool{} // field text -> has cap logic

	markCapped := func(e ast.Expr) {
		if rootedAt(p.Info, e, recvObj) {
			capped[exprText(e)] = true
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			recordAssignGrowth(p, stmt, recvObj, &sites, markCapped)
		case *ast.IncDecStmt:
			// s.seen[k]++ counts as a map write.
			if ix, ok := ast.Unparen(stmt.X).(*ast.IndexExpr); ok {
				if field, ok := mapFieldWrite(p.Info, ix, recvObj); ok {
					sites = append(sites, growthSite{pos: stmt, field: field, kind: "map write"})
				}
			}
		case *ast.CallExpr:
			// len(s.log), cap(s.log), delete(s.seen, k) are cap logic.
			if id, ok := ast.Unparen(stmt.Fun).(*ast.Ident); ok {
				if b, _ := p.Info.Uses[id].(*types.Builtin); b != nil {
					switch b.Name() {
					case "len", "cap", "delete":
						if len(stmt.Args) > 0 {
							markCapped(stmt.Args[0])
						}
					}
				}
			}
		case *ast.SliceExpr:
			// s.log = s.log[1:] — any reslice of the field is cap logic.
			markCapped(stmt.X)
		}
		return true
	})

	for _, site := range sites {
		if capped[site.field] {
			continue
		}
		p.Reportf(site.pos.Pos(), "unbounded-append",
			"%s to %s grows long-lived serving state with no cap logic in %s; bound it (len check, reslice, delete, or rebuild)",
			site.kind, site.field, fd.Name.Name)
	}
}

// recordAssignGrowth classifies one assignment statement: growth site,
// cap logic (reassignment/reslice), or neither.
func recordAssignGrowth(p *Pass, stmt *ast.AssignStmt, recvObj types.Object, sites *[]growthSite, markCapped func(ast.Expr)) {
	if len(stmt.Lhs) != len(stmt.Rhs) {
		return
	}
	for i, lhs := range stmt.Lhs {
		lhs = ast.Unparen(lhs)
		rhs := ast.Unparen(stmt.Rhs[i])

		// Map writes: s.seen[k] = v (also += etc. — any op is a write).
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if field, ok := mapFieldWrite(p.Info, ix, recvObj); ok {
				*sites = append(*sites, growthSite{pos: stmt, field: field, kind: "map write"})
			}
			continue
		}

		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || !rootedAt(p.Info, sel, recvObj) {
			continue
		}
		field := exprText(sel)

		// s.log = append(s.log, ...) is a growth site; any other
		// assignment to the field (s.log = nil, s.log = make(...),
		// s.log = s.log[1:]) rebuilds or truncates it — cap logic.
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, _ := p.Info.Uses[id].(*types.Builtin); b != nil && b.Name() == "append" {
					if len(call.Args) > 0 && exprText(ast.Unparen(call.Args[0])) == field {
						*sites = append(*sites, growthSite{pos: stmt, field: field, kind: "append"})
						continue
					}
				}
			}
		}
		markCapped(sel)
	}
}

// mapFieldWrite reports whether ix writes through a map-typed field
// reachable from the receiver, returning the field's rendered text.
func mapFieldWrite(info *types.Info, ix *ast.IndexExpr, recvObj types.Object) (string, bool) {
	x := ast.Unparen(ix.X)
	if !rootedAt(info, x, recvObj) {
		return "", false
	}
	tv, ok := info.Types[ix.X]
	if !ok {
		return "", false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return "", false
	}
	return exprText(x), true
}

// rootedAt reports whether expr is a selector/index chain whose
// innermost identifier resolves to obj (the method receiver).
func rootedAt(info *types.Info, expr ast.Expr, obj types.Object) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			return info.Uses[e] == obj
		default:
			return false
		}
	}
}
