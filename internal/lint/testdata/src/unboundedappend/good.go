package unboundedappend

// Known-good: every growth site shares its method with cap logic.

type Bounded struct {
	log  []string
	seen map[string]int
	max  int
}

func (b *Bounded) Append(v string) {
	b.log = append(b.log, v)
	if len(b.log) > b.max {
		b.log = b.log[len(b.log)-b.max:]
	}
}

func (b *Bounded) Mark(k string) {
	if len(b.seen) >= b.max {
		for old := range b.seen {
			delete(b.seen, old)
			break
		}
	}
	b.seen[k]++
}

// Rebuild: wholesale reassignment resets the field, so the loop's
// growth is bounded by the input.
func (b *Bounded) Reset(keys []string) {
	b.seen = make(map[string]int, len(keys))
	for _, k := range keys {
		b.seen[k] = 0
	}
}

// Local slices are not long-lived state.
func (b *Bounded) Snapshot() []string {
	var out []string
	out = append(out, b.log...)
	return out
}
