package unboundedappend

import "sync"

// Known-bad: long-lived serving state that only ever grows.

type Store struct {
	mu   sync.Mutex
	log  []string
	seen map[string]int
}

func (s *Store) Append(v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = append(s.log, v) // line 16: finding
}

func (s *Store) Mark(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen[k]++ // line 22: finding (map write)
}

func (s *Store) Record(k string, v int) {
	s.seen[k] = v // line 26: finding (map write)
}
