package unboundedappend

type audit struct {
	trail []string
}

func (a *audit) record(line string) {
	//cosmo:lint-ignore unbounded-append audit trail is flushed and truncated by the caller each epoch
	a.trail = append(a.trail, line)
}
