package directives

import "errors"

func fallible() error { return errors.New("boom") }

func malformed() {
	//cosmo:lint-ignore dropped-error
	fallible() // the reasonless directive above suppresses nothing: two findings here

	//cosmo:lint-ignore
	fallible() // directive names no check: two findings here
}
