package wallclock

import "time"

// Known-bad: wall-clock reads in (what the config treats as) a
// deterministic package.

func stamp() time.Time {
	return time.Now() // line 9: finding
}

func elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // line 13: finding
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // line 17: finding
}
