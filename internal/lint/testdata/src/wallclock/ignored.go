package wallclock

import "time"

func debugStamp() time.Time {
	//cosmo:lint-ignore wallclock debug-only timestamp, never feeds pipeline output
	return time.Now()
}
