package wallclock

import "time"

// Known-good: time values flow in as arguments; durations are computed
// with pure arithmetic, so runs with the same inputs are identical.

func diff(a, b time.Time) time.Duration {
	return b.Sub(a)
}

func addDay(t time.Time) time.Time {
	return t.Add(24 * time.Hour)
}
