package wallclock

import "time"

// Known-good: time values flow in as arguments; durations are computed
// with pure arithmetic, so runs with the same inputs are identical.

func diff(a, b time.Time) time.Duration {
	return b.Sub(a)
}

func addDay(t time.Time) time.Time {
	return t.Add(24 * time.Hour)
}

// Known-good: waiting is not reading the clock. Timers and sleeps only
// delay execution — they never observe wall time, so backoff loops and
// injected latency (the resilience and faults packages) stay
// reproducible. The check bans time.Now/Since/Until, not time.NewTimer.
func pause(d time.Duration, done <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}
