package frozenserving

import "cosmo/internal/kg"

// Known-bad: the serving path querying the locked graph directly.

func serveIntentions(g *kg.Graph, head string) int {
	return len(g.IntentionsFor(head)) // line 8: finding
}

func serveRelated(g *kg.Graph, id string) int {
	related := g.RelatedProducts(id, 10) // line 12: finding
	return len(related)
}

func serveStats(g *kg.Graph) (int, int) {
	return g.NumNodes(), g.NumEdges() // line 17: two findings
}

func serveHierarchy(g *kg.Graph) int {
	return len(g.BuildHierarchy(2)) // line 21: finding
}
