package frozenserving

import "cosmo/internal/kg"

// Suppression: a reasoned directive tolerates a locked read off the
// hot path.

func adminDump(g *kg.Graph) int {
	return len(g.Edges()) //cosmo:lint-ignore frozen-serving admin-only debug dump, never on the request path
}
