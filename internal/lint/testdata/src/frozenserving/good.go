package frozenserving

import "cosmo/internal/kg"

// Known-good: freeze once and query the snapshot. The constructive
// Graph API (AddNode, Freeze) stays legal on the serving path.

func buildAndServe() int {
	g := kg.New()
	g.AddNode(kg.Node{ID: "q:camping", Type: kg.NodeQuery, Label: "camping"})
	snap := g.Freeze()
	seq := snap.IntentionsFor("q:camping")
	return seq.Len() + len(snap.RelatedProducts("p:P1", 5)) + snap.NumNodes()
}

func serveFromSnapshot(snap *kg.Snapshot) int {
	s := snap.ComputeStats()
	return s.Nodes + len(snap.BuildHierarchy(2))
}
