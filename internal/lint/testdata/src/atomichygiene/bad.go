package atomichygiene

import "sync/atomic"

// Known-bad: by-value copies of atomic-containing types, and plain
// access to a word that sync/atomic functions own elsewhere.

type counter struct {
	hits atomic.Int64
}

func byValueParam(c counter) int64 { // line 12: finding (param)
	return c.hits.Load()
}

func (c counter) byValueRecv() int64 { // line 16: finding (receiver)
	return c.hits.Load()
}

func copyAssign(c *counter) int64 {
	snapshot := *c // line 21: finding (dereference copy)
	return snapshot.hits.Load()
}

func rangeCopy(cs []counter) int64 {
	var n int64
	for _, c := range cs { // line 27: finding (range copies elements)
		n += c.hits.Load()
	}
	return n
}

type mixed struct {
	n int64
}

func (m *mixed) inc() {
	atomic.AddInt64(&m.n, 1)
}

func (m *mixed) badRead() int64 {
	return m.n // line 42: finding (plain read of an atomic word)
}
