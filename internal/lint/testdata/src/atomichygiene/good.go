package atomichygiene

import "sync/atomic"

// Known-good: atomic-containing types travel by pointer, and atomic
// words are touched only through sync/atomic.

type gauge struct {
	val atomic.Int64
}

func byPointer(g *gauge) int64 {
	return g.val.Load()
}

func pointerSlice(gs []*gauge) int64 {
	var n int64
	for _, g := range gs {
		n += g.val.Load()
	}
	return n
}

type swap struct {
	snap atomic.Pointer[gauge]
}

func (s *swap) publish(g *gauge) { s.snap.Store(g) }
func (s *swap) view() *gauge     { return s.snap.Load() }

type word struct {
	n int64
}

func (w *word) add(d int64) int64 {
	return atomic.AddInt64(&w.n, d)
}

func (w *word) read() int64 {
	return atomic.LoadInt64(&w.n)
}
