package atomichygiene

import "sync/atomic"

// Suppression: pre-publication initialization is single-goroutine by
// construction and documents itself.

type boot struct {
	n int64
}

func (b *boot) bump(d int64) int64 {
	return atomic.AddInt64(&b.n, d)
}

func newBoot(seed int64) *boot {
	b := &boot{}
	//cosmo:lint-ignore atomic-hygiene pre-publication init: no other goroutine can hold b yet
	b.n = seed
	return b
}
