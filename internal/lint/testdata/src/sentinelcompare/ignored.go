package sentinelcompare

import "io"

// Suppression: an identity comparison documented as intentional.

func exactEOF(err error) bool {
	//cosmo:lint-ignore sentinel-compare bufio.Reader returns bare io.EOF by contract, never wrapped
	return err == io.EOF
}
