package sentinelcompare

import (
	"errors"
	"io"
)

// Known-good: errors.Is, nil comparisons, and unexported sentinels
// (identity is package-controlled; they never cross a wrap boundary
// the package doesn't own).

var errInternal = errors.New("internal")

func wrapped(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, ErrBoom)
}

func nilCheck(err error) bool {
	return err == nil || err != nil
}

func internal(err error) bool {
	return err == errInternal
}
