package sentinelcompare

import (
	"errors"
	"io"
)

// Known-bad: identity comparisons against exported sentinel errors.

var ErrBoom = errors.New("boom")

func eq(err error) bool {
	return err == ErrBoom // line 13: finding
}

func neq(err error) bool {
	return err != io.EOF // line 17: finding
}

func sw(err error) int {
	switch err {
	case ErrBoom: // line 22: finding
		return 1
	case nil:
		return 0
	}
	return 2
}
