package uncheckednarrowing

import "math"

// Known-good: in-range constants, in-function guards, range-index
// evidence, constant masks, and non-narrowing conversions.

const smallConst = 255

func constFit() (uint8, int32) {
	return uint8(smallConst), int32(1 << 20)
}

func guarded(n int) (int32, bool) {
	if n > math.MaxInt32 {
		return 0, false
	}
	return int32(n), true
}

func loopBound(xs []int) []int32 {
	out := make([]int32, 0, len(xs))
	for i := 0; i < len(xs); i++ {
		out = append(out, int32(i)) // i compared against len(xs) above
	}
	return out
}

func rangeGuard(table []string) []uint8 {
	if len(table) > 256 {
		return nil
	}
	idx := make([]uint8, 0, len(table))
	for i := range table {
		idx = append(idx, uint8(i)) // range index over a len-compared slice
	}
	return idx
}

func masked(v uint64) uint16 {
	return uint16(v & 0xffff)
}

func notNarrowing(v int32) (int64, uint32, float64) {
	// Widening, same-width sign flip, and float conversions are out of
	// scope: none can silently drop high bits.
	return int64(v), uint32(v), float64(v)
}
