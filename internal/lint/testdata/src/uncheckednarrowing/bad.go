package uncheckednarrowing

// Known-bad: lossy integer conversions with no range-guard evidence in
// the converting function.

func toSym(i int) int32 {
	return int32(i) // line 7: finding
}

func toByte(v uint64) uint8 {
	return uint8(v) // line 11: finding
}

func indexNoGuard(xs []string) []uint16 {
	out := make([]uint16, 0, len(xs))
	for i := range xs {
		out = append(out, uint16(i)) // line 17: finding (len(xs) never compared)
	}
	return out
}

func guardedElsewhere(n int) int32 {
	checkRange(n)
	return int32(n) // line 24: finding (the guard must be in this function)
}

func checkRange(n int) {
	if n > 1<<31-1 {
		panic("out of range")
	}
}
