package uncheckednarrowing

// Suppression: a reasoned directive tolerates a narrowing whose bound
// is enforced by a caller-level invariant.

func trustedSym(i int) int32 {
	//cosmo:lint-ignore unchecked-narrowing symbol space is capacity-checked once at freeze time
	return int32(i)
}
