package seededrand

import "math/rand"

// Suppression: a reasoned directive on the line above or the same line
// silences the finding.

//cosmo:lint-ignore seeded-rand retry jitter need not be reproducible
func jitterAbove() float64 {
	return rand.Float64() // suppressed only if directive covers call line — it does not; see jitterSameLine
}

func jitterSameLine() float64 {
	return rand.Float64() //cosmo:lint-ignore seeded-rand retry jitter need not be reproducible
}

func jitterLineAbove() float64 {
	//cosmo:lint-ignore seeded-rand retry jitter need not be reproducible
	return rand.Float64()
}
