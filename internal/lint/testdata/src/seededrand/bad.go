package seededrand

import "math/rand"

// Known-bad: package-level math/rand functions draw from the global,
// unseeded generator.

func shuffleDeck(n int) []int {
	xs := rand.Perm(n)                     // line 9: finding
	rand.Shuffle(len(xs), func(i, j int) { // line 10: finding
		xs[i], xs[j] = xs[j], xs[i]
	})
	return xs
}

func draw() float64 {
	return rand.Float64() // line 17: finding
}

var pick = rand.Intn // line 20: finding (reference, not call)
