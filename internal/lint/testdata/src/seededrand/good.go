package seededrand

import "math/rand"

// Known-good: all randomness flows from an injected, seeded *rand.Rand.

func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func drawSeeded(rng *rand.Rand) float64 {
	return rng.Float64()
}

func shuffleSeeded(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) {
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func zipf(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, 1.1, 1, 1<<20)
}
