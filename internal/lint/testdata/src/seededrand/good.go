package seededrand

import "math/rand"

// Known-good: all randomness flows from an injected, seeded *rand.Rand.

func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func drawSeeded(rng *rand.Rand) float64 {
	return rng.Float64()
}

func shuffleSeeded(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) {
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func zipf(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, 1.1, 1, 1<<20)
}

// Known-good: counter-derived randomness that never touches math/rand at
// all — a pure splitmix64 finalization of (seed, index), the idiom the
// resilience backoff jitter and the fault injector use to stay
// deterministic under concurrency.
func derived(seed int64, n uint64) float64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(n+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
