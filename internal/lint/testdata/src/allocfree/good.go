package allocfree

import "unsafe"

// Known-good: annotated functions whose only allocations are sized and
// deliberate, plus an unannotated function the check leaves alone.

type point struct{ x, y float64 }

//cosmo:alloc-free
func disciplined(xs []float64) []float64 {
	out := make([]float64, len(xs)) // sized make: a deliberate result buffer
	for i, v := range xs {
		out[i] = v * 2
	}
	return out
}

//cosmo:alloc-free
func pooled(scratch []int, n int) []int {
	buf := scratch[:0] // [:0] reslice re-arms pooled capacity
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}

//cosmo:alloc-free
func capped(n int) []int {
	buf := make([]int, 0, n) // 3-arg make states the budget
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}

//cosmo:alloc-free
func structsAndStatics(xs []point) (point, func() int) {
	f := func() int { return 42 } // captures nothing: a static func value
	p := point{x: 1, y: 2}        // struct literal: a value, not a heap box
	if len(xs) > 0 {
		p = xs[0]
	}
	return p, f
}

// appendStyle appends into a caller-provided destination and returns
// it — the strconv.Append* idiom. The slice parameter is the cap
// evidence: the capacity budget lives with the caller.
//
//cosmo:alloc-free
func appendStyle(dst []byte, v byte) []byte {
	dst = append(dst, '"', v)
	return append(dst, '"')
}

// aliased builds a zero-copy view over mapped memory; the explicit
// length in unsafe.Slice is the stated capacity budget, so append
// with the view as the destination stays within the evidence the
// author gave.
//
//cosmo:alloc-free
func aliased(p *int32, n int) int32 {
	view := unsafe.Slice(p, n) // explicit bound: cap evidence
	view = append(view, 0)
	var sum int32
	for _, v := range view {
		sum += v
	}
	return sum
}

func unannotated(s string) string {
	return s + "!" // not annotated: the check does not apply
}
