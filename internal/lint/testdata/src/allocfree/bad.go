package allocfree

import "fmt"

// Known-bad: an annotated function riddled with hidden allocation
// sites; the checker reports each construct.

//cosmo:alloc-free
func leaky(xs []int, s string) int {
	var out []int
	out = append(out, len(xs)) // line 11: finding (no cap evidence)
	m := make(map[string]int)  // line 12: finding (map make)
	ch := make(chan int, 1)    // line 13: finding (channel make)
	p := new(int)              // line 14: finding (new)
	lits := []int{1, 2}        // line 15: finding (slice literal)
	b := []byte(s)             // line 16: finding (string->[]byte copy)
	msg := s + "!"             // line 17: finding (string concat)
	cl := func() int { return len(xs) } // line 18: finding (capturing closure)
	boxed := any(s)            // line 19: finding (interface conversion boxes)
	consume(len(msg))          // line 20: finding (non-pointer arg boxed into interface param)
	fmt.Println()              // line 21: finding (fmt call)
	_ = boxed
	return len(out) + len(m) + cap(ch) + *p + lits[0] + len(b) + cl()
}

func consume(v any) {}
