package allocfree

import "sort"

// Suppression: a reasoned escape hatch inside a certified function for
// a construct the author measured to be free.

type intSlice []int

func (s intSlice) Len() int           { return len(s) }
func (s intSlice) Less(i, j int) bool { return s[i] < s[j] }
func (s intSlice) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

//cosmo:alloc-free
func sorted(xs []int) {
	//cosmo:lint-ignore alloc-free one boxing at the tail of the walk; AllocsPerRun pins the real count
	sort.Sort(intSlice(xs))
}
