package droppederror

func bestEffort() {
	//cosmo:lint-ignore dropped-error best-effort notification, failure is unactionable
	fallible()
	_ = fallible() //cosmo:lint-ignore dropped-error best-effort notification, failure is unactionable
}
