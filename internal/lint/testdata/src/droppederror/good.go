package droppederror

// Known-good: errors handled or propagated; non-error blanks are fine.

func okBool() (int, bool) { return 1, true }

func handled() error {
	if err := fallible(); err != nil {
		return err
	}
	v, err := twoValued()
	if err != nil {
		return err
	}
	_ = v // blank of a non-error value is not a drop
	n, _ := okBool()
	return use(n)
}

func use(int) error { return nil }
