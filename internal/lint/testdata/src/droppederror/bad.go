package droppederror

import "errors"

// Known-bad: errors silently discarded.

func fallible() error { return errors.New("boom") }

func twoValued() (int, error) { return 0, errors.New("boom") }

func bareStatement() {
	fallible() // line 12: finding
}

func blankAssign() {
	_ = fallible() // line 16: finding
}

func blankTuple() int {
	v, _ := twoValued() // line 20: finding
	return v
}
