package ctxpropagation

import "context"

// Suppression: a legacy bridge documents why it roots at Background.

func legacyBridge(n int) int {
	//cosmo:lint-ignore ctx-propagation legacy infallible bridge: callers predate the ctx API and have no deadline to thread
	return ProcessContext(context.Background(), n)
}
