package ctxpropagation

import "context"

// Known-good: ctx threads to every Context-sibling callee; the sibling
// rule does not apply without a ctx in hand; deriving from a received
// ctx is the sanctioned way to scope work.

func Process(n int) int { return n }

func ProcessContext(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

type worker struct{}

func (w *worker) Run() {}

func (w *worker) RunContext(ctx context.Context) {}

func threaded(ctx context.Context, w *worker) int {
	w.RunContext(ctx)
	return ProcessContext(ctx, 1)
}

func noCtxInHand(w *worker) int {
	w.Run()
	return Process(2)
}

func derived(ctx context.Context) context.Context {
	next, cancel := context.WithCancel(ctx)
	defer cancel()
	return next
}
