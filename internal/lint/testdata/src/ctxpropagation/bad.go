package ctxpropagation

import "context"

// Known-bad: minted root contexts in library code, and ctx-less calls
// from functions that hold a ctx when a Context sibling exists.

func mintRoot() context.Context {
	return context.Background() // line 9: finding
}

func mintTodo() context.Context {
	return context.TODO() // line 13: finding
}

func holder(ctx context.Context) int {
	return Process(1) // line 17: finding (ProcessContext exists)
}

func methodHolder(ctx context.Context, w *worker) {
	w.Run() // line 21: finding (RunContext exists)
}
