package mutexhygiene

import "sync"

type handoff struct {
	mu sync.Mutex
	v  int
}

// Lock intentionally escapes this function: the matching unlock runs in
// release(). The directive documents the ownership transfer.
func (h *handoff) acquire(fast bool) int {
	h.mu.Lock() //cosmo:lint-ignore mutex-hygiene lock ownership transfers to release()
	if fast {
		return h.v
	}
	return h.v * 2
}

func (h *handoff) release() {
	h.mu.Unlock()
}
