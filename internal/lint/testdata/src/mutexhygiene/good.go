package mutexhygiene

import "sync"

// Known-good: pointer receivers and deferred unlocks.

type Safe struct {
	mu sync.Mutex
	n  int
}

func (s *Safe) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func (s *Safe) GetOr(def int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return def
	}
	return s.n
}

// Single return path with explicit unlock is fine: there is no early
// return to leak through.
func (s *Safe) Bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}
