package mutexhygiene

import "sync"

// Known-bad: by-value mutex copies and non-deferred unlocks on
// multi-return functions.

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c Counter) Get() int { // line 13: finding (receiver by value)
	return c.n
}

func readBoth(a Counter, b *Counter) int { // line 17: finding (param a by value)
	return a.n + b.n
}

type wrapped struct {
	inner Counter // embeds the mutex transitively
}

func consume(w wrapped) int { // line 25: finding (transitive mutex by value)
	return w.inner.n
}

type Registry struct {
	mu    sync.RWMutex
	items map[string]int
}

func (r *Registry) Lookup(k string) (int, bool) {
	r.mu.RLock() // line 35: finding (2 returns, no defer r.mu.RUnlock())
	v, ok := r.items[k]
	if !ok {
		r.mu.RUnlock()
		return 0, false
	}
	r.mu.RUnlock()
	return v, true
}
