package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// uncheckedNarrowingCheck guards the integer-truncation bug class PR 6
// fixed by hand: Freeze silently truncated node counts through bare
// int32(...) conversions until FreezeChecked added range guards. A
// lossy conversion — one whose target cannot represent every value of
// the source type — is only legal when the code shows evidence the
// value is in range:
//
//   - the operand is a constant that provably fits the target;
//   - the same function compares the operand against a bound
//     (`if n > math.MaxInt32 { ... }`, a loop condition `i < len(xs)`);
//   - the operand is a range-loop index over a slice whose length the
//     function compares (`for i, s := range table` guarded by
//     `len(table) > 256`);
//   - the operand is masked with a constant that fits
//     (`int32(x & 0x7fff)`).
//
// The analysis is 64-bit (int/uint/uintptr are 8 bytes) and evidence
// is syntactic, not a range proof: it certifies that the author
// *thought* about the bound, which is the invariant the FreezeChecked
// bug violated. Same-width signedness flips (uint32(int32) two's-
// complement round trips, hash folding) are deliberately out of scope.
var uncheckedNarrowingCheck = Check{
	Name:     "unchecked-narrowing",
	Doc:      "forbid lossy integer conversions (int32(x)-style) without range-guard evidence in the same function",
	Severity: SeverityError,
	Run:      runUncheckedNarrowing,
}

// intWidth returns the bit width of a basic integer kind on 64-bit
// targets, or 0 for non-integer kinds. Untyped ints report 64 (they
// are handled through the constant path first).
func intWidth(k types.BasicKind) int {
	switch k {
	case types.Int, types.Uint, types.Uintptr, types.Int64, types.Uint64, types.UntypedInt:
		return 64
	case types.Int32, types.Uint32:
		return 32
	case types.Int16, types.Uint16:
		return 16
	case types.Int8, types.Uint8:
		return 8
	}
	return 0
}

// basicInt returns the underlying basic integer type of t, or nil.
func basicInt(t types.Type) *types.Basic {
	b, ok := t.Underlying().(*types.Basic)
	if !ok || intWidth(b.Kind()) == 0 {
		return nil
	}
	return b
}

// constFits reports whether constant value v fits the basic integer
// target type.
func constFits(v constant.Value, target *types.Basic) bool {
	v = constant.ToInt(v)
	if v.Kind() != constant.Int {
		return false
	}
	w := intWidth(target.Kind())
	if target.Info()&types.IsUnsigned != 0 {
		u, ok := constant.Uint64Val(v)
		return ok && (w == 64 || u < 1<<uint(w))
	}
	i, ok := constant.Int64Val(v)
	return ok && (w == 64 || (i >= -1<<uint(w-1) && i < 1<<uint(w-1)))
}

// guardEvidence is the per-function record of bound checks: the set of
// compared operand texts and the range-loop index -> ranged-expression
// mapping.
type guardEvidence struct {
	compared map[string]bool     // exprText of each comparison operand
	ranged   map[string][]string // range index var name -> exprTexts of ranged exprs
}

// collectGuards scans one function body for comparison and range-loop
// evidence.
func collectGuards(body *ast.BlockStmt) guardEvidence {
	ev := guardEvidence{compared: map[string]bool{}, ranged: map[string][]string{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			switch e.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				ev.compared[exprText(ast.Unparen(e.X))] = true
				ev.compared[exprText(ast.Unparen(e.Y))] = true
			}
		case *ast.RangeStmt:
			if id, ok := e.Key.(*ast.Ident); ok && id.Name != "_" {
				// Accumulate: the same index name may range over several
				// expressions in one function; evidence for any of them
				// counts (syntactic heuristic, like the rest).
				ev.ranged[id.Name] = append(ev.ranged[id.Name], exprText(ast.Unparen(e.X)))
			}
		}
		return true
	})
	return ev
}

// guarded reports whether the conversion operand has bound evidence:
// its own text was compared, or it is a range index over an expression
// whose len() was compared.
func (ev guardEvidence) guarded(arg ast.Expr) bool {
	text := exprText(ast.Unparen(arg))
	if ev.compared[text] {
		return true
	}
	if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
		for _, over := range ev.ranged[id.Name] {
			if ev.compared["len("+over+")"] {
				return true
			}
		}
	}
	return false
}

// maskedTo reports whether arg is an and-mask with a constant that fits
// the target (int32(x & 0x7fff) cannot truncate).
func maskedTo(info *types.Info, arg ast.Expr, target *types.Basic) bool {
	bin, ok := ast.Unparen(arg).(*ast.BinaryExpr)
	if !ok || bin.Op != token.AND {
		return false
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if tv, ok := info.Types[side]; ok && tv.Value != nil && constFits(tv.Value, target) {
			return true
		}
	}
	return false
}

func runUncheckedNarrowing(p *Pass) {
	forEachFuncBody(p.Files, func(fb funcBody) {
		ev := collectGuards(fb.body)
		inspectShallow(fb.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := p.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			target := basicInt(tv.Type)
			if target == nil {
				return true
			}
			arg := call.Args[0]
			argTV, ok := p.Info.Types[arg]
			if !ok {
				return true
			}
			// Constants: provably in range is fine, provably lossy is a
			// finding regardless of guards.
			if argTV.Value != nil {
				if !constFits(argTV.Value, target) {
					p.Reportf(call.Pos(), "unchecked-narrowing",
						"constant %s overflows %s; the conversion truncates silently",
						argTV.Value.ExactString(), target.Name())
				}
				return true
			}
			src := basicInt(argTV.Type)
			if src == nil || intWidth(target.Kind()) >= intWidth(src.Kind()) {
				return true
			}
			if ev.guarded(arg) || maskedTo(p.Info, arg, target) {
				return true
			}
			p.Reportf(call.Pos(), "unchecked-narrowing",
				"%s(%s) narrows %s to %d bits with no range guard in this function; check the bound first (cf. kg.FreezeChecked) or suppress with a reasoned //cosmo:lint-ignore",
				target.Name(), exprText(arg), src.Name(), intWidth(target.Kind()))
			return true
		})
	})
}
