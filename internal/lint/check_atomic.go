package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicHygieneCheck guards the RCU-swap contract the serving tier
// lives on (Deployment holds atomic.Pointer[kg.Snapshot], readers load
// it lock-free while DailyRefresh stores a fresh one). Two rules:
//
//  1. A type transitively containing a sync/atomic value type
//     (atomic.Pointer[T], atomic.Int64, atomic.Value, ...) must never
//     travel by value — receivers, parameters, plain assignments,
//     dereference copies, or range-over-slice element copies. The copy
//     forks the atomic word: readers of the copy never see later
//     stores, which is exactly the stale-snapshot bug RCU exists to
//     prevent. (go vet's copylocks catches some of these because the
//     atomic types embed noCopy, but by-value receivers and params on
//     your own wrapper types compile clean.)
//  2. A variable or field whose address is passed to a sync/atomic
//     function (atomic.AddInt64(&s.n, 1)) is an atomic word; every
//     other access to it in the package must also go through
//     sync/atomic. A plain read races with the atomic writers — the
//     race detector only catches it on the schedules you happened to
//     run.
var atomicHygieneCheck = Check{
	Name:     "atomic-hygiene",
	Doc:      "forbid by-value copies of atomic-containing types and mixed plain/atomic access to the same word",
	Severity: SeverityError,
	Run:      runAtomicHygiene,
}

// atomicName reports which sync/atomic value type t transitively
// contains ("atomic.Int64", "atomic.Pointer", ...), or "". Like
// lockerName it looks through named types, struct fields, and arrays —
// the shapes a copy silently duplicates.
func atomicName(t types.Type) string {
	return atomicNameRec(t, map[types.Type]bool{})
}

func atomicNameRec(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			switch obj.Name() {
			case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
				return "atomic." + obj.Name()
			}
		}
		return atomicNameRec(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := atomicNameRec(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return atomicNameRec(u.Elem(), seen)
	}
	return ""
}

func runAtomicHygiene(p *Pass) {
	byValueAtomics(p)
	mixedAtomicAccess(p)
}

// byValueAtomics flags receivers, parameters, assignments, and range
// clauses that copy an atomic-containing value.
func byValueAtomics(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			var fields []*ast.Field
			if fd.Recv != nil {
				fields = append(fields, fd.Recv.List...)
			}
			if fd.Type.Params != nil {
				fields = append(fields, fd.Type.Params.List...)
			}
			for _, field := range fields {
				tv, ok := p.Info.Types[field.Type]
				if !ok {
					continue
				}
				if _, isPtr := tv.Type.(*types.Pointer); isPtr {
					continue
				}
				name := atomicName(tv.Type)
				if name == "" {
					continue
				}
				kind := "parameter"
				if fd.Recv != nil && len(fd.Recv.List) > 0 && field == fd.Recv.List[0] {
					kind = "receiver"
				}
				p.Reportf(field.Type.Pos(), "atomic-hygiene",
					"%s %s of %s contains %s and is passed by value; the copy forks the atomic word — use a pointer",
					kind, exprText(field.Type), fd.Name.Name, name)
			}
		}
	}
	// Assignments and range clauses that copy an atomic-containing
	// value out of a variable, dereference, or element.
	forEachFuncBody(p.Files, func(fb funcBody) {
		inspectShallow(fb.body, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range stmt.Rhs {
					if copiesAtomic(p.Info, rhs) {
						name := atomicName(p.Info.Types[rhs].Type)
						p.Reportf(rhs.Pos(), "atomic-hygiene",
							"assignment copies a value containing %s; the copy forks the atomic word — keep a pointer instead",
							name)
					}
				}
			case *ast.RangeStmt:
				if stmt.Value == nil {
					return true
				}
				// A := range value var is a definition, not an expression:
				// resolve its type through Defs (Uses for = form).
				var t types.Type
				if tv, ok := p.Info.Types[stmt.Value]; ok {
					t = tv.Type
				} else if id, ok := stmt.Value.(*ast.Ident); ok {
					if obj := p.Info.Defs[id]; obj != nil {
						t = obj.Type()
					} else if obj := p.Info.Uses[id]; obj != nil {
						t = obj.Type()
					}
				}
				if t == nil {
					return true
				}
				if name := atomicName(t); name != "" {
					p.Reportf(stmt.Value.Pos(), "atomic-hygiene",
						"range copies elements containing %s by value; range over indices and take pointers",
						name)
				}
			}
			return true
		})
	})
}

// copiesAtomic reports whether evaluating e as an assignment RHS copies
// an atomic-containing value: e is an addressable expression (variable,
// field selector, index, dereference) of such a type. Composite
// literals and calls construct fresh values and are fine.
func copiesAtomic(info *types.Info, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || !tv.IsValue() {
		return false
	}
	if _, isPtr := tv.Type.(*types.Pointer); isPtr {
		return false
	}
	return atomicName(tv.Type) != ""
}

// mixedAtomicAccess enforces rule 2: collect every variable whose
// address feeds a sync/atomic function, then flag every use of those
// variables outside sync/atomic call arguments.
func mixedAtomicAccess(p *Pass) {
	atomicVars := map[*types.Var]bool{}   // words accessed via sync/atomic
	insideAtomic := map[*ast.Ident]bool{} // idents appearing inside those calls
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						insideAtomic[id] = true
					}
					return true
				})
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				var id *ast.Ident
				switch target := ast.Unparen(un.X).(type) {
				case *ast.Ident:
					id = target
				case *ast.SelectorExpr:
					id = target.Sel
				}
				if id == nil {
					continue
				}
				if v, ok := p.Info.Uses[id].(*types.Var); ok {
					atomicVars[v] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || insideAtomic[id] {
				return true
			}
			v, ok := p.Info.Uses[id].(*types.Var)
			if !ok || !atomicVars[v] {
				return true
			}
			p.Reportf(id.Pos(), "atomic-hygiene",
				"%s is accessed with sync/atomic elsewhere in this package; this plain access races with the atomic writers — use the matching atomic load/store",
				id.Name)
			return true
		})
	}
}
