package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("cosmo/internal/serving")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	moduleRoot string
}

// relPath renders a file position relative to the module root so
// findings are stable regardless of where the tree is checked out.
func (p *Package) relPath(filename string) string {
	if rel, err := filepath.Rel(p.moduleRoot, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filename
}

// Loader parses and type-checks module packages using only the
// standard library. Imports inside the module resolve to source
// directories under the module root; everything else (the stdlib)
// resolves through go/importer's source importer. Test files are not
// loaded: the invariants guard production code, and tests legitimately
// use fixed ad-hoc seeds and wall clocks.
//
// LoadAll is safe to run with many workers (token.FileSet is
// internally locked, finished *types.Package values are immutable, and
// the two shared mutable structures — the package memo and the stdlib
// source importer — sit behind mutexes). The sequential LoadDir entry
// point is not itself goroutine-safe; callers who share a Loader
// across goroutines must serialize LoadDir calls.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	stdMu   sync.Mutex          // go/importer's source importer memoizes without locking
	mu      sync.Mutex          // guards pkgs during parallel waves
	pkgs    map[string]*Package // memoized by absolute dir
	loading map[string]bool     // import-cycle guard (sequential LoadDir only)
}

// stdImport resolves a non-module import through the stdlib source
// importer, serialized: the importer memoizes into an unlocked map.
// Each stdlib package is type-checked once and then served from the
// memo, so the critical section is cold exactly once per package.
func (l *Loader) stdImport(path string) (*types.Package, error) {
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// NewLoader builds a loader for the module rooted at moduleRoot
// (a directory containing go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: abs,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// readModulePath extracts the module path from the first "module" line
// of a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			path := strings.TrimSpace(rest)
			if path != "" {
				return strings.Trim(path, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module line", gomod)
}

// LoadAll loads every package in the module in deterministic directory
// order, skipping testdata, hidden, and VCS directories, with parsing
// and type-checking fanned out across workers goroutines (<= 0 means
// GOMAXPROCS). The returned slice is identical for every worker count.
func (l *Loader) LoadAll(workers int) ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return l.loadAllParallel(dirs, workers)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") &&
			fileMatchesBuild(filepath.Join(dir, e.Name())) {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in dir (memoized).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	importPath := l.importPathFor(abs)
	ents, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		if !fileMatchesBuild(filepath.Join(abs, e.Name())) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", abs)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:       importPath,
		Dir:        abs,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		moduleRoot: l.ModuleRoot,
	}
	l.pkgs[abs] = pkg
	return pkg, nil
}

// importPathFor maps an absolute directory under the module root to
// its import path.
func (l *Loader) importPathFor(abs string) string {
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// moduleImporter resolves module-local import paths from source and
// delegates everything else to the stdlib source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath)))
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.stdImport(path)
}
