// Package behavior simulates the massive user-behavior logs that COSMO
// mines. It is the substitute for Amazon's production behavior data: a
// seeded generative model over the synthetic catalog that emits the two
// behavior types the paper uses — co-buy product pairs and search-buy
// query–product pairs — plus the session logs used by the
// session-based-recommendation evaluation.
//
// Crucially, the simulator records ground truth: every intentional
// behavior carries the latent intent that caused it, and noise behaviors
// are marked as such. The annotation oracle and the pipeline-precision
// tests consume this ground truth.
package behavior

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"cosmo/internal/catalog"
)

// CoBuyPair is one co-purchase edge (p1, p2) with its event count.
type CoBuyPair struct {
	A, B  string // product IDs, A < B
	Count int
	// Intentional marks ground truth: the pair was generated because the
	// two products serve a shared latent intent (vs. random noise).
	Intentional bool
	// Intent is the shared latent intent for intentional pairs.
	Intent catalog.Intent
}

// SearchBuyPair is one query–product purchase edge with engagement stats.
type SearchBuyPair struct {
	Query     string
	ProductID string
	Clicks    int
	Purchases int
	// Broad marks ground truth: the query is a broad/ambiguous intent
	// query rather than a specific product query.
	Broad bool
	// Intent is the latent intent behind the search, when intentional.
	Intent catalog.Intent
	// Intentional is false for noise pairs (random query-product).
	Intentional bool
}

// Session is one shopping session: a chronological sequence of
// (query, item) interactions sharing a latent intent, ending in purchase.
type Session struct {
	Category catalog.Category
	Items    []string // product IDs in click order; last is the purchase
	Queries  []string // query issued before each item interaction
	Intent   catalog.Intent
}

// Log is the full simulated behavior log.
type Log struct {
	Catalog    *catalog.Catalog
	CoBuys     []CoBuyPair
	SearchBuys []SearchBuyPair

	coBuyDegree map[string]int // product ID -> degree in co-buy graph
	queryDegree map[string]int // query -> degree in query-product graph
	prodQDegree map[string]int // product ID -> degree in query-product graph
}

// Config controls the simulation.
type Config struct {
	Seed int64
	// CoBuyEvents is the number of co-purchase events to simulate.
	CoBuyEvents int
	// SearchEvents is the number of search-buy events to simulate.
	SearchEvents int
	// NoiseRate is the fraction of behaviors that are random
	// (non-intentional), the paper's "noisy behaviors".
	NoiseRate float64
	// BroadQueryRate is the fraction of intentional searches that use a
	// broad intent query instead of a specific product query.
	BroadQueryRate float64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Seed:           7,
		CoBuyEvents:    20000,
		SearchEvents:   20000,
		NoiseRate:      0.25,
		BroadQueryRate: 0.4,
	}
}

// Simulate runs the behavior simulation over the catalog.
func Simulate(c *catalog.Catalog, cfg Config) *Log {
	if cfg.CoBuyEvents <= 0 {
		cfg.CoBuyEvents = 1000
	}
	if cfg.SearchEvents <= 0 {
		cfg.SearchEvents = 1000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	log := &Log{
		Catalog:     c,
		coBuyDegree: map[string]int{},
		queryDegree: map[string]int{},
		prodQDegree: map[string]int{},
	}
	log.simulateCoBuys(rng, cfg)
	log.simulateSearchBuys(rng, cfg)
	return log
}

// pickProduct samples a product with probability proportional to its
// popularity within the whole catalog.
func pickProduct(rng *rand.Rand, ps []catalog.Product) catalog.Product {
	total := 0.0
	for _, p := range ps {
		total += p.Popularity
	}
	x := rng.Float64() * total
	for _, p := range ps {
		x -= p.Popularity
		if x <= 0 {
			return p
		}
	}
	return ps[len(ps)-1]
}

func (l *Log) simulateCoBuys(rng *rand.Rand, cfg Config) {
	c := l.Catalog
	all := c.Products()
	type key struct{ a, b string }
	agg := map[key]*CoBuyPair{}
	for i := 0; i < cfg.CoBuyEvents; i++ {
		a := pickProduct(rng, all)
		var b catalog.Product
		intentional := rng.Float64() >= cfg.NoiseRate
		var intent catalog.Intent
		if intentional {
			pt, _ := c.Type(a.Type)
			if len(pt.Complements) == 0 {
				intentional = false
			} else {
				comp := pt.Complements[rng.Intn(len(pt.Complements))]
				b = pickProduct(rng, c.OfType(comp))
				shared := c.SharedIntents(a, b)
				if len(shared) > 0 {
					intent = shared[rng.Intn(len(shared))]
				} else {
					// Complements without a literal shared intent use the
					// USED_WITH reason from either side.
					intent = usedWithIntent(c, a, b)
				}
			}
		}
		if !intentional {
			b = pickProduct(rng, all)
			for b.ID == a.ID {
				b = pickProduct(rng, all)
			}
		}
		ka, kb := a.ID, b.ID
		if ka > kb {
			ka, kb = kb, ka
		}
		k := key{ka, kb}
		if e, ok := agg[k]; ok {
			e.Count++
			// An edge observed both ways keeps its intentional label if
			// any observation was intentional.
			if intentional && !e.Intentional {
				e.Intentional = true
				e.Intent = intent
			}
		} else {
			agg[k] = &CoBuyPair{A: ka, B: kb, Count: 1, Intentional: intentional, Intent: intent}
		}
	}
	keys := make([]key, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		e := agg[k]
		l.CoBuys = append(l.CoBuys, *e)
		l.coBuyDegree[e.A]++
		l.coBuyDegree[e.B]++
	}
}

func usedWithIntent(c *catalog.Catalog, a, b catalog.Product) catalog.Intent {
	for _, in := range c.IntentsOf(a) {
		if strings.Contains(in.Tail, b.Type) {
			return in
		}
	}
	for _, in := range c.IntentsOf(b) {
		if strings.Contains(in.Tail, a.Type) {
			return in
		}
	}
	// Fall back to the first intent of a.
	ins := c.IntentsOf(a)
	if len(ins) > 0 {
		return ins[0]
	}
	return catalog.Intent{}
}

// BroadQuery derives the broad/ambiguous query form of an intent, e.g.
// "camping in the mountains" → "camping". The paper samples broad queries
// because generating knowledge for them is most valuable.
func BroadQuery(in catalog.Intent) string {
	words := strings.Fields(in.Tail)
	for _, w := range words {
		switch w {
		case "a", "an", "the", "in", "on", "at", "of", "for", "to", "with", "before", "while":
			continue
		}
		return w
	}
	if len(words) > 0 {
		return words[0]
	}
	return in.Tail
}

// SpecificQuery derives a specific query for a product: its type name,
// optionally qualified by the broad intent ("camping air mattress").
func SpecificQuery(p catalog.Product, in catalog.Intent, qualified bool) string {
	if qualified {
		return BroadQuery(in) + " " + p.Type
	}
	return p.Type
}

func (l *Log) simulateSearchBuys(rng *rand.Rand, cfg Config) {
	c := l.Catalog
	all := c.Products()
	type key struct{ q, p string }
	agg := map[key]*SearchBuyPair{}
	for i := 0; i < cfg.SearchEvents; i++ {
		p := pickProduct(rng, all)
		intents := c.IntentsOf(p)
		intentional := rng.Float64() >= cfg.NoiseRate && len(intents) > 0
		var q string
		var intent catalog.Intent
		broad := false
		if intentional {
			intent = intents[rng.Intn(len(intents))]
			switch {
			case rng.Float64() < cfg.BroadQueryRate:
				q = BroadQuery(intent)
				broad = true
			case rng.Float64() < 0.5:
				q = SpecificQuery(p, intent, true)
			default:
				q = SpecificQuery(p, intent, false)
			}
		} else {
			// Noise: a query from a random other product's vocabulary.
			o := all[rng.Intn(len(all))]
			q = o.Type
		}
		k := key{q, p.ID}
		clicks := 1 + rng.Intn(3)
		purchased := 0
		if rng.Float64() < 0.6 || intentional {
			purchased = 1
		}
		if e, ok := agg[k]; ok {
			e.Clicks += clicks
			e.Purchases += purchased
			if intentional && !e.Intentional {
				e.Intentional = true
				e.Intent = intent
				e.Broad = broad
			}
		} else {
			agg[k] = &SearchBuyPair{
				Query: q, ProductID: p.ID, Clicks: clicks, Purchases: purchased,
				Broad: broad, Intent: intent, Intentional: intentional,
			}
		}
	}
	keys := make([]key, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].q != keys[j].q {
			return keys[i].q < keys[j].q
		}
		return keys[i].p < keys[j].p
	})
	for _, k := range keys {
		e := agg[k]
		l.SearchBuys = append(l.SearchBuys, *e)
		l.queryDegree[e.Query]++
		l.prodQDegree[e.ProductID]++
	}
}

// CoBuyDegree returns the degree of product id in the co-buy graph, the
// paper's pop(p) for co-buy behaviors (Eq. 2).
func (l *Log) CoBuyDegree(id string) int { return l.coBuyDegree[id] }

// QueryDegree returns the degree of the query in the query-product
// interaction graph, the paper's pop(q) (Eq. 2).
func (l *Log) QueryDegree(q string) int { return l.queryDegree[q] }

// ProductQueryDegree returns the degree of product id in the
// query-product interaction graph.
func (l *Log) ProductQueryDegree(id string) int { return l.prodQDegree[id] }

// SessionConfig controls session-log simulation.
type SessionConfig struct {
	Seed int64
	// Sessions is the number of sessions to generate.
	Sessions int
	// Category restricts sessions to one domain (the paper evaluates
	// clothing and electronics separately).
	Category catalog.Category
	// MeanLength is the mean session length (items); the paper reports
	// ~8.8 for clothing and ~12.3 for electronics.
	MeanLength float64
	// QueryChurn is the probability the user reformulates the query
	// between steps; electronics sessions churn more (2.47 unique
	// queries vs 1.36 for clothing in Table 7).
	QueryChurn float64
}

// SimulateSessions generates session logs within one category. Each
// session picks a latent intent, then walks products whose types serve
// that intent, interleaved with query reformulations.
func SimulateSessions(c *catalog.Catalog, cfg SessionConfig) []Session {
	rng := rand.New(rand.NewSource(cfg.Seed))
	types := c.TypesInCategory(cfg.Category)
	if len(types) == 0 || cfg.Sessions <= 0 {
		return nil
	}
	// Index types by intent so sessions stay intent-coherent.
	byIntent := map[catalog.Intent][]string{}
	for _, tn := range types {
		pt, _ := c.Type(tn)
		for _, in := range pt.Intents {
			byIntent[in] = append(byIntent[in], tn)
		}
	}
	intents := make([]catalog.Intent, 0, len(byIntent))
	for in := range byIntent {
		intents = append(intents, in)
	}
	sort.Slice(intents, func(i, j int) bool {
		if intents[i].Relation != intents[j].Relation {
			return intents[i].Relation < intents[j].Relation
		}
		return intents[i].Tail < intents[j].Tail
	})
	sessions := make([]Session, 0, cfg.Sessions)
	for s := 0; s < cfg.Sessions; s++ {
		intent := intents[rng.Intn(len(intents))]
		pool := byIntent[intent]
		length := 2 + rng.Intn(int(cfg.MeanLength*2-3)+1) // mean ≈ MeanLength
		sess := Session{Category: cfg.Category, Intent: intent}
		q := BroadQuery(intent)
		for i := 0; i < length; i++ {
			tn := pool[rng.Intn(len(pool))]
			// Occasionally drift to a related type in the category to
			// model exploratory behavior.
			if rng.Float64() < 0.2 {
				tn = types[rng.Intn(len(types))]
			}
			p := pickProduct(rng, c.OfType(tn))
			if i > 0 && rng.Float64() < cfg.QueryChurn {
				// Reformulate: qualify the broad query with the type.
				if rng.Float64() < 0.5 {
					q = BroadQuery(intent) + " " + tn
				} else {
					q = tn
				}
			}
			sess.Items = append(sess.Items, p.ID)
			sess.Queries = append(sess.Queries, q)
		}
		sessions = append(sessions, sess)
	}
	return sessions
}

// Stats summarizes a behavior log per category, matching the layout of
// paper Table 3 (behavior pairs per category per behavior type).
type Stats struct {
	Category        catalog.Category
	CoBuyPairs      int
	SearchBuyPairs  int
	IntentionalRate float64
}

// PerCategoryStats computes per-category pair counts.
func (l *Log) PerCategoryStats() []Stats {
	idx := map[catalog.Category]*Stats{}
	for _, cat := range catalog.Categories() {
		idx[cat] = &Stats{Category: cat}
	}
	intentional := map[catalog.Category]int{}
	totals := map[catalog.Category]int{}
	for _, e := range l.CoBuys {
		p, _ := l.Catalog.ByID(e.A)
		idx[p.Category].CoBuyPairs++
		totals[p.Category]++
		if e.Intentional {
			intentional[p.Category]++
		}
	}
	for _, e := range l.SearchBuys {
		p, _ := l.Catalog.ByID(e.ProductID)
		idx[p.Category].SearchBuyPairs++
		totals[p.Category]++
		if e.Intentional {
			intentional[p.Category]++
		}
	}
	out := make([]Stats, 0, len(idx))
	for _, cat := range catalog.Categories() {
		s := idx[cat]
		if totals[cat] > 0 {
			s.IntentionalRate = float64(intentional[cat]) / float64(totals[cat])
		}
		out = append(out, *s)
	}
	return out
}

// String renders a behavior pair for debugging.
func (p CoBuyPair) String() string {
	return fmt.Sprintf("co-buy(%s,%s)x%d intentional=%v", p.A, p.B, p.Count, p.Intentional)
}
