package behavior

import (
	"testing"
	"testing/quick"

	"cosmo/internal/catalog"
)

func TestEventConservation(t *testing.T) {
	c := catalog.Generate(catalog.Config{ProductsPerType: 3, Seed: 1})
	cfg := Config{Seed: 9, CoBuyEvents: 3000, SearchEvents: 3000, NoiseRate: 0.2, BroadQueryRate: 0.3}
	l := Simulate(c, cfg)
	// Every co-buy event lands in exactly one aggregated edge.
	total := 0
	for _, e := range l.CoBuys {
		total += e.Count
	}
	if total != cfg.CoBuyEvents {
		t.Errorf("co-buy events: %d aggregated of %d simulated", total, cfg.CoBuyEvents)
	}
}

func TestSearchBuyClickPurchaseInvariant(t *testing.T) {
	c := catalog.Generate(catalog.Config{ProductsPerType: 3, Seed: 1})
	l := Simulate(c, DefaultConfig())
	for _, e := range l.SearchBuys {
		if e.Purchases > e.Clicks {
			t.Fatalf("purchases %d > clicks %d for %q", e.Purchases, e.Clicks, e.Query)
		}
		if e.Purchases < 0 || e.Clicks < 1 {
			t.Fatalf("bad engagement: %+v", e)
		}
	}
}

func TestNoSelfCoBuys(t *testing.T) {
	c := catalog.Generate(catalog.Config{ProductsPerType: 3, Seed: 1})
	l := Simulate(c, DefaultConfig())
	for _, e := range l.CoBuys {
		if e.A == e.B {
			t.Fatalf("self co-buy: %s", e.A)
		}
	}
}

func TestBroadQueryNeverEmptyProperty(t *testing.T) {
	f := func(tail string) bool {
		in := catalog.Intent{Tail: tail}
		q := BroadQuery(in)
		// BroadQuery must return the tail itself when it cannot find a
		// content word, never an empty string for non-empty input.
		return tail == "" || q != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroNoiseRateAllIntentional(t *testing.T) {
	c := catalog.Generate(catalog.Config{ProductsPerType: 3, Seed: 1})
	l := Simulate(c, Config{Seed: 5, CoBuyEvents: 2000, SearchEvents: 2000, NoiseRate: 0, BroadQueryRate: 0.3})
	for _, e := range l.CoBuys {
		if !e.Intentional {
			// A product type without complements forces a noise draw even
			// at rate zero; all curated types have complements, so this
			// should not happen.
			t.Fatalf("noise co-buy at zero noise rate: %s", e)
		}
	}
}

func TestFullNoiseRateNoIntentional(t *testing.T) {
	c := catalog.Generate(catalog.Config{ProductsPerType: 3, Seed: 1})
	l := Simulate(c, Config{Seed: 5, CoBuyEvents: 2000, SearchEvents: 2000, NoiseRate: 1.0, BroadQueryRate: 0.3})
	for _, e := range l.CoBuys {
		if e.Intentional {
			t.Fatalf("intentional co-buy at full noise rate: %s", e)
		}
	}
	for _, e := range l.SearchBuys {
		if e.Intentional {
			t.Fatalf("intentional search at full noise rate: %+v", e)
		}
	}
}
