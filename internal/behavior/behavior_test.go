package behavior

import (
	"testing"

	"cosmo/internal/catalog"
)

func testWorld(t *testing.T) (*catalog.Catalog, *Log) {
	t.Helper()
	c := catalog.Generate(catalog.Config{ProductsPerType: 4, Seed: 1})
	l := Simulate(c, Config{
		Seed: 2, CoBuyEvents: 5000, SearchEvents: 5000,
		NoiseRate: 0.25, BroadQueryRate: 0.4,
	})
	return c, l
}

func TestSimulateDeterministic(t *testing.T) {
	c := catalog.Generate(catalog.Config{ProductsPerType: 3, Seed: 1})
	cfg := Config{Seed: 5, CoBuyEvents: 500, SearchEvents: 500, NoiseRate: 0.2, BroadQueryRate: 0.3}
	a := Simulate(c, cfg)
	b := Simulate(c, cfg)
	if len(a.CoBuys) != len(b.CoBuys) || len(a.SearchBuys) != len(b.SearchBuys) {
		t.Fatal("simulation not deterministic in sizes")
	}
	for i := range a.CoBuys {
		if a.CoBuys[i] != b.CoBuys[i] {
			t.Fatalf("co-buy %d differs", i)
		}
	}
	for i := range a.SearchBuys {
		if a.SearchBuys[i] != b.SearchBuys[i] {
			t.Fatalf("search-buy %d differs", i)
		}
	}
}

func TestCoBuysOrderedAndValid(t *testing.T) {
	c, l := testWorld(t)
	if len(l.CoBuys) == 0 {
		t.Fatal("no co-buys")
	}
	for _, e := range l.CoBuys {
		if e.A >= e.B {
			t.Fatalf("pair not ordered: %s", e)
		}
		if _, ok := c.ByID(e.A); !ok {
			t.Fatalf("unknown product %s", e.A)
		}
		if _, ok := c.ByID(e.B); !ok {
			t.Fatalf("unknown product %s", e.B)
		}
		if e.Count <= 0 {
			t.Fatalf("bad count: %s", e)
		}
	}
}

func TestIntentionalCoBuysHaveGroundTruthReason(t *testing.T) {
	c, l := testWorld(t)
	intentional := 0
	for _, e := range l.CoBuys {
		if !e.Intentional {
			continue
		}
		intentional++
		if e.Intent.Tail == "" {
			t.Fatalf("intentional pair without intent: %s", e)
		}
		a, _ := c.ByID(e.A)
		b, _ := c.ByID(e.B)
		if !c.AreComplements(a.Type, b.Type) && len(c.SharedIntents(a, b)) == 0 {
			t.Fatalf("intentional pair %s/%s is neither complements nor intent-sharing", a.Type, b.Type)
		}
	}
	if intentional == 0 {
		t.Fatal("no intentional co-buys generated")
	}
}

func TestNoiseRateApproximatelyRespected(t *testing.T) {
	_, l := testWorld(t)
	noise := 0
	for _, e := range l.CoBuys {
		if !e.Intentional {
			noise++
		}
	}
	rate := float64(noise) / float64(len(l.CoBuys))
	// Aggregation merges repeated intentional pairs more often than noise
	// pairs, so the edge-level noise rate exceeds the event-level 25%;
	// it must stay well below 1 and above 0.
	if rate <= 0.05 || rate >= 0.95 {
		t.Errorf("noise rate %.2f implausible", rate)
	}
}

func TestSearchBuysValid(t *testing.T) {
	c, l := testWorld(t)
	if len(l.SearchBuys) == 0 {
		t.Fatal("no search-buys")
	}
	broad := 0
	for _, e := range l.SearchBuys {
		if e.Query == "" {
			t.Fatal("empty query")
		}
		if _, ok := c.ByID(e.ProductID); !ok {
			t.Fatalf("unknown product %s", e.ProductID)
		}
		if e.Clicks <= 0 {
			t.Fatalf("clicks must be positive: %+v", e)
		}
		if e.Broad {
			broad++
			if !e.Intentional {
				t.Fatalf("broad query must be intentional: %+v", e)
			}
		}
	}
	if broad == 0 {
		t.Error("no broad queries generated")
	}
}

func TestBroadQuery(t *testing.T) {
	in := catalog.Intent{Tail: "camping in the mountains"}
	if got := BroadQuery(in); got != "camping" {
		t.Errorf("BroadQuery = %q", got)
	}
	in = catalog.Intent{Tail: "attend a wedding party"}
	if got := BroadQuery(in); got != "attend" {
		t.Errorf("BroadQuery = %q", got)
	}
	in = catalog.Intent{Tail: "the"}
	if got := BroadQuery(in); got != "the" {
		t.Errorf("fallback BroadQuery = %q", got)
	}
}

func TestSpecificQuery(t *testing.T) {
	p := catalog.Product{Type: "air mattress"}
	in := catalog.Intent{Tail: "camping in the mountains"}
	if got := SpecificQuery(p, in, true); got != "camping air mattress" {
		t.Errorf("qualified = %q", got)
	}
	if got := SpecificQuery(p, in, false); got != "air mattress" {
		t.Errorf("unqualified = %q", got)
	}
}

func TestDegrees(t *testing.T) {
	_, l := testWorld(t)
	// Degrees must be consistent with the edge lists.
	coDeg := map[string]int{}
	for _, e := range l.CoBuys {
		coDeg[e.A]++
		coDeg[e.B]++
	}
	for id, d := range coDeg {
		if l.CoBuyDegree(id) != d {
			t.Fatalf("co-buy degree mismatch for %s: %d vs %d", id, l.CoBuyDegree(id), d)
		}
	}
	qDeg := map[string]int{}
	for _, e := range l.SearchBuys {
		qDeg[e.Query]++
	}
	for q, d := range qDeg {
		if l.QueryDegree(q) != d {
			t.Fatalf("query degree mismatch for %q", q)
		}
	}
	if l.CoBuyDegree("UNKNOWN") != 0 || l.QueryDegree("unknown query") != 0 {
		t.Error("unknown keys should have zero degree")
	}
}

func TestPerCategoryStats(t *testing.T) {
	_, l := testWorld(t)
	stats := l.PerCategoryStats()
	if len(stats) != 18 {
		t.Fatalf("got %d categories, want 18", len(stats))
	}
	totalCo, totalSearch := 0, 0
	for _, s := range stats {
		totalCo += s.CoBuyPairs
		totalSearch += s.SearchBuyPairs
		if s.IntentionalRate < 0 || s.IntentionalRate > 1 {
			t.Errorf("category %s intentional rate %v out of range", s.Category, s.IntentionalRate)
		}
	}
	if totalCo != len(l.CoBuys) {
		t.Errorf("co-buy totals mismatch: %d vs %d", totalCo, len(l.CoBuys))
	}
	if totalSearch != len(l.SearchBuys) {
		t.Errorf("search totals mismatch: %d vs %d", totalSearch, len(l.SearchBuys))
	}
}

func TestSimulateSessions(t *testing.T) {
	c := catalog.Generate(catalog.Config{ProductsPerType: 4, Seed: 1})
	sessions := SimulateSessions(c, SessionConfig{
		Seed: 3, Sessions: 200, Category: catalog.Electronics,
		MeanLength: 8, QueryChurn: 0.5,
	})
	if len(sessions) != 200 {
		t.Fatalf("got %d sessions", len(sessions))
	}
	for _, s := range sessions {
		if len(s.Items) < 2 {
			t.Fatalf("session too short: %d", len(s.Items))
		}
		if len(s.Items) != len(s.Queries) {
			t.Fatal("items and queries must align")
		}
		if s.Category != catalog.Electronics {
			t.Fatal("wrong category")
		}
		for _, id := range s.Items {
			p, ok := c.ByID(id)
			if !ok {
				t.Fatalf("unknown item %s", id)
			}
			if p.Category != catalog.Electronics {
				t.Fatalf("item %s from wrong category %s", id, p.Category)
			}
		}
	}
}

func TestSessionQueryChurnEffect(t *testing.T) {
	c := catalog.Generate(catalog.Config{ProductsPerType: 4, Seed: 1})
	uniqueQueries := func(churn float64) float64 {
		sessions := SimulateSessions(c, SessionConfig{
			Seed: 3, Sessions: 300, Category: catalog.Electronics,
			MeanLength: 10, QueryChurn: churn,
		})
		total := 0.0
		for _, s := range sessions {
			seen := map[string]bool{}
			for _, q := range s.Queries {
				seen[q] = true
			}
			total += float64(len(seen))
		}
		return total / float64(len(sessions))
	}
	low := uniqueQueries(0.05)
	high := uniqueQueries(0.6)
	if high <= low {
		t.Errorf("higher churn should give more unique queries: %.2f vs %.2f", high, low)
	}
}

func TestSimulateSessionsEmptyCases(t *testing.T) {
	c := catalog.Generate(catalog.Config{ProductsPerType: 2, Seed: 1})
	if s := SimulateSessions(c, SessionConfig{Sessions: 0, Category: catalog.Electronics, MeanLength: 5}); s != nil {
		t.Error("zero sessions should return nil")
	}
	if s := SimulateSessions(c, SessionConfig{Sessions: 5, Category: catalog.Category("nope"), MeanLength: 5}); s != nil {
		t.Error("unknown category should return nil")
	}
}
