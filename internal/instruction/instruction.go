// Package instruction builds the instruction-tuning dataset of §3.4:
// annotated knowledge candidates are converted into natural-language
// instruction / input / output triples covering five task types across
// 18 product domains and 15 relation types. Typical knowledge becomes the
// desired output of the generation task; annotation labels become the
// desired outputs of the four prediction tasks. Multiple verbalization
// templates ("search query", "user input", "user searched:") make the
// tuned model robust to format variation.
package instruction

import (
	"fmt"
	"math/rand"

	"cosmo/internal/annotation"
	"cosmo/internal/catalog"
	"cosmo/internal/know"
	"cosmo/internal/relations"
)

// Task is one of the five instruction task types.
type Task string

// The five task types of §3.4.
const (
	TaskGenerate        Task = "knowledge-generation"
	TaskPlausibility    Task = "plausibility-prediction"
	TaskTypicality      Task = "typicality-prediction"
	TaskCoPurchase      Task = "co-purchase-prediction"
	TaskSearchRelevance Task = "search-relevance-prediction"
)

// Tasks lists all five task types.
func Tasks() []Task {
	return []Task{TaskGenerate, TaskPlausibility, TaskTypicality, TaskCoPurchase, TaskSearchRelevance}
}

// Instance is one instruction-tuning example.
type Instance struct {
	Task        Task
	Instruction string
	Input       string
	Output      string
	Domain      catalog.Category
	Relation    relations.Relation
	Behavior    know.BehaviorType
	// CandidateID links back to the source candidate.
	CandidateID int
}

// Config controls dataset construction.
type Config struct {
	Seed int64
	// IncludeTasks restricts construction to a subset (for the
	// task-diversity ablation); empty means all five.
	IncludeTasks []Task
}

// DefaultConfig includes all five tasks.
func DefaultConfig() Config { return Config{Seed: 29} }

// queryPrefixes are the format-robustness template variants.
var queryPrefixes = []string{"search query: %s", "user input: %s", "user searched: %s"}

var generateTemplates = []string{
	"Generate an explanation for the %s behavior in the %s domain using the %s relation.",
	"Explain why the customer made this purchase in the %s domain (behavior: %s, relation: %s).",
	"Write the commonsense knowledge behind this %s behavior (%s domain, relation %s).",
}

// Builder constructs instruction data.
type Builder struct {
	cfg Config
	rng *rand.Rand
}

// NewBuilder returns a builder.
func NewBuilder(cfg Config) *Builder {
	return &Builder{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (b *Builder) includes(t Task) bool {
	if len(b.cfg.IncludeTasks) == 0 {
		return true
	}
	for _, x := range b.cfg.IncludeTasks {
		if x == t {
			return true
		}
	}
	return false
}

// verbalizeInput renders the behavior head with a random template prefix.
func (b *Builder) verbalizeInput(c know.Candidate) string {
	if c.Behavior == know.SearchBuy {
		prefix := queryPrefixes[b.rng.Intn(len(queryPrefixes))]
		return fmt.Sprintf(prefix, c.Query) + " | purchased: " + c.ContextText
	}
	return "co-purchased products: " + c.ContextText
}

func yesNo(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}

// Build converts annotated candidates into instruction instances. The
// candidates and annotations must be aligned (anns[i] labels cands[i]).
func (b *Builder) Build(cands []know.Candidate, anns []annotation.Annotation) []Instance {
	var out []Instance
	for i, c := range cands {
		a := anns[i]
		input := b.verbalizeInput(c)
		if b.includes(TaskGenerate) && a.Typical() {
			tmpl := generateTemplates[b.rng.Intn(len(generateTemplates))]
			out = append(out, Instance{
				Task: TaskGenerate,
				Instruction: fmt.Sprintf(tmpl, string(c.Behavior), string(c.Domain),
					string(c.Relation)),
				Input: input, Output: c.Text,
				Domain: c.Domain, Relation: c.Relation, Behavior: c.Behavior,
				CandidateID: c.ID,
			})
		}
		if b.includes(TaskPlausibility) {
			out = append(out, Instance{
				Task:        TaskPlausibility,
				Instruction: "Is the following explanation plausible for the behavior? Answer yes or no.",
				Input:       input + " | explanation: " + c.Text,
				Output:      yesNo(a.Plausible()),
				Domain:      c.Domain, Relation: c.Relation, Behavior: c.Behavior,
				CandidateID: c.ID,
			})
		}
		if b.includes(TaskTypicality) {
			out = append(out, Instance{
				Task:        TaskTypicality,
				Instruction: "Is the following explanation typical of the shopping behavior? Answer yes or no.",
				Input:       input + " | explanation: " + c.Text,
				Output:      yesNo(a.Typical()),
				Domain:      c.Domain, Relation: c.Relation, Behavior: c.Behavior,
				CandidateID: c.ID,
			})
		}
		// The pair-relevance annotations identify irrelevant
		// query-product pairs and random co-buy pairs (§3.4), which
		// become negative examples for the two auxiliary tasks.
		relevant := a.PairRelevant
		switch c.Behavior {
		case know.CoBuy:
			if b.includes(TaskCoPurchase) {
				out = append(out, Instance{
					Task:        TaskCoPurchase,
					Instruction: "Would these two products typically be purchased together? Answer yes or no.",
					Input:       "co-purchased products: " + c.ContextText,
					Output:      yesNo(relevant),
					Domain:      c.Domain, Behavior: c.Behavior, CandidateID: c.ID,
				})
			}
		case know.SearchBuy:
			if b.includes(TaskSearchRelevance) {
				out = append(out, Instance{
					Task:        TaskSearchRelevance,
					Instruction: "Is the product relevant to the search query? Answer yes or no.",
					Input:       input,
					Output:      yesNo(relevant),
					Domain:      c.Domain, Behavior: c.Behavior, CandidateID: c.ID,
				})
			}
		}
	}
	return out
}

// Stats summarizes an instruction dataset.
type Stats struct {
	Total     int
	PerTask   map[Task]int
	Domains   int
	Relations int
}

// Summarize computes coverage statistics.
func Summarize(data []Instance) Stats {
	s := Stats{PerTask: map[Task]int{}}
	doms := map[catalog.Category]bool{}
	rels := map[relations.Relation]bool{}
	for _, in := range data {
		s.Total++
		s.PerTask[in.Task]++
		doms[in.Domain] = true
		if in.Relation != "" {
			rels[in.Relation] = true
		}
	}
	s.Domains = len(doms)
	s.Relations = len(rels)
	return s
}
