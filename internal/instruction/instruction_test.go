package instruction

import (
	"strings"
	"testing"

	"cosmo/internal/annotation"
	"cosmo/internal/catalog"
	"cosmo/internal/know"
	"cosmo/internal/llm"
	"cosmo/internal/relations"
)

func sampleData() ([]know.Candidate, []annotation.Annotation) {
	truthTypical := llm.Truth{Complete: true, Relevant: true, Informative: true, Plausible: true, Typical: true}
	truthNoise := llm.Truth{Complete: true, Relevant: false, Informative: true, Plausible: false, Typical: false}
	cands := []know.Candidate{
		{ID: 1, Behavior: know.SearchBuy, Domain: catalog.Sports, Query: "camping",
			ContextText: "Acme air mattress", Text: "used for camping in the mountains",
			Relation: relations.UsedForEve, Truth: truthTypical, PairIntentional: true},
		{ID: 2, Behavior: know.CoBuy, Domain: catalog.Electronics,
			ContextText: "camera case and screen protector", Text: "capable of providing protection for camera",
			Relation: relations.CapableOf, Truth: truthTypical, PairIntentional: true},
		{ID: 3, Behavior: know.SearchBuy, Domain: catalog.PetSupplies, Query: "fence post",
			ContextText: "Zenith dog leash", Text: "used to build a fence",
			Relation: relations.UsedTo, Truth: truthNoise},
	}
	o := annotation.NewOracle(annotation.Config{Seed: 1})
	return cands, o.AnnotateAll(cands)
}

func TestBuildProducesAllTaskTypes(t *testing.T) {
	cands, anns := sampleData()
	b := NewBuilder(DefaultConfig())
	data := b.Build(cands, anns)
	s := Summarize(data)
	for _, task := range Tasks() {
		if s.PerTask[task] == 0 {
			t.Errorf("task %s has no instances", task)
		}
	}
}

func TestGenerationOnlyFromTypical(t *testing.T) {
	cands, anns := sampleData()
	b := NewBuilder(DefaultConfig())
	for _, in := range b.Build(cands, anns) {
		if in.Task != TaskGenerate {
			continue
		}
		if in.CandidateID == 3 {
			t.Error("non-typical candidate became a generation example")
		}
		if in.Output == "" {
			t.Error("generation output empty")
		}
	}
}

func TestPredictionLabelsMatchAnnotations(t *testing.T) {
	cands, anns := sampleData()
	b := NewBuilder(DefaultConfig())
	byID := map[int]annotation.Annotation{}
	for i, a := range anns {
		byID[cands[i].ID] = a
	}
	for _, in := range b.Build(cands, anns) {
		switch in.Task {
		case TaskPlausibility:
			want := "no"
			if byID[in.CandidateID].Plausible() {
				want = "yes"
			}
			if in.Output != want {
				t.Errorf("plausibility label for %d = %q, want %q", in.CandidateID, in.Output, want)
			}
		case TaskTypicality:
			want := "no"
			if byID[in.CandidateID].Typical() {
				want = "yes"
			}
			if in.Output != want {
				t.Errorf("typicality label for %d = %q, want %q", in.CandidateID, in.Output, want)
			}
		}
	}
}

func TestCoPurchaseOnlyFromCoBuy(t *testing.T) {
	cands, anns := sampleData()
	b := NewBuilder(DefaultConfig())
	for _, in := range b.Build(cands, anns) {
		if in.Task == TaskCoPurchase && in.Behavior != know.CoBuy {
			t.Error("co-purchase task from non-co-buy behavior")
		}
		if in.Task == TaskSearchRelevance && in.Behavior != know.SearchBuy {
			t.Error("search-relevance task from non-search behavior")
		}
	}
}

func TestIncludeTasksRestricts(t *testing.T) {
	cands, anns := sampleData()
	b := NewBuilder(Config{Seed: 1, IncludeTasks: []Task{TaskGenerate}})
	for _, in := range b.Build(cands, anns) {
		if in.Task != TaskGenerate {
			t.Errorf("unexpected task %s", in.Task)
		}
	}
}

func TestTemplateVariety(t *testing.T) {
	// With many search-buy candidates the builder must use more than one
	// input template.
	truth := llm.Truth{Complete: true, Relevant: true, Informative: true, Plausible: true, Typical: true}
	var cands []know.Candidate
	for i := 0; i < 60; i++ {
		cands = append(cands, know.Candidate{
			ID: i, Behavior: know.SearchBuy, Domain: catalog.Sports,
			Query: "camping", ContextText: "Acme tent",
			Text: "used for camping in the mountains", Relation: relations.UsedForEve,
			Truth: truth,
		})
	}
	o := annotation.NewOracle(annotation.Config{Seed: 2})
	b := NewBuilder(DefaultConfig())
	prefixes := map[string]bool{}
	for _, in := range b.Build(cands, o.AnnotateAll(cands)) {
		if in.Task != TaskGenerate {
			continue
		}
		prefixes[strings.SplitN(in.Input, ":", 2)[0]] = true
	}
	if len(prefixes) < 2 {
		t.Errorf("only %d input template prefixes used", len(prefixes))
	}
}

func TestSummarize(t *testing.T) {
	cands, anns := sampleData()
	b := NewBuilder(DefaultConfig())
	data := b.Build(cands, anns)
	s := Summarize(data)
	if s.Total != len(data) {
		t.Errorf("total %d != %d", s.Total, len(data))
	}
	if s.Domains < 3 {
		t.Errorf("domains = %d", s.Domains)
	}
	if s.Relations < 3 {
		t.Errorf("relations = %d", s.Relations)
	}
}

func TestBuildDeterministic(t *testing.T) {
	cands, anns := sampleData()
	d1 := NewBuilder(DefaultConfig()).Build(cands, anns)
	d2 := NewBuilder(DefaultConfig()).Build(cands, anns)
	if len(d1) != len(d2) {
		t.Fatal("lengths differ")
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("instance %d differs", i)
		}
	}
}
