package instruction

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	cands, anns := sampleData()
	data := NewBuilder(DefaultConfig()).Build(cands, anns)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, data); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(data) {
		t.Fatalf("jsonl lines %d != %d instances", lines, len(data))
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(data) {
		t.Fatalf("round trip %d of %d", len(back), len(data))
	}
	for i := range data {
		a, b := data[i], back[i]
		a.CandidateID, b.CandidateID = 0, 0 // IDs are not serialized
		if a != b {
			t.Fatalf("instance %d differs:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestReadJSONLGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{broken")); err == nil {
		t.Error("garbage should error")
	}
}

func TestReadJSONLEmpty(t *testing.T) {
	out, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(out) != 0 {
		t.Errorf("empty input: %v %v", out, err)
	}
}
