package instruction

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"cosmo/internal/catalog"
	"cosmo/internal/know"
	"cosmo/internal/relations"
)

// exportRecord is the JSONL schema, matching the Alpaca-style
// instruction/input/output layout used to fine-tune LLaMA-class models —
// the artifact a team would hand to an external training job.
type exportRecord struct {
	Task        string `json:"task"`
	Instruction string `json:"instruction"`
	Input       string `json:"input"`
	Output      string `json:"output"`
	Domain      string `json:"domain"`
	Relation    string `json:"relation,omitempty"`
	Behavior    string `json:"behavior"`
}

// WriteJSONL writes the instruction dataset as JSON lines.
func WriteJSONL(w io.Writer, data []Instance) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, in := range data {
		if err := enc.Encode(exportRecord{
			Task:        string(in.Task),
			Instruction: in.Instruction,
			Input:       in.Input,
			Output:      in.Output,
			Domain:      string(in.Domain),
			Relation:    string(in.Relation),
			Behavior:    string(in.Behavior),
		}); err != nil {
			return fmt.Errorf("instruction: encode jsonl: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads an instruction dataset written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Instance, error) {
	var out []Instance
	dec := json.NewDecoder(r)
	for dec.More() {
		var rec exportRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("instruction: decode jsonl: %w", err)
		}
		out = append(out, Instance{
			Task:        Task(rec.Task),
			Instruction: rec.Instruction,
			Input:       rec.Input,
			Output:      rec.Output,
			Domain:      catalog.Category(rec.Domain),
			Relation:    relations.Relation(rec.Relation),
			Behavior:    know.BehaviorType(rec.Behavior),
		})
	}
	return out, nil
}
