package sampling

import (
	"math"
	"math/rand"
	"testing"

	"cosmo/internal/behavior"
	"cosmo/internal/catalog"
)

func testSampler(t *testing.T) (*behavior.Log, *Sampler) {
	t.Helper()
	c := catalog.Generate(catalog.Config{ProductsPerType: 6, Seed: 1})
	l := behavior.Simulate(c, behavior.Config{
		Seed: 2, CoBuyEvents: 8000, SearchEvents: 8000,
		NoiseRate: 0.3, BroadQueryRate: 0.4,
	})
	return l, New(l, DefaultConfig())
}

func TestSampleProductsTopTier(t *testing.T) {
	l, s := testSampler(t)
	sel := s.SampleProducts()
	if len(sel) == 0 {
		t.Fatal("no products selected")
	}
	// Every type contributes at most TopProductsPerType products.
	perType := map[string]int{}
	for id := range sel {
		p, _ := l.Catalog.ByID(id)
		perType[p.Type]++
	}
	for tn, n := range perType {
		if n > DefaultConfig().TopProductsPerType {
			t.Errorf("type %q selected %d products", tn, n)
		}
	}
	// Selected products of a type must have interaction volume >= any
	// unselected product of the same type.
	for _, tn := range l.Catalog.Types() {
		minSel, maxUnsel := math.MaxInt, -1
		for _, p := range l.Catalog.OfType(tn) {
			vol := l.CoBuyDegree(p.ID) + l.ProductQueryDegree(p.ID)
			if sel[p.ID] {
				if vol < minSel {
					minSel = vol
				}
			} else if vol > maxUnsel {
				maxUnsel = vol
			}
		}
		if maxUnsel > minSel {
			t.Fatalf("type %q: unselected product has volume %d > selected min %d", tn, maxUnsel, minSel)
		}
	}
}

func TestSampleCoBuyPairsFiltersRandom(t *testing.T) {
	l, s := testSampler(t)
	sel := s.SampleProducts()
	pairs := s.SampleCoBuyPairs(sel)
	if len(pairs) == 0 {
		t.Fatal("no pairs sampled")
	}
	c := l.Catalog
	intentional := 0
	for _, e := range pairs {
		if !sel[e.A] && !sel[e.B] {
			t.Fatal("pair covers no selected product")
		}
		if e.Intentional {
			intentional++
		}
		pa, _ := c.ByID(e.A)
		pb, _ := c.ByID(e.B)
		if pa.Type != pb.Type && !c.AreComplements(pa.Type, pb.Type) {
			a0 := c.OfType(pa.Type)[0]
			b0 := c.OfType(pb.Type)[0]
			if len(c.SharedIntents(a0, b0)) == 0 {
				t.Fatalf("random-type pair survived: %s / %s", pa.Type, pb.Type)
			}
		}
	}
	// The sampled set should be much cleaner than the raw log.
	rawIntentional := 0
	for _, e := range l.CoBuys {
		if e.Intentional {
			rawIntentional++
		}
	}
	rawRate := float64(rawIntentional) / float64(len(l.CoBuys))
	sampledRate := float64(intentional) / float64(len(pairs))
	if sampledRate <= rawRate {
		t.Errorf("sampling should raise intentional rate: %.2f vs raw %.2f", sampledRate, rawRate)
	}
}

func TestTypePairCap(t *testing.T) {
	l, _ := testSampler(t)
	cfg := DefaultConfig()
	cfg.MaxPairsPerTypePair = 3
	s := New(l, cfg)
	sel := s.SampleProducts()
	pairs := s.SampleCoBuyPairs(sel)
	counts := map[[2]string]int{}
	for _, e := range pairs {
		pa, _ := l.Catalog.ByID(e.A)
		pb, _ := l.Catalog.ByID(e.B)
		tp := [2]string{pa.Type, pb.Type}
		if tp[0] > tp[1] {
			tp[0], tp[1] = tp[1], tp[0]
		}
		counts[tp]++
	}
	for tp, n := range counts {
		if n > 3 {
			t.Errorf("type pair %v sampled %d > cap 3", tp, n)
		}
	}
}

func TestSpecificityOrdering(t *testing.T) {
	_, s := testSampler(t)
	broad := s.Specificity("camping")
	specific := s.Specificity("camping air mattress for lakeside trips")
	if broad >= specific {
		t.Errorf("broad %.2f should score below specific %.2f", broad, specific)
	}
}

func TestSampleSearchBuyPairsThresholds(t *testing.T) {
	_, s := testSampler(t)
	sel := s.SampleProducts()
	pairs := s.SampleSearchBuyPairs(sel)
	if len(pairs) == 0 {
		t.Fatal("no search pairs sampled")
	}
	cfg := DefaultConfig()
	lowEngagement := 0
	for _, e := range pairs {
		if !sel[e.ProductID] {
			t.Fatal("pair covers no selected product")
		}
		rate := float64(e.Purchases) / float64(e.Clicks)
		if e.Clicks < cfg.MinClickCount || rate < cfg.MinPurchaseRate {
			lowEngagement++
		}
	}
	// Some low-engagement probes are allowed, but bounded.
	if frac := float64(lowEngagement) / float64(len(pairs)); frac > 0.2 {
		t.Errorf("low-engagement fraction %.2f too high", frac)
	}
}

func TestAnnotationWeight(t *testing.T) {
	// Eq. 2: increasing frequency raises weight; increasing popularity
	// lowers it.
	if AnnotationWeight(10, 1, 1) <= AnnotationWeight(2, 1, 1) {
		t.Error("higher frequency should raise weight")
	}
	if AnnotationWeight(5, 10, 10) >= AnnotationWeight(5, 1, 1) {
		t.Error("higher popularity should lower weight")
	}
	// Degenerate inputs are clamped, not panicking or zero-dividing.
	if w := AnnotationWeight(0, 0, 0); w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		t.Errorf("clamped weight = %v", w)
	}
}

func TestWeightedSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	weights := []float64{0, 1, 100, 1, 0}
	counts := make([]int, len(weights))
	for trial := 0; trial < 500; trial++ {
		for _, idx := range WeightedSample(rng, weights, 2) {
			counts[idx]++
		}
	}
	if counts[0] != 0 || counts[4] != 0 {
		t.Error("zero-weight items were drawn")
	}
	if counts[2] != 500 {
		t.Errorf("dominant item drawn %d/500", counts[2])
	}
	if counts[1] == 0 || counts[3] == 0 {
		t.Error("light items never drawn in 500 trials of 2")
	}
}

func TestWeightedSampleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	out := WeightedSample(rng, []float64{1, 2}, 10)
	if len(out) != 2 {
		t.Errorf("n capped incorrectly: %v", out)
	}
	if out[0] != 0 || out[1] != 1 {
		t.Errorf("expected sorted all indices, got %v", out)
	}
	if got := WeightedSample(rng, nil, 3); len(got) != 0 {
		t.Errorf("empty weights should give empty sample, got %v", got)
	}
}

func TestWeightedSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	weights := make([]float64, 50)
	for i := range weights {
		weights[i] = 1
	}
	for trial := 0; trial < 50; trial++ {
		out := WeightedSample(rng, weights, 10)
		seen := map[int]bool{}
		for _, idx := range out {
			if seen[idx] {
				t.Fatal("duplicate index drawn")
			}
			seen[idx] = true
		}
	}
}
