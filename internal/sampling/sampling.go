// Package sampling implements COSMO's fine-grained behavior sampling
// (§3.2.1): product sampling by category and product-type labels,
// co-buy pair sampling with product-type cross-checks, search-buy pair
// sampling with engagement thresholds and query-specificity scoring, and
// the re-weighted annotation sampling of Eq. 2.
package sampling

import (
	"math"
	"math/rand"
	"sort"

	"cosmo/internal/behavior"
	"cosmo/internal/textproc"
)

// Config tunes the sampling stages.
type Config struct {
	Seed int64
	// TopProductsPerType keeps the top-k products of each product type by
	// interaction volume ("top-tier products that have relatively larger
	// behavior interactions").
	TopProductsPerType int
	// MaxPairsPerTypePair caps co-buy pairs per (typeA, typeB) to "avoid
	// duplicated sampling from the abstract level".
	MaxPairsPerTypePair int
	// MinPurchaseRate and MinClickCount are the search-buy engagement
	// thresholds.
	MinPurchaseRate float64
	MinClickCount   int
	// BroadSpecificityMax selects broad queries: specificity below this
	// is considered broad/ambiguous and prioritized for generation.
	BroadSpecificityMax float64
	// LowEngagementFraction adds a slice of low-engagement queries to
	// "directly probe knowledge from LLMs themselves".
	LowEngagementFraction float64
}

// DefaultConfig returns laptop-scale thresholds.
func DefaultConfig() Config {
	return Config{
		Seed:                  13,
		TopProductsPerType:    8,
		MaxPairsPerTypePair:   40,
		MinPurchaseRate:       0.3,
		MinClickCount:         2,
		BroadSpecificityMax:   0.5,
		LowEngagementFraction: 0.1,
	}
}

// Sampler runs the sampling strategies over one behavior log.
type Sampler struct {
	log *behavior.Log
	cfg Config
}

// New builds a sampler.
func New(log *behavior.Log, cfg Config) *Sampler {
	return &Sampler{log: log, cfg: cfg}
}

// SampleProducts returns the selected top-tier product set: for each
// product type, the top-k products by total interaction volume
// (co-buy degree + query-interaction degree).
func (s *Sampler) SampleProducts() map[string]bool {
	c := s.log.Catalog
	selected := map[string]bool{}
	for _, tn := range c.Types() {
		ps := c.OfType(tn)
		sort.Slice(ps, func(i, j int) bool {
			di := s.log.CoBuyDegree(ps[i].ID) + s.log.ProductQueryDegree(ps[i].ID)
			dj := s.log.CoBuyDegree(ps[j].ID) + s.log.ProductQueryDegree(ps[j].ID)
			if di != dj {
				return di > dj
			}
			return ps[i].ID < ps[j].ID
		})
		k := s.cfg.TopProductsPerType
		if k > len(ps) {
			k = len(ps)
		}
		for _, p := range ps[:k] {
			selected[p.ID] = true
		}
	}
	return selected
}

// SampleCoBuyPairs applies the paper's co-buy pair strategy: every kept
// edge covers at least one selected product; the product types of the
// pair are cross-checked (pairs of unrelated types are treated as random
// co-purchases and dropped); duplicate sampling at the type level is
// capped.
func (s *Sampler) SampleCoBuyPairs(selected map[string]bool) []behavior.CoBuyPair {
	c := s.log.Catalog
	perTypePair := map[[2]string]int{}
	var out []behavior.CoBuyPair
	for _, e := range s.log.CoBuys {
		if !selected[e.A] && !selected[e.B] {
			continue
		}
		pa, _ := c.ByID(e.A)
		pb, _ := c.ByID(e.B)
		// Cross-check product types: keep the pair only if the types are
		// declared complements, share an intent, or are the same type
		// bought repeatedly (multi-pack behavior). Anything else is
		// "likely randomly selected" in the paper's heuristic.
		if pa.Type != pb.Type && !c.AreComplements(pa.Type, pb.Type) {
			a0 := c.OfType(pa.Type)[0]
			b0 := c.OfType(pb.Type)[0]
			if len(c.SharedIntents(a0, b0)) == 0 {
				continue
			}
		}
		tp := [2]string{pa.Type, pb.Type}
		if tp[0] > tp[1] {
			tp[0], tp[1] = tp[1], tp[0]
		}
		if perTypePair[tp] >= s.cfg.MaxPairsPerTypePair {
			continue
		}
		perTypePair[tp]++
		out = append(out, e)
	}
	return out
}

// Specificity scores how specific a query is, in [0,1]. It substitutes
// the paper's in-house Amazon Search specificity service: broad queries
// are short and interact with many distinct products; specific queries
// are long and concentrated. The score combines token count and the
// inverse of the query's interaction degree.
func (s *Sampler) Specificity(query string) float64 {
	toks := textproc.Tokenize(query)
	lenScore := float64(len(toks)) / 4.0
	if lenScore > 1 {
		lenScore = 1
	}
	deg := s.log.QueryDegree(query)
	degScore := 1.0 / (1.0 + float64(deg)/4.0)
	return 0.6*lenScore + 0.4*degScore
}

// SampleSearchBuyPairs applies engagement thresholds, prioritizes broad
// queries (specificity below BroadSpecificityMax), and adds a slice of
// low-engagement queries to probe the LLM directly.
func (s *Sampler) SampleSearchBuyPairs(selected map[string]bool) []behavior.SearchBuyPair {
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	var kept, lowEng []behavior.SearchBuyPair
	for _, e := range s.log.SearchBuys {
		if !selected[e.ProductID] {
			continue
		}
		purchaseRate := float64(e.Purchases) / float64(e.Clicks)
		engaged := e.Clicks >= s.cfg.MinClickCount && purchaseRate >= s.cfg.MinPurchaseRate
		broad := s.Specificity(e.Query) <= s.cfg.BroadSpecificityMax
		switch {
		case engaged && broad:
			kept = append(kept, e)
		case engaged:
			// Specific engaged queries are kept at half rate: search
			// engines already understand them well, so they are less
			// valuable for generation.
			if rng.Float64() < 0.5 {
				kept = append(kept, e)
			}
		case e.Purchases > 0:
			lowEng = append(lowEng, e)
		}
	}
	// Add the low-engagement slice.
	n := int(float64(len(kept)) * s.cfg.LowEngagementFraction)
	if n > len(lowEng) {
		n = len(lowEng)
	}
	rng.Shuffle(len(lowEng), func(i, j int) { lowEng[i], lowEng[j] = lowEng[j], lowEng[i] })
	kept = append(kept, lowEng[:n]...)
	return kept
}

// AnnotationWeight implements Eq. 2 of the paper:
//
//	w_{(q,p),t} = log(f(t)) / (pop(q) × pop(p))
//
// Frequent knowledge gets up-weighted logarithmically while knowledge
// attached to very popular contexts is down-weighted, protecting
// long-tail knowledge from being crowded out of the annotation budget.
func AnnotationWeight(freq, popQ, popP int) float64 {
	if freq < 1 {
		freq = 1
	}
	if popQ < 1 {
		popQ = 1
	}
	if popP < 1 {
		popP = 1
	}
	return math.Log(float64(freq)+1) / (float64(popQ) * float64(popP))
}

// WeightedSample draws n distinct indices from weights without
// replacement, with probability proportional to weight. Zero or negative
// weights are never drawn. The draw is deterministic for a given rng.
func WeightedSample(rng *rand.Rand, weights []float64, n int) []int {
	type item struct {
		idx int
		key float64
	}
	items := make([]item, 0, len(weights))
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		// Efraimidis–Spirakis reservoir key: u^(1/w).
		u := rng.Float64()
		items = append(items, item{i, math.Pow(u, 1.0/w)})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].key > items[j].key })
	if n > len(items) {
		n = len(items)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = items[i].idx
	}
	sort.Ints(out)
	return out
}
