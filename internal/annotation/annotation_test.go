package annotation

import (
	"testing"

	"cosmo/internal/know"
	"cosmo/internal/llm"
)

func makeCandidates(n int, truth llm.Truth) []know.Candidate {
	out := make([]know.Candidate, n)
	for i := range out {
		out[i] = know.Candidate{ID: i, Text: "capable of holding snacks", Truth: truth}
	}
	return out
}

var typicalTruth = llm.Truth{
	Complete: true, Relevant: true, Informative: true,
	Plausible: true, Typical: true, Mode: llm.ModeTypical,
}

var genericTruth = llm.Truth{
	Complete: true, Relevant: true, Informative: false,
	Plausible: true, Typical: false, Mode: llm.ModeGeneric,
}

func TestAnnotationAccuracyAboveNinety(t *testing.T) {
	// The paper's audit bar: >90% accuracy.
	o := NewOracle(DefaultConfig())
	cands := append(makeCandidates(500, typicalTruth), makeCandidates(500, genericTruth)...)
	anns := o.AnnotateAll(cands)
	rep := o.Audit(cands, anns, 1.0)
	if acc := rep.Accuracy(); acc < 0.90 {
		t.Errorf("audit accuracy %.3f below 0.90", acc)
	}
}

func TestAuditSampling(t *testing.T) {
	o := NewOracle(DefaultConfig())
	cands := makeCandidates(1000, typicalTruth)
	anns := o.AnnotateAll(cands)
	rep := o.Audit(cands, anns, 0.05)
	// 5% of 1000 = 50 annotations × 5 questions.
	if rep.Checked != 50*5 {
		t.Errorf("audit checked %d question-judgments, want 250", rep.Checked)
	}
}

func TestRatios(t *testing.T) {
	o := NewOracle(Config{Seed: 1, AnnotatorErrorRate: 0, AdjudicatorErrorRate: 0, NotSureRate: 0})
	cands := append(makeCandidates(300, typicalTruth), makeCandidates(700, genericTruth)...)
	anns := o.AnnotateAll(cands)
	p, ty := Ratios(anns)
	if p != 1.0 {
		t.Errorf("plausible ratio %.3f, want 1.0 with perfect annotators", p)
	}
	if ty != 0.3 {
		t.Errorf("typical ratio %.3f, want 0.3", ty)
	}
}

func TestRatiosEmpty(t *testing.T) {
	p, ty := Ratios(nil)
	if p != 0 || ty != 0 {
		t.Error("empty ratios should be zero")
	}
}

func TestPerfectAnnotatorsNeverDisagree(t *testing.T) {
	o := NewOracle(Config{Seed: 1, AnnotatorErrorRate: 0, AdjudicatorErrorRate: 0, NotSureRate: 0})
	anns := o.AnnotateAll(makeCandidates(200, typicalTruth))
	if r := DisagreementRate(anns); r != 0 {
		t.Errorf("perfect annotators disagreed at rate %.3f", r)
	}
}

func TestNoisyAnnotatorsDisagreeSometimes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AnnotatorErrorRate = 0.15
	o := NewOracle(cfg)
	anns := o.AnnotateAll(makeCandidates(500, typicalTruth))
	r := DisagreementRate(anns)
	if r == 0 {
		t.Error("noisy annotators should disagree occasionally")
	}
	if r > 0.95 {
		t.Errorf("disagreement rate %.2f implausibly high", r)
	}
}

func TestAdjudicationImprovesOverSingleAnnotator(t *testing.T) {
	// The two+adjudicator protocol must beat a single noisy annotator.
	cfg := Config{Seed: 5, AnnotatorErrorRate: 0.2, AdjudicatorErrorRate: 0.05, NotSureRate: 0.05}
	o := NewOracle(cfg)
	cands := append(makeCandidates(1000, typicalTruth), makeCandidates(1000, genericTruth)...)
	anns := o.AnnotateAll(cands)
	protocolAcc := o.Audit(cands, anns, 1.0).Accuracy()
	// A single annotator with NotSure→wrong has expected accuracy
	// ≈ (1-notSure)·(1-err) = 0.95·0.8 = 0.76.
	if protocolAcc <= 0.80 {
		t.Errorf("protocol accuracy %.3f should beat single-annotator ~0.76", protocolAcc)
	}
}

func TestAnswersAlwaysCommitted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NotSureRate = 0.5 // force heavy uncertainty
	o := NewOracle(cfg)
	for _, a := range o.AnnotateAll(makeCandidates(300, typicalTruth)) {
		for q, ans := range a.Answers {
			if ans == NotSure {
				t.Fatalf("final answer for %s is NotSure; adjudication must commit", QuestionNames[q])
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	cands := makeCandidates(100, typicalTruth)
	a1 := NewOracle(DefaultConfig()).AnnotateAll(cands)
	a2 := NewOracle(DefaultConfig()).AnnotateAll(cands)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("annotation %d differs", i)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	// Search-buy typicality must exceed co-buy typicality after
	// annotation, as in paper Table 4. Use the teacher's mode mixture
	// directly: co-buy candidates include one-sided generations.
	o := NewOracle(DefaultConfig())
	oneSided := llm.Truth{Complete: true, Relevant: true, Informative: true,
		Plausible: true, Typical: false, Mode: llm.ModeOneSided}
	coBuy := append(makeCandidates(350, typicalTruth), makeCandidates(650, oneSided)...)
	searchBuy := append(makeCandidates(600, typicalTruth), makeCandidates(400, genericTruth)...)
	_, tyCo := Ratios(o.AnnotateAll(coBuy))
	_, tySb := Ratios(o.AnnotateAll(searchBuy))
	if tySb <= tyCo {
		t.Errorf("search-buy typicality %.2f should exceed co-buy %.2f", tySb, tyCo)
	}
}
