// Package annotation simulates COSMO's human-in-the-loop annotation
// (§3.3.2): professional annotators answer the 5-question decomposition
// (complete / relevant / informative / plausible / typical) for sampled
// knowledge candidates. Two annotators label each candidate; a third
// adjudicates disagreements; a 5% audit sample measures accuracy against
// ground truth (the paper reports >90%).
//
// Annotators are noisy oracles: they read the simulator's hidden ground
// truth and flip each judgment independently with a per-annotator error
// rate. This reproduces the cost/quality structure of vendor annotation
// without human subjects.
package annotation

import (
	"math/rand"

	"cosmo/internal/know"
)

// Answer is one annotator's response to one question.
type Answer int

// Possible answers; the paper's interface offers yes / no / not sure.
const (
	No Answer = iota
	Yes
	NotSure
)

// Questions in the paper's order.
const (
	QComplete = iota
	QRelevant
	QInformative
	QPlausible
	QTypical
	numQuestions
)

// QuestionNames are the human-readable question labels.
var QuestionNames = [numQuestions]string{
	"complete", "relevant", "informative", "plausible", "typical",
}

// Annotation is the adjudicated label set for one candidate.
type Annotation struct {
	CandidateID int
	Answers     [numQuestions]Answer
	// PairRelevant is the adjudicated judgment of the behavior pair
	// itself: whether the query matches the product / the co-buy is
	// non-random. The paper's fine-grained annotations "identified
	// irrelevant query-product pairs or random co-buy pairs" (§3.4).
	PairRelevant bool
	// Disagreed reports whether the two primary annotators disagreed on
	// any question (triggering the third adjudicator).
	Disagreed bool
}

// Plausible reports the final plausibility judgment.
func (a Annotation) Plausible() bool { return a.Answers[QPlausible] == Yes }

// Typical reports the final typicality judgment.
func (a Annotation) Typical() bool { return a.Answers[QTypical] == Yes }

// Config tunes the annotation simulation.
type Config struct {
	Seed int64
	// AnnotatorErrorRate is the probability a primary annotator flips a
	// single judgment.
	AnnotatorErrorRate float64
	// AdjudicatorErrorRate is the (lower) error rate of the third person.
	AdjudicatorErrorRate float64
	// NotSureRate is the probability an annotator answers "not sure"
	// instead of committing.
	NotSureRate float64
}

// DefaultConfig matches a competent vendor: ~95% per-question accuracy.
func DefaultConfig() Config {
	return Config{
		Seed:                 17,
		AnnotatorErrorRate:   0.05,
		AdjudicatorErrorRate: 0.02,
		NotSureRate:          0.03,
	}
}

// Oracle runs the simulated annotation pipeline.
type Oracle struct {
	cfg Config
	rng *rand.Rand
}

// NewOracle builds an oracle.
func NewOracle(cfg Config) *Oracle {
	return &Oracle{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// truthVector extracts the five ground-truth bits.
func truthVector(c know.Candidate) [numQuestions]bool {
	return [numQuestions]bool{
		c.Truth.Complete, c.Truth.Relevant, c.Truth.Informative,
		c.Truth.Plausible, c.Truth.Typical,
	}
}

// annotateOnce produces one annotator's answers with the given error rate.
func (o *Oracle) annotateOnce(truth [numQuestions]bool, errRate float64) [numQuestions]Answer {
	var out [numQuestions]Answer
	for q := 0; q < numQuestions; q++ {
		if o.rng.Float64() < o.cfg.NotSureRate {
			out[q] = NotSure
			continue
		}
		v := truth[q]
		if o.rng.Float64() < errRate {
			v = !v
		}
		if v {
			out[q] = Yes
		} else {
			out[q] = No
		}
	}
	return out
}

// Annotate runs the two-annotator + adjudicator protocol on a candidate.
func (o *Oracle) Annotate(c know.Candidate) Annotation {
	truth := truthVector(c)
	a1 := o.annotateOnce(truth, o.cfg.AnnotatorErrorRate)
	a2 := o.annotateOnce(truth, o.cfg.AnnotatorErrorRate)
	ann := Annotation{CandidateID: c.ID}
	for q := 0; q < numQuestions; q++ {
		if a1[q] == a2[q] && a1[q] != NotSure {
			ann.Answers[q] = a1[q]
			continue
		}
		// Disagreement (or joint uncertainty): adjudicate.
		ann.Disagreed = true
		adj := o.annotateOnce(truth, o.cfg.AdjudicatorErrorRate)
		if adj[q] == NotSure {
			// The adjudicator must commit; fall back to the majority
			// leaning among the three, defaulting to No.
			yes := 0
			for _, a := range []Answer{a1[q], a2[q]} {
				if a == Yes {
					yes++
				}
			}
			if yes >= 1 {
				ann.Answers[q] = Yes
			} else {
				ann.Answers[q] = No
			}
			continue
		}
		ann.Answers[q] = adj[q]
	}
	ann.PairRelevant = o.annotateBit(c.PairIntentional)
	return ann
}

// annotateBit runs the two-annotator + adjudicator protocol on a single
// boolean judgment.
func (o *Oracle) annotateBit(truth bool) bool {
	vote := func(errRate float64) bool {
		v := truth
		if o.rng.Float64() < errRate {
			v = !v
		}
		return v
	}
	a1 := vote(o.cfg.AnnotatorErrorRate)
	a2 := vote(o.cfg.AnnotatorErrorRate)
	if a1 == a2 {
		return a1
	}
	return vote(o.cfg.AdjudicatorErrorRate)
}

// AnnotateAll labels every candidate.
func (o *Oracle) AnnotateAll(cands []know.Candidate) []Annotation {
	out := make([]Annotation, len(cands))
	for i, c := range cands {
		out[i] = o.Annotate(c)
	}
	return out
}

// Audit samples fraction of annotations and measures per-question
// agreement with ground truth — the paper's internal auditing process
// ("randomly sample 5% annotation ... accuracy can reach more than 90%").
func (o *Oracle) Audit(cands []know.Candidate, anns []Annotation, fraction float64) AuditReport {
	n := int(float64(len(anns)) * fraction)
	if n < 1 {
		n = len(anns)
	}
	idxs := o.rng.Perm(len(anns))[:n]
	var rep AuditReport
	for _, i := range idxs {
		truth := truthVector(cands[i])
		for q := 0; q < numQuestions; q++ {
			rep.Checked++
			want := No
			if truth[q] {
				want = Yes
			}
			if anns[i].Answers[q] == want {
				rep.Correct++
			}
		}
	}
	return rep
}

// AuditReport summarizes an audit pass.
type AuditReport struct {
	Checked int
	Correct int
}

// Accuracy returns the audited accuracy in [0,1].
func (r AuditReport) Accuracy() float64 {
	if r.Checked == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Checked)
}

// Ratios computes the paper's Table 4 quantities: the fraction of
// annotated candidates judged plausible and typical.
func Ratios(anns []Annotation) (plausible, typical float64) {
	if len(anns) == 0 {
		return 0, 0
	}
	var p, ty int
	for _, a := range anns {
		if a.Plausible() {
			p++
		}
		if a.Typical() {
			ty++
		}
	}
	return float64(p) / float64(len(anns)), float64(ty) / float64(len(anns))
}

// DisagreementRate returns the fraction of annotations that needed the
// adjudicator — the quantity the paper's pilot study minimized via the
// 5-question decomposition.
func DisagreementRate(anns []Annotation) float64 {
	if len(anns) == 0 {
		return 0
	}
	n := 0
	for _, a := range anns {
		if a.Disagreed {
			n++
		}
	}
	return float64(n) / float64(len(anns))
}
