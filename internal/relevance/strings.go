package relevance

import "strings"

// Small string helpers kept separate so dataset.go reads cleanly.

func lower(s string) string { return strings.ToLower(s) }

func index(s, sub string) int { return strings.Index(s, sub) }

func firstWord(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i]
	}
	return s
}

func joinSpans(spans []string) string { return strings.Join(spans, "; ") }
