package relevance

import (
	"hash/fnv"
	"math/rand"

	"cosmo/internal/embedding"
	"cosmo/internal/metrics"
	"cosmo/internal/nn"
	"cosmo/internal/textproc"
)

// Arch selects the relevance model architecture (paper Figure 6).
type Arch int

// Architectures compared in Table 6.
const (
	BiEncoder Arch = iota
	CrossEncoder
	CrossEncoderIntent
)

// String names the architecture.
func (a Arch) String() string {
	switch a {
	case BiEncoder:
		return "Bi-encoder"
	case CrossEncoder:
		return "Cross-encoder"
	case CrossEncoderIntent:
		return "Cross-encoder w/ Intent"
	default:
		return "Arch(?)"
	}
}

// ModelConfig controls training.
type ModelConfig struct {
	Arch Arch
	// Trainable selects the trainable-encoder setting; false freezes the
	// text encoder (paper Table 6's two column groups).
	Trainable bool
	// EmbedDim is the frozen hashed-embedding dimension.
	EmbedDim int
	// EncDim is the trainable encoder output dimension.
	EncDim int
	// Hidden is the classification-head hidden width.
	Hidden int
	Epochs int
	LR     float64
	Seed   int64
}

// DefaultModelConfig returns a laptop-scale configuration.
func DefaultModelConfig(arch Arch, trainable bool) ModelConfig {
	return ModelConfig{
		Arch: arch, Trainable: trainable,
		EmbedDim: 32, EncDim: 64, Hidden: 64,
		Epochs: 8, LR: 0.003, Seed: 7,
	}
}

// Model is a trained relevance classifier.
type Model struct {
	cfg ModelConfig
	emb *embedding.Model
	set nn.Set
	// tok is the trainable token-embedding table (nil when frozen):
	// fine-tuning the encoder lets the model learn task-specific word
	// representations, which the frozen hashed embedding cannot.
	tok *nn.Param
	mlp *nn.MLP
}

// tokBuckets is the hash-bucket count of the trainable token table.
const tokBuckets = 2048

// featureDim returns the classifier input dimension for the arch.
func featureDim(arch Arch, d int) int {
	switch arch {
	case BiEncoder:
		return 2 * d
	case CrossEncoder:
		return 3 * d // q, p, q⊙p
	default:
		return 6 * d // q, p, q⊙p, g, q⊙g, p⊙g
	}
}

// NewModel builds an untrained model.
func NewModel(cfg ModelConfig) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg, emb: embedding.New(cfg.EmbedDim)}
	d := cfg.EmbedDim
	if cfg.Trainable {
		m.tok = m.set.Add(nn.NewParam("tok", tokBuckets, cfg.EncDim).Init(rng))
		d = cfg.EmbedDim + cfg.EncDim
	}
	m.mlp = nn.NewMLP(&m.set, "head", featureDim(cfg.Arch, d), cfg.Hidden, int(NumClasses), rng)
	return m
}

func tokBucket(tok string) int {
	h := fnv.New32a()
	h.Write([]byte(tok)) //cosmo:lint-ignore dropped-error hash.Hash Write never returns an error (hash package contract)
	return int(h.Sum32() % tokBuckets)
}

// encode embeds a text. In the frozen setting it is the fixed hashed
// embedding; in the trainable setting the learned token embeddings
// (mean-pooled) are concatenated, strictly extending the frozen
// representation as fine-tuning a pretrained encoder does.
func (m *Model) encode(t *nn.Tape, text string) *nn.Vec {
	raw := t.Const(m.emb.Embed(text))
	if m.tok == nil {
		return raw
	}
	toks := textproc.StemAll(textproc.ContentTokens(text))
	if len(toks) == 0 {
		return t.Concat(raw, t.Const(make([]float64, m.cfg.EncDim)))
	}
	rows := make([]*nn.Vec, len(toks))
	for i, tk := range toks {
		rows[i] = t.UseRow(m.tok, tokBucket(tk))
	}
	return t.Concat(raw, t.Mean(rows))
}

// logits builds the forward pass for one example.
func (m *Model) logits(t *nn.Tape, ex Example) *nn.Vec {
	q := m.encode(t, ex.Query)
	p := m.encode(t, ex.Product)
	var feat *nn.Vec
	switch m.cfg.Arch {
	case BiEncoder:
		feat = t.Concat(q, p)
	case CrossEncoder:
		feat = t.Concat(q, p, t.Mul(q, p))
	default:
		g := m.encode(t, ex.Knowledge)
		feat = t.Concat(q, p, t.Mul(q, p), g, t.Mul(q, g), t.Mul(p, g))
	}
	return m.mlp.Forward(t, feat)
}

// Train fits the model on the examples.
func (m *Model) Train(train []Example) {
	rng := rand.New(rand.NewSource(m.cfg.Seed + 1))
	opt := nn.NewAdam(m.cfg.LR)
	order := rng.Perm(len(train))
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			ex := train[idx]
			t := nn.NewTape()
			loss := t.CrossEntropy(m.logits(t, ex), int(ex.Label))
			t.Backward(loss)
			opt.Step(&m.set)
		}
	}
}

// Predict returns the predicted label for one example.
func (m *Model) Predict(ex Example) Label {
	t := nn.NewTape()
	logits := m.logits(t, ex)
	best, bestV := 0, logits.V[0]
	for i, v := range logits.V {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return Label(best)
}

// Evaluate computes Macro and Micro F1 over the test set.
func (m *Model) Evaluate(test []Example) (macroF1, microF1 float64) {
	conf := metrics.NewConfusion(int(NumClasses))
	for _, ex := range test {
		conf.Add(int(ex.Label), int(m.Predict(ex)))
	}
	return conf.MacroF1(), conf.MicroF1()
}

// TrainAndEvaluate is the convenience entry used by the benchmarks.
func TrainAndEvaluate(cfg ModelConfig, ds Dataset) (macroF1, microF1 float64) {
	m := NewModel(cfg)
	m.Train(ds.Train)
	return m.Evaluate(ds.Test)
}
