package relevance

import "cosmo/internal/metrics"

// DetailedResult carries the full evaluation breakdown for one model:
// overall Macro/Micro F1 plus per-class F1, matching how ESCI systems
// are analyzed (the Irrelevant and Complement classes are the minority
// classes Macro F1 protects).
type DetailedResult struct {
	MacroF1    float64
	MicroF1    float64
	PerClassF1 [NumClasses]float64
	Confusion  *metrics.Confusion
}

// EvaluateDetailed computes the full breakdown over the test set.
func (m *Model) EvaluateDetailed(test []Example) DetailedResult {
	conf := metrics.NewConfusion(int(NumClasses))
	for _, ex := range test {
		conf.Add(int(ex.Label), int(m.Predict(ex)))
	}
	var out DetailedResult
	out.MacroF1 = conf.MacroF1()
	out.MicroF1 = conf.MicroF1()
	copy(out.PerClassF1[:], conf.PerClassF1())
	out.Confusion = conf
	return out
}
