package relevance

import (
	"testing"

	"cosmo/internal/catalog"
)

func world() *catalog.Catalog {
	return catalog.Generate(catalog.Config{ProductsPerType: 4, Seed: 1})
}

func smallLocale() Locale {
	return Locale{Name: "test", TrainPairs: 2000, TestPairs: 700, Seed: 11}
}

func TestGenerateDatasetShape(t *testing.T) {
	cat := world()
	g := NewGenerator(cat, OracleKnowledge(cat))
	ds := g.Generate(smallLocale())
	if len(ds.Train) != 2000 || len(ds.Test) != 700 {
		t.Fatalf("split sizes %d/%d", len(ds.Train), len(ds.Test))
	}
	counts := map[Label]int{}
	for _, ex := range append(append([]Example{}, ds.Train...), ds.Test...) {
		counts[ex.Label]++
		if ex.Query == "" || ex.Product == "" {
			t.Fatal("empty fields")
		}
	}
	for l := Exact; l < NumClasses; l++ {
		if counts[l] == 0 {
			t.Errorf("class %s absent", l)
		}
	}
	if counts[Exact] <= counts[Substitute] {
		t.Errorf("class imbalance missing: exact=%d substitute=%d", counts[Exact], counts[Substitute])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cat := world()
	g := NewGenerator(cat, nil)
	a := g.Generate(smallLocale())
	b := g.Generate(smallLocale())
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatalf("example %d differs", i)
		}
	}
}

func TestLocalesScaleWithTable5(t *testing.T) {
	locs := Locales(1000)
	if len(locs) != 5 {
		t.Fatalf("got %d locales", len(locs))
	}
	byName := map[string]Locale{}
	for _, l := range locs {
		byName[l.Name] = l
		if l.TrainPairs <= 0 || l.TestPairs <= 0 {
			t.Errorf("locale %s has empty split", l.Name)
		}
	}
	// Size ordering follows Table 5: IN > KDD Cup > US > UK > CA.
	if !(byName["IN"].TrainPairs > byName["KDD Cup"].TrainPairs &&
		byName["KDD Cup"].TrainPairs > byName["US"].TrainPairs &&
		byName["US"].TrainPairs > byName["UK"].TrainPairs &&
		byName["UK"].TrainPairs > byName["CA"].TrainPairs) {
		t.Errorf("locale size ordering wrong: %+v", byName)
	}
}

func TestOracleKnowledgeSignal(t *testing.T) {
	cat := world()
	fn := OracleKnowledge(cat)
	tent := cat.OfType("tent")[0]
	bag := cat.OfType("sleeping bag")[0]
	pen := cat.OfType("fountain pen")[0]
	// Substitute-ish pair: shared camping intent must surface.
	if k := fn("tent", bag); k == "" {
		t.Error("shared-intent pair has no knowledge")
	}
	// Irrelevant pair: no knowledge.
	if k := fn("tent", pen); k != "" {
		t.Errorf("irrelevant pair has knowledge %q", k)
	}
	// Exact: knowledge from intent-word queries.
	if k := fn("camping", tent); k == "" {
		t.Error("broad intent query has no product-side knowledge")
	}
}

func TestIntentKnowledgeBoostsFixedEncoder(t *testing.T) {
	// The Table 6 headline: with a fixed encoder, the intent-augmented
	// cross-encoder beats the plain cross-encoder by a wide margin.
	cat := world()
	g := NewGenerator(cat, OracleKnowledge(cat))
	ds := g.Generate(smallLocale())

	cross := DefaultModelConfig(CrossEncoder, false)
	intent := DefaultModelConfig(CrossEncoderIntent, false)
	crossMacro, crossMicro := TrainAndEvaluate(cross, ds)
	intentMacro, intentMicro := TrainAndEvaluate(intent, ds)
	t.Logf("fixed: cross macro=%.3f micro=%.3f | +intent macro=%.3f micro=%.3f",
		crossMacro, crossMicro, intentMacro, intentMicro)
	if intentMacro <= crossMacro {
		t.Errorf("intent should boost macro F1: %.3f vs %.3f", intentMacro, crossMacro)
	}
	if intentMicro <= crossMicro {
		t.Errorf("intent should boost micro F1: %.3f vs %.3f", intentMicro, crossMicro)
	}
}

func TestCrossBeatsBiWithTrainableEncoder(t *testing.T) {
	cat := world()
	g := NewGenerator(cat, OracleKnowledge(cat))
	ds := g.Generate(smallLocale())
	biMacro, _ := TrainAndEvaluate(DefaultModelConfig(BiEncoder, true), ds)
	crossMacro, _ := TrainAndEvaluate(DefaultModelConfig(CrossEncoder, true), ds)
	t.Logf("trainable: bi macro=%.3f cross macro=%.3f", biMacro, crossMacro)
	if crossMacro <= biMacro {
		t.Errorf("cross-encoder %.3f should beat bi-encoder %.3f", crossMacro, biMacro)
	}
}

func TestTrainableBeatsFixed(t *testing.T) {
	cat := world()
	g := NewGenerator(cat, OracleKnowledge(cat))
	ds := g.Generate(smallLocale())
	fixedMacro, _ := TrainAndEvaluate(DefaultModelConfig(CrossEncoder, false), ds)
	trainMacro, _ := TrainAndEvaluate(DefaultModelConfig(CrossEncoder, true), ds)
	t.Logf("cross: fixed=%.3f trainable=%.3f", fixedMacro, trainMacro)
	if trainMacro <= fixedMacro {
		t.Errorf("trainable %.3f should beat fixed %.3f", trainMacro, fixedMacro)
	}
}

func TestComputeStats(t *testing.T) {
	cat := world()
	g := NewGenerator(cat, nil)
	ds := g.Generate(smallLocale())
	s := ComputeStats(ds)
	if s.TrainPairs != 2000 || s.TestPairs != 700 {
		t.Errorf("stats pairs %d/%d", s.TrainPairs, s.TestPairs)
	}
	if s.ExactPairs == 0 || s.ExactPairs >= s.TrainPairs+s.TestPairs {
		t.Errorf("exact pairs = %d", s.ExactPairs)
	}
	if s.UniqueQueries == 0 || s.UniqueProducts == 0 {
		t.Error("unique counts zero")
	}
}

func TestArchString(t *testing.T) {
	if BiEncoder.String() != "Bi-encoder" ||
		CrossEncoder.String() != "Cross-encoder" ||
		CrossEncoderIntent.String() != "Cross-encoder w/ Intent" {
		t.Error("arch names wrong")
	}
	if Exact.String() != "Exact" || Irrelevant.String() != "Irrelevant" {
		t.Error("label names wrong")
	}
}
