// Package relevance reproduces the search-relevance experiment of §4.1:
// the four-class ESCI task (Exact / Substitute / Complement / Irrelevant)
// over query-product pairs, solved by bi-encoder and cross-encoder
// architectures with and without COSMO intention knowledge (Figure 6),
// evaluated with Macro/Micro F1 (Table 6, Figure 7) on synthetic
// ESCI-style datasets whose per-locale sizes follow Table 5.
package relevance

import (
	"fmt"
	"math/rand"

	"cosmo/internal/behavior"
	"cosmo/internal/catalog"
)

// Label is the four-class ESCI relevance label.
type Label int

// The ESCI classes.
const (
	Exact Label = iota
	Substitute
	Complement
	Irrelevant
	NumClasses
)

// String returns the class name.
func (l Label) String() string {
	switch l {
	case Exact:
		return "Exact"
	case Substitute:
		return "Substitute"
	case Complement:
		return "Complement"
	case Irrelevant:
		return "Irrelevant"
	default:
		return fmt.Sprintf("Label(%d)", int(l))
	}
}

// Example is one labeled query-product pair, optionally augmented with
// generated intention knowledge G (the paper's [Q, P, G] input).
type Example struct {
	Query     string
	Product   string // concatenated title + side information
	Knowledge string // generated commonsense knowledge, "" when absent
	Label     Label
}

// KnowledgeFn generates the knowledge span for a query-product pair.
// The benchmark harness wires COSMO-LM here; tests may use the oracle.
type KnowledgeFn func(query string, p catalog.Product) string

// Locale describes one market's dataset configuration (paper Table 5).
type Locale struct {
	Name string
	// TrainPairs and TestPairs scale with the paper's Table 5 rows.
	TrainPairs int
	TestPairs  int
	Seed       int64
}

// Locales returns the five evaluation locales with sizes proportional
// to paper Table 5 divided by scale (pairs = paperPairs / scale).
func Locales(scale int) []Locale {
	if scale < 1 {
		scale = 1
	}
	mk := func(name string, train, test int, seed int64) Locale {
		t := train / scale
		if t < 200 {
			t = 200
		}
		e := test / scale
		if e < 100 {
			e = 100
		}
		return Locale{Name: name, TrainPairs: t, TestPairs: e, Seed: seed}
	}
	return []Locale{
		mk("KDD Cup", 1393063, 425762, 101),
		mk("US", 1148528, 383695, 102),
		mk("CA", 220114, 72500, 103),
		mk("UK", 462560, 155138, 104),
		mk("IN", 1480116, 495078, 105),
	}
}

// Dataset is a train/test split for one locale.
type Dataset struct {
	Locale string
	Train  []Example
	Test   []Example
}

// classMix is the ESCI class imbalance (Exact dominates, per Table 5's
// "# Exact Pairs" being ~90% of pairs).
var classMix = []struct {
	label Label
	p     float64
}{
	{Exact, 0.60},
	{Substitute, 0.20},
	{Complement, 0.08},
	{Irrelevant, 0.12},
}

// Generator builds ESCI-style datasets over the synthetic catalog.
type Generator struct {
	cat *catalog.Catalog
	// intentIndex maps each intent to the product types that carry it.
	intentIndex map[catalog.Intent][]string
	know        KnowledgeFn
}

// NewGenerator builds a generator; know may be nil (no knowledge column).
func NewGenerator(cat *catalog.Catalog, know KnowledgeFn) *Generator {
	idx := map[catalog.Intent][]string{}
	for _, tn := range cat.Types() {
		pt, _ := cat.Type(tn)
		for _, in := range pt.Intents {
			idx[in] = append(idx[in], tn)
		}
	}
	return &Generator{cat: cat, intentIndex: idx, know: know}
}

// Generate produces the dataset for one locale.
func (g *Generator) Generate(loc Locale) Dataset {
	rng := rand.New(rand.NewSource(loc.Seed))
	total := loc.TrainPairs + loc.TestPairs
	examples := make([]Example, 0, total)
	for len(examples) < total {
		ex, ok := g.example(rng)
		if ok {
			examples = append(examples, ex)
		}
	}
	rng.Shuffle(len(examples), func(i, j int) { examples[i], examples[j] = examples[j], examples[i] })
	return Dataset{
		Locale: loc.Name,
		Train:  examples[:loc.TrainPairs],
		Test:   examples[loc.TrainPairs:],
	}
}

func (g *Generator) example(rng *rand.Rand) (Example, bool) {
	label := g.drawLabel(rng)
	types := g.cat.Types()
	queryType := types[rng.Intn(len(types))]
	qt, _ := g.cat.Type(queryType)
	if len(qt.Intents) == 0 {
		return Example{}, false
	}
	intent := qt.Intents[rng.Intn(len(qt.Intents))]
	query := g.makeQuery(rng, queryType, intent)

	var productType string
	switch label {
	case Exact:
		productType = queryType
	case Substitute:
		// A different type serving the same intent.
		shared := g.intentIndex[intent]
		var alts []string
		for _, tn := range shared {
			if tn != queryType {
				alts = append(alts, tn)
			}
		}
		if len(alts) == 0 {
			return Example{}, false
		}
		productType = alts[rng.Intn(len(alts))]
	case Complement:
		if len(qt.Complements) == 0 {
			return Example{}, false
		}
		productType = qt.Complements[rng.Intn(len(qt.Complements))]
		if productType == queryType {
			return Example{}, false
		}
	default: // Irrelevant
		for tries := 0; tries < 20; tries++ {
			cand := types[rng.Intn(len(types))]
			if cand == queryType || g.cat.AreComplements(queryType, cand) {
				continue
			}
			a := g.cat.OfType(queryType)[0]
			b := g.cat.OfType(cand)[0]
			if len(g.cat.SharedIntents(a, b)) > 0 {
				continue
			}
			productType = cand
			break
		}
		if productType == "" {
			return Example{}, false
		}
	}
	ps := g.cat.OfType(productType)
	p := ps[rng.Intn(len(ps))]
	ex := Example{
		Query:   query,
		Product: p.Title,
		Label:   label,
	}
	if g.know != nil {
		ex.Knowledge = g.know(query, p)
	}
	return ex, true
}

// makeQuery emits the query text. Half the time the query leads with the
// intent's broad form ("camping air mattress"), planting the semantic
// gap that intention knowledge closes: the intent word never appears in
// product titles.
func (g *Generator) makeQuery(rng *rand.Rand, queryType string, intent catalog.Intent) string {
	switch rng.Intn(4) {
	case 0:
		return behavior.BroadQuery(intent) + " " + queryType
	case 1:
		return behavior.BroadQuery(intent)
	default:
		return queryType
	}
}

func (g *Generator) drawLabel(rng *rand.Rand) Label {
	x := rng.Float64()
	for _, cm := range classMix {
		if x < cm.p {
			return cm.label
		}
		x -= cm.p
	}
	return Irrelevant
}

// OracleKnowledge returns a KnowledgeFn that reads the catalog's ground
// truth: the intents shared by the query's referenced type and the
// product, plus complement links. It bounds what a perfect COSMO-LM
// could provide and is used by unit tests; benchmarks wire the real
// COSMO-LM instead.
func OracleKnowledge(cat *catalog.Catalog) KnowledgeFn {
	return func(query string, p catalog.Product) string {
		// Identify the query's type by longest type-name containment.
		var qType string
		for _, tn := range cat.Types() {
			if containsType(query, tn) && len(tn) > len(qType) {
				qType = tn
			}
		}
		var spans []string
		if qType != "" {
			a := cat.OfType(qType)[0]
			for _, in := range cat.SharedIntents(a, p) {
				spans = append(spans, in.Surface())
			}
			if cat.AreComplements(qType, p.Type) {
				spans = append(spans, "used with "+qType)
			}
		}
		// Product-side intents matching the query's broad word also close
		// the gap for intent-only queries.
		for _, in := range cat.IntentsOf(p) {
			if containsType(in.Tail, firstWord(query)) {
				spans = append(spans, in.Surface())
			}
		}
		return joinSpans(spans)
	}
}

func containsType(s, sub string) bool {
	if sub == "" {
		return false
	}
	return len(s) >= len(sub) && (s == sub || indexFold(s, sub) >= 0)
}

func indexFold(s, sub string) int {
	// Simple case-sensitive contains on lowercase inputs; titles are
	// mixed case so lower them.
	return index(lower(s), lower(sub))
}

// Stats reports dataset statistics in the shape of paper Table 5.
type Stats struct {
	Locale         string
	TrainPairs     int
	TestPairs      int
	ExactPairs     int
	UniqueQueries  int
	UniqueProducts int
}

// ComputeStats summarizes a dataset.
func ComputeStats(ds Dataset) Stats {
	s := Stats{Locale: ds.Locale, TrainPairs: len(ds.Train), TestPairs: len(ds.Test)}
	qs := map[string]bool{}
	ps := map[string]bool{}
	for _, split := range [][]Example{ds.Train, ds.Test} {
		for _, ex := range split {
			if ex.Label == Exact {
				s.ExactPairs++
			}
			qs[ex.Query] = true
			ps[ex.Product] = true
		}
	}
	s.UniqueQueries = len(qs)
	s.UniqueProducts = len(ps)
	return s
}
