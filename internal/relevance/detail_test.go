package relevance

import (
	"math"
	"testing"
)

func TestEvaluateDetailedConsistent(t *testing.T) {
	cat := world()
	g := NewGenerator(cat, OracleKnowledge(cat))
	ds := g.Generate(Locale{Name: "d", TrainPairs: 1200, TestPairs: 400, Seed: 3})
	m := NewModel(DefaultModelConfig(CrossEncoderIntent, false))
	m.Train(ds.Train)

	macro, micro := m.Evaluate(ds.Test)
	det := m.EvaluateDetailed(ds.Test)
	if math.Abs(det.MacroF1-macro) > 1e-12 || math.Abs(det.MicroF1-micro) > 1e-12 {
		t.Fatalf("detailed (%v,%v) disagrees with Evaluate (%v,%v)",
			det.MacroF1, det.MicroF1, macro, micro)
	}
	// Per-class F1 must average to macro.
	sum := 0.0
	for _, f := range det.PerClassF1 {
		sum += f
	}
	if math.Abs(sum/float64(NumClasses)-macro) > 1e-12 {
		t.Errorf("per-class mean %v != macro %v", sum/float64(NumClasses), macro)
	}
	if det.Confusion.Total() != len(ds.Test) {
		t.Errorf("confusion total %d != %d", det.Confusion.Total(), len(ds.Test))
	}
	// The Exact class dominates the data, so its F1 should be the best
	// or near-best of the classes for a trained model.
	if det.PerClassF1[Exact] < 0.5 {
		t.Errorf("Exact-class F1 %v suspiciously low", det.PerClassF1[Exact])
	}
}
