package serving

import (
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	if h.Count() != 0 {
		t.Errorf("count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramQuantileBucketBounds(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 90 observations in the <=2 bucket, 10 in the <=8 bucket.
	for i := 0; i < 90; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %v, want bucket bound 2", got)
	}
	if got := h.Quantile(0.95); got != 8 {
		t.Errorf("p95 = %v, want bucket bound 8", got)
	}
	if got := h.Quantile(0); got != 2 {
		t.Errorf("p0 = %v, want 2", got)
	}
	if got := h.Quantile(1); got != 8 {
		t.Errorf("p1 = %v, want 8", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100) // beyond the last bound
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want last finite bound 2", got)
	}
	s := h.Snapshot()
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Errorf("overflow count = %v", s.Counts)
	}
}

func TestHistogramSnapshotSum(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	s := h.Snapshot()
	if s.Total != 3 {
		t.Errorf("total = %d", s.Total)
	}
	if s.SumMs != 5 {
		t.Errorf("sum = %v, want 5", s.SumMs)
	}
}

// TestHistogramConcurrentObserve drives Observe from many goroutines;
// under -race this proves the hot path is lock-free and data-race-free,
// and the final count must be exact (no lost updates).
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	const (
		workers = 8
		perW    = 10000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(w + 1))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*perW {
		t.Errorf("count = %d, want %d", h.Count(), workers*perW)
	}
	if got := h.Quantile(0.5); got < 1 || got > float64(workers) {
		t.Errorf("p50 = %v out of observed range", got)
	}
}

// TestDeploymentMemoryBounded: the deployment's per-request state is a
// fixed histogram, so the latency structure must not grow with request
// count (regression for the old unbounded latencies slice).
func TestDeploymentMemoryBounded(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 16}, echoResponder("v1"))
	for i := 0; i < 5000; i++ {
		d.HandleQuery("same-query")
	}
	s := d.LatencySnapshot()
	if len(s.Counts) != len(DefaultLatencyBucketsMs)+1 {
		t.Errorf("bucket count %d changed with traffic", len(s.Counts))
	}
	if s.Total != 5000 {
		t.Errorf("observations = %d", s.Total)
	}
}
