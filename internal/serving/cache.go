package serving

import (
	"container/list"
	"sync"
)

// CacheStats reports cache behavior.
type CacheStats struct {
	Hits        int
	Misses      int
	YearlyHits  int
	DailyHits   int
	Evictions   int
	DailySize   int
	YearlySize  int
	BatchQueued int
}

// HitRate returns hits / (hits + misses).
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// AsyncCache is the two-layer asynchronous cache store of §3.5.1:
//
//   - Layer 1 holds pre-loaded yearly frequent searches (immutable
//     between refreshes).
//   - Layer 2 is an LRU over batch-processed daily requests, adapting to
//     daily traffic patterns.
//
// Misses are queued for asynchronous batch processing rather than
// computed inline, which is what keeps serving latency flat.
type AsyncCache struct {
	mu     sync.Mutex
	yearly map[string]Feature
	daily  map[string]*list.Element
	lru    *list.List
	cap    int
	stats  CacheStats
	queue  []string
	queued map[string]bool
}

type dailyEntry struct {
	key string
	f   Feature
}

// NewAsyncCache builds a cache whose daily layer holds up to dailyCap
// entries.
func NewAsyncCache(dailyCap int) *AsyncCache {
	if dailyCap < 1 {
		dailyCap = 1
	}
	return &AsyncCache{
		yearly: map[string]Feature{},
		daily:  map[string]*list.Element{},
		lru:    list.New(),
		cap:    dailyCap,
		queued: map[string]bool{},
	}
}

// PreloadYearly installs the yearly frequent-search layer.
func (c *AsyncCache) PreloadYearly(features []Feature) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range features {
		c.yearly[f.Query] = f
	}
}

// Lookup serves a query: yearly layer first, then daily LRU. On a miss
// the query is queued for batch processing and (nil, false) returns
// immediately — the caller degrades gracefully rather than blocking on
// model inference.
func (c *AsyncCache) Lookup(query string) (Feature, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.yearly[query]; ok {
		c.stats.Hits++
		c.stats.YearlyHits++
		return f, true
	}
	if el, ok := c.daily[query]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		c.stats.DailyHits++
		return el.Value.(dailyEntry).f, true
	}
	c.stats.Misses++
	if !c.queued[query] {
		c.queued[query] = true
		c.queue = append(c.queue, query)
	}
	return Feature{}, false
}

// InstallDaily inserts a batch-processed feature into the daily layer,
// evicting the least recently used entry when full.
func (c *AsyncCache) InstallDaily(f Feature) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.queued, f.Query)
	if el, ok := c.daily[f.Query]; ok {
		el.Value = dailyEntry{f.Query, f}
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.cap {
		back := c.lru.Back()
		if back != nil {
			c.lru.Remove(back)
			delete(c.daily, back.Value.(dailyEntry).key)
			c.stats.Evictions++
		}
	}
	c.daily[f.Query] = c.lru.PushFront(dailyEntry{f.Query, f})
}

// DrainQueue removes and returns up to n queued queries for the batch
// processor.
func (c *AsyncCache) DrainQueue(n int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > len(c.queue) {
		n = len(c.queue)
	}
	out := make([]string, n)
	copy(out, c.queue[:n])
	c.queue = c.queue[n:]
	return out
}

// ResetDaily clears the daily layer (the daily refresh boundary).
func (c *AsyncCache) ResetDaily() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.daily = map[string]*list.Element{}
	c.lru = list.New()
}

// ReplaceYearly swaps in a new yearly layer (the yearly refresh).
func (c *AsyncCache) ReplaceYearly(features []Feature) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.yearly = map[string]Feature{}
	for _, f := range features {
		c.yearly[f.Query] = f
	}
}

// Stats snapshots cache statistics.
func (c *AsyncCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.DailySize = c.lru.Len()
	s.YearlySize = len(c.yearly)
	s.BatchQueued = len(c.queue)
	return s
}
