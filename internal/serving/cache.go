package serving

import "sync/atomic"

// CacheStats reports cache behavior.
type CacheStats struct {
	Hits        int
	Misses      int
	YearlyHits  int
	DailyHits   int
	Evictions   int
	DailySize   int
	YearlySize  int
	BatchQueued int
	// BatchEnqueued counts misses actually pushed onto the batch queue
	// (a de-duplicated miss on an already-queued query does not count).
	// Together with BatchRequeued, BatchDropped and the deployment's
	// BatchTotals it forms the conservation ledger the chaos tests
	// assert: every push is eventually processed, re-queued or dropped.
	BatchEnqueued int
	// BatchRequeued counts failed queries pushed back by the batch
	// processor for a later attempt.
	BatchRequeued int
	// BatchDropped counts misses evicted from the bounded batch queue
	// before they could be processed (drop-oldest policy).
	BatchDropped int
}

// HitRate returns hits / (hits + misses).
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (s *CacheStats) add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.YearlyHits += o.YearlyHits
	s.DailyHits += o.DailyHits
	s.Evictions += o.Evictions
	s.DailySize += o.DailySize
	s.YearlySize += o.YearlySize
	s.BatchQueued += o.BatchQueued
	s.BatchEnqueued += o.BatchEnqueued
	s.BatchRequeued += o.BatchRequeued
	s.BatchDropped += o.BatchDropped
}

// Defaults for the sharded cache. Shard count is fixed (not NumCPU) so
// behavior is deterministic across machines; 8 stripes is enough to take
// mutex contention off the profile at the request rates the loadgen
// drives while keeping per-shard LRUs large enough to be useful.
const (
	DefaultCacheShards = 8
	DefaultQueueCap    = 4096
)

// CacheConfig configures the sharded async cache.
type CacheConfig struct {
	// DailyCap is the total daily-layer capacity, split across shards.
	DailyCap int
	// Shards is the number of lock stripes (default DefaultCacheShards,
	// clamped so every shard holds at least one daily entry).
	Shards int
	// QueueCap is the total bounded miss-queue capacity, split across
	// shards (default DefaultQueueCap).
	QueueCap int
}

// AsyncCache is the two-layer asynchronous cache store of §3.5.1:
//
//   - Layer 1 holds pre-loaded yearly frequent searches (immutable
//     between refreshes).
//   - Layer 2 is an LRU over batch-processed daily requests, adapting to
//     daily traffic patterns.
//
// Misses are queued for asynchronous batch processing rather than
// computed inline, which is what keeps serving latency flat.
//
// The cache is lock-striped: queries hash to one of N independent
// shards, each with its own mutex, daily LRU slice and bounded miss
// queue, so concurrent lookups on different keys do not serialize. LRU
// eviction and queue bounds are therefore per-shard properties; the
// total daily capacity and queue capacity are split across shards.
type AsyncCache struct {
	shards []*cacheShard
	mask   uint64 // len(shards)-1; shard count is a power of two
	// drainStart rotates DrainQueue's starting shard so that under
	// sustained load every shard's queue gets drained fairly instead of
	// low-index shards starving the rest.
	drainStart atomic.Uint64
}

type dailyEntry struct {
	key string
	f   Feature
}

// NewAsyncCache builds a sharded cache whose daily layer holds up to
// dailyCap entries in total, with default shard and queue settings.
func NewAsyncCache(dailyCap int) *AsyncCache {
	return NewAsyncCacheWithConfig(CacheConfig{DailyCap: dailyCap})
}

// NewAsyncCacheWithConfig builds a cache with explicit shard count and
// queue capacity. Shard count is rounded down to a power of two and
// clamped to [1, DailyCap] so the summed per-shard capacities never
// exceed the configured totals.
func NewAsyncCacheWithConfig(cfg CacheConfig) *AsyncCache {
	if cfg.DailyCap < 1 {
		cfg.DailyCap = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultCacheShards
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.Shards > cfg.DailyCap {
		cfg.Shards = cfg.DailyCap
	}
	if cfg.Shards > cfg.QueueCap {
		cfg.Shards = cfg.QueueCap
	}
	n := 1
	for n*2 <= cfg.Shards {
		n *= 2
	}
	c := &AsyncCache{shards: make([]*cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		// Split capacity, spreading the remainder over the low shards so
		// the totals match the configured caps exactly.
		dcap := cfg.DailyCap / n
		if i < cfg.DailyCap%n {
			dcap++
		}
		qcap := cfg.QueueCap / n
		if i < cfg.QueueCap%n {
			qcap++
		}
		c.shards[i] = newCacheShard(dcap, qcap)
	}
	return c
}

func (c *AsyncCache) shard(query string) *cacheShard {
	return c.shards[fnv1a(query)&c.mask]
}

// NumShards returns the number of lock stripes.
func (c *AsyncCache) NumShards() int { return len(c.shards) }

// PreloadYearly installs the yearly frequent-search layer.
func (c *AsyncCache) PreloadYearly(features []Feature) {
	for _, f := range features {
		c.shard(f.Query).preloadYearly(f)
	}
}

// Lookup serves a query: yearly layer first, then daily LRU. On a miss
// the query is queued for batch processing and (nil, false) returns
// immediately — the caller degrades gracefully rather than blocking on
// model inference. When the bounded miss queue is full, the oldest
// queued query is dropped to admit this one.
func (c *AsyncCache) Lookup(query string) (Feature, bool) {
	return c.shard(query).lookup(query)
}

// InstallDaily inserts a batch-processed feature into the daily layer of
// its shard, evicting that shard's least recently used entry when full.
func (c *AsyncCache) InstallDaily(f Feature) {
	c.shard(f.Query).installDaily(f)
}

// DrainQueue removes and returns up to n queued queries for the batch
// processor, taking from each shard in turn. The starting shard rotates
// across calls: draining always from shard 0 first would let a hot
// low-index shard starve high-index shards' queued misses indefinitely
// whenever n is smaller than the total backlog.
func (c *AsyncCache) DrainQueue(n int) []string {
	var out []string
	start := int(c.drainStart.Add(1)-1) % len(c.shards)
	for i := 0; i < len(c.shards); i++ {
		if len(out) >= n {
			break
		}
		s := c.shards[(start+i)%len(c.shards)]
		out = append(out, s.drain(n-len(out))...)
	}
	return out
}

// Requeue pushes a query whose batch processing failed back onto its
// shard's bounded queue for a later attempt. Unlike fresh misses, a
// requeue never evicts queued work: when the shard's queue is full the
// requeued query is dropped and false is returned so the caller can
// account for it — fresh traffic keeps priority over retries.
func (c *AsyncCache) Requeue(query string) bool {
	return c.shard(query).requeue(query)
}

// ResetDaily clears the daily layer (the daily refresh boundary).
// Pending queue entries are kept: they are misses that still need batch
// processing, and their queued-map entries are cleared either when the
// batch installs them or when the bounded queue drops them.
func (c *AsyncCache) ResetDaily() {
	for _, s := range c.shards {
		s.resetDaily()
	}
}

// ReplaceYearly swaps in a new yearly layer (the yearly refresh).
func (c *AsyncCache) ReplaceYearly(features []Feature) {
	for _, s := range c.shards {
		s.resetYearly()
	}
	for _, f := range features {
		c.shard(f.Query).preloadYearly(f)
	}
}

// Stats snapshots cache statistics aggregated across all shards.
func (c *AsyncCache) Stats() CacheStats {
	var total CacheStats
	for _, s := range c.shards {
		total.add(s.snapshot())
	}
	return total
}
