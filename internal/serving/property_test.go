package serving

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCacheInvariantsUnderRandomOps drives the two-layer cache with a
// random operation sequence and checks its structural invariants after
// every step.
func TestCacheInvariantsUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	const cap = 8
	c := NewAsyncCache(cap)
	c.PreloadYearly([]Feature{{Query: "y1"}, {Query: "y2"}})
	queries := make([]string, 40)
	for i := range queries {
		queries[i] = fmt.Sprintf("q%d", i)
	}
	for step := 0; step < 5000; step++ {
		q := queries[rng.Intn(len(queries))]
		switch rng.Intn(3) {
		case 0:
			c.Lookup(q)
		case 1:
			c.InstallDaily(Feature{Query: q})
		default:
			c.DrainQueue(rng.Intn(4))
		}
		s := c.Stats()
		if s.DailySize > cap {
			t.Fatalf("step %d: daily size %d exceeds cap %d", step, s.DailySize, cap)
		}
		if s.Hits < 0 || s.Misses < 0 || s.Evictions < 0 {
			t.Fatalf("step %d: negative counters %+v", step, s)
		}
		if s.YearlySize != 2 {
			t.Fatalf("step %d: yearly layer mutated to %d", step, s.YearlySize)
		}
	}
	// Yearly entries always hit.
	if _, ok := c.Lookup("y1"); !ok {
		t.Error("yearly entry lost")
	}
}

// TestCacheHitAfterInstallProperty: any installed query hits until at
// least cap further distinct installs occur.
func TestCacheHitAfterInstallProperty(t *testing.T) {
	c := NewAsyncCache(16)
	for i := 0; i < 200; i++ {
		q := fmt.Sprintf("install-%d", i)
		c.InstallDaily(Feature{Query: q})
		if _, ok := c.Lookup(q); !ok {
			t.Fatalf("query %q missing immediately after install", q)
		}
	}
}

// TestDeploymentBatchDrainsEverything: repeated RunBatch eventually
// clears any backlog.
func TestDeploymentBatchDrainsEverything(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 512}, echoResponder("v1"))
	for i := 0; i < 300; i++ {
		d.HandleQuery(fmt.Sprintf("cold-%d", i))
	}
	total := 0
	for i := 0; i < 100; i++ {
		n := d.RunBatch(16)
		total += n
		if n == 0 {
			break
		}
	}
	if total != 300 {
		t.Errorf("batch drained %d of 300", total)
	}
	if got := d.Cache.Stats().BatchQueued; got != 0 {
		t.Errorf("queue still has %d entries", got)
	}
}
