package serving

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"cosmo/internal/kg"
	"cosmo/internal/wire"
)

// stdlibJSON is the oracle: what the handlers used to send, minus the
// trailing newline (the handlers append it themselves).
func stdlibJSON(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
}

// handlerIntention mirrors the inline response struct the /intentions
// handler used before the hand-rolled encoder.
type handlerIntention struct {
	Relation  string  `json:"relation"`
	Intention string  `json:"intention"`
	Plausible float64 `json:"plausible"`
	Typical   float64 `json:"typical"`
	Support   int     `json:"support"`
}

// legacyIntentions rebuilds the pre-encoder /intentions response value.
func legacyIntentions(snap *kg.Snapshot, id string, k int) map[string]any {
	seq := snap.IntentionsFor(id)
	n := seq.Len()
	if n > k {
		n = k
	}
	out := make([]handlerIntention, n)
	for i := 0; i < n; i++ {
		e := seq.At(i)
		tail, _ := snap.Node(e.Tail)
		out[i] = handlerIntention{
			Relation:  string(e.Relation),
			Intention: tail.Label,
			Plausible: e.PlausibleScore,
			Typical:   e.TypicalScore,
			Support:   e.Support,
		}
	}
	return map[string]any{"id": id, "intentions": out}
}

// TestEncodersGolden pins every hand-rolled response encoder to the
// stdlib bytes it replaced, over the real snapshot shapes.
func TestEncodersGolden(t *testing.T) {
	snap := testSnapshot(t)

	t.Run("queued", func(t *testing.T) {
		for _, q := range []string{"tent", "", `quo"te <&> \`, "snow man \xff"} {
			want := stdlibJSON(t, map[string]string{"status": "queued", "query": q})
			got := AppendQueuedJSON(nil, q)
			if !bytes.Equal(got, want) {
				t.Errorf("AppendQueuedJSON(%q):\n got %s\nwant %s", q, got, want)
			}
			if got2 := AppendQueuedJSONBytes(nil, []byte(q)); !bytes.Equal(got2, want) {
				t.Errorf("AppendQueuedJSONBytes(%q):\n got %s\nwant %s", q, got2, want)
			}
		}
	})

	t.Run("feature", func(t *testing.T) {
		features := []Feature{
			{},
			{
				Query:        "tent",
				Intents:      []string{"used for camping", "v1"},
				Relations:    []string{"USED_FOR_FUNC"},
				SubCategory:  "tent",
				StrongIntent: true,
				Version:      3,
				CreatedAt:    time.Date(2026, 8, 8, 11, 30, 0, 123456789, time.UTC),
			},
			{Query: "<html&>", Intents: []string{}, Relations: nil, Stale: true,
				CreatedAt: time.Date(2024, 1, 2, 3, 4, 5, 0, time.FixedZone("X", 3600))},
		}
		for _, f := range features {
			want := stdlibJSON(t, f)
			got := AppendFeatureJSON(nil, &f)
			if !bytes.Equal(got, want) {
				t.Errorf("AppendFeatureJSON(%+v):\n got %s\nwant %s", f, got, want)
			}
		}
	})

	t.Run("intentions", func(t *testing.T) {
		for _, id := range []string{"q:tent", "p:P1", "q:nope", `quo"te`} {
			for _, k := range []int{1, 2, 10} {
				want := stdlibJSON(t, legacyIntentions(snap, id, k))
				got := AppendIntentionsJSON(nil, snap, id, k)
				if !bytes.Equal(got, want) {
					t.Errorf("AppendIntentionsJSON(%q, %d):\n got %s\nwant %s", id, k, got, want)
				}
				if got2 := AppendIntentionsJSONBytes(nil, snap, []byte(id), k); !bytes.Equal(got2, want) {
					t.Errorf("AppendIntentionsJSONBytes(%q, %d):\n got %s\nwant %s", id, k, got2, want)
				}
			}
		}
	})

	t.Run("related", func(t *testing.T) {
		for _, id := range []string{"p:P1", "p:P2", "q:tent", "p:nope"} {
			for _, k := range []int{1, 10} {
				want := stdlibJSON(t, map[string]any{"id": id, "related": snap.RelatedProducts(id, k)})
				got := AppendRelatedJSON(nil, snap, id, k)
				if !bytes.Equal(got, want) {
					t.Errorf("AppendRelatedJSON(%q, %d):\n got %s\nwant %s", id, k, got, want)
				}
				if got2 := AppendRelatedJSONBytes(nil, snap, []byte(id), k); !bytes.Equal(got2, want) {
					t.Errorf("AppendRelatedJSONBytes(%q, %d):\n got %s\nwant %s", id, k, got2, want)
				}
			}
		}
	})

	t.Run("kg", func(t *testing.T) {
		want := stdlibJSON(t, map[string]any{
			"nodes":     snap.NumNodes(),
			"edges":     snap.NumEdges(),
			"relations": snap.NumRelations(),
		})
		if got := AppendKGJSON(nil, snap); !bytes.Equal(got, want) {
			t.Errorf("AppendKGJSON:\n got %s\nwant %s", got, want)
		}
	})

	t.Run("similar", func(t *testing.T) {
		cases := [][]kg.SimilarMatch{
			{},
			{{ID: "i:a", Label: "camping", Score: 0.9375}, {ID: "i:b", Label: "sh<a>de", Score: math.Sqrt(2) / 3}},
		}
		for _, matches := range cases {
			want := stdlibJSON(t, map[string]any{"q": "te nt", "matches": matches})
			if got := AppendSimilarJSON(nil, "te nt", matches); !bytes.Equal(got, want) {
				t.Errorf("AppendSimilarJSON:\n got %s\nwant %s", got, want)
			}
		}
	})
}

// TestBinaryEncodersRoundTrip decodes every binary frame with BinReader
// and checks it carries exactly what the JSON response carries.
func TestBinaryEncodersRoundTrip(t *testing.T) {
	snap := testSnapshot(t)

	t.Run("intentions", func(t *testing.T) {
		b := AppendIntentionsBin(nil, snap, "q:tent", 10)
		r := wire.NewBinReader(b)
		version, tag, err := r.ReadHeader()
		if err != nil || version != wire.BinaryVersion || tag != wire.BinIntentions {
			t.Fatalf("header = (%d, %d, %v)", version, tag, err)
		}
		id, _ := r.ReadString()
		count, _ := r.ReadUvarint()
		if id != "q:tent" || count != 2 {
			t.Fatalf("id=%q count=%d", id, count)
		}
		rel, _ := r.ReadString()
		intent, _ := r.ReadString()
		plausible, _ := r.ReadFloat()
		typical, _ := r.ReadFloat()
		support, err := r.ReadUvarint()
		if err != nil {
			t.Fatal(err)
		}
		if intent != "camping" || plausible != 0.9 || typical != 0.9 || support != 3 || rel == "" {
			t.Fatalf("first edge = %q %q %g %g %d", rel, intent, plausible, typical, support)
		}
	})

	t.Run("related", func(t *testing.T) {
		b := AppendRelatedBin(nil, snap, "p:P1", 10)
		r := wire.NewBinReader(b)
		_, tag, err := r.ReadHeader()
		if err != nil || tag != wire.BinRelated {
			t.Fatalf("header tag = %d, %v", tag, err)
		}
		id, _ := r.ReadString()
		count, _ := r.ReadUvarint()
		if id != "p:P1" || count != 1 {
			t.Fatalf("id=%q count=%d", id, count)
		}
		want := snap.RelatedProducts("p:P1", 10)[0]
		pid, _ := r.ReadString()
		label, _ := r.ReadString()
		score, _ := r.ReadFloat()
		viaCount, _ := r.ReadUvarint()
		if pid != want.ProductID || label != want.Label || score != want.Score || int(viaCount) != len(want.Via) {
			t.Fatalf("got %q %q %g %d, want %+v", pid, label, score, viaCount, want)
		}
		for _, v := range want.Via {
			got, err := r.ReadString()
			if err != nil || got != v {
				t.Fatalf("via = %q, %v, want %q", got, err, v)
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left over", r.Remaining())
		}
	})

	t.Run("kg", func(t *testing.T) {
		b := AppendKGBin(nil, snap)
		r := wire.NewBinReader(b)
		_, tag, err := r.ReadHeader()
		if err != nil || tag != wire.BinKG {
			t.Fatalf("header tag = %d, %v", tag, err)
		}
		nodes, _ := r.ReadUvarint()
		edges, _ := r.ReadUvarint()
		rels, _ := r.ReadUvarint()
		if int(nodes) != snap.NumNodes() || int(edges) != snap.NumEdges() || int(rels) != snap.NumRelations() {
			t.Fatalf("got %d/%d/%d", nodes, edges, rels)
		}
	})

	t.Run("similar", func(t *testing.T) {
		matches := []kg.SimilarMatch{{ID: "i:a", Label: "camping", Score: 0.5}}
		b := AppendSimilarBin(nil, "tent", matches)
		r := wire.NewBinReader(b)
		_, tag, err := r.ReadHeader()
		if err != nil || tag != wire.BinSimilar {
			t.Fatalf("header tag = %d, %v", tag, err)
		}
		q, _ := r.ReadString()
		count, _ := r.ReadUvarint()
		id, _ := r.ReadString()
		label, _ := r.ReadString()
		score, err := r.ReadFloat()
		if err != nil || q != "tent" || count != 1 || id != "i:a" || label != "camping" || score != 0.5 {
			t.Fatalf("decoded %q %d %q %q %g (%v)", q, count, id, label, score, err)
		}
	})
}

// TestEncodersAllocFree pins the steady-state allocation contract of
// the hot encoders: with a pre-sized destination, encoding a response
// allocates nothing. Skipped under -race (sync.Pool drops items there).
func TestEncodersAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool deliberately drops items under -race")
	}
	snap := testSnapshot(t)
	f := Feature{
		Query: "tent", Intents: []string{"camping"}, Relations: []string{"USED_FOR_FUNC"},
		SubCategory: "tent", Version: 2, CreatedAt: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC),
	}
	id := []byte("p:P1")
	dst := make([]byte, 0, 1<<16)
	var sink []byte

	// Warm the snapshot's scratch pool.
	sink = AppendRelatedJSONBytes(dst, snap, id, 10)

	cases := []struct {
		name string
		fn   func() []byte
	}{
		{"queued", func() []byte { return AppendQueuedJSON(dst, "tent") }},
		{"feature", func() []byte { return AppendFeatureJSON(dst, &f) }},
		{"intentions", func() []byte { return AppendIntentionsJSONBytes(dst, snap, id, 10) }},
		{"related", func() []byte { return AppendRelatedJSONBytes(dst, snap, id, 10) }},
		{"kg", func() []byte { return AppendKGJSON(dst, snap) }},
		{"intentions-bin", func() []byte { return AppendIntentionsBin(dst, snap, "q:tent", 10) }},
		{"related-bin", func() []byte { return AppendRelatedBin(dst, snap, "p:P1", 10) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, func() { sink = tc.fn() }); n != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, n)
		}
	}
	_ = sink
}
