package serving

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestDeploymentDrainLifecycle(t *testing.T) {
	clock := NewFakeClock(time.Unix(1_700_000_000, 0))
	dep := NewDeployment(DeployConfig{DailyCacheCap: 16}, ResponderFunc(func(q string) Feature {
		return Feature{Query: q, Intents: []string{"i"}}
	}))
	dep.Clock = clock
	dep.Cache.ReplaceYearly([]Feature{{Query: "camping", Intents: []string{"i"}, Version: 1, CreatedAt: clock.Now()}})
	dep.SetReady(true)
	h := NewHTTPHandler(dep)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	if dep.Draining() {
		t.Fatal("fresh deployment reports draining")
	}
	if dep.DrainElapsed(time.Second) {
		t.Fatal("DrainElapsed true before BeginDrain")
	}
	if rec := get("/metrics"); !strings.Contains(rec.Body.String(), "cosmo_draining 0") {
		t.Fatalf("/metrics before drain missing cosmo_draining 0:\n%s", rec.Body.String())
	}

	dep.BeginDrain()
	if dep.Ready() {
		t.Fatal("BeginDrain left the deployment ready")
	}
	if !dep.Draining() {
		t.Fatal("BeginDrain did not mark draining")
	}
	// The drain protocol's router-visible half: /readyz says 503 with a
	// "draining" body (so routers classify drain, not death), /metrics
	// exports the gauge, and the query path still answers.
	rec := get("/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("/readyz body %q does not announce the drain", rec.Body.String())
	}
	if rec := get("/metrics"); !strings.Contains(rec.Body.String(), "cosmo_draining 1") {
		t.Fatalf("/metrics while draining missing cosmo_draining 1:\n%s", rec.Body.String())
	}
	if rec := get("/intent?q=camping"); rec.Code != http.StatusOK {
		t.Fatalf("/intent while draining = %d, want 200 (in-flight traffic keeps serving)", rec.Code)
	}

	// Grace accounting runs on the injected clock.
	if dep.DrainElapsed(5 * time.Second) {
		t.Fatal("DrainElapsed true immediately after BeginDrain")
	}
	clock.Advance(4 * time.Second)
	if dep.DrainElapsed(5 * time.Second) {
		t.Fatal("DrainElapsed true at 4s of a 5s grace")
	}
	clock.Advance(time.Second)
	if !dep.DrainElapsed(5 * time.Second) {
		t.Fatal("DrainElapsed false at 5s of a 5s grace")
	}

	// BeginDrain is idempotent: a second call must not restart the
	// grace window.
	dep.BeginDrain()
	if !dep.DrainElapsed(5 * time.Second) {
		t.Fatal("second BeginDrain restarted the grace window")
	}
}
