package serving

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestResilientHalfOpenProbeQuorumConcurrent hammers a half-open
// breaker with concurrent callers: exactly one is admitted as the probe
// at a time (the rest fail fast with ErrBreakerOpen), and each probe's
// success counts toward the quorum exactly once — two probes with
// Probes=2 close the breaker, no matter how many callers raced.
func TestResilientHalfOpenProbeQuorumConcurrent(t *testing.T) {
	const callers = 8
	clock := NewFakeClock(time.Unix(1_700_000_000, 0))
	var failMode atomic.Bool
	entered := make(chan struct{}, callers)
	release := make(chan struct{})
	r := NewResilient(ContextResponderFunc(func(ctx context.Context, q string) (Feature, error) {
		if failMode.Load() {
			return Feature{}, errors.New("boom")
		}
		entered <- struct{}{}
		<-release
		return Feature{Query: q}, nil
	}), ResilienceConfig{
		CallTimeout:      -1, // probes block until released; no attempt timeout
		MaxRetries:       -1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Second,
		BreakerProbes:    2,
		Clock:            clock,
	})

	// Trip the breaker open with one failure.
	failMode.Store(true)
	if _, err := r.RespondContext(context.Background(), "q"); err == nil {
		t.Fatal("tripping call succeeded")
	}
	if got := r.BreakerState(); got != BreakerOpen {
		t.Fatalf("state after trip = %v, want open", got)
	}
	failMode.Store(false)
	clock.Advance(2 * time.Second) // cooldown elapses; next caller probes

	// wave races `callers` concurrent requests against the half-open
	// breaker and asserts exactly one probe is admitted.
	wave := func(waveNo int) {
		t.Helper()
		var wg sync.WaitGroup
		var rejects, successes atomic.Int32
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := r.RespondContext(context.Background(), "q")
				switch {
				case err == nil:
					successes.Add(1)
				case errors.Is(err, ErrBreakerOpen):
					rejects.Add(1)
				default:
					t.Errorf("wave %d: unexpected error %v", waveNo, err)
				}
			}()
		}
		<-entered // the single admitted probe is now blocked inside the responder
		// Every other caller must fail fast while the probe slot is held.
		deadline := time.Now().Add(5 * time.Second)
		for rejects.Load() != callers-1 {
			if time.Now().After(deadline) {
				t.Fatalf("wave %d: %d rejects, want %d while the probe is in flight",
					waveNo, rejects.Load(), callers-1)
			}
			time.Sleep(time.Millisecond)
		}
		select {
		case <-entered:
			t.Fatalf("wave %d: a second probe was admitted concurrently", waveNo)
		default:
		}
		release <- struct{}{} // let the probe succeed
		wg.Wait()
		if successes.Load() != 1 {
			t.Fatalf("wave %d: %d successes, want exactly the probe", waveNo, successes.Load())
		}
	}

	wave(1)
	if got := r.BreakerState(); got != BreakerHalfOpen {
		t.Fatalf("state after probe 1/2 = %v, want still half-open", got)
	}
	wave(2)
	if got := r.BreakerState(); got != BreakerClosed {
		t.Fatalf("state after probe 2/2 = %v, want closed", got)
	}

	stats := r.ResilienceStats()
	if stats.BreakerOpens != 1 {
		t.Fatalf("opens = %d, want 1", stats.BreakerOpens)
	}
	// 1 tripping call + exactly 2 probes were admitted past the breaker.
	if stats.Calls != 3 {
		t.Fatalf("admitted calls = %d, want 3 (quorum must count once per probe)", stats.Calls)
	}
	if want := uint64(2 * (callers - 1)); stats.BreakerRejects != want {
		t.Fatalf("breaker rejects = %d, want %d", stats.BreakerRejects, want)
	}
}
