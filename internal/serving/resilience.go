package serving

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

// Breaker states. The numeric values are exported on /metrics as
// cosmo_breaker_state, so they are part of the metric contract:
// 0 closed (healthy), 1 open (failing fast), 2 half-open (probing).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for logs and /readyz bodies.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// ResilienceConfig tunes the Resilient responder wrapper. Zero values
// select the documented defaults; Seed feeds the deterministic backoff
// jitter (same seed, same call index, same attempt -> same jitter).
type ResilienceConfig struct {
	// CallTimeout bounds each responder attempt (default 1s; negative
	// disables the per-attempt timeout).
	CallTimeout time.Duration
	// MaxRetries is how many times a failed attempt is retried before
	// the call reports failure (default 2, i.e. up to 3 attempts).
	// Negative means no retries.
	MaxRetries int
	// BackoffBase is the delay before the first retry; each further
	// retry doubles it (default 10ms).
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff (default 1s).
	BackoffMax time.Duration
	// Seed drives the backoff jitter. Jitter is a pure function of
	// (Seed, call index, attempt) — see jitterFor — so a run is exactly
	// reproducible per the seeded-rand contract.
	Seed int64
	// BreakerThreshold is how many consecutive failed calls trip the
	// breaker open (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before
	// admitting a half-open probe (default 5s).
	BreakerCooldown time.Duration
	// BreakerProbes is how many consecutive probe successes close a
	// half-open breaker (default 2).
	BreakerProbes int
	// Clock times the breaker's open period; swap in a FakeClock for
	// deterministic tests (default RealClock).
	Clock Clock
}

func (c ResilienceConfig) withDefaults() ResilienceConfig {
	if c.CallTimeout == 0 {
		c.CallTimeout = time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.BreakerProbes <= 0 {
		c.BreakerProbes = 2
	}
	if c.Clock == nil {
		c.Clock = RealClock{}
	}
	return c
}

// ResilienceStats is a snapshot of the wrapper's counters, exported on
// /metrics and /stats.
type ResilienceStats struct {
	// Calls is the number of RespondContext calls admitted past the
	// breaker (each may span several attempts).
	Calls uint64
	// Failures counts failed attempts (errors, timeouts, panics).
	Failures uint64
	// Retries counts re-attempts after a failed attempt.
	Retries uint64
	// Timeouts counts attempts that exceeded CallTimeout.
	Timeouts uint64
	// Panics counts responder panics recovered and converted to errors.
	Panics uint64
	// BreakerRejects counts calls failed fast while the breaker was
	// open.
	BreakerRejects uint64
	// BreakerOpens counts closed/half-open -> open transitions.
	BreakerOpens uint64
	// BreakerState is the breaker's current position.
	BreakerState BreakerState
}

// resilienceReporter is implemented by responders that expose resilience
// counters; the Deployment surfaces them on /metrics and /readyz when
// its current responder implements it.
type resilienceReporter interface {
	ResilienceStats() ResilienceStats
}

// breaker is a closed/open/half-open circuit breaker. Closed it counts
// consecutive failures; at threshold it opens and fails calls fast for
// the cooldown; then it admits one probe at a time (half-open), closing
// after enough consecutive probe successes and re-opening on any probe
// failure.
type breaker struct {
	mu        sync.Mutex
	clock     Clock
	threshold int // <0: breaker disabled, never opens
	cooldown  time.Duration
	probes    int

	state          BreakerState
	consecFails    int
	probeInFlight  bool
	probeSuccesses int
	openedAt       time.Time
	opens          uint64
}

// allow reports whether a call may proceed. In the open state it flips
// to half-open once the cooldown has elapsed, admitting the caller as
// the probe; in half-open it admits one probe at a time.
func (b *breaker) allow() bool {
	if b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.clock.Now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probeSuccesses = 0
		b.probeInFlight = true
		return true
	case BreakerHalfOpen:
		if b.probeInFlight {
			return false
		}
		b.probeInFlight = true
		return true
	}
	return true
}

// success records a successful call.
func (b *breaker) success() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consecFails = 0
	case BreakerHalfOpen:
		b.probeInFlight = false
		b.probeSuccesses++
		if b.probeSuccesses >= b.probes {
			b.state = BreakerClosed
			b.consecFails = 0
		}
	}
}

// failure records a failed call (after the wrapper's retries were
// exhausted).
func (b *breaker) failure() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.threshold {
			b.openLocked()
		}
	case BreakerHalfOpen:
		b.probeInFlight = false
		b.openLocked()
	}
}

func (b *breaker) openLocked() {
	b.state = BreakerOpen
	b.openedAt = b.clock.Now()
	b.opens++
	b.consecFails = 0
}

// abandon releases an admitted call without counting it as success or
// failure — the caller was cancelled (e.g. it lost a hedged race) so
// its outcome says nothing about the backend's health. In half-open it
// frees the probe slot for the next caller.
func (b *breaker) abandon() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probeInFlight = false
	}
}

// canServe is the non-mutating view of allow: would a call be admitted
// right now? Unlike allow it neither flips open->half-open nor claims
// the probe slot, so eligibility scans (the cluster router's replica-set
// derivation) can consult it without perturbing breaker state.
func (b *breaker) canServe() bool {
	if b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		return b.clock.Now().Sub(b.openedAt) >= b.cooldown
	case BreakerHalfOpen:
		return !b.probeInFlight
	}
	return true
}

func (b *breaker) snapshot() (BreakerState, uint64) {
	if b.threshold < 0 {
		return BreakerClosed, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}

// Resilient wraps a ContextResponder with per-attempt timeouts, bounded
// retries under seeded exponential backoff with jitter, panic recovery,
// and a circuit breaker. It is itself a ContextResponder, so it composes
// with any inner responder (including a faults.Injector in chaos tests).
type Resilient struct {
	inner ContextResponder
	cfg   ResilienceConfig
	brk   breaker

	calls          atomic.Uint64
	failures       atomic.Uint64
	retries        atomic.Uint64
	timeouts       atomic.Uint64
	panics         atomic.Uint64
	breakerRejects atomic.Uint64

	// sleep waits for the backoff duration, returning false if ctx was
	// cancelled first. Overridable in tests to capture the deterministic
	// backoff schedule without real sleeping.
	sleep func(ctx context.Context, d time.Duration) bool
}

// NewResilient wraps inner with the resilience layer.
func NewResilient(inner ContextResponder, cfg ResilienceConfig) *Resilient {
	cfg = cfg.withDefaults()
	r := &Resilient{inner: inner, cfg: cfg, sleep: sleepCtx}
	r.brk = breaker{
		clock:     cfg.Clock,
		threshold: cfg.BreakerThreshold,
		cooldown:  cfg.BreakerCooldown,
		probes:    cfg.BreakerProbes,
	}
	return r
}

// BreakerState returns the circuit breaker's current position.
func (r *Resilient) BreakerState() BreakerState {
	s, _ := r.brk.snapshot()
	return s
}

// ResilienceStats snapshots the wrapper's counters.
func (r *Resilient) ResilienceStats() ResilienceStats {
	state, opens := r.brk.snapshot()
	return ResilienceStats{
		Calls:          r.calls.Load(),
		Failures:       r.failures.Load(),
		Retries:        r.retries.Load(),
		Timeouts:       r.timeouts.Load(),
		Panics:         r.panics.Load(),
		BreakerRejects: r.breakerRejects.Load(),
		BreakerOpens:   opens,
		BreakerState:   state,
	}
}

// RespondContext runs one resilient call: fail fast if the breaker is
// open, otherwise attempt the inner responder up to 1+MaxRetries times
// with exponential backoff and deterministic jitter between attempts.
// The final outcome (not each attempt) feeds the breaker.
func (r *Resilient) RespondContext(ctx context.Context, query string) (Feature, error) {
	if !r.brk.allow() {
		r.breakerRejects.Add(1)
		return Feature{}, ErrBreakerOpen
	}
	call := r.calls.Add(1) - 1
	var lastErr error
	for attempt := 0; attempt <= r.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
			if !r.sleep(ctx, r.backoff(call, attempt)) {
				break // cancelled while backing off
			}
		}
		f, err := r.attempt(ctx, query)
		if err == nil {
			r.brk.success()
			return f, nil
		}
		lastErr = err
		r.failures.Add(1)
		if ctx.Err() != nil {
			break // the caller's context is gone; retrying cannot help
		}
	}
	r.brk.failure()
	return Feature{}, lastErr
}

// attempt runs the inner responder once under the per-attempt timeout,
// converting panics to ErrResponderPanic. The responder runs in its own
// goroutine so a non-cancellable hang costs this attempt its timeout
// instead of wedging the caller; a well-behaved inner responder observes
// the attempt context and returns promptly.
func (r *Resilient) attempt(ctx context.Context, query string) (Feature, error) {
	actx := ctx
	cancel := func() {}
	if r.cfg.CallTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, r.cfg.CallTimeout)
	}
	defer cancel()
	type outcome struct {
		f   Feature
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				r.panics.Add(1)
				ch <- outcome{err: fmt.Errorf("%w: %v", ErrResponderPanic, p)}
			}
		}()
		f, err := r.inner.RespondContext(actx, query)
		ch <- outcome{f, err}
	}()
	select {
	case o := <-ch:
		return o.f, o.err
	case <-actx.Done():
		r.timeouts.Add(1)
		return Feature{}, actx.Err()
	}
}

// backoff computes the delay before retry `attempt` of call `call`:
// BackoffBase doubled per attempt, capped at BackoffMax, scaled by a
// deterministic jitter factor in [0.5, 1.5).
func (r *Resilient) backoff(call uint64, attempt int) time.Duration {
	d := r.cfg.BackoffBase << (attempt - 1)
	if d > r.cfg.BackoffMax || d <= 0 {
		d = r.cfg.BackoffMax
	}
	return time.Duration(float64(d) * jitterFor(r.cfg.Seed, call, attempt))
}

// jitterFor derives the backoff jitter factor in [0.5, 1.5) as a pure
// function of (seed, call index, attempt) via splitmix64 finalization —
// the same per-index derivation the pipeline uses (llm.DeriveSeed), so
// retry schedules are reproducible without sharing a *rand.Rand across
// goroutines.
func jitterFor(seed int64, call uint64, attempt int) float64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(call+1) + 0x6a09e667f3bcc909*uint64(attempt)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return 0.5 + float64(z>>11)/float64(1<<53)
}

// BreakerConfig configures a standalone Breaker. Zero values select the
// same defaults as ResilienceConfig's breaker fields.
type BreakerConfig struct {
	// Threshold is how many consecutive failures trip the breaker open
	// (default 5; negative disables the breaker — it never opens).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// Probes is how many consecutive probe successes close a half-open
	// breaker (default 2).
	Probes int
	// Clock times the open period; swap in a FakeClock for tests
	// (default RealClock).
	Clock Clock
}

// Breaker is the resilience layer's circuit breaker as a standalone,
// reusable component: the cluster router keeps one per node so
// breaker-open nodes drop out of replica sets, exactly as Resilient
// drops calls to a breaker-open responder. Every call admitted by Allow
// must be concluded by exactly one of Success, Failure or Abandon.
type Breaker struct {
	b breaker
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold == 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 2
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	return &Breaker{b: breaker{
		clock:     cfg.Clock,
		threshold: cfg.Threshold,
		cooldown:  cfg.Cooldown,
		probes:    cfg.Probes,
	}}
}

// Allow reports whether a call may proceed, claiming the half-open
// probe slot when it does. A caller that got true must later call
// Success, Failure or Abandon.
func (b *Breaker) Allow() bool { return b.b.allow() }

// CanServe is the non-mutating form of Allow: would a call be admitted
// right now? It neither transitions the breaker nor claims the probe
// slot, so it is safe to call from eligibility scans.
func (b *Breaker) CanServe() bool { return b.b.canServe() }

// Success concludes an admitted call that succeeded.
func (b *Breaker) Success() { b.b.success() }

// Failure concludes an admitted call that failed.
func (b *Breaker) Failure() { b.b.failure() }

// Abandon concludes an admitted call whose outcome is unknown (the
// caller was cancelled mid-flight); it frees the probe slot without
// counting toward either quorum.
func (b *Breaker) Abandon() { b.b.abandon() }

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	s, _ := b.b.snapshot()
	return s
}

// Opens returns how many times the breaker has opened.
func (b *Breaker) Opens() uint64 {
	_, n := b.b.snapshot()
	return n
}

// sleepCtx blocks for d or until ctx is done, reporting whether the full
// delay elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
