package serving

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosmo/internal/kg"
)

// failAfterResponder succeeds for the first n calls, then fails every
// call with err (or panics when panicAfter is set).
type failAfterResponder struct {
	n          int
	err        error
	panicAfter bool
	calls      int
}

func (f *failAfterResponder) RespondContext(ctx context.Context, q string) (Feature, error) {
	f.calls++
	if f.calls > f.n {
		if f.panicAfter {
			panic("responder corrupted")
		}
		return Feature{}, f.err
	}
	return Feature{Query: q, Intents: []string{"ok:" + q}}, nil
}

// seedTraffic drives count distinct hot queries through the deployment
// so the feedback loop ranks them.
func seedTraffic(d *Deployment, count int) {
	for i := 0; i < count; i++ {
		q := fmt.Sprintf("hot-%02d", i)
		// More interactions for lower i: deterministic frequency order.
		for j := 0; j <= count-i; j++ {
			d.HandleQuery(q)
		}
	}
}

func snapshotYearly(t *testing.T, d *Deployment) map[string]Feature {
	t.Helper()
	got := map[string]Feature{}
	for i := 0; i < 64; i++ {
		q := fmt.Sprintf("hot-%02d", i)
		if f, ok := d.Cache.Lookup(q); ok {
			got[q] = f
		}
	}
	return got
}

// TestDailyRefreshFailureAtomicity is the satellite regression test: a
// responder that errors partway through the yearly rebuild must leave
// the model version, installed responder, yearly layer, and KG snapshot
// exactly as they were, and surface the failure as an error + metric.
func TestDailyRefreshFailureAtomicity(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 64}, echoResponder("v1"))
	world := kg.New()
	world.AddNode(kg.Node{ID: "p1", Label: "tent", Type: kg.NodeProduct})
	snap := world.Freeze()
	d.SetKG(snap)
	seedTraffic(d, 8)
	// v2 is a pointer responder so installed-responder identity is
	// checkable after the failed refresh attempts below.
	v2 := &failAfterResponder{n: 1 << 30}
	if err := d.DailyRefreshContext(context.Background(), v2, nil, 8); err != nil {
		t.Fatalf("healthy refresh: %v", err)
	}
	yearlyBefore := snapshotYearly(t, d)
	if len(yearlyBefore) != 8 {
		t.Fatalf("yearly layer = %d entries, want 8", len(yearlyBefore))
	}

	// Rebuild fails at the 4th yearly query. Nothing may change.
	boom := errors.New("inference backend 500")
	failing := &failAfterResponder{n: 3, err: boom}
	world2 := kg.New()
	world2.AddNode(kg.Node{ID: "p2", Label: "lantern", Type: kg.NodeProduct})
	err := d.DailyRefreshContext(context.Background(), failing, world2.Freeze(), 8)
	if !errors.Is(err, boom) {
		t.Fatalf("refresh err = %v, want wrapped backend error", err)
	}
	if got := d.Version(); got != 2 {
		t.Errorf("version = %d, want 2 (unchanged)", got)
	}
	if d.KG() != snap {
		t.Error("KG snapshot was swapped by a failed refresh")
	}
	if d.CurrentResponder() != ContextResponder(v2) {
		t.Error("responder was swapped by a failed refresh")
	}
	yearlyAfter := snapshotYearly(t, d)
	if len(yearlyAfter) != len(yearlyBefore) {
		t.Fatalf("yearly layer = %d entries after failure, want %d", len(yearlyAfter), len(yearlyBefore))
	}
	for q, f := range yearlyBefore {
		af, ok := yearlyAfter[q]
		if !ok || af.Version != f.Version || len(af.Intents) != len(f.Intents) {
			t.Errorf("yearly entry %q changed across failed refresh: %+v -> %+v", q, f, af)
		}
	}
	if got := d.BatchTotals().RefreshFails; got != 1 {
		t.Errorf("refresh failures = %d, want 1", got)
	}

	// A panicking rebuild is equally atomic.
	err = d.DailyRefreshContext(context.Background(), &failAfterResponder{n: 2, panicAfter: true}, nil, 8)
	if !errors.Is(err, ErrResponderPanic) {
		t.Fatalf("panic refresh err = %v, want ErrResponderPanic", err)
	}
	if got := d.Version(); got != 2 {
		t.Errorf("version after panic refresh = %d, want 2", got)
	}
	if got := d.BatchTotals().RefreshFails; got != 2 {
		t.Errorf("refresh failures = %d, want 2", got)
	}

	// The deployment still serves and a later healthy refresh succeeds.
	if err := d.DailyRefresh(echoResponder("v3"), nil, 4); err != nil {
		t.Fatalf("recovery refresh: %v", err)
	}
	if got := d.Version(); got != 3 {
		t.Errorf("version after recovery = %d, want 3", got)
	}
}

// TestRunBatchRequeuesFailures: failed queries go back on the bounded
// queue and are processed once the responder recovers; the accounting
// ledger balances.
func TestRunBatchRequeuesFailures(t *testing.T) {
	boom := errors.New("transient")
	flaky := &failAfterResponder{n: 0, err: boom} // fails every call for now
	d := NewDeploymentContext(DeployConfig{DailyCacheCap: 64, CacheShards: 1, QueueCap: 32}, flaky)
	for i := 0; i < 10; i++ {
		d.HandleQuery(fmt.Sprintf("q%d", i))
	}
	res := d.RunBatchContext(context.Background(), 64)
	if res.Drained != 10 || res.Failed != 10 || res.Requeued != 10 || res.Succeeded != 0 {
		t.Fatalf("failing batch = %+v", res)
	}
	if got := d.Cache.Stats().BatchQueued; got != 10 {
		t.Fatalf("queue depth = %d, want 10 after requeue", got)
	}
	// Responder recovers: the requeued queries process on the next run.
	flaky.n = 1 << 30
	res = d.RunBatchContext(context.Background(), 64)
	if res.Drained != 10 || res.Succeeded != 10 {
		t.Fatalf("recovery batch = %+v", res)
	}
	bt := d.BatchTotals()
	if bt.Succeeded != 10 || bt.Failed != 10 || bt.Requeued != 10 || bt.RequeueDropped != 0 {
		t.Errorf("totals = %+v", bt)
	}
	// Ledger: every push is drained, dropped, or still queued.
	cs := d.Cache.Stats()
	if pushes := cs.BatchEnqueued + cs.BatchRequeued; pushes != 20 {
		t.Errorf("pushes = %d, want 20 (10 misses + 10 requeues)", pushes)
	}
	if cs.BatchQueued != 0 {
		t.Errorf("queue depth = %d after recovery, want 0", cs.BatchQueued)
	}
}

// TestRunBatchRequeueOverflowDrops: when a shard's queue is already
// full, the requeued query is dropped with the metric rather than
// evicting fresh work, and its de-dup claim is released so a later miss
// can queue it again.
func TestRunBatchRequeueOverflowDrops(t *testing.T) {
	boom := errors.New("down")
	d := NewDeploymentContext(DeployConfig{DailyCacheCap: 8, CacheShards: 1, QueueCap: 2}, &failAfterResponder{err: boom})
	d.HandleQuery("a")
	d.HandleQuery("b")
	// Drain both, then refill the queue before the failures requeue.
	queries := d.Cache.DrainQueue(2)
	if len(queries) != 2 {
		t.Fatalf("drained %d", len(queries))
	}
	d.HandleQuery("c")
	d.HandleQuery("e")
	for _, q := range queries {
		if d.Cache.Requeue(q) {
			t.Errorf("requeue %q succeeded with a full queue", q)
		}
	}
	// The dropped queries' de-dup claims are gone: a fresh miss can
	// re-enqueue them (dropping the oldest fresh entries in turn).
	d.HandleQuery("a")
	found := false
	for _, q := range d.Cache.DrainQueue(10) {
		if q == "a" {
			found = true
		}
	}
	if !found {
		t.Error("dropped requeue left a stale de-dup claim; 'a' could not re-enqueue")
	}
}

// TestRunBatchRecoversPanics: one poisoned query must not take down the
// batch; it is recovered, counted and requeued while the rest process.
func TestRunBatchRecoversPanics(t *testing.T) {
	poison := ContextResponderFunc(func(ctx context.Context, q string) (Feature, error) {
		if q == "poison" {
			panic("query of death")
		}
		return Feature{Query: q}, nil
	})
	d := NewDeploymentContext(DeployConfig{DailyCacheCap: 64, QueueCap: 32}, poison)
	d.HandleQuery("poison")
	d.HandleQuery("fine")
	res := d.RunBatchContext(context.Background(), 10)
	if res.Drained != 2 || res.Succeeded != 1 || res.Failed != 1 {
		t.Fatalf("batch = %+v", res)
	}
	if got := d.BatchTotals().Panics; got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
	if _, ok := d.Store.Get("fine"); !ok {
		t.Error("healthy query was not processed alongside the poisoned one")
	}
}

// TestDrainQueueRotatesShards is the satellite regression test for
// shard starvation: with more backlog than the batch size, consecutive
// drains must reach every shard rather than hammering shard 0.
func TestDrainQueueRotatesShards(t *testing.T) {
	c := NewAsyncCacheWithConfig(CacheConfig{DailyCap: 64, Shards: 8, QueueCap: 512})
	// Queue enough distinct queries that every shard has a backlog.
	for i := 0; i < 256; i++ {
		c.Lookup(fmt.Sprintf("q%d", i))
	}
	perShardBefore := make([]int, len(c.shards))
	for i, s := range c.shards {
		perShardBefore[i] = s.snapshot().BatchQueued
	}
	// Drain in small batches, fewer than the backlog per pass, without
	// installing (so drained work stays de-duped and nothing refills).
	// With rotation, after len(shards) passes every shard must have
	// been visited first exactly once, so all shards shrink.
	for pass := 0; pass < len(c.shards); pass++ {
		if got := len(c.DrainQueue(4)); got != 4 {
			t.Fatalf("pass %d drained %d", pass, got)
		}
	}
	shrunk := 0
	for i, s := range c.shards {
		if s.snapshot().BatchQueued < perShardBefore[i] {
			shrunk++
		}
	}
	if shrunk < len(c.shards) {
		t.Errorf("only %d/%d shards were drained across a full rotation; starvation persists",
			shrunk, len(c.shards))
	}
}

// TestStartWorkerFinalDrainEmptiesBacklog is the satellite regression
// test for shutdown: a backlog far larger than one batch, queued before
// cancellation, must be fully processed by the final drain.
func TestStartWorkerFinalDrainEmptiesBacklog(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 512, QueueCap: 1024}, echoResponder("v1"))
	ctx, cancel := context.WithCancel(context.Background())
	// Long interval: the ticker will not fire before cancellation, so
	// everything rides on the final drain.
	done := d.StartWorker(ctx, time.Hour, 16)
	for i := 0; i < 300; i++ { // 300 queries >> batchSize 16
		d.HandleQuery(fmt.Sprintf("backlog-%d", i))
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not stop")
	}
	if got := d.Cache.Stats().BatchQueued; got != 0 {
		t.Errorf("queue depth = %d after final drain, want 0", got)
	}
	if got := d.Store.Len(); got != 300 {
		t.Errorf("store = %d features, want 300", got)
	}
}

// TestStartWorkerFinalDrainStopsWhenResponderDown: with the responder
// hard-down, the final drain must terminate (not spin on requeues) and
// leave the backlog accounted as requeued.
func TestStartWorkerFinalDrainStopsWhenResponderDown(t *testing.T) {
	down := &failAfterResponder{err: errors.New("down")}
	d := NewDeploymentContext(DeployConfig{DailyCacheCap: 64, QueueCap: 256}, down)
	ctx, cancel := context.WithCancel(context.Background())
	done := d.StartWorker(ctx, time.Hour, 16)
	for i := 0; i < 50; i++ {
		d.HandleQuery(fmt.Sprintf("q%d", i))
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("final drain spun forever on a down responder")
	}
	bt := d.BatchTotals()
	if bt.Succeeded != 0 {
		t.Errorf("succeeded = %d with a down responder", bt.Succeeded)
	}
	if bt.Requeued == 0 {
		t.Error("down-responder drain recorded no requeues")
	}
}

// TestReadyzLifecycle: /readyz is 503 through warmup, 200 once ready,
// 503 again while the breaker is open, and recovers when it closes.
func TestReadyzLifecycle(t *testing.T) {
	clock := NewFakeClock(time.Date(2026, 8, 6, 9, 0, 0, 0, time.UTC))
	inner := &flakyResponder{failures: -1}
	r := NewResilient(inner, ResilienceConfig{
		CallTimeout:      100 * time.Millisecond,
		MaxRetries:       -1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Second,
		BreakerProbes:    1,
		Clock:            clock,
		Seed:             1,
	})
	d := NewDeploymentContext(DeployConfig{DailyCacheCap: 16}, r)
	srv := httptest.NewServer(NewHTTPHandler(d))
	defer srv.Close()

	status := func() int {
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status(); got != http.StatusServiceUnavailable {
		t.Errorf("warming readyz = %d, want 503", got)
	}
	if got := status(); got != http.StatusServiceUnavailable {
		t.Errorf("readyz again = %d, want 503", got)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d during warmup; liveness must not gate on readiness", resp.StatusCode)
	}

	d.SetReady(true)
	if got := status(); got != http.StatusOK {
		t.Errorf("ready readyz = %d, want 200", got)
	}

	// Trip the breaker: two failed calls through the batch path.
	d.HandleQuery("a")
	d.HandleQuery("b")
	d.RunBatch(10)
	if got := r.BreakerState(); got != BreakerOpen {
		t.Fatalf("breaker = %v, want open", got)
	}
	if got := status(); got != http.StatusServiceUnavailable {
		t.Errorf("breaker-open readyz = %d, want 503", got)
	}

	// Heal, cool down, probe succeeds: ready again.
	inner.mu.Lock()
	inner.failures = 0
	inner.mu.Unlock()
	clock.Advance(2 * time.Second)
	d.RunBatch(10) // drains requeued queries; probe closes the breaker
	if got := r.BreakerState(); got != BreakerClosed {
		t.Fatalf("breaker = %v after heal, want closed", got)
	}
	if got := status(); got != http.StatusOK {
		t.Errorf("healed readyz = %d, want 200", got)
	}
}

// TestMetricsResilienceExport: the new counters appear on /metrics with
// the documented names.
func TestMetricsResilienceExport(t *testing.T) {
	inner := &flakyResponder{failures: 1}
	r := NewResilient(inner, fastCfg())
	d := NewDeploymentContext(DeployConfig{DailyCacheCap: 16}, r)
	d.SetReady(true)
	d.HandleQuery("camping")
	d.RunBatch(10)
	srv := httptest.NewServer(NewHTTPHandler(d))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"cosmo_responder_failures_total 0", // retry recovered the call
		"cosmo_responder_retries_total 1",
		"cosmo_responder_attempt_failures_total 1",
		"cosmo_breaker_state 0",
		"cosmo_batch_requeued_total 0",
		"cosmo_batch_processed_total 1",
		"cosmo_stale_served_total 0",
		"cosmo_refresh_failures_total 0",
		"cosmo_ready 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
