package serving

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestShardedCacheConcurrentStress hammers every mutating cache
// operation from many goroutines; run under `go test -race` this is the
// tentpole's concurrency proof for the lock-striped shards.
func TestShardedCacheConcurrentStress(t *testing.T) {
	c := NewAsyncCacheWithConfig(CacheConfig{DailyCap: 128, QueueCap: 256})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				q := fmt.Sprintf("q%d", rng.Intn(200))
				switch rng.Intn(5) {
				case 0, 1:
					c.Lookup(q)
				case 2:
					c.InstallDaily(Feature{Query: q})
				case 3:
					for _, d := range c.DrainQueue(8) {
						c.InstallDaily(Feature{Query: d})
					}
				default:
					c.Stats()
				}
			}
		}(int64(w))
	}
	// Concurrent refresh churn against the lookup/install traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.ReplaceYearly([]Feature{{Query: fmt.Sprintf("yearly%d", i)}})
			c.ResetDaily()
		}
	}()
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses == 0 {
		t.Error("no traffic recorded")
	}
	if s.DailySize > 128 {
		t.Errorf("daily size %d exceeds total cap", s.DailySize)
	}
	if s.BatchQueued > 256 {
		t.Errorf("queue depth %d exceeds bound", s.BatchQueued)
	}
}

// TestDeploymentConcurrentWithWorkerAndRefresh runs the full serving
// loop — HandleQuery traffic, the background batch worker, and daily
// refreshes — concurrently, as cosmo-serve does in production.
func TestDeploymentConcurrentWithWorkerAndRefresh(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 256, QueueCap: 512}, echoResponder("v1"))
	ctx, cancel := context.WithCancel(context.Background())
	done := d.StartWorker(ctx, time.Millisecond, 64)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				d.HandleQuery(fmt.Sprintf("q%d", rng.Intn(100)))
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := d.DailyRefresh(echoResponder(fmt.Sprintf("v%d", i+2)), nil, 16); err != nil {
				t.Errorf("refresh %d: %v", i, err)
			}
			d.LatencyPercentiles()
			d.TopInteractions(5)
		}
	}()
	wg.Wait()
	cancel()
	<-done

	if d.Version() != 11 {
		t.Errorf("version = %d, want 11 after 10 refreshes", d.Version())
	}
	if got := d.latency.Count(); got != 8000 {
		t.Errorf("latency observations = %d, want 8000", got)
	}
	// Drain any stragglers queued after the worker's final pass; the
	// queue must empty, proving nothing leaked or wedged.
	for i := 0; i < 100 && d.RunBatch(64) > 0; i++ {
	}
	if got := d.Cache.Stats().BatchQueued; got != 0 {
		t.Errorf("queue depth %d after full drain", got)
	}
}

// TestStartWorkerDrainsBacklogAndStops: queued misses are processed by
// the worker without manual RunBatch calls, and cancellation performs a
// final drain before the done channel closes.
func TestStartWorkerDrainsBacklogAndStops(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 128}, echoResponder("v1"))
	for i := 0; i < 50; i++ {
		d.HandleQuery(fmt.Sprintf("cold-%d", i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := d.StartWorker(ctx, time.Millisecond, 16)
	deadline := time.After(5 * time.Second)
	for d.Store.Len() < 50 {
		select {
		case <-deadline:
			t.Fatalf("worker drained only %d/50 before deadline", d.Store.Len())
		case <-time.After(time.Millisecond):
		}
	}
	// A query accepted just before shutdown is still processed by the
	// final drain.
	d.HandleQuery("last-call")
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not stop")
	}
	if _, ok := d.Store.Get("last-call"); !ok {
		t.Error("final drain skipped the last queued query")
	}
}
