// Package serving implements the COSMO online deployment of §3.5 and
// Figure 5: the feature store that converts model responses into
// structured features for downstream applications, the asynchronous
// two-layer cache store (pre-loaded yearly frequent searches plus
// batch-processed daily requests), the batch processor, the daily model
// refresh loop, and request handling that meets the latency budget by
// serving cached features for the bulk of traffic.
package serving

import (
	"sort"
	"sync"
	"time"
)

// Feature staleness is measured against the deployment's Clock so tests
// can drive time deterministically with FakeClock.

// Feature is the structured, serving-ready form of a COSMO-LM response:
// product key-value pairs, semantic sub-category representation, and the
// strong-intent flag (§3.5.1 "Feature Store Integration").
type Feature struct {
	Query string
	// Intents are the generated knowledge strings, best first.
	Intents []string
	// Relations are the relation types aligned with Intents.
	Relations []string
	// SubCategory is the semantic sub-category representation (the top
	// intent's tail).
	SubCategory string
	// StrongIntent marks a high-confidence intent detection.
	StrongIntent bool
	// Version is the model refresh version that produced the feature.
	Version int
	// CreatedAt is when the feature was materialized; consumers use it
	// to reason about staleness (see the flash-sale experiment).
	CreatedAt time.Time
	// Stale marks a degraded response: the cache tiers missed and this
	// feature was served from the feature store, possibly computed by an
	// earlier model version. Set at serve time by HandleQuery, never
	// stored.
	Stale bool
}

// DefaultFeatureStoreCap bounds the deployment's feature store. A
// long-running server sees an unbounded stream of distinct queries;
// without a cap the store is a slow memory leak (the PR 1 bug class).
const DefaultFeatureStoreCap = 1 << 17

// FeatureStore stores structured features keyed by query; safe for
// concurrent use. When built with a capacity, inserting past it evicts
// the oldest-inserted entry (FIFO), keeping resident memory O(cap)
// regardless of how many distinct queries the deployment serves.
type FeatureStore struct {
	mu       sync.RWMutex
	features map[string]Feature
	cap      int // 0 = unlimited
	// order is the FIFO of live inserts. Entries whose seq no longer
	// matches seq[key] are stale (the key was dropped and re-inserted)
	// and are skipped lazily; compaction keeps the slice O(cap).
	order   []fsEntry
	seq     map[string]uint64
	nextSeq uint64
}

type fsEntry struct {
	key string
	seq uint64
}

// NewFeatureStore returns an empty, unbounded store (pipeline and
// experiment use, where the query universe is finite and known).
func NewFeatureStore() *FeatureStore {
	return NewFeatureStoreWithCap(0)
}

// NewFeatureStoreWithCap returns a store bounded to capacity entries
// (0 = unlimited).
func NewFeatureStoreWithCap(capacity int) *FeatureStore {
	return &FeatureStore{
		features: map[string]Feature{},
		cap:      capacity,
		seq:      map[string]uint64{},
	}
}

// Put inserts or replaces the feature for a query, evicting the
// oldest-inserted entries when a capacity is set and exceeded.
func (s *FeatureStore) Put(f Feature) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.features[f.Query]; !exists {
		if s.cap > 0 {
			for len(s.features) >= s.cap && len(s.order) > 0 {
				head := s.order[0]
				s.order = s.order[1:]
				if s.seq[head.key] != head.seq {
					continue // stale: key was dropped and re-inserted later
				}
				delete(s.features, head.key)
				delete(s.seq, head.key)
			}
		}
		s.nextSeq++
		s.order = append(s.order, fsEntry{key: f.Query, seq: s.nextSeq})
		s.seq[f.Query] = s.nextSeq
		if len(s.order) > 2*len(s.features)+16 {
			s.compactOrderLocked()
		}
	}
	s.features[f.Query] = f
}

// compactOrderLocked drops stale FIFO entries (dropped or re-inserted
// keys) so order stays proportional to the live set. Callers hold mu.
func (s *FeatureStore) compactOrderLocked() {
	live := s.order[:0]
	for _, e := range s.order {
		if s.seq[e.key] == e.seq {
			live = append(live, e)
		}
	}
	// Release the tail so evicted keys don't pin memory.
	tail := s.order[len(live):]
	for i := range tail {
		tail[i] = fsEntry{}
	}
	s.order = live
}

// Get fetches the feature for a query.
func (s *FeatureStore) Get(query string) (Feature, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.features[query]
	return f, ok
}

// Len returns the number of stored features.
func (s *FeatureStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.features)
}

// Queries returns the stored query keys, sorted.
func (s *FeatureStore) Queries() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	qs := make([]string, 0, len(s.features))
	for q := range s.features {
		qs = append(qs, q)
	}
	sort.Strings(qs)
	return qs
}

// DropVersionsBefore removes features older than version v (used by the
// daily refresh to retire stale entries).
func (s *FeatureStore) DropVersionsBefore(v int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for q, f := range s.features {
		if f.Version < v {
			delete(s.features, q)
			delete(s.seq, q)
			dropped++
		}
	}
	if dropped > 0 {
		s.compactOrderLocked()
	}
	return dropped
}

// Clock abstracts time for deterministic tests.
type Clock interface {
	Now() time.Time
}

// RealClock uses the wall clock.
type RealClock struct{}

// Now returns the current wall time.
func (RealClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced clock for tests.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts at the given time.
func NewFakeClock(t time.Time) *FakeClock { return &FakeClock{t: t} }

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
