// Package serving implements the COSMO online deployment of §3.5 and
// Figure 5: the feature store that converts model responses into
// structured features for downstream applications, the asynchronous
// two-layer cache store (pre-loaded yearly frequent searches plus
// batch-processed daily requests), the batch processor, the daily model
// refresh loop, and request handling that meets the latency budget by
// serving cached features for the bulk of traffic.
package serving

import (
	"sort"
	"sync"
	"time"
)

// Feature staleness is measured against the deployment's Clock so tests
// can drive time deterministically with FakeClock.

// Feature is the structured, serving-ready form of a COSMO-LM response:
// product key-value pairs, semantic sub-category representation, and the
// strong-intent flag (§3.5.1 "Feature Store Integration").
type Feature struct {
	Query string
	// Intents are the generated knowledge strings, best first.
	Intents []string
	// Relations are the relation types aligned with Intents.
	Relations []string
	// SubCategory is the semantic sub-category representation (the top
	// intent's tail).
	SubCategory string
	// StrongIntent marks a high-confidence intent detection.
	StrongIntent bool
	// Version is the model refresh version that produced the feature.
	Version int
	// CreatedAt is when the feature was materialized; consumers use it
	// to reason about staleness (see the flash-sale experiment).
	CreatedAt time.Time
}

// FeatureStore stores structured features keyed by query; safe for
// concurrent use.
type FeatureStore struct {
	mu       sync.RWMutex
	features map[string]Feature
}

// NewFeatureStore returns an empty store.
func NewFeatureStore() *FeatureStore {
	return &FeatureStore{features: map[string]Feature{}}
}

// Put inserts or replaces the feature for a query.
func (s *FeatureStore) Put(f Feature) {
	s.mu.Lock()
	s.features[f.Query] = f
	s.mu.Unlock()
}

// Get fetches the feature for a query.
func (s *FeatureStore) Get(query string) (Feature, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.features[query]
	return f, ok
}

// Len returns the number of stored features.
func (s *FeatureStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.features)
}

// Queries returns the stored query keys, sorted.
func (s *FeatureStore) Queries() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	qs := make([]string, 0, len(s.features))
	for q := range s.features {
		qs = append(qs, q)
	}
	sort.Strings(qs)
	return qs
}

// DropVersionsBefore removes features older than version v (used by the
// daily refresh to retire stale entries).
func (s *FeatureStore) DropVersionsBefore(v int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for q, f := range s.features {
		if f.Version < v {
			delete(s.features, q)
			dropped++
		}
	}
	return dropped
}

// Clock abstracts time for deterministic tests.
type Clock interface {
	Now() time.Time
}

// RealClock uses the wall clock.
type RealClock struct{}

// Now returns the current wall time.
func (RealClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced clock for tests.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts at the given time.
func NewFakeClock(t time.Time) *FakeClock { return &FakeClock{t: t} }

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
