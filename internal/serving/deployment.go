package serving

import (
	"sort"
	"sync"
)

// Responder runs model inference for one query — the expensive path that
// the cache architecture keeps off the request critical path. COSMO-LM
// is adapted to this interface by the caller (see cmd/cosmo-serve).
type Responder interface {
	Respond(query string) Feature
}

// ResponderFunc adapts a function to the Responder interface.
type ResponderFunc func(query string) Feature

// Respond calls f.
func (f ResponderFunc) Respond(query string) Feature { return f(query) }

// Simulated serving latencies (ms); the cached path is the latency the
// deployment must meet ("Amazon's restricted search latency
// requirements"), the model path is why inline inference is infeasible.
const (
	CacheHitLatencyMs  = 2.0
	CacheMissLatencyMs = 3.0 // lookup + enqueue; response degrades, never blocks
)

// Deployment wires the cache store, feature store, responder and refresh
// loop together (Figure 5's operational flow).
type Deployment struct {
	Cache *AsyncCache
	Store *FeatureStore
	// Clock stamps features; swap in a FakeClock for tests.
	Clock Clock

	mu        sync.Mutex
	responder Responder
	version   int
	latencies []float64
	// interactions is the feedback loop: query -> interaction count,
	// feeding the next refresh's frequent-search selection.
	interactions map[string]int
}

// DeployConfig configures a deployment.
type DeployConfig struct {
	DailyCacheCap int
}

// NewDeployment builds a deployment around the initial model.
func NewDeployment(cfg DeployConfig, responder Responder) *Deployment {
	if cfg.DailyCacheCap <= 0 {
		cfg.DailyCacheCap = 1024
	}
	return &Deployment{
		Cache:        NewAsyncCache(cfg.DailyCacheCap),
		Store:        NewFeatureStore(),
		Clock:        RealClock{},
		responder:    responder,
		version:      1,
		interactions: map[string]int{},
	}
}

// Version returns the current model version.
func (d *Deployment) Version() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.version
}

// HandleQuery is the request path: check the async cache, return
// structured features on a hit; on a miss the query is queued for batch
// processing and the caller proceeds without intent features.
func (d *Deployment) HandleQuery(query string) (Feature, bool) {
	f, ok := d.Cache.Lookup(query)
	d.mu.Lock()
	if ok {
		d.latencies = append(d.latencies, CacheHitLatencyMs)
	} else {
		d.latencies = append(d.latencies, CacheMissLatencyMs)
	}
	d.interactions[query]++
	d.mu.Unlock()
	return f, ok
}

// RunBatch drains up to n queued queries, runs model inference for each,
// writes features to the feature store and installs them in the daily
// cache layer ("Batch Processing and Cache Update"). It returns the
// number processed.
func (d *Deployment) RunBatch(n int) int {
	queries := d.Cache.DrainQueue(n)
	d.mu.Lock()
	responder := d.responder
	version := d.version
	d.mu.Unlock()
	for _, q := range queries {
		f := responder.Respond(q)
		f.Query = q
		f.Version = version
		f.CreatedAt = d.Clock.Now()
		d.Store.Put(f)
		d.Cache.InstallDaily(f)
	}
	return len(queries)
}

// DailyRefresh swaps in a refreshed model ("Model Deployment: dynamic
// ingestion of customer behavior session logs and efficient model
// updates"), clears the daily cache layer, and rebuilds the yearly layer
// from the most-interacted queries of the feedback loop.
func (d *Deployment) DailyRefresh(responder Responder, yearlyTop int) {
	d.mu.Lock()
	d.responder = responder
	d.version++
	version := d.version
	type qc struct {
		q string
		c int
	}
	var counts []qc
	for q, c := range d.interactions {
		counts = append(counts, qc{q, c})
	}
	d.mu.Unlock()
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].c != counts[j].c {
			return counts[i].c > counts[j].c
		}
		return counts[i].q < counts[j].q
	})
	if yearlyTop > len(counts) {
		yearlyTop = len(counts)
	}
	features := make([]Feature, 0, yearlyTop)
	for _, e := range counts[:yearlyTop] {
		f := responder.Respond(e.q)
		f.Query = e.q
		f.Version = version
		f.CreatedAt = d.Clock.Now()
		d.Store.Put(f)
		features = append(features, f)
	}
	d.Cache.ReplaceYearly(features)
	d.Cache.ResetDaily()
}

// LatencyPercentiles returns the p50 and p99 of observed request
// latencies (ms).
func (d *Deployment) LatencyPercentiles() (p50, p99 float64) {
	d.mu.Lock()
	ls := make([]float64, len(d.latencies))
	copy(ls, d.latencies)
	d.mu.Unlock()
	if len(ls) == 0 {
		return 0, 0
	}
	sort.Float64s(ls)
	idx := func(p float64) float64 {
		i := int(p * float64(len(ls)))
		if i >= len(ls) {
			i = len(ls) - 1
		}
		return ls[i]
	}
	return idx(0.50), idx(0.99)
}

// TopInteractions returns the feedback loop's most frequent queries.
func (d *Deployment) TopInteractions(n int) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	type qc struct {
		q string
		c int
	}
	var counts []qc
	for q, c := range d.interactions {
		counts = append(counts, qc{q, c})
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].c != counts[j].c {
			return counts[i].c > counts[j].c
		}
		return counts[i].q < counts[j].q
	})
	if n > len(counts) {
		n = len(counts)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = counts[i].q
	}
	return out
}
