package serving

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cosmo/internal/kg"
)

// Responder runs model inference for one query — the expensive path that
// the cache architecture keeps off the request critical path. COSMO-LM
// is adapted to this interface by the caller (see cmd/cosmo-serve).
// Responder is the legacy infallible interface; new serving code targets
// ContextResponder (responder.go), and AdaptResponder bridges the two.
type Responder interface {
	Respond(query string) Feature
}

// ResponderFunc adapts a function to the Responder interface.
type ResponderFunc func(query string) Feature

// Respond calls f.
func (f ResponderFunc) Respond(query string) Feature { return f(query) }

// Simulated serving latencies (ms); the cached path is the latency the
// deployment must meet ("Amazon's restricted search latency
// requirements"), the model path is why inline inference is infeasible.
const (
	CacheHitLatencyMs  = 2.0
	CacheMissLatencyMs = 3.0 // lookup + enqueue; response degrades, never blocks
)

// interactionStripes is the lock-stripe count of the feedback-loop
// counter; like the cache shard count it is fixed for determinism.
const interactionStripes = 16

// Deployment wires the cache store, feature store, responder and refresh
// loop together (Figure 5's operational flow).
//
// The request path (HandleQuery) is lock-striped end to end: the cache
// shards on query hash, latency goes to a fixed-bucket atomic histogram,
// and the interaction feedback loop is a striped counter. Memory is
// O(cache capacity + distinct queries), not O(requests served).
//
// The responder path is fallible: batch processing recovers responder
// panics and re-queues failed queries, DailyRefresh aborts atomically
// when inference fails mid-rebuild, and HandleQuery degrades to serving
// prior-version features (flagged Stale) from the feature store when the
// cache tiers miss.
type Deployment struct {
	Cache *AsyncCache
	Store *FeatureStore
	// Clock stamps features; swap in a FakeClock for tests.
	Clock Clock

	mu        sync.Mutex // guards responder; refreshMu serializes refreshes
	refreshMu sync.Mutex
	responder ContextResponder
	version   atomic.Int64

	// ready flips once warmup completes (SetReady); /readyz reports 503
	// until then and again whenever the breaker is open.
	ready atomic.Bool

	// draining marks a deliberate shutdown in progress (BeginDrain):
	// /readyz answers 503 so routers stop sending fresh keys here, but
	// the query endpoints keep serving in-flight and router-retry
	// traffic until the grace period lapses. Exported on /metrics as
	// cosmo_draining so a router can distinguish drain from death.
	draining     atomic.Bool
	drainStartNs atomic.Int64

	latency *Histogram
	// interactions is the feedback loop: query -> interaction count,
	// feeding the next refresh's frequent-search selection.
	interactions *stripedCounter

	// Batch and degradation accounting (see BatchTotals).
	batchSucceeded      atomic.Uint64
	batchFailed         atomic.Uint64
	batchRequeued       atomic.Uint64
	batchRequeueDropped atomic.Uint64
	batchPanics         atomic.Uint64
	staleServed         atomic.Uint64
	refreshFailures     atomic.Uint64

	// Snapshot refresh accounting: reloads that swapped a fresh KG
	// artifact in, vs refresh ticks that skipped the reload because the
	// on-disk artifact was unchanged (same stat identity or same v2
	// content fingerprint; see kg.SnapshotStamp).
	snapshotReloads        atomic.Uint64
	snapshotReloadsSkipped atomic.Uint64

	// kgSnap is the frozen knowledge-graph read path. Requests load it
	// with one atomic read and traverse it lock-free; DailyRefresh
	// swaps in a fresh snapshot RCU-style — in-flight requests keep
	// reading the old one until they finish, and the swap never blocks.
	kgSnap atomic.Pointer[kg.Snapshot]

	// simIdx is the ANN retrieval path (/similar): an immutable LSH
	// index over the snapshot's intention embeddings, swapped RCU-style
	// alongside the snapshot it was built from.
	simIdx atomic.Pointer[kg.SimilarityIndex]

	// maxBatchItems bounds one POST /batch request (DeployConfig).
	maxBatchItems int
}

// DeployConfig configures a deployment.
type DeployConfig struct {
	DailyCacheCap int
	// CacheShards overrides the cache's lock-stripe count
	// (DefaultCacheShards when 0).
	CacheShards int
	// QueueCap bounds the batch miss queue (DefaultQueueCap when 0).
	QueueCap int
	// FeatureStoreCap bounds the feature store (DefaultFeatureStoreCap
	// when 0, unlimited when negative). Insertions past the cap evict
	// the oldest-inserted feature.
	FeatureStoreCap int
	// MaxBatchItems bounds one POST /batch request
	// (DefaultMaxBatchItems when 0).
	MaxBatchItems int
}

// NewDeployment builds a deployment around the initial model, adapting
// the legacy infallible responder.
func NewDeployment(cfg DeployConfig, responder Responder) *Deployment {
	return NewDeploymentContext(cfg, AdaptResponder(responder))
}

// NewDeploymentContext builds a deployment around a fallible responder
// (typically a *Resilient wrapping the model backend).
func NewDeploymentContext(cfg DeployConfig, responder ContextResponder) *Deployment {
	if cfg.DailyCacheCap <= 0 {
		cfg.DailyCacheCap = 1024
	}
	if cfg.FeatureStoreCap == 0 {
		cfg.FeatureStoreCap = DefaultFeatureStoreCap
	} else if cfg.FeatureStoreCap < 0 {
		cfg.FeatureStoreCap = 0 // explicit opt-out: unlimited
	}
	if cfg.MaxBatchItems <= 0 {
		cfg.MaxBatchItems = DefaultMaxBatchItems
	}
	d := &Deployment{
		Cache: NewAsyncCacheWithConfig(CacheConfig{
			DailyCap: cfg.DailyCacheCap,
			Shards:   cfg.CacheShards,
			QueueCap: cfg.QueueCap,
		}),
		Store:         NewFeatureStoreWithCap(cfg.FeatureStoreCap),
		Clock:         RealClock{},
		responder:     responder,
		latency:       NewHistogram(nil),
		interactions:  newStripedCounter(interactionStripes),
		maxBatchItems: cfg.MaxBatchItems,
	}
	d.version.Store(1)
	return d
}

// SetKG installs a frozen knowledge-graph snapshot as the serving read
// path (lock-free atomic store; nil is ignored so a refresh without a
// rebuilt KG keeps serving the current one).
func (d *Deployment) SetKG(s *kg.Snapshot) {
	if s != nil {
		d.kgSnap.Store(s)
	}
}

// KG returns the current frozen knowledge-graph snapshot (nil until
// SetKG installs one). The returned snapshot is immutable and safe to
// traverse without coordination for as long as the caller holds it,
// even across a concurrent DailyRefresh swap.
func (d *Deployment) KG() *kg.Snapshot {
	return d.kgSnap.Load()
}

// SetSimilarity installs the ANN index backing /similar (lock-free
// atomic store; nil is ignored, mirroring SetKG, so a refresh without a
// rebuilt index keeps serving the current one). Callers pair the index
// with the snapshot it was built from: SetKG then SetSimilarity.
func (d *Deployment) SetSimilarity(ix *kg.SimilarityIndex) {
	if ix != nil {
		d.simIdx.Store(ix)
	}
}

// Similarity returns the current ANN index (nil until SetSimilarity
// installs one). Like the snapshot it is immutable and safe to query
// without coordination across a concurrent swap.
func (d *Deployment) Similarity() *kg.SimilarityIndex {
	return d.simIdx.Load()
}

// SetReady marks warmup complete (or revokes readiness); /readyz
// reports 503 until the deployment is ready.
func (d *Deployment) SetReady(ready bool) { d.ready.Store(ready) }

// Ready reports whether warmup has completed.
func (d *Deployment) Ready() bool { return d.ready.Load() }

// BeginDrain starts a graceful drain: readiness flips off (so /readyz
// tells load balancers and routers to take this node out of rotation)
// and the deployment is marked draining. The query endpoints keep
// serving — in-flight requests and router retries still get answers —
// until the caller decides the grace period is over (DrainElapsed) and
// shuts the listener down. Idempotent; the first call stamps the drain
// start time from the deployment's Clock.
func (d *Deployment) BeginDrain() {
	d.SetReady(false)
	if d.draining.CompareAndSwap(false, true) {
		d.drainStartNs.Store(d.Clock.Now().UnixNano())
	}
}

// Draining reports whether a graceful drain is in progress.
func (d *Deployment) Draining() bool { return d.draining.Load() }

// DrainElapsed reports whether the drain grace period has lapsed: true
// once BeginDrain was called at least grace ago on the deployment's
// Clock (so tests drive it with a FakeClock). False when not draining.
func (d *Deployment) DrainElapsed(grace time.Duration) bool {
	if !d.draining.Load() {
		return false
	}
	start := time.Unix(0, d.drainStartNs.Load())
	return d.Clock.Now().Sub(start) >= grace
}

// Version returns the current model version.
func (d *Deployment) Version() int {
	return int(d.version.Load())
}

// CurrentResponder returns the responder currently installed (the one
// DailyRefresh last committed).
func (d *Deployment) CurrentResponder() ContextResponder {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.responder
}

// ResilienceStats reports the current responder's resilience counters
// when it exposes them (i.e. it is a *Resilient or equivalent); ok is
// false for plain responders.
func (d *Deployment) ResilienceStats() (ResilienceStats, bool) {
	if rr, ok := d.CurrentResponder().(resilienceReporter); ok {
		return rr.ResilienceStats(), true
	}
	return ResilienceStats{}, false
}

// HandleQuery is the request path: check the async cache, return
// structured features on a hit; on a miss the query is queued for batch
// processing and, as graceful degradation, any prior feature still in
// the feature store is served flagged Stale — the caller gets possibly
// outdated intent features instead of none while the batch processor
// catches up. No global lock is taken and the responder is never invoked
// inline: the cache lookup, store fallback, latency observation and
// feedback increment are all striped or atomic.
func (d *Deployment) HandleQuery(query string) (Feature, bool) {
	f, ok := d.Cache.Lookup(query)
	if ok {
		d.latency.Observe(CacheHitLatencyMs)
	} else {
		d.latency.Observe(CacheMissLatencyMs)
		if sf, found := d.Store.Get(query); found {
			sf.Stale = true
			d.staleServed.Add(1)
			f, ok = sf, true
		}
	}
	d.interactions.inc(query)
	return f, ok
}

// BatchResult reports one RunBatch pass. Every drained query is
// accounted for: Drained == Succeeded + Failed, and each failure was
// either re-queued for a later batch or dropped because its shard's
// bounded queue was full.
type BatchResult struct {
	Drained   int
	Succeeded int
	Failed    int
	Requeued  int
	Dropped   int
}

// BatchTotals aggregates batch accounting across the deployment's
// lifetime (the serving-side half of the no-query-silently-lost ledger;
// the enqueue-side half lives in CacheStats).
type BatchTotals struct {
	Succeeded      uint64
	Failed         uint64
	Requeued       uint64
	RequeueDropped uint64
	Panics         uint64
	StaleServed    uint64
	RefreshFails   uint64
}

// BatchTotals snapshots the deployment's batch and degradation
// counters.
func (d *Deployment) BatchTotals() BatchTotals {
	return BatchTotals{
		Succeeded:      d.batchSucceeded.Load(),
		Failed:         d.batchFailed.Load(),
		Requeued:       d.batchRequeued.Load(),
		RequeueDropped: d.batchRequeueDropped.Load(),
		Panics:         d.batchPanics.Load(),
		StaleServed:    d.staleServed.Load(),
		RefreshFails:   d.refreshFailures.Load(),
	}
}

// NoteSnapshotReload records one KG snapshot reload-and-swap (the
// refresh loop picked up a changed artifact, or the initial load).
func (d *Deployment) NoteSnapshotReload() { d.snapshotReloads.Add(1) }

// NoteSnapshotReloadSkipped records one refresh tick that skipped the
// snapshot reload because the artifact on disk was unchanged.
func (d *Deployment) NoteSnapshotReloadSkipped() { d.snapshotReloadsSkipped.Add(1) }

// SnapshotReloadStats returns the (reloads, skipped) counter pair.
func (d *Deployment) SnapshotReloadStats() (reloads, skipped uint64) {
	return d.snapshotReloads.Load(), d.snapshotReloadsSkipped.Load()
}

// RunBatch drains up to n queued queries through the responder with a
// background context; see RunBatchContext. It returns the number
// successfully processed (for infallible responders this equals the
// number drained, preserving the legacy contract).
func (d *Deployment) RunBatch(n int) int {
	//cosmo:lint-ignore ctx-propagation legacy infallible bridge: callers predate the ctx API and have no deadline to thread
	return d.RunBatchContext(context.Background(), n).Succeeded
}

// RunBatchContext drains up to n queued queries, runs model inference
// for each, writes features to the feature store and installs them in
// the daily cache layer ("Batch Processing and Cache Update"). The
// responder path is fallible: a panic is recovered and counted, and a
// failed query is re-queued on its shard's bounded queue for a later
// batch (dropped, with a metric, when that queue is full) — no query is
// silently lost.
func (d *Deployment) RunBatchContext(ctx context.Context, n int) BatchResult {
	queries := d.Cache.DrainQueue(n)
	responder := d.CurrentResponder()
	version := d.Version()
	var res BatchResult
	res.Drained = len(queries)
	for _, q := range queries {
		f, err := d.respondSafe(ctx, responder, q)
		if err != nil {
			res.Failed++
			d.batchFailed.Add(1)
			if d.Cache.Requeue(q) {
				res.Requeued++
				d.batchRequeued.Add(1)
			} else {
				res.Dropped++
				d.batchRequeueDropped.Add(1)
			}
			continue
		}
		f.Query = q
		f.Version = version
		f.CreatedAt = d.Clock.Now()
		d.Store.Put(f)
		d.Cache.InstallDaily(f)
		res.Succeeded++
		d.batchSucceeded.Add(1)
	}
	return res
}

// respondSafe invokes the responder, converting a panic into an error
// so one poisoned query cannot take down the batch worker or a refresh.
func (d *Deployment) respondSafe(ctx context.Context, r ContextResponder, q string) (f Feature, err error) {
	defer func() {
		if p := recover(); p != nil {
			d.batchPanics.Add(1)
			err = fmt.Errorf("%w: %v", ErrResponderPanic, p)
		}
	}()
	return r.RespondContext(ctx, q)
}

// StartWorker launches the background batch-processing loop: every
// interval it drains up to batchSize queued misses through RunBatch.
// When ctx is cancelled the worker drains the whole remaining queue in
// batchSize passes — not just one batch — so every query accepted before
// shutdown is processed; the drain stops early only when a pass makes no
// successful progress (responder fully down), leaving the re-queued
// remainder accounted for in BatchTotals. The returned channel is closed
// once the worker has stopped.
func (d *Deployment) StartWorker(ctx context.Context, interval time.Duration, batchSize int) <-chan struct{} {
	if interval <= 0 {
		interval = time.Second
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				// Final drain: loop until the queue is empty. The
				// worker's ctx is cancelled, so the drain runs under
				// WithoutCancel — it keeps the caller's values (trace
				// metadata survives) while shedding the cancellation
				// that would abort every in-flight respond call; a pass
				// that drains queries but completes none means the
				// responder is down and looping would re-queue forever.
				for {
					r := d.RunBatchContext(context.WithoutCancel(ctx), batchSize)
					if r.Drained == 0 || r.Succeeded == 0 {
						return
					}
				}
			case <-ticker.C:
				d.RunBatchContext(ctx, batchSize)
			}
		}
	}()
	return done
}

// DailyRefresh adapts a legacy infallible responder into
// DailyRefreshContext (kept for offline experiments and fixtures).
func (d *Deployment) DailyRefresh(responder Responder, kgSnap *kg.Snapshot, yearlyTop int) error {
	//cosmo:lint-ignore ctx-propagation legacy infallible bridge: callers predate the ctx API and have no deadline to thread
	return d.DailyRefreshContext(context.Background(), AdaptResponder(responder), kgSnap, yearlyTop)
}

// DailyRefreshContext swaps in a refreshed model ("Model Deployment:
// dynamic ingestion of customer behavior session logs and efficient
// model updates"), atomically publishes the refreshed KG snapshot (RCU:
// requests already walking the old snapshot finish on it; new requests
// see the new one; nil keeps the current snapshot), clears the daily
// cache layer, and rebuilds the yearly layer from the most-interacted
// queries of the feedback loop. A negative yearlyTop is treated as 0
// (refresh the model, install no yearly entries).
//
// The refresh is atomic with respect to failure: every yearly feature is
// rebuilt through the new responder before anything is installed, so if
// inference fails (or panics, or the context is cancelled) mid-rebuild
// the previous responder, model version, yearly layer, feature store and
// KG snapshot all stay exactly as they were and the error is returned.
// Refreshes are serialized; concurrent calls queue behind each other.
func (d *Deployment) DailyRefreshContext(ctx context.Context, responder ContextResponder, kgSnap *kg.Snapshot, yearlyTop int) error {
	d.refreshMu.Lock()
	defer d.refreshMu.Unlock()
	version := d.Version() + 1
	counts := d.interactions.sorted()
	if yearlyTop < 0 {
		yearlyTop = 0
	}
	if yearlyTop > len(counts) {
		yearlyTop = len(counts)
	}
	features := make([]Feature, 0, yearlyTop)
	for _, e := range counts[:yearlyTop] {
		f, err := d.respondSafe(ctx, responder, e.q)
		if err != nil {
			d.refreshFailures.Add(1)
			return fmt.Errorf("daily refresh aborted: yearly rebuild failed at %q (%d/%d rebuilt): %w",
				e.q, len(features), yearlyTop, err)
		}
		f.Query = e.q
		f.Version = version
		f.CreatedAt = d.Clock.Now()
		features = append(features, f)
	}
	// Commit point: every yearly feature rebuilt successfully. Install
	// the new model, version, KG snapshot and cache layers.
	func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		d.responder = responder
		d.version.Store(int64(version))
	}()
	d.SetKG(kgSnap)
	for _, f := range features {
		d.Store.Put(f)
	}
	d.Cache.ReplaceYearly(features)
	d.Cache.ResetDaily()
	return nil
}

// LatencyPercentiles returns the p50 and p99 of observed request
// latencies (ms), estimated from the fixed-bucket histogram.
func (d *Deployment) LatencyPercentiles() (p50, p99 float64) {
	s := d.latency.Snapshot()
	return s.Quantile(0.50), s.Quantile(0.99)
}

// LatencySnapshot exposes the latency histogram's buckets (for the
// /metrics exporter).
func (d *Deployment) LatencySnapshot() HistogramSnapshot {
	return d.latency.Snapshot()
}

// TopInteractions returns the feedback loop's most frequent queries.
func (d *Deployment) TopInteractions(n int) []string {
	counts := d.interactions.sorted()
	if n > len(counts) {
		n = len(counts)
	}
	if n < 0 {
		n = 0
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = counts[i].q
	}
	return out
}
