package serving

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"cosmo/internal/kg"
)

// Responder runs model inference for one query — the expensive path that
// the cache architecture keeps off the request critical path. COSMO-LM
// is adapted to this interface by the caller (see cmd/cosmo-serve).
type Responder interface {
	Respond(query string) Feature
}

// ResponderFunc adapts a function to the Responder interface.
type ResponderFunc func(query string) Feature

// Respond calls f.
func (f ResponderFunc) Respond(query string) Feature { return f(query) }

// Simulated serving latencies (ms); the cached path is the latency the
// deployment must meet ("Amazon's restricted search latency
// requirements"), the model path is why inline inference is infeasible.
const (
	CacheHitLatencyMs  = 2.0
	CacheMissLatencyMs = 3.0 // lookup + enqueue; response degrades, never blocks
)

// interactionStripes is the lock-stripe count of the feedback-loop
// counter; like the cache shard count it is fixed for determinism.
const interactionStripes = 16

// Deployment wires the cache store, feature store, responder and refresh
// loop together (Figure 5's operational flow).
//
// The request path (HandleQuery) is lock-striped end to end: the cache
// shards on query hash, latency goes to a fixed-bucket atomic histogram,
// and the interaction feedback loop is a striped counter. Memory is
// O(cache capacity + distinct queries), not O(requests served).
type Deployment struct {
	Cache *AsyncCache
	Store *FeatureStore
	// Clock stamps features; swap in a FakeClock for tests.
	Clock Clock

	mu        sync.Mutex // guards responder and version only
	responder Responder
	version   int

	latency *Histogram
	// interactions is the feedback loop: query -> interaction count,
	// feeding the next refresh's frequent-search selection.
	interactions *stripedCounter

	// kgSnap is the frozen knowledge-graph read path. Requests load it
	// with one atomic read and traverse it lock-free; DailyRefresh
	// swaps in a fresh snapshot RCU-style — in-flight requests keep
	// reading the old one until they finish, and the swap never blocks.
	kgSnap atomic.Pointer[kg.Snapshot]
}

// DeployConfig configures a deployment.
type DeployConfig struct {
	DailyCacheCap int
	// CacheShards overrides the cache's lock-stripe count
	// (DefaultCacheShards when 0).
	CacheShards int
	// QueueCap bounds the batch miss queue (DefaultQueueCap when 0).
	QueueCap int
	// FeatureStoreCap bounds the feature store (DefaultFeatureStoreCap
	// when 0, unlimited when negative). Insertions past the cap evict
	// the oldest-inserted feature.
	FeatureStoreCap int
}

// NewDeployment builds a deployment around the initial model.
func NewDeployment(cfg DeployConfig, responder Responder) *Deployment {
	if cfg.DailyCacheCap <= 0 {
		cfg.DailyCacheCap = 1024
	}
	if cfg.FeatureStoreCap == 0 {
		cfg.FeatureStoreCap = DefaultFeatureStoreCap
	} else if cfg.FeatureStoreCap < 0 {
		cfg.FeatureStoreCap = 0 // explicit opt-out: unlimited
	}
	return &Deployment{
		Cache: NewAsyncCacheWithConfig(CacheConfig{
			DailyCap: cfg.DailyCacheCap,
			Shards:   cfg.CacheShards,
			QueueCap: cfg.QueueCap,
		}),
		Store:        NewFeatureStoreWithCap(cfg.FeatureStoreCap),
		Clock:        RealClock{},
		responder:    responder,
		version:      1,
		latency:      NewHistogram(nil),
		interactions: newStripedCounter(interactionStripes),
	}
}

// SetKG installs a frozen knowledge-graph snapshot as the serving read
// path (lock-free atomic store; nil is ignored so a refresh without a
// rebuilt KG keeps serving the current one).
func (d *Deployment) SetKG(s *kg.Snapshot) {
	if s != nil {
		d.kgSnap.Store(s)
	}
}

// KG returns the current frozen knowledge-graph snapshot (nil until
// SetKG installs one). The returned snapshot is immutable and safe to
// traverse without coordination for as long as the caller holds it,
// even across a concurrent DailyRefresh swap.
func (d *Deployment) KG() *kg.Snapshot {
	return d.kgSnap.Load()
}

// Version returns the current model version.
func (d *Deployment) Version() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.version
}

// HandleQuery is the request path: check the async cache, return
// structured features on a hit; on a miss the query is queued for batch
// processing and the caller proceeds without intent features. No global
// lock is taken: the cache lookup, latency observation and feedback
// increment are all striped or atomic.
func (d *Deployment) HandleQuery(query string) (Feature, bool) {
	f, ok := d.Cache.Lookup(query)
	if ok {
		d.latency.Observe(CacheHitLatencyMs)
	} else {
		d.latency.Observe(CacheMissLatencyMs)
	}
	d.interactions.inc(query)
	return f, ok
}

// RunBatch drains up to n queued queries, runs model inference for each,
// writes features to the feature store and installs them in the daily
// cache layer ("Batch Processing and Cache Update"). It returns the
// number processed.
func (d *Deployment) RunBatch(n int) int {
	queries := d.Cache.DrainQueue(n)
	d.mu.Lock()
	responder := d.responder
	version := d.version
	d.mu.Unlock()
	for _, q := range queries {
		f := responder.Respond(q)
		f.Query = q
		f.Version = version
		f.CreatedAt = d.Clock.Now()
		d.Store.Put(f)
		d.Cache.InstallDaily(f)
	}
	return len(queries)
}

// StartWorker launches the background batch-processing loop: every
// interval it drains up to batchSize queued misses through RunBatch.
// When ctx is cancelled the worker performs one final drain (so queries
// accepted before shutdown still get processed) and exits; the returned
// channel is closed once it has stopped.
func (d *Deployment) StartWorker(ctx context.Context, interval time.Duration, batchSize int) <-chan struct{} {
	if interval <= 0 {
		interval = time.Second
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				d.RunBatch(batchSize)
				return
			case <-ticker.C:
				d.RunBatch(batchSize)
			}
		}
	}()
	return done
}

// DailyRefresh swaps in a refreshed model ("Model Deployment: dynamic
// ingestion of customer behavior session logs and efficient model
// updates"), atomically publishes the refreshed KG snapshot (RCU:
// requests already walking the old snapshot finish on it; new requests
// see the new one; nil keeps the current snapshot), clears the daily
// cache layer, and rebuilds the yearly layer from the most-interacted
// queries of the feedback loop. A negative yearlyTop is treated as 0
// (refresh the model, install no yearly entries).
func (d *Deployment) DailyRefresh(responder Responder, kgSnap *kg.Snapshot, yearlyTop int) {
	d.SetKG(kgSnap)
	d.mu.Lock()
	d.responder = responder
	d.version++
	version := d.version
	d.mu.Unlock()
	counts := d.interactions.sorted()
	if yearlyTop < 0 {
		yearlyTop = 0
	}
	if yearlyTop > len(counts) {
		yearlyTop = len(counts)
	}
	features := make([]Feature, 0, yearlyTop)
	for _, e := range counts[:yearlyTop] {
		f := responder.Respond(e.q)
		f.Query = e.q
		f.Version = version
		f.CreatedAt = d.Clock.Now()
		d.Store.Put(f)
		features = append(features, f)
	}
	d.Cache.ReplaceYearly(features)
	d.Cache.ResetDaily()
}

// LatencyPercentiles returns the p50 and p99 of observed request
// latencies (ms), estimated from the fixed-bucket histogram.
func (d *Deployment) LatencyPercentiles() (p50, p99 float64) {
	s := d.latency.Snapshot()
	return s.Quantile(0.50), s.Quantile(0.99)
}

// LatencySnapshot exposes the latency histogram's buckets (for the
// /metrics exporter).
func (d *Deployment) LatencySnapshot() HistogramSnapshot {
	return d.latency.Snapshot()
}

// TopInteractions returns the feedback loop's most frequent queries.
func (d *Deployment) TopInteractions(n int) []string {
	counts := d.interactions.sorted()
	if n > len(counts) {
		n = len(counts)
	}
	if n < 0 {
		n = 0
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = counts[i].q
	}
	return out
}
