package serving

import (
	"sort"
	"sync/atomic"
)

// DefaultLatencyBucketsMs are the upper bounds (ms) of the serving
// latency histogram. They include the simulated cache-hit (2ms) and
// cache-miss (3ms) latencies as exact bounds so quantile estimates over
// simulated traffic are exact, then widen roughly geometrically up to
// the multi-second range where an online system has already failed its
// latency budget.
var DefaultLatencyBucketsMs = []float64{
	0.25, 0.5, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64,
	96, 128, 192, 256, 384, 512, 768, 1024,
}

// Histogram is a fixed-bucket latency histogram. Observations and
// snapshots use atomics only, so the request hot path never takes a
// lock and memory stays O(buckets) regardless of request count —
// replacing the unbounded per-request latency slice the deployment used
// to keep.
type Histogram struct {
	bounds []float64      // ascending upper bounds; observations above the last go to overflow
	counts []atomic.Int64 // len(bounds)+1; last slot is the overflow bucket
	total  atomic.Int64
	sumUs  atomic.Int64 // sum in integer microseconds (atomic float sums race)
}

// HistogramSnapshot is a point-in-time copy of a Histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, ascending
	Counts []int64   // per-bucket counts; len(Bounds)+1 with overflow last
	Total  int64
	SumMs  float64
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (DefaultLatencyBucketsMs when nil).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBucketsMs
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one latency observation in milliseconds.
func (h *Histogram) Observe(ms float64) {
	// Binary search for the first bound >= ms; everything above the last
	// bound lands in the overflow bucket.
	i := sort.SearchFloat64s(h.bounds, ms)
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumUs.Add(int64(ms * 1000))
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Snapshot copies the current bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Total += c
	}
	s.SumMs = float64(h.sumUs.Load()) / 1000
	return s
}

// Quantile estimates the p-quantile (p in [0,1]) in O(buckets) by
// returning the upper bound of the bucket containing the rank — the
// standard conservative fixed-bucket estimate. Returns 0 when empty;
// observations in the overflow bucket report the last finite bound.
func (h *Histogram) Quantile(p float64) float64 {
	return h.Snapshot().Quantile(p)
}

// Quantile estimates the p-quantile from a snapshot (see
// Histogram.Quantile). Taking one snapshot and deriving several
// quantiles keeps them mutually consistent.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(p * float64(s.Total))
	if rank >= s.Total {
		rank = s.Total - 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum > rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}
