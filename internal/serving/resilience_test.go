package serving

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// flakyResponder fails until the remaining counter hits zero, then
// succeeds. Safe for concurrent use.
type flakyResponder struct {
	mu        sync.Mutex
	failures  int // remaining calls that will fail
	calls     int
	failErr   error
	panicking bool
}

func (f *flakyResponder) RespondContext(ctx context.Context, q string) (Feature, error) {
	f.mu.Lock()
	f.calls++
	fail := f.failures != 0
	if f.failures > 0 {
		f.failures--
	}
	pan := f.panicking
	err := f.failErr
	f.mu.Unlock()
	if fail {
		if pan {
			panic("flaky responder exploded")
		}
		if err == nil {
			err = errors.New("flaky failure")
		}
		return Feature{}, err
	}
	return Feature{Query: q, Intents: []string{"ok"}}, nil
}

func (f *flakyResponder) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// fastCfg is a resilience config with sub-millisecond backoff so retry
// tests run instantly.
func fastCfg() ResilienceConfig {
	return ResilienceConfig{
		CallTimeout: 100 * time.Millisecond,
		MaxRetries:  2,
		BackoffBase: 50 * time.Microsecond,
		BackoffMax:  200 * time.Microsecond,
		Seed:        7,
	}
}

func TestResilientRetriesUntilSuccess(t *testing.T) {
	inner := &flakyResponder{failures: 2}
	r := NewResilient(inner, fastCfg())
	f, err := r.RespondContext(context.Background(), "camping")
	if err != nil {
		t.Fatalf("call failed despite retries: %v", err)
	}
	if f.Query != "camping" {
		t.Errorf("feature = %+v", f)
	}
	if inner.callCount() != 3 {
		t.Errorf("inner calls = %d, want 3 (2 failures + success)", inner.callCount())
	}
	rs := r.ResilienceStats()
	if rs.Retries != 2 || rs.Failures != 2 {
		t.Errorf("stats = %+v, want 2 retries / 2 failures", rs)
	}
	if rs.BreakerState != BreakerClosed {
		t.Errorf("breaker = %v after recovered call", rs.BreakerState)
	}
}

func TestResilientExhaustsRetries(t *testing.T) {
	sentinel := errors.New("model backend down")
	inner := &flakyResponder{failures: -1, failErr: sentinel} // always fail
	r := NewResilient(inner, fastCfg())
	_, err := r.RespondContext(context.Background(), "q")
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if inner.callCount() != 3 {
		t.Errorf("inner calls = %d, want 3 attempts", inner.callCount())
	}
}

func TestResilientRecoversPanics(t *testing.T) {
	inner := &flakyResponder{failures: -1, panicking: true}
	r := NewResilient(inner, fastCfg())
	_, err := r.RespondContext(context.Background(), "q")
	if !errors.Is(err, ErrResponderPanic) {
		t.Fatalf("err = %v, want ErrResponderPanic", err)
	}
	if got := r.ResilienceStats().Panics; got != 3 {
		t.Errorf("panics = %d, want 3 (one per attempt)", got)
	}
}

func TestResilientTimeoutOnHang(t *testing.T) {
	hang := ContextResponderFunc(func(ctx context.Context, q string) (Feature, error) {
		<-ctx.Done() // honors cancellation: unblocks on attempt timeout
		return Feature{}, ctx.Err()
	})
	cfg := fastCfg()
	cfg.CallTimeout = time.Millisecond
	cfg.MaxRetries = -1 // single attempt
	r := NewResilient(hang, cfg)
	start := time.Now()
	_, err := r.RespondContext(context.Background(), "q")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang was not bounded: %v", elapsed)
	}
	if got := r.ResilienceStats().Timeouts; got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
}

func TestResilientBackoffDeterministic(t *testing.T) {
	// The backoff schedule is a pure function of (seed, call, attempt):
	// two wrappers with the same seed record identical schedules, a
	// different seed diverges.
	schedule := func(seed int64) []time.Duration {
		inner := &flakyResponder{failures: -1}
		cfg := fastCfg()
		cfg.Seed = seed
		r := NewResilient(inner, cfg)
		var got []time.Duration
		r.sleep = func(ctx context.Context, d time.Duration) bool {
			got = append(got, d)
			return true
		}
		for i := 0; i < 4; i++ {
			_, err := r.RespondContext(context.Background(), "q")
			if err == nil {
				t.Fatal("expected failure")
			}
		}
		return got
	}
	a, b, c := schedule(1), schedule(1), schedule(2)
	if len(a) != 8 { // 4 calls x 2 retries
		t.Fatalf("schedule length = %d, want 8", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter schedules")
	}
	// Jitter stays within [0.5, 1.5) of the capped exponential base.
	for i, d := range a {
		base := 50 * time.Microsecond
		if i%2 == 1 {
			base = 100 * time.Microsecond
		}
		if d < base/2 || d >= base*3/2 {
			t.Errorf("backoff %d = %v outside [%v, %v)", i, d, base/2, base*3/2)
		}
	}
}

func TestJitterForRange(t *testing.T) {
	for call := uint64(0); call < 500; call++ {
		for attempt := 1; attempt <= 3; attempt++ {
			j := jitterFor(42, call, attempt)
			if j < 0.5 || j >= 1.5 {
				t.Fatalf("jitterFor(42, %d, %d) = %v outside [0.5, 1.5)", call, attempt, j)
			}
		}
	}
	if jitterFor(1, 0, 1) == jitterFor(1, 1, 1) {
		t.Error("distinct calls should draw distinct jitter")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := NewFakeClock(time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC))
	inner := &flakyResponder{failures: -1}
	cfg := ResilienceConfig{
		CallTimeout:      100 * time.Millisecond,
		MaxRetries:       -1, // isolate the breaker from retry effects
		BreakerThreshold: 3,
		BreakerCooldown:  time.Second,
		BreakerProbes:    2,
		Clock:            clock,
		Seed:             1,
	}
	r := NewResilient(inner, cfg)
	ctx := context.Background()

	// Three consecutive failures trip the breaker open.
	for i := 0; i < 3; i++ {
		if _, err := r.RespondContext(ctx, "q"); err == nil {
			t.Fatal("expected failure")
		}
	}
	if got := r.BreakerState(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}

	// While open, calls fail fast without touching the responder.
	before := inner.callCount()
	if _, err := r.RespondContext(ctx, "q"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if inner.callCount() != before {
		t.Error("open breaker still invoked the responder")
	}
	if got := r.ResilienceStats().BreakerRejects; got != 1 {
		t.Errorf("rejects = %d, want 1", got)
	}

	// After the cooldown the next call is admitted as a half-open
	// probe; a probe failure re-opens.
	clock.Advance(2 * time.Second)
	if _, err := r.RespondContext(ctx, "q"); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe should reach the responder and fail; err = %v", err)
	}
	if got := r.BreakerState(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}

	// Heal the backend; cooldown elapses; two probe successes close it.
	inner.mu.Lock()
	inner.failures = 0
	inner.mu.Unlock()
	clock.Advance(2 * time.Second)
	if _, err := r.RespondContext(ctx, "q"); err != nil {
		t.Fatalf("first probe: %v", err)
	}
	if got := r.BreakerState(); got != BreakerHalfOpen {
		t.Fatalf("state after first probe success = %v, want half-open", got)
	}
	if _, err := r.RespondContext(ctx, "q"); err != nil {
		t.Fatalf("second probe: %v", err)
	}
	if got := r.BreakerState(); got != BreakerClosed {
		t.Fatalf("state after probe quorum = %v, want closed", got)
	}
	if got := r.ResilienceStats().BreakerOpens; got != 2 {
		t.Errorf("opens = %d, want 2 (threshold trip + failed probe)", got)
	}

	// Closed again: traffic flows.
	if _, err := r.RespondContext(ctx, "q"); err != nil {
		t.Errorf("closed breaker rejected traffic: %v", err)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clock := NewFakeClock(time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC))
	blocked := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	failing := true
	inner := ContextResponderFunc(func(ctx context.Context, q string) (Feature, error) {
		mu.Lock()
		f := failing
		mu.Unlock()
		if f {
			return Feature{}, errors.New("down")
		}
		close(blocked) // signal: probe in flight
		<-release
		return Feature{}, nil
	})
	cfg := ResilienceConfig{
		CallTimeout:      time.Minute,
		MaxRetries:       -1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Second,
		BreakerProbes:    1,
		Clock:            clock,
		Seed:             1,
	}
	r := NewResilient(inner, cfg)
	ctx := context.Background()
	if _, err := r.RespondContext(ctx, "q"); err == nil {
		t.Fatal("expected trip")
	}
	mu.Lock()
	failing = false
	mu.Unlock()
	clock.Advance(2 * time.Second)

	// First caller becomes the probe and blocks inside the responder;
	// a second caller must be rejected, not become a second probe.
	probeDone := make(chan error, 1)
	go func() {
		_, err := r.RespondContext(ctx, "probe")
		probeDone <- err
	}()
	<-blocked
	if _, err := r.RespondContext(ctx, "q"); !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("second half-open caller err = %v, want ErrBreakerOpen", err)
	}
	close(release)
	if err := <-probeDone; err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if got := r.BreakerState(); got != BreakerClosed {
		t.Errorf("state = %v, want closed after successful probe", got)
	}
}

func TestAdaptResponder(t *testing.T) {
	cr := AdaptResponder(echoResponder("v1"))
	f, err := cr.RespondContext(context.Background(), "camping")
	if err != nil || f.Query != "camping" {
		t.Fatalf("adapted call = %+v, %v", f, err)
	}
	// A cancelled context short-circuits before the legacy responder.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cr.RespondContext(ctx, "q"); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled adapter err = %v", err)
	}
}

// TestResilientConcurrent hammers one wrapper from many goroutines with
// a mix of outcomes; under -race this is the wrapper's concurrency
// proof, and the counters must balance afterwards.
func TestResilientConcurrent(t *testing.T) {
	inner := ContextResponderFunc(func(ctx context.Context, q string) (Feature, error) {
		if len(q)%3 == 0 {
			return Feature{}, errors.New("unlucky")
		}
		return Feature{Query: q}, nil
	})
	cfg := fastCfg()
	cfg.BreakerThreshold = -1 // keep traffic flowing for the count check
	r := NewResilient(inner, cfg)
	var wg sync.WaitGroup
	var okCount, errCount struct {
		mu sync.Mutex
		n  int
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, err := r.RespondContext(context.Background(), fmt.Sprintf("q%d-%d", w, i))
				if err != nil {
					errCount.mu.Lock()
					errCount.n++
					errCount.mu.Unlock()
				} else {
					okCount.mu.Lock()
					okCount.n++
					okCount.mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if okCount.n+errCount.n != 1600 {
		t.Fatalf("outcomes = %d, want 1600", okCount.n+errCount.n)
	}
	rs := r.ResilienceStats()
	if rs.Calls != 1600 {
		t.Errorf("calls = %d, want 1600", rs.Calls)
	}
	if errCount.n > 0 && rs.Retries == 0 {
		t.Error("failures occurred but no retries were recorded")
	}
}
