//go:build !race

package serving

// raceEnabled mirrors the -race build tag for tests: sync.Pool
// deliberately drops items under the race detector, so pool-backed
// zero-alloc guards only hold in the regular suite.
const raceEnabled = false
