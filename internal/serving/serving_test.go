package serving

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoResponder fabricates a deterministic feature for any query.
func echoResponder(version string) Responder {
	return ResponderFunc(func(q string) Feature {
		return Feature{
			Query:        q,
			Intents:      []string{"used for " + q, version},
			Relations:    []string{"USED_FOR_FUNC"},
			SubCategory:  q,
			StrongIntent: true,
		}
	})
}

func TestFeatureStoreBasics(t *testing.T) {
	s := NewFeatureStore()
	s.Put(Feature{Query: "camping", Version: 1})
	s.Put(Feature{Query: "hiking", Version: 2})
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	f, ok := s.Get("camping")
	if !ok || f.Version != 1 {
		t.Fatalf("get = %+v %v", f, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Error("missing key should miss")
	}
	if qs := s.Queries(); len(qs) != 2 || qs[0] != "camping" {
		t.Errorf("queries = %v", qs)
	}
	if dropped := s.DropVersionsBefore(2); dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
	if s.Len() != 1 {
		t.Errorf("len after drop = %d", s.Len())
	}
}

func TestFeatureStoreCapEvictsOldest(t *testing.T) {
	s := NewFeatureStoreWithCap(3)
	for i, q := range []string{"a", "b", "c"} {
		s.Put(Feature{Query: q, Version: i})
	}
	// Re-putting an existing key must not evict anything.
	s.Put(Feature{Query: "a", Version: 10})
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	// Inserting a fourth key evicts the oldest insert ("a").
	s.Put(Feature{Query: "d", Version: 4})
	if s.Len() != 3 {
		t.Fatalf("len after overflow = %d, want 3", s.Len())
	}
	if _, ok := s.Get("a"); ok {
		t.Error("oldest entry should have been evicted")
	}
	for _, q := range []string{"b", "c", "d"} {
		if _, ok := s.Get(q); !ok {
			t.Errorf("entry %q should survive", q)
		}
	}
	// A dropped-then-reinserted key gets a fresh FIFO position: after
	// reinserting "b" it is newer than "c" and must outlive it.
	if n := s.DropVersionsBefore(2); n != 1 { // drops b (version 1)
		t.Fatalf("dropped = %d, want 1", n)
	}
	s.Put(Feature{Query: "b", Version: 5})
	s.Put(Feature{Query: "e", Version: 6}) // evicts c, the oldest live insert
	if _, ok := s.Get("c"); ok {
		t.Error("c should have been evicted before the re-inserted b")
	}
	if _, ok := s.Get("b"); !ok {
		t.Error("re-inserted b should survive")
	}
}

func TestFeatureStoreCapManyInserts(t *testing.T) {
	// Sustained distinct inserts stay at the cap and keep the FIFO
	// bookkeeping compacted rather than growing with total inserts.
	s := NewFeatureStoreWithCap(8)
	for i := 0; i < 10000; i++ {
		s.Put(Feature{Query: fmt.Sprintf("q%d", i), Version: i})
	}
	if s.Len() != 8 {
		t.Fatalf("len = %d, want 8", s.Len())
	}
	if n := len(s.order); n > 2*8+16 {
		t.Errorf("order slice grew to %d entries; compaction is not bounding it", n)
	}
	for i := 9992; i < 10000; i++ {
		if _, ok := s.Get(fmt.Sprintf("q%d", i)); !ok {
			t.Errorf("newest entry q%d missing", i)
		}
	}
}

func TestAsyncCacheTwoLayers(t *testing.T) {
	c := NewAsyncCache(2)
	c.PreloadYearly([]Feature{{Query: "yearly-hot"}})
	if _, ok := c.Lookup("yearly-hot"); !ok {
		t.Fatal("yearly layer miss")
	}
	// Miss queues for batch.
	if _, ok := c.Lookup("fresh"); ok {
		t.Fatal("unexpected hit")
	}
	queued := c.DrainQueue(10)
	if len(queued) != 1 || queued[0] != "fresh" {
		t.Fatalf("queue = %v", queued)
	}
	c.InstallDaily(Feature{Query: "fresh"})
	if _, ok := c.Lookup("fresh"); !ok {
		t.Fatal("daily layer miss after install")
	}
	stats := c.Stats()
	if stats.YearlyHits != 1 || stats.DailyHits != 1 || stats.Misses != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestAsyncCacheLRUEviction(t *testing.T) {
	// Single shard: LRU ordering is a per-shard property, and this test
	// asserts exact eviction order across three keys.
	c := NewAsyncCacheWithConfig(CacheConfig{DailyCap: 2, Shards: 1})
	c.InstallDaily(Feature{Query: "a"})
	c.InstallDaily(Feature{Query: "b"})
	c.Lookup("a") // refresh a
	c.InstallDaily(Feature{Query: "c"})
	if _, ok := c.Lookup("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, ok := c.Lookup("a"); !ok {
		t.Error("a should survive")
	}
	if _, ok := c.Lookup("c"); !ok {
		t.Error("c should be present")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestAsyncCacheMissQueuesOnce(t *testing.T) {
	c := NewAsyncCache(4)
	for i := 0; i < 5; i++ {
		c.Lookup("same")
	}
	if q := c.DrainQueue(10); len(q) != 1 {
		t.Errorf("queued %d copies", len(q))
	}
}

func TestDeploymentRequestFlow(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 64}, echoResponder("v1"))
	// Cold query: miss, queued.
	if _, ok := d.HandleQuery("camping"); ok {
		t.Fatal("cold query should miss")
	}
	// Batch processing installs the feature.
	if n := d.RunBatch(10); n != 1 {
		t.Fatalf("batch processed %d", n)
	}
	f, ok := d.HandleQuery("camping")
	if !ok {
		t.Fatal("warm query should hit")
	}
	if f.Version != 1 || len(f.Intents) == 0 {
		t.Errorf("feature = %+v", f)
	}
	if got := d.Store.Len(); got != 1 {
		t.Errorf("feature store len = %d", got)
	}
}

func TestDailyRefreshRotatesModelAndCaches(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 64}, echoResponder("v1"))
	// Generate traffic so the feedback loop knows what is frequent.
	for i := 0; i < 10; i++ {
		d.HandleQuery("hot")
	}
	d.HandleQuery("cold")
	d.RunBatch(10)
	if err := d.DailyRefresh(echoResponder("v2"), nil, 1); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if d.Version() != 2 {
		t.Fatalf("version = %d", d.Version())
	}
	// "hot" moved into the yearly layer by the refresh.
	f, ok := d.HandleQuery("hot")
	if !ok {
		t.Fatal("hot query should be preloaded after refresh")
	}
	if f.Version != 2 {
		t.Errorf("hot feature version = %d, want 2", f.Version)
	}
	if f.Stale {
		t.Error("yearly hit must not be flagged stale")
	}
	// "cold" was only in the daily layer, which the refresh reset; the
	// cache misses, but its prior-version feature degrades gracefully:
	// served from the feature store flagged stale.
	cf, ok := d.HandleQuery("cold")
	if !ok {
		t.Fatal("cold query should degrade to the stale store feature")
	}
	if !cf.Stale || cf.Version != 1 {
		t.Errorf("cold feature = stale %v version %d, want stale v1", cf.Stale, cf.Version)
	}
	// The cache itself recorded a miss, and the stale serve is counted.
	if got := d.BatchTotals().StaleServed; got != 1 {
		t.Errorf("stale served = %d, want 1", got)
	}
	// A never-seen query still misses outright: nothing to degrade to.
	if _, ok := d.HandleQuery("never-seen"); ok {
		t.Error("unknown query should miss with no stale fallback")
	}
}

// TestDailyRefreshNegativeYearlyTop is a regression test: a negative
// yearlyTop used to slice counts[:yearlyTop] and panic.
func TestDailyRefreshNegativeYearlyTop(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 16}, echoResponder("v1"))
	d.HandleQuery("camping")
	d.RunBatch(10)
	if err := d.DailyRefresh(echoResponder("v2"), nil, -5); err != nil { // must not panic
		t.Fatalf("refresh: %v", err)
	}
	if d.Version() != 2 {
		t.Errorf("version = %d, want 2", d.Version())
	}
	if got := d.Cache.Stats().YearlySize; got != 0 {
		t.Errorf("yearly size = %d, want 0 for clamped top", got)
	}
}

// TestBoundedQueueDropOldest checks the bounded miss queue's
// drop-oldest policy and that dropped queries leave the de-dup map so
// they can be re-enqueued by a later miss.
func TestBoundedQueueDropOldest(t *testing.T) {
	c := NewAsyncCacheWithConfig(CacheConfig{DailyCap: 8, Shards: 1, QueueCap: 2})
	c.Lookup("a")
	c.Lookup("b")
	c.Lookup("c") // queue full: "a" dropped to admit "c"
	if got := c.Stats().BatchDropped; got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	if got := c.Stats().BatchQueued; got != 2 {
		t.Fatalf("queued = %d, want 2", got)
	}
	// The dropped query must be re-enqueueable: its queued-map entry was
	// cleared on drop, so this miss drops "b" and re-admits "a".
	c.Lookup("a")
	q := c.DrainQueue(10)
	if len(q) != 2 || q[0] != "c" || q[1] != "a" {
		t.Fatalf("queue after re-enqueue = %v, want [c a]", q)
	}
	if got := c.Stats().BatchDropped; got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
	// Drained queries stay de-duped until installed: a second miss on
	// "c" while its batch is in flight must not enqueue a duplicate.
	c.Lookup("c")
	if q := c.DrainQueue(10); len(q) != 0 {
		t.Errorf("in-flight query re-queued: %v", q)
	}
}

// TestQueuedMapStaysInSync: under arbitrary lookup/drop/drain/install
// interleavings the de-dup map must track exactly the ring contents
// plus in-flight drained queries that were never installed.
func TestQueuedMapStaysInSync(t *testing.T) {
	c := NewAsyncCacheWithConfig(CacheConfig{DailyCap: 4, Shards: 1, QueueCap: 4})
	s := c.shards[0]
	for i := 0; i < 200; i++ {
		q := fmt.Sprintf("q%d", i%13)
		switch i % 4 {
		case 0, 1:
			c.Lookup(q)
		case 2:
			for _, drained := range c.DrainQueue(2) {
				c.InstallDaily(Feature{Query: drained})
			}
		default:
			c.InstallDaily(Feature{Query: q})
		}
		s.mu.Lock()
		qLen := s.qLen
		s.mu.Unlock()
		if qLen > 4 {
			t.Fatalf("step %d: ring %d exceeds cap", i, qLen)
		}
	}
	// Drain fully and install everything: the map must empty out.
	for _, q := range c.DrainQueue(100) {
		c.InstallDaily(Feature{Query: q})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.qLen != 0 || len(s.queued) != 0 {
		t.Errorf("after full drain+install: ring %d, queued map %d", s.qLen, len(s.queued))
	}
}

func TestShardRouting(t *testing.T) {
	c := NewAsyncCache(1024)
	if c.NumShards() != DefaultCacheShards {
		t.Fatalf("shards = %d, want %d", c.NumShards(), DefaultCacheShards)
	}
	// Tiny caches clamp the stripe count so per-shard capacity stays >= 1.
	if got := NewAsyncCache(2).NumShards(); got > 2 {
		t.Errorf("tiny cache shards = %d", got)
	}
	// All installed keys are findable regardless of which shard they hash to.
	for i := 0; i < 100; i++ {
		c.InstallDaily(Feature{Query: fmt.Sprintf("k%d", i)})
	}
	for i := 0; i < 100; i++ {
		if _, ok := c.Lookup(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d missing after install", i)
		}
	}
	// DrainQueue reaches queries queued on every shard.
	for i := 0; i < 64; i++ {
		c.Lookup(fmt.Sprintf("miss%d", i))
	}
	if got := len(c.DrainQueue(1000)); got != 64 {
		t.Errorf("drained %d of 64 queued misses", got)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	d := NewDeployment(DeployConfig{}, echoResponder("v1"))
	if p50, p99 := d.LatencyPercentiles(); p50 != 0 || p99 != 0 {
		t.Error("empty latency should be 0")
	}
	d.HandleQuery("a")
	d.RunBatch(10)
	for i := 0; i < 99; i++ {
		d.HandleQuery("a")
	}
	p50, p99 := d.LatencyPercentiles()
	if p50 != CacheHitLatencyMs {
		t.Errorf("p50 = %v", p50)
	}
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
}

func TestTopInteractions(t *testing.T) {
	d := NewDeployment(DeployConfig{}, echoResponder("v1"))
	for i := 0; i < 3; i++ {
		d.HandleQuery("x")
	}
	d.HandleQuery("y")
	top := d.TopInteractions(1)
	if len(top) != 1 || top[0] != "x" {
		t.Errorf("top = %v", top)
	}
}

func TestDeploymentConcurrent(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 128}, echoResponder("v1"))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				q := fmt.Sprintf("q%d", rng.Intn(50))
				d.HandleQuery(q)
				if i%20 == 0 {
					d.RunBatch(8)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	stats := d.Cache.Stats()
	if stats.Hits == 0 {
		t.Error("no hits under concurrent load")
	}
	if stats.HitRate() < 0.5 {
		t.Errorf("hit rate %.2f too low for 50 hot queries", stats.HitRate())
	}
}

func TestHTTPHandler(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 64}, echoResponder("v1"))
	srv := httptest.NewServer(NewHTTPHandler(d))
	defer srv.Close()

	// Missing q.
	resp, err := http.Get(srv.URL + "/intent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing q status = %d", resp.StatusCode)
	}

	// Cold query: 202 queued.
	resp, err = http.Get(srv.URL + "/intent?q=camping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("cold status = %d", resp.StatusCode)
	}

	d.RunBatch(10)

	// Warm query: 200 with feature JSON.
	resp, err = http.Get(srv.URL + "/intent?q=camping")
	if err != nil {
		t.Fatal(err)
	}
	var f Feature
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || f.Query != "camping" {
		t.Errorf("warm response = %d %+v", resp.StatusCode, f)
	}

	// Stats endpoint.
	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := stats["hit_rate"]; !ok {
		t.Error("stats missing hit_rate")
	}

	// Health.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("health = %d", resp.StatusCode)
	}
}

func TestFakeClock(t *testing.T) {
	c := NewFakeClock(time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC))
	before := c.Now()
	c.Advance(time.Hour)
	if !c.Now().After(before) {
		t.Error("clock did not advance")
	}
	var rc RealClock
	if rc.Now().IsZero() {
		t.Error("real clock zero")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 64}, echoResponder("v1"))
	d.HandleQuery("camping")
	d.RunBatch(10)
	d.HandleQuery("camping")
	srv := httptest.NewServer(NewHTTPHandler(d))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	text := string(body[:n])
	for _, want := range []string{
		"cosmo_cache_hits_total 1",
		"cosmo_cache_misses_total 1",
		"cosmo_model_version 1",
		"cosmo_request_latency_ms{quantile=\"0.5\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestFeatureTimestamps(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 16}, echoResponder("v1"))
	clock := NewFakeClock(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC))
	d.Clock = clock
	d.HandleQuery("camping")
	d.RunBatch(10)
	f, ok := d.Store.Get("camping")
	if !ok {
		t.Fatal("feature missing")
	}
	if !f.CreatedAt.Equal(clock.Now()) {
		t.Errorf("CreatedAt = %v, want %v", f.CreatedAt, clock.Now())
	}
	clock.Advance(24 * time.Hour)
	if err := d.DailyRefresh(echoResponder("v2"), nil, 4); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	f2, _ := d.Store.Get("camping")
	if !f2.CreatedAt.After(f.CreatedAt) {
		t.Error("refresh should restamp the feature")
	}
}
