package serving

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// NewHTTPHandler exposes a deployment over HTTP:
//
//	GET /intent?q=<query>      -> structured intent feature (200) or 202
//	                              when queued for batch processing
//	GET /intentions?id=<node>  -> KG intentions for a node, best first
//	                              (frozen-snapshot read, no locks)
//	GET /related?id=<node>     -> products sharing intentions with the
//	                              node (two-hop frozen-snapshot walk)
//	GET /kg                    -> snapshot size summary (JSON)
//	GET /stats                 -> cache and latency statistics (JSON)
//	GET /metrics               -> Prometheus-style plaintext metrics
//	GET /healthz               -> liveness (the process is up)
//	GET /readyz                -> readiness: 503 until warmup completes
//	                              (SetReady) and again while the
//	                              responder circuit breaker is open
//
// The KG endpoints answer 503 until SetKG installs a snapshot.
func NewHTTPHandler(d *Deployment) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/intent", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		f, ok := d.HandleQuery(q)
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusAccepted)
			//cosmo:lint-ignore dropped-error best-effort response write; an encode failure means the client is gone
			_ = json.NewEncoder(w).Encode(map[string]string{
				"status": "queued",
				"query":  q,
			})
			return
		}
		_ = json.NewEncoder(w).Encode(f) //cosmo:lint-ignore dropped-error best-effort response write; an encode failure means the client is gone
	})
	mux.HandleFunc("/intentions", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id parameter", http.StatusBadRequest)
			return
		}
		snap := d.KG()
		if snap == nil {
			http.Error(w, "knowledge graph not loaded", http.StatusServiceUnavailable)
			return
		}
		k := parseK(r.URL.Query().Get("k"), 10)
		seq := snap.IntentionsFor(id)
		type intention struct {
			Relation  string  `json:"relation"`
			Intention string  `json:"intention"`
			Plausible float64 `json:"plausible"`
			Typical   float64 `json:"typical"`
			Support   int     `json:"support"`
		}
		n := seq.Len()
		if n > k {
			n = k
		}
		out := make([]intention, n)
		for i := 0; i < n; i++ {
			e := seq.At(i)
			tail, _ := snap.Node(e.Tail)
			out[i] = intention{
				Relation:  string(e.Relation),
				Intention: tail.Label,
				Plausible: e.PlausibleScore,
				Typical:   e.TypicalScore,
				Support:   e.Support,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		//cosmo:lint-ignore dropped-error best-effort response write; an encode failure means the client is gone
		_ = json.NewEncoder(w).Encode(map[string]any{"id": id, "intentions": out})
	})
	mux.HandleFunc("/related", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id parameter", http.StatusBadRequest)
			return
		}
		snap := d.KG()
		if snap == nil {
			http.Error(w, "knowledge graph not loaded", http.StatusServiceUnavailable)
			return
		}
		k := parseK(r.URL.Query().Get("k"), 10)
		w.Header().Set("Content-Type", "application/json")
		//cosmo:lint-ignore dropped-error best-effort response write; an encode failure means the client is gone
		_ = json.NewEncoder(w).Encode(map[string]any{
			"id":      id,
			"related": snap.RelatedProducts(id, k),
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		p50, p99 := d.LatencyPercentiles()
		stats := d.Cache.Stats()
		body := map[string]any{
			"cache":      stats,
			"hit_rate":   stats.HitRate(),
			"latency_ms": map[string]float64{"p50": p50, "p99": p99},
			"version":    d.Version(),
			"features":   d.Store.Len(),
			"batch":      d.BatchTotals(),
			"ready":      d.Ready(),
		}
		if rs, ok := d.ResilienceStats(); ok {
			body["resilience"] = rs
			body["breaker_state"] = rs.BreakerState.String()
		}
		w.Header().Set("Content-Type", "application/json")
		//cosmo:lint-ignore dropped-error best-effort response write; an encode failure means the client is gone
		_ = json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/kg", func(w http.ResponseWriter, r *http.Request) {
		snap := d.KG()
		if snap == nil {
			http.Error(w, "knowledge graph not loaded", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		//cosmo:lint-ignore dropped-error best-effort response write; an encode failure means the client is gone
		_ = json.NewEncoder(w).Encode(map[string]any{
			"nodes":     snap.NumNodes(),
			"edges":     snap.NumEdges(),
			"relations": snap.NumRelations(),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok")) //cosmo:lint-ignore dropped-error best-effort liveness response; a write failure means the client is gone
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !d.Ready() {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		if rs, ok := d.ResilienceStats(); ok && rs.BreakerState == BreakerOpen {
			http.Error(w, "circuit breaker open", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready")) //cosmo:lint-ignore dropped-error best-effort readiness response; a write failure means the client is gone
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		hist := d.LatencySnapshot()
		stats := d.Cache.Stats()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "cosmo_cache_hits_total %d\n", stats.Hits)
		fmt.Fprintf(w, "cosmo_cache_misses_total %d\n", stats.Misses)
		fmt.Fprintf(w, "cosmo_cache_yearly_hits_total %d\n", stats.YearlyHits)
		fmt.Fprintf(w, "cosmo_cache_daily_hits_total %d\n", stats.DailyHits)
		fmt.Fprintf(w, "cosmo_cache_evictions_total %d\n", stats.Evictions)
		fmt.Fprintf(w, "cosmo_cache_daily_size %d\n", stats.DailySize)
		fmt.Fprintf(w, "cosmo_cache_yearly_size %d\n", stats.YearlySize)
		fmt.Fprintf(w, "cosmo_cache_shards %d\n", d.Cache.NumShards())
		fmt.Fprintf(w, "cosmo_batch_queue_depth %d\n", stats.BatchQueued)
		fmt.Fprintf(w, "cosmo_batch_queue_dropped_total %d\n", stats.BatchDropped)
		bt := d.BatchTotals()
		fmt.Fprintf(w, "cosmo_batch_enqueued_total %d\n", stats.BatchEnqueued)
		fmt.Fprintf(w, "cosmo_batch_processed_total %d\n", bt.Succeeded)
		fmt.Fprintf(w, "cosmo_batch_requeued_total %d\n", bt.Requeued)
		fmt.Fprintf(w, "cosmo_batch_requeue_dropped_total %d\n", bt.RequeueDropped)
		fmt.Fprintf(w, "cosmo_responder_failures_total %d\n", bt.Failed)
		// Panics recovered at the batch/refresh layer plus those the
		// resilience wrapper converted to errors (disjoint events).
		panics := bt.Panics
		rs, hasResilience := d.ResilienceStats()
		if hasResilience {
			panics += rs.Panics
		}
		fmt.Fprintf(w, "cosmo_responder_panics_total %d\n", panics)
		fmt.Fprintf(w, "cosmo_stale_served_total %d\n", bt.StaleServed)
		fmt.Fprintf(w, "cosmo_refresh_failures_total %d\n", bt.RefreshFails)
		if hasResilience {
			fmt.Fprintf(w, "cosmo_responder_retries_total %d\n", rs.Retries)
			fmt.Fprintf(w, "cosmo_responder_attempt_failures_total %d\n", rs.Failures)
			fmt.Fprintf(w, "cosmo_responder_timeouts_total %d\n", rs.Timeouts)
			fmt.Fprintf(w, "cosmo_breaker_state %d\n", rs.BreakerState)
			fmt.Fprintf(w, "cosmo_breaker_opens_total %d\n", rs.BreakerOpens)
			fmt.Fprintf(w, "cosmo_breaker_rejects_total %d\n", rs.BreakerRejects)
		}
		ready := 0
		if d.Ready() {
			ready = 1
		}
		fmt.Fprintf(w, "cosmo_ready %d\n", ready)
		fmt.Fprintf(w, "cosmo_request_latency_ms{quantile=\"0.5\"} %g\n", hist.Quantile(0.50))
		fmt.Fprintf(w, "cosmo_request_latency_ms{quantile=\"0.99\"} %g\n", hist.Quantile(0.99))
		var cum int64
		for i, bound := range hist.Bounds {
			cum += hist.Counts[i]
			fmt.Fprintf(w, "cosmo_request_latency_ms_bucket{le=\"%g\"} %d\n", bound, cum)
		}
		fmt.Fprintf(w, "cosmo_request_latency_ms_bucket{le=\"+Inf\"} %d\n", hist.Total)
		fmt.Fprintf(w, "cosmo_request_latency_ms_sum %g\n", hist.SumMs)
		fmt.Fprintf(w, "cosmo_request_latency_ms_count %d\n", hist.Total)
		fmt.Fprintf(w, "cosmo_model_version %d\n", d.Version())
		fmt.Fprintf(w, "cosmo_feature_store_size %d\n", d.Store.Len())
		if snap := d.KG(); snap != nil {
			fmt.Fprintf(w, "cosmo_kg_nodes %d\n", snap.NumNodes())
			fmt.Fprintf(w, "cosmo_kg_edges %d\n", snap.NumEdges())
		}
	})
	return mux
}

// parseK parses a positive result-count parameter, falling back to def
// on absent or malformed input and capping at 1000 so a hostile k
// cannot force an unbounded response.
func parseK(s string, def int) int {
	if s == "" {
		return def
	}
	k, err := strconv.Atoi(s)
	if err != nil || k <= 0 {
		return def
	}
	if k > 1000 {
		return 1000
	}
	return k
}
