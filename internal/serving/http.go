package serving

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"

	"cosmo/internal/wire"
)

// NewHTTPHandler exposes a deployment over HTTP:
//
//	GET  /intent?q=<query>      -> structured intent feature (200) or 202
//	                               when queued for batch processing
//	GET  /intentions?id=<node>  -> KG intentions for a node, best first
//	                               (frozen-snapshot read, no locks)
//	GET  /related?id=<node>     -> products sharing intentions with the
//	                               node (two-hop frozen-snapshot walk)
//	GET  /similar?q=<text>      -> intentions similar to free text via
//	                               the LSH ANN index (503 until
//	                               SetSimilarity installs one)
//	POST /batch                 -> JSON array of lookups answered in one
//	                               round trip (see AppendBatch)
//	GET  /kg                    -> snapshot size summary (JSON)
//	GET  /stats                 -> cache and latency statistics (JSON)
//	GET  /metrics               -> Prometheus-style plaintext metrics
//	GET  /healthz               -> liveness (the process is up)
//	GET  /readyz                -> readiness: 503 until warmup completes
//	                               (SetReady) and again while the
//	                               responder circuit breaker is open
//
// The KG endpoints answer 503 until SetKG installs a snapshot.
//
// Hot responses are encoded by the hand-rolled appenders in encode.go
// into pooled buffers (wire.Get/Put) — byte-identical to the
// encoding/json output they replaced, including the trailing newline —
// so the steady-state request path allocates nothing for encoding. The
// KG read endpoints (/intentions, /related, /kg, /similar) also answer
// in the compact binary frame format (internal/wire/binary.go) when the
// Accept header asks for wire.BinaryContentType.
func NewHTTPHandler(d *Deployment) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/intent", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		f, ok := d.HandleQuery(q)
		w.Header().Set("Content-Type", "application/json")
		buf := wire.Get()
		if !ok {
			w.WriteHeader(http.StatusAccepted)
			buf.B = AppendQueuedJSON(buf.B[:0], q)
		} else {
			buf.B = AppendFeatureJSON(buf.B[:0], &f)
		}
		buf.B = append(buf.B, '\n')
		_, _ = w.Write(buf.B) //cosmo:lint-ignore dropped-error best-effort response write; a write failure means the client is gone
		wire.Put(buf)
	})
	mux.HandleFunc("/intentions", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id parameter", http.StatusBadRequest)
			return
		}
		snap := d.KG()
		if snap == nil {
			http.Error(w, "knowledge graph not loaded", http.StatusServiceUnavailable)
			return
		}
		k := parseK(r.URL.Query().Get("k"), 10)
		buf := wire.Get()
		if wantsBinary(r) {
			w.Header().Set("Content-Type", wire.BinaryContentType)
			buf.B = AppendIntentionsBin(buf.B[:0], snap, id, k)
		} else {
			w.Header().Set("Content-Type", "application/json")
			buf.B = AppendIntentionsJSON(buf.B[:0], snap, id, k)
			buf.B = append(buf.B, '\n')
		}
		_, _ = w.Write(buf.B) //cosmo:lint-ignore dropped-error best-effort response write; a write failure means the client is gone
		wire.Put(buf)
	})
	mux.HandleFunc("/related", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id parameter", http.StatusBadRequest)
			return
		}
		snap := d.KG()
		if snap == nil {
			http.Error(w, "knowledge graph not loaded", http.StatusServiceUnavailable)
			return
		}
		k := parseK(r.URL.Query().Get("k"), 10)
		buf := wire.Get()
		if wantsBinary(r) {
			w.Header().Set("Content-Type", wire.BinaryContentType)
			buf.B = AppendRelatedBin(buf.B[:0], snap, id, k)
		} else {
			w.Header().Set("Content-Type", "application/json")
			buf.B = AppendRelatedJSON(buf.B[:0], snap, id, k)
			buf.B = append(buf.B, '\n')
		}
		_, _ = w.Write(buf.B) //cosmo:lint-ignore dropped-error best-effort response write; a write failure means the client is gone
		wire.Put(buf)
	})
	mux.HandleFunc("/similar", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		ix := d.Similarity()
		if ix == nil {
			http.Error(w, "similarity index not loaded", http.StatusServiceUnavailable)
			return
		}
		k := parseK(r.URL.Query().Get("k"), 10)
		matches := ix.Lookup(q, k)
		buf := wire.Get()
		if wantsBinary(r) {
			w.Header().Set("Content-Type", wire.BinaryContentType)
			buf.B = AppendSimilarBin(buf.B[:0], q, matches)
		} else {
			w.Header().Set("Content-Type", "application/json")
			buf.B = AppendSimilarJSON(buf.B[:0], q, matches)
			buf.B = append(buf.B, '\n')
		}
		_, _ = w.Write(buf.B) //cosmo:lint-ignore dropped-error best-effort response write; a write failure means the client is gone
		wire.Put(buf)
	})
	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		body := wire.Get()
		var err error
		body.B, err = readAllInto(body.B[:0], http.MaxBytesReader(w, r.Body, MaxBatchBodyBytes))
		if err != nil {
			wire.Put(body)
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, "reading request body failed", http.StatusBadRequest)
			return
		}
		resp := wire.Get()
		var status int
		resp.B, status = d.AppendBatch(resp.B[:0], body.B)
		wire.Put(body)
		if status != http.StatusOK {
			switch status {
			case http.StatusRequestEntityTooLarge:
				http.Error(w, "too many batch items", status)
			default:
				http.Error(w, "malformed batch body", status)
			}
			wire.Put(resp)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		resp.B = append(resp.B, '\n')
		_, _ = w.Write(resp.B) //cosmo:lint-ignore dropped-error best-effort response write; a write failure means the client is gone
		wire.Put(resp)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		p50, p99 := d.LatencyPercentiles()
		stats := d.Cache.Stats()
		body := map[string]any{
			"cache":      stats,
			"hit_rate":   stats.HitRate(),
			"latency_ms": map[string]float64{"p50": p50, "p99": p99},
			"version":    d.Version(),
			"features":   d.Store.Len(),
			"batch":      d.BatchTotals(),
			"ready":      d.Ready(),
		}
		if rs, ok := d.ResilienceStats(); ok {
			body["resilience"] = rs
			body["breaker_state"] = rs.BreakerState.String()
		}
		// /stats is diagnostic, not hot: the stdlib encoder keeps it in
		// lockstep with whatever the stats structs grow next.
		w.Header().Set("Content-Type", "application/json")
		//cosmo:lint-ignore dropped-error best-effort response write; an encode failure means the client is gone
		_ = json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/kg", func(w http.ResponseWriter, r *http.Request) {
		snap := d.KG()
		if snap == nil {
			http.Error(w, "knowledge graph not loaded", http.StatusServiceUnavailable)
			return
		}
		buf := wire.Get()
		if wantsBinary(r) {
			w.Header().Set("Content-Type", wire.BinaryContentType)
			buf.B = AppendKGBin(buf.B[:0], snap)
		} else {
			w.Header().Set("Content-Type", "application/json")
			buf.B = AppendKGJSON(buf.B[:0], snap)
			buf.B = append(buf.B, '\n')
		}
		_, _ = w.Write(buf.B) //cosmo:lint-ignore dropped-error best-effort response write; a write failure means the client is gone
		wire.Put(buf)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok")) //cosmo:lint-ignore dropped-error best-effort liveness response; a write failure means the client is gone
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if d.Draining() {
			// Distinct body so a router's health probe can tell a
			// deliberate drain (node still answers queries during the
			// grace period) from warmup or death.
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if !d.Ready() {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		if rs, ok := d.ResilienceStats(); ok && rs.BreakerState == BreakerOpen {
			http.Error(w, "circuit breaker open", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready")) //cosmo:lint-ignore dropped-error best-effort readiness response; a write failure means the client is gone
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		hist := d.LatencySnapshot()
		stats := d.Cache.Stats()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "cosmo_cache_hits_total %d\n", stats.Hits)
		fmt.Fprintf(w, "cosmo_cache_misses_total %d\n", stats.Misses)
		fmt.Fprintf(w, "cosmo_cache_yearly_hits_total %d\n", stats.YearlyHits)
		fmt.Fprintf(w, "cosmo_cache_daily_hits_total %d\n", stats.DailyHits)
		fmt.Fprintf(w, "cosmo_cache_evictions_total %d\n", stats.Evictions)
		fmt.Fprintf(w, "cosmo_cache_daily_size %d\n", stats.DailySize)
		fmt.Fprintf(w, "cosmo_cache_yearly_size %d\n", stats.YearlySize)
		fmt.Fprintf(w, "cosmo_cache_shards %d\n", d.Cache.NumShards())
		fmt.Fprintf(w, "cosmo_batch_queue_depth %d\n", stats.BatchQueued)
		fmt.Fprintf(w, "cosmo_batch_queue_dropped_total %d\n", stats.BatchDropped)
		bt := d.BatchTotals()
		fmt.Fprintf(w, "cosmo_batch_enqueued_total %d\n", stats.BatchEnqueued)
		fmt.Fprintf(w, "cosmo_batch_processed_total %d\n", bt.Succeeded)
		fmt.Fprintf(w, "cosmo_batch_requeued_total %d\n", bt.Requeued)
		fmt.Fprintf(w, "cosmo_batch_requeue_dropped_total %d\n", bt.RequeueDropped)
		fmt.Fprintf(w, "cosmo_responder_failures_total %d\n", bt.Failed)
		// Panics recovered at the batch/refresh layer plus those the
		// resilience wrapper converted to errors (disjoint events).
		panics := bt.Panics
		rs, hasResilience := d.ResilienceStats()
		if hasResilience {
			panics += rs.Panics
		}
		fmt.Fprintf(w, "cosmo_responder_panics_total %d\n", panics)
		fmt.Fprintf(w, "cosmo_stale_served_total %d\n", bt.StaleServed)
		fmt.Fprintf(w, "cosmo_refresh_failures_total %d\n", bt.RefreshFails)
		if hasResilience {
			fmt.Fprintf(w, "cosmo_responder_retries_total %d\n", rs.Retries)
			fmt.Fprintf(w, "cosmo_responder_attempt_failures_total %d\n", rs.Failures)
			fmt.Fprintf(w, "cosmo_responder_timeouts_total %d\n", rs.Timeouts)
			fmt.Fprintf(w, "cosmo_breaker_state %d\n", rs.BreakerState)
			fmt.Fprintf(w, "cosmo_breaker_opens_total %d\n", rs.BreakerOpens)
			fmt.Fprintf(w, "cosmo_breaker_rejects_total %d\n", rs.BreakerRejects)
		}
		ready := 0
		if d.Ready() {
			ready = 1
		}
		fmt.Fprintf(w, "cosmo_ready %d\n", ready)
		draining := 0
		if d.Draining() {
			draining = 1
		}
		fmt.Fprintf(w, "cosmo_draining %d\n", draining)
		fmt.Fprintf(w, "cosmo_request_latency_ms{quantile=\"0.5\"} %g\n", hist.Quantile(0.50))
		fmt.Fprintf(w, "cosmo_request_latency_ms{quantile=\"0.99\"} %g\n", hist.Quantile(0.99))
		var cum int64
		for i, bound := range hist.Bounds {
			cum += hist.Counts[i]
			fmt.Fprintf(w, "cosmo_request_latency_ms_bucket{le=\"%g\"} %d\n", bound, cum)
		}
		fmt.Fprintf(w, "cosmo_request_latency_ms_bucket{le=\"+Inf\"} %d\n", hist.Total)
		fmt.Fprintf(w, "cosmo_request_latency_ms_sum %g\n", hist.SumMs)
		fmt.Fprintf(w, "cosmo_request_latency_ms_count %d\n", hist.Total)
		fmt.Fprintf(w, "cosmo_model_version %d\n", d.Version())
		fmt.Fprintf(w, "cosmo_feature_store_size %d\n", d.Store.Len())
		if snap := d.KG(); snap != nil {
			fmt.Fprintf(w, "cosmo_kg_nodes %d\n", snap.NumNodes())
			fmt.Fprintf(w, "cosmo_kg_edges %d\n", snap.NumEdges())
			mapped := 0
			if snap.Mapped() {
				mapped = 1
			}
			fmt.Fprintf(w, "cosmo_kg_snapshot_mmap %d\n", mapped)
		}
		reloads, skipped := d.SnapshotReloadStats()
		fmt.Fprintf(w, "cosmo_snapshot_reloads_total %d\n", reloads)
		fmt.Fprintf(w, "cosmo_snapshot_reload_skipped_total %d\n", skipped)
		if ix := d.Similarity(); ix != nil {
			fmt.Fprintf(w, "cosmo_similarity_indexed %d\n", ix.NumIndexed())
		}
		// Cumulative heap allocation count: cosmo-loadgen samples this
		// before and after a run to report allocations per request.
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		fmt.Fprintf(w, "cosmo_go_mallocs_total %d\n", ms.Mallocs)
	})
	return mux
}

// wantsBinary reports whether the request negotiates the compact binary
// response format via the Accept header.
func wantsBinary(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.BinaryContentType)
}

// readAllInto is io.ReadAll into a caller-owned (pooled) buffer: the
// buffer grows only past its previous high-water mark, so steady-state
// batch reads allocate nothing.
func readAllInto(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if errors.Is(err, io.EOF) {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// parseK parses a positive result-count parameter, falling back to def
// on absent or malformed input and capping at 1000 so a hostile k
// cannot force an unbounded response.
func parseK(s string, def int) int {
	if s == "" {
		return def
	}
	k, err := strconv.Atoi(s)
	if err != nil || k <= 0 {
		return def
	}
	if k > 1000 {
		return 1000
	}
	return k
}
