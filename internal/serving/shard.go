package serving

import (
	"container/list"
	"sort"
	"sync"
)

// fnv1a hashes a query to a shard index. Inlined rather than importing
// hash/fnv so the hot path allocates nothing.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// cacheShard is one lock stripe of the AsyncCache: a slice of the yearly
// layer, a slice of the daily LRU, and a bounded ring buffer of queued
// misses. Queries are routed to shards by hash, so each shard only ever
// sees its own key space and the per-shard mutex replaces the old global
// one.
type cacheShard struct {
	mu     sync.Mutex
	yearly map[string]Feature
	daily  map[string]*list.Element
	lru    *list.List
	cap    int
	stats  CacheStats

	// Bounded miss queue: a fixed-capacity ring with drop-oldest policy.
	// When the ring is full the oldest queued query is dropped (and
	// removed from the queued de-dup map so a later miss can re-enqueue
	// it) in favor of the incoming one — fresh traffic wins.
	queue    []string
	qHead    int
	qLen     int
	queued   map[string]bool
	queueCap int
}

func newCacheShard(dailyCap, queueCap int) *cacheShard {
	if dailyCap < 1 {
		dailyCap = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	return &cacheShard{
		yearly:   map[string]Feature{},
		daily:    map[string]*list.Element{},
		lru:      list.New(),
		cap:      dailyCap,
		queue:    make([]string, queueCap),
		queued:   map[string]bool{},
		queueCap: queueCap,
	}
}

// enqueueLocked adds a query to the bounded miss queue, dropping the
// oldest entry when full. Caller holds s.mu.
func (s *cacheShard) enqueueLocked(query string) {
	if s.queued[query] {
		return
	}
	if s.qLen == s.queueCap {
		oldest := s.queue[s.qHead]
		delete(s.queued, oldest)
		s.qHead = (s.qHead + 1) % s.queueCap
		s.qLen--
		s.stats.BatchDropped++
	}
	s.queue[(s.qHead+s.qLen)%s.queueCap] = query
	s.qLen++
	s.queued[query] = true
	s.stats.BatchEnqueued++
}

// requeue pushes a drained-but-failed query back onto the queue. The
// caller must have obtained the query from drain: its queued-map entry
// is still set (the in-flight de-dup claim) but it is no longer in the
// ring, so it is pushed unconditionally. Overflow is drop-newest: when
// the ring is full the retry (not queued fresh work) is sacrificed, its
// de-dup claim is released so a future miss can re-enqueue the query,
// and false is returned so the caller can account for the drop.
func (s *cacheShard) requeue(query string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.qLen == s.queueCap {
		delete(s.queued, query)
		return false
	}
	s.queue[(s.qHead+s.qLen)%s.queueCap] = query
	s.qLen++
	s.queued[query] = true
	s.stats.BatchRequeued++
	return true
}

func (s *cacheShard) lookup(query string) (Feature, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.yearly[query]; ok {
		s.stats.Hits++
		s.stats.YearlyHits++
		return f, true
	}
	if el, ok := s.daily[query]; ok {
		s.lru.MoveToFront(el)
		s.stats.Hits++
		s.stats.DailyHits++
		return el.Value.(dailyEntry).f, true
	}
	s.stats.Misses++
	s.enqueueLocked(query)
	return Feature{}, false
}

func (s *cacheShard) installDaily(f Feature) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.queued, f.Query)
	if el, ok := s.daily[f.Query]; ok {
		el.Value = dailyEntry{f.Query, f}
		s.lru.MoveToFront(el)
		return
	}
	if s.lru.Len() >= s.cap {
		back := s.lru.Back()
		if back != nil {
			s.lru.Remove(back)
			delete(s.daily, back.Value.(dailyEntry).key)
			s.stats.Evictions++
		}
	}
	s.daily[f.Query] = s.lru.PushFront(dailyEntry{f.Query, f})
}

// drain removes and returns up to n queued queries.
func (s *cacheShard) drain(n int) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.qLen {
		n = s.qLen
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = s.queue[(s.qHead+i)%s.queueCap]
	}
	s.qHead = (s.qHead + n) % s.queueCap
	s.qLen -= n
	return out
}

func (s *cacheShard) preloadYearly(f Feature) {
	s.mu.Lock()
	//cosmo:lint-ignore unbounded-append yearly layer is bounded by the refresh preload set and rebuilt wholesale by resetYearly
	s.yearly[f.Query] = f
	s.mu.Unlock()
}

func (s *cacheShard) resetDaily() {
	s.mu.Lock()
	s.daily = map[string]*list.Element{}
	s.lru = list.New()
	s.mu.Unlock()
}

func (s *cacheShard) resetYearly() {
	s.mu.Lock()
	s.yearly = map[string]Feature{}
	s.mu.Unlock()
}

func (s *cacheShard) snapshot() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.DailySize = s.lru.Len()
	st.YearlySize = len(s.yearly)
	st.BatchQueued = s.qLen
	return st
}

// stripedCounter is a lock-striped string->count map for the interaction
// feedback loop: increments hash to one of a fixed set of stripes so
// concurrent HandleQuery calls touching different queries do not
// serialize on a single mutex.
type stripedCounter struct {
	stripes []counterStripe
}

type counterStripe struct {
	mu     sync.Mutex
	counts map[string]int
}

func newStripedCounter(n int) *stripedCounter {
	if n < 1 {
		n = 1
	}
	c := &stripedCounter{stripes: make([]counterStripe, n)}
	for i := range c.stripes {
		c.stripes[i].counts = map[string]int{}
	}
	return c
}

func (c *stripedCounter) inc(q string) {
	s := &c.stripes[fnv1a(q)%uint64(len(c.stripes))]
	s.mu.Lock()
	s.counts[q]++
	s.mu.Unlock()
}

// queryCount is a (query, count) pair from the interaction counter.
type queryCount struct {
	q string
	c int
}

// sorted returns every (query, count) pair ordered by count descending,
// ties broken by query for determinism.
func (c *stripedCounter) sorted() []queryCount {
	var out []queryCount
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		for q, n := range s.counts {
			out = append(out, queryCount{q, n})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].c != out[j].c {
			return out[i].c > out[j].c
		}
		return out[i].q < out[j].q
	})
	return out
}
