package serving

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cosmo/internal/catalog"
	"cosmo/internal/kg"
	"cosmo/internal/know"
	"cosmo/internal/relations"
)

// testSnapshot freezes a tiny graph: one query node with two intentions
// of different typicality, and two products sharing the stronger one.
func testSnapshot(t *testing.T) *kg.Snapshot {
	t.Helper()
	g := kg.New()
	g.AddNode(kg.Node{ID: "q:tent", Type: kg.NodeQuery, Label: "tent"})
	g.AddNode(kg.Node{ID: "p:P1", Type: kg.NodeProduct, Label: "dome tent"})
	g.AddNode(kg.Node{ID: "p:P2", Type: kg.NodeProduct, Label: "camping stove"})
	g.AddNode(kg.Node{ID: "i:a", Type: kg.NodeIntention, Label: "camping"})
	g.AddNode(kg.Node{ID: "i:b", Type: kg.NodeIntention, Label: "shade"})
	add := func(head, tail string, typ float64) {
		t.Helper()
		err := g.AddEdge(kg.Edge{
			Head: head, Relation: relations.UsedForEve, Tail: tail,
			Behavior: know.SearchBuy, Domain: catalog.Category("outdoor"),
			PlausibleScore: 0.9, TypicalScore: typ, Support: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	add("q:tent", "i:a", 0.9)
	add("q:tent", "i:b", 0.4)
	add("p:P1", "i:a", 0.8)
	add("p:P2", "i:a", 0.7)
	return g.Freeze()
}

// TestKGEndpointsUnavailable pins the 503 contract before SetKG.
func TestKGEndpointsUnavailable(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 8}, echoResponder("v1"))
	srv := httptest.NewServer(NewHTTPHandler(d))
	defer srv.Close()

	for _, path := range []string{"/intentions?id=q:tent", "/related?id=p:P1", "/kg"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s before SetKG = %d, want 503", path, resp.StatusCode)
		}
	}
}

// TestKGEndpoints exercises the snapshot-backed read path end to end.
func TestKGEndpoints(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 8}, echoResponder("v1"))
	d.SetKG(testSnapshot(t))
	srv := httptest.NewServer(NewHTTPHandler(d))
	defer srv.Close()

	getJSON := func(path string, out any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	// Missing id is a client error.
	for _, path := range []string{"/intentions", "/related"} {
		if code := getJSON(path, nil); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, code)
		}
	}

	var intentions struct {
		ID         string `json:"id"`
		Intentions []struct {
			Relation  string  `json:"relation"`
			Intention string  `json:"intention"`
			Typical   float64 `json:"typical"`
		} `json:"intentions"`
	}
	if code := getJSON("/intentions?id=q:tent", &intentions); code != http.StatusOK {
		t.Fatalf("GET /intentions = %d, want 200", code)
	}
	if len(intentions.Intentions) != 2 {
		t.Fatalf("got %d intentions, want 2", len(intentions.Intentions))
	}
	// Best-first: the snapshot rows are pre-sorted by typicality.
	if intentions.Intentions[0].Intention != "camping" || intentions.Intentions[1].Intention != "shade" {
		t.Errorf("intentions out of order: %+v", intentions.Intentions)
	}
	if intentions.Intentions[0].Typical < intentions.Intentions[1].Typical {
		t.Errorf("typicality not descending: %+v", intentions.Intentions)
	}

	// k truncates.
	if getJSON("/intentions?id=q:tent&k=1", &intentions); len(intentions.Intentions) != 1 {
		t.Errorf("k=1 returned %d intentions", len(intentions.Intentions))
	}

	// Unknown node: empty result, not an error.
	if code := getJSON("/intentions?id=q:nope", &intentions); code != http.StatusOK || len(intentions.Intentions) != 0 {
		t.Errorf("unknown id: code=%d n=%d, want 200 with 0", code, len(intentions.Intentions))
	}

	var related struct {
		ID      string       `json:"id"`
		Related []kg.Related `json:"related"`
	}
	if code := getJSON("/related?id=p:P1", &related); code != http.StatusOK {
		t.Fatalf("GET /related = %d, want 200", code)
	}
	if len(related.Related) != 1 || related.Related[0].ProductID != "p:P2" {
		t.Errorf("related = %+v, want [p:P2]", related.Related)
	}

	var summary struct {
		Nodes, Edges, Relations int
	}
	if code := getJSON("/kg", &summary); code != http.StatusOK {
		t.Fatalf("GET /kg = %d, want 200", code)
	}
	if summary.Nodes != 5 || summary.Edges != 4 || summary.Relations != 1 {
		t.Errorf("summary = %+v, want 5 nodes / 4 edges / 1 relation", summary)
	}

	// /metrics exposes the snapshot gauges once a snapshot is installed.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"cosmo_kg_nodes 5", "cosmo_kg_edges 4"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDailyRefreshSwapsSnapshot pins the RCU semantics: a refresh with
// a new snapshot installs it, a refresh with nil keeps the old one.
func TestDailyRefreshSwapsSnapshot(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 8}, echoResponder("v1"))
	first := testSnapshot(t)
	d.SetKG(first)

	d.DailyRefresh(echoResponder("v2"), nil, 4)
	if d.KG() != first {
		t.Fatal("nil snapshot in DailyRefresh must keep the current one")
	}

	second := testSnapshot(t)
	d.DailyRefresh(echoResponder("v3"), second, 4)
	if d.KG() != second {
		t.Fatal("DailyRefresh did not install the new snapshot")
	}

	// SetKG(nil) is likewise a no-op, not a teardown.
	d.SetKG(nil)
	if d.KG() != second {
		t.Fatal("SetKG(nil) must not clear the snapshot")
	}
}

// TestKGSwapUnderLoad hammers the read path while refreshes swap
// snapshots, under -race: readers must always observe a complete
// snapshot (old or new), never a torn or nil view mid-flight.
func TestKGSwapUnderLoad(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 8}, echoResponder("v1"))
	d.SetKG(testSnapshot(t))

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := d.KG()
				if snap == nil {
					t.Error("KG() returned nil after SetKG")
					return
				}
				seq := snap.IntentionsFor("q:tent")
				if seq.Len() != 2 {
					t.Errorf("IntentionsFor len = %d, want 2", seq.Len())
					return
				}
				if got := snap.RelatedProducts("p:P1", 4); len(got) != 1 {
					t.Errorf("RelatedProducts len = %d, want 1", len(got))
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		d.DailyRefresh(echoResponder(fmt.Sprintf("v%d", i+2)), testSnapshot(t), 4)
	}
	close(stop)
	wg.Wait()
}
