package serving

import (
	"net/http"
	"sync"
	"unicode/utf16"
	"unicode/utf8"
)

// This file implements POST /batch: many lookups in one request, parsed
// and answered without allocating per item. The request body is a JSON
// array of items:
//
//	[{"op":"intentions","id":"p1","k":5},
//	 {"op":"related","id":"p1"},
//	 {"op":"intent","q":"camping"}]
//
// and the response is a JSON array with one entry per item, in order.
// Errors are isolated per item: an unknown id or missing field turns
// into {"error":"..."} for that entry while the rest of the batch is
// answered normally. Only structural violations fail the whole request:
// malformed JSON is 400, more than the deployment's MaxBatchItems is
// 413.
//
// The parser is hand-rolled and streaming: it walks the body bytes
// once, unescaping the few fields it cares about ("op", "id", "q",
// "k") into a pooled scratch arena that is resliced to [:0] per item,
// and skips everything else in place. Ids reach the snapshot as byte
// slices (IntentionsForBytes / RelatedSeq), so a batch of M KG lookups
// costs a small constant number of allocations independent of M.

// DefaultMaxBatchItems bounds one POST /batch request when
// DeployConfig.MaxBatchItems is 0. 256 items keeps the worst-case
// response around a megabyte at default k.
const DefaultMaxBatchItems = 256

// MaxBatchBodyBytes caps the accepted /batch request body (1 MiB): at
// minimum item size that is far beyond any item cap a deployment would
// configure, and it bounds the pooled read buffer.
const MaxBatchBodyBytes = 1 << 20

// Fixed per-item error bodies, hoisted so the error path allocates
// nothing either.
var (
	batchErrInvalidItem = []byte(`{"error":"invalid item"}`)
	batchErrMissingOp   = []byte(`{"error":"missing op"}`)
	batchErrMissingID   = []byte(`{"error":"missing id"}`)
	batchErrMissingQ    = []byte(`{"error":"missing q"}`)
	batchErrUnknownOp   = []byte(`{"error":"unknown op"}`)
	batchErrNoKG        = []byte(`{"error":"knowledge graph not loaded"}`)
)

// batchScratch pools the per-request parse state: the unescaped field
// arenas, resliced to [:0] for every item.
type batchScratch struct {
	key, op, id, q []byte
}

var batchPool = sync.Pool{New: func() any { return &batchScratch{} }}

// AppendBatch parses and executes a /batch body against the deployment,
// appending the JSON response array to dst. It returns the extended
// buffer and an HTTP status: on 200 the response is appended; on 400
// (malformed body) or 413 (too many items) dst is returned unchanged.
func (d *Deployment) AppendBatch(dst []byte, body []byte) ([]byte, int) {
	sc := batchPool.Get().(*batchScratch)
	defer batchPool.Put(sc)
	p := batchParser{b: body}
	p.ws()
	if !p.eat('[') {
		return dst, http.StatusBadRequest
	}
	mark := len(dst)
	dst = append(dst, '[')
	p.ws()
	if p.eat(']') {
		p.ws()
		if !p.done() {
			return dst[:mark], http.StatusBadRequest
		}
		return append(dst, ']'), http.StatusOK
	}
	items := 0
	for {
		if items >= d.maxBatchItems {
			return dst[:mark], http.StatusRequestEntityTooLarge
		}
		if items > 0 {
			dst = append(dst, ',')
		}
		var ok bool
		dst, ok = d.appendBatchItem(dst, &p, sc)
		if !ok {
			return dst[:mark], http.StatusBadRequest
		}
		items++
		p.ws()
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			break
		}
		return dst[:mark], http.StatusBadRequest
	}
	p.ws()
	if !p.done() {
		return dst[:mark], http.StatusBadRequest
	}
	return append(dst, ']'), http.StatusOK
}

// appendBatchItem parses one item object and appends its response
// entry. ok is false only for structural JSON violations (the whole
// batch fails); per-item problems append a fixed error body instead.
func (d *Deployment) appendBatchItem(dst []byte, p *batchParser, sc *batchScratch) ([]byte, bool) {
	sc.op, sc.id, sc.q = sc.op[:0], sc.id[:0], sc.q[:0]
	hasOp, hasID, hasQ := false, false, false
	k := 10
	bad := false

	p.ws()
	if !p.eat('{') {
		return dst, false
	}
	p.ws()
	if !p.eat('}') {
		for {
			p.ws()
			var ok bool
			sc.key, ok = p.stringInto(sc.key[:0])
			if !ok {
				return dst, false
			}
			p.ws()
			if !p.eat(':') {
				return dst, false
			}
			p.ws()
			c, ok := p.peek()
			if !ok {
				return dst, false
			}
			isStr := c == '"'
			switch {
			case string(sc.key) == "op" && isStr:
				if sc.op, ok = p.stringInto(sc.op[:0]); !ok {
					return dst, false
				}
				hasOp = true
			case string(sc.key) == "id" && isStr:
				if sc.id, ok = p.stringInto(sc.id[:0]); !ok {
					return dst, false
				}
				hasID = true
			case string(sc.key) == "q" && isStr:
				if sc.q, ok = p.stringInto(sc.q[:0]); !ok {
					return dst, false
				}
				hasQ = true
			case string(sc.key) == "k" && (c == '-' || (c >= '0' && c <= '9')):
				v, isInt, ok := p.jsonInt()
				if !ok {
					return dst, false
				}
				if !isInt {
					bad = true // a fractional k fails the item, not the batch
				} else {
					k = clampBatchK(v)
				}
			default:
				// Unknown key, or a known key with the wrong value type:
				// skip the value to keep the stream aligned; a wrong type
				// fails the item.
				if !p.skipValue() {
					return dst, false
				}
				if string(sc.key) == "op" || string(sc.key) == "id" ||
					string(sc.key) == "q" || string(sc.key) == "k" {
					bad = true
				}
			}
			p.ws()
			if p.eat(',') {
				continue
			}
			if p.eat('}') {
				break
			}
			return dst, false
		}
	}

	switch {
	case bad:
		return append(dst, batchErrInvalidItem...), true
	case !hasOp:
		return append(dst, batchErrMissingOp...), true
	case string(sc.op) == "intentions":
		if !hasID {
			return append(dst, batchErrMissingID...), true
		}
		snap := d.KG()
		if snap == nil {
			return append(dst, batchErrNoKG...), true
		}
		return AppendIntentionsJSONBytes(dst, snap, sc.id, k), true
	case string(sc.op) == "related":
		if !hasID {
			return append(dst, batchErrMissingID...), true
		}
		snap := d.KG()
		if snap == nil {
			return append(dst, batchErrNoKG...), true
		}
		return AppendRelatedJSONBytes(dst, snap, sc.id, k), true
	case string(sc.op) == "intent":
		if !hasQ {
			return append(dst, batchErrMissingQ...), true
		}
		// The intent path goes through the cache/store tiers and may
		// allocate (query interning, feedback counting) — it is not on
		// the zero-alloc guarantee, only the KG lookups are.
		f, ok := d.HandleQuery(string(sc.q))
		if !ok {
			return AppendQueuedJSONBytes(dst, sc.q), true
		}
		return AppendFeatureJSON(dst, &f), true
	default:
		return append(dst, batchErrUnknownOp...), true
	}
}

// clampBatchK mirrors parseK's bounds for in-batch k values.
func clampBatchK(v int) int {
	if v <= 0 {
		return 10
	}
	if v > 1000 {
		return 1000
	}
	return v
}

// batchParser is a single-pass cursor over the request body.
type batchParser struct {
	b []byte
	i int
}

func (p *batchParser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *batchParser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *batchParser) peek() (byte, bool) {
	if p.i < len(p.b) {
		return p.b[p.i], true
	}
	return 0, false
}

func (p *batchParser) done() bool { return p.i == len(p.b) }

// stringInto parses a JSON string starting at the cursor (which must be
// on the opening quote) and appends the unescaped bytes to dst.
//
//cosmo:alloc-free
func (p *batchParser) stringInto(dst []byte) ([]byte, bool) {
	if !p.eat('"') {
		return dst, false
	}
	for p.i < len(p.b) {
		c := p.b[p.i]
		switch {
		case c == '"':
			p.i++
			return dst, true
		case c == '\\':
			p.i++
			if p.i >= len(p.b) {
				return dst, false
			}
			e := p.b[p.i]
			p.i++
			switch e {
			case '"', '\\', '/':
				dst = append(dst, e)
			case 'b':
				dst = append(dst, '\b')
			case 'f':
				dst = append(dst, '\f')
			case 'n':
				dst = append(dst, '\n')
			case 'r':
				dst = append(dst, '\r')
			case 't':
				dst = append(dst, '\t')
			case 'u':
				r, ok := p.hex4()
				if !ok {
					return dst, false
				}
				if utf16.IsSurrogate(rune(r)) {
					// Try to pair with a following \uXXXX; an unpaired
					// or mismatched surrogate becomes U+FFFD (the second
					// escape, if any, is left for the next iteration).
					rewind := p.i
					if p.i+1 < len(p.b) && p.b[p.i] == '\\' && p.b[p.i+1] == 'u' {
						p.i += 2
						r2, ok2 := p.hex4()
						if !ok2 {
							return dst, false
						}
						if dec := utf16.DecodeRune(rune(r), rune(r2)); dec != utf8.RuneError {
							dst = utf8.AppendRune(dst, dec)
							continue
						}
						p.i = rewind
					}
					dst = utf8.AppendRune(dst, utf8.RuneError)
				} else {
					dst = utf8.AppendRune(dst, rune(r))
				}
			default:
				return dst, false
			}
		case c < 0x20:
			return dst, false // raw control byte inside a string
		default:
			dst = append(dst, c)
			p.i++
		}
	}
	return dst, false
}

// hex4 reads four hex digits at the cursor.
func (p *batchParser) hex4() (uint32, bool) {
	if p.i+4 > len(p.b) {
		return 0, false
	}
	var v uint32
	for j := 0; j < 4; j++ {
		c := p.b[p.i+j]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint32(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint32(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint32(c-'A'+10)
		default:
			return 0, false
		}
	}
	p.i += 4
	return v, true
}

// jsonInt parses a JSON number at the cursor. isInt is false when the
// number carries a fraction or exponent (the value is then meaningless
// but the stream stays aligned).
func (p *batchParser) jsonInt() (v int, isInt, ok bool) {
	neg := p.eat('-')
	start := p.i
	for p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
		// Values beyond the clamp bound saturate; k is capped at 1000
		// anyway, so overflow cannot matter.
		if v < 1<<20 {
			v = v*10 + int(p.b[p.i]-'0')
		}
		p.i++
	}
	if p.i == start {
		return 0, false, false
	}
	isInt = true
	if p.i < len(p.b) && (p.b[p.i] == '.' || p.b[p.i] == 'e' || p.b[p.i] == 'E') {
		isInt = false
		if !p.skipNumberTail() {
			return 0, false, false
		}
	}
	if neg {
		v = -v
	}
	return v, isInt, true
}

// skipNumberTail consumes a fraction/exponent suffix starting at '.',
// 'e' or 'E'.
func (p *batchParser) skipNumberTail() bool {
	if p.eat('.') {
		start := p.i
		for p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
			p.i++
		}
		if p.i == start {
			return false
		}
	}
	if p.eat('e') || p.eat('E') {
		if !p.eat('+') {
			p.eat('-')
		}
		start := p.i
		for p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
			p.i++
		}
		if p.i == start {
			return false
		}
	}
	return true
}

// skipValue consumes any JSON value at the cursor without materializing
// it. Depth-limited so a hostile body cannot overflow the stack.
func (p *batchParser) skipValue() bool { return p.skipValueDepth(0) }

const batchMaxSkipDepth = 64

func (p *batchParser) skipValueDepth(depth int) bool {
	if depth > batchMaxSkipDepth {
		return false
	}
	p.ws()
	c, ok := p.peek()
	if !ok {
		return false
	}
	switch {
	case c == '"':
		return p.skipString()
	case c == '{':
		p.i++
		p.ws()
		if p.eat('}') {
			return true
		}
		for {
			p.ws()
			if !p.skipString() {
				return false
			}
			p.ws()
			if !p.eat(':') {
				return false
			}
			if !p.skipValueDepth(depth + 1) {
				return false
			}
			p.ws()
			if p.eat(',') {
				continue
			}
			if p.eat('}') {
				return true
			}
			return false
		}
	case c == '[':
		p.i++
		p.ws()
		if p.eat(']') {
			return true
		}
		for {
			if !p.skipValueDepth(depth + 1) {
				return false
			}
			p.ws()
			if p.eat(',') {
				continue
			}
			if p.eat(']') {
				return true
			}
			return false
		}
	case c == 't':
		return p.lit("true")
	case c == 'f':
		return p.lit("false")
	case c == 'n':
		return p.lit("null")
	default:
		_, _, ok := p.jsonInt()
		return ok
	}
}

// skipString consumes a JSON string without unescaping it.
func (p *batchParser) skipString() bool {
	if !p.eat('"') {
		return false
	}
	for p.i < len(p.b) {
		c := p.b[p.i]
		switch {
		case c == '"':
			p.i++
			return true
		case c == '\\':
			p.i += 2
		case c < 0x20:
			return false
		default:
			p.i++
		}
	}
	return false
}

func (p *batchParser) lit(s string) bool {
	if p.i+len(s) > len(p.b) || string(p.b[p.i:p.i+len(s)]) != s {
		return false
	}
	p.i += len(s)
	return true
}
