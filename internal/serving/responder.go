package serving

import (
	"context"
	"errors"
)

// ContextResponder is the fallible form of model inference: it honors
// cancellation, may time out, and reports failure instead of fabricating
// a feature. All new serving code targets this interface; the legacy
// Responder is adapted through AdaptResponder and kept for callers whose
// responders structurally cannot fail (echo fixtures, offline
// experiments over an in-process COSMO-LM).
type ContextResponder interface {
	RespondContext(ctx context.Context, query string) (Feature, error)
}

// ContextResponderFunc adapts a function to the ContextResponder
// interface.
type ContextResponderFunc func(ctx context.Context, query string) (Feature, error)

// RespondContext calls f.
func (f ContextResponderFunc) RespondContext(ctx context.Context, query string) (Feature, error) {
	return f(ctx, query)
}

// AdaptResponder lifts a legacy infallible Responder into a
// ContextResponder. The adapter checks for cancellation before invoking
// the responder but cannot interrupt it mid-call: legacy responders are
// synchronous by contract.
func AdaptResponder(r Responder) ContextResponder {
	return ContextResponderFunc(func(ctx context.Context, query string) (Feature, error) {
		if err := ctx.Err(); err != nil {
			return Feature{}, err
		}
		return r.Respond(query), nil
	})
}

// Sentinel errors surfaced by the resilience layer.
var (
	// ErrBreakerOpen is returned without invoking the responder while
	// the circuit breaker is open (fail-fast degradation).
	ErrBreakerOpen = errors.New("serving: circuit breaker open")
	// ErrResponderPanic wraps a panic recovered from a responder call.
	ErrResponderPanic = errors.New("serving: responder panicked")
)
