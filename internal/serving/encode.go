package serving

import (
	"cosmo/internal/kg"
	"cosmo/internal/wire"
)

// This file holds the hand-rolled response encoders for the hot serving
// endpoints. Each JSON encoder appends into a caller-provided buffer
// (pooled via wire.Get/Put in the handlers) and is byte-identical to
// what encoding/json produced for the same response value — map keys in
// sorted order, struct fields in declaration order, nil slices as null
// — which encode_test.go pins with the stdlib as the oracle. The
// handlers append the trailing '\n' themselves, matching
// json.Encoder.Encode.
//
// The Bin variants emit the compact binary frames documented in
// internal/wire/binary.go, negotiated by the handlers via the Accept
// header.

// AppendQueuedJSON appends the 202 queued-response body for query q:
// {"query":q,"status":"queued"}.
//
//cosmo:alloc-free
func AppendQueuedJSON(dst []byte, q string) []byte {
	dst = append(dst, `{"query":`...)
	dst = wire.AppendString(dst, q)
	return append(dst, `,"status":"queued"}`...)
}

// AppendQueuedJSONBytes is AppendQueuedJSON for a query still in the
// batch parser's byte arena.
//
//cosmo:alloc-free
func AppendQueuedJSONBytes(dst []byte, q []byte) []byte {
	dst = append(dst, `{"query":`...)
	dst = wire.AppendStringBytes(dst, q)
	return append(dst, `,"status":"queued"}`...)
}

// AppendFeatureJSON appends a Feature exactly as encoding/json encodes
// the untagged struct: Go field names in declaration order.
//
//cosmo:alloc-free
func AppendFeatureJSON(dst []byte, f *Feature) []byte {
	dst = append(dst, `{"Query":`...)
	dst = wire.AppendString(dst, f.Query)
	dst = append(dst, `,"Intents":`...)
	dst = appendStringSliceJSON(dst, f.Intents)
	dst = append(dst, `,"Relations":`...)
	dst = appendStringSliceJSON(dst, f.Relations)
	dst = append(dst, `,"SubCategory":`...)
	dst = wire.AppendString(dst, f.SubCategory)
	dst = append(dst, `,"StrongIntent":`...)
	dst = wire.AppendBool(dst, f.StrongIntent)
	dst = append(dst, `,"Version":`...)
	dst = wire.AppendInt(dst, int64(f.Version))
	dst = append(dst, `,"CreatedAt":`...)
	dst = wire.AppendTime(dst, f.CreatedAt)
	dst = append(dst, `,"Stale":`...)
	dst = wire.AppendBool(dst, f.Stale)
	return append(dst, '}')
}

// appendStringSliceJSON matches encoding/json's slice form: nil
// encodes as null, empty-but-non-nil as [].
//
//cosmo:alloc-free
func appendStringSliceJSON(dst []byte, ss []string) []byte {
	if ss == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, s := range ss {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = wire.AppendString(dst, s)
	}
	return append(dst, ']')
}

// AppendIntentionsJSON appends the /intentions response for a node:
// {"id":id,"intentions":[{"relation":...,"intention":...,
// "plausible":...,"typical":...,"support":...},...]}.
//
//cosmo:alloc-free
func AppendIntentionsJSON(dst []byte, snap *kg.Snapshot, id string, k int) []byte {
	dst = append(dst, `{"id":`...)
	dst = wire.AppendString(dst, id)
	return appendIntentionsTail(dst, snap, snap.IntentionsFor(id), k)
}

// AppendIntentionsJSONBytes is AppendIntentionsJSON for an id still in
// the batch parser's byte arena.
//
//cosmo:alloc-free
func AppendIntentionsJSONBytes(dst []byte, snap *kg.Snapshot, id []byte, k int) []byte {
	dst = append(dst, `{"id":`...)
	dst = wire.AppendStringBytes(dst, id)
	return appendIntentionsTail(dst, snap, snap.IntentionsForBytes(id), k)
}

//cosmo:alloc-free
func appendIntentionsTail(dst []byte, snap *kg.Snapshot, seq kg.EdgeSeq, k int) []byte {
	dst = append(dst, `,"intentions":[`...)
	n := seq.Len()
	if n > k {
		n = k
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			dst = append(dst, ',')
		}
		e := seq.At(i)
		tail, _ := snap.Node(e.Tail)
		dst = append(dst, `{"relation":`...)
		dst = wire.AppendString(dst, string(e.Relation))
		dst = append(dst, `,"intention":`...)
		dst = wire.AppendString(dst, tail.Label)
		dst = append(dst, `,"plausible":`...)
		dst = wire.AppendFloat(dst, e.PlausibleScore)
		dst = append(dst, `,"typical":`...)
		dst = wire.AppendFloat(dst, e.TypicalScore)
		dst = append(dst, `,"support":`...)
		dst = wire.AppendInt(dst, int64(e.Support))
		dst = append(dst, '}')
	}
	return append(dst, "]}"...)
}

// AppendRelatedJSON appends the /related response for a node:
// {"id":id,"related":[{"ProductID":...,"Label":...,"Score":...,
// "Via":[...]},...]} (untagged kg.Related fields, declaration order).
//
//cosmo:alloc-free
func AppendRelatedJSON(dst []byte, snap *kg.Snapshot, id string, k int) []byte {
	dst = append(dst, `{"id":`...)
	dst = wire.AppendString(dst, id)
	seq := snap.RelatedSeqString(id, k)
	dst = appendRelatedTail(dst, seq)
	seq.Release()
	return dst
}

// AppendRelatedJSONBytes is AppendRelatedJSON for an id still in the
// batch parser's byte arena.
//
//cosmo:alloc-free
func AppendRelatedJSONBytes(dst []byte, snap *kg.Snapshot, id []byte, k int) []byte {
	dst = append(dst, `{"id":`...)
	dst = wire.AppendStringBytes(dst, id)
	seq := snap.RelatedSeq(id, k)
	dst = appendRelatedTail(dst, seq)
	seq.Release()
	return dst
}

//cosmo:alloc-free
func appendRelatedTail(dst []byte, seq kg.RelatedSeq) []byte {
	dst = append(dst, `,"related":[`...)
	for i := 0; i < seq.Len(); i++ {
		if i > 0 {
			dst = append(dst, ',')
		}
		r := seq.At(i)
		dst = append(dst, `{"ProductID":`...)
		dst = wire.AppendString(dst, r.ProductID)
		dst = append(dst, `,"Label":`...)
		dst = wire.AppendString(dst, r.Label)
		dst = append(dst, `,"Score":`...)
		dst = wire.AppendFloat(dst, r.Score)
		dst = append(dst, `,"Via":`...)
		dst = appendStringSliceJSON(dst, r.Via)
		dst = append(dst, '}')
	}
	return append(dst, "]}"...)
}

// AppendKGJSON appends the /kg summary:
// {"edges":E,"nodes":N,"relations":R} (sorted keys, matching the
// stdlib's map encoding).
//
//cosmo:alloc-free
func AppendKGJSON(dst []byte, snap *kg.Snapshot) []byte {
	dst = append(dst, `{"edges":`...)
	dst = wire.AppendInt(dst, int64(snap.NumEdges()))
	dst = append(dst, `,"nodes":`...)
	dst = wire.AppendInt(dst, int64(snap.NumNodes()))
	dst = append(dst, `,"relations":`...)
	dst = wire.AppendInt(dst, int64(snap.NumRelations()))
	return append(dst, '}')
}

// AppendSimilarJSON appends the /similar response:
// {"matches":[{"ID":...,"Label":...,"Score":...},...],"q":q}
// (sorted keys; untagged kg.SimilarMatch fields, declaration order).
//
//cosmo:alloc-free
func AppendSimilarJSON(dst []byte, q string, matches []kg.SimilarMatch) []byte {
	dst = append(dst, `{"matches":[`...)
	for i := range matches {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"ID":`...)
		dst = wire.AppendString(dst, matches[i].ID)
		dst = append(dst, `,"Label":`...)
		dst = wire.AppendString(dst, matches[i].Label)
		dst = append(dst, `,"Score":`...)
		dst = wire.AppendFloat(dst, matches[i].Score)
		dst = append(dst, '}')
	}
	dst = append(dst, `],"q":`...)
	dst = wire.AppendString(dst, q)
	return append(dst, '}')
}

// AppendIntentionsBin appends the BinIntentions frame (see
// internal/wire/binary.go for the field order).
//
//cosmo:alloc-free
func AppendIntentionsBin(dst []byte, snap *kg.Snapshot, id string, k int) []byte {
	dst = wire.AppendBinHeader(dst, wire.BinIntentions)
	dst = wire.AppendBinString(dst, id)
	seq := snap.IntentionsFor(id)
	n := seq.Len()
	if n > k {
		n = k
	}
	dst = wire.AppendBinUvarint(dst, uint64(n)) //cosmo:lint-ignore unchecked-narrowing n is a non-negative slice length
	for i := 0; i < n; i++ {
		e := seq.At(i)
		tail, _ := snap.Node(e.Tail)
		dst = wire.AppendBinString(dst, string(e.Relation))
		dst = wire.AppendBinString(dst, tail.Label)
		dst = wire.AppendBinFloat(dst, e.PlausibleScore)
		dst = wire.AppendBinFloat(dst, e.TypicalScore)
		dst = wire.AppendBinUvarint(dst, uint64(e.Support)) //cosmo:lint-ignore unchecked-narrowing Support is a non-negative edge count
	}
	return dst
}

// AppendRelatedBin appends the BinRelated frame.
//
//cosmo:alloc-free
func AppendRelatedBin(dst []byte, snap *kg.Snapshot, id string, k int) []byte {
	dst = wire.AppendBinHeader(dst, wire.BinRelated)
	dst = wire.AppendBinString(dst, id)
	seq := snap.RelatedSeqString(id, k)
	dst = wire.AppendBinUvarint(dst, uint64(seq.Len())) //cosmo:lint-ignore unchecked-narrowing Len is a non-negative slice length
	for i := 0; i < seq.Len(); i++ {
		r := seq.At(i)
		dst = wire.AppendBinString(dst, r.ProductID)
		dst = wire.AppendBinString(dst, r.Label)
		dst = wire.AppendBinFloat(dst, r.Score)
		dst = wire.AppendBinUvarint(dst, uint64(len(r.Via))) //cosmo:lint-ignore unchecked-narrowing len is non-negative
		for _, v := range r.Via {
			dst = wire.AppendBinString(dst, v)
		}
	}
	seq.Release()
	return dst
}

// AppendKGBin appends the BinKG frame.
//
//cosmo:alloc-free
func AppendKGBin(dst []byte, snap *kg.Snapshot) []byte {
	dst = wire.AppendBinHeader(dst, wire.BinKG)
	dst = wire.AppendBinUvarint(dst, uint64(snap.NumNodes())) //cosmo:lint-ignore unchecked-narrowing node count is non-negative
	dst = wire.AppendBinUvarint(dst, uint64(snap.NumEdges())) //cosmo:lint-ignore unchecked-narrowing edge count is non-negative
	return wire.AppendBinUvarint(dst, uint64(snap.NumRelations())) //cosmo:lint-ignore unchecked-narrowing relation count is non-negative
}

// AppendSimilarBin appends the BinSimilar frame.
//
//cosmo:alloc-free
func AppendSimilarBin(dst []byte, q string, matches []kg.SimilarMatch) []byte {
	dst = wire.AppendBinHeader(dst, wire.BinSimilar)
	dst = wire.AppendBinString(dst, q)
	dst = wire.AppendBinUvarint(dst, uint64(len(matches))) //cosmo:lint-ignore unchecked-narrowing len is non-negative
	for i := range matches {
		dst = wire.AppendBinString(dst, matches[i].ID)
		dst = wire.AppendBinString(dst, matches[i].Label)
		dst = wire.AppendBinFloat(dst, matches[i].Score)
	}
	return dst
}
