package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cosmo/internal/kg"
	"cosmo/internal/wire"
)

// buildTestSimilarity indexes the deployment's current snapshot.
func buildTestSimilarity(t *testing.T, d *Deployment) *kg.SimilarityIndex {
	t.Helper()
	ix := kg.BuildSimilarityIndex(d.KG(), kg.SimilarityConfig{Seed: 1})
	if ix.NumIndexed() == 0 {
		t.Fatal("test snapshot indexed no intentions")
	}
	return ix
}

// batchDeployment is a deployment with a snapshot installed, ready for
// /batch traffic.
func batchDeployment(t *testing.T) *Deployment {
	t.Helper()
	d := NewDeployment(DeployConfig{DailyCacheCap: 8}, echoResponder("v1"))
	d.SetKG(testSnapshot(t))
	return d
}

// runBatch runs a body through AppendBatch and decodes the response.
func runBatch(t *testing.T, d *Deployment, body string) (status int, items []json.RawMessage) {
	t.Helper()
	out, status := d.AppendBatch(nil, []byte(body))
	if status != http.StatusOK {
		return status, nil
	}
	if err := json.Unmarshal(out, &items); err != nil {
		t.Fatalf("response %s does not parse: %v", out, err)
	}
	return status, items
}

// TestBatchLookups pins the happy path: each item is answered in order
// with exactly the bytes the single-lookup endpoint would produce.
func TestBatchLookups(t *testing.T) {
	d := batchDeployment(t)
	snap := d.KG()
	status, items := runBatch(t, d,
		`[{"op":"intentions","id":"q:tent","k":1},
		  {"op":"related","id":"p:P1"},
		  {"op":"intentions","id":"q:nope"}]`)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if len(items) != 3 {
		t.Fatalf("%d items, want 3", len(items))
	}
	wants := [][]byte{
		AppendIntentionsJSON(nil, snap, "q:tent", 1),
		AppendRelatedJSON(nil, snap, "p:P1", 10),
		AppendIntentionsJSON(nil, snap, "q:nope", 10),
	}
	for i, want := range wants {
		if !bytes.Equal(items[i], want) {
			t.Errorf("item %d = %s, want %s", i, items[i], want)
		}
	}
}

// TestBatchIntentOp routes intent items through the cache tiers: a cold
// query answers queued, a cached one answers the feature.
func TestBatchIntentOp(t *testing.T) {
	d := batchDeployment(t)
	status, items := runBatch(t, d, `[{"op":"intent","q":"camping"}]`)
	if status != http.StatusOK || len(items) != 1 {
		t.Fatalf("status=%d items=%d", status, len(items))
	}
	var queued struct{ Status, Query string }
	if err := json.Unmarshal(items[0], &queued); err != nil || queued.Status != "queued" || queued.Query != "camping" {
		t.Fatalf("cold intent = %s (%v)", items[0], err)
	}

	d.RunBatch(10) // process the queued miss
	_, items = runBatch(t, d, `[{"op":"intent","q":"camping"}]`)
	var f Feature
	if err := json.Unmarshal(items[0], &f); err != nil || f.Query != "camping" {
		t.Fatalf("warm intent = %s (%v)", items[0], err)
	}
}

// TestBatchPerItemErrors pins error isolation: bad items produce fixed
// error entries, the rest of the batch is answered normally.
func TestBatchPerItemErrors(t *testing.T) {
	d := batchDeployment(t)
	status, items := runBatch(t, d,
		`[{"op":"intentions"},
		  {"id":"q:tent"},
		  {"op":"warp","id":"q:tent"},
		  {"op":"intent"},
		  {"op":"related","id":"p:P1","k":1.5},
		  {"op":5,"id":"q:tent"},
		  {"op":"intentions","id":"q:tent","k":1}]`)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	wants := []string{
		`{"error":"missing id"}`,
		`{"error":"missing op"}`,
		`{"error":"unknown op"}`,
		`{"error":"missing q"}`,
		`{"error":"invalid item"}`,
		`{"error":"invalid item"}`,
		"", // real answer, checked below
	}
	if len(items) != len(wants) {
		t.Fatalf("%d items, want %d", len(items), len(wants))
	}
	for i, want := range wants[:6] {
		if string(items[i]) != want {
			t.Errorf("item %d = %s, want %s", i, items[i], want)
		}
	}
	if want := AppendIntentionsJSON(nil, d.KG(), "q:tent", 1); !bytes.Equal(items[6], want) {
		t.Errorf("trailing good item = %s, want %s", items[6], want)
	}
}

// TestBatchNoKG answers per-item 503-equivalents rather than failing
// the request when no snapshot is installed.
func TestBatchNoKG(t *testing.T) {
	d := NewDeployment(DeployConfig{DailyCacheCap: 8}, echoResponder("v1"))
	status, items := runBatch(t, d, `[{"op":"intentions","id":"q:tent"}]`)
	if status != http.StatusOK || string(items[0]) != `{"error":"knowledge graph not loaded"}` {
		t.Fatalf("status=%d item=%s", status, items[0])
	}
}

// TestBatchStructuralErrors pins the whole-request failures: malformed
// JSON is 400 with the destination buffer unchanged, item overflow is
// 413.
func TestBatchStructuralErrors(t *testing.T) {
	d := batchDeployment(t)
	bad := []string{
		``, `{}`, `[`, `[{]`, `[{"op":}]`, `[{"op":"intentions",}]`,
		`[{"op":"intentions" "id":"x"}]`, `[1, 2`, `[] trailing`,
		`[{"op":"intentions","id":"q:tent"}] x`,
		`[{"op":"intentions","id":"unterminated]`,
		`[{"op":"intentions","id":"q:tent","k":+1}]`,
		"[{\"op\":\"intentions\",\"id\":\"q\x01tent\"}]",
	}
	for _, body := range bad {
		prefix := []byte("seed")
		out, status := d.AppendBatch(prefix, []byte(body))
		if status != http.StatusBadRequest {
			t.Errorf("AppendBatch(%q) status = %d, want 400", body, status)
		}
		if !bytes.Equal(out, prefix) {
			t.Errorf("AppendBatch(%q) left %q in dst, want untouched prefix", body, out)
		}
	}

	small := NewDeployment(DeployConfig{DailyCacheCap: 8, MaxBatchItems: 2}, echoResponder("v1"))
	small.SetKG(testSnapshot(t))
	var sb strings.Builder
	sb.WriteString(`[`)
	for i := 0; i < 3; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"op":"intentions","id":"q:tent"}`)
	}
	sb.WriteString(`]`)
	if _, status := small.AppendBatch(nil, []byte(sb.String())); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("3 items past a 2-item cap = %d, want 413", status)
	}
	if status, _ := runBatch(t, small, `[{"op":"intentions","id":"q:tent"},{"op":"kg"}]`); status != http.StatusOK {
		t.Fatalf("2 items at a 2-item cap = %d, want 200", status)
	}
}

// TestBatchParsingEdges pins the parser niceties: escapes resolve
// before the snapshot lookup, unknown keys are skipped, k is clamped,
// and an empty batch answers an empty array.
func TestBatchParsingEdges(t *testing.T) {
	d := batchDeployment(t)

	status, items := runBatch(t, d, ` [ ] `)
	if status != http.StatusOK || len(items) != 0 {
		t.Fatalf("empty batch: status=%d items=%d", status, len(items))
	}

	// q is 'q': the unescaped id must hit the snapshot.
	status, items = runBatch(t, d,
		`[{"op":"intentions","id":"q:tent","k":1,"extra":{"a":[1,true,null,"x"]},"note":"😀"}]`)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if want := AppendIntentionsJSON(nil, d.KG(), "q:tent", 1); !bytes.Equal(items[0], want) {
		t.Errorf("escaped id item = %s, want %s", items[0], want)
	}

	// k is clamped exactly like the single endpoints: huge values cap at
	// 1000, non-positive values fall back to the default.
	for _, body := range []string{
		`[{"op":"intentions","id":"q:tent","k":999999}]`,
		`[{"op":"intentions","id":"q:tent","k":-3}]`,
		`[{"op":"intentions","id":"q:tent","k":0}]`,
	} {
		if status, _ := runBatch(t, d, body); status != http.StatusOK {
			t.Errorf("AppendBatch(%q) status = %d, want 200", body, status)
		}
	}
}

// TestBatchAllocFree pins the tentpole contract: a KG-only batch of M
// lookups costs a small constant number of allocations independent of
// M — steady-state zero with warmed pools and a pre-sized destination.
func TestBatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool deliberately drops items under -race")
	}
	d := batchDeployment(t)
	var sb strings.Builder
	sb.WriteString(`[`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		if i%2 == 0 {
			fmt.Fprintf(&sb, `{"op":"intentions","id":"q:tent","k":%d}`, i%7+1)
		} else {
			sb.WriteString(`{"op":"related","id":"p:P1"}`)
		}
	}
	sb.WriteString(`]`)
	body := []byte(sb.String())
	dst := make([]byte, 0, 1<<20)

	// Warm the batch and snapshot scratch pools.
	if _, status := d.AppendBatch(dst, body); status != http.StatusOK {
		t.Fatalf("warmup status = %d", status)
	}
	var sink []byte
	if n := testing.AllocsPerRun(100, func() {
		sink, _ = d.AppendBatch(dst, body)
	}); n != 0 {
		t.Errorf("64-item KG batch: %.1f allocs/op, want 0", n)
	}
	_ = sink
}

// TestBatchEndpoint exercises POST /batch over HTTP, including the
// method gate and the body-size cap.
func TestBatchEndpoint(t *testing.T) {
	d := batchDeployment(t)
	srv := httptest.NewServer(NewHTTPHandler(d))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /batch = %d, want 405", resp.StatusCode)
	}

	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	code, body := post(`[{"op":"intentions","id":"q:tent","k":1},{"op":"kg"}]`)
	if code != http.StatusOK {
		t.Fatalf("POST /batch = %d: %s", code, body)
	}
	if !bytes.HasSuffix(body, []byte("]\n")) {
		t.Errorf("batch response must end with ]\\n, got %q tail", body[len(body)-2:])
	}
	var items []json.RawMessage
	if err := json.Unmarshal(body, &items); err != nil || len(items) != 2 {
		t.Fatalf("response %s: %v", body, err)
	}
	if string(items[1]) != `{"error":"unknown op"}` {
		t.Errorf("item 1 = %s", items[1])
	}

	if code, _ := post(`{"not":"an array"}`); code != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", code)
	}

	huge := strings.Repeat(" ", MaxBatchBodyBytes+1)
	if code, _ := post(huge); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413", code)
	}
}

// TestSimilarEndpoint pins /similar: 503 before SetSimilarity, then
// JSON and binary answers that agree with the index.
func TestSimilarEndpoint(t *testing.T) {
	d := batchDeployment(t)
	srv := httptest.NewServer(NewHTTPHandler(d))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/similar?q=camping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/similar before SetSimilarity = %d, want 503", resp.StatusCode)
	}

	d.SetSimilarity(buildTestSimilarity(t, d))

	resp, err = http.Get(srv.URL + "/similar")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/similar without q = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/similar?q=camping&k=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/similar = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Q       string
		Matches []struct {
			ID, Label string
			Score     float64
		}
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Q != "camping" || len(out.Matches) != 1 || out.Matches[0].Label != "camping" {
		t.Fatalf("similar = %+v", out)
	}
	if out.Matches[0].Score <= 0.99 {
		t.Errorf("self-similarity score = %g, want ~1", out.Matches[0].Score)
	}
}

// TestBinaryNegotiation: an Accept header naming the binary content
// type flips /intentions, /related, /kg and /similar to binary frames.
func TestBinaryNegotiation(t *testing.T) {
	d := batchDeployment(t)
	d.SetSimilarity(buildTestSimilarity(t, d))
	srv := httptest.NewServer(NewHTTPHandler(d))
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		req.Header.Set("Accept", wire.BinaryContentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != wire.BinaryContentType {
			t.Fatalf("GET %s Content-Type = %q", path, ct)
		}
		b, _ := io.ReadAll(resp.Body)
		return b
	}

	wantTags := map[string]byte{
		"/intentions?id=q:tent": wire.BinIntentions,
		"/related?id=p:P1":      wire.BinRelated,
		"/kg":                   wire.BinKG,
		"/similar?q=camping":    wire.BinSimilar,
	}
	for path, wantTag := range wantTags {
		b := get(path)
		r := wire.NewBinReader(b)
		version, tag, err := r.ReadHeader()
		if err != nil || version != wire.BinaryVersion || tag != wantTag {
			t.Errorf("GET %s header = (%d, %d, %v), want tag %d", path, version, tag, err, wantTag)
		}
	}

	// The /kg binary frame must agree with the JSON numbers.
	b := get("/kg")
	r := wire.NewBinReader(b)
	if _, _, err := r.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	nodes, _ := r.ReadUvarint()
	if int(nodes) != d.KG().NumNodes() {
		t.Errorf("binary /kg nodes = %d, want %d", nodes, d.KG().NumNodes())
	}
}
