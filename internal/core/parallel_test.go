package core

import (
	"reflect"
	"testing"
)

// TestPipelineWorkersEquivalence is the proof obligation of the parallel
// pipeline: a run with Workers=1 and a run with Workers=8 must produce
// byte-identical artifacts — KG node/edge sets, filter report, kept
// candidates, instruction data, and even the simulated cost meters
// (every charge is an exact multiple of 0.5 ms, so summation order
// cannot perturb the totals).
func TestPipelineWorkersEquivalence(t *testing.T) {
	seq := smallConfig()
	seq.Workers = 1
	par := smallConfig()
	par.Workers = 8

	r1, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}

	if r1.RawCandidates != r8.RawCandidates {
		t.Errorf("raw candidates: %d vs %d", r1.RawCandidates, r8.RawCandidates)
	}
	if !reflect.DeepEqual(r1.FilterReport, r8.FilterReport) {
		t.Errorf("filter reports differ:\n%+v\nvs\n%+v", r1.FilterReport, r8.FilterReport)
	}
	if !reflect.DeepEqual(r1.Kept, r8.Kept) {
		t.Error("kept candidates differ")
	}
	if !reflect.DeepEqual(r1.AnnotatedCandidates, r8.AnnotatedCandidates) {
		t.Error("annotation samples differ")
	}
	if !reflect.DeepEqual(r1.Instruction, r8.Instruction) {
		t.Error("instruction datasets differ")
	}
	if r1.ExpandedEdges != r8.ExpandedEdges {
		t.Errorf("expansion added %d vs %d edges", r1.ExpandedEdges, r8.ExpandedEdges)
	}

	if r1.KG.NumNodes() != r8.KG.NumNodes() || r1.KG.NumEdges() != r8.KG.NumEdges() {
		t.Fatalf("KG shape differs: %d/%d vs %d/%d",
			r1.KG.NumNodes(), r1.KG.NumEdges(), r8.KG.NumNodes(), r8.KG.NumEdges())
	}
	e1, e8 := r1.KG.Edges(), r8.KG.Edges()
	for i := range e1 {
		if e1[i] != e8[i] {
			t.Fatalf("KG edge %d differs:\n%+v\nvs\n%+v", i, e1[i], e8[i])
		}
	}
	n1, n8 := r1.KG.Nodes(), r8.KG.Nodes()
	if len(n1) != len(n8) {
		t.Fatalf("node counts differ: %d vs %d", len(n1), len(n8))
	}
	for i := range n1 {
		if !reflect.DeepEqual(n1[i], n8[i]) {
			t.Fatalf("KG node %d differs", i)
		}
	}

	if r1.TeacherCost != r8.TeacherCost {
		t.Errorf("teacher cost differs: %+v vs %+v", r1.TeacherCost, r8.TeacherCost)
	}
	if r1.CosmoLMCost != r8.CosmoLMCost {
		t.Errorf("cosmo-lm cost differs: %+v vs %+v", r1.CosmoLMCost, r8.CosmoLMCost)
	}
}

// TestPipelineWorkersDefaultEquivalence: the defaulted worker count
// (0 = GOMAXPROCS) is on the same output contract as any explicit one.
func TestPipelineWorkersDefaultEquivalence(t *testing.T) {
	auto := smallConfig()
	auto.ExpandWithCosmoLM = false
	one := smallConfig()
	one.ExpandWithCosmoLM = false
	one.Workers = 1

	ra, err := Run(auto)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	if ra.KG.NumEdges() != r1.KG.NumEdges() || ra.KG.NumNodes() != r1.KG.NumNodes() {
		t.Fatalf("default workers changed the KG: %d/%d vs %d/%d",
			ra.KG.NumNodes(), ra.KG.NumEdges(), r1.KG.NumNodes(), r1.KG.NumEdges())
	}
	if !reflect.DeepEqual(ra.FilterReport, r1.FilterReport) {
		t.Error("default workers changed the filter report")
	}
}
