package core

import (
	"testing"
)

// smallConfig returns a fast configuration for variation tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Behavior.CoBuyEvents = 3000
	cfg.Behavior.SearchEvents = 3000
	cfg.AnnotationBudget = 800
	return cfg
}

func TestPipelineWithoutExpansion(t *testing.T) {
	cfg := smallConfig()
	cfg.ExpandWithCosmoLM = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpandedEdges != 0 {
		t.Errorf("expansion disabled but added %d edges", res.ExpandedEdges)
	}
	if res.KG.NumEdges() == 0 {
		t.Error("KG empty without expansion")
	}
}

func TestPipelineBudgetLargerThanKept(t *testing.T) {
	cfg := smallConfig()
	cfg.AnnotationBudget = 1 << 20
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Annotations) != len(res.Kept) {
		t.Errorf("oversized budget should annotate everything: %d vs %d",
			len(res.Annotations), len(res.Kept))
	}
}

func TestPipelineDeterministicAcrossRuns(t *testing.T) {
	cfg := smallConfig()
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.KG.NumEdges() != r2.KG.NumEdges() || r1.KG.NumNodes() != r2.KG.NumNodes() {
		t.Fatalf("non-deterministic KG: %d/%d vs %d/%d",
			r1.KG.NumNodes(), r1.KG.NumEdges(), r2.KG.NumNodes(), r2.KG.NumEdges())
	}
	e1, e2 := r1.KG.Edges(), r2.KG.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestPipelineSeedChangesWorld(t *testing.T) {
	cfg := smallConfig()
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Behavior.Seed++
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.KG.NumEdges() == r2.KG.NumEdges() && r1.FilterReport.Kept == r2.FilterReport.Kept {
		t.Log("warning: different behavior seeds produced identical aggregates (possible but unlikely)")
	}
}

func TestPipelineStrictPlausibilityThreshold(t *testing.T) {
	cfg := smallConfig()
	cfg.PlausibilityThreshold = 0.99
	cfg.ExpandWithCosmoLM = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loose := smallConfig()
	loose.ExpandWithCosmoLM = false
	res2, err := Run(loose)
	if err != nil {
		t.Fatal(err)
	}
	if res.KG.NumEdges() >= res2.KG.NumEdges() {
		t.Errorf("stricter threshold should admit fewer edges: %d vs %d",
			res.KG.NumEdges(), res2.KG.NumEdges())
	}
}
