// Package core orchestrates the COSMO offline knowledge-generation
// pipeline of Figure 2: behavior sampling → QA-prompted teacher
// generation → coarse-grained filtering → re-weighted annotation →
// critic training and scoring → knowledge-graph assembly → instruction
// data → COSMO-LM training → KG expansion with COSMO-LM.
package core

import (
	"fmt"
	"math/rand"

	"cosmo/internal/annotation"
	"cosmo/internal/behavior"
	"cosmo/internal/catalog"
	"cosmo/internal/classifier"
	"cosmo/internal/cosmolm"
	"cosmo/internal/filter"
	"cosmo/internal/instruction"
	"cosmo/internal/kg"
	"cosmo/internal/know"
	"cosmo/internal/llm"
	"cosmo/internal/parallel"
	"cosmo/internal/sampling"
)

// Config assembles the per-stage configurations.
type Config struct {
	Seed        int64
	Catalog     catalog.Config
	Behavior    behavior.Config
	Sampling    sampling.Config
	Teacher     llm.Config
	Filter      filter.Config
	Annotation  annotation.Config
	Instruction instruction.Config
	CosmoLM     cosmolm.Config
	CriticDim   int
	CriticTrain classifier.TrainConfig

	// GenerationsPerBehavior is how many candidates the teacher emits
	// per behavior pair (the paper's numbered-list prompting).
	GenerationsPerBehavior int
	// AnnotationBudget is the number of candidates sent to annotators
	// (the paper uses 15k per behavior type; scale down for tests).
	AnnotationBudget int
	// PlausibilityThreshold gates KG admission ("candidates whose
	// plausibility score is above 0.5 are left").
	PlausibilityThreshold float64
	// ExpandWithCosmoLM controls the final KG-expansion stage: COSMO-LM
	// generates ExpandTopK extra assertions per sampled search behavior.
	ExpandWithCosmoLM bool
	ExpandTopK        int
	// CanonicalizeTails merges intention nodes that differ only by
	// inflection ("walk the dog" / "walking the dogs"), the paper's tail
	// canonicalization step.
	CanonicalizeTails bool

	// Workers bounds the fan-out of the embarrassingly parallel stages
	// (generation, filtering, critic scoring, KG expansion); <= 0 means
	// GOMAXPROCS. The worker count never changes the output: every
	// parallel stage draws randomness from per-item derived seeds and
	// merges results in input order (see DESIGN.md, "Determinism under
	// parallelism").
	Workers int

	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultConfig returns a laptop-scale end-to-end configuration.
func DefaultConfig() Config {
	return Config{
		Seed:                   42,
		Catalog:                catalog.Config{ProductsPerType: 4, Seed: 1},
		Behavior:               behavior.Config{Seed: 2, CoBuyEvents: 10000, SearchEvents: 10000, NoiseRate: 0.25, BroadQueryRate: 0.4},
		Sampling:               sampling.DefaultConfig(),
		Teacher:                llm.DefaultConfig(llm.OPT30B),
		Filter:                 filter.DefaultConfig(),
		Annotation:             annotation.DefaultConfig(),
		Instruction:            instruction.DefaultConfig(),
		CosmoLM:                cosmolm.DefaultConfig(),
		CriticDim:              1 << 15,
		CriticTrain:            classifier.DefaultTrainConfig(),
		GenerationsPerBehavior: 2,
		AnnotationBudget:       3000,
		PlausibilityThreshold:  0.5,
		ExpandWithCosmoLM:      true,
		ExpandTopK:             2,
		CanonicalizeTails:      true,
	}
}

// Result carries every artifact of a pipeline run.
type Result struct {
	Catalog *catalog.Catalog
	Log     *behavior.Log

	SampledCoBuys     []behavior.CoBuyPair
	SampledSearchBuys []behavior.SearchBuyPair

	RawCandidates int
	FilterReport  filter.Report
	Kept          []know.Candidate

	AnnotatedCandidates []know.Candidate
	Annotations         []annotation.Annotation
	AuditAccuracy       float64

	Critic      *classifier.Critic
	Instruction []instruction.Instance
	CosmoLM     *cosmolm.Model

	KG            *kg.Graph
	ExpandedEdges int

	TeacherCost llm.CostSnapshot
	CosmoLMCost llm.CostSnapshot
}

// Run executes the full offline pipeline.
func Run(cfg Config) (*Result, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &Result{}

	// Stage 0: world.
	res.Catalog = catalog.Generate(cfg.Catalog)
	res.Log = behavior.Simulate(res.Catalog, cfg.Behavior)
	logf("world: %d products, %d co-buy edges, %d search-buy edges",
		res.Catalog.Len(), len(res.Log.CoBuys), len(res.Log.SearchBuys))

	// Stage 1: behavior sampling (§3.2.1).
	smp := sampling.New(res.Log, cfg.Sampling)
	selected := smp.SampleProducts()
	res.SampledCoBuys = smp.SampleCoBuyPairs(selected)
	res.SampledSearchBuys = smp.SampleSearchBuyPairs(selected)
	logf("sampled: %d co-buy pairs, %d search-buy pairs",
		len(res.SampledCoBuys), len(res.SampledSearchBuys))

	// Stage 2: QA-prompted generation (§3.2.2), fanned out across
	// workers; each behavior draws from its own derived seed stream.
	teacher := llm.NewTeacher(res.Catalog, cfg.Teacher)
	cands := generate(res, teacher, cfg.GenerationsPerBehavior, cfg.Workers)
	res.RawCandidates = len(cands)
	logf("generated %d knowledge candidates", len(cands))

	// Stage 3: coarse-grained filtering (§3.3.1); per-candidate checks
	// run across workers against the read-only fitted models.
	fcfg := cfg.Filter
	if fcfg.Workers == 0 {
		fcfg.Workers = cfg.Workers
	}
	flt := filter.New(fcfg)
	kept, _, report := flt.Run(cands)
	res.Kept = kept
	res.FilterReport = report
	logf("filter kept %d of %d", report.Kept, report.Input)

	// Stage 4: re-weighted annotation sampling (Eq. 2) + human labels.
	annCands := selectForAnnotation(res, kept, cfg)
	oracle := annotation.NewOracle(cfg.Annotation)
	anns := oracle.AnnotateAll(annCands)
	res.AnnotatedCandidates = annCands
	res.Annotations = anns
	res.AuditAccuracy = oracle.Audit(annCands, anns, 0.05).Accuracy()
	logf("annotated %d candidates (audit accuracy %.3f)", len(anns), res.AuditAccuracy)

	// Stage 5: critic training and scoring (§3.3.2).
	labeled := make([]classifier.Labeled, len(annCands))
	for i := range annCands {
		labeled[i] = classifier.Labeled{
			Candidate: annCands[i],
			Plausible: anns[i].Plausible(),
			Typical:   anns[i].Typical(),
		}
	}
	res.Critic = classifier.TrainCritic(cfg.CriticDim, labeled, cfg.CriticTrain)
	scored := res.Critic.ScoreParallel(kept, cfg.Workers)

	// Stage 6: knowledge-graph assembly.
	res.KG = kg.New()
	admitted := 0
	for _, c := range scored {
		if c.PlausibleScore <= cfg.PlausibilityThreshold {
			continue
		}
		if err := res.KG.AddAssertion(c); err != nil {
			return nil, fmt.Errorf("core: kg assembly: %w", err)
		}
		admitted++
	}
	logf("kg: admitted %d assertions -> %d nodes, %d edges",
		admitted, res.KG.NumNodes(), res.KG.NumEdges())

	// Stage 7: instruction data + COSMO-LM (§3.4).
	res.Instruction = instruction.NewBuilder(cfg.Instruction).Build(annCands, anns)
	res.CosmoLM = cosmolm.Train(res.Instruction, cfg.CosmoLM)
	logf("instruction data: %d instances; cosmo-lm tails: %d",
		len(res.Instruction), res.CosmoLM.KnownTails())

	// Stage 8: KG expansion with COSMO-LM — the step that scales the
	// graph beyond the teacher-generated candidates.
	if cfg.ExpandWithCosmoLM {
		res.ExpandedEdges = expand(res, cfg)
		logf("kg expansion added %d edges -> %d total", res.ExpandedEdges, res.KG.NumEdges())
	}

	if cfg.CanonicalizeTails {
		before := res.KG.NumNodes()
		res.KG = res.KG.Canonicalize()
		logf("canonicalized tails: %d -> %d nodes", before, res.KG.NumNodes())
	}

	// Relabel product nodes with their catalog titles for readability
	// (expansion may have added nodes, so this runs last).
	for _, n := range res.KG.Nodes() {
		if n.Type != kg.NodeProduct {
			continue
		}
		if p, ok := res.Catalog.ByID(n.Label); ok {
			n.Label = p.Title
			res.KG.AddNode(n)
		}
	}

	res.TeacherCost = teacher.Cost()
	res.CosmoLMCost = res.CosmoLM.Cost()
	return res, nil
}

// generate runs the teacher over every sampled behavior across workers.
// Each behavior draws from its own derived random stream (master seed ⊕
// behavior index via llm.DeriveSeed), so the candidates for one behavior
// never depend on how many draws other behaviors consumed — the property
// that makes the fan-out order-independent. Search-buy indices are
// offset past the co-buy range to keep the streams disjoint. The merge
// assigns candidate IDs in behavior order, reproducing the sequential
// numbering for every worker count.
func generate(res *Result, teacher *llm.Teacher, perBehavior, workers int) []know.Candidate {
	coGroups := parallel.Map(workers, res.SampledCoBuys, func(i int, e behavior.CoBuyPair) []know.Candidate {
		pa, _ := res.Catalog.ByID(e.A)
		pb, _ := res.Catalog.ByID(e.B)
		gens := teacher.GenerateCoBuyAt(uint64(i), pa, pb, perBehavior)
		out := make([]know.Candidate, 0, len(gens))
		for _, g := range gens {
			out = append(out, know.Candidate{
				Behavior: know.CoBuy, Domain: pa.Category,
				ProductA: e.A, ProductB: e.B, TypeA: pa.Type, TypeB: pb.Type,
				ContextText:     pa.Title + " and " + pb.Title,
				Text:            g.Text,
				Truth:           g.Truth,
				PairIntentional: e.Intentional,
			})
		}
		return out
	})
	base := uint64(len(res.SampledCoBuys))
	sbGroups := parallel.Map(workers, res.SampledSearchBuys, func(i int, e behavior.SearchBuyPair) []know.Candidate {
		p, _ := res.Catalog.ByID(e.ProductID)
		gens := teacher.GenerateSearchBuyAt(base+uint64(i), e.Query, p, perBehavior)
		out := make([]know.Candidate, 0, len(gens))
		for _, g := range gens {
			out = append(out, know.Candidate{
				Behavior: know.SearchBuy, Domain: p.Category,
				Query: e.Query, ProductA: e.ProductID, TypeA: p.Type,
				ContextText:     e.Query + " " + p.Title,
				Text:            g.Text,
				Truth:           g.Truth,
				PairIntentional: e.Intentional,
			})
		}
		return out
	})
	var cands []know.Candidate
	id := 0
	for _, groups := range [][][]know.Candidate{coGroups, sbGroups} {
		for _, group := range groups {
			for _, c := range group {
				id++
				c.ID = id
				cands = append(cands, c)
			}
		}
	}
	return cands
}

// selectForAnnotation applies the Eq. 2 re-weighting to pick the
// annotation sample from the kept candidates.
func selectForAnnotation(res *Result, kept []know.Candidate, cfg Config) []know.Candidate {
	if cfg.AnnotationBudget >= len(kept) {
		return kept
	}
	// Knowledge frequency f(t): how often each tail text occurs.
	freq := map[string]int{}
	for _, c := range kept {
		freq[c.Text]++
	}
	weights := make([]float64, len(kept))
	for i, c := range kept {
		popQ := res.Log.QueryDegree(c.Query)
		popP := res.Log.CoBuyDegree(c.ProductA) + res.Log.ProductQueryDegree(c.ProductA)
		weights[i] = sampling.AnnotationWeight(freq[c.Text], popQ, popP)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idxs := sampling.WeightedSample(rng, weights, cfg.AnnotationBudget)
	out := make([]know.Candidate, len(idxs))
	for i, idx := range idxs {
		out[i] = kept[idx]
	}
	return out
}

// expand generates additional assertions with COSMO-LM for every sampled
// search behavior and admits those whose predicted plausibility passes
// the threshold. Generation and the two prediction-head calls fan out
// across workers (the trained model is read-only); KG admission is
// order-sensitive (the graph dedupes edges), so it runs sequentially
// over the order-preserved groups.
func expand(res *Result, cfg Config) int {
	groups := expandCandidates(res, cfg)
	return admitExpansion(res, groups)
}

// expandCandidates computes, in parallel, the threshold-passing expansion
// candidates per sampled search behavior, in behavior order.
func expandCandidates(res *Result, cfg Config) [][]know.Candidate {
	return parallel.Map(cfg.Workers, res.SampledSearchBuys, func(i int, e behavior.SearchBuyPair) []know.Candidate {
		p, _ := res.Catalog.ByID(e.ProductID)
		ctx := cosmolm.SearchContext(e.Query, p.Title)
		var out []know.Candidate
		for _, g := range res.CosmoLM.Generate(ctx, p.Category, "", cfg.ExpandTopK) {
			_, pProb := res.CosmoLM.Predict(instruction.TaskPlausibility,
				ctx+" | explanation: "+g.Text)
			_, tProb := res.CosmoLM.Predict(instruction.TaskTypicality,
				ctx+" | explanation: "+g.Text)
			if pProb <= cfg.PlausibilityThreshold {
				continue
			}
			out = append(out, know.Candidate{
				Behavior: know.SearchBuy, Domain: p.Category,
				Query: e.Query, ProductA: e.ProductID, TypeA: p.Type,
				Relation: g.Relation, Tail: g.Tail, Text: g.Text,
				PlausibleScore: pProb, TypicalScore: tProb,
			})
		}
		return out
	})
}

// admitExpansion admits expansion candidates into the KG in behavior
// order and returns the number of edges added.
func admitExpansion(res *Result, groups [][]know.Candidate) int {
	added := 0
	for _, group := range groups {
		for _, c := range group {
			before := res.KG.NumEdges()
			if err := res.KG.AddAssertion(c); err == nil && res.KG.NumEdges() > before {
				added += res.KG.NumEdges() - before
			}
		}
	}
	return added
}
