package core

import (
	"testing"

	"cosmo/internal/filter"
	"cosmo/internal/llm"
)

// Per-stage pipeline benchmarks. Each exercises one embarrassingly
// parallel stage with Workers=0 (GOMAXPROCS), so running with
// `-cpu 1,4,8` sweeps the worker count and shows the fan-out speedup:
//
//	go test -run='^$' -bench=BenchmarkPipeline -cpu 1,4,8 ./internal/core
//
// The stage inputs come from one shared end-to-end run (the cached
// pipeline fixture) so every -cpu variant benchmarks identical work.

func BenchmarkPipelineGenerate(b *testing.B) {
	res := run(b)
	cfg := DefaultConfig()
	teacher := llm.NewTeacher(res.Catalog, cfg.Teacher)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands := generate(res, teacher, cfg.GenerationsPerBehavior, 0)
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

func BenchmarkPipelineFilter(b *testing.B) {
	res := run(b)
	cfg := DefaultConfig()
	teacher := llm.NewTeacher(res.Catalog, cfg.Teacher)
	cands := generate(res, teacher, cfg.GenerationsPerBehavior, 0)
	fcfg := cfg.Filter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kept, _, _ := filter.New(fcfg).Run(cands)
		if len(kept) == 0 {
			b.Fatal("filter kept nothing")
		}
	}
}

func BenchmarkPipelineScore(b *testing.B) {
	res := run(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scored := res.Critic.ScoreParallel(res.Kept, 0)
		if len(scored) != len(res.Kept) {
			b.Fatal("score count mismatch")
		}
	}
}

func BenchmarkPipelineExpand(b *testing.B) {
	res := run(b)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups := expandCandidates(res, cfg)
		if len(groups) != len(res.SampledSearchBuys) {
			b.Fatal("expansion group count mismatch")
		}
	}
}
