package core

import (
	"testing"

	"cosmo/internal/catalog"
	"cosmo/internal/know"
)

// runOnce caches one pipeline run across tests (it is the expensive
// end-to-end fixture).
var cached *Result

func run(tb testing.TB) *Result {
	tb.Helper()
	if cached != nil {
		return cached
	}
	res, err := Run(DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	cached = res
	return res
}

func TestPipelineEndToEnd(t *testing.T) {
	res := run(t)
	if res.RawCandidates == 0 {
		t.Fatal("no candidates generated")
	}
	if res.FilterReport.Kept == 0 || res.FilterReport.Kept == res.RawCandidates {
		t.Errorf("filter kept %d of %d", res.FilterReport.Kept, res.RawCandidates)
	}
	if len(res.Annotations) == 0 {
		t.Fatal("no annotations")
	}
	if res.KG.NumEdges() == 0 {
		t.Fatal("empty knowledge graph")
	}
	if res.CosmoLM.KnownTails() == 0 {
		t.Fatal("cosmo-lm learned nothing")
	}
}

func TestPipelineAuditQuality(t *testing.T) {
	res := run(t)
	// The paper's bar: audited annotation accuracy above 90%.
	if res.AuditAccuracy < 0.90 {
		t.Errorf("audit accuracy %.3f below the paper's 0.90 bar", res.AuditAccuracy)
	}
}

func TestPipelineAnnotationBudgetRespected(t *testing.T) {
	res := run(t)
	if len(res.Annotations) > DefaultConfig().AnnotationBudget {
		t.Errorf("annotated %d > budget %d", len(res.Annotations), DefaultConfig().AnnotationBudget)
	}
}

func TestPipelineKGPrecision(t *testing.T) {
	// Edges admitted to the KG come from candidates that passed
	// filtering + critic thresholding; their ground-truth plausible rate
	// must be well above the raw generation plausible rate. Measured on
	// the scored candidates the pipeline admitted (teacher provenance).
	res := run(t)
	scored := res.Critic.Score(res.Kept)
	rawPlausible, admittedPlausible, admitted := 0, 0, 0
	for _, c := range scored {
		if c.Truth.Plausible {
			rawPlausible++
		}
		if c.PlausibleScore > DefaultConfig().PlausibilityThreshold {
			admitted++
			if c.Truth.Plausible {
				admittedPlausible++
			}
		}
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	rawRate := float64(rawPlausible) / float64(len(scored))
	admittedRate := float64(admittedPlausible) / float64(admitted)
	t.Logf("plausible rate: kept=%.3f admitted=%.3f", rawRate, admittedRate)
	if admittedRate < rawRate {
		t.Errorf("critic thresholding should not lower precision: %.3f -> %.3f", rawRate, admittedRate)
	}
	if admittedRate < 0.85 {
		t.Errorf("admitted plausible rate %.3f too low", admittedRate)
	}
}

func TestPipelineKGCoversAllDomains(t *testing.T) {
	res := run(t)
	stats := res.KG.ComputeStats()
	if stats.Domains < 18 {
		t.Errorf("KG covers %d domains, want 18", stats.Domains)
	}
	if stats.Relations < 8 {
		t.Errorf("KG has %d relation types; want broad coverage", stats.Relations)
	}
}

func TestPipelineExpansionAddsEdges(t *testing.T) {
	res := run(t)
	if res.ExpandedEdges == 0 {
		t.Error("COSMO-LM expansion added no edges")
	}
}

func TestPipelineCostAdvantage(t *testing.T) {
	res := run(t)
	// Per-call simulated cost: teacher vs. COSMO-LM.
	tc, cc := res.TeacherCost, res.CosmoLMCost
	if tc.Calls == 0 || cc.Calls == 0 {
		t.Fatal("missing cost accounting")
	}
	perTeacher := tc.SimulatedMs / float64(tc.Calls)
	perCosmo := cc.SimulatedMs / float64(cc.Calls)
	t.Logf("per-call: teacher=%.0fms cosmo-lm=%.0fms", perTeacher, perCosmo)
	if perCosmo*2 > perTeacher {
		t.Errorf("COSMO-LM per-call %.0fms not well below teacher %.0fms", perCosmo, perTeacher)
	}
}

func TestPipelineInstructionCoverage(t *testing.T) {
	res := run(t)
	doms := map[catalog.Category]bool{}
	for _, in := range res.Instruction {
		doms[in.Domain] = true
	}
	if len(doms) < 16 {
		t.Errorf("instruction data covers %d domains; want near 18", len(doms))
	}
}

func TestPipelineBehaviorTypesInKG(t *testing.T) {
	res := run(t)
	co, sb := 0, 0
	for _, e := range res.KG.Edges() {
		switch e.Behavior {
		case know.CoBuy:
			co++
		case know.SearchBuy:
			sb++
		}
	}
	if co == 0 || sb == 0 {
		t.Errorf("KG missing a behavior type: co-buy=%d search-buy=%d", co, sb)
	}
}
