// Package know defines the knowledge-candidate record that flows through
// the COSMO pipeline stages: generation → coarse filtering → annotation →
// critic scoring → knowledge-graph assembly.
package know

import (
	"fmt"

	"cosmo/internal/catalog"
	"cosmo/internal/llm"
	"cosmo/internal/relations"
)

// BehaviorType distinguishes the two user-behavior sources.
type BehaviorType string

// The two behavior types of the paper.
const (
	CoBuy     BehaviorType = "co-buy"
	SearchBuy BehaviorType = "search-buy"
)

// Candidate is one knowledge candidate: a generation for one behavior.
type Candidate struct {
	ID       int
	Behavior BehaviorType
	Domain   catalog.Category

	// Head context. For search-buy, Query and ProductA are set; for
	// co-buy, ProductA and ProductB are set.
	Query              string
	ProductA, ProductB string
	// ContextText is the verbalized behavior (query + title, or both
	// titles) used by the similarity filter.
	ContextText string
	// TypeA and TypeB carry the product-type labels for rule filtering.
	TypeA, TypeB string

	// Raw generated text from the teacher.
	Text string
	// Parsed triple fields (filled by the coarse filter).
	Relation relations.Relation
	Tail     string

	// Truth is the simulator's hidden ground truth; only the annotation
	// oracle and evaluation code may read it.
	Truth llm.Truth
	// PairIntentional is pair-level ground truth: whether the behavior
	// itself was intentional (vs. a random/noise pair). Oracle-only.
	PairIntentional bool

	// Critic scores populated after classifier scoring.
	PlausibleScore float64
	TypicalScore   float64
}

// Key identifies a candidate's (head, text) combination for dedup and
// co-occurrence statistics.
func (c Candidate) Key() string {
	return fmt.Sprintf("%s|%s|%s|%s|%s", c.Behavior, c.Query, c.ProductA, c.ProductB, c.Text)
}

// HeadKey identifies the behavior head (the pair), ignoring the text.
func (c Candidate) HeadKey() string {
	return fmt.Sprintf("%s|%s|%s|%s", c.Behavior, c.Query, c.ProductA, c.ProductB)
}
