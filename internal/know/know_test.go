package know

import (
	"testing"
	"testing/quick"
)

func TestKeyDistinguishesTextAndHead(t *testing.T) {
	base := Candidate{Behavior: SearchBuy, Query: "camping", ProductA: "P1", Text: "used for camping"}
	sameHead := base
	sameHead.Text = "capable of sheltering"
	if base.Key() == sameHead.Key() {
		t.Error("different texts must have different keys")
	}
	if base.HeadKey() != sameHead.HeadKey() {
		t.Error("same head must share HeadKey")
	}
	otherHead := base
	otherHead.ProductA = "P2"
	if base.HeadKey() == otherHead.HeadKey() {
		t.Error("different heads must differ")
	}
}

func TestKeyDeterministicProperty(t *testing.T) {
	f := func(q, pa, pb, text string) bool {
		c := Candidate{Behavior: CoBuy, Query: q, ProductA: pa, ProductB: pb, Text: text}
		return c.Key() == c.Key() && c.HeadKey() == c.HeadKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBehaviorConstants(t *testing.T) {
	if CoBuy == SearchBuy {
		t.Error("behavior types must differ")
	}
	if string(CoBuy) != "co-buy" || string(SearchBuy) != "search-buy" {
		t.Error("behavior surface forms changed; serialized data depends on them")
	}
}
