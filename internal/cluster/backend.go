package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"cosmo/internal/serving"
)

// Health is a node's probed state, ordered by desirability.
type Health int32

const (
	// HealthReady: the node answers /readyz 200 and takes new keys.
	HealthReady Health = iota
	// HealthDraining: the node announced a graceful drain — it still
	// answers in-flight and retry traffic but must leave replica sets.
	HealthDraining
	// HealthDown: the probe failed or the node reported not-ready.
	HealthDown
)

// String renders the state for metrics and logs.
func (h Health) String() string {
	switch h {
	case HealthReady:
		return "ready"
	case HealthDraining:
		return "draining"
	case HealthDown:
		return "down"
	}
	return fmt.Sprintf("Health(%d)", int32(h))
}

// Result is one backend response: the status, content type and body of
// the proxied query endpoint. Body is owned by the caller.
type Result struct {
	Status      int
	ContentType string
	Body        []byte
}

// Backend is one serving node as the router sees it: a query transport
// plus a health probe. Implementations must be safe for concurrent use
// and honor ctx cancellation in Do (a hedged race cancels the loser).
type Backend interface {
	// Do proxies one GET query (path like "/intent", rawQuery like
	// "q=camping") and returns the node's response. A transport-level
	// failure (refused connection, timeout) returns an error; an HTTP
	// error status is returned in Result for the router to classify.
	Do(ctx context.Context, path, rawQuery string) (Result, error)
	// Check probes the node's /readyz-equivalent state.
	Check(ctx context.Context) Health
}

// LocalBackend wraps an in-process serving.Deployment as a Backend —
// the 1-node case, and the hermetic substrate for multi-node chaos
// harnesses: requests run straight through the deployment's HTTP
// handler with no sockets.
type LocalBackend struct {
	dep     *serving.Deployment
	handler http.Handler
}

// NewLocalBackend builds a Backend over the deployment's HTTP handler.
func NewLocalBackend(dep *serving.Deployment) *LocalBackend {
	return &LocalBackend{dep: dep, handler: serving.NewHTTPHandler(dep)}
}

// Do runs the request through the in-process handler.
func (b *LocalBackend) Do(ctx context.Context, path, rawQuery string) (Result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://local"+path, nil)
	if err != nil {
		return Result{}, err
	}
	req.URL.RawQuery = rawQuery
	rec := newRecorder()
	b.handler.ServeHTTP(rec, req)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	body := make([]byte, rec.body.Len())
	copy(body, rec.body.Bytes())
	return Result{
		Status:      rec.status,
		ContentType: rec.header.Get("Content-Type"),
		Body:        body,
	}, nil
}

// Check mirrors the /readyz contract without a round trip: draining
// beats everything (the node said so itself), then warmup/breaker
// readiness.
func (b *LocalBackend) Check(ctx context.Context) Health {
	if ctx.Err() != nil {
		return HealthDown
	}
	if b.dep.Draining() {
		return HealthDraining
	}
	if !b.dep.Ready() {
		return HealthDown
	}
	if rs, ok := b.dep.ResilienceStats(); ok && rs.BreakerState == serving.BreakerOpen {
		return HealthDown
	}
	return HealthReady
}

// recorder is a minimal in-process http.ResponseWriter (the stdlib's
// httptest recorder, without importing a test package into the serving
// tier).
type recorder struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder {
	return &recorder{status: http.StatusOK, header: http.Header{}}
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(status int) { r.status = status }

func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

// HTTPBackend is a Backend over a real cosmo-serve instance.
type HTTPBackend struct {
	base   string
	client *http.Client
	// maxBody bounds one proxied response body.
	maxBody int64
}

// DefaultMaxProxyBody bounds one proxied response body (1 MiB matches
// the serve side's own /batch request cap).
const DefaultMaxProxyBody = 1 << 20

// NewHTTPBackend builds a Backend that queries the cosmo-serve at base
// (e.g. "http://10.0.0.3:8080"). client may be nil for a default with
// no global timeout — attempts are bounded per call by the router's
// attempt context.
func NewHTTPBackend(base string, client *http.Client) *HTTPBackend {
	if client == nil {
		client = &http.Client{}
	}
	return &HTTPBackend{
		base:    strings.TrimRight(base, "/"),
		client:  client,
		maxBody: DefaultMaxProxyBody,
	}
}

// Do proxies one GET to the node.
func (b *HTTPBackend) Do(ctx context.Context, path, rawQuery string) (Result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+path, nil)
	if err != nil {
		return Result{}, err
	}
	req.URL.RawQuery = rawQuery
	resp, err := b.client.Do(req)
	if err != nil {
		return Result{}, err
	}
	defer resp.Body.Close() //cosmo:lint-ignore dropped-error best-effort close after the body was read; failures surface on the read

	body, err := io.ReadAll(io.LimitReader(resp.Body, b.maxBody))
	if err != nil {
		return Result{}, err
	}
	return Result{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		Body:        body,
	}, nil
}

// Check probes the node's /readyz. A 200 is ready; a non-200 whose body
// says "draining" is a graceful drain (the cosmo-serve -drain-grace
// protocol); anything else — including transport failure — is down.
func (b *HTTPBackend) Check(ctx context.Context) Health {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/readyz", nil)
	if err != nil {
		return HealthDown
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return HealthDown
	}
	defer resp.Body.Close() //cosmo:lint-ignore dropped-error best-effort close on a readiness probe
	body, err := io.ReadAll(io.LimitReader(resp.Body, 512))
	if err != nil {
		return HealthDown
	}
	if resp.StatusCode == http.StatusOK {
		return HealthReady
	}
	if strings.Contains(string(body), "draining") {
		return HealthDraining
	}
	return HealthDown
}
