package cluster

import (
	"fmt"
	"testing"
)

func allEligible(int) bool { return true }

func TestRingWalkDistinctAndBounded(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	r := NewRing(names, 64)
	for k := 0; k < 200; k++ {
		key := fmt.Sprintf("key-%d", k)
		for max := 1; max <= len(names)+1; max++ {
			got := r.Walk(nil, key, max, allEligible)
			want := max
			if want > len(names) {
				want = len(names)
			}
			if len(got) != want {
				t.Fatalf("Walk(%q, max=%d) returned %d nodes, want %d", key, max, len(got), want)
			}
			seen := map[int]bool{}
			for _, n := range got {
				if n < 0 || n >= len(names) {
					t.Fatalf("Walk(%q) returned out-of-range node %d", key, n)
				}
				if seen[n] {
					t.Fatalf("Walk(%q) returned duplicate node %d: %v", key, n, got)
				}
				seen[n] = true
			}
		}
	}
}

func TestRingDeterministicAcrossConstruction(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	r1 := NewRing(names, 128)
	r2 := NewRing(names, 128)
	for k := 0; k < 500; k++ {
		key := fmt.Sprintf("key-%d", k)
		g1 := r1.Walk(nil, key, 0, allEligible)
		g2 := r2.Walk(nil, key, 0, allEligible)
		if len(g1) != len(g2) {
			t.Fatalf("key %q: walks differ in length: %v vs %v", key, g1, g2)
		}
		for i := range g1 {
			if g1[i] != g2[i] {
				t.Fatalf("key %q: walks differ: %v vs %v", key, g1, g2)
			}
		}
	}
}

// Membership — not the order nodes were listed in — determines the
// layout: the same names in a different slice order must produce the
// same name sequence for every key.
func TestRingOrderIndependentLayout(t *testing.T) {
	a := []string{"n0", "n1", "n2", "n3"}
	b := []string{"n3", "n1", "n0", "n2"}
	ra := NewRing(a, 128)
	rb := NewRing(b, 128)
	for k := 0; k < 300; k++ {
		key := fmt.Sprintf("key-%d", k)
		wa := ra.Walk(nil, key, 0, allEligible)
		wb := rb.Walk(nil, key, 0, allEligible)
		if len(wa) != len(wb) {
			t.Fatalf("key %q: %v vs %v", key, wa, wb)
		}
		for i := range wa {
			if a[wa[i]] != b[wb[i]] {
				t.Fatalf("key %q: name sequence differs at %d: %s vs %s",
					key, i, a[wa[i]], b[wb[i]])
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	names := []string{"a", "b", "c"}
	r := NewRing(names, DefaultVirtualNodes)
	counts := make([]int, len(names))
	const keys = 30000
	for k := 0; k < keys; k++ {
		got := r.Walk(nil, fmt.Sprintf("key-%d", k), 1, allEligible)
		counts[got[0]]++
	}
	// With 128 vnodes per node the spread should be well within
	// [20%, 47%] of a perfect 33% split.
	for i, c := range counts {
		frac := float64(c) / keys
		if frac < 0.20 || frac > 0.47 {
			t.Fatalf("node %s owns %.1f%% of keys; spread too uneven: %v",
				names[i], frac*100, counts)
		}
	}
}

// Excluding a node must shift only that node's keys, each to its next
// replica in the original walk order — deterministic failover.
func TestRingFailoverDeterminism(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	r := NewRing(names, 128)
	const down = 2 // exclude "c"
	up := func(i int) bool { return i != down }
	for k := 0; k < 500; k++ {
		key := fmt.Sprintf("key-%d", k)
		full := r.Walk(nil, key, 0, allEligible)
		got := r.Walk(nil, key, 0, up)
		want := make([]int, 0, len(full)-1)
		for _, n := range full {
			if n != down {
				want = append(want, n)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("key %q: got %v want %v", key, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("key %q: exclusion reordered survivors: got %v want %v", key, got, want)
			}
		}
	}
}

// Clusters past 64 nodes take the wide (slice-visited) walk path; it
// must behave identically to the bitmap path.
func TestRingWalkWide(t *testing.T) {
	names := make([]string, 70)
	for i := range names {
		names[i] = fmt.Sprintf("node-%02d", i)
	}
	r := NewRing(names, 16)
	for k := 0; k < 100; k++ {
		key := fmt.Sprintf("key-%d", k)
		got := r.Walk(nil, key, 0, allEligible)
		if len(got) != len(names) {
			t.Fatalf("key %q: wide walk returned %d of %d nodes", key, len(got), len(names))
		}
		seen := map[int]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("key %q: duplicate node %d in wide walk", key, n)
			}
			seen[n] = true
		}
	}
}

func TestRingReusesDst(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 32)
	dst := make([]int, 0, 3)
	g1 := r.Walk(dst, "k1", 0, allEligible)
	g2 := r.Walk(dst[:0], "k2", 0, allEligible)
	if len(g1) != 3 || len(g2) != 3 {
		t.Fatalf("walks returned %d and %d nodes, want 3 and 3", len(g1), len(g2))
	}
}
