package cluster

import (
	"errors"
	"net/http"
)

// NewHTTPHandler exposes a Router over HTTP with the same query surface
// as a single cosmo-serve node:
//
//	GET /intent?q=...      routed by q
//	GET /intentions?id=... routed by id
//	GET /related?id=...    routed by id
//	GET /similar?q=...     routed by q
//	GET /kg                routed by the empty key (a stable node)
//	GET /metrics           router + per-node counters (plaintext)
//	GET /readyz            503 only when zero nodes are eligible
//	GET /healthz           liveness (the router process is up)
//
// Query endpoints answer the chosen node's status, content type and
// body verbatim; 503 means no node was eligible and 502 means every
// eligible replica failed.
func NewHTTPHandler(r *Router) http.Handler {
	mux := http.NewServeMux()
	proxy := func(keyParam string) http.HandlerFunc {
		return func(w http.ResponseWriter, req *http.Request) {
			key := req.URL.Query().Get(keyParam)
			if key == "" {
				http.Error(w, "missing "+keyParam+" parameter", http.StatusBadRequest)
				return
			}
			serveRouted(r, w, req, key)
		}
	}
	mux.HandleFunc("/intent", proxy("q"))
	mux.HandleFunc("/intentions", proxy("id"))
	mux.HandleFunc("/related", proxy("id"))
	mux.HandleFunc("/similar", proxy("q"))
	mux.HandleFunc("/kg", func(w http.ResponseWriter, req *http.Request) {
		serveRouted(r, w, req, "")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WriteMetrics(w)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		if r.EligibleNodes() == 0 {
			http.Error(w, "no eligible nodes", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready")) //cosmo:lint-ignore dropped-error best-effort readiness response; a write failure means the client is gone
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok")) //cosmo:lint-ignore dropped-error best-effort liveness response; a write failure means the client is gone
	})
	return mux
}

// serveRouted routes one request and relays the winning node's answer.
func serveRouted(r *Router, w http.ResponseWriter, req *http.Request, key string) {
	res, err := r.Do(req.Context(), Request{
		Key:      key,
		Path:     req.URL.Path,
		RawQuery: req.URL.RawQuery,
	})
	if err != nil {
		if errors.Is(err, ErrNoEligibleNodes) {
			http.Error(w, "no eligible nodes", http.StatusServiceUnavailable)
			return
		}
		http.Error(w, "all replicas failed", http.StatusBadGateway)
		return
	}
	if res.ContentType != "" {
		w.Header().Set("Content-Type", res.ContentType)
	}
	w.WriteHeader(res.Status)
	_, _ = w.Write(res.Body) //cosmo:lint-ignore dropped-error best-effort response write; a write failure means the client is gone
}
