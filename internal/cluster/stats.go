package cluster

import (
	"fmt"
	"io"

	"cosmo/internal/serving"
)

// NodeStats is one node's routing counters and latency view.
type NodeStats struct {
	Name         string
	Health       Health
	BreakerState serving.BreakerState
	BreakerOpens uint64
	Primaries    uint64
	Hedges       uint64
	HedgeWins    uint64
	Failovers    uint64
	Exclusions   uint64
	Successes    uint64
	Failures     uint64
	P50, P99     float64 // successful-attempt latency (ms)
	P999         float64
}

// Stats is a point-in-time snapshot of the router's counters.
type Stats struct {
	Requests     uint64
	Errors       uint64
	Hedges       uint64
	HedgeWins    uint64
	Failovers    uint64
	NoReplica    uint64
	HedgeDelayMs float64
	P50, P99     float64 // end-to-end routed latency (ms)
	P999         float64
	Nodes        []NodeStats
}

// HedgeWinRatio is the fraction of hedges that beat their primary.
func (s Stats) HedgeWinRatio() float64 {
	if s.Hedges == 0 {
		return 0
	}
	return float64(s.HedgeWins) / float64(s.Hedges)
}

// Stats snapshots the router and every node.
func (r *Router) Stats() Stats {
	e2e := r.e2e.Snapshot()
	s := Stats{
		Requests:     r.requests.Load(),
		Errors:       r.errors.Load(),
		Hedges:       r.hedges.Load(),
		HedgeWins:    r.hedgeWins.Load(),
		Failovers:    r.failovers.Load(),
		NoReplica:    r.noReplica.Load(),
		HedgeDelayMs: float64(r.hedgeDelay()) / 1e6,
		P50:          e2e.Quantile(0.50),
		P99:          e2e.Quantile(0.99),
		P999:         e2e.Quantile(0.999),
		Nodes:        make([]NodeStats, 0, len(r.nodes)),
	}
	for _, nd := range r.nodes {
		h := nd.hist.Snapshot()
		s.Nodes = append(s.Nodes, NodeStats{
			Name:         nd.name,
			Health:       Health(nd.health.Load()),
			BreakerState: nd.brk.State(),
			BreakerOpens: nd.brk.Opens(),
			Primaries:    nd.primaries.Load(),
			Hedges:       nd.hedges.Load(),
			HedgeWins:    nd.hedgeWins.Load(),
			Failovers:    nd.failovers.Load(),
			Exclusions:   nd.exclusions.Load(),
			Successes:    nd.successes.Load(),
			Failures:     nd.failures.Load(),
			P50:          h.Quantile(0.50),
			P99:          h.Quantile(0.99),
			P999:         h.Quantile(0.999),
		})
	}
	return s
}

// WriteMetrics renders the router's Prometheus-style plaintext metrics
// (the body of cosmo-router's /metrics, and the chaos smoke's artifact
// dump).
func (r *Router) WriteMetrics(w io.Writer) {
	s := r.Stats()
	fmt.Fprintf(w, "cosmo_router_nodes %d\n", len(s.Nodes))
	fmt.Fprintf(w, "cosmo_router_eligible_nodes %d\n", r.EligibleNodes())
	fmt.Fprintf(w, "cosmo_router_requests_total %d\n", s.Requests)
	fmt.Fprintf(w, "cosmo_router_errors_total %d\n", s.Errors)
	fmt.Fprintf(w, "cosmo_router_hedges_total %d\n", s.Hedges)
	fmt.Fprintf(w, "cosmo_router_hedge_wins_total %d\n", s.HedgeWins)
	fmt.Fprintf(w, "cosmo_router_hedge_win_ratio %g\n", s.HedgeWinRatio())
	fmt.Fprintf(w, "cosmo_router_failovers_total %d\n", s.Failovers)
	fmt.Fprintf(w, "cosmo_router_no_replica_total %d\n", s.NoReplica)
	fmt.Fprintf(w, "cosmo_router_hedge_delay_ms %g\n", s.HedgeDelayMs)
	fmt.Fprintf(w, "cosmo_router_latency_ms{quantile=\"0.5\"} %g\n", s.P50)
	fmt.Fprintf(w, "cosmo_router_latency_ms{quantile=\"0.99\"} %g\n", s.P99)
	fmt.Fprintf(w, "cosmo_router_latency_ms{quantile=\"0.999\"} %g\n", s.P999)
	for _, n := range s.Nodes {
		fmt.Fprintf(w, "cosmo_node_health{node=%q} %d\n", n.Name, n.Health)
		fmt.Fprintf(w, "cosmo_node_breaker_state{node=%q} %d\n", n.Name, n.BreakerState)
		fmt.Fprintf(w, "cosmo_node_breaker_opens_total{node=%q} %d\n", n.Name, n.BreakerOpens)
		fmt.Fprintf(w, "cosmo_node_routes_total{node=%q} %d\n", n.Name, n.Primaries)
		fmt.Fprintf(w, "cosmo_node_hedges_total{node=%q} %d\n", n.Name, n.Hedges)
		fmt.Fprintf(w, "cosmo_node_hedge_wins_total{node=%q} %d\n", n.Name, n.HedgeWins)
		fmt.Fprintf(w, "cosmo_node_failovers_total{node=%q} %d\n", n.Name, n.Failovers)
		fmt.Fprintf(w, "cosmo_node_exclusions_total{node=%q} %d\n", n.Name, n.Exclusions)
		fmt.Fprintf(w, "cosmo_node_successes_total{node=%q} %d\n", n.Name, n.Successes)
		fmt.Fprintf(w, "cosmo_node_failures_total{node=%q} %d\n", n.Name, n.Failures)
		fmt.Fprintf(w, "cosmo_node_latency_ms{node=%q,quantile=\"0.5\"} %g\n", n.Name, n.P50)
		fmt.Fprintf(w, "cosmo_node_latency_ms{node=%q,quantile=\"0.99\"} %g\n", n.Name, n.P99)
		fmt.Fprintf(w, "cosmo_node_latency_ms{node=%q,quantile=\"0.999\"} %g\n", n.Name, n.P999)
	}
}
