// Package cluster is the distributed serving tier: a Router fronts N
// cosmo-serve nodes, routing each query key to a replica set derived
// from a consistent-hash ring (the same FNV idiom as the cache shard
// striping, one level up), reading from the primary with a hedged
// request to the next replica after a latency-percentile-derived delay,
// and failing over deterministically when nodes die, hang, drain or go
// breaker-open. The 1-node case wraps a local serving.Deployment
// directly (LocalBackend), so the whole tier runs hermetically in
// tests; production nodes are HTTP clients (HTTPBackend).
package cluster

import (
	"math"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-node virtual point count. At 128
// points per node the primary-ownership spread across a handful of
// nodes stays within a few percent of even.
const DefaultVirtualNodes = 128

// fnv1a hashes a key to a ring position. Inlined rather than importing
// hash/fnv so routing allocates nothing — the same idiom as the cache
// shard striping in internal/serving — then finished with a 64-bit
// avalanche mixer: raw FNV-1a clusters badly on the short, similar
// strings ring points are made of ("node0#17"), and clustering is
// exactly what virtual nodes exist to prevent.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: full avalanche, so every input bit
// disturbs every output bit.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// point is one virtual node position on the ring.
type point struct {
	hash uint64
	node int32 // index into the router's node table
}

// Ring is an immutable consistent-hash ring over a fixed node set with
// virtual nodes for balance. A key's preference order is the sequence
// of distinct nodes met walking clockwise from the key's hash point;
// the replica set is the first replication-factor eligible nodes of
// that walk, so excluding a node (death, drain, breaker) shifts only
// the keys it owned, each deterministically onto its next replica.
type Ring struct {
	points []point
	nodes  int
}

// NewRing builds a ring over node indices 0..n-1 identified by names
// (names seed the virtual point hashes, so membership — not slice
// order — determines the layout). vnodes <= 0 selects
// DefaultVirtualNodes.
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	if len(names) > math.MaxInt32 {
		panic("cluster: node count exceeds ring capacity")
	}
	points := make([]point, 0, len(names)*vnodes)
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			h := fnv1a(name + "#" + strconv.Itoa(v))
			points = append(points, point{hash: h, node: int32(i)})
		}
	}
	// Ties (hash collisions across nodes) break by node index so the
	// layout is deterministic regardless of sort internals.
	sort.Slice(points, func(a, b int) bool {
		if points[a].hash != points[b].hash {
			return points[a].hash < points[b].hash
		}
		return points[a].node < points[b].node
	})
	return &Ring{points: points, nodes: len(names)}
}

// NumNodes returns the ring's node count.
func (r *Ring) NumNodes() int { return r.nodes }

// Walk appends to dst the distinct node indices met walking clockwise
// from key's hash point, keeping only nodes for which eligible returns
// true (nil means all nodes are eligible), stopping after max nodes
// (max <= 0 means all). The walk visits each node's first point once,
// so the result is the key's deterministic preference order: element 0
// is the primary, element 1 the first replica, and so on.
func (r *Ring) Walk(dst []int, key string, max int, eligible func(int) bool) []int {
	if len(r.points) == 0 {
		return dst
	}
	if max <= 0 || max > r.nodes {
		max = r.nodes
	}
	h := fnv1a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var seen uint64 // node-index bitmap; rings are small (node count <= 64)
	if r.nodes > 64 {
		return r.walkWide(dst, start, max, eligible)
	}
	for i, found := 0, 0; i < len(r.points) && found < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		bit := uint64(1) << uint(p.node)
		if seen&bit != 0 {
			continue
		}
		seen |= bit
		if eligible != nil && !eligible(int(p.node)) {
			continue
		}
		dst = append(dst, int(p.node))
		found++
	}
	return dst
}

// walkWide is Walk's fallback for rings past 64 nodes, trading the
// bitmap for a slice.
func (r *Ring) walkWide(dst []int, start, max int, eligible func(int) bool) []int {
	seen := make([]bool, r.nodes)
	for i, found := 0, 0; i < len(r.points) && found < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		if eligible != nil && !eligible(int(p.node)) {
			continue
		}
		dst = append(dst, int(p.node))
		found++
	}
	return dst
}
