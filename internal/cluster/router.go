package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"cosmo/internal/serving"
)

// ErrNoEligibleNodes is returned when every node is down, draining or
// breaker-open — the only condition under which the router itself
// reports unready.
var ErrNoEligibleNodes = errors.New("cluster: no eligible nodes")

// Config tunes the Router. Zero values select the documented defaults.
type Config struct {
	// Replication is the replica-set size per key: reads go to the
	// primary with a hedge to the next replica (default 2; 1 disables
	// hedging, capped at the node count).
	Replication int
	// VirtualNodes is the ring's per-node virtual point count (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// AttemptTimeout bounds one node attempt (default 2s; negative
	// disables).
	AttemptTimeout time.Duration
	// HedgeQuantile is the per-node latency quantile the hedge delay is
	// derived from (default 0.99).
	HedgeQuantile float64
	// HedgeMin / HedgeMax clamp the derived hedge delay (defaults 1ms /
	// 250ms). With no node histogram warm yet the delay is HedgeMax —
	// hedge conservatively until there is evidence.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// MinHedgeSamples is how many successful attempts a node's
	// histogram needs before it participates in hedge-delay derivation
	// (default 32).
	MinHedgeSamples int64
	// BreakerThreshold / BreakerCooldown / BreakerProbes configure each
	// node's circuit breaker (serving.Breaker semantics; defaults 5 /
	// 2s / 1).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	BreakerProbes    int
	// ProbeInterval / ProbeTimeout drive the active health loop
	// (defaults 1s / 500ms).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// Clock feeds the breakers (FakeClock in tests; default RealClock).
	Clock serving.Clock
}

func (c Config) withDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = 2 * time.Second
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.99
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 250 * time.Millisecond
	}
	if c.HedgeMax < c.HedgeMin {
		c.HedgeMax = c.HedgeMin
	}
	if c.MinHedgeSamples <= 0 {
		c.MinHedgeSamples = 32
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.BreakerProbes <= 0 {
		c.BreakerProbes = 1
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = serving.RealClock{}
	}
	return c
}

// NodeSpec names one backend for the router.
type NodeSpec struct {
	Name    string
	Backend Backend
}

// node is the router's per-node state: transport, breaker, health and
// the atomic latency histogram the hedge delay derives from.
type node struct {
	name    string
	backend Backend
	brk     *serving.Breaker
	hist    *serving.Histogram // successful-attempt latency (ms)
	health  atomic.Int32       // Health

	primaries  atomic.Uint64 // attempts sent as a key's primary
	hedges     atomic.Uint64 // hedge attempts sent here
	hedgeWins  atomic.Uint64 // hedges that returned first with success
	failovers  atomic.Uint64 // attempts after an earlier replica failed
	exclusions atomic.Uint64 // replica-set skips (down/draining/breaker)
	successes  atomic.Uint64
	failures   atomic.Uint64
}

// Request is one routed query: Key drives replica placement (the q= or
// id= value), Path and RawQuery are proxied verbatim.
type Request struct {
	Key      string
	Path     string
	RawQuery string
}

// Router fronts a fixed node set with consistent-hash routing,
// replication, hedged reads and breaker-driven failover.
type Router struct {
	cfg   Config
	nodes []*node
	ring  *Ring

	requests  atomic.Uint64
	errors    atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64
	failovers atomic.Uint64
	noReplica atomic.Uint64
	e2e       *serving.Histogram // end-to-end routed latency (ms)
}

// New builds a router over the named backends. Node names are the ring
// identity: keep them stable across restarts or every key remaps.
func New(specs []NodeSpec, cfg Config) (*Router, error) {
	if len(specs) == 0 {
		return nil, errors.New("cluster: at least one node required")
	}
	cfg = cfg.withDefaults()
	if cfg.Replication > len(specs) {
		cfg.Replication = len(specs)
	}
	names := make([]string, len(specs))
	nodes := make([]*node, len(specs))
	for i, s := range specs {
		if s.Name == "" || s.Backend == nil {
			return nil, fmt.Errorf("cluster: node %d: name and backend required", i)
		}
		names[i] = s.Name
		nodes[i] = &node{
			name:    s.Name,
			backend: s.Backend,
			brk: serving.NewBreaker(serving.BreakerConfig{
				Threshold: cfg.BreakerThreshold,
				Cooldown:  cfg.BreakerCooldown,
				Probes:    cfg.BreakerProbes,
				Clock:     cfg.Clock,
			}),
			hist: serving.NewHistogram(nil),
		}
	}
	for i, a := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] == a {
				return nil, fmt.Errorf("cluster: duplicate node name %q", a)
			}
		}
	}
	return &Router{
		cfg:   cfg,
		nodes: nodes,
		ring:  NewRing(names, cfg.VirtualNodes),
		e2e:   serving.NewHistogram(nil),
	}, nil
}

// NumNodes returns the configured node count.
func (r *Router) NumNodes() int { return len(r.nodes) }

// EligibleNodes counts nodes currently admissible to replica sets:
// probed ready and breaker willing to serve.
func (r *Router) EligibleNodes() int {
	n := 0
	for _, nd := range r.nodes {
		if Health(nd.health.Load()) == HealthReady && nd.brk.CanServe() {
			n++
		}
	}
	return n
}

// eligibleOrder computes the key's full deterministic preference order
// over currently eligible nodes (ring walk order). Excluded nodes are
// counted per node.
func (r *Router) eligibleOrder(key string) []int {
	return r.ring.Walk(make([]int, 0, len(r.nodes)), key, 0, func(i int) bool {
		nd := r.nodes[i]
		if Health(nd.health.Load()) != HealthReady || !nd.brk.CanServe() {
			nd.exclusions.Add(1)
			return false
		}
		return true
	})
}

// ReplicaSet reports the key's current replica set by node name —
// primary first. Diagnostic (the chaos tests assert deterministic
// failover through it); the serving path uses eligibleOrder directly.
func (r *Router) ReplicaSet(key string) []string {
	order := r.eligibleOrder(key)
	if len(order) > r.cfg.Replication {
		order = order[:r.cfg.Replication]
	}
	names := make([]string, len(order))
	for i, idx := range order {
		names[i] = r.nodes[idx].name
	}
	return names
}

// hedgeDelay derives the current hedge delay: the minimum across
// eligible warm nodes of their HedgeQuantile latency, clamped to
// [HedgeMin, HedgeMax]. Taking the minimum — the best achievable
// quantile in the cluster — rather than an aggregate keeps one
// straggler node from inflating the delay that is supposed to protect
// against it. With no warm node the delay is HedgeMax.
func (r *Router) hedgeDelay() time.Duration {
	best := r.cfg.HedgeMax
	found := false
	for _, nd := range r.nodes {
		if Health(nd.health.Load()) != HealthReady {
			continue
		}
		if nd.hist.Count() < r.cfg.MinHedgeSamples {
			continue
		}
		q := time.Duration(nd.hist.Quantile(r.cfg.HedgeQuantile) * float64(time.Millisecond))
		if !found || q < best {
			best, found = q, true
		}
	}
	if !found {
		return r.cfg.HedgeMax
	}
	if best < r.cfg.HedgeMin {
		return r.cfg.HedgeMin
	}
	if best > r.cfg.HedgeMax {
		return r.cfg.HedgeMax
	}
	return best
}

// Do routes one request: primary attempt with a hedged second replica,
// then deterministic sequential failover through the remaining eligible
// nodes. First success wins and cancels the loser; an error is returned
// only when every eligible node failed (or none exists).
func (r *Router) Do(ctx context.Context, req Request) (Result, error) {
	r.requests.Add(1)
	start := time.Now()
	res, err := r.route(ctx, req)
	if err != nil {
		r.errors.Add(1)
		return res, err
	}
	r.e2e.Observe(float64(time.Since(start).Microseconds()) / 1000.0)
	return res, nil
}

// outcome is one attempt's report in a hedged race.
type outcome struct {
	res   Result
	err   error
	hedge bool
}

func (r *Router) route(ctx context.Context, req Request) (Result, error) {
	order := r.eligibleOrder(req.Key)
	if len(order) == 0 {
		r.noReplica.Add(1)
		return Result{}, ErrNoEligibleNodes
	}

	// Hedged primary phase: launch the primary, arm the hedge timer,
	// and race them. Buffered channel: a loser finishing after we
	// return never blocks.
	ch := make(chan outcome, 2)
	primary := r.nodes[order[0]]
	primary.primaries.Add(1)
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	go func() {
		res, err := r.attempt(pctx, primary, req)
		ch <- outcome{res: res, err: err}
	}()

	var timerC <-chan time.Time
	canHedge := r.cfg.Replication > 1 && len(order) > 1
	if canHedge {
		timer := time.NewTimer(r.hedgeDelay())
		defer timer.Stop()
		timerC = timer.C
	}

	hedged := false
	var hcancel context.CancelFunc
	outstanding := 1
	var lastErr error
	for outstanding > 0 {
		select {
		case out := <-ch:
			outstanding--
			if out.err == nil {
				if out.hedge {
					r.hedgeWins.Add(1)
					r.nodes[order[1]].hedgeWins.Add(1)
					pcancel() // the primary lost; stop its attempt
				} else if hcancel != nil {
					hcancel() // the hedge lost; stop its attempt
				}
				return out.res, nil
			}
			lastErr = out.err
		case <-timerC:
			timerC = nil
			hedged = true
			hedge := r.nodes[order[1]]
			hedge.hedges.Add(1)
			r.hedges.Add(1)
			var hctx context.Context
			hctx, hcancel = context.WithCancel(ctx)
			defer hcancel()
			go func() {
				res, err := r.attempt(hctx, hedge, req)
				ch <- outcome{res: res, err: err, hedge: true}
			}()
			outstanding++
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	}

	// Both racers (or the lone primary) failed: deterministic
	// sequential failover through the rest of the preference order.
	next := 1
	if hedged {
		next = 2
	}
	for _, idx := range order[next:] {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		nd := r.nodes[idx]
		nd.failovers.Add(1)
		r.failovers.Add(1)
		res, err := r.attempt(ctx, nd, req)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	return Result{}, fmt.Errorf("cluster: all %d eligible replicas failed for key %q: %w",
		len(order), req.Key, lastErr)
}

// attempt runs one bounded call against a node, feeding the outcome to
// the node's breaker and (on success) its latency histogram. A call
// cancelled from above — the hedged race was already won, or the client
// left — is abandoned: it says nothing about node health, so it feeds
// neither breaker quorum.
func (r *Router) attempt(ctx context.Context, nd *node, req Request) (Result, error) {
	if !nd.brk.Allow() {
		// Lost a probe-slot race since the eligibility scan; treat as a
		// routing miss, not a node failure.
		return Result{}, fmt.Errorf("cluster: node %s breaker rejected the call", nd.name)
	}
	actx := ctx
	cancel := func() {}
	if r.cfg.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, r.cfg.AttemptTimeout)
	}
	defer cancel()
	start := time.Now()
	res, err := nd.backend.Do(actx, req.Path, req.RawQuery)
	if err != nil {
		if ctx.Err() != nil {
			nd.brk.Abandon()
			return Result{}, err
		}
		nd.failures.Add(1)
		nd.brk.Failure()
		return Result{}, fmt.Errorf("cluster: node %s: %w", nd.name, err)
	}
	if res.Status >= 500 {
		nd.failures.Add(1)
		nd.brk.Failure()
		return Result{}, fmt.Errorf("cluster: node %s answered %d", nd.name, res.Status)
	}
	nd.successes.Add(1)
	nd.brk.Success()
	nd.hist.Observe(float64(time.Since(start).Microseconds()) / 1000.0)
	return res, nil
}

// CheckHealth probes every node once (the active half of health; the
// passive half is per-attempt breaker accounting). Deterministic entry
// point for tests; the production loop is StartHealthLoop.
func (r *Router) CheckHealth(ctx context.Context) {
	for _, nd := range r.nodes {
		hctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
		h := nd.backend.Check(hctx)
		cancel()
		nd.health.Store(int32(h))
	}
}

// StartHealthLoop probes all nodes every ProbeInterval until ctx is
// done. The returned channel closes once the loop has stopped.
func (r *Router) StartHealthLoop(ctx context.Context) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(r.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				r.CheckHealth(ctx)
			}
		}
	}()
	return done
}
