package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cosmo/internal/serving"
)

// stubBackend is a scriptable Backend for router unit tests.
type stubBackend struct {
	mu    sync.Mutex
	do    func(ctx context.Context) (Result, error)
	calls atomic.Int64
}

func okBackend(body string) *stubBackend {
	return &stubBackend{do: func(ctx context.Context) (Result, error) {
		return Result{Status: 200, ContentType: "text/plain", Body: []byte(body)}, nil
	}}
}

func (s *stubBackend) set(do func(ctx context.Context) (Result, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.do = do
}

func (s *stubBackend) Do(ctx context.Context, path, rawQuery string) (Result, error) {
	s.calls.Add(1)
	s.mu.Lock()
	do := s.do
	s.mu.Unlock()
	return do(ctx)
}

func (s *stubBackend) Check(ctx context.Context) Health { return HealthReady }

// keyWithPrimary finds a key whose current primary is the named node.
func keyWithPrimary(t *testing.T, r *Router, name string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("probe-key-%d", i)
		rs := r.ReplicaSet(key)
		if len(rs) > 0 && rs[0] == name {
			return key
		}
	}
	t.Fatalf("no key found with primary %s", name)
	return ""
}

func newStubRouter(t *testing.T, n int, cfg Config) (*Router, []*stubBackend) {
	t.Helper()
	backends := make([]*stubBackend, n)
	specs := make([]NodeSpec, n)
	for i := range backends {
		backends[i] = okBackend(fmt.Sprintf("from-n%d", i))
		specs[i] = NodeSpec{Name: fmt.Sprintf("n%d", i), Backend: backends[i]}
	}
	r, err := New(specs, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r, backends
}

func TestRouterRoutesToPrimary(t *testing.T) {
	r, backends := newStubRouter(t, 3, Config{Replication: 2})
	key := keyWithPrimary(t, r, "n1")
	res, err := r.Do(context.Background(), Request{Key: key, Path: "/intent", RawQuery: "q=" + key})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if string(res.Body) != "from-n1" {
		t.Fatalf("answer came from %q, want the primary n1", res.Body)
	}
	if got := backends[1].calls.Load(); got != 1 {
		t.Fatalf("primary saw %d calls, want 1", got)
	}
	if got := backends[0].calls.Load() + backends[2].calls.Load(); got != 0 {
		t.Fatalf("non-primaries saw %d calls, want 0", got)
	}
	s := r.Stats()
	if s.Requests != 1 || s.Errors != 0 || s.Failovers != 0 {
		t.Fatalf("stats = %+v, want 1 request, no errors/failovers", s)
	}
}

func TestRouterFailoverDeterministic(t *testing.T) {
	// High breaker threshold so the failing primary stays eligible: every
	// request must re-attempt it and fail over the same way.
	r, backends := newStubRouter(t, 3, Config{Replication: 2, HedgeMax: time.Hour, BreakerThreshold: 1000})
	key := keyWithPrimary(t, r, "n0")
	rs := r.ReplicaSet(key)
	backends[0].set(func(ctx context.Context) (Result, error) {
		return Result{}, errors.New("boom")
	})
	want := "from-" + rs[1]
	for i := 0; i < 10; i++ {
		res, err := r.Do(context.Background(), Request{Key: key, Path: "/intent"})
		if err != nil {
			t.Fatalf("Do #%d: %v", i, err)
		}
		if string(res.Body) != want {
			t.Fatalf("Do #%d answered from %q, want deterministic failover to %s", i, res.Body, rs[1])
		}
	}
	s := r.Stats()
	if s.Failovers != 10 {
		t.Fatalf("failovers = %d, want 10", s.Failovers)
	}
	if s.Errors != 0 {
		t.Fatalf("client-visible errors = %d, want 0", s.Errors)
	}
}

func TestRouterFailoverOn5xx(t *testing.T) {
	r, backends := newStubRouter(t, 2, Config{Replication: 2, HedgeMax: time.Hour, BreakerThreshold: 1000})
	key := keyWithPrimary(t, r, "n0")
	backends[0].set(func(ctx context.Context) (Result, error) {
		return Result{Status: 503}, nil
	})
	res, err := r.Do(context.Background(), Request{Key: key, Path: "/intent"})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.Status != 200 || string(res.Body) != "from-n1" {
		t.Fatalf("got %d %q, want the replica's 200", res.Status, res.Body)
	}
}

func TestRouterAllReplicasFailed(t *testing.T) {
	r, backends := newStubRouter(t, 2, Config{Replication: 2, HedgeMax: time.Hour, BreakerThreshold: 1000})
	for _, b := range backends {
		b.set(func(ctx context.Context) (Result, error) {
			return Result{}, errors.New("boom")
		})
	}
	_, err := r.Do(context.Background(), Request{Key: "k", Path: "/intent"})
	if err == nil {
		t.Fatal("Do succeeded with every node failing")
	}
	if errors.Is(err, ErrNoEligibleNodes) {
		t.Fatalf("got ErrNoEligibleNodes; nodes were eligible, they just failed: %v", err)
	}
	if s := r.Stats(); s.Errors != 1 {
		t.Fatalf("errors = %d, want 1", s.Errors)
	}
}

func TestRouterHedgeWinsAgainstStraggler(t *testing.T) {
	r, backends := newStubRouter(t, 2, Config{
		Replication: 2,
		HedgeMin:    time.Millisecond,
		HedgeMax:    5 * time.Millisecond, // no warm histogram -> delay = HedgeMax
	})
	key := keyWithPrimary(t, r, "n0")
	primaryCancelled := make(chan struct{})
	backends[0].set(func(ctx context.Context) (Result, error) {
		<-ctx.Done() // wedged primary: blocks until the hedge win cancels it
		close(primaryCancelled)
		return Result{}, ctx.Err()
	})
	res, err := r.Do(context.Background(), Request{Key: key, Path: "/intent"})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if string(res.Body) != "from-n1" {
		t.Fatalf("answer came from %q, want the hedge replica n1", res.Body)
	}
	select {
	case <-primaryCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("hedge win did not cancel the losing primary")
	}
	s := r.Stats()
	if s.Hedges != 1 || s.HedgeWins != 1 {
		t.Fatalf("hedges=%d hedgeWins=%d, want 1/1", s.Hedges, s.HedgeWins)
	}
	if got := s.HedgeWinRatio(); got != 1.0 {
		t.Fatalf("hedge win ratio = %g, want 1", got)
	}
	var n1 NodeStats
	for _, n := range s.Nodes {
		if n.Name == "n1" {
			n1 = n
		}
	}
	if n1.HedgeWins != 1 {
		t.Fatalf("node n1 hedge wins = %d, want 1", n1.HedgeWins)
	}
}

func TestRouterHedgeDelayDerivation(t *testing.T) {
	r, _ := newStubRouter(t, 2, Config{
		Replication:     2,
		HedgeQuantile:   0.99,
		HedgeMin:        2 * time.Millisecond,
		HedgeMax:        100 * time.Millisecond,
		MinHedgeSamples: 8,
	})
	// Cold: no node has enough samples -> conservative HedgeMax.
	if got := r.hedgeDelay(); got != 100*time.Millisecond {
		t.Fatalf("cold hedge delay = %v, want HedgeMax", got)
	}
	// Warm one node fast, the other slow: the delay is the MIN across
	// nodes — the straggler must not inflate its own protection delay.
	for i := 0; i < 100; i++ {
		r.nodes[0].hist.Observe(4)  // ~4ms node
		r.nodes[1].hist.Observe(80) // straggler
	}
	got := r.hedgeDelay()
	if got < 2*time.Millisecond || got > 20*time.Millisecond {
		t.Fatalf("warm hedge delay = %v, want ~4ms (fast node's p99), not the straggler's", got)
	}
	// Clamp below: a sub-millisecond node still hedges no sooner than
	// HedgeMin.
	for i := 0; i < 200; i++ {
		r.nodes[0].hist.Observe(0.1)
	}
	if got := r.hedgeDelay(); got < 2*time.Millisecond {
		t.Fatalf("hedge delay = %v, want clamped at HedgeMin", got)
	}
}

func TestRouterBreakerExclusionAndRecovery(t *testing.T) {
	clock := serving.NewFakeClock(time.Unix(1_700_000_000, 0))
	r, backends := newStubRouter(t, 3, Config{
		Replication:      2,
		HedgeMax:         time.Hour, // no hedging in this test
		BreakerThreshold: 3,
		BreakerCooldown:  5 * time.Second,
		BreakerProbes:    1,
		Clock:            clock,
	})
	key := keyWithPrimary(t, r, "n0")
	backends[0].set(func(ctx context.Context) (Result, error) {
		return Result{}, errors.New("boom")
	})
	// Three failed primary attempts trip n0's breaker; the client sees
	// none of them thanks to failover.
	for i := 0; i < 3; i++ {
		if _, err := r.Do(context.Background(), Request{Key: key, Path: "/intent"}); err != nil {
			t.Fatalf("Do #%d: %v", i, err)
		}
	}
	if r.EligibleNodes() != 2 {
		t.Fatalf("eligible = %d after breaker trip, want 2", r.EligibleNodes())
	}
	if rs := r.ReplicaSet(key); len(rs) == 0 || rs[0] == "n0" {
		t.Fatalf("replica set %v still led by the tripped node", rs)
	}
	// While open, requests for the key skip n0 entirely: no failover
	// attempt is burned on it.
	before := backends[0].calls.Load()
	if _, err := r.Do(context.Background(), Request{Key: key, Path: "/intent"}); err != nil {
		t.Fatalf("Do while open: %v", err)
	}
	if got := backends[0].calls.Load(); got != before {
		t.Fatalf("tripped node saw %d new calls, want 0", got-before)
	}
	// Cooldown passes, the node recovers, and the next request for the
	// key probes it half-open; one success closes the breaker.
	clock.Advance(6 * time.Second)
	backends[0].set(func(ctx context.Context) (Result, error) {
		return Result{Status: 200, Body: []byte("from-n0")}, nil
	})
	if r.EligibleNodes() != 3 {
		t.Fatalf("eligible = %d after cooldown, want 3 (half-open probe admissible)", r.EligibleNodes())
	}
	res, err := r.Do(context.Background(), Request{Key: key, Path: "/intent"})
	if err != nil {
		t.Fatalf("Do probe: %v", err)
	}
	if string(res.Body) != "from-n0" {
		t.Fatalf("probe answered from %q, want the recovered primary", res.Body)
	}
	var n0 NodeStats
	for _, n := range r.Stats().Nodes {
		if n.Name == "n0" {
			n0 = n
		}
	}
	if n0.BreakerState != serving.BreakerClosed {
		t.Fatalf("n0 breaker state = %v after successful probe, want closed", n0.BreakerState)
	}
	if n0.BreakerOpens != 1 {
		t.Fatalf("n0 breaker opens = %d, want 1", n0.BreakerOpens)
	}
}

func TestRouterNoEligibleNodes(t *testing.T) {
	dep := serving.NewDeployment(serving.DeployConfig{}, nil)
	// Never marked ready: the lone node probes down.
	r, err := New([]NodeSpec{{Name: "n0", Backend: NewLocalBackend(dep)}}, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.CheckHealth(context.Background())
	if r.EligibleNodes() != 0 {
		t.Fatalf("eligible = %d, want 0", r.EligibleNodes())
	}
	_, err = r.Do(context.Background(), Request{Key: "k", Path: "/intent"})
	if !errors.Is(err, ErrNoEligibleNodes) {
		t.Fatalf("err = %v, want ErrNoEligibleNodes", err)
	}
	if s := r.Stats(); s.NoReplica != 1 {
		t.Fatalf("noReplica = %d, want 1", s.NoReplica)
	}
}

func newLocalDeployment(t *testing.T, keys ...string) *serving.Deployment {
	t.Helper()
	dep := serving.NewDeploymentContext(serving.DeployConfig{DailyCacheCap: 64, QueueCap: 64},
		serving.ContextResponderFunc(func(ctx context.Context, q string) (serving.Feature, error) {
			return serving.Feature{Query: q, Intents: []string{"used for " + q}}, nil
		}))
	feats := make([]serving.Feature, 0, len(keys))
	for _, k := range keys {
		feats = append(feats, serving.Feature{Query: k, Intents: []string{"i"}, Version: 1, CreatedAt: dep.Clock.Now()})
	}
	dep.Cache.ReplaceYearly(feats)
	dep.SetReady(true)
	return dep
}

func TestRouterDrainingNodeExcluded(t *testing.T) {
	d0 := newLocalDeployment(t, "camping")
	d1 := newLocalDeployment(t, "camping")
	r, err := New([]NodeSpec{
		{Name: "n0", Backend: NewLocalBackend(d0)},
		{Name: "n1", Backend: NewLocalBackend(d1)},
	}, Config{Replication: 2, HedgeMax: time.Hour})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.CheckHealth(context.Background())
	if r.EligibleNodes() != 2 {
		t.Fatalf("eligible = %d, want 2", r.EligibleNodes())
	}
	key := keyWithPrimary(t, r, "n0")

	d0.BeginDrain()
	r.CheckHealth(context.Background())
	if r.EligibleNodes() != 1 {
		t.Fatalf("eligible = %d after drain, want 1", r.EligibleNodes())
	}
	rs := r.ReplicaSet(key)
	if len(rs) != 1 || rs[0] != "n1" {
		t.Fatalf("replica set = %v with n0 draining, want [n1]", rs)
	}
	res, err := r.Do(context.Background(), Request{Key: key, Path: "/intent", RawQuery: "q=camping"})
	if err != nil {
		t.Fatalf("Do during drain: %v", err)
	}
	if res.Status != 200 {
		t.Fatalf("status %d during drain, want 200 from the surviving node", res.Status)
	}
	var drainHealth Health
	for _, n := range r.Stats().Nodes {
		if n.Name == "n0" {
			drainHealth = n.Health
		}
	}
	if drainHealth != HealthDraining {
		t.Fatalf("n0 health = %v, want draining", drainHealth)
	}
}

func TestRouterHTTPHandler(t *testing.T) {
	dep := newLocalDeployment(t, "camping")
	r, err := New([]NodeSpec{{Name: "n0", Backend: NewLocalBackend(dep)}}, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.CheckHealth(context.Background())
	h := NewHTTPHandler(r)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", rec.Code)
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", rec.Code)
	}
	rec := get("/intent?q=camping")
	if rec.Code != http.StatusOK {
		t.Fatalf("/intent = %d (%s), want 200", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Fatalf("proxied Content-Type = %q, want the node's json", ct)
	}
	if !strings.Contains(rec.Body.String(), "camping") {
		t.Fatalf("proxied body %q does not echo the query", rec.Body.String())
	}
	if rec := get("/intent"); rec.Code != http.StatusBadRequest {
		t.Fatalf("/intent with no q = %d, want 400", rec.Code)
	}
	rec = get("/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", rec.Code)
	}
	for _, want := range []string{
		"cosmo_router_requests_total 1",
		"cosmo_router_nodes 1",
		"cosmo_node_routes_total{node=\"n0\"}",
		"cosmo_router_hedge_win_ratio",
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, rec.Body.String())
		}
	}

	// Node goes away: /readyz flips 503, queries answer 503.
	dep.SetReady(false)
	r.CheckHealth(context.Background())
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with no eligible nodes = %d, want 503", rec.Code)
	}
	if rec := get("/intent?q=camping"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/intent with no eligible nodes = %d, want 503", rec.Code)
	}
}

func TestRouterConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("New accepted an empty node set")
	}
	b := okBackend("x")
	if _, err := New([]NodeSpec{{Name: "", Backend: b}}, Config{}); err == nil {
		t.Fatal("New accepted an unnamed node")
	}
	if _, err := New([]NodeSpec{{Name: "a", Backend: nil}}, Config{}); err == nil {
		t.Fatal("New accepted a nil backend")
	}
	if _, err := New([]NodeSpec{{Name: "a", Backend: b}, {Name: "a", Backend: b}}, Config{}); err == nil {
		t.Fatal("New accepted duplicate node names")
	}
	// Replication above the node count is capped, not rejected.
	r, err := New([]NodeSpec{{Name: "a", Backend: b}}, Config{Replication: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if r.cfg.Replication != 1 {
		t.Fatalf("replication = %d, want capped at 1", r.cfg.Replication)
	}
}

func TestRouterHealthLoop(t *testing.T) {
	dep := newLocalDeployment(t, "k")
	dep.SetReady(false)
	r, err := New([]NodeSpec{{Name: "n0", Backend: NewLocalBackend(dep)}},
		Config{ProbeInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := r.StartHealthLoop(ctx)
	// The loop notices the node going down, then coming back.
	waitEligible := func(want int, what string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for r.EligibleNodes() != want {
			if time.Now().After(deadline) {
				t.Fatalf("health loop never observed %s (eligible=%d, want %d)",
					what, r.EligibleNodes(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitEligible(0, "the unready node")
	dep.SetReady(true)
	waitEligible(1, "the node's recovery")
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("health loop did not stop on ctx cancel")
	}
}
