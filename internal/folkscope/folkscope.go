// Package folkscope implements the FolkScope baseline (Yu et al., 2023)
// that COSMO extends. FolkScope distills intention knowledge from
// co-purchase behaviors only, in two domains, with classifier filtering
// but no instruction-tuned student model: every new behavior must go
// through teacher-LLM generation plus classifier scoring, which is the
// inference bottleneck §1 of the COSMO paper calls out.
//
// The implementation reuses the shared substrates (teacher, filter,
// annotation, critics, KG) restricted exactly as the FolkScope paper
// describes, so COSMO-vs-FolkScope comparisons isolate COSMO's
// contributions: search-buy behaviors, 18-domain scale-up, and the
// instruction-tuned COSMO-LM.
package folkscope

import (
	"fmt"

	"cosmo/internal/annotation"
	"cosmo/internal/behavior"
	"cosmo/internal/catalog"
	"cosmo/internal/classifier"
	"cosmo/internal/filter"
	"cosmo/internal/kg"
	"cosmo/internal/know"
	"cosmo/internal/llm"
	"cosmo/internal/sampling"
)

// Config parameterizes the baseline run.
type Config struct {
	Seed int64
	// Domains restricts the pipeline; FolkScope covered two domains
	// (Clothing and Electronics in the original paper's evaluation).
	Domains []catalog.Category
	// Behavior, Sampling, Teacher, Filter, Annotation mirror the COSMO
	// stages that FolkScope shares.
	Behavior   behavior.Config
	Sampling   sampling.Config
	Teacher    llm.Config
	Filter     filter.Config
	Annotation annotation.Config
	CriticDim  int
	Train      classifier.TrainConfig

	GenerationsPerBehavior int
	AnnotationBudget       int
	PlausibilityThreshold  float64
}

// DefaultConfig matches FolkScope's published scope.
func DefaultConfig() Config {
	return Config{
		Seed:                   42,
		Domains:                []catalog.Category{catalog.Clothing, catalog.Electronics},
		Behavior:               behavior.Config{Seed: 2, CoBuyEvents: 10000, SearchEvents: 0, NoiseRate: 0.25},
		Sampling:               sampling.DefaultConfig(),
		Teacher:                llm.DefaultConfig(llm.OPT30B),
		Filter:                 filter.DefaultConfig(),
		Annotation:             annotation.DefaultConfig(),
		CriticDim:              1 << 15,
		Train:                  classifier.DefaultTrainConfig(),
		GenerationsPerBehavior: 2,
		AnnotationBudget:       1500,
		PlausibilityThreshold:  0.5,
	}
}

// Result carries the baseline's artifacts.
type Result struct {
	Catalog *catalog.Catalog
	KG      *kg.Graph
	Critic  *classifier.Critic

	RawCandidates int
	Kept          int
	// TeacherCost is the offline distillation cost.
	TeacherCost llm.CostSnapshot
	// teacher and critic are retained because FolkScope must serve new
	// behaviors through them (no student model).
	teacher *llm.Teacher
}

// Run executes the FolkScope pipeline over an existing catalog.
func Run(cat *catalog.Catalog, cfg Config) (*Result, error) {
	res := &Result{Catalog: cat}
	inDomain := map[catalog.Category]bool{}
	for _, d := range cfg.Domains {
		inDomain[d] = true
	}
	log := behavior.Simulate(cat, cfg.Behavior)
	smp := sampling.New(log, cfg.Sampling)
	selected := smp.SampleProducts()
	pairs := smp.SampleCoBuyPairs(selected)

	res.teacher = llm.NewTeacher(cat, cfg.Teacher)
	var cands []know.Candidate
	id := 0
	for _, e := range pairs {
		pa, _ := cat.ByID(e.A)
		pb, _ := cat.ByID(e.B)
		// Two-domain restriction: FolkScope's scope.
		if !inDomain[pa.Category] {
			continue
		}
		for _, g := range res.teacher.GenerateCoBuy(pa, pb, cfg.GenerationsPerBehavior) {
			id++
			cands = append(cands, know.Candidate{
				ID: id, Behavior: know.CoBuy, Domain: pa.Category,
				ProductA: e.A, ProductB: e.B, TypeA: pa.Type, TypeB: pb.Type,
				ContextText:     pa.Title + " and " + pb.Title,
				Text:            g.Text,
				Truth:           g.Truth,
				PairIntentional: e.Intentional,
			})
		}
	}
	res.RawCandidates = len(cands)

	kept, _, _ := filter.New(cfg.Filter).Run(cands)
	res.Kept = len(kept)

	// FolkScope's fine-grained two-step annotation (plausibility then
	// typicality) is approximated by the shared oracle; the annotation
	// budget matches its thousands-of-pairs scale.
	budget := cfg.AnnotationBudget
	if budget > len(kept) {
		budget = len(kept)
	}
	oracle := annotation.NewOracle(cfg.Annotation)
	annCands := kept[:budget]
	anns := oracle.AnnotateAll(annCands)
	labeled := make([]classifier.Labeled, len(annCands))
	for i := range annCands {
		labeled[i] = classifier.Labeled{
			Candidate: annCands[i],
			Plausible: anns[i].Plausible(),
			Typical:   anns[i].Typical(),
		}
	}
	res.Critic = classifier.TrainCritic(cfg.CriticDim, labeled, cfg.Train)

	res.KG = kg.New()
	for _, c := range res.Critic.Score(kept) {
		if c.PlausibleScore <= cfg.PlausibilityThreshold {
			continue
		}
		if err := res.KG.AddAssertion(c); err != nil {
			return nil, fmt.Errorf("folkscope: kg assembly: %w", err)
		}
	}
	res.TeacherCost = res.teacher.Cost()
	return res, nil
}

// ServeNewBehavior answers a new co-buy behavior the FolkScope way: run
// the teacher LLM, score with the critic, and return the best passing
// knowledge. This is the pipeline the COSMO paper says "is not feasible
// for online serving" — the returned cost snapshot delta quantifies why.
func (r *Result) ServeNewBehavior(a, b catalog.Product, k int) []know.Candidate {
	gens := r.teacher.GenerateCoBuy(a, b, k)
	cands := make([]know.Candidate, 0, len(gens))
	for i, g := range gens {
		cands = append(cands, know.Candidate{
			ID: i, Behavior: know.CoBuy, Domain: a.Category,
			ProductA: a.ID, ProductB: b.ID, TypeA: a.Type, TypeB: b.Type,
			ContextText: a.Title + " and " + b.Title,
			Text:        g.Text, Truth: g.Truth,
		})
	}
	scored := r.Critic.Score(cands)
	out := scored[:0]
	for _, c := range scored {
		if c.PlausibleScore > 0.5 {
			out = append(out, c)
		}
	}
	return out
}

// ServingCost returns the accumulated teacher cost including online
// serving calls made through ServeNewBehavior.
func (r *Result) ServingCost() llm.CostSnapshot { return r.teacher.Cost() }
