package folkscope

import (
	"testing"

	"cosmo/internal/catalog"
	"cosmo/internal/know"
)

func run(t *testing.T) (*catalog.Catalog, *Result) {
	t.Helper()
	cat := catalog.Generate(catalog.Config{ProductsPerType: 4, Seed: 1})
	res, err := Run(cat, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return cat, res
}

func TestFolkScopeScopeRestrictions(t *testing.T) {
	_, res := run(t)
	if res.KG.NumEdges() == 0 {
		t.Fatal("empty baseline KG")
	}
	stats := res.KG.ComputeStats()
	// Two domains only — the published FolkScope scope.
	if stats.Domains > 2 {
		t.Errorf("FolkScope KG spans %d domains, want <= 2", stats.Domains)
	}
	// Co-buy behaviors only.
	for _, e := range res.KG.Edges() {
		if e.Behavior != know.CoBuy {
			t.Fatalf("non-co-buy edge in FolkScope KG: %+v", e)
		}
	}
}

func TestFolkScopeServesThroughTeacher(t *testing.T) {
	cat, res := run(t)
	before := res.ServingCost()
	a := cat.OfType("camera case")[0]
	b := cat.OfType("screen protector glass")[0]
	served := res.ServeNewBehavior(a, b, 5)
	after := res.ServingCost()
	if after.Calls <= before.Calls {
		t.Error("serving must go through the teacher LLM")
	}
	for _, c := range served {
		if c.PlausibleScore <= 0.5 {
			t.Errorf("served candidate below threshold: %+v", c.PlausibleScore)
		}
	}
}

func TestFolkScopeServingCostExceedsCosmoLM(t *testing.T) {
	// The §1 motivation: FolkScope's serving path (teacher + critic per
	// request) is far more expensive than COSMO-LM inference. Per-call
	// teacher cost is ~538ms simulated; COSMO-LM ~146ms (see the latency
	// experiment). Verify the per-request teacher charge here.
	cat, res := run(t)
	before := res.ServingCost()
	a := cat.OfType("camera case")[0]
	b := cat.OfType("screen protector glass")[0]
	res.ServeNewBehavior(a, b, 3)
	after := res.ServingCost()
	perRequest := after.SimulatedMs - before.SimulatedMs
	if perRequest < 500 {
		t.Errorf("per-request teacher cost %.0fms suspiciously low", perRequest)
	}
}

func TestFolkScopeSmallerThanCosmo(t *testing.T) {
	// Table 1's structural comparison: COSMO covers more domains and
	// behavior types than FolkScope on the same world.
	_, res := run(t)
	stats := res.KG.ComputeStats()
	if stats.Domains >= 18 {
		t.Error("baseline should not cover all 18 domains")
	}
}
