package llm

import "sync"

// Per-token simulated inference cost in milliseconds of GPU time. The
// ratios follow parameter counts: OPT-175b is ~6x OPT-30b; the distilled
// 7b-class COSMO-LM (see internal/cosmolm) charges CostPerTokenCosmoLM.
const (
	CostPerTokenOPT30B  = 12.0 // ms/token on the paper's 16-A100 setup
	CostPerTokenOPT175B = 70.0 // ms/token
	CostPerTokenCosmoLM = 2.5  // ms/token for the 7b instruction-tuned LM
	// promptTokens models the prompt-processing work per call; its cost
	// scales with the model's per-token rate like the generation itself.
	promptTokens = 40.0
)

// CostSnapshot reports accumulated simulated inference cost.
type CostSnapshot struct {
	Calls       int
	Tokens      int
	SimulatedMs float64
}

// CostMeter accumulates simulated inference cost; safe for concurrent use.
type CostMeter struct {
	mu   sync.Mutex
	snap CostSnapshot
}

// Charge records one generation call of n tokens on the given model size.
func (m *CostMeter) Charge(size ModelSize, tokens int) {
	per := CostPerTokenOPT30B
	if size == OPT175B {
		per = CostPerTokenOPT175B
	}
	m.ChargeCustom(per, tokens)
}

// ChargeCustom records a call with an explicit per-token cost (used by
// COSMO-LM, which shares the meter format).
func (m *CostMeter) ChargeCustom(perToken float64, tokens int) {
	m.mu.Lock()
	m.snap.Calls++
	m.snap.Tokens += tokens
	m.snap.SimulatedMs += perToken * (promptTokens + float64(tokens))
	m.mu.Unlock()
}

// Snapshot returns a copy of the accumulated totals.
func (m *CostMeter) Snapshot() CostSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snap
}

// Reset zeroes the meter.
func (m *CostMeter) Reset() {
	m.mu.Lock()
	m.snap = CostSnapshot{}
	m.mu.Unlock()
}
