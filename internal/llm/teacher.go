// Package llm simulates the teacher large language models (OPT-30b /
// OPT-175b in the paper) that COSMO distills knowledge from.
//
// The simulator reproduces the teacher's externally visible behavior:
// given a QA-style prompt verbalizing a user behavior (Figure 3 of the
// paper), it emits a ranked list of knowledge candidates whose
// distribution mixes the generation modes the paper reports —
// faithful/typical knowledge, one-sided intentions for co-buys (the
// cause of the low co-buy typicality in Table 4), generic intentions
// ("customers bought them because they like them"), paraphrases of the
// behavior context, incomplete truncations, and hallucinations.
// Every candidate carries hidden ground-truth labels consumed only by
// the annotation oracle and evaluation.
//
// A cost model accounts for simulated inference expense so that the
// paper's efficiency claim (COSMO-LM ≫ cheaper than the teacher) is
// measurable.
package llm

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"cosmo/internal/catalog"
	"cosmo/internal/relations"
	"cosmo/internal/textproc"
)

// NoiseMode identifies the generation mode of a candidate (ground truth,
// never visible to the pipeline).
type NoiseMode string

// Generation modes.
const (
	ModeTypical       NoiseMode = "typical"
	ModeOneSided      NoiseMode = "one-sided"
	ModeGeneric       NoiseMode = "generic"
	ModeParaphrase    NoiseMode = "paraphrase"
	ModeIncomplete    NoiseMode = "incomplete"
	ModeHallucination NoiseMode = "hallucination"
)

// Truth carries the five ground-truth judgments matching the paper's
// 5-question annotation decomposition (§3.3.2).
type Truth struct {
	Complete    bool
	Relevant    bool
	Informative bool
	Plausible   bool
	Typical     bool
	Mode        NoiseMode
}

// Candidate is one generated knowledge string plus hidden ground truth.
type Candidate struct {
	Text  string
	Truth Truth
}

// ModelSize selects the simulated teacher scale.
type ModelSize string

// Teacher model scales from the paper.
const (
	OPT30B  ModelSize = "opt-30b"
	OPT175B ModelSize = "opt-175b"
)

// Config tunes the teacher's generation-mode mixture.
type Config struct {
	Size ModelSize
	Seed int64
	// TypicalRate is the probability a candidate is faithful/typical.
	TypicalRate float64
	// OneSidedRate applies to co-buy behaviors only: probability the
	// model explains just one product of the pair.
	OneSidedRate float64
	// GenericRate, ParaphraseRate, IncompleteRate: remaining noise modes;
	// leftovers become hallucinations.
	GenericRate    float64
	ParaphraseRate float64
	IncompleteRate float64
}

// DefaultConfig returns mode rates calibrated so that annotated ratios
// land near the paper's Table 4 (search-buy typicality ≈ 35%, co-buy
// notably lower) after coarse filtering. The 175b teacher is both more
// faithful (higher typical rate, less generic filler) and ~6x more
// expensive per token, matching the scaling behaviour the paper relied
// on when choosing generation models.
func DefaultConfig(size ModelSize) Config {
	cfg := Config{
		Size:           size,
		Seed:           11,
		TypicalRate:    0.40,
		OneSidedRate:   0.35,
		GenericRate:    0.20,
		ParaphraseRate: 0.15,
		IncompleteRate: 0.12,
	}
	if size == OPT175B {
		cfg.TypicalRate = 0.48
		cfg.GenericRate = 0.15
		cfg.IncompleteRate = 0.08
	}
	return cfg
}

// Teacher is the simulated large language model.
type Teacher struct {
	cat *catalog.Catalog
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	cost CostMeter
}

// NewTeacher builds a teacher over the catalog.
func NewTeacher(cat *catalog.Catalog, cfg Config) *Teacher {
	return &Teacher{
		cat: cat,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Cost returns a snapshot of accumulated simulated inference cost.
func (t *Teacher) Cost() CostSnapshot { return t.cost.Snapshot() }

// DeriveSeed mixes the master seed with a behavior index via splitmix64
// finalization, producing an independent, well-distributed stream seed
// per item. Identical (seed, index) pairs always derive the same stream,
// which is what makes generation order-independent: each behavior's
// candidates depend only on its own index, never on how many draws other
// behaviors consumed from a shared generator.
func DeriveSeed(master int64, index uint64) int64 {
	z := uint64(master) + 0x9e3779b97f4a7c15*(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// rngAt returns a fresh generator for the behavior at index.
func (t *Teacher) rngAt(index uint64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(t.cfg.Seed, index)))
}

// GenerateCoBuyAt is the order-independent form of GenerateCoBuy: the
// candidates for (index, a, b, k) are a pure function of the teacher
// config and index, so calls may run concurrently and in any order.
// Callers must give each behavior a distinct index (disjoint across
// behavior types) for the streams to be independent.
func (t *Teacher) GenerateCoBuyAt(index uint64, a, b catalog.Product, k int) []Candidate {
	return t.generateCoBuy(t.rngAt(index), a, b, k)
}

// GenerateSearchBuyAt is the order-independent form of GenerateSearchBuy.
func (t *Teacher) GenerateSearchBuyAt(index uint64, query string, p catalog.Product, k int) []Candidate {
	return t.generateSearchBuy(t.rngAt(index), query, p, k)
}

var genericPool = []string{
	"customers bought them together because they like them",
	"used for the same reason",
	"they are both good products",
	"customers often buy them at the same time",
	"used with other products",
	"because it is popular",
	"bought as a gift",
}

// GenerateCoBuy emits k candidates explaining why products a and b are
// co-purchased. It draws from the teacher's shared sequential stream;
// concurrent callers serialize on it. Parallel pipelines use
// GenerateCoBuyAt instead.
func (t *Teacher) GenerateCoBuy(a, b catalog.Product, k int) []Candidate {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.generateCoBuy(t.rng, a, b, k)
}

// generateCoBuy is the generation body; all randomness flows from rng.
func (t *Teacher) generateCoBuy(rng *rand.Rand, a, b catalog.Product, k int) []Candidate {
	out := make([]Candidate, 0, k)
	shared := t.cat.SharedIntents(a, b)
	for i := 0; i < k; i++ {
		r := rng.Float64()
		var c Candidate
		switch {
		case r < t.cfg.TypicalRate && len(shared) > 0:
			in := shared[rng.Intn(len(shared))]
			c = Candidate{Text: in.Surface(), Truth: Truth{
				Complete: true, Relevant: true, Informative: true,
				Plausible: true, Typical: true, Mode: ModeTypical,
			}}
		case r < t.cfg.TypicalRate+t.cfg.OneSidedRate:
			// Intention of one product only — plausible, not typical for
			// the pair (the paper's dominant co-buy failure mode).
			p := a
			if rng.Intn(2) == 1 {
				p = b
			}
			ins := t.cat.IntentsOf(p)
			if len(ins) == 0 {
				c = t.genericCandidate(rng)
				break
			}
			in := ins[rng.Intn(len(ins))]
			typical := false
			// If the one-sided intent happens to be shared it is typical.
			for _, s := range shared {
				if s == in {
					typical = true
				}
			}
			c = Candidate{Text: in.Surface(), Truth: Truth{
				Complete: true, Relevant: true, Informative: true,
				Plausible: true, Typical: typical, Mode: ModeOneSided,
			}}
		default:
			c = t.noiseCandidate(rng, a.Title+" and "+b.Title)
		}
		out = append(out, c)
		t.cost.Charge(t.cfg.Size, len(textproc.Tokenize(c.Text)))
	}
	return out
}

// GenerateSearchBuy emits k candidates explaining why query led to the
// purchase of p, drawing from the shared sequential stream. Parallel
// pipelines use GenerateSearchBuyAt instead.
func (t *Teacher) GenerateSearchBuy(query string, p catalog.Product, k int) []Candidate {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.generateSearchBuy(t.rng, query, p, k)
}

// generateSearchBuy is the generation body; all randomness flows from rng.
func (t *Teacher) generateSearchBuy(rng *rand.Rand, query string, p catalog.Product, k int) []Candidate {
	out := make([]Candidate, 0, k)
	ins := t.cat.IntentsOf(p)
	for i := 0; i < k; i++ {
		r := rng.Float64()
		var c Candidate
		switch {
		case r < t.cfg.TypicalRate+t.cfg.OneSidedRate && len(ins) > 0:
			// Search-buy has no one-sided failure mode: the product's own
			// intents are the right explanations, so typicality is higher
			// (paper Table 4).
			in := ins[rng.Intn(len(ins))]
			c = Candidate{Text: in.Surface(), Truth: Truth{
				Complete: true, Relevant: true, Informative: true,
				Plausible: true, Typical: true, Mode: ModeTypical,
			}}
		default:
			c = t.noiseCandidate(rng, query+" "+p.Title)
		}
		out = append(out, c)
		t.cost.Charge(t.cfg.Size, len(textproc.Tokenize(c.Text)))
	}
	return out
}

// noiseCandidate picks among generic / paraphrase / incomplete /
// hallucination modes.
func (t *Teacher) noiseCandidate(rng *rand.Rand, context string) Candidate {
	total := t.cfg.GenericRate + t.cfg.ParaphraseRate + t.cfg.IncompleteRate
	r := rng.Float64() * (total + 0.08) // leftover → hallucination
	switch {
	case r < t.cfg.GenericRate:
		return t.genericCandidate(rng)
	case r < t.cfg.GenericRate+t.cfg.ParaphraseRate:
		return Candidate{Text: paraphrase(rng, context), Truth: Truth{
			Complete: true, Relevant: true, Informative: false,
			Plausible: true, Typical: false, Mode: ModeParaphrase,
		}}
	case r < total:
		// Truncate a plausible-looking generation mid-phrase.
		full := t.hallucinatedText(rng)
		words := strings.Fields(full)
		n := 2
		if len(words) > 3 {
			n = 2 + rng.Intn(len(words)-3)
		}
		return Candidate{Text: strings.Join(words[:n], " "), Truth: Truth{
			Complete: false, Relevant: false, Informative: false,
			Plausible: false, Typical: false, Mode: ModeIncomplete,
		}}
	default:
		return Candidate{Text: t.hallucinatedText(rng), Truth: Truth{
			Complete: true, Relevant: false, Informative: true,
			Plausible: false, Typical: false, Mode: ModeHallucination,
		}}
	}
}

func (t *Teacher) genericCandidate(rng *rand.Rand) Candidate {
	return Candidate{
		Text: genericPool[rng.Intn(len(genericPool))],
		Truth: Truth{
			Complete: true, Relevant: true, Informative: false,
			Plausible: true, Typical: false, Mode: ModeGeneric,
		},
	}
}

// hallucinatedText returns a fluent but wrong intention: the surface of
// an intent from a random unrelated product type.
func (t *Teacher) hallucinatedText(rng *rand.Rand) string {
	types := t.cat.Types()
	for tries := 0; tries < 10; tries++ {
		pt, _ := t.cat.Type(types[rng.Intn(len(types))])
		if len(pt.Intents) > 0 {
			in := pt.Intents[rng.Intn(len(pt.Intents))]
			return in.Surface()
		}
	}
	return "used for general purposes"
}

// paraphrase restates the behavior context with light syntactic
// transformation — the failure mode the similarity filter removes.
func paraphrase(rng *rand.Rand, context string) string {
	toks := textproc.Tokenize(context)
	if len(toks) > 6 {
		toks = toks[:6]
	}
	switch rng.Intn(3) {
	case 0:
		return "a " + strings.Join(toks, " ")
	case 1:
		return "is a " + strings.Join(toks, " ")
	default:
		return "used with " + strings.Join(toks, " ")
	}
}

// Prompt renders the QA-style prompts of Figure 3.
type Prompt struct {
	BehaviorType string // "search-buy" or "co-buy"
	Domain       catalog.Category
	Relation     relations.Relation
	Context      string // verbalized behavior
}

// Render produces the full prompt text, ending with the "1." list trick
// the paper describes.
func (p Prompt) Render() string {
	var b strings.Builder
	switch p.BehaviorType {
	case "search-buy":
		b.WriteString("The following search query caused the following product purchases in the ")
		b.WriteString(string(p.Domain))
		b.WriteString(" domain.\n")
	default:
		b.WriteString("The following two products were bought together in the ")
		b.WriteString(string(p.Domain))
		b.WriteString(" domain.\n")
	}
	b.WriteString(p.Context)
	b.WriteString("\nQuestion: why did the customer make this purchase?\nAnswer: because the product is ")
	if info, ok := relations.Lookup(p.Relation); ok {
		b.WriteString(fmt.Sprintf(info.Pattern, "..."))
	}
	b.WriteString("\n1.")
	return b.String()
}

// CoBuyPrompt builds the co-buy prompt for a pair.
func CoBuyPrompt(a, b catalog.Product, rel relations.Relation) Prompt {
	return Prompt{
		BehaviorType: "co-buy",
		Domain:       a.Category,
		Relation:     rel,
		Context:      fmt.Sprintf("Product 1: %s\nProduct 2: %s", a.Title, b.Title),
	}
}

// SearchBuyPrompt builds the search-buy prompt.
func SearchBuyPrompt(query string, p catalog.Product, rel relations.Relation) Prompt {
	return Prompt{
		BehaviorType: "search-buy",
		Domain:       p.Category,
		Relation:     rel,
		Context:      fmt.Sprintf("Search query: %s\nPurchased product: %s", query, p.Title),
	}
}
