package llm

import (
	"strings"
	"testing"

	"cosmo/internal/catalog"
	"cosmo/internal/relations"
)

func testTeacher(t *testing.T) (*catalog.Catalog, *Teacher) {
	t.Helper()
	c := catalog.Generate(catalog.Config{ProductsPerType: 3, Seed: 1})
	return c, NewTeacher(c, DefaultConfig(OPT30B))
}

func TestGenerateCoBuyModes(t *testing.T) {
	c, teach := testTeacher(t)
	a := c.OfType("tent")[0]
	b := c.OfType("sleeping bag")[0]
	cands := teach.GenerateCoBuy(a, b, 500)
	if len(cands) != 500 {
		t.Fatalf("got %d candidates", len(cands))
	}
	modes := map[NoiseMode]int{}
	for _, cd := range cands {
		if cd.Text == "" {
			t.Fatal("empty candidate")
		}
		modes[cd.Truth.Mode]++
	}
	for _, m := range []NoiseMode{ModeTypical, ModeOneSided, ModeGeneric} {
		if modes[m] == 0 {
			t.Errorf("mode %s never generated: %v", m, modes)
		}
	}
}

func TestTypicalCoBuyCandidatesMatchSharedIntent(t *testing.T) {
	c, teach := testTeacher(t)
	a := c.OfType("tent")[0]
	b := c.OfType("sleeping bag")[0]
	sharedSurfaces := map[string]bool{}
	for _, in := range c.SharedIntents(a, b) {
		sharedSurfaces[in.Surface()] = true
	}
	for _, cd := range teach.GenerateCoBuy(a, b, 300) {
		if cd.Truth.Mode == ModeTypical && !sharedSurfaces[cd.Text] {
			t.Fatalf("typical candidate %q is not a shared intent", cd.Text)
		}
	}
}

func TestSearchBuyTypicalityHigherThanCoBuy(t *testing.T) {
	// The paper's Table 4: search-buy typicality is markedly higher than
	// co-buy. The teacher's mode mixture must reproduce this.
	c, teach := testTeacher(t)
	typicalRate := func(cands []Candidate) float64 {
		n := 0
		for _, cd := range cands {
			if cd.Truth.Typical {
				n++
			}
		}
		return float64(n) / float64(len(cands))
	}
	var co, sb []Candidate
	for _, tn := range []string{"tent", "running shoes", "dog leash", "smart watch"} {
		p := c.OfType(tn)[0]
		pt, _ := c.Type(tn)
		comp := c.OfType(pt.Complements[0])[0]
		co = append(co, teach.GenerateCoBuy(p, comp, 200)...)
		sb = append(sb, teach.GenerateSearchBuy(tn, p, 200)...)
	}
	rc, rs := typicalRate(co), typicalRate(sb)
	if rs <= rc {
		t.Errorf("search-buy typicality %.2f should exceed co-buy %.2f", rs, rc)
	}
}

func TestNoSharedIntentMeansNoTypical(t *testing.T) {
	c, teach := testTeacher(t)
	a := c.OfType("tent")[0]
	b := c.OfType("fountain pen")[0] // unrelated pair (noise co-buy)
	for _, cd := range teach.GenerateCoBuy(a, b, 200) {
		if cd.Truth.Mode == ModeTypical {
			t.Fatalf("unrelated pair produced 'typical' candidate %q", cd.Text)
		}
	}
}

func TestIncompleteCandidatesAreIncomplete(t *testing.T) {
	c, teach := testTeacher(t)
	a := c.OfType("tent")[0]
	b := c.OfType("sleeping bag")[0]
	found := false
	for _, cd := range teach.GenerateCoBuy(a, b, 1000) {
		if cd.Truth.Mode == ModeIncomplete {
			found = true
			if cd.Truth.Complete {
				t.Fatal("incomplete candidate marked complete")
			}
		}
	}
	if !found {
		t.Error("no incomplete candidates in 1000 draws")
	}
}

func TestCostAccounting(t *testing.T) {
	c := catalog.Generate(catalog.Config{ProductsPerType: 2, Seed: 1})
	t30 := NewTeacher(c, DefaultConfig(OPT30B))
	t175 := NewTeacher(c, DefaultConfig(OPT175B))
	a := c.OfType("tent")[0]
	b := c.OfType("sleeping bag")[0]
	t30.GenerateCoBuy(a, b, 50)
	t175.GenerateCoBuy(a, b, 50)
	s30, s175 := t30.Cost(), t175.Cost()
	if s30.Calls != 50 || s175.Calls != 50 {
		t.Fatalf("call counts: %d, %d", s30.Calls, s175.Calls)
	}
	if s175.SimulatedMs <= s30.SimulatedMs {
		t.Errorf("175b cost %.0f should exceed 30b cost %.0f", s175.SimulatedMs, s30.SimulatedMs)
	}
}

func TestCostMeterCustomAndReset(t *testing.T) {
	var m CostMeter
	m.ChargeCustom(CostPerTokenCosmoLM, 10)
	s := m.Snapshot()
	if s.Calls != 1 || s.Tokens != 10 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.SimulatedMs != CostPerTokenCosmoLM*(promptTokens+10) {
		t.Errorf("cost = %v", s.SimulatedMs)
	}
	m.Reset()
	if m.Snapshot() != (CostSnapshot{}) {
		t.Error("reset failed")
	}
}

func TestPromptRender(t *testing.T) {
	c, _ := testTeacher(t)
	p := c.OfType("air mattress")[0]
	prompt := SearchBuyPrompt("camping", p, relations.CapableOf)
	text := prompt.Render()
	for _, want := range []string{
		"search query caused the following product purchases",
		"camping", p.Title, "capable of", "1.",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prompt missing %q:\n%s", want, text)
		}
	}
	a := c.OfType("tent")[0]
	cp := CoBuyPrompt(a, p, relations.UsedForEve).Render()
	for _, want := range []string{"bought together", a.Title, p.Title} {
		if !strings.Contains(cp, want) {
			t.Errorf("co-buy prompt missing %q", want)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	c := catalog.Generate(catalog.Config{ProductsPerType: 2, Seed: 1})
	a := c.OfType("tent")[0]
	b := c.OfType("sleeping bag")[0]
	t1 := NewTeacher(c, DefaultConfig(OPT30B))
	t2 := NewTeacher(c, DefaultConfig(OPT30B))
	c1 := t1.GenerateCoBuy(a, b, 100)
	c2 := t2.GenerateCoBuy(a, b, 100)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("generation %d differs: %+v vs %+v", i, c1[i], c2[i])
		}
	}
}

func TestLargerTeacherIsMoreFaithful(t *testing.T) {
	c := catalog.Generate(catalog.Config{ProductsPerType: 3, Seed: 1})
	rate := func(size ModelSize) float64 {
		teach := NewTeacher(c, DefaultConfig(size))
		typ, total := 0, 0
		for _, tn := range []string{"tent", "dog leash", "smart watch"} {
			p := c.OfType(tn)[0]
			for _, g := range teach.GenerateSearchBuy(tn, p, 400) {
				total++
				if g.Truth.Typical {
					typ++
				}
			}
		}
		return float64(typ) / float64(total)
	}
	small, large := rate(OPT30B), rate(OPT175B)
	if large <= small {
		t.Errorf("175b typicality %.3f should exceed 30b %.3f", large, small)
	}
}

func BenchmarkTeacherGenerate(b *testing.B) {
	c := catalog.Generate(catalog.Config{ProductsPerType: 2, Seed: 1})
	teach := NewTeacher(c, DefaultConfig(OPT30B))
	p1 := c.OfType("tent")[0]
	p2 := c.OfType("sleeping bag")[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		teach.GenerateCoBuy(p1, p2, 5)
	}
}
