package llm

import (
	"testing"
)

// TestGenerateAtOrderIndependent: the At variants must be pure functions
// of (seed, index) — interleaving, repetition, and reversal of calls
// cannot change any item's candidates. This is the property the parallel
// pipeline's stage-2 fan-out relies on.
func TestGenerateAtOrderIndependent(t *testing.T) {
	c, teach := testTeacher(t)
	a := c.OfType("tent")[0]
	b := c.OfType("sleeping bag")[0]
	p := c.OfType("air mattress")[0]

	const n = 40
	forward := make([][]Candidate, n)
	for i := 0; i < n; i++ {
		forward[i] = teach.GenerateCoBuyAt(uint64(i), a, b, 3)
	}
	// Reverse order, with interleaved unrelated draws on the shared
	// sequential stream and other indices.
	for i := n - 1; i >= 0; i-- {
		teach.GenerateSearchBuy("camping", p, 2)
		teach.GenerateSearchBuyAt(uint64(1000+i), "camping", p, 2)
		got := teach.GenerateCoBuyAt(uint64(i), a, b, 3)
		if len(got) != len(forward[i]) {
			t.Fatalf("index %d: %d vs %d candidates", i, len(got), len(forward[i]))
		}
		for j := range got {
			if got[j] != forward[i][j] {
				t.Fatalf("index %d candidate %d differs across call orders:\n%+v\nvs\n%+v",
					i, j, got[j], forward[i][j])
			}
		}
	}
}

// TestGenerateAtDistinctStreams: different indices draw from independent
// streams (identical output across all indices would mean the index is
// being ignored).
func TestGenerateAtDistinctStreams(t *testing.T) {
	c, teach := testTeacher(t)
	a := c.OfType("tent")[0]
	b := c.OfType("sleeping bag")[0]
	distinct := map[string]bool{}
	for i := 0; i < 32; i++ {
		for _, cd := range teach.GenerateCoBuyAt(uint64(i), a, b, 2) {
			distinct[cd.Text] = true
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("32 indices produced %d distinct texts; streams are not independent", len(distinct))
	}
}

// TestGenerateAtSearchBuyDeterministic: same (index, query, product)
// always yields identical candidates.
func TestGenerateAtSearchBuyDeterministic(t *testing.T) {
	c, teach := testTeacher(t)
	p := c.OfType("air mattress")[0]
	g1 := teach.GenerateSearchBuyAt(7, "camping", p, 5)
	g2 := teach.GenerateSearchBuyAt(7, "camping", p, 5)
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("candidate %d differs on repeat call", i)
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[int64]uint64{}
	for i := uint64(0); i < 10000; i++ {
		s := DeriveSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between indices %d and %d", prev, i)
		}
		seen[s] = i
	}
	if DeriveSeed(42, 5) == DeriveSeed(43, 5) {
		t.Error("different master seeds derived the same stream seed")
	}
}
