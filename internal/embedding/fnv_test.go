package embedding

import (
	"hash/fnv"
	"math"
	"testing"

	"cosmo/internal/textproc"
)

// refHash is the original allocation-heavy feature hash the inlined
// FNV-1a path must reproduce byte for byte.
func refHash(dim int, f string) (int, float64) {
	h := fnv.New64a()
	h.Write([]byte(f)) //cosmo:lint-ignore dropped-error hash.Hash Write never returns an error (hash package contract)
	v := h.Sum64()
	idx := int(v % uint64(dim))
	sign := 1.0
	if (v>>32)&1 == 1 {
		sign = -1.0
	}
	return idx, sign
}

// refEmbed is the original Embed implementation, kept as the
// compatibility oracle: the fast path must not shift any embedding, or
// calibrated downstream thresholds (the Eq. 1 similarity filter) move.
func refEmbed(m *Model, s string) []float64 {
	vec := make([]float64, m.dim)
	toks := textproc.StemAll(textproc.Tokenize(s))
	for i, t := range toks {
		idx, sign := refHash(m.dim, "w:"+t)
		vec[idx] += sign * 1.0
		if i+1 < len(toks) {
			idx, sign = refHash(m.dim, "b:"+t+"_"+toks[i+1])
			vec[idx] += sign * 0.5
		}
		padded := "^" + t + "$"
		for j := 0; j+3 <= len(padded); j++ {
			idx, sign = refHash(m.dim, "c:"+padded[j:j+3])
			vec[idx] += sign * 0.25
		}
	}
	normalize(vec)
	return vec
}

func TestHashCompat(t *testing.T) {
	m := New(256)
	inputs := []string{
		"camping air mattress for two people",
		"used for walking the dog",
		"a", "ab", "abc",
		"the quick brown fox jumps over the lazy dog",
		"wireless noise cancelling headphones",
		"",
		"    spaced    out    tokens   ",
	}
	for _, in := range inputs {
		got := m.Embed(in)
		want := refEmbed(m, in)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Embed(%q)[%d] = %v, want %v (fast FNV path diverged)", in, i, got[i], want[i])
			}
		}
	}
}

func TestSimilarityMatchesCosine(t *testing.T) {
	m := New(128)
	pairs := [][2]string{
		{"camping air mattress", "air mattress for camping"},
		{"used for walking the dog", "wireless headphones"},
		{"", "anything"},
		{"same text", "same text"},
	}
	for _, p := range pairs {
		fast := m.Similarity(p[0], p[1])
		ref := Cosine(m.Embed(p[0]), m.Embed(p[1]))
		if math.Abs(fast-ref) > 1e-12 {
			t.Errorf("Similarity(%q, %q) = %v, Cosine = %v", p[0], p[1], fast, ref)
		}
	}
}

// BenchmarkEmbedVsReference demonstrates the allocs/op drop from
// inlining FNV-1a (no hash.Hash64 allocation, no feature-string
// concatenation); compare the fast and reference sub-benchmarks.
func BenchmarkEmbedVsReference(b *testing.B) {
	m := New(256)
	const s = "inflatable camping air mattress with built in pump for two people"
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Embed(s)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refEmbed(m, s)
		}
	})
}

func BenchmarkSimilarity(b *testing.B) {
	m := New(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Similarity("camping air mattress for two", "air mattress used for camping trips")
	}
}
