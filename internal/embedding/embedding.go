// Package embedding provides the text-embedding substrate that stands in
// for the paper's in-house e-commerce language model embeddings. It maps
// strings to dense vectors by feature-hashing word unigrams, word bigrams
// and character trigrams, then L2-normalizing. Paraphrases of the same
// behavior context share most features and therefore score high cosine
// similarity — exactly the property the paper's similarity filter
// (Eq. 1) relies on.
package embedding

import (
	"math"

	"cosmo/internal/textproc"
)

// Model embeds strings into a fixed-dimension space.
type Model struct {
	dim int
}

// New returns a model with the given embedding dimension (>= 8).
func New(dim int) *Model {
	if dim < 8 {
		dim = 8
	}
	return &Model{dim: dim}
}

// Dim returns the embedding dimension.
func (m *Model) Dim() int { return m.dim }

// Inlined FNV-1a (hash/fnv semantics, verified by TestHashCompat): the
// hot path folds feature bytes into a running state instead of
// allocating a hash.Hash64 and a concatenated feature string per
// feature. The prefix states below are the hash after consuming "w:",
// "b:", "c:" — continuing from them is byte-identical to hashing the
// concatenated string.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

var (
	wordPrefix   = fnvString(fnvOffset64, "w:")
	bigramPrefix = fnvString(fnvOffset64, "b:")
	charPrefix   = fnvString(fnvOffset64, "c:")
)

// fnvString folds s into FNV-1a state h.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// fnvByte folds one byte into FNV-1a state h.
func fnvByte(h uint64, c byte) uint64 {
	h ^= uint64(c)
	h *= fnvPrime64
	return h
}

// slot maps a finished feature hash to (index, sign).
func (m *Model) slot(v uint64) (int, float64) {
	idx := int(v % uint64(m.dim))
	sign := 1.0
	if (v>>32)&1 == 1 {
		sign = -1.0
	}
	return idx, sign
}

// padByte reads position p of the virtual padded token "^" + t + "$"
// without materializing it.
func padByte(t string, p int) byte {
	switch {
	case p == 0:
		return '^'
	case p == len(t)+1:
		return '$'
	default:
		return t[p-1]
	}
}

// Embed returns the L2-normalized embedding of s. The zero vector is
// returned for blank input. The only allocation is the sized result
// vector: hashing runs inline over the token bytes (PR 3), so the
// annotation below holds the hot path to that discipline statically.
//
//cosmo:alloc-free
func (m *Model) Embed(s string) []float64 {
	vec := make([]float64, m.dim)
	toks := textproc.StemAll(textproc.Tokenize(s))
	for i, t := range toks {
		idx, sign := m.slot(fnvString(wordPrefix, t))
		vec[idx] += sign * 1.0
		if i+1 < len(toks) {
			idx, sign = m.slot(fnvString(fnvByte(fnvString(bigramPrefix, t), '_'), toks[i+1]))
			vec[idx] += sign * 0.5
		}
		// Character trigrams of the padded token ("^" + t + "$") for
		// robustness to morphology, hashed in place over the token bytes.
		for j := 0; j+3 <= len(t)+2; j++ {
			h := charPrefix
			h = fnvByte(h, padByte(t, j))
			h = fnvByte(h, padByte(t, j+1))
			h = fnvByte(h, padByte(t, j+2))
			idx, sign = m.slot(h)
			vec[idx] += sign * 0.25
		}
	}
	normalize(vec)
	return vec
}

func normalize(v []float64) {
	n := 0.0
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
}

// Cosine returns the cosine similarity of two vectors (0 if either is
// the zero vector or lengths differ).
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Similarity embeds both strings and returns their cosine similarity —
// the paper's d(k, c) = cos(E(k), E(c)) from Eq. 1. Embed L2-normalizes
// (and returns the zero vector for blank input), so a plain dot product
// is the cosine and the per-vector norm recomputation is skipped.
func (m *Model) Similarity(a, b string) float64 {
	va, vb := m.Embed(a), m.Embed(b)
	dot := 0.0
	for i := range va {
		dot += va[i] * vb[i]
	}
	return dot
}

// Average returns the element-wise mean of the vectors, normalized;
// used to pool token or knowledge embeddings into a context vector.
func Average(vecs [][]float64) []float64 {
	if len(vecs) == 0 {
		return nil
	}
	out := make([]float64, len(vecs[0]))
	for _, v := range vecs {
		for i := range v {
			out[i] += v[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(vecs))
	}
	normalize(out)
	return out
}
