// Package embedding provides the text-embedding substrate that stands in
// for the paper's in-house e-commerce language model embeddings. It maps
// strings to dense vectors by feature-hashing word unigrams, word bigrams
// and character trigrams, then L2-normalizing. Paraphrases of the same
// behavior context share most features and therefore score high cosine
// similarity — exactly the property the paper's similarity filter
// (Eq. 1) relies on.
package embedding

import (
	"hash/fnv"
	"math"

	"cosmo/internal/textproc"
)

// Model embeds strings into a fixed-dimension space.
type Model struct {
	dim int
}

// New returns a model with the given embedding dimension (>= 8).
func New(dim int) *Model {
	if dim < 8 {
		dim = 8
	}
	return &Model{dim: dim}
}

// Dim returns the embedding dimension.
func (m *Model) Dim() int { return m.dim }

// hashFeature maps a feature string to (index, sign).
func (m *Model) hashFeature(f string) (int, float64) {
	h := fnv.New64a()
	h.Write([]byte(f)) //cosmo:lint-ignore dropped-error hash.Hash Write never returns an error (hash package contract)
	v := h.Sum64()
	idx := int(v % uint64(m.dim))
	sign := 1.0
	if (v>>32)&1 == 1 {
		sign = -1.0
	}
	return idx, sign
}

// Embed returns the L2-normalized embedding of s. The zero vector is
// returned for blank input.
func (m *Model) Embed(s string) []float64 {
	vec := make([]float64, m.dim)
	toks := textproc.StemAll(textproc.Tokenize(s))
	for i, t := range toks {
		idx, sign := m.hashFeature("w:" + t)
		vec[idx] += sign * 1.0
		if i+1 < len(toks) {
			idx, sign = m.hashFeature("b:" + t + "_" + toks[i+1])
			vec[idx] += sign * 0.5
		}
		// Character trigrams of each token for robustness to morphology.
		padded := "^" + t + "$"
		for j := 0; j+3 <= len(padded); j++ {
			idx, sign = m.hashFeature("c:" + padded[j:j+3])
			vec[idx] += sign * 0.25
		}
	}
	normalize(vec)
	return vec
}

func normalize(v []float64) {
	n := 0.0
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
}

// Cosine returns the cosine similarity of two vectors (0 if either is
// the zero vector or lengths differ).
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Similarity embeds both strings and returns their cosine similarity —
// the paper's d(k, c) = cos(E(k), E(c)) from Eq. 1.
func (m *Model) Similarity(a, b string) float64 {
	return Cosine(m.Embed(a), m.Embed(b))
}

// Average returns the element-wise mean of the vectors, normalized;
// used to pool token or knowledge embeddings into a context vector.
func Average(vecs [][]float64) []float64 {
	if len(vecs) == 0 {
		return nil
	}
	out := make([]float64, len(vecs[0]))
	for _, v := range vecs {
		for i := range v {
			out[i] += v[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(vecs))
	}
	normalize(out)
	return out
}
