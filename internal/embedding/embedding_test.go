package embedding

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmbedNormalized(t *testing.T) {
	m := New(64)
	v := m.Embed("camping air mattress")
	n := 0.0
	for _, x := range v {
		n += x * x
	}
	if math.Abs(n-1.0) > 1e-9 {
		t.Errorf("norm^2 = %v, want 1", n)
	}
}

func TestEmbedBlankIsZero(t *testing.T) {
	m := New(32)
	for _, x := range m.Embed("") {
		if x != 0 {
			t.Fatal("blank input should embed to zero vector")
		}
	}
}

func TestEmbedDeterministic(t *testing.T) {
	m := New(128)
	a := m.Embed("used for walking the dog")
	b := m.Embed("used for walking the dog")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
}

func TestSimilarityIdentity(t *testing.T) {
	m := New(128)
	if s := m.Similarity("camping tent", "camping tent"); math.Abs(s-1.0) > 1e-9 {
		t.Errorf("self-similarity = %v", s)
	}
}

func TestParaphraseScoresHigherThanUnrelated(t *testing.T) {
	m := New(256)
	// A paraphrase of the behavior context vs. genuinely new knowledge.
	context := "camping air mattress"
	paraphrase := "an air mattress for camping"
	knowledge := "capable of sleeping two adults"
	sp := m.Similarity(context, paraphrase)
	sk := m.Similarity(context, knowledge)
	if sp <= sk {
		t.Errorf("paraphrase sim %.3f should exceed knowledge sim %.3f", sp, sk)
	}
	if sp < 0.5 {
		t.Errorf("paraphrase sim too low: %.3f", sp)
	}
}

func TestMorphologicalRobustness(t *testing.T) {
	m := New(256)
	s := m.Similarity("walking the dog", "walk the dogs")
	if s < 0.6 {
		t.Errorf("inflected forms should stay similar, got %.3f", s)
	}
}

func TestCosineEdgeCases(t *testing.T) {
	if c := Cosine([]float64{1, 0}, []float64{1, 0, 0}); c != 0 {
		t.Error("mismatched lengths should be 0")
	}
	if c := Cosine([]float64{0, 0}, []float64{1, 0}); c != 0 {
		t.Error("zero vector should be 0")
	}
	if c := Cosine([]float64{1, 2}, []float64{1, 2}); math.Abs(c-1) > 1e-12 {
		t.Errorf("identical = %v", c)
	}
	if c := Cosine([]float64{1, 0}, []float64{-1, 0}); math.Abs(c+1) > 1e-12 {
		t.Errorf("opposite = %v", c)
	}
}

func TestCosineBoundedProperty(t *testing.T) {
	clamp := func(v []float64) {
		for i := range v {
			// Keep magnitudes sane; extreme float64s overflow the dot
			// product, which real embeddings (unit norm) never do.
			v[i] = math.Mod(v[i], 1e6)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
		}
	}
	f := func(a, b []float64) bool {
		if len(a) != len(b) {
			if len(a) > len(b) {
				a = a[:len(b)]
			} else {
				b = b[:len(a)]
			}
		}
		clamp(a)
		clamp(b)
		c := Cosine(a, b)
		return !math.IsNaN(c) && c >= -1.0000001 && c <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAverage(t *testing.T) {
	vecs := [][]float64{{1, 0}, {0, 1}}
	avg := Average(vecs)
	if math.Abs(avg[0]-avg[1]) > 1e-12 {
		t.Errorf("average not symmetric: %v", avg)
	}
	n := avg[0]*avg[0] + avg[1]*avg[1]
	if math.Abs(n-1) > 1e-9 {
		t.Errorf("average not normalized: %v", n)
	}
	if Average(nil) != nil {
		t.Error("empty average should be nil")
	}
}

func TestMinDim(t *testing.T) {
	m := New(1)
	if m.Dim() != 8 {
		t.Errorf("dim clamped to %d, want 8", m.Dim())
	}
}

func BenchmarkEmbed(b *testing.B) {
	m := New(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Embed("customers bought them together because they provide protection for the camera")
	}
}
