// Package filter implements COSMO's coarse-grained knowledge refinement
// (§3.3.1): rule-based filtering (sentence extraction, completeness,
// copy detection by edit distance, generic detection by frequency and
// entropy, perplexity thresholding) followed by embedding-similarity
// filtering that removes paraphrases of the behavior context (Eq. 1).
package filter

import (
	"sort"

	"cosmo/internal/embedding"
	"cosmo/internal/know"
	"cosmo/internal/relations"
	"cosmo/internal/textproc"
)

// DropReason explains why a candidate was filtered.
type DropReason string

// Drop reasons, one per filter rule.
const (
	DropNone         DropReason = ""
	DropEmpty        DropReason = "empty"
	DropIncomplete   DropReason = "incomplete-sentence"
	DropCopy         DropReason = "copies-context"
	DropNoRelation   DropReason = "unparseable-relation"
	DropPerplexity   DropReason = "high-perplexity"
	DropGeneric      DropReason = "generic"
	DropParaphrase   DropReason = "paraphrase-similarity"
	DropDuplicate    DropReason = "duplicate"
	DropShortContent DropReason = "too-short"
)

// Config tunes the filter thresholds.
type Config struct {
	// MaxEditDistanceRatio: generations within this normalized edit
	// distance of the query / product type / title are copies.
	MaxEditDistanceRatio float64
	// PerplexityQuantile sets the perplexity threshold at this quantile
	// of the candidate distribution ("tune the threshold").
	PerplexityQuantile float64
	// GenericMinFreq, GenericMinEntropy and GenericMinContexts
	// parameterize the frequency+entropy generic test: a string is
	// generic when it is frequent AND spreads near-uniformly over many
	// distinct product-type contexts. Typical knowledge is confined to
	// the handful of types sharing its intent.
	GenericMinFreq     int
	GenericMinEntropy  float64
	GenericMinContexts int
	// MaxContextSimilarity: candidates whose embedding similarity to
	// their behavior context exceeds this are paraphrases (Eq. 1).
	MaxContextSimilarity float64
	// EmbeddingDim for the similarity model.
	EmbeddingDim int
}

// DefaultConfig returns thresholds calibrated on the simulator.
func DefaultConfig() Config {
	return Config{
		MaxEditDistanceRatio: 0.25,
		PerplexityQuantile:   0.90,
		GenericMinFreq:       10,
		GenericMinEntropy:    4.0,
		GenericMinContexts:   20,
		MaxContextSimilarity: 0.62,
		EmbeddingDim:         256,
	}
}

// Result reports the outcome for one candidate.
type Result struct {
	Candidate know.Candidate
	Kept      bool
	Reason    DropReason
}

// Report summarizes a filtering run.
type Report struct {
	Input   int
	Kept    int
	Dropped map[DropReason]int
	// PerplexityThreshold is the tuned threshold actually used.
	PerplexityThreshold float64
}

// Filter holds the models needed across stages.
type Filter struct {
	cfg Config
	lm  *textproc.NgramLM
	emb *embedding.Model
}

// New builds a filter; the n-gram LM is trained lazily on the first Run.
func New(cfg Config) *Filter {
	return &Filter{cfg: cfg, emb: embedding.New(cfg.EmbeddingDim)}
}

// Run applies all coarse-grained stages in the paper's order and returns
// kept candidates (with Relation/Tail parsed) plus a per-candidate trace
// and a summary report.
func (f *Filter) Run(cands []know.Candidate) ([]know.Candidate, []Result, Report) {
	report := Report{Input: len(cands), Dropped: map[DropReason]int{}}
	results := make([]Result, len(cands))

	// Train the perplexity LM on all first-sentences; well-formed text
	// dominates, so malformed candidates land in the high-perplexity tail.
	f.lm = textproc.NewNgramLM()
	firsts := make([]string, len(cands))
	for i, c := range cands {
		firsts[i] = textproc.FirstSentence(c.Text)
		f.lm.Train(firsts[i])
	}

	// Generic detection needs corpus-level co-occurrence statistics. The
	// context is the product-type pair, not the raw head: typical
	// knowledge legitimately repeats across many products of the same
	// types, while generic knowledge spreads across unrelated types.
	co := textproc.NewCooccurrenceStats()
	for _, c := range cands {
		co.Observe(textproc.NormalizeSpace(c.Text), typeContext(c))
	}

	// Tune the perplexity threshold at the configured quantile.
	ppls := make([]float64, 0, len(cands))
	for i := range cands {
		if firsts[i] != "" {
			ppls = append(ppls, f.lm.Perplexity(firsts[i]))
		}
	}
	sort.Float64s(ppls)
	pplThreshold := 0.0
	if len(ppls) > 0 {
		idx := int(f.cfg.PerplexityQuantile * float64(len(ppls)))
		if idx >= len(ppls) {
			idx = len(ppls) - 1
		}
		pplThreshold = ppls[idx]
	}
	report.PerplexityThreshold = pplThreshold

	seen := map[string]bool{}
	var kept []know.Candidate
	for i, c := range cands {
		reason := f.check(c, firsts[i], co, pplThreshold, seen)
		results[i] = Result{Candidate: c, Kept: reason == DropNone, Reason: reason}
		if reason != DropNone {
			report.Dropped[reason]++
			continue
		}
		// Parse the triple now that the text is known-good.
		rel, tail, _ := relations.ParseGeneration(firsts[i])
		c.Text = firsts[i]
		c.Relation = rel
		c.Tail = tail
		seen[c.Key()] = true
		kept = append(kept, c)
		report.Kept++
	}
	return kept, results, report
}

func (f *Filter) check(c know.Candidate, first string, co *textproc.CooccurrenceStats,
	pplThreshold float64, seen map[string]bool) DropReason {
	if first == "" {
		return DropEmpty
	}
	if len(textproc.Tokenize(first)) < 2 {
		return DropShortContent
	}
	if !textproc.LooksComplete(first) {
		return DropIncomplete
	}
	// Copy detection against query, product types, and context title.
	for _, ref := range []string{c.Query, c.TypeA, c.TypeB, c.ContextText} {
		if ref == "" {
			continue
		}
		if textproc.NormalizedEditDistance(first, ref) <= f.cfg.MaxEditDistanceRatio {
			return DropCopy
		}
	}
	if _, _, ok := relations.ParseGeneration(first); !ok {
		return DropNoRelation
	}
	if pplThreshold > 0 && f.lm.Perplexity(first) > pplThreshold {
		return DropPerplexity
	}
	text := textproc.NormalizeSpace(c.Text)
	if co.IsGeneric(text, f.cfg.GenericMinFreq, f.cfg.GenericMinEntropy) &&
		co.DistinctContexts(text) >= f.cfg.GenericMinContexts {
		return DropGeneric
	}
	// Similarity filter (Eq. 1): paraphrases of the behavior context.
	if c.ContextText != "" {
		if f.emb.Similarity(first, c.ContextText) > f.cfg.MaxContextSimilarity {
			return DropParaphrase
		}
	}
	if seen[keyWith(c, first)] {
		return DropDuplicate
	}
	return DropNone
}

func keyWith(c know.Candidate, text string) string {
	c.Text = text
	return c.Key()
}

func typeContext(c know.Candidate) string { return c.TypeA + "|" + c.TypeB }

// Embedding exposes the filter's embedding model so downstream stages
// (e.g. COSMO-GNN knowledge vectorization) reuse the same space.
func (f *Filter) Embedding() *embedding.Model { return f.emb }
