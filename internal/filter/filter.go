// Package filter implements COSMO's coarse-grained knowledge refinement
// (§3.3.1): rule-based filtering (sentence extraction, completeness,
// copy detection by edit distance, generic detection by frequency and
// entropy, perplexity thresholding) followed by embedding-similarity
// filtering that removes paraphrases of the behavior context (Eq. 1).
package filter

import (
	"sort"

	"cosmo/internal/embedding"
	"cosmo/internal/know"
	"cosmo/internal/parallel"
	"cosmo/internal/relations"
	"cosmo/internal/textproc"
)

// DropReason explains why a candidate was filtered.
type DropReason string

// Drop reasons, one per filter rule.
const (
	DropNone         DropReason = ""
	DropEmpty        DropReason = "empty"
	DropIncomplete   DropReason = "incomplete-sentence"
	DropCopy         DropReason = "copies-context"
	DropNoRelation   DropReason = "unparseable-relation"
	DropPerplexity   DropReason = "high-perplexity"
	DropGeneric      DropReason = "generic"
	DropParaphrase   DropReason = "paraphrase-similarity"
	DropDuplicate    DropReason = "duplicate"
	DropShortContent DropReason = "too-short"
)

// Config tunes the filter thresholds.
type Config struct {
	// MaxEditDistanceRatio: generations within this normalized edit
	// distance of the query / product type / title are copies.
	MaxEditDistanceRatio float64
	// PerplexityQuantile sets the perplexity threshold at this quantile
	// of the candidate distribution ("tune the threshold").
	PerplexityQuantile float64
	// GenericMinFreq, GenericMinEntropy and GenericMinContexts
	// parameterize the frequency+entropy generic test: a string is
	// generic when it is frequent AND spreads near-uniformly over many
	// distinct product-type contexts. Typical knowledge is confined to
	// the handful of types sharing its intent.
	GenericMinFreq     int
	GenericMinEntropy  float64
	GenericMinContexts int
	// MaxContextSimilarity: candidates whose embedding similarity to
	// their behavior context exceeds this are paraphrases (Eq. 1).
	MaxContextSimilarity float64
	// EmbeddingDim for the similarity model.
	EmbeddingDim int
	// Workers bounds the per-candidate fan-out (<= 0 means GOMAXPROCS).
	// The worker count never changes the output: per-candidate checks
	// run against read-only models and merge in input order.
	Workers int
}

// DefaultConfig returns thresholds calibrated on the simulator.
func DefaultConfig() Config {
	return Config{
		MaxEditDistanceRatio: 0.25,
		PerplexityQuantile:   0.90,
		GenericMinFreq:       10,
		GenericMinEntropy:    4.0,
		GenericMinContexts:   20,
		MaxContextSimilarity: 0.62,
		EmbeddingDim:         256,
	}
}

// Result reports the outcome for one candidate.
type Result struct {
	Candidate know.Candidate
	Kept      bool
	Reason    DropReason
}

// Report summarizes a filtering run.
type Report struct {
	Input   int
	Kept    int
	Dropped map[DropReason]int
	// PerplexityThreshold is the tuned threshold actually used.
	PerplexityThreshold float64
}

// Filter holds the models needed across stages.
type Filter struct {
	cfg Config
	lm  *textproc.NgramLM
	emb *embedding.Model
}

// New builds a filter; the n-gram LM is trained lazily on the first Run.
func New(cfg Config) *Filter {
	return &Filter{cfg: cfg, emb: embedding.New(cfg.EmbeddingDim)}
}

// view carries the per-candidate text derivations computed exactly once
// and reused by every later stage (LM training, co-occurrence, checks,
// and the kept-candidate parse).
type view struct {
	first     string // first sentence of the raw text
	norm      string // NormalizeSpace of the raw text
	numTokens int    // token count of first
}

// verdict is the order-independent part of a candidate's outcome; the
// duplicate check is order-sensitive and applied at merge time.
type verdict struct {
	reason DropReason
	rel    relations.Relation
	tail   string
}

// Run applies all coarse-grained stages in the paper's order and returns
// kept candidates (with Relation/Tail parsed) plus a per-candidate trace
// and a summary report. Model fitting (perplexity LM, co-occurrence
// stats, threshold tuning) is sequential; the per-candidate checks then
// fan out across cfg.Workers since the fitted models are read-only. The
// output is identical for every worker count: results merge in input
// order, and the one order-sensitive rule (duplicate detection) runs in
// that sequential merge.
func (f *Filter) Run(cands []know.Candidate) ([]know.Candidate, []Result, Report) {
	report := Report{Input: len(cands), Dropped: map[DropReason]int{}}
	results := make([]Result, len(cands))

	// Tokenize / first-sentence each candidate exactly once, in parallel.
	views := parallel.Map(f.cfg.Workers, cands, func(i int, c know.Candidate) view {
		first := textproc.FirstSentence(c.Text)
		return view{
			first:     first,
			norm:      textproc.NormalizeSpace(c.Text),
			numTokens: len(textproc.Tokenize(first)),
		}
	})

	// Train the perplexity LM on all first-sentences; well-formed text
	// dominates, so malformed candidates land in the high-perplexity tail.
	f.lm = textproc.NewNgramLM()
	for i := range cands {
		f.lm.Train(views[i].first)
	}

	// Generic detection needs corpus-level co-occurrence statistics. The
	// context is the product-type pair, not the raw head: typical
	// knowledge legitimately repeats across many products of the same
	// types, while generic knowledge spreads across unrelated types.
	co := textproc.NewCooccurrenceStats()
	for i, c := range cands {
		co.Observe(views[i].norm, typeContext(c))
	}

	// Tune the perplexity threshold at the configured quantile. The LM is
	// frozen now, so scoring fans out.
	scored := parallel.Map(f.cfg.Workers, views, func(i int, v view) float64 {
		if v.first == "" {
			return -1
		}
		return f.lm.Perplexity(v.first)
	})
	ppls := make([]float64, 0, len(cands))
	for _, p := range scored {
		if p >= 0 {
			ppls = append(ppls, p)
		}
	}
	sort.Float64s(ppls)
	pplThreshold := 0.0
	if len(ppls) > 0 {
		idx := int(f.cfg.PerplexityQuantile * float64(len(ppls)))
		if idx >= len(ppls) {
			idx = len(ppls) - 1
		}
		pplThreshold = ppls[idx]
	}
	report.PerplexityThreshold = pplThreshold

	// Per-candidate rule checks: pure reads of the fitted models.
	verdicts := parallel.Map(f.cfg.Workers, cands, func(i int, c know.Candidate) verdict {
		return f.check(c, views[i], co, pplThreshold)
	})

	// Order-preserving merge: duplicate detection and the report counts
	// depend on input order, so they stay sequential.
	seen := map[string]bool{}
	var kept []know.Candidate
	for i, c := range cands {
		reason := verdicts[i].reason
		if reason == DropNone && seen[keyWith(c, views[i].first)] {
			reason = DropDuplicate
		}
		results[i] = Result{Candidate: c, Kept: reason == DropNone, Reason: reason}
		if reason != DropNone {
			report.Dropped[reason]++
			continue
		}
		// The triple was parsed during the check; reuse it.
		c.Text = views[i].first
		c.Relation = verdicts[i].rel
		c.Tail = verdicts[i].tail
		seen[c.Key()] = true
		kept = append(kept, c)
		report.Kept++
	}
	return kept, results, report
}

func (f *Filter) check(c know.Candidate, v view, co *textproc.CooccurrenceStats,
	pplThreshold float64) verdict {
	first := v.first
	if first == "" {
		return verdict{reason: DropEmpty}
	}
	if v.numTokens < 2 {
		return verdict{reason: DropShortContent}
	}
	if !textproc.LooksComplete(first) {
		return verdict{reason: DropIncomplete}
	}
	// Copy detection against query, product types, and context title.
	for _, ref := range []string{c.Query, c.TypeA, c.TypeB, c.ContextText} {
		if ref == "" {
			continue
		}
		if textproc.NormalizedEditDistance(first, ref) <= f.cfg.MaxEditDistanceRatio {
			return verdict{reason: DropCopy}
		}
	}
	rel, tail, ok := relations.ParseGeneration(first)
	if !ok {
		return verdict{reason: DropNoRelation}
	}
	if pplThreshold > 0 && f.lm.Perplexity(first) > pplThreshold {
		return verdict{reason: DropPerplexity}
	}
	if co.IsGeneric(v.norm, f.cfg.GenericMinFreq, f.cfg.GenericMinEntropy) &&
		co.DistinctContexts(v.norm) >= f.cfg.GenericMinContexts {
		return verdict{reason: DropGeneric}
	}
	// Similarity filter (Eq. 1): paraphrases of the behavior context.
	if c.ContextText != "" {
		if f.emb.Similarity(first, c.ContextText) > f.cfg.MaxContextSimilarity {
			return verdict{reason: DropParaphrase}
		}
	}
	return verdict{rel: rel, tail: tail}
}

func keyWith(c know.Candidate, text string) string {
	c.Text = text
	return c.Key()
}

func typeContext(c know.Candidate) string { return c.TypeA + "|" + c.TypeB }

// Embedding exposes the filter's embedding model so downstream stages
// (e.g. COSMO-GNN knowledge vectorization) reuse the same space.
func (f *Filter) Embedding() *embedding.Model { return f.emb }
