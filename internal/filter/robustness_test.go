package filter

import (
	"strings"
	"testing"
	"testing/quick"

	"cosmo/internal/know"
	"cosmo/internal/llm"
)

// TestFilterNeverPanicsOnArbitraryText injects arbitrary (including
// malformed unicode) candidate text and asserts the filter survives and
// accounts for every candidate.
func TestFilterNeverPanicsOnArbitraryText(t *testing.T) {
	f := func(texts []string) bool {
		cands := make([]know.Candidate, len(texts))
		for i, txt := range texts {
			cands[i] = know.Candidate{
				ID: i, Behavior: know.SearchBuy, Query: "q", ProductA: "P1",
				TypeA: "thing", ContextText: "q thing", Text: txt,
			}
		}
		flt := New(DefaultConfig())
		kept, results, report := flt.Run(cands)
		dropped := 0
		for _, n := range report.Dropped {
			dropped += n
		}
		return len(results) == len(cands) && report.Kept+dropped == len(cands) &&
			len(kept) == report.Kept
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterHandlesAdversarialCandidates(t *testing.T) {
	adversarial := []know.Candidate{
		{ID: 1, Text: ""},
		{ID: 2, Text: "   \n\t  "},
		{ID: 3, Text: strings.Repeat("used for camping ", 500)}, // huge
		{ID: 4, Text: "used for \x00\x01 control bytes"},
		{ID: 5, Text: "used for 日本語のテキスト"},
		{ID: 6, Text: "USED FOR SHOUTING LOUDLY"},
		{ID: 7, Text: "used for. . . . ellipses. . ."},
		{ID: 8, Query: "q", Text: "q"}, // exact copy of the query
	}
	flt := New(DefaultConfig())
	kept, results, report := flt.Run(adversarial)
	if len(results) != len(adversarial) {
		t.Fatalf("results %d", len(results))
	}
	if report.Input != len(adversarial) {
		t.Fatalf("report input %d", report.Input)
	}
	// The empty and whitespace candidates must be dropped.
	for _, r := range results[:2] {
		if r.Kept {
			t.Errorf("blank candidate kept: %+v", r.Candidate)
		}
	}
	_ = kept
}

func TestFilterSingleCandidate(t *testing.T) {
	flt := New(DefaultConfig())
	kept, _, _ := flt.Run([]know.Candidate{{
		ID: 1, Behavior: know.SearchBuy, Query: "camping",
		ProductA: "P1", TypeA: "tent", ContextText: "camping Acme tent",
		Text:  "capable of sheltering four people",
		Truth: llm.Truth{Complete: true, Relevant: true, Informative: true, Plausible: true, Typical: true},
	}})
	if len(kept) != 1 {
		t.Errorf("well-formed single candidate dropped (kept=%d)", len(kept))
	}
}
