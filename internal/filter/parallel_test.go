package filter

import (
	"reflect"
	"testing"
)

// TestFilterWorkersEquivalence: the filter's output — kept candidates,
// per-candidate trace, and report — must be identical for any worker
// count. Duplicate detection is the order-sensitive rule this guards.
func TestFilterWorkersEquivalence(t *testing.T) {
	cands := buildCandidates(t, 3000)
	var refKept, refResults, refReport = func() (any, any, any) {
		cfg := DefaultConfig()
		cfg.Workers = 1
		kept, results, report := New(cfg).Run(cands)
		return kept, results, report
	}()
	for _, workers := range []int{2, 3, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		kept, results, report := New(cfg).Run(cands)
		if !reflect.DeepEqual(refKept, any(kept)) {
			t.Fatalf("workers=%d: kept candidates differ from sequential run", workers)
		}
		if !reflect.DeepEqual(refResults, any(results)) {
			t.Fatalf("workers=%d: per-candidate results differ from sequential run", workers)
		}
		if !reflect.DeepEqual(refReport, any(report)) {
			t.Fatalf("workers=%d: report differs from sequential run", workers)
		}
	}
}
