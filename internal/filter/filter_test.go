package filter

import (
	"testing"

	"cosmo/internal/behavior"
	"cosmo/internal/catalog"
	"cosmo/internal/know"
	"cosmo/internal/llm"
)

// buildCandidates generates a realistic candidate corpus from the teacher
// over sampled behaviors.
func buildCandidates(t *testing.T, n int) []know.Candidate {
	t.Helper()
	c := catalog.Generate(catalog.Config{ProductsPerType: 4, Seed: 1})
	log := behavior.Simulate(c, behavior.Config{
		Seed: 2, CoBuyEvents: 4000, SearchEvents: 4000,
		NoiseRate: 0.25, BroadQueryRate: 0.4,
	})
	teach := llm.NewTeacher(c, llm.DefaultConfig(llm.OPT30B))
	var cands []know.Candidate
	id := 0
	for _, e := range log.CoBuys {
		if len(cands) >= n/2 {
			break
		}
		pa, _ := c.ByID(e.A)
		pb, _ := c.ByID(e.B)
		for _, g := range teach.GenerateCoBuy(pa, pb, 2) {
			id++
			cands = append(cands, know.Candidate{
				ID: id, Behavior: know.CoBuy, Domain: pa.Category,
				ProductA: e.A, ProductB: e.B,
				TypeA: pa.Type, TypeB: pb.Type,
				ContextText: pa.Title + " and " + pb.Title,
				Text:        g.Text, Truth: g.Truth,
			})
		}
	}
	for _, e := range log.SearchBuys {
		if len(cands) >= n {
			break
		}
		p, _ := c.ByID(e.ProductID)
		for _, g := range teach.GenerateSearchBuy(e.Query, p, 2) {
			id++
			cands = append(cands, know.Candidate{
				ID: id, Behavior: know.SearchBuy, Domain: p.Category,
				Query: e.Query, ProductA: e.ProductID,
				TypeA:       p.Type,
				ContextText: e.Query + " " + p.Title,
				Text:        g.Text, Truth: g.Truth,
			})
		}
	}
	return cands
}

func TestFilterImprovesPrecision(t *testing.T) {
	cands := buildCandidates(t, 4000)
	f := New(DefaultConfig())
	kept, results, report := f.Run(cands)
	if report.Input != len(cands) {
		t.Fatalf("report input %d != %d", report.Input, len(cands))
	}
	if report.Kept != len(kept) {
		t.Fatalf("report kept %d != %d", report.Kept, len(kept))
	}
	if len(results) != len(cands) {
		t.Fatalf("results length %d", len(results))
	}
	plausibleRate := func(cs []know.Candidate) float64 {
		n := 0
		for _, c := range cs {
			if c.Truth.Plausible {
				n++
			}
		}
		return float64(n) / float64(len(cs))
	}
	before := plausibleRate(cands)
	after := plausibleRate(kept)
	if after <= before {
		t.Errorf("filtering should raise plausible rate: %.3f -> %.3f", before, after)
	}
	if len(kept) == 0 || len(kept) == len(cands) {
		t.Errorf("implausible kept count %d of %d", len(kept), len(cands))
	}
}

func TestFilterDropsMostIncomplete(t *testing.T) {
	cands := buildCandidates(t, 3000)
	f := New(DefaultConfig())
	kept, _, _ := f.Run(cands)
	in, out := 0, 0
	for _, c := range cands {
		if c.Truth.Mode == llm.ModeIncomplete {
			in++
		}
	}
	for _, c := range kept {
		if c.Truth.Mode == llm.ModeIncomplete {
			out++
		}
	}
	if in == 0 {
		t.Skip("no incomplete candidates")
	}
	// Some truncations happen to read as complete phrases ("used for
	// support the baby") and leak through, as in any real filter; the
	// bulk must be removed.
	if rate := float64(out) / float64(in); rate > 0.30 {
		t.Errorf("incomplete survival rate %.2f too high (%d of %d)", rate, out, in)
	}
}

func TestFilterParsesKept(t *testing.T) {
	cands := buildCandidates(t, 3000)
	f := New(DefaultConfig())
	kept, _, _ := f.Run(cands)
	for _, c := range kept {
		if c.Relation == "" || c.Tail == "" {
			t.Errorf("kept candidate missing triple: %+v", c)
		}
	}
}

func TestFilterDropsMostParaphrases(t *testing.T) {
	cands := buildCandidates(t, 4000)
	f := New(DefaultConfig())
	kept, _, _ := f.Run(cands)
	para := 0
	for _, c := range kept {
		if c.Truth.Mode == llm.ModeParaphrase {
			para++
		}
	}
	paraIn := 0
	for _, c := range cands {
		if c.Truth.Mode == llm.ModeParaphrase {
			paraIn++
		}
	}
	if paraIn == 0 {
		t.Skip("no paraphrases generated")
	}
	if rate := float64(para) / float64(paraIn); rate > 0.35 {
		t.Errorf("paraphrase survival rate %.2f too high (%d of %d)", rate, para, paraIn)
	}
}

func TestFilterKeepsMostTypical(t *testing.T) {
	cands := buildCandidates(t, 4000)
	f := New(DefaultConfig())
	kept, _, _ := f.Run(cands)
	typIn, typKept := 0, 0
	for _, c := range cands {
		if c.Truth.Mode == llm.ModeTypical {
			typIn++
		}
	}
	for _, c := range kept {
		if c.Truth.Mode == llm.ModeTypical {
			typKept++
		}
	}
	if typIn == 0 {
		t.Fatal("no typical candidates in corpus")
	}
	// The paper's goal: "remove quite a large amount of noise and keep
	// typical knowledge as much as possible". Duplicate removal is
	// expected (same typical fact for the same head), so measure recall
	// over distinct keys.
	distinctTyp := map[string]bool{}
	for _, c := range cands {
		if c.Truth.Mode == llm.ModeTypical {
			distinctTyp[c.Key()] = true
		}
	}
	if rate := float64(typKept) / float64(len(distinctTyp)); rate < 0.6 {
		t.Errorf("typical retention %.2f too low (%d of %d distinct)", rate, typKept, len(distinctTyp))
	}
}

func TestFilterDropsDuplicates(t *testing.T) {
	cands := buildCandidates(t, 2000)
	// Duplicate the whole corpus: every kept candidate appears twice.
	dup := append(append([]know.Candidate{}, cands...), cands...)
	f := New(DefaultConfig())
	kept, _, _ := f.Run(dup)
	seen := map[string]bool{}
	for _, c := range kept {
		if seen[c.Key()] {
			t.Fatalf("duplicate survived: %q", c.Key())
		}
		seen[c.Key()] = true
	}
}

func TestReportAccountsForEveryCandidate(t *testing.T) {
	cands := buildCandidates(t, 2500)
	f := New(DefaultConfig())
	_, _, report := f.Run(cands)
	dropped := 0
	for _, n := range report.Dropped {
		dropped += n
	}
	if report.Kept+dropped != report.Input {
		t.Errorf("kept %d + dropped %d != input %d", report.Kept, dropped, report.Input)
	}
}

func TestEmptyInput(t *testing.T) {
	f := New(DefaultConfig())
	kept, results, report := f.Run(nil)
	if len(kept) != 0 || len(results) != 0 || report.Input != 0 {
		t.Error("empty input should produce empty output")
	}
}

func BenchmarkFilterRun(b *testing.B) {
	c := catalog.Generate(catalog.Config{ProductsPerType: 3, Seed: 1})
	teach := llm.NewTeacher(c, llm.DefaultConfig(llm.OPT30B))
	pa := c.OfType("tent")[0]
	pb := c.OfType("sleeping bag")[0]
	var cands []know.Candidate
	for i, g := range teach.GenerateCoBuy(pa, pb, 500) {
		cands = append(cands, know.Candidate{
			ID: i, Behavior: know.CoBuy, Domain: pa.Category,
			ProductA: pa.ID, ProductB: pb.ID, TypeA: pa.Type, TypeB: pb.Type,
			ContextText: pa.Title + " and " + pb.Title,
			Text:        g.Text, Truth: g.Truth,
		})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := New(DefaultConfig())
		f.Run(cands)
	}
}
