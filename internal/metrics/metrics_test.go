package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfusionPerfect(t *testing.T) {
	c := NewConfusion(4)
	for k := 0; k < 4; k++ {
		for i := 0; i < 10; i++ {
			c.Add(k, k)
		}
	}
	if f := c.MacroF1(); f != 1.0 {
		t.Errorf("perfect MacroF1 = %v", f)
	}
	if f := c.MicroF1(); f != 1.0 {
		t.Errorf("perfect MicroF1 = %v", f)
	}
	if c.Total() != 40 {
		t.Errorf("total = %d", c.Total())
	}
}

func TestConfusionKnownValues(t *testing.T) {
	// Binary case: TP=8 FN=2 FP=3 TN=7 for class 1.
	c := NewConfusion(2)
	for i := 0; i < 8; i++ {
		c.Add(1, 1)
	}
	for i := 0; i < 2; i++ {
		c.Add(1, 0)
	}
	for i := 0; i < 3; i++ {
		c.Add(0, 1)
	}
	for i := 0; i < 7; i++ {
		c.Add(0, 0)
	}
	f1s := c.PerClassF1()
	// class 1: precision 8/11, recall 8/10, F1 = 2*8/(16+3+2) = 16/21.
	if math.Abs(f1s[1]-16.0/21.0) > 1e-12 {
		t.Errorf("class-1 F1 = %v, want %v", f1s[1], 16.0/21.0)
	}
	// Micro F1 == accuracy == 15/20.
	if math.Abs(c.MicroF1()-0.75) > 1e-12 {
		t.Errorf("MicroF1 = %v", c.MicroF1())
	}
}

func TestConfusionImbalancePenalizesMacro(t *testing.T) {
	// A classifier that always predicts the majority class has high
	// micro F1 but low macro F1 — the reason the paper reports both.
	c := NewConfusion(4)
	for i := 0; i < 90; i++ {
		c.Add(0, 0)
	}
	for k := 1; k < 4; k++ {
		for i := 0; i < 4; i++ {
			c.Add(k, 0) // minority classes all mispredicted
		}
	}
	if c.MicroF1() < 0.85 {
		t.Errorf("micro = %v", c.MicroF1())
	}
	if c.MacroF1() > 0.30 {
		t.Errorf("macro = %v should be low", c.MacroF1())
	}
}

func TestConfusionIgnoresOutOfRange(t *testing.T) {
	c := NewConfusion(2)
	c.Add(-1, 0)
	c.Add(0, 5)
	if c.Total() != 0 {
		t.Error("out-of-range observations must be ignored")
	}
	if c.MicroF1() != 0 || c.MacroF1() != 0 {
		t.Error("empty matrix scores must be 0")
	}
}

func TestRankMetrics(t *testing.T) {
	m := NewRankMetrics(10)
	m.AddRank(1)  // hit, ndcg 1, mrr 1
	m.AddRank(2)  // hit, ndcg 1/log2(3), mrr 0.5
	m.AddRank(11) // miss
	m.AddRank(0)  // not ranked
	if m.Count() != 4 {
		t.Errorf("count = %d", m.Count())
	}
	if math.Abs(m.Hits()-0.5) > 1e-12 {
		t.Errorf("hits = %v", m.Hits())
	}
	wantNDCG := (1 + 1/math.Log2(3)) / 4
	if math.Abs(m.NDCG()-wantNDCG) > 1e-12 {
		t.Errorf("ndcg = %v, want %v", m.NDCG(), wantNDCG)
	}
	if math.Abs(m.MRR()-1.5/4) > 1e-12 {
		t.Errorf("mrr = %v", m.MRR())
	}
}

func TestRankMetricsEmpty(t *testing.T) {
	m := NewRankMetrics(10)
	if m.Hits() != 0 || m.NDCG() != 0 || m.MRR() != 0 {
		t.Error("empty metrics should be 0")
	}
}

func TestRankOf(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5}
	if r := RankOf(scores, 1); r != 1 {
		t.Errorf("rank of best = %d", r)
	}
	if r := RankOf(scores, 2); r != 2 {
		t.Errorf("rank of middle = %d", r)
	}
	if r := RankOf(scores, 0); r != 3 {
		t.Errorf("rank of worst = %d", r)
	}
	if r := RankOf(scores, 7); r != 0 {
		t.Errorf("rank of missing = %d", r)
	}
	if r := RankOf(nil, 0); r != 0 {
		t.Errorf("rank in empty = %d", r)
	}
}

func TestRankOfTieStability(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5}
	if r := RankOf(scores, 0); r != 1 {
		t.Errorf("first tied item rank = %d", r)
	}
	if r := RankOf(scores, 2); r != 3 {
		t.Errorf("last tied item rank = %d", r)
	}
}

func TestHitsMonotoneInKProperty(t *testing.T) {
	f := func(ranks []uint8) bool {
		m5 := NewRankMetrics(5)
		m10 := NewRankMetrics(10)
		for _, r := range ranks {
			m5.AddRank(int(r))
			m10.AddRank(int(r))
		}
		return m10.Hits() >= m5.Hits()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64() + 10
	}
	lo, hi := BootstrapCI(rng, xs, 1000, 0.05)
	if lo >= hi {
		t.Fatalf("lo %v >= hi %v", lo, hi)
	}
	m := Mean(xs)
	if m < lo || m > hi {
		t.Errorf("mean %v outside CI [%v,%v]", m, lo, hi)
	}
	if hi-lo > 0.5 {
		t.Errorf("CI too wide: %v", hi-lo)
	}
}

func TestBootstrapCIEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lo, hi := BootstrapCI(rng, nil, 100, 0.05)
	if lo != 0 || hi != 0 {
		t.Error("empty input should give zero CI")
	}
}

func TestMeanAndLift(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean")
	}
	if RelativeLift(100, 107) != 0.07 {
		t.Errorf("lift = %v", RelativeLift(100, 107))
	}
	if RelativeLift(0, 5) != 0 {
		t.Error("zero control lift")
	}
}
