// Package metrics implements the evaluation metrics used across the
// paper's experiments: Macro/Micro F1 for the four-class ESCI relevance
// task (Table 6, Figure 7), Hits@K / NDCG@K / MRR@K for session-based
// recommendation (Table 8), and bootstrap confidence intervals for the
// online A/B analysis.
package metrics

import (
	"math"
	"math/rand"
	"sort"
)

// Confusion is a multi-class confusion matrix over classes 0..K-1.
type Confusion struct {
	K     int
	Cells [][]int // Cells[true][pred]
}

// NewConfusion returns an empty KxK matrix.
func NewConfusion(k int) *Confusion {
	cells := make([][]int, k)
	for i := range cells {
		cells[i] = make([]int, k)
	}
	return &Confusion{K: k, Cells: cells}
}

// Add records one (true, predicted) observation.
func (c *Confusion) Add(truth, pred int) {
	if truth < 0 || truth >= c.K || pred < 0 || pred >= c.K {
		return
	}
	c.Cells[truth][pred]++
}

// Total returns the number of recorded observations.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Cells {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// PerClassF1 returns the F1 of each class (0 when undefined).
func (c *Confusion) PerClassF1() []float64 {
	out := make([]float64, c.K)
	for k := 0; k < c.K; k++ {
		tp := c.Cells[k][k]
		fp, fn := 0, 0
		for j := 0; j < c.K; j++ {
			if j == k {
				continue
			}
			fp += c.Cells[j][k]
			fn += c.Cells[k][j]
		}
		denom := 2*tp + fp + fn
		if denom == 0 {
			out[k] = 0
			continue
		}
		out[k] = 2 * float64(tp) / float64(denom)
	}
	return out
}

// MacroF1 returns the unweighted mean of per-class F1 scores.
func (c *Confusion) MacroF1() float64 {
	f1s := c.PerClassF1()
	if len(f1s) == 0 {
		return 0
	}
	s := 0.0
	for _, f := range f1s {
		s += f
	}
	return s / float64(len(f1s))
}

// MicroF1 returns the micro-averaged F1, which for single-label
// multi-class classification equals accuracy.
func (c *Confusion) MicroF1() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	tp := 0
	for k := 0; k < c.K; k++ {
		tp += c.Cells[k][k]
	}
	return float64(tp) / float64(total)
}

// RankMetrics accumulates Hits@K, NDCG@K and MRR@K over queries.
type RankMetrics struct {
	K     int
	hits  float64
	ndcg  float64
	mrr   float64
	total int
}

// NewRankMetrics returns an accumulator for cutoff K.
func NewRankMetrics(k int) *RankMetrics { return &RankMetrics{K: k} }

// AddRank records one query whose correct item appeared at rank
// (1-based); pass rank <= 0 when the item was not ranked at all.
func (m *RankMetrics) AddRank(rank int) {
	m.total++
	if rank <= 0 || rank > m.K {
		return
	}
	m.hits++
	m.ndcg += 1 / math.Log2(float64(rank)+1)
	m.mrr += 1 / float64(rank)
}

// Hits returns Hits@K in [0,1].
func (m *RankMetrics) Hits() float64 { return m.ratio(m.hits) }

// NDCG returns NDCG@K in [0,1] (single relevant item per query).
func (m *RankMetrics) NDCG() float64 { return m.ratio(m.ndcg) }

// MRR returns MRR@K in [0,1].
func (m *RankMetrics) MRR() float64 { return m.ratio(m.mrr) }

// Count returns the number of queries recorded.
func (m *RankMetrics) Count() int { return m.total }

func (m *RankMetrics) ratio(v float64) float64 {
	if m.total == 0 {
		return 0
	}
	return v / float64(m.total)
}

// RankOf returns the 1-based rank of target within scores (higher score
// = better rank), or 0 if target is not present. Ties are broken by
// index order.
func RankOf(scores []float64, target int) int {
	if target < 0 || target >= len(scores) {
		return 0
	}
	type pair struct {
		idx int
		s   float64
	}
	ps := make([]pair, len(scores))
	for i, s := range scores {
		ps[i] = pair{i, s}
	}
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].s > ps[j].s })
	for r, p := range ps {
		if p.idx == target {
			return r + 1
		}
	}
	return 0
}

// BootstrapCI estimates a (1-alpha) confidence interval for the mean of
// xs using nboot resamples with the given rng.
func BootstrapCI(rng *rand.Rand, xs []float64, nboot int, alpha float64) (lo, hi float64) {
	if len(xs) == 0 || nboot <= 0 {
		return 0, 0
	}
	means := make([]float64, nboot)
	for b := 0; b < nboot; b++ {
		s := 0.0
		for i := 0; i < len(xs); i++ {
			s += xs[rng.Intn(len(xs))]
		}
		means[b] = s / float64(len(xs))
	}
	sort.Float64s(means)
	loIdx := int(alpha / 2 * float64(nboot))
	hiIdx := int((1 - alpha/2) * float64(nboot))
	if hiIdx >= nboot {
		hiIdx = nboot - 1
	}
	return means[loIdx], means[hiIdx]
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// RelativeLift returns (treatment-control)/control; 0 if control is 0.
func RelativeLift(control, treatment float64) float64 {
	if control == 0 {
		return 0
	}
	return (treatment - control) / control
}
