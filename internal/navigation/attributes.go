package navigation

import (
	"sort"
	"strings"

	"cosmo/internal/catalog"
)

// AttributeOption is one attribute-based refinement (Figure 9's third
// layer): after the shopper has narrowed to an intention, the result set
// is filtered by product attributes such as brand or feature adjectives.
type AttributeOption struct {
	// Kind is "brand" or "feature".
	Kind string
	// Value is the attribute surface ("Acme", "Waterproof").
	Value string
	// Count is how many candidate products carry the attribute.
	Count int
}

// AttributeOptions mines refinement attributes from a candidate product
// list. Brands come from the catalog record; features are the title
// adjectives preceding the product-type name.
func AttributeOptions(cat *catalog.Catalog, productIDs []string, k int) []AttributeOption {
	brands := map[string]int{}
	features := map[string]int{}
	for _, id := range productIDs {
		p, ok := cat.ByID(id)
		if !ok {
			continue
		}
		brands[p.Brand]++
		// The feature adjective sits between the brand and the type in
		// generated titles: "<Brand> <Feature...> <type> [suffix]".
		rest := strings.TrimPrefix(p.Title, p.Brand+" ")
		if i := strings.Index(rest, p.Type); i > 0 {
			if f := strings.TrimSpace(rest[:i]); f != "" {
				features[f]++
			}
		}
	}
	var out []AttributeOption
	for v, c := range brands {
		out = append(out, AttributeOption{Kind: "brand", Value: v, Count: c})
	}
	for v, c := range features {
		out = append(out, AttributeOption{Kind: "feature", Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Value < out[j].Value
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// FilterByAttribute returns the subset of productIDs matching the option.
func FilterByAttribute(cat *catalog.Catalog, productIDs []string, opt AttributeOption) []string {
	var out []string
	for _, id := range productIDs {
		p, ok := cat.ByID(id)
		if !ok {
			continue
		}
		switch opt.Kind {
		case "brand":
			if p.Brand == opt.Value {
				out = append(out, id)
			}
		case "feature":
			if strings.Contains(p.Title, opt.Value) {
				out = append(out, id)
			}
		}
	}
	return out
}
