// Package navigation reproduces COSMO's search-navigation application
// (§4.3): intention knowledge organized into a hierarchy (Figure 8)
// drives a multi-turn navigation experience (Figure 9) — broad concept
// interpretation, product-type discovery, attribute refinement — and an
// agent-based online A/B experiment measuring the §4.3.2 endpoints
// (relative product-sales lift and navigation engagement rate).
package navigation

import (
	"sort"
	"strings"

	"cosmo/internal/kg"
	"cosmo/internal/textproc"
)

// Suggestion is one navigation refinement offered to the shopper.
type Suggestion struct {
	// Label is the refinement surface ("winter camping").
	Label string
	// Products are product labels linked to the refined intention.
	Products []string
	// Support is the KG evidence weight behind the suggestion.
	Support int
}

// Navigator serves multi-turn navigation from a COSMO knowledge graph.
type Navigator struct {
	roots  []*kg.HierarchyNode
	byStem map[string][]*kg.HierarchyNode // content stem -> nodes
}

// NewNavigator indexes the intention hierarchy of a frozen knowledge
// graph. Navigation is an online surface, so it reads the immutable
// snapshot — never the locked mutable Graph (enforced by the
// frozen-serving lint check); a refresh builds a new Navigator from a
// new snapshot.
func NewNavigator(snap *kg.Snapshot, minSupport int) *Navigator {
	n := &Navigator{byStem: map[string][]*kg.HierarchyNode{}}
	n.roots = snap.BuildHierarchy(minSupport)
	var walk func(node *kg.HierarchyNode)
	walk = func(node *kg.HierarchyNode) {
		for _, s := range textproc.StemAll(textproc.ContentTokens(node.Label)) {
			n.byStem[s] = append(n.byStem[s], node)
		}
		for _, c := range node.Children {
			walk(c)
		}
	}
	for _, r := range n.roots {
		walk(r)
	}
	return n
}

// match finds hierarchy nodes whose label shares stems with the query,
// ranked by (stem overlap, support).
func (n *Navigator) match(query string) []*kg.HierarchyNode {
	stems := textproc.StemAll(textproc.ContentTokens(query))
	scores := map[*kg.HierarchyNode]int{}
	for _, s := range stems {
		for _, node := range n.byStem[s] {
			scores[node]++
		}
	}
	nodes := make([]*kg.HierarchyNode, 0, len(scores))
	for node := range scores {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if scores[nodes[i]] != scores[nodes[j]] {
			return scores[nodes[i]] > scores[nodes[j]]
		}
		if nodes[i].EdgeCount != nodes[j].EdgeCount {
			return nodes[i].EdgeCount > nodes[j].EdgeCount
		}
		return nodes[i].Label < nodes[j].Label
	})
	return nodes
}

// Refine returns up to k refinement suggestions for a query: the matched
// intention's children (fine-grained intents) when it has any, otherwise
// sibling intentions sharing the query stem. This is the paper's
// "camping" → {"winter camping", "lakeside camping", ...} step.
func (n *Navigator) Refine(query string, k int) []Suggestion {
	matched := n.match(query)
	if len(matched) == 0 {
		return nil
	}
	var pool []*kg.HierarchyNode
	for _, m := range matched {
		if len(m.Children) > 0 {
			pool = append(pool, m.Children...)
		}
	}
	if len(pool) == 0 {
		// Leaf intents: offer the matched intents themselves as the
		// product-discovery layer.
		pool = matched
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].EdgeCount != pool[j].EdgeCount {
			return pool[i].EdgeCount > pool[j].EdgeCount
		}
		return pool[i].Label < pool[j].Label
	})
	if k > len(pool) {
		k = len(pool)
	}
	out := make([]Suggestion, 0, k)
	seen := map[string]bool{}
	for _, node := range pool {
		if seen[node.Label] {
			continue
		}
		seen[node.Label] = true
		out = append(out, Suggestion{
			Label:    node.Label,
			Products: node.Products,
			Support:  node.EdgeCount,
		})
		if len(out) == k {
			break
		}
	}
	return out
}

// Session is one multi-turn navigation trajectory.
type Session struct {
	nav  *Navigator
	Path []string
}

// StartSession begins a navigation session at the broad query.
func (n *Navigator) StartSession(query string) *Session {
	return &Session{nav: n, Path: []string{query}}
}

// Options returns the current refinement options.
func (s *Session) Options(k int) []Suggestion {
	return s.nav.Refine(s.Path[len(s.Path)-1], k)
}

// Select advances the session by choosing a refinement label. The next
// query is the refinement itself (e.g. "air mattress" selected under
// "camping" becomes "camping air mattress" when it narrows the path).
func (s *Session) Select(label string) {
	prev := s.Path[len(s.Path)-1]
	next := label
	if !strings.Contains(label, firstStemWord(prev)) && len(s.Path) > 0 {
		next = firstStemWord(prev) + " " + label
	}
	s.Path = append(s.Path, next)
}

// Depth returns the number of refinement turns taken so far.
func (s *Session) Depth() int { return len(s.Path) - 1 }

func firstStemWord(q string) string {
	toks := textproc.ContentTokens(q)
	if len(toks) == 0 {
		return q
	}
	return toks[0]
}
