package navigation

import (
	"testing"

	"cosmo/internal/catalog"
)

func TestAttributeOptions(t *testing.T) {
	cat := catalog.Generate(catalog.Config{ProductsPerType: 8, Seed: 1})
	var ids []string
	for _, p := range cat.OfType("tent") {
		ids = append(ids, p.ID)
	}
	opts := AttributeOptions(cat, ids, 10)
	if len(opts) == 0 {
		t.Fatal("no attribute options")
	}
	kinds := map[string]bool{}
	total := 0
	for _, o := range opts {
		kinds[o.Kind] = true
		if o.Count <= 0 || o.Count > len(ids) {
			t.Fatalf("bad count: %+v", o)
		}
		total += o.Count
	}
	if !kinds["brand"] {
		t.Error("no brand options")
	}
	for i := 1; i < len(opts); i++ {
		if opts[i].Count > opts[i-1].Count {
			t.Fatal("options not sorted by count")
		}
	}
}

func TestAttributeOptionsK(t *testing.T) {
	cat := catalog.Generate(catalog.Config{ProductsPerType: 8, Seed: 1})
	var ids []string
	for _, p := range cat.OfType("tent") {
		ids = append(ids, p.ID)
	}
	if opts := AttributeOptions(cat, ids, 2); len(opts) > 2 {
		t.Errorf("k violated: %d", len(opts))
	}
	if opts := AttributeOptions(cat, nil, 5); len(opts) != 0 {
		t.Errorf("empty input gave %d options", len(opts))
	}
	if opts := AttributeOptions(cat, []string{"NOPE"}, 5); len(opts) != 0 {
		t.Errorf("unknown ids gave %d options", len(opts))
	}
}

func TestFilterByAttribute(t *testing.T) {
	cat := catalog.Generate(catalog.Config{ProductsPerType: 8, Seed: 1})
	var ids []string
	for _, p := range cat.OfType("tent") {
		ids = append(ids, p.ID)
	}
	opts := AttributeOptions(cat, ids, 5)
	for _, opt := range opts {
		filtered := FilterByAttribute(cat, ids, opt)
		if len(filtered) != opt.Count {
			t.Fatalf("filter count %d != option count %d for %+v", len(filtered), opt.Count, opt)
		}
		for _, id := range filtered {
			p, _ := cat.ByID(id)
			if opt.Kind == "brand" && p.Brand != opt.Value {
				t.Fatalf("wrong brand after filter: %s", p.Brand)
			}
		}
	}
	if got := FilterByAttribute(cat, ids, AttributeOption{Kind: "nope", Value: "x"}); len(got) != 0 {
		t.Error("unknown kind should filter everything")
	}
}

func TestThreeLayerNavigationFlow(t *testing.T) {
	// The full Figure 9 flow: broad query → intent refinement → product
	// discovery → attribute refinement.
	cat := catalog.Generate(catalog.Config{ProductsPerType: 8, Seed: 1})
	g := oracleKG(t, cat)
	nav := NewNavigator(g.Freeze(), 1)

	sess := nav.StartSession("camping")
	opts := sess.Options(5)
	if len(opts) == 0 {
		t.Fatal("layer 1: no broad-concept refinements")
	}
	sess.Select(opts[0].Label)
	if len(opts[0].Products) == 0 {
		t.Fatal("layer 2: no products for refinement")
	}
	// In the oracle KG product labels are the product IDs.
	attrs := AttributeOptions(cat, opts[0].Products, 5)
	if len(attrs) == 0 {
		t.Fatal("layer 3: no attribute refinements")
	}
	final := FilterByAttribute(cat, opts[0].Products, attrs[0])
	if len(final) == 0 || len(final) > len(opts[0].Products) {
		t.Fatalf("attribute filter produced %d of %d", len(final), len(opts[0].Products))
	}
}
