package navigation

import "testing"

func TestRewriteStudyNavigationHelps(t *testing.T) {
	cat, nav := navWorld(t)
	study := NewRewriteStudy(cat, nav)
	res := study.Run(9, 2000, 5)
	t.Logf("rewrites: control=%.2f treatment=%.2f | satisfied: control=%.2f treatment=%.2f",
		res.ControlRewrites, res.TreatmentRewrites, res.ControlSatisfied, res.TreatSatisfied)
	if res.TreatSatisfied < res.ControlSatisfied {
		t.Errorf("navigation should not reduce satisfaction: %.3f vs %.3f",
			res.TreatSatisfied, res.ControlSatisfied)
	}
	// Navigation-guided refinement must not need more rewrites than
	// manual guessing (the future-work hypothesis of §4.2.4).
	if res.TreatmentRewrites > res.ControlRewrites {
		t.Errorf("navigation should reduce rewrites: %.3f vs %.3f",
			res.TreatmentRewrites, res.ControlRewrites)
	}
}

func TestRewriteStudyDeterministic(t *testing.T) {
	cat, nav := navWorld(t)
	s1 := NewRewriteStudy(cat, nav).Run(3, 300, 5)
	s2 := NewRewriteStudy(cat, nav).Run(3, 300, 5)
	if s1 != s2 {
		t.Fatalf("study not deterministic: %+v vs %+v", s1, s2)
	}
}

func TestRewriteStudyZeroTurns(t *testing.T) {
	cat, nav := navWorld(t)
	res := NewRewriteStudy(cat, nav).Run(3, 100, 0)
	if res.ControlSatisfied != 0 || res.TreatSatisfied != 0 {
		t.Error("zero turns cannot satisfy anyone")
	}
}
