package navigation

import (
	"math/rand"

	"cosmo/internal/behavior"
	"cosmo/internal/catalog"
	"cosmo/internal/textproc"
)

// RewriteStudy measures how COSMO navigation reduces query rewrites —
// the investigation §4.2.4 of the paper leaves to future work. A shopper
// with a latent intent starts from its broad query; each turn they
// either accept a matching navigation refinement (treatment) or rewrite
// the query themselves (both arms), until the result list contains a
// product serving the full intent or they give up.
type RewriteStudy struct {
	cat *catalog.Catalog
	nav *Navigator
	exp *Experiment
}

// NewRewriteStudy builds the study over a navigator-equipped experiment
// world.
func NewRewriteStudy(cat *catalog.Catalog, nav *Navigator) *RewriteStudy {
	return &RewriteStudy{
		cat: cat,
		nav: nav,
		exp: NewExperiment(cat, nav, DefaultABConfig()),
	}
}

// RewriteResult reports mean rewrites per satisfied session.
type RewriteResult struct {
	ControlRewrites   float64
	TreatmentRewrites float64
	ControlSatisfied  float64
	TreatSatisfied    float64
}

// Run simulates n shoppers per arm with at most maxTurns query turns.
func (s *RewriteStudy) Run(seed int64, n, maxTurns int) RewriteResult {
	rng := rand.New(rand.NewSource(seed))
	var res RewriteResult
	ctlRewrites, ctlSat := 0, 0
	trtRewrites, trtSat := 0, 0
	for i := 0; i < n; i++ {
		intent := s.exp.intents[rng.Intn(len(s.exp.intents))]
		// Pair the arms on identical randomness so the comparison is a
		// matched experiment, not two independent samples.
		armSeed := rng.Int63()
		cr, cok := s.session(rand.New(rand.NewSource(armSeed)), intent, false, maxTurns)
		tr, tok := s.session(rand.New(rand.NewSource(armSeed)), intent, true, maxTurns)
		if cok {
			ctlSat++
			ctlRewrites += cr
		}
		if tok {
			trtSat++
			trtRewrites += tr
		}
	}
	if ctlSat > 0 {
		res.ControlRewrites = float64(ctlRewrites) / float64(ctlSat)
	}
	if trtSat > 0 {
		res.TreatmentRewrites = float64(trtRewrites) / float64(trtSat)
	}
	res.ControlSatisfied = float64(ctlSat) / float64(n)
	res.TreatSatisfied = float64(trtSat) / float64(n)
	return res
}

// session runs one shopper; returns (rewrites, satisfied).
func (s *RewriteStudy) session(rng *rand.Rand, intent catalog.Intent, nav bool, maxTurns int) (int, bool) {
	query := behavior.BroadQuery(intent)
	intentStems := textproc.StemAll(textproc.ContentTokens(intent.Tail))
	for turn := 0; turn < maxTurns; turn++ {
		results := s.exp.searchResults(query, 4)
		for _, p := range results {
			if s.exp.servesIntent(p, intent) {
				return turn, true
			}
		}
		// Not satisfied: refine. With navigation, a matching suggestion
		// provides the refinement directly; otherwise the shopper guesses
		// another word from their intent.
		if nav {
			if sug := s.exp.matchingSuggestion(s.nav.Refine(query, 5), intent); sug != "" {
				query = sug
				continue
			}
		}
		// Manual rewrite: append a random intent word not yet in the query.
		if len(intentStems) > 0 {
			query = query + " " + intentStems[rng.Intn(len(intentStems))]
		} else {
			return turn, false
		}
	}
	return maxTurns, false
}
