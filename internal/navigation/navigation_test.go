package navigation

import (
	"testing"

	"cosmo/internal/behavior"
	"cosmo/internal/catalog"
	"cosmo/internal/kg"
	"cosmo/internal/know"
)

// oracleKG builds a knowledge graph directly from catalog ground truth,
// standing in for a pipeline-produced KG in unit tests.
func oracleKG(tb testing.TB, cat *catalog.Catalog) *kg.Graph {
	tb.Helper()
	g := kg.New()
	id := 0
	for _, tn := range cat.Types() {
		pt, _ := cat.Type(tn)
		for _, p := range cat.OfType(tn) {
			for _, in := range pt.Intents {
				id++
				c := know.Candidate{
					ID: id, Behavior: know.SearchBuy, Domain: pt.Category,
					Query: behavior.BroadQuery(in), ProductA: p.ID,
					Relation: in.Relation, Tail: in.Tail,
					PlausibleScore: 0.9, TypicalScore: 0.8,
				}
				if err := g.AddAssertion(c); err != nil {
					tb.Fatal(err)
				}
			}
		}
	}
	return g
}

func navWorld(tb testing.TB) (*catalog.Catalog, *Navigator) {
	cat := catalog.Generate(catalog.Config{ProductsPerType: 4, Seed: 1})
	g := oracleKG(tb, cat)
	return cat, NewNavigator(g.Freeze(), 1)
}

func TestRefineBroadQuery(t *testing.T) {
	_, nav := navWorld(t)
	sugs := nav.Refine("camping", 5)
	if len(sugs) == 0 {
		t.Fatal("no suggestions for 'camping'")
	}
	found := false
	for _, s := range sugs {
		if s.Label == "camping in the mountains" || s.Label == "lakeside camping" ||
			s.Label == "winter camping" {
			found = true
		}
		if s.Support <= 0 {
			t.Errorf("suggestion %q has no support", s.Label)
		}
	}
	if !found {
		t.Errorf("camping refinements missing: %+v", sugs)
	}
}

func TestRefineUnknownQuery(t *testing.T) {
	_, nav := navWorld(t)
	if sugs := nav.Refine("zzyzx", 5); len(sugs) != 0 {
		t.Errorf("unknown query produced %d suggestions", len(sugs))
	}
}

func TestRefineRespectsK(t *testing.T) {
	_, nav := navWorld(t)
	if sugs := nav.Refine("used", 2); len(sugs) > 2 {
		t.Errorf("k violated: %d", len(sugs))
	}
}

func TestMultiTurnSession(t *testing.T) {
	_, nav := navWorld(t)
	s := nav.StartSession("camping")
	opts := s.Options(5)
	if len(opts) == 0 {
		t.Fatal("no first-turn options")
	}
	s.Select(opts[0].Label)
	if s.Depth() != 1 {
		t.Errorf("depth = %d", s.Depth())
	}
	// Second turn must still produce options or a product link.
	second := s.Options(5)
	if len(second) == 0 && len(opts[0].Products) == 0 {
		t.Error("dead end after one refinement")
	}
}

func TestSuggestionsOrderedBySupport(t *testing.T) {
	_, nav := navWorld(t)
	sugs := nav.Refine("camping", 10)
	for i := 1; i < len(sugs); i++ {
		if sugs[i].Support > sugs[i-1].Support {
			t.Fatal("suggestions not sorted by support")
		}
	}
}

func TestABExperimentEndpoints(t *testing.T) {
	cat, nav := navWorld(t)
	cfg := DefaultABConfig()
	cfg.Visitors = 60000
	res := NewExperiment(cat, nav, cfg).Run()

	if res.ControlVisitors+res.TreatmentVisitors != cfg.Visitors {
		t.Fatal("visitor accounting broken")
	}
	treatedFrac := float64(res.TreatmentVisitors) / float64(cfg.Visitors)
	if treatedFrac < 0.08 || treatedFrac > 0.12 {
		t.Errorf("treatment fraction %.3f far from 0.10", treatedFrac)
	}

	lift := res.SalesLift()
	eng := res.EngagementRate()
	t.Logf("sales lift = %.4f (paper: +0.007), engagement = %.3f (paper: ~0.08)", lift, eng)
	if lift <= 0 {
		t.Errorf("sales lift %.4f should be positive", lift)
	}
	if lift > 0.15 {
		t.Errorf("sales lift %.4f implausibly large for a low-visibility widget", lift)
	}
	if eng <= 0.01 || eng > 0.30 {
		t.Errorf("engagement rate %.3f out of plausible band", eng)
	}
}

func TestABDeterministic(t *testing.T) {
	cat, nav := navWorld(t)
	cfg := DefaultABConfig()
	cfg.Visitors = 5000
	r1 := NewExperiment(cat, nav, cfg).Run()
	r2 := NewExperiment(cat, nav, cfg).Run()
	if r1 != r2 {
		t.Fatalf("experiment not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestABZeroVisitors(t *testing.T) {
	cat, nav := navWorld(t)
	cfg := DefaultABConfig()
	cfg.Visitors = 0
	res := NewExperiment(cat, nav, cfg).Run()
	if res.SalesLift() != 0 || res.EngagementRate() != 0 {
		t.Error("zero-visitor metrics should be 0")
	}
}

func TestSearchResultsLexical(t *testing.T) {
	cat, nav := navWorld(t)
	e := NewExperiment(cat, nav, DefaultABConfig())
	results := e.searchResults("camping stove", 5)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	if results[0].Type != "camping stove" {
		t.Errorf("top result type = %q", results[0].Type)
	}
	// Cache must return identical slice.
	again := e.searchResults("camping stove", 5)
	if len(again) != len(results) {
		t.Error("cache inconsistent")
	}
}
