package navigation

import (
	"math/rand"
	"strings"

	"cosmo/internal/behavior"
	"cosmo/internal/catalog"
	"cosmo/internal/metrics"
	"cosmo/internal/textproc"
)

// ABConfig parameterizes the agent-based online experiment of §4.3.2.
type ABConfig struct {
	Seed     int64
	Visitors int
	// TreatmentFraction is the share of traffic exposed to the COSMO
	// navigation widget (the paper treats ~10% of US traffic).
	TreatmentFraction float64
	// WidgetVisibility is the probability a treated shopper notices the
	// widget ("a single, relatively minor feature ... with limited
	// showroom visibility").
	WidgetVisibility float64
	// BaseConversion is the purchase probability when the result list
	// already satisfies the shopper.
	BaseConversion float64
	// FallbackConversion is the purchase probability when the top
	// results miss: shoppers reformulate, browse, or leave.
	FallbackConversion float64
	// RefinedConversion applies after a successful navigation refinement
	// (the shopper lands on products matching the full intent).
	RefinedConversion float64
	// TopN is how many search results a shopper inspects.
	TopN int
}

// DefaultABConfig returns settings calibrated to produce the paper's
// small-but-real lift (+0.7% sales relative, ~8% engagement).
func DefaultABConfig() ABConfig {
	return ABConfig{
		Seed:               51,
		Visitors:           200000,
		TreatmentFraction:  0.10,
		WidgetVisibility:   0.09,
		BaseConversion:     0.30,
		FallbackConversion: 0.25,
		RefinedConversion:  0.28,
		TopN:               4,
	}
}

// ABResult reports the experiment endpoints.
type ABResult struct {
	ControlVisitors, TreatmentVisitors int
	ControlSales, TreatmentSales       int
	Engagements                        int
}

// SalesLift returns the relative per-visitor sales lift of treatment
// over control — the paper's 0.7% headline.
func (r ABResult) SalesLift() float64 {
	if r.ControlVisitors == 0 || r.TreatmentVisitors == 0 {
		return 0
	}
	control := float64(r.ControlSales) / float64(r.ControlVisitors)
	treatment := float64(r.TreatmentSales) / float64(r.TreatmentVisitors)
	return metrics.RelativeLift(control, treatment)
}

// EngagementRate returns the fraction of treated visitors who engaged
// with the navigation widget.
func (r ABResult) EngagementRate() float64 {
	if r.TreatmentVisitors == 0 {
		return 0
	}
	return float64(r.Engagements) / float64(r.TreatmentVisitors)
}

// Experiment runs the A/B simulation: shoppers with latent intents issue
// broad queries; the control arm sees a plain lexical result list; the
// treatment arm also sees COSMO navigation refinements.
type Experiment struct {
	cat *catalog.Catalog
	nav *Navigator
	cfg ABConfig
	// intentPool maps an intent to products serving it.
	intents []catalog.Intent
	pool    map[catalog.Intent][]catalog.Product

	searchCache map[string][]catalog.Product
	refineCache map[string][]Suggestion
}

// NewExperiment prepares the shopper world.
func NewExperiment(cat *catalog.Catalog, nav *Navigator, cfg ABConfig) *Experiment {
	e := &Experiment{
		cat: cat, nav: nav, cfg: cfg,
		pool:        map[catalog.Intent][]catalog.Product{},
		searchCache: map[string][]catalog.Product{},
		refineCache: map[string][]Suggestion{},
	}
	for _, tn := range cat.Types() {
		pt, _ := cat.Type(tn)
		for _, in := range pt.Intents {
			if len(e.pool[in]) == 0 {
				e.intents = append(e.intents, in)
			}
			e.pool[in] = append(e.pool[in], cat.OfType(tn)...)
		}
	}
	return e
}

// searchResults is the control experience: products ranked by lexical
// match between the query and title, then popularity. Results are cached
// per query (they are deterministic).
func (e *Experiment) searchResults(query string, k int) []catalog.Product {
	if ps, ok := e.searchCache[query]; ok {
		return ps
	}
	qStems := map[string]bool{}
	for _, s := range textproc.StemAll(textproc.ContentTokens(query)) {
		qStems[s] = true
	}
	var out []scored
	for _, p := range e.cat.Products() {
		match := 0.0
		for _, s := range textproc.StemAll(textproc.ContentTokens(p.Title)) {
			if qStems[s] {
				match++
			}
		}
		if match > 0 {
			out = append(out, scored{p, match + 0.1*p.Popularity})
		}
	}
	sortSlice(out)
	if k > len(out) {
		k = len(out)
	}
	ps := make([]catalog.Product, k)
	for i := 0; i < k; i++ {
		ps[i] = out[i].p
	}
	e.searchCache[query] = ps
	return ps
}

// Run executes the experiment.
func (e *Experiment) Run() ABResult {
	rng := rand.New(rand.NewSource(e.cfg.Seed))
	var res ABResult
	for v := 0; v < e.cfg.Visitors; v++ {
		intent := e.intents[rng.Intn(len(e.intents))]
		query := behavior.BroadQuery(intent)
		treated := rng.Float64() < e.cfg.TreatmentFraction
		if treated {
			res.TreatmentVisitors++
		} else {
			res.ControlVisitors++
		}
		// Baseline search path, shared by both arms.
		results := e.searchResults(query, e.cfg.TopN)
		satisfied := false
		for _, p := range results {
			if e.servesIntent(p, intent) {
				satisfied = true
				break
			}
		}
		// Conversion probability: satisfied shoppers buy from the list;
		// unsatisfied ones fall back to reformulation and browsing.
		conv := e.cfg.FallbackConversion
		if satisfied {
			conv = e.cfg.BaseConversion
		}
		// Treatment arm: a noticed, matching navigation refinement lifts
		// the unsatisfied shopper onto the intent-filtered results.
		if treated && rng.Float64() < e.cfg.WidgetVisibility {
			sugs, ok := e.refineCache[query]
			if !ok {
				sugs = e.nav.Refine(query, 5)
				e.refineCache[query] = sugs
			}
			if match := e.matchingSuggestion(sugs, intent); match != "" {
				res.Engagements++
				if !satisfied && e.cfg.RefinedConversion > conv {
					conv = e.cfg.RefinedConversion
				}
			}
		}
		if rng.Float64() < conv {
			if treated {
				res.TreatmentSales++
			} else {
				res.ControlSales++
			}
		}
	}
	return res
}

// servesIntent checks ground truth: does the product's type carry the
// shopper's intent?
func (e *Experiment) servesIntent(p catalog.Product, intent catalog.Intent) bool {
	for _, in := range e.cat.IntentsOf(p) {
		if in == intent {
			return true
		}
	}
	return false
}

// matchingSuggestion returns the label of the suggestion that best
// overlaps the shopper's full intent tail. A suggestion must cover at
// least half the intent's content stems to count — weaker overlaps lead
// the shopper astray rather than toward their intent.
func (e *Experiment) matchingSuggestion(sugs []Suggestion, intent catalog.Intent) string {
	wantStems := textproc.StemAll(textproc.ContentTokens(intent.Tail))
	want := map[string]bool{}
	for _, s := range wantStems {
		want[s] = true
	}
	minOverlap := (len(want) + 1) / 2
	best, bestOverlap := "", 0
	for _, sug := range sugs {
		seen := map[string]bool{}
		overlap := 0
		for _, s := range textproc.StemAll(textproc.ContentTokens(sug.Label)) {
			if want[s] && !seen[s] {
				seen[s] = true
				overlap++
			}
		}
		if overlap >= minOverlap && overlap > bestOverlap {
			best, bestOverlap = sug.Label, overlap
		}
	}
	return best
}

// sortSlice sorts scored results descending deterministically.
func sortSlice(out []scored) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

func less(a, b scored) bool {
	if a.s != b.s {
		return a.s > b.s
	}
	return strings.Compare(a.p.ID, b.p.ID) < 0
}

type scored struct {
	p catalog.Product
	s float64
}
