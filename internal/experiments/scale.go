package experiments

import (
	"fmt"

	"cosmo/internal/cosmolm"
	"cosmo/internal/instruction"
	"cosmo/internal/kg"
	"cosmo/internal/know"
)

// ScaledKG builds a knowledge graph whose edge count is at least
// `factor` times the base world's — the scale harness behind the
// snapshot-persistence benchmarks (BENCH_6.json). The paper's KG has
// millions of edges; the laptop-scale pipeline produces thousands, so
// the harness models the dimension that actually grows in production —
// the catalog and query population — while the intention space stays
// shared:
//
//   - every behavior head (product or query node) is replicated under a
//     "#k" suffix per extra replica, re-asserting its edges against the
//     same intention tails (exact multiplicative growth, deterministic);
//   - each replica additionally runs the Stage 8 COSMO-LM expansion over
//     its sampled search behaviors, so the growth path exercises the
//     same generate → predict → threshold → admit machinery as the
//     pipeline's own expansion stage.
//
// The result is deterministic for a given (world seed, factor) and
// reuses the cached world, so successive factors differ only by
// replica count.
func (r *Runner) ScaledKG(factor int) (*kg.Graph, error) {
	if factor < 1 {
		return nil, fmt.Errorf("experiments: scale factor %d < 1", factor)
	}
	res := r.World()
	base := res.KG

	g := kg.New()
	for _, n := range base.Nodes() {
		g.AddNode(n)
	}
	baseEdges := base.Edges()
	for _, e := range baseEdges {
		if err := g.AddEdge(e); err != nil {
			return nil, fmt.Errorf("experiments: scale: clone base edge: %w", err)
		}
	}

	for k := 1; k < factor; k++ {
		suffix := fmt.Sprintf("#%d", k)
		// Stage 8 expansion over the replica's search behaviors: the
		// trained COSMO-LM generates fresh assertions for each replica
		// query head, gated by its own plausibility prediction — the
		// same admission rule as core.Run's expansion stage. Runs before
		// head replication so the replicated nodes' catalog labels win.
		for _, sb := range res.SampledSearchBuys {
			p, ok := res.Catalog.ByID(sb.ProductID)
			if !ok {
				continue
			}
			ctx := cosmolm.SearchContext(sb.Query, p.Title)
			for _, gen := range res.CosmoLM.Generate(ctx, p.Category, "", 2) {
				_, pProb := res.CosmoLM.Predict(instruction.TaskPlausibility,
					ctx+" | explanation: "+gen.Text)
				_, tProb := res.CosmoLM.Predict(instruction.TaskTypicality,
					ctx+" | explanation: "+gen.Text)
				if pProb <= 0.5 {
					continue
				}
				c := know.Candidate{
					Behavior: know.SearchBuy, Domain: p.Category,
					Query: sb.Query + suffix, ProductA: sb.ProductID + suffix, TypeA: p.Type,
					Relation: gen.Relation, Tail: gen.Tail, Text: gen.Text,
					PlausibleScore: pProb, TypicalScore: tProb,
				}
				if err := g.AddAssertion(c); err != nil {
					return nil, fmt.Errorf("experiments: scale: expansion admit: %w", err)
				}
			}
		}
		// Replicate every base head under the replica suffix; tails (the
		// intention space) are shared across replicas, which is what
		// keeps bytes/edge flat as the graph grows.
		for _, e := range baseEdges {
			hn, ok := base.Node(e.Head)
			if !ok {
				return nil, fmt.Errorf("experiments: scale: base edge head %q has no node", e.Head)
			}
			rep := e
			rep.Head = e.Head + suffix
			g.AddNode(kg.Node{ID: rep.Head, Type: hn.Type, Label: hn.Label})
			if err := g.AddEdge(rep); err != nil {
				return nil, fmt.Errorf("experiments: scale: replica edge: %w", err)
			}
		}
	}
	return g, nil
}
