package experiments

import (
	"fmt"
	"math/rand"

	"cosmo/internal/annotation"
	"cosmo/internal/classifier"
	"cosmo/internal/core"
	"cosmo/internal/cosmolm"
	"cosmo/internal/filter"
	"cosmo/internal/instruction"
	"cosmo/internal/know"
	"cosmo/internal/llm"
	"cosmo/internal/navigation"
	"cosmo/internal/sampling"
	"cosmo/internal/serving"
)

// Experiment RNG seeds. Each ancillary study draws from its own named,
// fixed seed so a run is reproducible and the provenance of every
// random stream is traceable to the study that owns it (the pipeline
// stages themselves seed from core.Config).
const (
	// trafficSeed drives the Zipf-like query stream that the serving
	// and cache-ablation studies replay against the deployment.
	trafficSeed int64 = 77
	// samplingAblationSeed drives the Eq.2-weighted vs uniform
	// annotation-sample draws in ablationSampling.
	samplingAblationSeed int64 = 7
	// generationOnlySeed seeds the generation-only instruction builder
	// in the task-ablation study.
	generationOnlySeed int64 = 29
)

func (r *Runner) figure8() error {
	roots := r.KGSnapshot().BuildHierarchy(2)
	fmt.Fprintf(r.Out, "intention hierarchy: %d roots (showing top 5)\n", len(roots))
	n := 5
	if n > len(roots) {
		n = len(roots)
	}
	for _, root := range roots[:n] {
		fmt.Fprint(r.Out, root.Render(2))
	}
	return nil
}

// rewriteStudy quantifies the §4.2.4 future-work hypothesis: COSMO
// navigation reduces the query rewrites users need to reach their
// intent.
func (r *Runner) rewriteStudy() error {
	res := r.World()
	nav := navigation.NewNavigator(r.KGSnapshot(), 2)
	study := navigation.NewRewriteStudy(res.Catalog, nav)
	out := study.Run(9, max(1000, 20000/r.Scale), 5)
	fmt.Fprintf(r.Out, "mean query rewrites per satisfied session: control=%.2f, with COSMO navigation=%.2f\n",
		out.ControlRewrites, out.TreatmentRewrites)
	fmt.Fprintf(r.Out, "satisfaction within 5 turns: control=%.1f%%, navigation=%.1f%%\n",
		out.ControlSatisfied*100, out.TreatSatisfied*100)
	fmt.Fprintf(r.Out, "shape check: navigation reduces rewrites=%v without losing satisfaction=%v\n",
		out.TreatmentRewrites <= out.ControlRewrites, out.TreatSatisfied >= out.ControlSatisfied)
	return nil
}

func (r *Runner) abtest() error {
	res := r.World()
	nav := navigation.NewNavigator(r.KGSnapshot(), 2)
	cfg := navigation.DefaultABConfig()
	cfg.Visitors = max(100000, 2000000/r.Scale)
	result := navigation.NewExperiment(res.Catalog, nav, cfg).Run()
	fmt.Fprintf(r.Out, "visitors: control=%d treatment=%d (%.1f%% treated; paper ~10%%)\n",
		result.ControlVisitors, result.TreatmentVisitors,
		100*float64(result.TreatmentVisitors)/float64(cfg.Visitors))
	fmt.Fprintf(r.Out, "relative sales lift: %+.2f%% (paper: +0.7%%)\n", result.SalesLift()*100)
	fmt.Fprintf(r.Out, "navigation engagement rate: %.1f%% (paper: ~8%%)\n", result.EngagementRate()*100)
	fmt.Fprintf(r.Out, "shape check: positive small lift=%v, engagement near 8%%=%v\n",
		result.SalesLift() > 0 && result.SalesLift() < 0.15,
		result.EngagementRate() > 0.03 && result.EngagementRate() < 0.2)
	return nil
}

// cosmoResponder adapts COSMO-LM to the serving Responder interface.
func cosmoResponder(r *Runner) serving.Responder {
	res := r.World()
	return serving.ResponderFunc(func(q string) serving.Feature {
		gens := res.CosmoLM.Generate("search query: "+q, "", "", 3)
		f := serving.Feature{Query: q}
		for _, g := range gens {
			f.Intents = append(f.Intents, g.Text)
			f.Relations = append(f.Relations, string(g.Relation))
		}
		if len(gens) > 0 {
			f.SubCategory = gens[0].Tail
			f.StrongIntent = gens[0].Score > 1.0
		}
		return f
	})
}

// trafficQueries builds a Zipf-like query stream from the behavior log.
func (r *Runner) trafficQueries(n int) []string {
	res := r.World()
	var pool []string
	for _, e := range res.SampledSearchBuys {
		pool = append(pool, e.Query)
	}
	rng := rand.New(rand.NewSource(trafficSeed))
	out := make([]string, n)
	for i := range out {
		// Square the uniform draw to skew toward the head of the pool,
		// approximating daily traffic concentration.
		idx := int(rng.Float64() * rng.Float64() * float64(len(pool)))
		out[i] = pool[idx]
	}
	return out
}

func (r *Runner) serving() error {
	responder := cosmoResponder(r)
	dep := serving.NewDeployment(serving.DeployConfig{DailyCacheCap: 256}, responder)
	traffic := r.trafficQueries(max(20000, 100000/r.Scale))
	// Warm the yearly layer with the head of yesterday's traffic.
	warm := map[string]int{}
	for _, q := range traffic[:len(traffic)/4] {
		warm[q]++
	}
	var yearly []serving.Feature
	for q, c := range warm {
		if c >= 20 {
			f := responder.Respond(q)
			f.Query = q
			yearly = append(yearly, f)
		}
	}
	dep.Cache.PreloadYearly(yearly)
	for i, q := range traffic {
		dep.HandleQuery(q)
		if i%200 == 0 {
			dep.RunBatch(64)
		}
	}
	dep.RunBatch(1 << 20)
	stats := dep.Cache.Stats()
	p50, p99 := dep.LatencyPercentiles()
	perCall := r.World().CosmoLM.Cost()
	inline := perCall.SimulatedMs / float64(perCall.Calls)
	fmt.Fprintf(r.Out, "traffic: %d requests, yearly layer %d entries, daily cap 256\n",
		len(traffic), stats.YearlySize)
	fmt.Fprintf(r.Out, "cache hit rate: %.1f%% (yearly %d / daily %d hits)\n",
		stats.HitRate()*100, stats.YearlyHits, stats.DailyHits)
	fmt.Fprintf(r.Out, "request latency: p50=%.1fms p99=%.1fms vs inline model inference ≈%.0fms\n",
		p50, p99, inline)
	fmt.Fprintf(r.Out, "shape check: cached latency ≪ inline inference = %v; hit rate > 80%% = %v\n",
		p99 < inline/5, stats.HitRate() > 0.8)
	return nil
}

func (r *Runner) latency() error {
	res := r.World()
	tc := res.TeacherCost
	cc := res.CosmoLM.Cost()
	perTeacher := tc.SimulatedMs / float64(tc.Calls)
	perCosmo := cc.SimulatedMs / float64(cc.Calls)
	fmt.Fprintf(r.Out, "%-22s %10s %14s %14s\n", "model", "calls", "total (ms)", "per call (ms)")
	fmt.Fprintf(r.Out, "%-22s %10d %14.0f %14.1f\n", "teacher "+string(llm.OPT30B), tc.Calls, tc.SimulatedMs, perTeacher)
	fmt.Fprintf(r.Out, "%-22s %10d %14.0f %14.1f\n", "COSMO-LM (7b-class)", cc.Calls, cc.SimulatedMs, perCosmo)
	fmt.Fprintf(r.Out, "speedup: %.1fx (paper: instruction-finetuned models with fewer parameters offer\n", perTeacher/perCosmo)
	fmt.Fprintf(r.Out, "significant inference-efficiency advantages enabling online serving)\n")
	return nil
}

func (r *Runner) ablationFilter() error {
	res := r.World()
	// Rebuild the raw candidate corpus deterministically.
	teach := llm.NewTeacher(res.Catalog, llm.DefaultConfig(llm.OPT30B))
	raw := rebuildCandidates(res, teach)
	variants := []struct {
		name string
		mod  func(*filter.Config)
	}{
		{"full filter", func(c *filter.Config) {}},
		{"no perplexity", func(c *filter.Config) { c.PerplexityQuantile = 1.0 }},
		{"no similarity", func(c *filter.Config) { c.MaxContextSimilarity = 1.01 }},
		{"no generic", func(c *filter.Config) { c.GenericMinFreq = 1 << 30 }},
		{"no copy rule", func(c *filter.Config) { c.MaxEditDistanceRatio = -1 }},
	}
	fmt.Fprintf(r.Out, "%-14s %8s %10s %12s\n", "variant", "kept", "plausible", "typical-rate")
	for _, v := range variants {
		cfg := filter.DefaultConfig()
		v.mod(&cfg)
		kept, _, _ := filter.New(cfg).Run(raw)
		plaus, typ := 0, 0
		for _, c := range kept {
			if c.Truth.Plausible {
				plaus++
			}
			if c.Truth.Typical {
				typ++
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(r.Out, "%-14s %8d %10s %12s\n", v.name, 0, "-", "-")
			continue
		}
		fmt.Fprintf(r.Out, "%-14s %8d %9.1f%% %11.1f%%\n", v.name, len(kept),
			100*float64(plaus)/float64(len(kept)), 100*float64(typ)/float64(len(kept)))
	}
	return nil
}

func (r *Runner) ablationSampling() error {
	// The paper's claim for Eq. 2: "uniform sampling might hurt the
	// prediction performance on long-tail knowledge". Train one critic
	// on an Eq.2-weighted annotation sample and one on a uniform sample
	// of the same budget, then compare typicality accuracy on held-out
	// candidates whose contexts are unpopular (the long tail).
	res := r.World()
	kept := res.Kept
	// Hold out a deterministic third of the kept candidates for testing.
	var pool, heldOut []know.Candidate
	for i, c := range kept {
		if i%3 == 0 {
			heldOut = append(heldOut, c)
		} else {
			pool = append(pool, c)
		}
	}
	budget := len(pool) / 4
	freq := map[string]int{}
	for _, c := range pool {
		freq[c.Text]++
	}
	popOf := func(c know.Candidate) int {
		return res.Log.QueryDegree(c.Query) +
			res.Log.CoBuyDegree(c.ProductA) + res.Log.ProductQueryDegree(c.ProductA)
	}
	weights := make([]float64, len(pool))
	uniform := make([]float64, len(pool))
	for i, c := range pool {
		popQ := res.Log.QueryDegree(c.Query)
		popP := res.Log.CoBuyDegree(c.ProductA) + res.Log.ProductQueryDegree(c.ProductA)
		weights[i] = sampling.AnnotationWeight(freq[c.Text], popQ, popP)
		uniform[i] = 1
	}
	// Split held-out candidates into popular head vs long tail by median
	// context popularity.
	pops := make([]int, len(heldOut))
	for i, c := range heldOut {
		pops[i] = popOf(c)
	}
	sorted := append([]int{}, pops...)
	sortInts(sorted)
	median := sorted[len(sorted)/2]
	var tail []know.Candidate
	for i, c := range heldOut {
		if pops[i] < median {
			tail = append(tail, c)
		}
	}
	rng := rand.New(rand.NewSource(samplingAblationSeed))
	oracle := annotation.NewOracle(annotation.DefaultConfig())
	trainCritic := func(ws []float64) *classifier.Critic {
		idxs := sampling.WeightedSample(rng, ws, budget)
		var labeled []classifier.Labeled
		for _, i := range idxs {
			a := oracle.Annotate(pool[i])
			labeled = append(labeled, classifier.Labeled{
				Candidate: pool[i], Plausible: a.Plausible(), Typical: a.Typical(),
			})
		}
		return classifier.TrainCritic(1<<15, labeled, classifier.DefaultTrainConfig())
	}
	accOn := func(c *classifier.Critic, test []know.Candidate) float64 {
		if len(test) == 0 {
			return 0
		}
		correct := 0
		for _, cd := range test {
			p := c.Typical.Prob(c.Feat.Features(cd))
			if (p >= 0.5) == cd.Truth.Typical {
				correct++
			}
		}
		return float64(correct) / float64(len(test))
	}
	weighted := trainCritic(weights)
	uniformC := trainCritic(uniform)
	wAcc := accOn(weighted, tail)
	uAcc := accOn(uniformC, tail)
	fmt.Fprintf(r.Out, "annotation budget: %d of %d pool candidates; long-tail test set: %d\n",
		budget, len(pool), len(tail))
	fmt.Fprintf(r.Out, "long-tail typicality accuracy: Eq.2-weighted=%.3f, uniform=%.3f\n", wAcc, uAcc)
	fmt.Fprintf(r.Out, "shape check: re-weighted annotation helps long-tail prediction = %v\n", wAcc >= uAcc)
	return nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func (r *Runner) ablationTasks() error {
	res := r.World()
	// Full 5-task instruction data vs generation-only.
	full := res.CosmoLM
	genOnly := cosmolm.Train(
		instruction.NewBuilder(instruction.Config{
			Seed:         generationOnlySeed,
			IncludeTasks: []instruction.Task{instruction.TaskGenerate},
		}).Build(res.AnnotatedCandidates, res.Annotations),
		cosmolm.DefaultConfig())
	fmt.Fprintf(r.Out, "%-18s %8s %12s\n", "variant", "tails", "pred. tasks")
	fmt.Fprintf(r.Out, "%-18s %8d %12d\n", "all 5 tasks", full.KnownTails(), len(full.Tasks()))
	fmt.Fprintf(r.Out, "%-18s %8d %12d\n", "generation only", genOnly.KnownTails(), len(genOnly.Tasks()))
	// Without prediction heads the expansion stage cannot score new
	// assertions, so KG expansion degrades to nothing.
	_, p := genOnly.Predict(instruction.TaskPlausibility, "search query: camping | explanation: x")
	fmt.Fprintf(r.Out, "generation-only plausibility head output: %.2f (neutral 0.50 — expansion cannot filter)\n", p)
	fmt.Fprintf(r.Out, "full-model KG expansion added %d edges\n", res.ExpandedEdges)
	return nil
}

func (r *Runner) ablationCache() error {
	responder := cosmoResponder(r)
	traffic := r.trafficQueries(max(20000, 100000/r.Scale))
	run := func(preload bool) serving.CacheStats {
		dep := serving.NewDeployment(serving.DeployConfig{DailyCacheCap: 256}, responder)
		if preload {
			warm := map[string]int{}
			for _, q := range traffic[:len(traffic)/4] {
				warm[q]++
			}
			var yearly []serving.Feature
			for q, c := range warm {
				if c >= 20 {
					f := responder.Respond(q)
					f.Query = q
					yearly = append(yearly, f)
				}
			}
			dep.Cache.PreloadYearly(yearly)
		}
		for i, q := range traffic {
			dep.HandleQuery(q)
			if i%200 == 0 {
				dep.RunBatch(64)
			}
		}
		return dep.Cache.Stats()
	}
	two := run(true)
	one := run(false)
	fmt.Fprintf(r.Out, "%-26s %10s %12s\n", "variant", "hit rate", "misses")
	fmt.Fprintf(r.Out, "%-26s %9.1f%% %12d\n", "two-layer (yearly+daily)", two.HitRate()*100, two.Misses)
	fmt.Fprintf(r.Out, "%-26s %9.1f%% %12d\n", "one-layer (daily only)", one.HitRate()*100, one.Misses)
	fmt.Fprintf(r.Out, "shape check: two-layer hit rate higher = %v\n", two.HitRate() > one.HitRate())
	return nil
}

// rebuildCandidates regenerates the raw candidate corpus from the
// sampled behaviors (the same procedure as the pipeline's stage 2, with
// a fresh teacher so the pipeline's own RNG state is untouched).
func rebuildCandidates(res *core.Result, teach *llm.Teacher) []know.Candidate {
	var cands []know.Candidate
	id := 0
	for _, e := range res.SampledCoBuys {
		pa, _ := res.Catalog.ByID(e.A)
		pb, _ := res.Catalog.ByID(e.B)
		for _, g := range teach.GenerateCoBuy(pa, pb, 2) {
			id++
			cands = append(cands, know.Candidate{
				ID: id, Behavior: know.CoBuy, Domain: pa.Category,
				ProductA: e.A, ProductB: e.B, TypeA: pa.Type, TypeB: pb.Type,
				ContextText:     pa.Title + " and " + pb.Title,
				Text:            g.Text,
				Truth:           g.Truth,
				PairIntentional: e.Intentional,
			})
		}
	}
	for _, e := range res.SampledSearchBuys {
		p, _ := res.Catalog.ByID(e.ProductID)
		for _, g := range teach.GenerateSearchBuy(e.Query, p, 2) {
			id++
			cands = append(cands, know.Candidate{
				ID: id, Behavior: know.SearchBuy, Domain: p.Category,
				Query: e.Query, ProductA: e.ProductID, TypeA: p.Type,
				ContextText:     e.Query + " " + p.Title,
				Text:            g.Text,
				Truth:           g.Truth,
				PairIntentional: e.Intentional,
			})
		}
	}
	return cands
}
