package experiments

import (
	"testing"

	"cosmo/internal/kg"
)

// TestSimilarityRecallScaled is the acceptance harness for the LSH
// index: on a scaled graph, Lookup must recover at least 90% of the
// exact scan's top-k, querying with every indexed intention label (the
// realistic workload: "intentions like this text").
func TestSimilarityRecallScaled(t *testing.T) {
	r, _ := runner(t)
	g, err := r.ScaledKG(3)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := g.FreezeChecked()
	if err != nil {
		t.Fatal(err)
	}
	ix := kg.BuildSimilarityIndex(snap, kg.SimilarityConfig{Seed: 1})
	if ix.NumIndexed() == 0 {
		t.Fatal("similarity index holds no intentions")
	}

	var queries []string
	for _, n := range snap.Nodes() {
		if n.Type == kg.NodeIntention && n.Label != "" {
			queries = append(queries, n.Label)
		}
	}
	if len(queries) < 10 {
		t.Fatalf("only %d intention labels to query with", len(queries))
	}
	for _, k := range []int{1, 5, 10} {
		rec := ix.RecallAt(queries, k)
		t.Logf("recall@%d over %d queries, %d indexed = %.4f", k, len(queries), ix.NumIndexed(), rec)
		if rec < 0.9 {
			t.Fatalf("recall@%d = %.4f, want >= 0.9", k, rec)
		}
	}
}

// TestSimilarityDeterministic: equal (snapshot, config) builds must
// answer identically — the property that makes the ANN benchmarks and
// the RCU swap (old and new index serving side by side briefly)
// well-behaved.
func TestSimilarityDeterministic(t *testing.T) {
	r, _ := runner(t)
	snap, err := r.World().KG.FreezeChecked()
	if err != nil {
		t.Fatal(err)
	}
	a := kg.BuildSimilarityIndex(snap, kg.SimilarityConfig{Seed: 7})
	b := kg.BuildSimilarityIndex(snap, kg.SimilarityConfig{Seed: 7})
	for _, q := range []string{"camping", "tent for winter", "waterproof boots"} {
		am, bm := a.Lookup(q, 5), b.Lookup(q, 5)
		if len(am) != len(bm) {
			t.Fatalf("lookup %q: %d vs %d matches across identical builds", q, len(am), len(bm))
		}
		for i := range am {
			if am[i] != bm[i] {
				t.Fatalf("lookup %q: match %d differs: %+v vs %+v", q, i, am[i], bm[i])
			}
		}
	}
}
