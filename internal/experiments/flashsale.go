package experiments

import (
	"fmt"

	"cosmo/internal/serving"
)

// flashSale reproduces the limitation the paper acknowledges in §3.5.3:
// the daily-refresh architecture cannot assimilate real-time events such
// as flash sales. A warmed deployment is hit with a sudden traffic shift
// toward never-seen queries; the hit rate collapses during the spike and
// recovers only as the asynchronous batch processor catches up — the
// measured gap is exactly the "agility" the paper calls future work.
func (r *Runner) flashSale() error {
	responder := cosmoResponder(r)
	dep := serving.NewDeployment(serving.DeployConfig{DailyCacheCap: 4096}, responder)
	normal := r.trafficQueries(max(12000, 60000/r.Scale))

	// Phase 1: steady state. Serve normal traffic with periodic batches.
	for i, q := range normal {
		dep.HandleQuery(q)
		if i%200 == 0 {
			dep.RunBatch(64)
		}
	}
	dep.RunBatch(1 << 20)
	steady := dep.Cache.Stats()

	// Phase 2: flash sale. A burst of novel deal queries arrives; the
	// batch processor runs on its usual cadence, not in real time.
	window := len(normal) / 4
	missesBefore := steady.Misses
	hitsBefore := steady.Hits
	// Flash-sale queries are long-tail-unique (every deal page has its
	// own query variants), so the daily cache has never seen them.
	for i := 0; i < window; i++ {
		if i%3 == 0 {
			dep.HandleQuery(fmt.Sprintf("flash deal %d", i))
		} else {
			dep.HandleQuery(normal[i])
		}
		if i%200 == 0 {
			dep.RunBatch(64)
		}
	}
	during := dep.Cache.Stats()
	spikeHitRate := rate(during.Hits-hitsBefore, during.Misses-missesBefore)

	// Phase 3: after the batch processor catches up, the same flash
	// traffic is served from the daily layer.
	dep.RunBatch(1 << 20)
	hitsBefore, missesBefore = during.Hits, during.Misses
	// Drain remaining queue grown during phase 3's measurements too.
	for i := 0; i < window; i++ {
		if i%3 == 0 {
			dep.HandleQuery(fmt.Sprintf("flash deal %d", i))
		} else {
			dep.HandleQuery(normal[i])
		}
		if i%200 == 0 {
			dep.RunBatch(64)
		}
	}
	after := dep.Cache.Stats()
	recoveredHitRate := rate(after.Hits-hitsBefore, after.Misses-missesBefore)

	fmt.Fprintf(r.Out, "steady-state hit rate:   %.1f%%\n", steady.HitRate()*100)
	fmt.Fprintf(r.Out, "during flash-sale spike: %.1f%%\n", spikeHitRate*100)
	fmt.Fprintf(r.Out, "after batch catch-up:    %.1f%%\n", recoveredHitRate*100)
	fmt.Fprintf(r.Out, "shape check: spike degrades hit rate=%v, batch recovery=%v\n",
		spikeHitRate < steady.HitRate(), recoveredHitRate > spikeHitRate)
	fmt.Fprintf(r.Out, "paper §3.5.3: daily refresh 'poses a challenge to our current system's\n")
	fmt.Fprintf(r.Out, "ability to rapidly assimilate' flash sales — the spike-vs-recovery gap above.\n")
	return nil
}

func rate(hits, misses int) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
