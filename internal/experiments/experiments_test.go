package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// sharedRunner caches the pipeline world across tests.
var sharedRunner *Runner

func runner(tb testing.TB) (*Runner, *bytes.Buffer) {
	tb.Helper()
	buf := &bytes.Buffer{}
	if sharedRunner == nil {
		sharedRunner = NewRunner(buf, 20)
	}
	sharedRunner.Out = buf
	return sharedRunner, buf
}

func TestNamesComplete(t *testing.T) {
	names := Names()
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"figure7", "table7", "table8", "table9", "figure8", "abtest",
		"serving", "latency",
		"ablation-filter", "ablation-sampling", "ablation-tasks", "ablation-cache",
		"limitation-flashsale", "baseline-folkscope", "future-rewrites",
	}
	if len(names) != len(want) {
		t.Fatalf("got %d experiments, want %d", len(names), len(want))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	r, _ := runner(t)
	if err := r.Run("nope"); err == nil {
		t.Error("unknown experiment should error")
	}
}

// TestCheapExperiments runs every experiment except the three that train
// downstream neural models (covered by the benchmarks) and checks each
// produces a nonempty report with its paper reference.
func TestCheapExperiments(t *testing.T) {
	r, buf := runner(t)
	cheap := []string{
		"table1", "table2", "table3", "table4", "table5", "table7",
		"table9", "figure8", "abtest", "serving", "latency",
		"ablation-filter", "ablation-sampling", "ablation-tasks", "ablation-cache",
		"limitation-flashsale", "baseline-folkscope", "future-rewrites",
	}
	for _, name := range cheap {
		buf.Reset()
		if err := r.Run(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := buf.String()
		if len(out) < 40 {
			t.Errorf("%s produced a suspiciously short report:\n%s", name, out)
		}
		t.Logf("--- %s ---\n%s", name, out)
	}
}

func TestTable4ShapeHolds(t *testing.T) {
	r, buf := runner(t)
	buf.Reset()
	if err := r.Run("table4"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "search-buy typicality > co-buy typicality = true") {
		t.Errorf("Table 4 shape check failed:\n%s", buf.String())
	}
}

func TestServingShapeHolds(t *testing.T) {
	r, buf := runner(t)
	buf.Reset()
	if err := r.Run("serving"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hit rate > 80% = true") {
		t.Errorf("serving hit-rate shape failed:\n%s", out)
	}
	if !strings.Contains(out, "cached latency ≪ inline inference = true") {
		t.Errorf("serving latency shape failed:\n%s", out)
	}
}

func TestABTestShapeHolds(t *testing.T) {
	r, buf := runner(t)
	buf.Reset()
	if err := r.Run("abtest"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "positive small lift=true") {
		t.Errorf("A/B shape failed:\n%s", buf.String())
	}
}
