package experiments

import (
	"fmt"

	"cosmo/internal/folkscope"
	"cosmo/internal/llm"
)

// baselineFolkScope reproduces the Table 1 structural comparison between
// FolkScope and COSMO on the same simulated world, plus the §1 serving
// argument: FolkScope must run the teacher LLM per new behavior, while
// COSMO serves through the instruction-tuned COSMO-LM.
func (r *Runner) baselineFolkScope() error {
	res := r.World()
	fsCfg := folkscope.DefaultConfig()
	fsCfg.Behavior.CoBuyEvents = max(4000, 20000/r.Scale)
	fs, err := folkscope.Run(res.Catalog, fsCfg)
	if err != nil {
		return err
	}
	cosmoStats := res.KG.ComputeStats()
	fsStats := fs.KG.ComputeStats()
	fmt.Fprintf(r.Out, "%-10s %8s %8s %6s %8s %12s\n",
		"KG", "#Nodes", "#Edges", "#Rels", "#Domains", "behaviors")
	fmt.Fprintf(r.Out, "%-10s %8d %8d %6d %8d %12s\n", "FolkScope",
		fsStats.Nodes, fsStats.Edges, fsStats.Relations, fsStats.Domains, "co-buy")
	fmt.Fprintf(r.Out, "%-10s %8d %8d %6d %8d %12s\n", "COSMO",
		cosmoStats.Nodes, cosmoStats.Edges, cosmoStats.Relations, cosmoStats.Domains,
		"co-buy+search")
	fmt.Fprintf(r.Out, "paper Table 1: FolkScope 1.2M/12M/19 rels/2 domains; COSMO 6.3M/29M/15 rels/18 domains\n")

	// Serving cost per new behavior: FolkScope (teacher+critic) vs COSMO
	// (COSMO-LM generation).
	a := res.Catalog.OfType("camera case")[0]
	b := res.Catalog.OfType("screen protector glass")[0]
	before := fs.ServingCost()
	for i := 0; i < 20; i++ {
		fs.ServeNewBehavior(a, b, 3)
	}
	fsCost := (fs.ServingCost().SimulatedMs - before.SimulatedMs) / 20

	cBefore := res.CosmoLM.Cost()
	for i := 0; i < 20; i++ {
		res.CosmoLM.Generate("co-purchased products: "+a.Title+" and "+b.Title, a.Category, "", 3)
	}
	cAfter := res.CosmoLM.Cost()
	cosmoCost := (cAfter.SimulatedMs - cBefore.SimulatedMs) / 20

	fmt.Fprintf(r.Out, "serving one new behavior: FolkScope %.0fms (teacher %s + critic) vs COSMO-LM %.0fms\n",
		fsCost, llm.OPT30B, cosmoCost)
	fmt.Fprintf(r.Out, "shape check: COSMO covers more domains=%v, cheaper serving=%v\n",
		cosmoStats.Domains > fsStats.Domains, cosmoCost < fsCost)
	return nil
}
