package experiments

import (
	"fmt"

	"cosmo/internal/annotation"
	"cosmo/internal/catalog"
	"cosmo/internal/know"
	"cosmo/internal/llm"
	"cosmo/internal/relations"
	"cosmo/internal/relevance"
	"cosmo/internal/session"
)

func (r *Runner) table1() error {
	res := r.World()
	s := res.KG.ComputeStats()
	fmt.Fprintf(r.Out, "%-10s %10s %10s %6s %8s\n", "KG", "#Nodes", "#Edges", "#Rels", "#Domains")
	fmt.Fprintf(r.Out, "%-10s %10s %10s %6d %8s\n", "paper", "6.3M", "29M", 15, "18")
	fmt.Fprintf(r.Out, "%-10s %10d %10d %6d %8d\n", "measured",
		s.Nodes, s.Edges, s.Relations, s.Domains)
	fmt.Fprintf(r.Out, "shape check: relations within taxonomy=%v, all 18 domains=%v\n",
		s.Relations <= relations.Count(), s.Domains == 18)
	return nil
}

func (r *Runner) table2() error {
	res := r.World()
	// Re-run the teacher on a sample of behaviors to recover the raw
	// generation corpus, then mine predicate patterns from it.
	teach := llm.NewTeacher(res.Catalog, llm.DefaultConfig(llm.OPT30B))
	var gens []string
	for i, e := range res.SampledCoBuys {
		if i >= 400 {
			break
		}
		pa, _ := res.Catalog.ByID(e.A)
		pb, _ := res.Catalog.ByID(e.B)
		for _, g := range teach.GenerateCoBuy(pa, pb, 2) {
			gens = append(gens, g.Text)
		}
	}
	for i, e := range res.SampledSearchBuys {
		if i >= 400 {
			break
		}
		p, _ := res.Catalog.ByID(e.ProductID)
		for _, g := range teach.GenerateSearchBuy(e.Query, p, 2) {
			gens = append(gens, g.Text)
		}
	}
	pats := relations.MinePatterns(gens, 5)
	rels := relations.DiscoverTaxonomy(gens, 5)
	fmt.Fprintf(r.Out, "mined %d predicate patterns over %d generations\n", len(pats), len(gens))
	for _, p := range pats {
		fmt.Fprintf(r.Out, "  %-30s count=%-6d -> %s\n", p.Prefix, p.Count, p.Canonical)
	}
	fmt.Fprintf(r.Out, "discovered %d canonical relations (paper: 15): %v\n", len(rels), rels)
	return nil
}

func (r *Runner) table3() error {
	res := r.World()
	coPairs := map[catalog.Category]int{}
	for _, e := range res.SampledCoBuys {
		p, _ := res.Catalog.ByID(e.A)
		coPairs[p.Category]++
	}
	sbPairs := map[catalog.Category]int{}
	for _, e := range res.SampledSearchBuys {
		p, _ := res.Catalog.ByID(e.ProductID)
		sbPairs[p.Category]++
	}
	anns := map[catalog.Category]int{}
	for _, c := range res.AnnotatedCandidates {
		anns[c.Domain]++
	}
	kgStats := res.KG.ComputeStats()
	fmt.Fprintf(r.Out, "%-28s %8s %8s %6s %8s %8s\n",
		"Category", "co-pairs", "sb-pairs", "annot", "co-edges", "sb-edges")
	totCo, totSb, totAnn, totCoE, totSbE := 0, 0, 0, 0, 0
	for _, cat := range sortedCategories() {
		ds := kgStats.PerDomain[cat]
		fmt.Fprintf(r.Out, "%-28s %8d %8d %6d %8d %8d\n",
			cat, coPairs[cat], sbPairs[cat], anns[cat], ds.CoBuyEdges, ds.SearchBuyEdges)
		totCo += coPairs[cat]
		totSb += sbPairs[cat]
		totAnn += anns[cat]
		totCoE += ds.CoBuyEdges
		totSbE += ds.SearchBuyEdges
	}
	fmt.Fprintf(r.Out, "%-28s %8d %8d %6d %8d %8d\n", "Total", totCo, totSb, totAnn, totCoE, totSbE)
	fmt.Fprintf(r.Out, "paper totals: co-pairs 3.15M, sb-pairs 1.87M, annotations 30k, edges 24.9M + 5.1M\n")
	return nil
}

func (r *Runner) table4() error {
	res := r.World()
	var coAnns, sbAnns []annotation.Annotation
	for i, c := range res.AnnotatedCandidates {
		if c.Behavior == know.CoBuy {
			coAnns = append(coAnns, res.Annotations[i])
		} else {
			sbAnns = append(sbAnns, res.Annotations[i])
		}
	}
	coP, coT := annotation.Ratios(coAnns)
	sbP, sbT := annotation.Ratios(sbAnns)
	fmt.Fprintf(r.Out, "%-12s %12s %12s\n", "behavior", "plausibility", "typicality")
	fmt.Fprintf(r.Out, "%-12s %12.1f%% %12.1f%%\n", "co-buy", coP*100, coT*100)
	fmt.Fprintf(r.Out, "%-12s %12.1f%% %12.1f%%\n", "search-buy", sbP*100, sbT*100)
	fmt.Fprintf(r.Out, "paper: search-buy typicality 35.0%%; co-buy typicality notably lower\n")
	fmt.Fprintf(r.Out, "shape check: search-buy typicality > co-buy typicality = %v\n", sbT > coT)
	return nil
}

func (r *Runner) table5() error {
	res := r.World()
	gen := relevance.NewGenerator(res.Catalog, nil)
	fmt.Fprintf(r.Out, "%-8s %8s %8s %8s %8s %8s\n",
		"locale", "train", "test", "exact", "uniq-q", "uniq-p")
	for _, loc := range relevance.Locales(r.localeScale()) {
		ds := gen.Generate(loc)
		s := relevance.ComputeStats(ds)
		fmt.Fprintf(r.Out, "%-8s %8d %8d %8d %8d %8d\n",
			s.Locale, s.TrainPairs, s.TestPairs, s.ExactPairs, s.UniqueQueries, s.UniqueProducts)
	}
	fmt.Fprintf(r.Out, "paper train sizes: KDD 1.39M, US 1.15M, CA 0.22M, UK 0.46M, IN 1.48M (ratios preserved)\n")
	return nil
}

// table6Paper holds the paper's Table 6 values for side-by-side output.
var table6Paper = map[string][4]float64{
	// fixedMacro, fixedMicro, trainMacro, trainMicro
	"Bi-encoder":              {25.52, 65.49, 47.96, 70.23},
	"Cross-encoder":           {28.44, 66.84, 57.49, 74.23},
	"Cross-encoder w/ Intent": {45.52, 86.40, 73.48, 90.78},
}

func (r *Runner) table6() error {
	res := r.World()
	gen := relevance.NewGenerator(res.Catalog, cosmoLMRelevanceKnowledge(res))
	loc := relevance.Locales(r.localeScale())[0] // KDD Cup
	ds := gen.Generate(loc)
	fmt.Fprintf(r.Out, "%-26s | %-21s | %-21s\n", "", "Fixed Encoder", "Trainable Encoder")
	fmt.Fprintf(r.Out, "%-26s | %10s %10s | %10s %10s\n", "Method", "MacroF1", "MicroF1", "MacroF1", "MicroF1")
	type row struct {
		arch relevance.Arch
		name string
	}
	var measured [3][4]float64
	rows := []row{
		{relevance.BiEncoder, "Bi-encoder"},
		{relevance.CrossEncoder, "Cross-encoder"},
		{relevance.CrossEncoderIntent, "Cross-encoder w/ Intent"},
	}
	for i, rw := range rows {
		fm, fi := relevance.TrainAndEvaluate(relevance.DefaultModelConfig(rw.arch, false), ds)
		tm, ti := relevance.TrainAndEvaluate(relevance.DefaultModelConfig(rw.arch, true), ds)
		measured[i] = [4]float64{fm * 100, fi * 100, tm * 100, ti * 100}
		p := table6Paper[rw.name]
		fmt.Fprintf(r.Out, "%-26s | %10.2f %10.2f | %10.2f %10.2f   (paper: %.2f %.2f | %.2f %.2f)\n",
			rw.name, measured[i][0], measured[i][1], measured[i][2], measured[i][3],
			p[0], p[1], p[2], p[3])
	}
	fmt.Fprintf(r.Out, "Δ intent vs cross (fixed macro): measured %+.1f%%, paper +60.1%%\n",
		100*(measured[2][0]-measured[1][0])/measured[1][0])
	fmt.Fprintf(r.Out, "shape check: intent>cross>bi (fixed macro) = %v\n",
		measured[2][0] > measured[1][0] && measured[1][0] > measured[0][0])
	return nil
}

// avgOverSeeds trains and evaluates a config over several model seeds
// and returns the mean macro F1 — single-seed small-data training is too
// noisy for a per-locale comparison.
func avgOverSeeds(arch relevance.Arch, trainable bool, ds relevance.Dataset, seeds int) float64 {
	total := 0.0
	for s := 0; s < seeds; s++ {
		cfg := relevance.DefaultModelConfig(arch, trainable)
		cfg.Seed = int64(7 + s)
		m, _ := relevance.TrainAndEvaluate(cfg, ds)
		total += m
	}
	return total / float64(seeds)
}

func (r *Runner) figure7() error {
	res := r.World()
	gen := relevance.NewGenerator(res.Catalog, cosmoLMRelevanceKnowledge(res))
	locales := relevance.Locales(r.localeScale())[1:] // US, CA, UK, IN
	// Keep every locale inside a trainable band: below ~800 pairs the
	// encoders are noise-dominated and the comparison meaningless.
	for i := range locales {
		locales[i].TrainPairs = clamp(locales[i].TrainPairs, 800, 2500)
		locales[i].TestPairs = clamp(locales[i].TestPairs, 400, 800)
	}
	for _, setting := range []struct {
		name      string
		trainable bool
	}{{"fixed (Figure 7a)", false}, {"tuned (Figure 7b)", true}} {
		fmt.Fprintf(r.Out, "-- %s --\n", setting.name)
		fmt.Fprintf(r.Out, "%-8s %14s %18s %8s\n", "locale", "cross macroF1", "+intent macroF1", "Δ")
		for _, loc := range locales {
			ds := gen.Generate(loc)
			cm := avgOverSeeds(relevance.CrossEncoder, setting.trainable, ds, 3)
			im := avgOverSeeds(relevance.CrossEncoderIntent, setting.trainable, ds, 3)
			fmt.Fprintf(r.Out, "%-8s %14.2f %18.2f %+7.1f%%\n",
				loc.Name, cm*100, im*100, 100*(im-cm)/cm)
		}
	}
	fmt.Fprintf(r.Out, "paper shape: intent-enhanced cross-encoder wins on every locale in both settings\n")
	return nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (r *Runner) table7() error {
	res := r.World()
	n := max(600, 4000/r.Scale)
	el := session.Build(res.Catalog, session.ElectronicsConfig(n))
	cl := session.Build(res.Catalog, session.ClothingConfig(n))
	fmt.Fprintf(r.Out, "%-12s %-6s %10s %12s %12s %14s\n",
		"domain", "split", "#sessions", "avg sess len", "avg query", "avg uniq query")
	for _, d := range []struct {
		name string
		ds   *session.Dataset
	}{{"clothing", cl}, {"electronics", el}} {
		for _, sp := range []struct {
			name string
			seqs []session.Seq
		}{{"train", d.ds.Train}, {"dev", d.ds.Dev}, {"test", d.ds.Test}} {
			s := session.ComputeStats(sp.seqs)
			fmt.Fprintf(r.Out, "%-12s %-6s %10d %12.2f %12.2f %14.2f\n",
				d.name, sp.name, s.Sessions, s.AvgSessLen, s.AvgQueryLen, s.AvgUniqQueryLen)
		}
	}
	fmt.Fprintf(r.Out, "paper: clothing len 8.79 uniq-q 1.36; electronics len 12.27 uniq-q 2.47\n")
	return nil
}

// table8Paper holds the paper's Table 8 Hits@10 values for reference.
var table8Paper = map[string][2]float64{
	"FPMC":      {62.16, 21.79},
	"GRU4Rec":   {83.20, 49.53},
	"STAMP":     {81.34, 56.96},
	"CSRM":      {82.31, 61.66},
	"SRGNN":     {85.82, 67.83},
	"GC-SAN":    {84.43, 66.88},
	"GCE-GNN":   {86.67, 70.13},
	"COSMO-GNN": {90.18, 74.21},
}

func (r *Runner) table8() error {
	res := r.World()
	kfn := cosmoLMSessionKnowledge(res)
	n := max(900, 4000/r.Scale)
	cfg := session.DefaultTrainConfig()
	cfg.Epochs = 4
	cfg.MaxTrainSessions = max(400, 1600/r.Scale)
	domains := []struct {
		name string
		ds   *session.Dataset
	}{
		{"clothing", session.Build(res.Catalog, session.ClothingConfig(n))},
		{"electronics", session.Build(res.Catalog, session.ElectronicsConfig(n))},
	}
	models := func() []session.Recommender {
		return []session.Recommender{
			session.NewFPMC(), session.NewGRU4Rec(), session.NewSTAMP(),
			session.NewCSRM(), session.NewSRGNN(), session.NewGCSAN(),
			session.NewGCEGNN(), session.NewCOSMOGNN(kfn),
		}
	}
	results := map[string]map[string][3]float64{}
	for _, d := range domains {
		results[d.name] = map[string][3]float64{}
		for _, m := range models() {
			m.Fit(d.ds, cfg)
			h, nd, mr := session.Evaluate(m, d.ds.Test, 10)
			results[d.name][m.Name()] = [3]float64{h * 100, nd * 100, mr * 100}
		}
	}
	fmt.Fprintf(r.Out, "%-10s | %-27s | %-27s\n", "", "clothing", "electronics")
	fmt.Fprintf(r.Out, "%-10s | %8s %8s %8s | %8s %8s %8s\n",
		"Method", "Hits@10", "NDCG@10", "MRR@10", "Hits@10", "NDCG@10", "MRR@10")
	for _, name := range []string{"FPMC", "GRU4Rec", "STAMP", "CSRM", "SRGNN", "GC-SAN", "GCE-GNN", "COSMO-GNN"} {
		c := results["clothing"][name]
		e := results["electronics"][name]
		p := table8Paper[name]
		fmt.Fprintf(r.Out, "%-10s | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f   (paper Hits: %.2f / %.2f)\n",
			name, c[0], c[1], c[2], e[0], e[1], e[2], p[0], p[1])
	}
	cg := results["clothing"]["COSMO-GNN"][0]
	cb := results["clothing"]["GCE-GNN"][0]
	eg := results["electronics"]["COSMO-GNN"][0]
	eb := results["electronics"]["GCE-GNN"][0]
	fmt.Fprintf(r.Out, "Δ COSMO-GNN vs GCE-GNN Hits@10: clothing %+.1f%% (paper +4.05%%), electronics %+.1f%% (paper +5.82%%)\n",
		100*(cg-cb)/cb, 100*(eg-eb)/eb)
	return nil
}

func (r *Runner) table9() error {
	res := r.World()
	fmt.Fprintf(r.Out, "%-28s %s\n", "Category", "COSMO-LM generation example")
	for _, cat := range sortedCategories() {
		types := res.Catalog.TypesInCategory(cat)
		example := "(no generation)"
		for _, tn := range types {
			ps := res.Catalog.OfType(tn)
			if len(ps) == 0 {
				continue
			}
			p := ps[0]
			gens := res.CosmoLM.Generate(
				"search query: "+tn+" | purchased: "+p.Title, cat, "", 1)
			if len(gens) > 0 {
				example = gens[0].Text
				break
			}
		}
		fmt.Fprintf(r.Out, "%-28s %s\n", cat, example)
	}
	return nil
}
