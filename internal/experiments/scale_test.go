package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"cosmo/internal/kg"
)

// TestScaledKGGrowth pins the harness's contract: factor f yields at
// least f× the base world's edges, node growth stays sub-linear in
// edges (the intention space is shared across replicas), and the
// result freezes and binary-round-trips cleanly.
func TestScaledKGGrowth(t *testing.T) {
	r, _ := runner(t)
	base := r.World().KG

	g, err := r.ScaledKG(3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 3*base.NumEdges() {
		t.Fatalf("factor 3: %d edges, want >= %d", g.NumEdges(), 3*base.NumEdges())
	}
	// Shared intention tails: scaling adds head nodes but no new tail
	// per replica, so nodes grow strictly slower than 3x edges would.
	if g.NumNodes() >= 3*base.NumNodes() {
		t.Fatalf("factor 3: %d nodes, want < %d (tails must be shared)", g.NumNodes(), 3*base.NumNodes())
	}

	snap, err := g.FreezeChecked()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := kg.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumEdges() != snap.NumEdges() || loaded.NumNodes() != snap.NumNodes() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			loaded.NumNodes(), snap.NumNodes(), loaded.NumEdges(), snap.NumEdges())
	}
}

// TestScaledKGDeterministic: the same factor over the same world must
// reproduce the graph bit for bit — the property that makes the scale
// benchmarks comparable across runs.
func TestScaledKGDeterministic(t *testing.T) {
	r, _ := runner(t)
	a, err := r.ScaledKG(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ScaledKG(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) {
		t.Fatal("ScaledKG nodes differ across identical runs")
	}
	if !reflect.DeepEqual(a.Edges(), b.Edges()) {
		t.Fatal("ScaledKG edges differ across identical runs")
	}
}

// TestScaledKGFactorOne: factor 1 is a pure copy of the base graph.
func TestScaledKGFactorOne(t *testing.T) {
	r, _ := runner(t)
	base := r.World().KG
	g, err := r.ScaledKG(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), base.Edges()) {
		t.Fatal("factor 1 edges differ from the base graph")
	}
	if _, err := r.ScaledKG(0); err == nil {
		t.Fatal("factor 0 accepted")
	}
}
