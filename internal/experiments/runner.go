// Package experiments is the benchmark harness that regenerates every
// table and figure of the paper's evaluation. Each experiment prints the
// measured values alongside the paper's reported values so the *shape*
// of each result (who wins, by roughly what factor) can be checked
// directly. Absolute numbers differ by design: the substrate is the
// simulator described in DESIGN.md, not Amazon's production systems.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"cosmo/internal/catalog"
	"cosmo/internal/core"
	"cosmo/internal/cosmolm"
	"cosmo/internal/instruction"
	"cosmo/internal/kg"
	"cosmo/internal/relevance"
	"cosmo/internal/session"
)

// Runner executes experiments over a shared pipeline world.
type Runner struct {
	// Scale shrinks workload sizes; 1 = the largest laptop-scale run,
	// larger values shrink further (tests use high scales).
	Scale int
	Seed  int64
	Out   io.Writer
	// Workers bounds the pipeline's parallel-stage fan-out (0 =
	// GOMAXPROCS). The worker count never changes experiment results.
	Workers int

	mu   sync.Mutex
	res  *core.Result
	snap *kg.Snapshot
}

// NewRunner builds a runner writing reports to out.
func NewRunner(out io.Writer, scale int) *Runner {
	if scale < 1 {
		scale = 1
	}
	return &Runner{Scale: scale, Seed: 42, Out: out}
}

// World lazily runs the offline pipeline once and caches the result.
func (r *Runner) World() *core.Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.res != nil {
		return r.res
	}
	cfg := core.DefaultConfig()
	cfg.Seed = r.Seed
	// The sparse-item regime (many products per type) is where the
	// paper's downstream gains live: item co-occurrence alone cannot
	// cover the tail, so intent knowledge genuinely generalizes.
	cfg.Catalog.ProductsPerType = 8
	// The event floor keeps COSMO-LM's training corpus rich enough that
	// its knowledge is useful to the downstream experiments even at high
	// scale divisors; the pipeline itself is cheap relative to them.
	cfg.Behavior.CoBuyEvents = max(8000, 40000/r.Scale)
	cfg.Behavior.SearchEvents = max(8000, 40000/r.Scale)
	cfg.AnnotationBudget = max(1500, 6000/r.Scale)
	cfg.Workers = r.Workers
	res, err := core.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: pipeline failed: %v", err))
	}
	r.res = res
	return res
}

// DropWorld releases the cached pipeline world and frozen snapshot so
// memory-sensitive harnesses (cosmo-bench -mmapbench) can measure
// loaders against a quiet heap after deriving their artifacts. The
// next World call rebuilds from scratch.
func (r *Runner) DropWorld() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.res = nil
	r.snap = nil
}

// KGSnapshot lazily freezes the world's knowledge graph once and
// caches it — the serving-side experiments read the same immutable
// view a deployment would.
func (r *Runner) KGSnapshot() *kg.Snapshot {
	res := r.World()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.snap == nil {
		r.snap = res.KG.Freeze()
	}
	return r.snap
}

// Experiment is one runnable experiment.
type Experiment struct {
	Name  string
	Title string
	Run   func(r *Runner) error
}

var registry = []Experiment{
	{"table1", "Table 1: COSMO KG summary row", (*Runner).table1},
	{"table2", "Table 2: mined relation taxonomy", (*Runner).table2},
	{"table3", "Table 3: per-category pipeline statistics", (*Runner).table3},
	{"table4", "Table 4: plausibility/typicality ratios", (*Runner).table4},
	{"table5", "Table 5: ESCI dataset statistics", (*Runner).table5},
	{"table6", "Table 6: search relevance on the public locale", (*Runner).table6},
	{"figure7", "Figure 7: private ESCI across four locales", (*Runner).figure7},
	{"table7", "Table 7: session dataset statistics", (*Runner).table7},
	{"table8", "Table 8: session-based recommendation", (*Runner).table8},
	{"table9", "Table 9: COSMO-LM generations per category", (*Runner).table9},
	{"figure8", "Figure 8: intention hierarchy", (*Runner).figure8},
	{"abtest", "§4.3.2: online A/B endpoints", (*Runner).abtest},
	{"serving", "Figure 5: serving latency and cache behaviour", (*Runner).serving},
	{"latency", "Inference efficiency: teacher vs COSMO-LM", (*Runner).latency},
	{"ablation-filter", "Ablation: coarse-filter stages", (*Runner).ablationFilter},
	{"ablation-sampling", "Ablation: Eq.2 re-weighted annotation sampling", (*Runner).ablationSampling},
	{"ablation-tasks", "Ablation: instruction task diversity", (*Runner).ablationTasks},
	{"ablation-cache", "Ablation: one- vs two-layer cache", (*Runner).ablationCache},
	{"limitation-flashsale", "§3.5.3 limitation: flash-sale staleness", (*Runner).flashSale},
	{"baseline-folkscope", "Table 1 / §1: FolkScope baseline comparison", (*Runner).baselineFolkScope},
	{"future-rewrites", "§4.2.4 future work: query-rewrite reduction", (*Runner).rewriteStudy},
}

// Names lists all experiment names in registry order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	return out
}

// Run executes one experiment by name.
func (r *Runner) Run(name string) error {
	for _, e := range registry {
		if e.Name == name {
			fmt.Fprintf(r.Out, "=== %s — %s ===\n", e.Name, e.Title)
			return e.Run(r)
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
}

// RunAll executes every registered experiment.
func (r *Runner) RunAll() error {
	for _, e := range registry {
		if err := r.Run(e.Name); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		fmt.Fprintln(r.Out)
	}
	return nil
}

// cosmoLMRelevanceKnowledge adapts the pipeline's COSMO-LM to the
// relevance experiment's knowledge interface. It mirrors what the
// deployed feature store emits: generations for the pair, the
// intersection of query-side and product-side intents (the "shared
// reason" signal), gated by the search-relevance prediction head so that
// unrelated pairs produce no knowledge at all.
func cosmoLMRelevanceKnowledge(res *core.Result) relevance.KnowledgeFn {
	return func(query string, p catalog.Product) string {
		ctx := cosmolm.SearchContext(query, p.Title)
		_, prob := res.CosmoLM.Predict(instruction.TaskSearchRelevance, ctx)
		if prob < 0.4 {
			return ""
		}
		band := "weak match"
		if prob > 0.75 {
			band = "strong match"
		}
		qGens := res.CosmoLM.Generate("search query: "+query, p.Category, "", 3)
		pGens := res.CosmoLM.Generate("purchased: "+p.Title, p.Category, "", 3)
		pTails := map[string]bool{}
		for _, g := range pGens {
			pTails[g.Tail] = true
		}
		var spans []string
		for _, g := range qGens {
			if pTails[g.Tail] {
				spans = append(spans, g.Text)
			}
		}
		if len(spans) == 0 {
			// No shared intent: fall back to the pair generation.
			for i, g := range res.CosmoLM.Generate(ctx, p.Category, "", 2) {
				if i > 0 {
					break
				}
				spans = append(spans, g.Text)
			}
		}
		out := band
		for _, s := range spans {
			out += "; " + s
		}
		return out
	}
}

// cosmoLMSessionKnowledge adapts COSMO-LM to the session experiment.
func cosmoLMSessionKnowledge(res *core.Result) session.KnowledgeFn {
	return func(query string, productID string) string {
		p, ok := res.Catalog.ByID(productID)
		if !ok {
			return ""
		}
		gens := res.CosmoLM.Generate(cosmolm.SearchContext(query, p.Title), p.Category, "", 1)
		if len(gens) == 0 {
			return ""
		}
		return gens[0].Text
	}
}

// localeScale converts the runner scale into the Locales divisor so the
// KDD Cup locale lands near 2000 training pairs at the default bench
// scale — enough to train the small encoders meaningfully.
func (r *Runner) localeScale() int { return r.Scale * 55 }

// sortedCategories returns the 18 categories in Table 3 order.
func sortedCategories() []catalog.Category { return catalog.Categories() }

// sortStrings sorts a copy.
func sortStrings(xs []string) []string {
	out := append([]string{}, xs...)
	sort.Strings(out)
	return out
}
