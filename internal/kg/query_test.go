package kg

import (
	"testing"

	"cosmo/internal/catalog"
	"cosmo/internal/relations"
)

func TestRelatedProducts(t *testing.T) {
	g := New()
	// P1 and P2 share "camping"; P3 is unrelated.
	for _, c := range []struct {
		a, b string
		tail string
	}{
		{"P1", "P2", "camping"},
		{"P3", "P4", "office work"},
	} {
		if err := g.AddAssertion(coBuyCand(1, c.a, c.b, c.tail, relations.UsedForEve)); err != nil {
			t.Fatal(err)
		}
	}
	rel := g.RelatedProducts(ProductID("P1"), 5)
	if len(rel) != 1 {
		t.Fatalf("related = %+v", rel)
	}
	if rel[0].ProductID != ProductID("P2") {
		t.Errorf("related product = %s", rel[0].ProductID)
	}
	if len(rel[0].Via) != 1 || rel[0].Via[0] != "camping" {
		t.Errorf("via = %v", rel[0].Via)
	}
	if rel[0].Score <= 0 {
		t.Errorf("score = %v", rel[0].Score)
	}
}

func TestRelatedProductsRanking(t *testing.T) {
	g := New()
	// P1-P2 share two intents; P1-P5 share one.
	mustAdd := func(a, b, tail string) {
		t.Helper()
		if err := g.AddAssertion(coBuyCand(1, a, b, tail, relations.UsedForEve)); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("P1", "P2", "camping")
	mustAdd("P1", "P2", "hiking")
	mustAdd("P1", "P5", "camping")
	rel := g.RelatedProducts(ProductID("P1"), 5)
	if len(rel) != 2 {
		t.Fatalf("related = %+v", rel)
	}
	if rel[0].ProductID != ProductID("P2") {
		t.Errorf("strongest related = %s, want P2", rel[0].ProductID)
	}
	if rel[0].Score <= rel[1].Score {
		t.Error("ranking not by score")
	}
}

func TestRelatedProductsK(t *testing.T) {
	g := New()
	for _, other := range []string{"P2", "P3", "P4", "P5"} {
		if err := g.AddAssertion(coBuyCand(1, "P1", other, "camping", relations.UsedForEve)); err != nil {
			t.Fatal(err)
		}
	}
	if rel := g.RelatedProducts(ProductID("P1"), 2); len(rel) != 2 {
		t.Errorf("k cap violated: %d", len(rel))
	}
	if rel := g.RelatedProducts("p:NOPE", 2); len(rel) != 0 {
		t.Errorf("unknown head should have no relations: %+v", rel)
	}
}

func TestSubgraph(t *testing.T) {
	g := buildTestGraph(t)
	sub := g.Subgraph(map[string]bool{string(catalog.Sports): true})
	if sub.NumEdges() != g.NumEdges() {
		t.Errorf("all test edges are Sports; got %d of %d", sub.NumEdges(), g.NumEdges())
	}
	empty := g.Subgraph(map[string]bool{"Nope": true})
	if empty.NumEdges() != 0 || empty.NumNodes() != 0 {
		t.Error("empty domain filter should give empty graph")
	}
}
