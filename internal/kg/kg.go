// Package kg implements the COSMO knowledge-graph store: typed nodes
// (products, queries, intentions), scored edges (head, relation, tail),
// secondary indexes, per-domain statistics (paper Tables 1 and 3), the
// intention hierarchy of Figure 8, and serialization.
package kg

import (
	"fmt"
	"sort"
	"sync"

	"cosmo/internal/catalog"
	"cosmo/internal/know"
	"cosmo/internal/relations"
)

// NodeType classifies graph nodes.
type NodeType string

// Node types; the paper's Table 1 lists product, query and intention.
const (
	NodeProduct   NodeType = "product"
	NodeQuery     NodeType = "query"
	NodeIntention NodeType = "intention"
)

// Node is one graph node.
type Node struct {
	ID   string
	Type NodeType
	// Label is the human-readable surface (title, query text, or tail).
	Label string
}

// Edge is one knowledge assertion: head --relation--> intention tail,
// annotated with critic scores and provenance.
type Edge struct {
	// Head is a product node ID (co-buy) or query node ID (search-buy);
	// for co-buy both products point at the shared intention.
	Head     string
	Relation relations.Relation
	// Tail is the intention node ID.
	Tail string

	Behavior       know.BehaviorType
	Domain         catalog.Category
	PlausibleScore float64
	TypicalScore   float64
	// Support counts how many behavior observations produced this edge.
	Support int
}

// Graph is the knowledge graph. Writes happen during construction;
// concurrent reads are safe after Freeze (or via the RWMutex otherwise).
type Graph struct {
	mu    sync.RWMutex
	nodes map[string]Node
	edges map[string]*Edge // key: head|rel|tail
	// indexes
	byHead     map[string][]string
	byTail     map[string][]string
	byRelation map[relations.Relation][]string
	byDomain   map[catalog.Category][]string
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:      map[string]Node{},
		edges:      map[string]*Edge{},
		byHead:     map[string][]string{},
		byTail:     map[string][]string{},
		byRelation: map[relations.Relation][]string{},
		byDomain:   map[catalog.Category][]string{},
	}
}

// IntentionID returns the canonical node ID for an intention tail.
func IntentionID(rel relations.Relation, tail string) string {
	return "i:" + string(rel) + ":" + tail
}

// ProductID returns the node ID for a product.
func ProductID(id string) string { return "p:" + id }

// QueryID returns the node ID for a query.
func QueryID(q string) string { return "q:" + q }

// AddNode inserts or updates a node.
func (g *Graph) AddNode(n Node) {
	g.mu.Lock()
	g.nodes[n.ID] = n
	g.mu.Unlock()
}

func edgeKey(head string, rel relations.Relation, tail string) string {
	return head + "|" + string(rel) + "|" + tail
}

// AddEdge inserts an edge, merging support and keeping max scores when
// the same assertion already exists. Head and tail nodes must exist.
func (g *Graph) AddEdge(e Edge) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[e.Head]; !ok {
		return fmt.Errorf("kg: unknown head node %q", e.Head)
	}
	if _, ok := g.nodes[e.Tail]; !ok {
		return fmt.Errorf("kg: unknown tail node %q", e.Tail)
	}
	k := edgeKey(e.Head, e.Relation, e.Tail)
	if old, ok := g.edges[k]; ok {
		old.Support += e.Support
		if e.PlausibleScore > old.PlausibleScore {
			old.PlausibleScore = e.PlausibleScore
		}
		if e.TypicalScore > old.TypicalScore {
			old.TypicalScore = e.TypicalScore
		}
		return nil
	}
	cp := e
	if cp.Support == 0 {
		cp.Support = 1
	}
	g.edges[k] = &cp
	g.byHead[e.Head] = append(g.byHead[e.Head], k)
	g.byTail[e.Tail] = append(g.byTail[e.Tail], k)
	g.byRelation[e.Relation] = append(g.byRelation[e.Relation], k)
	g.byDomain[e.Domain] = append(g.byDomain[e.Domain], k)
	return nil
}

// AddAssertion is the high-level insert used by the pipeline: it creates
// the head, relation and intention nodes as needed and adds the edge.
func (g *Graph) AddAssertion(c know.Candidate) error {
	if c.Relation == "" || c.Tail == "" {
		return fmt.Errorf("kg: candidate %d has no parsed triple", c.ID)
	}
	tailID := IntentionID(c.Relation, c.Tail)
	g.AddNode(Node{ID: tailID, Type: NodeIntention, Label: c.Tail})
	mk := func(head string) error {
		return g.AddEdge(Edge{
			Head: head, Relation: c.Relation, Tail: tailID,
			Behavior: c.Behavior, Domain: c.Domain,
			PlausibleScore: c.PlausibleScore, TypicalScore: c.TypicalScore,
			Support: 1,
		})
	}
	switch c.Behavior {
	case know.SearchBuy:
		qid := QueryID(c.Query)
		g.AddNode(Node{ID: qid, Type: NodeQuery, Label: c.Query})
		pid := ProductID(c.ProductA)
		g.AddNode(Node{ID: pid, Type: NodeProduct, Label: c.ProductA})
		if err := mk(qid); err != nil {
			return err
		}
		return mk(pid)
	default:
		pa := ProductID(c.ProductA)
		pb := ProductID(c.ProductB)
		g.AddNode(Node{ID: pa, Type: NodeProduct, Label: c.ProductA})
		g.AddNode(Node{ID: pb, Type: NodeProduct, Label: c.ProductB})
		if err := mk(pa); err != nil {
			return err
		}
		return mk(pb)
	}
}

// Node returns a node by ID.
func (g *Graph) Node(id string) (Node, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	return n, ok
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// NumRelations returns the number of distinct relations present.
func (g *Graph) NumRelations() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.byRelation)
}

func (g *Graph) collect(keys []string) []Edge {
	out := make([]Edge, 0, len(keys))
	for _, k := range keys {
		out = append(out, *g.edges[k])
	}
	return out
}

// EdgesFrom returns all edges with the given head.
func (g *Graph) EdgesFrom(head string) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.collect(g.byHead[head])
}

// EdgesTo returns all edges pointing at the given intention tail.
func (g *Graph) EdgesTo(tail string) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.collect(g.byTail[tail])
}

// EdgesByRelation returns all edges of a relation.
func (g *Graph) EdgesByRelation(r relations.Relation) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.collect(g.byRelation[r])
}

// EdgesInDomain returns all edges of a domain.
func (g *Graph) EdgesInDomain(d catalog.Category) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.collect(g.byDomain[d])
}

// Edges returns every edge in deterministic (key-sorted) order.
func (g *Graph) Edges() []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	keys := make([]string, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return g.collect(keys)
}

// Nodes returns every node in deterministic order.
func (g *Graph) Nodes() []Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Node, len(ids))
	for i, id := range ids {
		out[i] = g.nodes[id]
	}
	return out
}

// IntentionsFor returns the intention labels reachable from a head,
// sorted by descending typicality score.
func (g *Graph) IntentionsFor(head string) []Edge {
	es := g.EdgesFrom(head)
	sortIntentions(es)
	return es
}

// sortIntentions orders edges by descending typicality with a total
// (tail, relation) tie-break — the order Snapshot pre-bakes into its
// per-head CSR rows.
func sortIntentions(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].TypicalScore != es[j].TypicalScore {
			return es[i].TypicalScore > es[j].TypicalScore
		}
		if es[i].Tail != es[j].Tail {
			return es[i].Tail < es[j].Tail
		}
		return es[i].Relation < es[j].Relation
	})
}

// Stats summarizes the graph (the COSMO row of paper Table 1).
type Stats struct {
	Nodes     int
	Edges     int
	Relations int
	Domains   int
	PerDomain map[catalog.Category]DomainStats
}

// DomainStats is one row of paper Table 3's edge counts.
type DomainStats struct {
	CoBuyEdges     int
	SearchBuyEdges int
}

// ComputeStats builds graph statistics.
func (g *Graph) ComputeStats() Stats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := Stats{
		Nodes:     len(g.nodes),
		Edges:     len(g.edges),
		Relations: len(g.byRelation),
		Domains:   len(g.byDomain),
		PerDomain: map[catalog.Category]DomainStats{},
	}
	for d, keys := range g.byDomain {
		ds := DomainStats{}
		for _, k := range keys {
			if g.edges[k].Behavior == know.SearchBuy {
				ds.SearchBuyEdges++
			} else {
				ds.CoBuyEdges++
			}
		}
		s.PerDomain[d] = ds
	}
	return s
}
