package kg

import "sort"

// Related is one product reached through shared intentions.
type Related struct {
	ProductID string // node ID (p:...)
	Label     string
	// Score aggregates the typicality-weighted support of the shared
	// intention paths.
	Score float64
	// Via lists the intention labels connecting the two heads.
	Via []string
}

// RelatedProducts walks head → intention → product two-hop paths and
// returns up to k products sharing intentions with the head, best first.
// This is the KG-native form of the "substitute / complement through a
// shared reason" signal the downstream applications consume.
//
// The whole walk holds one read lock (no per-edge re-entry) and visits
// edges in the same canonical order as Snapshot.RelatedProducts —
// first hop in IntentionsFor order, back edges by (head, relation) —
// so the accumulated float scores of the two paths are bitwise equal.
func (g *Graph) RelatedProducts(head string, k int) []Related {
	type agg struct {
		score float64
		via   map[string]bool
	}
	acc := map[string]*agg{}

	g.mu.RLock()
	first := g.collect(g.byHead[head])
	sortIntentions(first)
	for _, e := range first {
		tailLabel := g.nodes[e.Tail].Label
		back := g.collect(g.byTail[e.Tail])
		sort.Slice(back, func(i, j int) bool {
			if back[i].Head != back[j].Head {
				return back[i].Head < back[j].Head
			}
			return back[i].Relation < back[j].Relation
		})
		for _, b := range back {
			if b.Head == head {
				continue
			}
			n, ok := g.nodes[b.Head]
			if !ok || n.Type != NodeProduct {
				continue
			}
			a := acc[b.Head]
			if a == nil {
				a = &agg{via: map[string]bool{}}
				acc[b.Head] = a
			}
			w := e.TypicalScore * b.TypicalScore * float64(min(e.Support, b.Support))
			if w <= 0 {
				w = 0.01
			}
			a.score += w
			a.via[tailLabel] = true
		}
	}
	out := make([]Related, 0, len(acc))
	for id, a := range acc {
		via := make([]string, 0, len(a.via))
		for v := range a.via {
			via = append(via, v)
		}
		sort.Strings(via)
		out = append(out, Related{ProductID: id, Label: g.nodes[id].Label, Score: a.score, Via: via})
	}
	g.mu.RUnlock()

	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ProductID < out[j].ProductID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Subgraph returns a new graph containing only edges whose domain is in
// domains (all nodes referenced by those edges are copied).
func (g *Graph) Subgraph(domains map[string]bool) *Graph {
	out := New()
	for _, e := range g.Edges() {
		if !domains[string(e.Domain)] {
			continue
		}
		hn, _ := g.Node(e.Head)
		tn, _ := g.Node(e.Tail)
		out.AddNode(hn)
		out.AddNode(tn)
		// Error impossible: both nodes were just added.
		//cosmo:lint-ignore dropped-error AddEdge only errors on unknown endpoints; both were added on the lines above
		_ = out.AddEdge(e)
	}
	return out
}
