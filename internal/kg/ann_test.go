package kg

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSimilarityLookupSmallIndex: on an index smaller than the
// candidate floor, multiprobing gathers everything, so Lookup must
// equal Exact entry for entry — scores included, since both rescore by
// the same cosine.
func TestSimilarityLookupSmallIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomGraph(t, rng, 250).Freeze()
	ix := BuildSimilarityIndex(s, SimilarityConfig{Seed: 3})
	if ix.NumIndexed() == 0 {
		t.Fatal("no intentions indexed")
	}
	queries := []string{"camping", "winter camping", "office work", "walking the dog", "unrelated gibberish zzz"}
	for _, q := range queries {
		for _, k := range []int{1, 3, 50} {
			exact := ix.Exact(q, k)
			ann := ix.Lookup(q, k)
			if !reflect.DeepEqual(exact, ann) {
				t.Fatalf("Lookup(%q, %d) = %+v, want exact %+v", q, k, ann, exact)
			}
		}
	}
}

// TestSimilarityEdgeCases pins the degenerate inputs: blank queries
// (zero embedding) and non-positive k answer empty; defaults resolve.
func TestSimilarityEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randomGraph(t, rng, 100).Freeze()
	ix := BuildSimilarityIndex(s, SimilarityConfig{})
	cfg := ix.Config()
	if cfg.Dim != DefaultSimilarityDim || cfg.Tables != DefaultSimilarityTables || cfg.Bits != DefaultSimilarityBits {
		t.Fatalf("zero config resolved to %+v, want defaults", cfg)
	}
	if got := ix.Lookup("", 5); len(got) != 0 {
		t.Fatalf("blank query returned %d matches", len(got))
	}
	if got := ix.Lookup("camping", 0); len(got) != 0 {
		t.Fatalf("k=0 returned %d matches", len(got))
	}
	if got := ix.Exact("", 5); len(got) != 0 {
		t.Fatalf("blank exact query returned %d matches", len(got))
	}
	if got := BuildSimilarityIndex(New().Freeze(), SimilarityConfig{}).Lookup("camping", 5); len(got) != 0 {
		t.Fatalf("empty index returned %d matches", len(got))
	}
}

// TestSimilarityConcurrent exercises the shared index from many
// goroutines (the serving pattern) so the race detector can see the
// scratch pool discipline.
func TestSimilarityConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := randomGraph(t, rng, 200).Freeze()
	ix := BuildSimilarityIndex(s, SimilarityConfig{Seed: 9})
	queries := []string{"camping", "winter camping", "lakeside camping", "holding snacks", "morning runs"}
	done := make(chan []SimilarMatch, 8)
	for w := 0; w < 8; w++ {
		go func() {
			var last []SimilarMatch
			for i := 0; i < 200; i++ {
				last = ix.Lookup(queries[i%len(queries)], 5)
			}
			done <- last
		}()
	}
	want := ix.Lookup(queries[(200-1)%len(queries)], 5)
	for w := 0; w < 8; w++ {
		if got := <-done; !reflect.DeepEqual(got, want) {
			t.Fatalf("concurrent lookup diverged: %+v vs %+v", got, want)
		}
	}
}
