package kg

import (
	"sort"
	"strings"

	"cosmo/internal/textproc"
)

// Canonicalize merges intention nodes whose (relation, stemmed content)
// coincide — "walk the dog" and "walking the dogs" become one node —
// implementing the paper's tail canonicalization step (§3.1). It returns
// a new graph; the receiver is unmodified. The surviving surface form is
// the one with the highest edge support (ties broken lexicographically).
func (g *Graph) Canonicalize() *Graph {
	type groupKey struct {
		relation string
		stems    string
	}
	// Gather support per tail node to choose representatives.
	support := map[string]int{}
	for _, e := range g.Edges() {
		support[e.Tail] += e.Support
	}
	// Group intention nodes by canonical key.
	groups := map[groupKey][]Node{}
	for _, n := range g.Nodes() {
		if n.Type != NodeIntention {
			continue
		}
		rel := relationOfIntentionID(n.ID)
		stems := textproc.StemAll(textproc.ContentTokens(n.Label))
		sort.Strings(stems)
		k := groupKey{relation: rel, stems: strings.Join(stems, " ")}
		groups[k] = append(groups[k], n)
	}
	// Pick a representative per group.
	replace := map[string]string{} // old tail ID -> canonical tail ID
	for _, nodes := range groups {
		best := nodes[0]
		for _, n := range nodes[1:] {
			if support[n.ID] > support[best.ID] ||
				(support[n.ID] == support[best.ID] && n.ID < best.ID) {
				best = n
			}
		}
		for _, n := range nodes {
			replace[n.ID] = best.ID
		}
	}
	// Rebuild with merged tails.
	out := New()
	for _, n := range g.Nodes() {
		if n.Type == NodeIntention && replace[n.ID] != n.ID {
			continue
		}
		out.AddNode(n)
	}
	for _, e := range g.Edges() {
		e.Tail = replace[e.Tail]
		// AddEdge merges duplicates created by tail replacement.
		//cosmo:lint-ignore dropped-error AddEdge only errors on unknown endpoints; every surviving node was added above
		_ = out.AddEdge(e)
	}
	return out
}

// relationOfIntentionID extracts the relation segment of an intention
// node ID ("i:<relation>:<tail>").
func relationOfIntentionID(id string) string {
	parts := strings.SplitN(id, ":", 3)
	if len(parts) < 3 {
		return ""
	}
	return parts[1]
}
