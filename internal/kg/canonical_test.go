package kg

import (
	"testing"

	"cosmo/internal/relations"
)

func TestCanonicalizeMergesInflectedTails(t *testing.T) {
	g := New()
	// Two inflected variants of the same fact, plus a distinct fact.
	mustAdd := func(id int, q, p, tail string) {
		t.Helper()
		if err := g.AddAssertion(searchCand(id, q, p, tail, relations.UsedForEve)); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(1, "dog", "P1", "walking the dog")
	mustAdd(2, "dog", "P2", "walk the dogs")
	mustAdd(3, "dog", "P3", "walking the dog") // boosts variant 1's support
	mustAdd(4, "cat", "P4", "feeding the cat")

	c := g.Canonicalize()
	// The two walking variants merge into one intention node.
	intentions := 0
	for _, n := range c.Nodes() {
		if n.Type == NodeIntention {
			intentions++
		}
	}
	if intentions != 2 {
		t.Fatalf("intentions after canonicalization = %d, want 2", intentions)
	}
	// The higher-support surface survives.
	want := IntentionID(relations.UsedForEve, "walking the dog")
	if _, ok := c.Node(want); !ok {
		t.Errorf("representative %q missing", want)
	}
	if _, ok := c.Node(IntentionID(relations.UsedForEve, "walk the dogs")); ok {
		t.Error("merged variant still present")
	}
	// Edges re-point at the representative; supports merge.
	es := c.EdgesTo(want)
	if len(es) < 3 { // q:dog + three product heads, minus duplicates
		t.Errorf("merged intention has %d incoming edges", len(es))
	}
}

func TestCanonicalizeKeepsRelationsApart(t *testing.T) {
	g := New()
	if err := g.AddAssertion(searchCand(1, "q", "P1", "holding snacks", relations.CapableOf)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddAssertion(searchCand(2, "q", "P2", "holding snacks", relations.UsedForFunc)); err != nil {
		t.Fatal(err)
	}
	c := g.Canonicalize()
	intentions := 0
	for _, n := range c.Nodes() {
		if n.Type == NodeIntention {
			intentions++
		}
	}
	if intentions != 2 {
		t.Fatalf("same tail under different relations must stay apart; got %d", intentions)
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	g := buildTestGraph(t)
	once := g.Canonicalize()
	twice := once.Canonicalize()
	if once.NumEdges() != twice.NumEdges() || once.NumNodes() != twice.NumNodes() {
		t.Errorf("canonicalization not idempotent: %d/%d vs %d/%d",
			once.NumNodes(), once.NumEdges(), twice.NumNodes(), twice.NumEdges())
	}
}

func TestCanonicalizePreservesOriginal(t *testing.T) {
	g := buildTestGraph(t)
	before := g.NumNodes()
	_ = g.Canonicalize()
	if g.NumNodes() != before {
		t.Error("Canonicalize mutated the receiver")
	}
}

func TestCanonicalizeEmptyGraph(t *testing.T) {
	c := New().Canonicalize()
	if c.NumNodes() != 0 || c.NumEdges() != 0 {
		t.Error("empty graph should canonicalize to empty")
	}
}
