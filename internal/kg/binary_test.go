package kg

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cosmo/internal/catalog"
	"cosmo/internal/relations"
)

// assertSnapshotsEqual compares two snapshots across every query API —
// the round-trip property the binary format must preserve exactly,
// including tie-break ordering and bitwise score equality.
func assertSnapshotsEqual(t *testing.T, want, got *Snapshot) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() || want.NumEdges() != got.NumEdges() || want.NumRelations() != got.NumRelations() {
		t.Fatalf("counts differ: want %d/%d/%d got %d/%d/%d",
			want.NumNodes(), want.NumEdges(), want.NumRelations(),
			got.NumNodes(), got.NumEdges(), got.NumRelations())
	}
	if !reflect.DeepEqual(want.Nodes(), got.Nodes()) {
		t.Fatal("Nodes() differ")
	}
	if !reflect.DeepEqual(want.Edges(), got.Edges()) {
		t.Fatal("Edges() differ")
	}
	if !reflect.DeepEqual(want.ComputeStats(), got.ComputeStats()) {
		t.Fatal("ComputeStats() differ")
	}
	for _, n := range want.Nodes() {
		gn, ok := got.Node(n.ID)
		if !ok || gn != n {
			t.Fatalf("Node(%q) = %+v, %v; want %+v", n.ID, gn, ok, n)
		}
		if !reflect.DeepEqual(want.EdgesFrom(n.ID), got.EdgesFrom(n.ID)) {
			t.Fatalf("EdgesFrom(%q) differ", n.ID)
		}
		if !reflect.DeepEqual(want.EdgesTo(n.ID), got.EdgesTo(n.ID)) {
			t.Fatalf("EdgesTo(%q) differ", n.ID)
		}
		if !reflect.DeepEqual(want.IntentionsFor(n.ID).Edges(), got.IntentionsFor(n.ID).Edges()) {
			t.Fatalf("IntentionsFor(%q) differ", n.ID)
		}
		for _, k := range []int{1, 3, 1 << 20} {
			if !reflect.DeepEqual(want.RelatedProducts(n.ID, k), got.RelatedProducts(n.ID, k)) {
				t.Fatalf("RelatedProducts(%q, %d) differ", n.ID, k)
			}
		}
	}
	for _, r := range relations.All() {
		if !reflect.DeepEqual(want.EdgesByRelation(r), got.EdgesByRelation(r)) {
			t.Fatalf("EdgesByRelation(%q) differ", r)
		}
	}
	for _, d := range catalog.Categories() {
		if !reflect.DeepEqual(want.EdgesInDomain(d), got.EdgesInDomain(d)) {
			t.Fatalf("EdgesInDomain(%q) differ", d)
		}
	}
	for _, minSupport := range []int{1, 2, 4} {
		if !reflect.DeepEqual(want.BuildHierarchy(minSupport), got.BuildHierarchy(minSupport)) {
			t.Fatalf("BuildHierarchy(%d) differs", minSupport)
		}
	}
	if _, ok := got.Node("p:NOPE"); ok {
		t.Fatal("unknown node found after round trip")
	}
	if got.IntentionsFor("p:NOPE").Len() != 0 {
		t.Fatal("unknown head has intentions after round trip")
	}
}

// TestSnapshotBinaryRoundTrip is the randomized round-trip property
// test: Freeze → WriteSnapshot → ReadSnapshot must agree with the
// original snapshot on every query API, exactly.
func TestSnapshotBinaryRoundTrip(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(4000 + trial)))
			g := randomGraph(t, rng, 40+rng.Intn(260))
			want := g.Freeze()
			var buf bytes.Buffer
			if err := want.WriteSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			assertSnapshotsEqual(t, want, got)
		})
	}
}

// TestSnapshotBinaryRoundTripEmpty round-trips the degenerate empty
// snapshot.
func TestSnapshotBinaryRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Freeze().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 || got.NumEdges() != 0 {
		t.Fatalf("empty round trip: %d nodes %d edges", got.NumNodes(), got.NumEdges())
	}
}

// TestSnapshotFileRoundTrip exercises the path-based helpers.
func TestSnapshotFileRoundTrip(t *testing.T) {
	g := buildTestGraph(t)
	want := g.Freeze()
	path := filepath.Join(t.TempDir(), "kg.cosmo")
	if err := WriteSnapshotFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotsEqual(t, want, got)
}

// TestSnapshotExportEquivalence pins that the frozen-view exporters
// emit byte-identical output to the Graph exporters, and that a
// loaded binary snapshot exports the same bytes again.
func TestSnapshotExportEquivalence(t *testing.T) {
	g := buildTestGraph(t)
	s := g.Freeze()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var gj, sj, lj bytes.Buffer
	if err := g.WriteJSONL(&gj); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSONL(&sj); err != nil {
		t.Fatal(err)
	}
	if err := loaded.WriteJSONL(&lj); err != nil {
		t.Fatal(err)
	}
	if gj.String() != sj.String() || gj.String() != lj.String() {
		t.Fatal("JSONL export differs between graph, snapshot and loaded snapshot")
	}
	var gt, st, lt bytes.Buffer
	if err := g.WriteTSV(&gt); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteTSV(&st); err != nil {
		t.Fatal(err)
	}
	if err := loaded.WriteTSV(&lt); err != nil {
		t.Fatal(err)
	}
	if gt.String() != st.String() || gt.String() != lt.String() {
		t.Fatal("TSV export differs between graph, snapshot and loaded snapshot")
	}
}

// TestReadSnapshotRejectsGarbage covers the non-snapshot failure class.
func TestReadSnapshotRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{nil, []byte("x"), []byte("not a snapshot at all, definitely")} {
		if _, err := ReadSnapshot(bytes.NewReader(in)); !errors.Is(err, ErrSnapshotMagic) {
			t.Fatalf("garbage %q: err = %v, want ErrSnapshotMagic", in, err)
		}
	}
}

// TestReadSnapshotRejectsFutureVersion pins the compatibility rule:
// unknown versions are refused, not guessed at.
func TestReadSnapshotRejectsFutureVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestGraph(t).Freeze().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(snapshotMagic)] = 0xFF // version field low byte
	if _, err := ReadSnapshot(bytes.NewReader(b)); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future version: err = %v, want ErrSnapshotVersion", err)
	}
}

// TestReadSnapshotCorruption flips one byte at a time through the whole
// file and truncates it at every length: every damaged input must be
// rejected with an error (never a panic), the checksums guarantee a
// single flipped byte can never decode silently, and a flip inside a
// section body must be attributed to exactly that section (id and
// offset) via *SectionError.
func TestReadSnapshotCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestGraph(t).Freeze().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	sects, err := parseTableV2(valid[v2HeaderLen : v2HeaderLen+len(sectionOrder)*v2TableEntryLen])
	if err != nil {
		t.Fatal(err)
	}
	sectionAt := func(pos int) (sectV2, bool) {
		for _, s := range sects {
			if uint64(pos) >= s.off && uint64(pos) < s.off+s.length {
				return s, true
			}
		}
		return sectV2{}, false
	}
	// Byte flips; skip the magic (flips there yield ErrSnapshotMagic,
	// covered above) but include version, table, seal, padding and
	// bodies.
	for pos := len(snapshotMagic); pos < len(valid); pos++ {
		b := append([]byte(nil), valid...)
		b[pos] ^= 0x5A
		_, err := ReadSnapshot(bytes.NewReader(b))
		if err == nil {
			t.Fatalf("flip at byte %d decoded successfully", pos)
		}
		if want, inBody := sectionAt(pos); inBody {
			var se *SectionError
			if !errors.As(err, &se) {
				t.Fatalf("flip at byte %d (section %s): err = %v, want *SectionError",
					pos, SectionName(want.id), err)
			}
			if se.Section != want.id || se.Offset != int64(want.off) {
				t.Fatalf("flip at byte %d attributed to section %s @%d, want %s @%d",
					pos, SectionName(se.Section), se.Offset, SectionName(want.id), want.off)
			}
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("SectionError at byte %d does not wrap ErrSnapshotCorrupt: %v", pos, err)
			}
		}
	}
	// Truncations.
	for cut := 0; cut < len(valid); cut += 7 {
		if _, err := ReadSnapshot(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
}

// FuzzReadSnapshot asserts neither loader ever panics on arbitrary
// input: ReadSnapshot (both format versions) must error or yield a
// fully queryable snapshot, and MapSnapshot must never panic at
// construction — its lazy contract allows a first-touch panic only on
// a section whose checksum lies, so queries are exercised exactly when
// Verify vouches for the whole file. Wired into the CI fuzz smoke,
// which runs it on the native and cosmo_nommap flavors.
func FuzzReadSnapshot(f *testing.F) {
	g := New()
	g.AddNode(Node{ID: "i:used_for:camping", Type: NodeIntention, Label: "camping"})
	g.AddNode(Node{ID: "p:P1", Type: NodeProduct, Label: "tent"})
	g.AddNode(Node{ID: "q:tent", Type: NodeQuery, Label: "tent"})
	for _, head := range []string{"p:P1", "q:tent"} {
		if err := g.AddEdge(Edge{Head: head, Relation: relations.UsedForEve, Tail: "i:used_for:camping",
			Domain: catalog.Sports, PlausibleScore: 0.9, TypicalScore: 0.8, Support: 2}); err != nil {
			f.Fatal(err)
		}
	}
	for _, version := range []uint32{1, 2} {
		var buf bytes.Buffer
		if err := g.Freeze().WriteSnapshotVersion(&buf, version); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		query := func(s *Snapshot) {
			for _, n := range s.Nodes() {
				s.IntentionsFor(n.ID)
				s.RelatedProducts(n.ID, 3)
			}
			s.Edges()
			s.ComputeStats()
			s.BuildHierarchy(1)
		}
		if s, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
			// Accepted input: the snapshot must be fully queryable.
			query(s)
		}
		path := filepath.Join(t.TempDir(), "fuzz.cosmo")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := MapSnapshotFile(path)
		if err != nil {
			return
		}
		defer s.Close()
		if s.Verify() == nil {
			query(s)
		}
	})
}
