package kg

import (
	"bytes"
	"strings"
	"testing"

	"cosmo/internal/catalog"
	"cosmo/internal/know"
	"cosmo/internal/relations"
)

func searchCand(id int, query, product, tail string, rel relations.Relation) know.Candidate {
	return know.Candidate{
		ID: id, Behavior: know.SearchBuy, Domain: catalog.Sports,
		Query: query, ProductA: product,
		Relation: rel, Tail: tail, Text: relations.Verbalize(rel, tail),
		PlausibleScore: 0.9, TypicalScore: 0.8,
	}
}

func coBuyCand(id int, a, b, tail string, rel relations.Relation) know.Candidate {
	return know.Candidate{
		ID: id, Behavior: know.CoBuy, Domain: catalog.Sports,
		ProductA: a, ProductB: b,
		Relation: rel, Tail: tail, Text: relations.Verbalize(rel, tail),
		PlausibleScore: 0.7, TypicalScore: 0.6,
	}
}

func TestAddAssertionSearchBuy(t *testing.T) {
	g := New()
	c := searchCand(1, "camping", "P000001", "camping in the mountains", relations.UsedForEve)
	if err := g.AddAssertion(c); err != nil {
		t.Fatal(err)
	}
	// Query node, product node, intention node.
	if g.NumNodes() != 3 {
		t.Errorf("nodes = %d, want 3", g.NumNodes())
	}
	// Query->intent and product->intent edges.
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", g.NumEdges())
	}
	es := g.EdgesFrom(QueryID("camping"))
	if len(es) != 1 || es[0].Relation != relations.UsedForEve {
		t.Fatalf("query edges = %+v", es)
	}
}

func TestAddAssertionCoBuy(t *testing.T) {
	g := New()
	c := coBuyCand(1, "P1", "P2", "camping in the mountains", relations.UsedForEve)
	if err := g.AddAssertion(c); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2 (both products link to intention)", g.NumEdges())
	}
	tail := IntentionID(relations.UsedForEve, "camping in the mountains")
	if len(g.EdgesTo(tail)) != 2 {
		t.Error("intention should have two incoming edges")
	}
}

func TestAddAssertionRejectsUnparsed(t *testing.T) {
	g := New()
	if err := g.AddAssertion(know.Candidate{ID: 1}); err == nil {
		t.Error("unparsed candidate should error")
	}
}

func TestAddEdgeUnknownNodes(t *testing.T) {
	g := New()
	err := g.AddEdge(Edge{Head: "nope", Relation: relations.IsA, Tail: "also nope"})
	if err == nil {
		t.Error("edge on unknown nodes should error")
	}
	g.AddNode(Node{ID: "h", Type: NodeProduct})
	if err := g.AddEdge(Edge{Head: "h", Relation: relations.IsA, Tail: "t"}); err == nil {
		t.Error("edge on unknown tail should error")
	}
}

func TestEdgeMerging(t *testing.T) {
	g := New()
	c := searchCand(1, "camping", "P1", "camping", relations.UsedForEve)
	if err := g.AddAssertion(c); err != nil {
		t.Fatal(err)
	}
	c2 := c
	c2.PlausibleScore = 0.99
	c2.TypicalScore = 0.1
	if err := g.AddAssertion(c2); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, duplicates must merge", g.NumEdges())
	}
	es := g.EdgesFrom(QueryID("camping"))
	if es[0].Support != 2 {
		t.Errorf("support = %d, want 2", es[0].Support)
	}
	if es[0].PlausibleScore != 0.99 {
		t.Errorf("plausible = %v, want max 0.99", es[0].PlausibleScore)
	}
	if es[0].TypicalScore != 0.8 {
		t.Errorf("typical = %v, want max 0.8", es[0].TypicalScore)
	}
}

func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	cands := []know.Candidate{
		searchCand(1, "camping", "P1", "camping", relations.UsedForEve),
		searchCand(2, "camping tent", "P1", "winter camping", relations.UsedForEve),
		searchCand(3, "boots", "P2", "winter camping", relations.UsedForEve),
		searchCand(4, "snacks", "P3", "holding snacks", relations.CapableOf),
		coBuyCand(5, "P1", "P2", "camping", relations.UsedForEve),
		coBuyCand(6, "P4", "P5", "lakeside camping", relations.UsedForEve),
	}
	for _, c := range cands {
		if err := g.AddAssertion(c); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestIndexes(t *testing.T) {
	g := buildTestGraph(t)
	if n := len(g.EdgesByRelation(relations.UsedForEve)); n == 0 {
		t.Error("relation index empty")
	}
	if n := len(g.EdgesInDomain(catalog.Sports)); n != g.NumEdges() {
		t.Errorf("domain index has %d of %d", n, g.NumEdges())
	}
	if g.NumRelations() != 2 {
		t.Errorf("relations = %d, want 2", g.NumRelations())
	}
}

func TestIntentionsForSorted(t *testing.T) {
	g := New()
	a := searchCand(1, "camping", "P1", "alpha", relations.UsedForEve)
	a.TypicalScore = 0.2
	b := searchCand(2, "camping", "P1", "beta", relations.UsedForEve)
	b.TypicalScore = 0.9
	if err := g.AddAssertion(a); err != nil {
		t.Fatal(err)
	}
	if err := g.AddAssertion(b); err != nil {
		t.Fatal(err)
	}
	es := g.IntentionsFor(QueryID("camping"))
	if len(es) != 2 {
		t.Fatalf("got %d edges", len(es))
	}
	if es[0].TypicalScore < es[1].TypicalScore {
		t.Error("not sorted by typicality")
	}
}

func TestComputeStats(t *testing.T) {
	g := buildTestGraph(t)
	s := g.ComputeStats()
	if s.Edges != g.NumEdges() || s.Nodes != g.NumNodes() {
		t.Error("stats disagree with counters")
	}
	ds := s.PerDomain[catalog.Sports]
	if ds.CoBuyEdges == 0 || ds.SearchBuyEdges == 0 {
		t.Errorf("per-domain stats = %+v", ds)
	}
	if ds.CoBuyEdges+ds.SearchBuyEdges != s.Edges {
		t.Error("domain edges don't add up")
	}
}

func TestHierarchy(t *testing.T) {
	g := buildTestGraph(t)
	roots := g.BuildHierarchy(1)
	if len(roots) == 0 {
		t.Fatal("no hierarchy roots")
	}
	// "camping" must be a root with children "winter camping" and
	// "lakeside camping".
	var camping *HierarchyNode
	for _, r := range roots {
		if r.Label == "camping" {
			camping = r
		}
	}
	if camping == nil {
		t.Fatal("'camping' not a hierarchy root")
	}
	childLabels := map[string]bool{}
	for _, c := range camping.Children {
		childLabels[c.Label] = true
	}
	if !childLabels["winter camping"] || !childLabels["lakeside camping"] {
		t.Errorf("camping children = %v", childLabels)
	}
	if camping.Size() < 3 {
		t.Errorf("camping subtree size = %d", camping.Size())
	}
	rendered := camping.Render(2)
	if !strings.Contains(rendered, "winter camping") {
		t.Errorf("render missing child:\n%s", rendered)
	}
}

func TestHierarchyMinSupport(t *testing.T) {
	g := buildTestGraph(t)
	roots := g.BuildHierarchy(100)
	if len(roots) != 0 {
		t.Errorf("min support 100 should prune everything, got %d roots", len(roots))
	}
}

func TestGobRoundTrip(t *testing.T) {
	g := buildTestGraph(t)
	var buf bytes.Buffer
	if err := g.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip lost data: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	e1, e2 := g.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestReadGobGarbage(t *testing.T) {
	if _, err := ReadGob(strings.NewReader("not gob")); err == nil {
		t.Error("garbage input should error")
	}
}

func TestWriteJSONLAndTSV(t *testing.T) {
	g := buildTestGraph(t)
	var jbuf bytes.Buffer
	if err := g.WriteJSONL(&jbuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(jbuf.String(), "\n")
	if lines != g.NumEdges() {
		t.Errorf("jsonl lines = %d, want %d", lines, g.NumEdges())
	}
	var tbuf bytes.Buffer
	if err := g.WriteTSV(&tbuf); err != nil {
		t.Fatal(err)
	}
	tlines := strings.Count(tbuf.String(), "\n")
	if tlines != g.NumEdges()+1 { // +1 header
		t.Errorf("tsv lines = %d, want %d", tlines, g.NumEdges()+1)
	}
}

func TestConcurrentReads(t *testing.T) {
	g := buildTestGraph(t)
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 200; j++ {
				g.EdgesFrom(QueryID("camping"))
				g.ComputeStats()
				g.Edges()
			}
			done <- true
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

func BenchmarkAddAssertion(b *testing.B) {
	g := New()
	c := searchCand(1, "camping", "P1", "camping in the mountains", relations.UsedForEve)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.ID = i
		if err := g.AddAssertion(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEdgesFrom(b *testing.B) {
	g := New()
	for i := 0; i < 100; i++ {
		c := searchCand(i, "camping", "P1", "tail", relations.UsedForEve)
		c.Tail = c.Tail + string(rune('a'+i%26))
		if err := g.AddAssertion(c); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.EdgesFrom(QueryID("camping"))
	}
}
