package kg

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cosmo/internal/catalog"
	"cosmo/internal/know"
	"cosmo/internal/relations"
)

// The benchmark world: a serving-shaped graph (hundreds of products and
// queries funneling into a shared intention vocabulary) built once and
// frozen once. Compare the legacy locked path against the snapshot with
// `go test -bench='IntentionsFor|RelatedProducts|Freeze' -benchmem
// -cpu 1,4,8 ./internal/kg` — the -cpu sweep exposes the RWMutex
// traffic the snapshot removes.
var (
	benchOnce  sync.Once
	benchGraph *Graph
	benchSnap  *Snapshot
	benchHeads []string
)

func benchWorld(b *testing.B) (*Graph, *Snapshot, []string) {
	b.Helper()
	benchOnce.Do(func() {
		rng := rand.New(rand.NewSource(42))
		g := New()
		rels := []relations.Relation{
			relations.UsedForEve, relations.CapableOf, relations.UsedBy,
			relations.IsA, relations.UsedInLoc, relations.UsedWith,
		}
		domains := []catalog.Category{catalog.Sports, catalog.HomeKitchen, catalog.Electronics}
		tails := make([]string, 400)
		for i := range tails {
			tails[i] = fmt.Sprintf("intent activity %03d", i)
		}
		for i := 0; i < 24000; i++ {
			c := know.Candidate{
				ID:             i,
				Domain:         domains[rng.Intn(len(domains))],
				Relation:       rels[rng.Intn(len(rels))],
				Tail:           tails[rng.Intn(len(tails))],
				PlausibleScore: 0.5 + rng.Float64()/2,
				TypicalScore:   rng.Float64(),
			}
			if i%2 == 0 {
				c.Behavior = know.SearchBuy
				c.Query = fmt.Sprintf("query %03d", rng.Intn(500))
				c.ProductA = fmt.Sprintf("P%04d", rng.Intn(1500))
			} else {
				c.Behavior = know.CoBuy
				c.ProductA = fmt.Sprintf("P%04d", rng.Intn(1500))
				c.ProductB = fmt.Sprintf("P%04d", rng.Intn(1500))
			}
			if err := g.AddAssertion(c); err != nil {
				panic(err)
			}
		}
		benchGraph = g
		benchSnap = g.Freeze()
		for i := 0; i < 256; i++ {
			benchHeads = append(benchHeads, ProductID(fmt.Sprintf("P%04d", rng.Intn(1500))))
		}
	})
	return benchGraph, benchSnap, benchHeads
}

// BenchmarkGraphIntentionsFor is the legacy locked path: RLock, map
// lookups, a fresh []Edge, and a sort on every call.
func BenchmarkGraphIntentionsFor(b *testing.B) {
	g, _, heads := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			es := g.IntentionsFor(heads[i%len(heads)])
			for j := range es {
				allocSink += es[j].TypicalScore
			}
			i++
		}
	})
}

// BenchmarkSnapshotIntentionsFor is the frozen path: a pre-sorted CSR
// row view — no lock, no sort, no allocation.
func BenchmarkSnapshotIntentionsFor(b *testing.B) {
	_, s, heads := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			seq := s.IntentionsFor(heads[i%len(heads)])
			for j := 0; j < seq.Len(); j++ {
				allocSink += seq.At(j).TypicalScore
			}
			i++
		}
	})
}

// BenchmarkGraphRelatedProducts is the legacy two-hop walk: one RLock
// plus per-call maps and sorts over materialized edges.
func BenchmarkGraphRelatedProducts(b *testing.B) {
	g, _, heads := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			allocSink += float64(len(g.RelatedProducts(heads[i%len(heads)], 10)))
			i++
		}
	})
}

// BenchmarkSnapshotRelatedProducts is the frozen two-hop CSR walk over
// interned int IDs with a pooled scratch accumulator.
func BenchmarkSnapshotRelatedProducts(b *testing.B) {
	_, s, heads := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			allocSink += float64(len(s.RelatedProducts(heads[i%len(heads)], 10)))
			i++
		}
	})
}

// BenchmarkSnapshotFreeze measures the once-per-refresh cost of
// building the immutable view (interning + CSR construction + sorts).
func BenchmarkSnapshotFreeze(b *testing.B) {
	g, _, _ := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := g.Freeze()
		allocSink += float64(s.NumEdges())
	}
}
