package kg

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"cosmo/internal/catalog"
	"cosmo/internal/know"
	"cosmo/internal/relations"
)

// randomGraph builds a randomized graph whose shape stresses every
// equivalence dimension: duplicate assertions (support merging), score
// ties (tie-break ordering), tails shared across relations (label
// collisions in via sets and the hierarchy), and both behavior types.
func randomGraph(t testing.TB, rng *rand.Rand, nCands int) *Graph {
	t.Helper()
	g := New()
	rels := []relations.Relation{
		relations.UsedForEve, relations.CapableOf, relations.UsedBy,
		relations.IsA, relations.UsedInLoc,
	}
	domains := []catalog.Category{catalog.Sports, catalog.HomeKitchen, catalog.Electronics}
	tails := []string{
		"camping", "winter camping", "lakeside camping", "holding snacks",
		"office work", "walking the dog", "camping", "morning runs",
	}
	// Quantized scores generate deliberate ties.
	scores := []float64{0.2, 0.4, 0.6, 0.8, 0.8, 1.0}
	for i := 0; i < nCands; i++ {
		c := know.Candidate{
			ID:             i,
			Domain:         domains[rng.Intn(len(domains))],
			Relation:       rels[rng.Intn(len(rels))],
			Tail:           tails[rng.Intn(len(tails))],
			PlausibleScore: scores[rng.Intn(len(scores))],
			TypicalScore:   scores[rng.Intn(len(scores))],
		}
		if rng.Intn(2) == 0 {
			c.Behavior = know.SearchBuy
			c.Query = fmt.Sprintf("query %d", rng.Intn(12))
			c.ProductA = fmt.Sprintf("P%02d", rng.Intn(20))
		} else {
			c.Behavior = know.CoBuy
			c.ProductA = fmt.Sprintf("P%02d", rng.Intn(20))
			c.ProductB = fmt.Sprintf("P%02d", rng.Intn(20))
		}
		if err := g.AddAssertion(c); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// sortEdgesCanonical orders edges by their unique (head, relation,
// tail) key for set comparison of index queries whose legacy order is
// unspecified (insertion order).
func sortEdgesCanonical(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Head != es[j].Head {
			return es[i].Head < es[j].Head
		}
		if es[i].Relation != es[j].Relation {
			return es[i].Relation < es[j].Relation
		}
		return es[i].Tail < es[j].Tail
	})
}

// TestSnapshotEquivalence is the randomized property test proving the
// frozen read path agrees with the locked Graph API — including
// tie-break ordering for the order-specified queries and bitwise score
// equality for RelatedProducts.
func TestSnapshotEquivalence(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			g := randomGraph(t, rng, 40+rng.Intn(260))
			s := g.Freeze()

			if s.NumNodes() != g.NumNodes() || s.NumEdges() != g.NumEdges() || s.NumRelations() != g.NumRelations() {
				t.Fatalf("counts differ: snapshot %d/%d/%d graph %d/%d/%d",
					s.NumNodes(), s.NumEdges(), s.NumRelations(),
					g.NumNodes(), g.NumEdges(), g.NumRelations())
			}
			if !reflect.DeepEqual(s.Nodes(), g.Nodes()) {
				t.Fatal("Nodes() differ")
			}
			if !reflect.DeepEqual(s.Edges(), g.Edges()) {
				t.Fatal("Edges() differ")
			}
			if !reflect.DeepEqual(s.ComputeStats(), g.ComputeStats()) {
				t.Fatalf("stats differ:\nsnapshot %+v\ngraph    %+v", s.ComputeStats(), g.ComputeStats())
			}

			for _, n := range g.Nodes() {
				sn, ok := s.Node(n.ID)
				if !ok || sn != n {
					t.Fatalf("Node(%q) = %+v, %v; want %+v", n.ID, sn, ok, n)
				}

				// Unordered index queries: compare as canonical sets.
				gf, sf := g.EdgesFrom(n.ID), s.EdgesFrom(n.ID)
				sortEdgesCanonical(gf)
				sortEdgesCanonical(sf)
				if !reflect.DeepEqual(gf, sf) {
					t.Fatalf("EdgesFrom(%q) differ", n.ID)
				}
				gt, st := g.EdgesTo(n.ID), s.EdgesTo(n.ID)
				sortEdgesCanonical(gt)
				sortEdgesCanonical(st)
				if !reflect.DeepEqual(gt, st) {
					t.Fatalf("EdgesTo(%q) differ", n.ID)
				}

				// Order-specified queries: exact equality, ties included.
				want := g.IntentionsFor(n.ID)
				got := s.IntentionsFor(n.ID).Edges()
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("IntentionsFor(%q) differ:\ngraph    %+v\nsnapshot %+v", n.ID, want, got)
				}
				for _, k := range []int{1, 3, 1 << 20} {
					wr := g.RelatedProducts(n.ID, k)
					gr := s.RelatedProducts(n.ID, k)
					if !reflect.DeepEqual(wr, gr) {
						t.Fatalf("RelatedProducts(%q, %d) differ:\ngraph    %+v\nsnapshot %+v", n.ID, k, wr, gr)
					}
				}
			}

			for _, r := range relations.All() {
				ge, se := g.EdgesByRelation(r), s.EdgesByRelation(r)
				sortEdgesCanonical(ge)
				sortEdgesCanonical(se)
				if !reflect.DeepEqual(ge, se) {
					t.Fatalf("EdgesByRelation(%q) differ", r)
				}
			}
			for _, d := range catalog.Categories() {
				ge, se := g.EdgesInDomain(d), s.EdgesInDomain(d)
				sortEdgesCanonical(ge)
				sortEdgesCanonical(se)
				if !reflect.DeepEqual(ge, se) {
					t.Fatalf("EdgesInDomain(%q) differ", d)
				}
			}

			for _, minSupport := range []int{1, 2, 4} {
				if !reflect.DeepEqual(g.BuildHierarchy(minSupport), s.BuildHierarchy(minSupport)) {
					t.Fatalf("BuildHierarchy(%d) differs", minSupport)
				}
			}

			// Unknown IDs answer empty on both paths.
			if _, ok := s.Node("p:NOPE"); ok {
				t.Fatal("unknown node found in snapshot")
			}
			if n := s.IntentionsFor("p:NOPE").Len(); n != 0 {
				t.Fatalf("unknown head has %d intentions", n)
			}
			if n := len(s.RelatedProducts("p:NOPE", 5)); n != 0 {
				t.Fatalf("unknown head has %d related products", n)
			}
		})
	}
}

// TestSnapshotEmptyGraph freezes an empty graph.
func TestSnapshotEmptyGraph(t *testing.T) {
	s := New().Freeze()
	if s.NumNodes() != 0 || s.NumEdges() != 0 || s.NumRelations() != 0 {
		t.Fatal("empty graph snapshot not empty")
	}
	if len(s.Edges()) != 0 || len(s.Nodes()) != 0 {
		t.Fatal("empty graph snapshot has contents")
	}
	if s.IntentionsFor("p:P1").Len() != 0 {
		t.Fatal("empty snapshot has intentions")
	}
}

var allocSink float64

// TestSnapshotIntentionsForZeroAlloc is the hot-path guarantee: the
// frozen IntentionsFor view performs zero heap allocations.
func TestSnapshotIntentionsForZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomGraph(t, rng, 300).Freeze()
	var head string
	best := 0
	for _, n := range s.Nodes() {
		if l := s.IntentionsFor(n.ID).Len(); l > best {
			best, head = l, n.ID
		}
	}
	if best == 0 {
		t.Fatal("no head with intentions")
	}
	allocs := testing.AllocsPerRun(200, func() {
		seq := s.IntentionsFor(head)
		for i := 0; i < seq.Len(); i++ {
			allocSink += seq.At(i).TypicalScore
		}
	})
	if allocs != 0 {
		t.Fatalf("Snapshot.IntentionsFor allocates %v per run, want 0", allocs)
	}
}

// TestRelatedSeqEquivalence: the pooled zero-copy view answers exactly
// what RelatedProducts materializes — same entries, same order, same
// scores, same via labels — and releasing it between lookups keeps the
// pool coherent.
func TestRelatedSeqEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 5; trial++ {
		s := randomGraph(t, rng, 60+rng.Intn(240)).Freeze()
		for _, n := range s.Nodes() {
			for _, k := range []int{1, 3, 1 << 20} {
				want := s.RelatedProducts(n.ID, k)
				seq := s.RelatedSeq([]byte(n.ID), k)
				if seq.Len() != len(want) {
					t.Fatalf("RelatedSeq(%q, %d).Len() = %d, want %d", n.ID, k, seq.Len(), len(want))
				}
				for i := range want {
					got := seq.At(i)
					if got.ProductID != want[i].ProductID || got.Label != want[i].Label ||
						got.Score != want[i].Score || !reflect.DeepEqual(got.Via, want[i].Via) {
						t.Fatalf("RelatedSeq(%q, %d) entry %d = %+v, want %+v", n.ID, k, i, got, want[i])
					}
				}
				seq.Release()
			}
		}
		// Unknown heads yield the zero view; Release on it is a no-op.
		seq := s.RelatedSeq([]byte("p:NOPE"), 5)
		if seq.Len() != 0 {
			t.Fatalf("unknown head has %d related entries", seq.Len())
		}
		seq.Release()
	}
}

// TestSnapshotBytesLookups: the byte-keyed entry points agree with the
// string-keyed ones.
func TestSnapshotBytesLookups(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randomGraph(t, rng, 200).Freeze()
	for _, n := range s.Nodes() {
		if !s.ContainsBytes([]byte(n.ID)) {
			t.Fatalf("ContainsBytes(%q) = false for an existing node", n.ID)
		}
		want := s.IntentionsFor(n.ID)
		got := s.IntentionsForBytes([]byte(n.ID))
		if want.Len() != got.Len() {
			t.Fatalf("IntentionsForBytes(%q).Len() = %d, want %d", n.ID, got.Len(), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			if !reflect.DeepEqual(want.At(i), got.At(i)) {
				t.Fatalf("IntentionsForBytes(%q) edge %d differs", n.ID, i)
			}
		}
	}
	if s.ContainsBytes([]byte("p:NOPE")) {
		t.Fatal("ContainsBytes true for unknown id")
	}
	if s.IntentionsForBytes([]byte("p:NOPE")).Len() != 0 {
		t.Fatal("IntentionsForBytes non-empty for unknown id")
	}
}

// TestRelatedSeqZeroAlloc: a full related lookup through the view —
// walk, sort, iterate, release — touches the heap zero times at steady
// state. This is the property the /batch path builds on.
func TestRelatedSeqZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; the alloc guard runs in the regular suite")
	}
	rng := rand.New(rand.NewSource(7))
	s := randomGraph(t, rng, 300).Freeze()
	var head []byte
	best := 0
	for _, n := range s.Nodes() {
		if l := len(s.RelatedProducts(n.ID, 1<<20)); l > best {
			best, head = l, []byte(n.ID)
		}
	}
	if best == 0 {
		t.Fatal("no head with related products")
	}
	// Warm the pool so the score array and arenas are sized.
	s.RelatedSeq(head, 10).Release()
	allocs := testing.AllocsPerRun(200, func() {
		seq := s.RelatedSeq(head, 10)
		for i := 0; i < seq.Len(); i++ {
			r := seq.At(i)
			allocSink += r.Score + float64(len(r.Via))
		}
		seq.Release()
	})
	if allocs != 0 {
		t.Fatalf("RelatedSeq lookup allocates %v per run, want 0", allocs)
	}
}

// TestSnapshotIsImmutableView pins the RCU contract: mutations to the
// source graph after Freeze are invisible to the snapshot.
func TestSnapshotIsImmutableView(t *testing.T) {
	g := buildTestGraph(t)
	s := g.Freeze()
	edgesBefore := s.NumEdges()
	if err := g.AddAssertion(searchCand(99, "new query", "P9", "brand new intent", relations.UsedAs)); err != nil {
		t.Fatal(err)
	}
	if s.NumEdges() != edgesBefore {
		t.Fatal("snapshot observed a post-freeze write")
	}
	if _, ok := s.Node(QueryID("new query")); ok {
		t.Fatal("snapshot sees post-freeze node")
	}
	s2 := g.Freeze()
	if s2.NumEdges() != g.NumEdges() {
		t.Fatal("refreeze missed the new edges")
	}
}
