//go:build (linux || darwin) && !cosmo_nommap

package kg

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy path: on native builds MapSnapshot
// aliases the file; on the fallback build it degrades to a checked
// copy (see mmap_fallback.go).
const mmapSupported = true

// mapFile memory-maps the whole of f read-only and returns the region
// plus its releaser. The mapping is private (MAP_PRIVATE): concurrent
// rewrites of the artifact on disk cannot tear pages under a live
// reader on the filesystems we target, and the refresh loop always
// replaces the file atomically (write temp + rename) anyway.
func mapFile(f *os.File) ([]byte, func([]byte) error, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("kg: map snapshot: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		// mmap of length 0 is an error on Linux; an empty file can never
		// hold a valid header, so hand back an empty non-mapped buffer
		// and let header validation reject it.
		return nil, nil, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("kg: map snapshot: file size %d overflows int", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("kg: map snapshot: mmap: %w", err)
	}
	return data, syscall.Munmap, nil
}
