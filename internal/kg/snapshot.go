package kg

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"cosmo/internal/catalog"
	"cosmo/internal/know"
	"cosmo/internal/relations"
	"cosmo/internal/textproc"
)

// Snapshot is an immutable, read-optimized view of a Graph, built once
// by Freeze and then shared freely across goroutines with no locking at
// all. It is the serving-side read path: the KG is written once per
// refresh by the offline pipeline and read millions of times by the
// online applications, so the mutable map-and-RWMutex Graph is frozen
// into dense arrays the moment it stops changing.
//
// Layout: node IDs and labels are interned into a symbol table mapping
// each node to a dense int32 (symbols are assigned in ascending node-ID
// order, so comparing symbols as ints is comparing IDs as strings);
// edges live in flat struct-of-arrays in Graph.Edges() key order; the
// four secondary indexes are CSR offset+index arrays. Per-head
// adjacency is pre-sorted in the IntentionsFor order (descending
// typicality, then tail ID, then relation), so IntentionsFor is a
// zero-alloc slice view. Per-tail adjacency is pre-sorted by (head ID,
// relation), which fixes the accumulation order RelatedProducts and the
// legacy Graph walk share — their scores are bitwise identical.
type Snapshot struct {
	// Symbol table: sym -> ID / label / type, ascending-ID order. Node
	// types are interned: ntypes[i] indexes ntypeTable, a tiny sorted
	// closed set — the same u8-over-table layout the binary format uses,
	// so the mmap loader aliases the index array straight off the file.
	ids        []string
	labels     []string
	ntypes     []uint8
	ntypeTable []NodeType
	sym        map[string]int32

	// Edge struct-of-arrays, in Graph.Edges() (key-sorted) order.
	// Behaviors are interned like node types: eBeh[i] indexes behTable.
	eHead []int32
	eTail []int32
	eRel  []int32 // index into rels
	eDom  []int32 // index into doms
	eBeh  []uint8 // index into behTable
	ePla  []float64
	eTyp  []float64
	eSup  []int32
	behTable []know.BehaviorType

	// prodIx and searchBuyIx cache the interned indexes of NodeProduct
	// and know.SearchBuy (-1 when absent) so the hot walks compare one
	// byte instead of a string per edge.
	prodIx      int32
	searchBuyIx int32

	// Interned relation and domain tables, ascending order.
	rels   []relations.Relation
	doms   []catalog.Category
	relSym map[relations.Relation]int32
	domSym map[catalog.Category]int32

	byHead csr // rows: node syms, pre-sorted in IntentionsFor order
	byTail csr // rows: node syms, pre-sorted by (head sym, rel sym)
	byRel  csr // rows: relation syms, global edge order
	byDom  csr // rows: domain syms, global edge order

	// scratch pools RelatedProducts accumulators so the two-hop walk
	// allocates only its result. Bounded by the pool's GC semantics.
	scratch sync.Pool

	// Mapped-snapshot state (nil for Freeze/ReadSnapshot snapshots):
	// lazy tracks which aliased sections have passed their checksum,
	// mapping pins the mmap'd region for as long as this snapshot is
	// reachable (see mapping.go for the RCU-retirement story).
	lazy    *sectionChecks
	mapping *Mapping
}

// csr is a compressed sparse row index: row r's entries are
// idx[off[r]:off[r+1]], each an index into the edge arrays.
type csr struct {
	off []int32
	idx []int32
}

func (c csr) row(r int32) []int32 { return c.idx[c.off[r]:c.off[r+1]] }

// sym32 converts a table index to an int32 symbol. Sizes are bounded
// up front (checkFreezeCapacity on freeze, validateCSR on load); the
// local range check keeps every conversion site provably lossless
// instead of relying on a guard three calls away.
func sym32(i int) int32 {
	if i < 0 || i > math.MaxInt32 {
		panic(fmt.Sprintf("kg: symbol index %d outside the snapshot's int32 range", i))
	}
	return int32(i)
}

// newCSR builds a CSR with the given row count from (row, edge) pairs
// delivered by iterate in ascending edge order.
func newCSR(rows int, edges int, rowOf func(e int32) int32) csr {
	ne := sym32(edges)
	off := make([]int32, rows+1)
	for e := int32(0); e < ne; e++ {
		off[rowOf(e)+1]++
	}
	for r := 0; r < rows; r++ {
		off[r+1] += off[r]
	}
	idx := make([]int32, edges)
	fill := make([]int32, rows)
	for e := int32(0); e < ne; e++ {
		r := rowOf(e)
		idx[off[r]+fill[r]] = e
		fill[r]++
	}
	return csr{off: off, idx: idx}
}

// checkFreezeCapacity rejects graphs whose interned table sizes exceed
// the int32 symbol space of the frozen CSR layout. Exceeding it used to
// truncate silently via the int32 conversions in Freeze; now it is a
// descriptive error.
func checkFreezeCapacity(nodes, edges, rels, doms int) error {
	for _, c := range []struct {
		what string
		n    int
	}{{"nodes", nodes}, {"edges", edges}, {"relations", rels}, {"domains", doms}} {
		if c.n > math.MaxInt32 {
			return fmt.Errorf("kg: freeze: %d %s exceed the snapshot's int32 symbol space (max %d)",
				c.n, c.what, math.MaxInt32)
		}
	}
	return nil
}

// Freeze builds an immutable Snapshot of the graph's current contents.
// It takes the read lock once; the returned snapshot never locks. The
// mutable Graph remains fully usable (the offline pipeline keeps
// building it); serving code swaps fresh snapshots in via
// atomic.Pointer (see serving.Deployment).
//
// Freeze panics with a descriptive reason if the graph exceeds the
// snapshot's int32 capacity; callers that want the error instead use
// FreezeChecked.
func (g *Graph) Freeze() *Snapshot {
	s, err := g.FreezeChecked()
	if err != nil {
		panic("kg: Freeze: " + err.Error())
	}
	return s
}

// FreezeChecked is Freeze with the capacity guards surfaced as an
// error: node/edge/relation/domain counts and per-edge support must fit
// the snapshot's int32 symbol and counter space.
func (g *Graph) FreezeChecked() (*Snapshot, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()

	if err := checkFreezeCapacity(len(g.nodes), len(g.edges), len(g.byRelation), len(g.byDomain)); err != nil {
		return nil, err
	}

	s := &Snapshot{}

	// Symbol table in ascending node-ID order.
	s.ids = make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		s.ids = append(s.ids, id)
	}
	sort.Strings(s.ids)
	s.labels = make([]string, len(s.ids))
	rawTypes := make([]NodeType, len(s.ids))
	s.sym = make(map[string]int32, len(s.ids))
	for i, id := range s.ids {
		n := g.nodes[id]
		s.labels[i] = n.Label
		rawTypes[i] = n.Type
		s.sym[id] = sym32(i)
	}
	var err error
	if s.ntypeTable, s.ntypes, err = internSyms(rawTypes); err != nil {
		return nil, err
	}

	// Relation and domain intern tables, ascending order.
	for r := range g.byRelation {
		s.rels = append(s.rels, r)
	}
	sort.Slice(s.rels, func(i, j int) bool { return s.rels[i] < s.rels[j] })
	s.relSym = make(map[relations.Relation]int32, len(s.rels))
	for i, r := range s.rels {
		s.relSym[r] = sym32(i)
	}
	for d := range g.byDomain {
		s.doms = append(s.doms, d)
	}
	sort.Slice(s.doms, func(i, j int) bool { return s.doms[i] < s.doms[j] })
	s.domSym = make(map[catalog.Category]int32, len(s.doms))
	for i, d := range s.doms {
		s.domSym[d] = sym32(i)
	}

	// Edges in key-sorted order (the Graph.Edges() order).
	keys := make([]string, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ne := len(keys)
	s.eHead = make([]int32, ne)
	s.eTail = make([]int32, ne)
	s.eRel = make([]int32, ne)
	s.eDom = make([]int32, ne)
	rawBeh := make([]know.BehaviorType, ne)
	s.ePla = make([]float64, ne)
	s.eTyp = make([]float64, ne)
	s.eSup = make([]int32, ne)
	for i, k := range keys {
		e := g.edges[k]
		if e.Support < 0 || e.Support > math.MaxInt32 {
			return nil, fmt.Errorf("kg: freeze: edge %q support %d outside the snapshot's int32 range", k, e.Support)
		}
		s.eHead[i] = s.sym[e.Head]
		s.eTail[i] = s.sym[e.Tail]
		s.eRel[i] = s.relSym[e.Relation]
		s.eDom[i] = s.domSym[e.Domain]
		rawBeh[i] = e.Behavior
		s.ePla[i] = e.PlausibleScore
		s.eTyp[i] = e.TypicalScore
		s.eSup[i] = int32(e.Support)
	}
	if s.behTable, s.eBeh, err = internSyms(rawBeh); err != nil {
		return nil, err
	}

	nn := len(s.ids)
	s.byHead = newCSR(nn, ne, func(e int32) int32 { return s.eHead[e] })
	s.byTail = newCSR(nn, ne, func(e int32) int32 { return s.eTail[e] })
	s.byRel = newCSR(len(s.rels), ne, func(e int32) int32 { return s.eRel[e] })
	s.byDom = newCSR(len(s.doms), ne, func(e int32) int32 { return s.eDom[e] })

	// Pre-sort per-head rows in the IntentionsFor order and per-tail
	// rows in the canonical back-walk order. Symbol comparisons stand in
	// for the string comparisons because symbols are assigned in sorted
	// order.
	for r, nn32 := int32(0), sym32(nn); r < nn32; r++ {
		row := s.byHead.row(r)
		sort.Slice(row, func(a, b int) bool {
			x, y := row[a], row[b]
			if s.eTyp[x] != s.eTyp[y] {
				return s.eTyp[x] > s.eTyp[y]
			}
			if s.eTail[x] != s.eTail[y] {
				return s.eTail[x] < s.eTail[y]
			}
			return s.eRel[x] < s.eRel[y]
		})
		back := s.byTail.row(r)
		sort.Slice(back, func(a, b int) bool {
			x, y := back[a], back[b]
			if s.eHead[x] != s.eHead[y] {
				return s.eHead[x] < s.eHead[y]
			}
			return s.eRel[x] < s.eRel[y]
		})
	}

	s.bindDerived()
	return s, nil
}

// internSyms builds the sorted unique table over xs plus the
// per-element u8 index into it — the in-memory twin of the binary
// format's interned sections. The table is capped at 256 entries; node
// and behavior types are tiny closed sets.
func internSyms[T ~string](xs []T) (table []T, idx []uint8, err error) {
	seen := map[T]bool{}
	for _, s := range xs {
		if !seen[s] {
			seen[s] = true
			table = append(table, s)
		}
	}
	sort.Slice(table, func(i, j int) bool { return table[i] < table[j] })
	if len(table) > 256 {
		return nil, nil, fmt.Errorf("kg: snapshot: %d distinct interned values exceed the u8 index space", len(table))
	}
	pos := make(map[T]uint8, len(table))
	for i, s := range table {
		pos[s] = uint8(i)
	}
	idx = make([]uint8, len(xs))
	for i, s := range xs {
		idx[i] = pos[s]
	}
	return table, idx, nil
}

// bindDerived computes the non-serialized derivatives every loader
// shares: the cached NodeProduct / SearchBuy intern indexes (-1 when
// absent) and the walk scratch pool.
func (s *Snapshot) bindDerived() {
	s.prodIx, s.searchBuyIx = -1, -1
	for i, t := range s.ntypeTable {
		if t == NodeProduct {
			s.prodIx = sym32(i)
		}
	}
	for i, b := range s.behTable {
		if b == know.SearchBuy {
			s.searchBuyIx = sym32(i)
		}
	}
	s.scratch.New = func() any { return &relatedScratch{} }
}

// nodeType resolves node i's type through the intern table.
func (s *Snapshot) nodeType(i int32) NodeType { return s.ntypeTable[s.ntypes[i]] }

// edgeAt materializes edge i. Strings come from the symbol table, so
// this copies headers, never bytes.
func (s *Snapshot) edgeAt(i int32) Edge {
	return Edge{
		Head:           s.ids[s.eHead[i]],
		Relation:       s.rels[s.eRel[i]],
		Tail:           s.ids[s.eTail[i]],
		Behavior:       s.behTable[s.eBeh[i]],
		Domain:         s.doms[s.eDom[i]],
		PlausibleScore: s.ePla[i],
		TypicalScore:   s.eTyp[i],
		Support:        int(s.eSup[i]),
	}
}

// symOf resolves a node ID to its dense symbol. Heap-built snapshots
// (Freeze, ReadSnapshot) answer from the hash map they built; mapped
// snapshots carry no node map — the ID table is validated strictly
// ascending at map time, so the file itself is the index and a binary
// search answers in O(log n) with zero start-up cost.
//
//cosmo:alloc-free
func (s *Snapshot) symOf(id string) (int32, bool) {
	if s.sym != nil {
		i, ok := s.sym[id]
		return i, ok
	}
	s.touch(maskStrings)
	lo, hi := 0, len(s.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(s.ids) || s.ids[lo] != id {
		return 0, false
	}
	return int32(lo), true //cosmo:lint-ignore unchecked-narrowing the loaders cap the node count at MaxInt32
}

// symOfBytes is symOf keyed by a byte slice, allocation-free on both
// the map path (compiler-elided conversion) and the search path
// (byte-wise compare, no string materialized).
//
//cosmo:alloc-free
func (s *Snapshot) symOfBytes(id []byte) (int32, bool) {
	if s.sym != nil {
		i, ok := s.sym[string(id)] //cosmo:lint-ignore alloc-free map index by string(bytes) is a compiler-elided conversion
		return i, ok
	}
	s.touch(maskStrings)
	lo, hi := 0, len(s.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmpStringBytes(s.ids[mid], id) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(s.ids) || cmpStringBytes(s.ids[lo], id) != 0 {
		return 0, false
	}
	return int32(lo), true //cosmo:lint-ignore unchecked-narrowing the loaders cap the node count at MaxInt32
}

// cmpStringBytes is strings.Compare(a, string(b)) without the
// conversion allocation.
func cmpStringBytes(a string, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Node returns a node by ID.
func (s *Snapshot) Node(id string) (Node, bool) {
	i, ok := s.symOf(id)
	if !ok {
		return Node{}, false
	}
	s.touch(maskNodeTypes)
	return Node{ID: s.ids[i], Type: s.nodeType(i), Label: s.labels[i]}, true
}

// NumNodes returns the node count.
func (s *Snapshot) NumNodes() int { return len(s.ids) }

// NumEdges returns the edge count.
func (s *Snapshot) NumEdges() int { return len(s.eHead) }

// NumRelations returns the number of distinct relations present.
func (s *Snapshot) NumRelations() int { return len(s.rels) }

// Nodes returns every node in deterministic (ID-sorted) order.
func (s *Snapshot) Nodes() []Node {
	s.touch(maskNodeTypes)
	out := make([]Node, len(s.ids))
	for i := range s.ids {
		out[i] = Node{ID: s.ids[i], Type: s.nodeType(sym32(i)), Label: s.labels[i]}
	}
	runtime.KeepAlive(s) // aliased sections must outlive the last read (mmap-backed snapshots)
	return out
}

// Edges returns every edge in the same deterministic (key-sorted) order
// as Graph.Edges.
func (s *Snapshot) Edges() []Edge {
	s.touch(maskEdges)
	out := make([]Edge, len(s.eHead))
	for i := range out {
		out[i] = s.edgeAt(sym32(i))
	}
	runtime.KeepAlive(s) // aliased sections must outlive the last read (mmap-backed snapshots)
	return out
}

func (s *Snapshot) collectRow(row []int32) []Edge {
	out := make([]Edge, len(row))
	for i, e := range row {
		out[i] = s.edgeAt(e)
	}
	runtime.KeepAlive(s) // row may alias the mapped region; keep it mapped through the loop
	return out
}

// EdgesFrom returns all edges with the given head, in the IntentionsFor
// order (descending typicality).
func (s *Snapshot) EdgesFrom(head string) []Edge {
	h, ok := s.symOf(head)
	if !ok {
		return []Edge{}
	}
	s.touch(maskByHead | maskEdges)
	return s.collectRow(s.byHead.row(h))
}

// EdgesTo returns all edges pointing at the given intention tail,
// sorted by (head, relation).
func (s *Snapshot) EdgesTo(tail string) []Edge {
	t, ok := s.symOf(tail)
	if !ok {
		return []Edge{}
	}
	s.touch(maskByTail | maskEdges)
	return s.collectRow(s.byTail.row(t))
}

// EdgesByRelation returns all edges of a relation in key-sorted order.
func (s *Snapshot) EdgesByRelation(r relations.Relation) []Edge {
	i, ok := s.relSym[r]
	if !ok {
		return []Edge{}
	}
	s.touch(maskByRel | maskEdges)
	return s.collectRow(s.byRel.row(i))
}

// EdgesInDomain returns all edges of a domain in key-sorted order.
func (s *Snapshot) EdgesInDomain(d catalog.Category) []Edge {
	i, ok := s.domSym[d]
	if !ok {
		return []Edge{}
	}
	s.touch(maskByDom | maskEdges)
	return s.collectRow(s.byDom.row(i))
}

// EdgeSeq is a zero-alloc view over a pre-sorted adjacency row. The
// value itself is two words plus a slice header; At materializes edges
// on demand without touching the heap.
type EdgeSeq struct {
	s   *Snapshot
	idx []int32
}

// Len returns the number of edges in the sequence.
func (es EdgeSeq) Len() int { return len(es.idx) }

// At materializes the i-th edge of the sequence.
func (es EdgeSeq) At(i int) Edge { return es.s.edgeAt(es.idx[i]) }

// Edges materializes the whole sequence (allocates; hot paths should
// iterate with Len/At instead).
func (es EdgeSeq) Edges() []Edge {
	out := make([]Edge, len(es.idx))
	for i := range out {
		out[i] = es.s.edgeAt(es.idx[i])
	}
	return out
}

// IntentionsFor returns the intentions reachable from a head, sorted by
// descending typicality (ties: tail ID, then relation) — the same order
// as Graph.IntentionsFor. The returned view is a slice into the frozen
// index: no locks, no sorting, no allocation.
//
//cosmo:alloc-free
func (s *Snapshot) IntentionsFor(head string) EdgeSeq {
	h, ok := s.symOf(head)
	if !ok {
		return EdgeSeq{}
	}
	s.touch(maskByHead | maskEdges)
	return EdgeSeq{s: s, idx: s.byHead.row(h)}
}

// IntentionsForBytes is IntentionsFor keyed by a byte-slice head: the
// batch parser hands ids straight out of the request buffer without
// materializing strings.
//
//cosmo:alloc-free
func (s *Snapshot) IntentionsForBytes(head []byte) EdgeSeq {
	h, ok := s.symOfBytes(head)
	if !ok {
		return EdgeSeq{}
	}
	s.touch(maskByHead | maskEdges)
	return EdgeSeq{s: s, idx: s.byHead.row(h)}
}

// ContainsBytes reports whether a node with the given byte-slice ID
// exists, without materializing a string key.
//
//cosmo:alloc-free
func (s *Snapshot) ContainsBytes(id []byte) bool {
	_, ok := s.symOfBytes(id)
	return ok
}

// relatedScratch is the reusable accumulator for the two-hop
// RelatedProducts walk: a dense per-node score array, the touched set,
// the (candidate, tail) via pairs, and the post-walk result — an entry
// per candidate whose via labels live in the shared arena. Pooled on
// the snapshot so steady-state walks allocate only what they return
// (and nothing at all on the RelatedSeq view path).
type relatedScratch struct {
	snap  *Snapshot
	score []float64
	seen  []int32
	pairs []viaPair
	via   []string   // arena of deduped via labels, grouped per entry
	ents  []relEntry // sorted, truncated result entries
}

type viaPair struct{ cand, tail int32 }

// relEntry is one result candidate: its symbol, final score, and the
// half-open [viaStart, viaEnd) range of its labels in the via arena.
type relEntry struct {
	cand     int32
	viaStart int32
	viaEnd   int32
	score    float64
}

// relatedScratch sorts its via pairs per candidate with labels
// ascending (sort.Interface on the pooled scratch instead of a
// sort.Slice closure: no closure capture, no interface boxing, and
// direct swaps instead of reflection).
func (sc *relatedScratch) Len() int { return len(sc.pairs) }
func (sc *relatedScratch) Less(a, b int) bool {
	if sc.pairs[a].cand != sc.pairs[b].cand {
		return sc.pairs[a].cand < sc.pairs[b].cand
	}
	return sc.snap.labels[sc.pairs[a].tail] < sc.snap.labels[sc.pairs[b].tail]
}
func (sc *relatedScratch) Swap(a, b int) { sc.pairs[a], sc.pairs[b] = sc.pairs[b], sc.pairs[a] }

// relatedEntSorter is the same pooled scratch viewed as a sorter for
// the result entries: score descending, then product ID ascending —
// symbols are assigned in ascending ID order, so the symbol comparison
// stands in for the string comparison.
type relatedEntSorter relatedScratch

func (so *relatedEntSorter) Len() int { return len(so.ents) }
func (so *relatedEntSorter) Less(i, j int) bool {
	if so.ents[i].score != so.ents[j].score {
		return so.ents[i].score > so.ents[j].score
	}
	return so.ents[i].cand < so.ents[j].cand
}
func (so *relatedEntSorter) Swap(i, j int) { so.ents[i], so.ents[j] = so.ents[j], so.ents[i] }

// emptyRelated is the canonical empty result, hoisted so the unknown-
// head path stays allocation-free.
var emptyRelated = []Related{}

// relatedCollect runs the two-hop walk for head symbol h entirely on
// pooled scratch and leaves up to k result entries — with their via
// labels in the scratch arena — in the returned scratch, sorted best
// first. The caller owns the scratch until it materializes the entries
// (RelatedProducts) or releases the view (RelatedSeq.Release); the
// walk-only fields are reset here, the result fields on release.
//
//cosmo:alloc-free
func (s *Snapshot) relatedCollect(h int32, k int) *relatedScratch {
	s.touch(maskByHead | maskByTail | maskEdges | maskNodeTypes)
	sc := s.scratch.Get().(*relatedScratch)
	sc.snap = s
	sc.via = sc.via[:0]
	sc.ents = sc.ents[:0]
	if len(sc.score) < len(s.ids) {
		sc.score = make([]float64, len(s.ids))
	}
	for _, ei := range s.byHead.row(h) {
		t := s.eTail[ei]
		for _, bi := range s.byTail.row(t) {
			bh := s.eHead[bi]
			if bh == h || int32(s.ntypes[bh]) != s.prodIx {
				continue
			}
			w := s.eTyp[ei] * s.eTyp[bi] * float64(min(s.eSup[ei], s.eSup[bi]))
			if w <= 0 {
				w = 0.01
			}
			if sc.score[bh] == 0 {
				sc.seen = append(sc.seen, bh)
			}
			sc.score[bh] += w
			sc.pairs = append(sc.pairs, viaPair{cand: bh, tail: t})
		}
	}
	// Group via pairs per candidate with labels ascending; consecutive
	// dedupe below matches the legacy label-set semantics (distinct
	// tails can share a label).
	sort.Sort(sc)
	for i := 0; i < len(sc.pairs); {
		c := sc.pairs[i].cand
		j := i
		for ; j < len(sc.pairs) && sc.pairs[j].cand == c; j++ {
		}
		start := sym32(len(sc.via))
		for p := i; p < j; p++ {
			lbl := s.labels[sc.pairs[p].tail]
			if len(sc.via) == int(start) || sc.via[len(sc.via)-1] != lbl {
				sc.via = append(sc.via, lbl)
			}
		}
		sc.ents = append(sc.ents, relEntry{
			cand:     c,
			viaStart: start,
			viaEnd:   sym32(len(sc.via)),
			score:    sc.score[c],
		})
		i = j
	}
	sort.Sort((*relatedEntSorter)(sc))
	if k < len(sc.ents) {
		sc.ents = sc.ents[:k]
	}
	// Reset the walk fields now; via and ents carry the result and are
	// reset when the scratch is released.
	for _, c := range sc.seen {
		sc.score[c] = 0
	}
	sc.seen = sc.seen[:0]
	sc.pairs = sc.pairs[:0]
	return sc
}

// release resets the result fields and recycles the scratch.
func (sc *relatedScratch) release() {
	sc.via = sc.via[:0]
	sc.ents = sc.ents[:0]
	sc.snap.scratch.Put(sc)
}

// RelatedProducts walks head → intention → product two-hop paths over
// interned int IDs and returns up to k products sharing intentions with
// the head, best first. Semantically identical to Graph.RelatedProducts
// (bitwise-equal scores, same ordering); the CSR walk takes no locks
// and builds no maps. The only allocations are the sized result and
// per-candidate via slices; everything else runs on pooled scratch.
// Callers that can consume the result before the next lookup avoid even
// those with RelatedSeq.
//
//cosmo:alloc-free
func (s *Snapshot) RelatedProducts(head string, k int) []Related {
	h, ok := s.symOf(head)
	if !ok {
		return emptyRelated
	}
	sc := s.relatedCollect(h, k)
	out := make([]Related, 0, len(sc.ents))
	for _, en := range sc.ents {
		via := make([]string, 0, en.viaEnd-en.viaStart)
		via = append(via, sc.via[en.viaStart:en.viaEnd]...)
		out = append(out, Related{
			ProductID: s.ids[en.cand],
			Label:     s.labels[en.cand],
			Score:     en.score,
			Via:       via,
		})
	}
	sc.release()
	return out
}

// RelatedSeq is a zero-copy view over a pooled RelatedProducts result.
// At materializes entries against the snapshot's interned strings; the
// Via slice of a returned Related aliases the pooled arena, so the view
// (and everything read from it) is valid only until Release. The batch
// path encodes each item straight out of the view and then releases it,
// so a whole related lookup touches the heap zero times.
type RelatedSeq struct {
	sc *relatedScratch
}

// RelatedSeq runs the RelatedProducts walk for a byte-slice head
// (the batch parser hands ids through without materializing strings)
// and returns the pooled view. The caller must call Release.
//
//cosmo:alloc-free
func (s *Snapshot) RelatedSeq(head []byte, k int) RelatedSeq {
	h, ok := s.symOfBytes(head)
	if !ok {
		return RelatedSeq{}
	}
	return RelatedSeq{sc: s.relatedCollect(h, k)}
}

// RelatedSeqString is RelatedSeq for a string head (the single-endpoint
// handler already holds one). The caller must call Release.
//
//cosmo:alloc-free
func (s *Snapshot) RelatedSeqString(head string, k int) RelatedSeq {
	h, ok := s.symOf(head)
	if !ok {
		return RelatedSeq{}
	}
	return RelatedSeq{sc: s.relatedCollect(h, k)}
}

// Len returns the number of result entries.
func (rs RelatedSeq) Len() int {
	if rs.sc == nil {
		return 0
	}
	return len(rs.sc.ents)
}

// At materializes the i-th entry. The Via field aliases pooled memory
// owned by the view; it must not be retained past Release.
//
//cosmo:alloc-free
func (rs RelatedSeq) At(i int) Related {
	en := rs.sc.ents[i]
	s := rs.sc.snap
	return Related{
		ProductID: s.ids[en.cand],
		Label:     s.labels[en.cand],
		Score:     en.score,
		Via:       rs.sc.via[en.viaStart:en.viaEnd],
	}
}

// Release recycles the view's scratch. Safe on the zero view.
func (rs RelatedSeq) Release() {
	if rs.sc != nil {
		rs.sc.release()
	}
}

// ComputeStats builds graph statistics from the frozen arrays.
func (s *Snapshot) ComputeStats() Stats {
	s.touch(maskByDom | maskEdges)
	st := Stats{
		Nodes:     len(s.ids),
		Edges:     len(s.eHead),
		Relations: len(s.rels),
		Domains:   len(s.doms),
		PerDomain: map[catalog.Category]DomainStats{},
	}
	for di, d := range s.doms {
		ds := DomainStats{}
		for _, e := range s.byDom.row(sym32(di)) {
			if int32(s.eBeh[e]) == s.searchBuyIx {
				ds.SearchBuyEdges++
			} else {
				ds.CoBuyEdges++
			}
		}
		st.PerDomain[d] = ds
	}
	runtime.KeepAlive(s) // aliased sections must outlive the last read (mmap-backed snapshots)
	return st
}

// BuildHierarchy organizes the snapshot's intention tails into the same
// specialization forest as Graph.BuildHierarchy (identical output: both
// feed the shared assembler identical per-tail aggregates).
func (s *Snapshot) BuildHierarchy(minSupport int) []*HierarchyNode {
	s.touch(maskEdges | maskNodeTypes)
	byTail := map[string]*tailInfo{}
	for i := range s.eHead {
		t := s.eTail[i]
		tailID := s.ids[t]
		in := byTail[tailID]
		if in == nil {
			toks := map[string]bool{}
			for _, tok := range textproc.StemAll(textproc.ContentTokens(s.labels[t])) {
				toks[tok] = true
			}
			in = &tailInfo{id: tailID, label: s.labels[t], tokens: toks, products: map[string]bool{}}
			byTail[tailID] = in
		}
		in.count += int(s.eSup[i])
		if h := s.eHead[i]; int32(s.ntypes[h]) == s.prodIx {
			in.products[s.labels[h]] = true
		}
	}
	runtime.KeepAlive(s) // aliased sections must outlive the last read (mmap-backed snapshots)
	return assembleHierarchy(byTail, minSupport)
}
