// Zero-copy snapshot loading: MapSnapshot memory-maps a v2 .cosmo file
// and builds the Snapshot by *aliasing* the mapped region — the
// int32/float64 edge struct-of-arrays, the four CSR indexes, and the
// two u8 intern-index arrays via unsafe.Slice, and every string's
// bytes via unsafe.String (the mapping is PROT_READ, so the string
// immutability contract holds). Heap-built state is only the string
// *headers* (the []string tables), the tiny relation/domain symbol
// maps, and the intern tables; node-ID lookups binary-search the
// ascending ID table instead of a hash map (see symOf). Start-up cost
// is therefore O(string headers) — no byte copies, no O(nodes) map
// build — and resident memory is whatever the page cache keeps hot,
// not a full heap copy of the graph. The flip side of aliasing:
// strings obtained from a mapped snapshot (node IDs, labels, Edge
// fields) must not outlive the snapshot they came from; Close (or the
// finalizer) unmaps the bytes under them.
//
// Validation is split in three:
//
//  1. Eager, at map time: header magic/version, the tablecrc seal over
//     the section table, the table's layout invariants (alignment,
//     ordering, exact file size), inter-section padding (must be
//     zero), the six string-table sections' bounds-checked decode and
//     sort-order validation, and every cross-section length
//     consistency rule that can be derived from the sealed table
//     alone. After this, the aliased slices are well-typed and
//     in-bounds; MapSnapshot never panics, whatever the input.
//  2. Lazy, on first touch: each section's CRC-64 (numeric *and*
//     string content) is verified the first time a query path reads
//     it, tracked by an atomic bitmap (one bit per section, one atomic
//     load on the hot path once verified). A mismatch fails closed —
//     the query panics with a *SectionError rather than serving bytes
//     that differ from what the writer sealed. CRC equality is also the structural proof for
//     these sections: the writer only ever seals in-range symbols and
//     valid CSR permutations, so matching bytes are valid bytes.
//     Hostile files that forge self-consistent CRCs over invalid
//     values are bounded by Go's slice bounds checks (a panic, never
//     memory unsafety); tools that ingest untrusted artifacts call
//     Verify first.
//  3. Eager on demand: Verify checksums every section and re-runs the
//     full structural validation ReadSnapshot applies, returning (not
//     panicking) section-attributed errors.
//
// The file layout makes the aliasing legal: v2 sections start at
// 8-byte-aligned offsets, the mmap base is page-aligned (and the
// fallback build's heap buffer is at least 8-aligned), and all
// encodings are little-endian. On a big-endian host MapSnapshot
// quietly degrades to the ReadSnapshot copy path.
package kg

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"sync/atomic"
	"time"
	"unsafe"

	"cosmo/internal/catalog"
	"cosmo/internal/know"
	"cosmo/internal/relations"
)

// secBit is the lazy-validation bitmap bit for a section id.
func secBit(id uint32) uint64 { return 1 << (id - 1) }

// Section groups touched by the query paths. String sections are
// decoded and order-validated eagerly at map time (their *headers* are
// needed to assemble the snapshot at all) but their content checksums
// are lazy like everything else, so every group that can surface
// string bytes folds maskStrings in: the first query checksums the
// strings it is about to serve, and cold start checksums nothing.
var (
	maskStrings = secBit(secNodeIDs) | secBit(secNodeLabels) | secBit(secNodeTypes) |
		secBit(secRels) | secBit(secDoms) | secBit(secBehs)
	maskNodeTypes = secBit(secNodeTypeIx) | maskStrings
	maskEdges     = secBit(secEdgeHead) | secBit(secEdgeTail) | secBit(secEdgeRel) |
		secBit(secEdgeDom) | secBit(secEdgeBeh) | secBit(secEdgeSup) |
		secBit(secEdgePla) | secBit(secEdgeTyp) | maskStrings
	maskByHead = secBit(secHeadOff) | secBit(secHeadIdx) | maskStrings
	maskByTail = secBit(secTailOff) | secBit(secTailIdx) | maskStrings
	maskByRel  = secBit(secRelOff) | secBit(secRelIdx) | maskStrings
	maskByDom  = secBit(secDomOff) | secBit(secDomIdx) | maskStrings
	maskAll    = maskStrings | maskNodeTypes | maskEdges |
		maskByHead | maskByTail | maskByRel | maskByDom
)

// hostLittleEndian reports whether the host's byte order matches the
// on-disk encoding, the precondition for aliasing numeric sections.
var hostLittleEndian = func() bool {
	var x uint32 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// sectionChecks carries the lazy-validation state of a mapped
// snapshot: the raw file image, the sealed table entries (indexed by
// section id), and the atomic done bitmap. Shared by every reader of
// the snapshot; verification is idempotent, so a racing double-check
// is just redundant work, never wrong.
type sectionChecks struct {
	data []byte
	secs [secDomIdx + 1]sectV2
	done atomic.Uint64
}

// touch ensures every section in mask has passed its checksum,
// verifying lazily on first use. The steady-state cost is one atomic
// load; heap-loaded snapshots (lazy == nil) skip even that.
//
//cosmo:alloc-free
func (s *Snapshot) touch(mask uint64) {
	c := s.lazy
	if c == nil {
		return
	}
	if c.done.Load()&mask == mask {
		return
	}
	c.verifySlow(mask)
}

// verifySlow checksums the not-yet-verified sections in mask. A
// mismatch fails closed: the read that touched the corrupt section
// panics with a *SectionError instead of returning data the writer
// never sealed.
func (c *sectionChecks) verifySlow(mask uint64) {
	var fresh uint64
	done := c.done.Load()
	for id := uint32(1); id <= secDomIdx; id++ {
		bit := secBit(id)
		if mask&bit == 0 || done&bit != 0 {
			continue
		}
		if err := c.checkSection(id); err != nil {
			panic(err)
		}
		fresh |= bit
	}
	for fresh != 0 {
		old := c.done.Load()
		if c.done.CompareAndSwap(old, old|fresh) {
			return
		}
	}
}

// checkSection verifies one section's CRC against the sealed table.
func (c *sectionChecks) checkSection(id uint32) error {
	t := c.secs[id]
	got := crc64.Checksum(c.data[t.off:t.off+t.length], crcTable)
	if got != t.crc {
		return &SectionError{Section: id, Offset: int64(t.off),
			Err: fmt.Errorf("checksum mismatch on first touch: table %016x, computed %016x", t.crc, got)}
	}
	return nil
}

// MapSnapshotFile memory-maps a v2 packed snapshot from path. See
// MapSnapshot for the semantics; v1 files return an error wrapping
// ErrSnapshotVersion (load those with ReadSnapshotFile).
func MapSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kg: map snapshot: %w", err)
	}
	s, err := MapSnapshot(f)
	f.Close() //cosmo:lint-ignore dropped-error close of a read-only fd; the mapping outlives it
	if err != nil {
		return nil, fmt.Errorf("kg: map snapshot %s: %w", path, err)
	}
	return s, nil
}

// MapSnapshot builds a Snapshot over a memory-mapped view of f,
// aliasing the numeric sections in place and deferring their checksum
// validation to first touch (see the package comment for the exact
// contract). The file descriptor may be closed after MapSnapshot
// returns; the mapping keeps the data live. The returned snapshot
// holds a reference on the mapping that is released when the snapshot
// becomes unreachable (or eagerly via Close); every query API works
// identically to a heap-loaded snapshot.
//
// On builds without mmap support (non-Unix, or the cosmo_nommap tag)
// the "mapping" is a plain heap read of the file — same API, same lazy
// validation, no zero-copy win.
func MapSnapshot(f *os.File) (*Snapshot, error) {
	data, unmap, err := mapFile(f)
	if err != nil {
		return nil, err
	}
	m := newMapping(data, unmap)
	s, err := mapSnapshot(m)
	if err != nil {
		m.release() //cosmo:lint-ignore dropped-error the decode error is the root cause
		return nil, err
	}
	return s, nil
}

// mapSnapshot assembles the Snapshot over a mapped file image,
// running all the eager validation described in the package comment.
func mapSnapshot(m *Mapping) (*Snapshot, error) {
	data := m.data
	if len(data) < v2HeaderLen {
		return nil, fmt.Errorf("%w: short header (%d bytes)", ErrSnapshotMagic, len(data))
	}
	if !IsSnapshotHeader(data) {
		return nil, ErrSnapshotMagic
	}
	version := binary.LittleEndian.Uint32(data[len(snapshotMagic):])
	if version != snapshotVersion {
		return nil, fmt.Errorf("%w: version %d (MapSnapshot requires %d; use ReadSnapshot for legacy files)",
			ErrSnapshotVersion, version, snapshotVersion)
	}
	nsect := binary.LittleEndian.Uint32(data[len(snapshotMagic)+4:])
	if int(nsect) != len(sectionOrder) {
		return nil, corrupt("section count %d, want %d", nsect, len(sectionOrder))
	}
	tblEnd := v2HeaderLen + len(sectionOrder)*v2TableEntryLen
	if len(data) < tblEnd+8 {
		return nil, corrupt("short section table (%d bytes)", len(data))
	}
	if got, want := binary.LittleEndian.Uint64(data[tblEnd:]),
		crc64.Checksum(data[:tblEnd], crcTable); got != want {
		return nil, corrupt("table checksum mismatch: file %016x, computed %016x", got, want)
	}
	sects, err := parseTableV2(data[v2HeaderLen:tblEnd])
	if err != nil {
		return nil, err
	}
	end := sects[len(sects)-1].off + sects[len(sects)-1].length
	if uint64(len(data)) != end {
		return nil, corrupt("file is %d bytes, table describes %d", len(data), end)
	}
	// Inter-section padding is not covered by any section CRC; require
	// it zero eagerly (a handful of sub-8-byte gaps — O(1) pages).
	pos := v2BodyStart()
	for _, t := range sects {
		for _, b := range data[pos:t.off] {
			if b != 0 {
				return nil, corrupt("nonzero padding before section %s", SectionName(t.id))
			}
		}
		pos = t.off + t.length
	}

	if !hostLittleEndian {
		// Big-endian host: the aliasing precondition fails, so degrade
		// to the validated copy path over the mapped bytes.
		s, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		s.mapping = m // released with the snapshot; harmless extra hold
		return s, nil
	}

	checks := &sectionChecks{data: data}
	for _, t := range sects {
		checks.secs[t.id] = t
	}

	// Eager pass over the six string-table sections: decode (headers
	// only — the bytes stay in the mapping) and the same sort-order
	// validation the copy loader applies. Checksums stay lazy; the
	// decode is bounds-checked, so hostile bytes surface as errors
	// here, never as unsafety.
	sec := func(id uint32) []byte {
		t := checks.secs[id]
		return data[t.off : t.off+t.length : t.off+t.length]
	}
	s := &Snapshot{}
	wrap := func(id uint32, err error) error {
		if err == nil {
			return nil
		}
		return &SectionError{Section: id, Offset: int64(checks.secs[id].off), Err: err}
	}
	if s.ids, err = parseStringListZC(sec(secNodeIDs)); err != nil {
		return nil, wrap(secNodeIDs, err)
	}
	if s.labels, err = parseStringListZC(sec(secNodeLabels)); err != nil {
		return nil, wrap(secNodeLabels, err)
	}
	ntypeStrs, err := parseStringListZC(sec(secNodeTypes))
	if err != nil {
		return nil, wrap(secNodeTypes, err)
	}
	relStrs, err := parseStringListZC(sec(secRels))
	if err != nil {
		return nil, wrap(secRels, err)
	}
	domStrs, err := parseStringListZC(sec(secDoms))
	if err != nil {
		return nil, wrap(secDoms, err)
	}
	behStrs, err := parseStringListZC(sec(secBehs))
	if err != nil {
		return nil, wrap(secBehs, err)
	}
	if err := ascending("node ID", s.ids); err != nil {
		return nil, wrap(secNodeIDs, err)
	}
	if err := ascending("node type", ntypeStrs); err != nil {
		return nil, wrap(secNodeTypes, err)
	}
	if err := ascending("relation", relStrs); err != nil {
		return nil, wrap(secRels, err)
	}
	if err := ascending("domain", domStrs); err != nil {
		return nil, wrap(secDoms, err)
	}
	if err := ascending("behavior", behStrs); err != nil {
		return nil, wrap(secBehs, err)
	}

	// Cross-section length consistency, derived entirely from the
	// sealed table and the decoded string counts — no body pages are
	// touched. After this, every aliased slice has the element count
	// the rest of the Snapshot assumes.
	nn := len(s.ids)
	if nn > math.MaxInt32 || len(relStrs) > math.MaxInt32 || len(domStrs) > math.MaxInt32 {
		return nil, corrupt("%d nodes / %d relations / %d domains exceed the int32 symbol space",
			nn, len(relStrs), len(domStrs))
	}
	if len(s.labels) != nn {
		return nil, corrupt("%d labels for %d nodes", len(s.labels), nn)
	}
	if len(ntypeStrs) > 256 || len(behStrs) > 256 {
		return nil, corrupt("%d node types / %d behaviors exceed the u8 index space",
			len(ntypeStrs), len(behStrs))
	}
	lenOf := func(id uint32) uint64 { return checks.secs[id].length }
	if lenOf(secNodeTypeIx) != uint64(nn) {
		return nil, corrupt("%d node-type indexes for %d nodes", lenOf(secNodeTypeIx), nn)
	}
	if lenOf(secEdgeHead)%4 != 0 {
		return nil, wrap(secEdgeHead, fmt.Errorf("length %d not a multiple of 4", lenOf(secEdgeHead)))
	}
	ne := lenOf(secEdgeHead) / 4
	if ne > math.MaxInt32 {
		return nil, corrupt("%d edges exceed the int32 symbol space", ne)
	}
	for _, c := range []struct {
		id   uint32
		want uint64
	}{
		{secEdgeTail, ne * 4}, {secEdgeRel, ne * 4}, {secEdgeDom, ne * 4},
		{secEdgeBeh, ne}, {secEdgeSup, ne * 4}, {secEdgePla, ne * 8}, {secEdgeTyp, ne * 8},
		{secHeadOff, uint64(nn+1) * 4}, {secHeadIdx, ne * 4},
		{secTailOff, uint64(nn+1) * 4}, {secTailIdx, ne * 4},
		{secRelOff, uint64(len(relStrs)+1) * 4}, {secRelIdx, ne * 4},
		{secDomOff, uint64(len(domStrs)+1) * 4}, {secDomIdx, ne * 4},
	} {
		if lenOf(c.id) != c.want {
			return nil, wrap(c.id, fmt.Errorf("length %d, want %d (%d nodes, %d edges)",
				lenOf(c.id), c.want, nn, ne))
		}
	}

	// Intern tables and the two tiny symbol maps: the only heap-built
	// state. There is deliberately no node sym map — node lookups on a
	// mapped snapshot binary-search the ascending ID table (see symOf),
	// so cold start is O(string headers), not O(nodes) hash inserts.
	s.ntypeTable = make([]NodeType, len(ntypeStrs))
	for i, t := range ntypeStrs {
		s.ntypeTable[i] = NodeType(t)
	}
	s.behTable = make([]know.BehaviorType, len(behStrs))
	for i, b := range behStrs {
		s.behTable[i] = know.BehaviorType(b)
	}
	s.rels = make([]relations.Relation, len(relStrs))
	s.relSym = make(map[relations.Relation]int32, len(relStrs))
	for i, r := range relStrs {
		s.rels[i] = relations.Relation(r)
		s.relSym[s.rels[i]] = int32(i) //cosmo:lint-ignore unchecked-narrowing bounded by the MaxInt32 guard above
	}
	s.doms = make([]catalog.Category, len(domStrs))
	s.domSym = make(map[catalog.Category]int32, len(domStrs))
	for i, d := range domStrs {
		s.doms[i] = catalog.Category(d)
		s.domSym[s.doms[i]] = int32(i) //cosmo:lint-ignore unchecked-narrowing bounded by the MaxInt32 guard above
	}
	// Aliased sections: slice headers over the mapped region.
	s.ntypes = sec(secNodeTypeIx)
	s.eBeh = sec(secEdgeBeh)
	i32 := func(id uint32) []int32 { return aliasI32(sec(id)) }
	s.eHead, s.eTail, s.eRel, s.eDom = i32(secEdgeHead), i32(secEdgeTail), i32(secEdgeRel), i32(secEdgeDom)
	s.eSup = i32(secEdgeSup)
	s.ePla, s.eTyp = aliasF64(sec(secEdgePla)), aliasF64(sec(secEdgeTyp))
	s.byHead = csr{off: i32(secHeadOff), idx: i32(secHeadIdx)}
	s.byTail = csr{off: i32(secTailOff), idx: i32(secTailIdx)}
	s.byRel = csr{off: i32(secRelOff), idx: i32(secRelIdx)}
	s.byDom = csr{off: i32(secDomOff), idx: i32(secDomIdx)}

	s.lazy = checks
	s.mapping = m
	s.bindDerived()
	return s, nil
}

// parseStringListZC decodes a string-table section without copying:
// every returned string aliases the section's bytes via unsafe.String.
// The section is checksummed before this runs and the backing region
// is never written (PROT_READ mapping, or a read-only heap buffer on
// the fallback build), so the strings behave as ordinary immutable Go
// strings — with the lifetime caveat that they die with the mapping.
func parseStringListZC(b []byte) ([]string, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("string list shorter than its count")
	}
	count := binary.LittleEndian.Uint32(b)
	b = b[4:]
	out := make([]string, 0, min(int(count), len(b)+1))
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("string %d: missing length", i)
		}
		n := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint64(n) > uint64(len(b)) {
			return nil, fmt.Errorf("string %d: length %d exceeds remaining %d bytes", i, n, len(b))
		}
		if n == 0 {
			out = append(out, "")
		} else {
			out = append(out, unsafe.String(&b[0], int(n)))
		}
		b = b[n:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%d trailing bytes", len(b))
	}
	return out, nil
}

// aliasI32 views an 8-aligned little-endian byte section as []int32.
// Alignment and length-multiple preconditions are established by the
// eager table validation.
func aliasI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// aliasF64 views an 8-aligned little-endian byte section as []float64.
func aliasF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// Verify eagerly validates the whole snapshot: every section checksum
// (for mapped snapshots — marking them verified, so later touches are
// free) and the full structural validation the copy loader applies.
// Unlike the lazy first-touch path, Verify returns errors instead of
// panicking; tools that ingest untrusted artifacts call it before
// serving queries.
func (s *Snapshot) Verify() error {
	var offs map[uint32]int64
	if c := s.lazy; c != nil {
		offs = make(map[uint32]int64, len(sectionOrder))
		for _, id := range sectionOrder {
			offs[id] = int64(c.secs[id].off)
			if c.done.Load()&secBit(id) != 0 {
				continue
			}
			if err := c.checkSection(id); err != nil {
				return err
			}
		}
		for {
			old := c.done.Load()
			if c.done.CompareAndSwap(old, old|maskAll) {
				break
			}
		}
	}
	return validateStructure(s, offs)
}

// SnapshotStamp identifies one on-disk revision of a packed snapshot:
// file mtime and size, plus — for v2 files — the table checksum, which
// seals every section's CRC and is therefore a content fingerprint of
// the whole artifact. The refresh loop uses stamps to skip reloading
// an unchanged file (see cosmo-serve).
type SnapshotStamp struct {
	ModTime  time.Time
	Size     int64
	TableCRC uint64 // v2 table seal; 0 for v1 or unreadable headers
}

// Equal reports whether two stamps identify the same artifact
// revision. Zero-valued stamps never equal a real one.
func (a SnapshotStamp) Equal(b SnapshotStamp) bool {
	return a.Size == b.Size && a.TableCRC == b.TableCRC && a.ModTime.Equal(b.ModTime)
}

// SameContent reports whether two stamps carry the same v2 content
// fingerprint, regardless of mtime — true when the file was rewritten
// byte-identically (e.g. an idempotent repack touched the mtime).
func (a SnapshotStamp) SameContent(b SnapshotStamp) bool {
	return a.TableCRC != 0 && a.Size == b.Size && a.TableCRC == b.TableCRC
}

// StampSnapshotFile stats path and, for v2 snapshots, reads the table
// checksum from the header — a fixed-size pread, never the body.
func StampSnapshotFile(path string) (SnapshotStamp, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return SnapshotStamp{}, fmt.Errorf("kg: stamp snapshot: %w", err)
	}
	st := SnapshotStamp{ModTime: fi.ModTime(), Size: fi.Size()}
	f, err := os.Open(path)
	if err != nil {
		return SnapshotStamp{}, fmt.Errorf("kg: stamp snapshot: %w", err)
	}
	defer f.Close()
	head := make([]byte, v2HeaderLen)
	if _, err := io.ReadFull(f, head); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return st, nil // too short for a v2 header; mtime+size still identify it
		}
		return SnapshotStamp{}, fmt.Errorf("kg: stamp snapshot: %w", err)
	}
	if !IsSnapshotHeader(head) ||
		binary.LittleEndian.Uint32(head[len(snapshotMagic):]) != snapshotVersion {
		return st, nil
	}
	nsect := binary.LittleEndian.Uint32(head[len(snapshotMagic)+4:])
	if int(nsect) != len(sectionOrder) {
		return st, nil
	}
	seal := make([]byte, 8)
	if _, err := f.ReadAt(seal, int64(v2HeaderLen+int(nsect)*v2TableEntryLen)); err != nil {
		return st, nil
	}
	st.TableCRC = binary.LittleEndian.Uint64(seal)
	return st, nil
}
