package kg

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// snapshot is the serializable form of the graph.
type snapshot struct {
	Nodes []Node
	Edges []Edge
}

// WriteGob serializes the graph in gob format. The encoder writes
// through a buffered writer (gob emits many small writes) and the final
// flush error is surfaced — an almost-full disk used to be reported as
// success here.
func (g *Graph) WriteGob(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(snapshot{Nodes: g.Nodes(), Edges: g.Edges()}); err != nil {
		return fmt.Errorf("kg: encode gob: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("kg: flush gob: %w", err)
	}
	return nil
}

// ReadGob loads a graph from gob format.
func ReadGob(r io.Reader) (*Graph, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("kg: decode gob: %w", err)
	}
	return fromSnapshot(s)
}

// edgeView is the read surface the row-oriented exporters need; both
// the mutable Graph and the frozen Snapshot satisfy it, so JSONL and
// TSV export work identically on either.
type edgeView interface {
	Edges() []Edge
	Node(id string) (Node, bool)
}

// labelOf resolves a node label for an exporter row. A failed lookup
// means the graph holds a dangling edge — it used to silently emit an
// empty label; now it is an error naming the broken edge.
func labelOf(v edgeView, e Edge, end, id string) (string, error) {
	n, ok := v.Node(id)
	if !ok {
		return "", fmt.Errorf("kg: export: edge %s -[%s]-> %s references unknown %s node %q",
			e.Head, e.Relation, e.Tail, end, id)
	}
	return n.Label, nil
}

// WriteJSONL writes one JSON object per edge (with embedded node labels),
// the interchange format used by downstream feature pipelines.
func (g *Graph) WriteJSONL(w io.Writer) error { return writeJSONL(g, w) }

// WriteJSONL is the frozen-view equivalent of Graph.WriteJSONL; the
// rows are byte-identical (same key-sorted edge order).
func (s *Snapshot) WriteJSONL(w io.Writer) error { return writeJSONL(s, w) }

func writeJSONL(v edgeView, w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	type rec struct {
		Head      string  `json:"head"`
		HeadLabel string  `json:"head_label"`
		Relation  string  `json:"relation"`
		Tail      string  `json:"tail"`
		TailLabel string  `json:"tail_label"`
		Behavior  string  `json:"behavior"`
		Domain    string  `json:"domain"`
		Plausible float64 `json:"plausible"`
		Typical   float64 `json:"typical"`
		Support   int     `json:"support"`
	}
	for _, e := range v.Edges() {
		hl, err := labelOf(v, e, "head", e.Head)
		if err != nil {
			return err
		}
		tl, err := labelOf(v, e, "tail", e.Tail)
		if err != nil {
			return err
		}
		if err := enc.Encode(rec{
			Head: e.Head, HeadLabel: hl,
			Relation: string(e.Relation),
			Tail:     e.Tail, TailLabel: tl,
			Behavior: string(e.Behavior), Domain: string(e.Domain),
			Plausible: e.PlausibleScore, Typical: e.TypicalScore,
			Support: e.Support,
		}); err != nil {
			return fmt.Errorf("kg: encode jsonl: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("kg: flush jsonl: %w", err)
	}
	return nil
}

// WriteTSV writes a head\trelation\ttail\tscore table.
func (g *Graph) WriteTSV(w io.Writer) error { return writeTSV(g, w) }

// WriteTSV is the frozen-view equivalent of Graph.WriteTSV; the rows
// are byte-identical (same key-sorted edge order).
func (s *Snapshot) WriteTSV(w io.Writer) error { return writeTSV(s, w) }

func writeTSV(v edgeView, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "head\trelation\ttail\tplausible\ttypical\tsupport"); err != nil {
		return err
	}
	for _, e := range v.Edges() {
		tl, err := labelOf(v, e, "tail", e.Tail)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%.4f\t%.4f\t%d\n",
			e.Head, e.Relation, sanitizeTSV(tl),
			e.PlausibleScore, e.TypicalScore, e.Support); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("kg: flush tsv: %w", err)
	}
	return nil
}

func sanitizeTSV(s string) string {
	s = strings.ReplaceAll(s, "\t", " ")
	return strings.ReplaceAll(s, "\n", " ")
}

func fromSnapshot(s snapshot) (*Graph, error) {
	g := New()
	for _, n := range s.Nodes {
		g.AddNode(n)
	}
	for _, e := range s.Edges {
		if err := g.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return g, nil
}
