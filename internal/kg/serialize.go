package kg

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// snapshot is the serializable form of the graph.
type snapshot struct {
	Nodes []Node
	Edges []Edge
}

// WriteGob serializes the graph in gob format.
func (g *Graph) WriteGob(w io.Writer) error {
	return gob.NewEncoder(w).Encode(snapshot{Nodes: g.Nodes(), Edges: g.Edges()})
}

// ReadGob loads a graph from gob format.
func ReadGob(r io.Reader) (*Graph, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("kg: decode gob: %w", err)
	}
	return fromSnapshot(s)
}

// WriteJSONL writes one JSON object per edge (with embedded node labels),
// the interchange format used by downstream feature pipelines.
func (g *Graph) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	type rec struct {
		Head      string  `json:"head"`
		HeadLabel string  `json:"head_label"`
		Relation  string  `json:"relation"`
		Tail      string  `json:"tail"`
		TailLabel string  `json:"tail_label"`
		Behavior  string  `json:"behavior"`
		Domain    string  `json:"domain"`
		Plausible float64 `json:"plausible"`
		Typical   float64 `json:"typical"`
		Support   int     `json:"support"`
	}
	for _, e := range g.Edges() {
		hn, _ := g.Node(e.Head)
		tn, _ := g.Node(e.Tail)
		if err := enc.Encode(rec{
			Head: e.Head, HeadLabel: hn.Label,
			Relation: string(e.Relation),
			Tail:     e.Tail, TailLabel: tn.Label,
			Behavior: string(e.Behavior), Domain: string(e.Domain),
			Plausible: e.PlausibleScore, Typical: e.TypicalScore,
			Support: e.Support,
		}); err != nil {
			return fmt.Errorf("kg: encode jsonl: %w", err)
		}
	}
	return bw.Flush()
}

// WriteTSV writes a head\trelation\ttail\tscore table.
func (g *Graph) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "head\trelation\ttail\tplausible\ttypical\tsupport"); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		tn, _ := g.Node(e.Tail)
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%.4f\t%.4f\t%d\n",
			e.Head, e.Relation, sanitizeTSV(tn.Label),
			e.PlausibleScore, e.TypicalScore, e.Support); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func sanitizeTSV(s string) string {
	s = strings.ReplaceAll(s, "\t", " ")
	return strings.ReplaceAll(s, "\n", " ")
}

func fromSnapshot(s snapshot) (*Graph, error) {
	g := New()
	for _, n := range s.Nodes {
		g.AddNode(n)
	}
	for _, e := range s.Edges {
		if err := g.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return g, nil
}
