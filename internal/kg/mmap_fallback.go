//go:build (!linux && !darwin) || cosmo_nommap

package kg

import (
	"fmt"
	"io"
	"os"
)

// mmapSupported gates the zero-copy path; this build substitutes a
// plain read of the whole file. MapSnapshot still works — same API,
// same lazy-validation semantics, same section aliasing (into the heap
// buffer instead of a mapped region) — it just pays a copy at load, so
// the cold-start and residency wins are native-build-only. The
// cosmo_nommap tag lets CI exercise this flavor on Linux.
const mmapSupported = false

// mapFile reads the whole file into an ordinary heap buffer. The nil
// releaser tells the Mapping the collector owns the memory.
func mapFile(f *os.File) ([]byte, func([]byte) error, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("kg: map snapshot: %w", err)
	}
	if size := fi.Size(); size != int64(int(size)) {
		return nil, nil, fmt.Errorf("kg: map snapshot: file size %d overflows int", size)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, fmt.Errorf("kg: map snapshot: %w", err)
	}
	return data, nil, nil
}
