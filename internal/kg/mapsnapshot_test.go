package kg

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cosmo/internal/catalog"
	"cosmo/internal/relations"
)

// writeV2File freezes g (if s is nil) and packs it to a temp v2 file.
func writeV2File(t *testing.T, s *Snapshot) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "kg.cosmo")
	if err := WriteSnapshotFile(path, s); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMapSnapshotEquivalence is the randomized mapped-vs-heap property
// test: every query API on a MapSnapshot-loaded snapshot must be
// DeepEqual to the heap-loaded (ReadSnapshot) and original (Freeze)
// snapshots — same ordering, bitwise-equal scores.
func TestMapSnapshotEquivalence(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9100 + trial)))
			want := randomGraph(t, rng, 40+rng.Intn(200)).Freeze()
			path := writeV2File(t, want)
			mapped, err := MapSnapshotFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer mapped.Close()
			if err := mapped.Verify(); err != nil {
				t.Fatalf("Verify on a pristine mapped snapshot: %v", err)
			}
			assertSnapshotsEqual(t, want, mapped)

			heap, err := ReadSnapshotFile(path)
			if err != nil {
				t.Fatal(err)
			}
			assertSnapshotsEqual(t, heap, mapped)
		})
	}
}

// TestMapSnapshotLazyEquivalence re-runs the equivalence check without
// the eager Verify, so every section really is validated on its first
// query touch.
func TestMapSnapshotLazyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9200))
	want := randomGraph(t, rng, 150).Freeze()
	mapped, err := MapSnapshotFile(writeV2File(t, want))
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	assertSnapshotsEqual(t, want, mapped)
}

// TestMapSnapshotExportEquivalence pins that a mapped snapshot exports
// (JSONL, TSV, and a byte-identical v2 re-pack) exactly like the heap
// one.
func TestMapSnapshotExportEquivalence(t *testing.T) {
	want := buildTestGraph(t).Freeze()
	path := writeV2File(t, want)
	mapped, err := MapSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	var wj, mj bytes.Buffer
	if err := want.WriteJSONL(&wj); err != nil {
		t.Fatal(err)
	}
	if err := mapped.WriteJSONL(&mj); err != nil {
		t.Fatal(err)
	}
	if wj.String() != mj.String() {
		t.Fatal("JSONL export differs between heap and mapped snapshots")
	}
	var repacked bytes.Buffer
	if err := mapped.WriteSnapshot(&repacked); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, repacked.Bytes()) {
		t.Fatal("re-packing a mapped snapshot is not byte-identical")
	}
}

// TestMapSnapshotEmpty maps the degenerate empty snapshot.
func TestMapSnapshotEmpty(t *testing.T) {
	mapped, err := MapSnapshotFile(writeV2File(t, New().Freeze()))
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if mapped.NumNodes() != 0 || mapped.NumEdges() != 0 {
		t.Fatalf("empty mapped snapshot: %d nodes %d edges", mapped.NumNodes(), mapped.NumEdges())
	}
	if err := mapped.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestMapSnapshotRejectsV1 pins the compat rule: MapSnapshot serves v2
// only; v1 artifacts go through the ReadSnapshot copy path.
func TestMapSnapshotRejectsV1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.cosmo")
	if err := WriteSnapshotFileVersion(path, buildTestGraph(t).Freeze(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := MapSnapshotFile(path); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("MapSnapshot(v1) = %v, want ErrSnapshotVersion", err)
	}
	// The copy reader still accepts the same file.
	if _, err := ReadSnapshotFile(path); err != nil {
		t.Fatalf("ReadSnapshot(v1) = %v", err)
	}
}

// TestV1WriterRoundTrip keeps the legacy writer honest now that the
// default format is v2: an explicit v1 pack must still round-trip
// through the version-dispatching reader.
func TestV1WriterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9300))
	want := randomGraph(t, rng, 120).Freeze()
	var buf bytes.Buffer
	if err := want.WriteSnapshotVersion(&buf, 1); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotsEqual(t, want, got)
}

// sectionRange looks up a section's [off, off+len) window in a packed
// v2 byte image via its sealed table.
func sectionRange(t *testing.T, valid []byte, id uint32) (int, int) {
	t.Helper()
	sects, err := parseTableV2(valid[v2HeaderLen : v2HeaderLen+len(sectionOrder)*v2TableEntryLen])
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sects {
		if s.id == id {
			return int(s.off), int(s.off + s.length)
		}
	}
	t.Fatalf("section %d not in table", id)
	return 0, 0
}

// TestMapSnapshotLazyFailsClosed is the lazy-validation contract: a
// byte flip inside a lazily-validated section must not stop MapSnapshot
// from constructing the snapshot, but the first query that touches the
// damaged section must panic with a *SectionError naming it — and
// Verify must report the same section as an error, not a panic.
func TestMapSnapshotLazyFailsClosed(t *testing.T) {
	want := buildTestGraph(t).Freeze()
	path := writeV2File(t, want)
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	heads := want.Nodes()

	// One toucher per lazily-validated section group, driving it through
	// the public query API.
	touch := map[uint32]func(s *Snapshot){
		secNodeTypeIx: func(s *Snapshot) { s.Nodes() },
		secEdgeHead:   func(s *Snapshot) { s.Edges() },
		secEdgeTail:   func(s *Snapshot) { s.Edges() },
		secEdgeRel:    func(s *Snapshot) { s.Edges() },
		secEdgeDom:    func(s *Snapshot) { s.Edges() },
		secEdgeBeh:    func(s *Snapshot) { s.Edges() },
		secEdgeSup:    func(s *Snapshot) { s.Edges() },
		secEdgePla:    func(s *Snapshot) { s.Edges() },
		secEdgeTyp:    func(s *Snapshot) { s.Edges() },
		secHeadOff: func(s *Snapshot) {
			for _, n := range heads {
				s.IntentionsFor(n.ID)
			}
		},
		secHeadIdx: func(s *Snapshot) {
			for _, n := range heads {
				s.IntentionsFor(n.ID)
			}
		},
		secTailOff: func(s *Snapshot) {
			for _, n := range heads {
				s.EdgesTo(n.ID)
			}
		},
		secTailIdx: func(s *Snapshot) {
			for _, n := range heads {
				s.EdgesTo(n.ID)
			}
		},
		secRelOff: func(s *Snapshot) {
			for _, r := range relations.All() {
				s.EdgesByRelation(r)
			}
		},
		secRelIdx: func(s *Snapshot) {
			for _, r := range relations.All() {
				s.EdgesByRelation(r)
			}
		},
		secDomOff: func(s *Snapshot) { s.ComputeStats() },
		secDomIdx: func(s *Snapshot) { s.ComputeStats() },
	}
	for id, fn := range touch {
		lo, hi := sectionRange(t, valid, id)
		if lo == hi {
			continue // empty section: nothing to flip
		}
		t.Run(SectionName(id), func(t *testing.T) {
			bad := append([]byte(nil), valid...)
			bad[(lo+hi)/2] ^= 0x5A
			badPath := filepath.Join(t.TempDir(), "bad.cosmo")
			if err := os.WriteFile(badPath, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := MapSnapshotFile(badPath)
			if err != nil {
				t.Fatalf("MapSnapshot must defer section validation, got eager error %v", err)
			}
			defer s.Close()

			var verr error
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatal("query over the corrupted section did not fail")
					}
					var ok bool
					if verr, ok = r.(error); !ok {
						t.Fatalf("panic value %v is not an error", r)
					}
				}()
				fn(s)
			}()
			var se *SectionError
			if !errors.As(verr, &se) || !errors.Is(verr, ErrSnapshotCorrupt) {
				t.Fatalf("lazy failure %v, want a *SectionError wrapping ErrSnapshotCorrupt", verr)
			}
			if se.Section != id {
				t.Fatalf("lazy failure attributed to section %s, want %s",
					SectionName(se.Section), SectionName(id))
			}

			// Verify on a fresh mapping reports the same section, as an
			// error rather than a panic.
			s2, err := MapSnapshotFile(badPath)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			se = nil
			if verr := s2.Verify(); !errors.As(verr, &se) || se.Section != id {
				t.Fatalf("Verify() = %v, want *SectionError for %s", verr, SectionName(id))
			}
		})
	}
}

// TestMapSnapshotEagerRejections covers the damage classes MapSnapshot
// must reject at construction time, never panicking — header and table
// flips, structural string-table damage, and every truncation — plus
// the string-content flips that defer to the first query's checksum.
func TestMapSnapshotEagerRejections(t *testing.T) {
	valid, err := os.ReadFile(writeV2File(t, buildTestGraph(t).Freeze()))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tryMap := func(t *testing.T, b []byte) (*Snapshot, error) {
		t.Helper()
		p := filepath.Join(dir, "case.cosmo")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return MapSnapshotFile(p)
	}
	// Header, table and seal: all eagerly checksummed.
	for pos := len(snapshotMagic); pos < int(v2BodyStart()); pos++ {
		b := append([]byte(nil), valid...)
		b[pos] ^= 0x5A
		if s, err := tryMap(t, b); err == nil {
			s.Close()
			t.Fatalf("flip at header/table byte %d mapped successfully", pos)
		}
	}
	// String sections: decoded eagerly (so structural damage — counts,
	// length prefixes, sort order — errors at map time) but
	// checksummed lazily. Every flip must be caught one way or the
	// other, attributed to the flipped section: either an eager error,
	// or a panic out of the first query that reads string content.
	for _, id := range []uint32{secNodeIDs, secNodeLabels, secNodeTypes, secRels, secDoms, secBehs} {
		lo, hi := sectionRange(t, valid, id)
		for _, pos := range []int{lo, (lo + hi) / 2, hi - 1} {
			b := append([]byte(nil), valid...)
			b[pos] ^= 0x5A
			s, err := tryMap(t, b)
			if err != nil {
				var se *SectionError
				if errors.As(err, &se) && se.Section != id {
					t.Fatalf("flip in %s attributed to %s", SectionName(id), SectionName(se.Section))
				}
				continue
			}
			func() {
				defer s.Close()
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("flip in string section %s (byte %d) served queries", SectionName(id), pos)
					}
					verr, ok := r.(error)
					var se *SectionError
					if !ok || !errors.As(verr, &se) || !errors.Is(verr, ErrSnapshotCorrupt) || se.Section != id {
						t.Fatalf("flip in %s: lazy failure %v, want *SectionError for it", SectionName(id), r)
					}
				}()
				s.Nodes() // reads every string table's checksum group
			}()
		}
	}
	// Truncations: the table/size cross-check catches every cut.
	for cut := 0; cut < len(valid); cut += 7 {
		if s, err := tryMap(t, valid[:cut]); err == nil {
			s.Close()
			t.Fatalf("truncation to %d bytes mapped successfully", cut)
		}
	}
	// Trailing garbage.
	if s, err := tryMap(t, append(append([]byte(nil), valid...), 0xEE)); err == nil {
		s.Close()
		t.Fatal("trailing byte mapped successfully")
	}
}

// TestMapSnapshotZeroAlloc extends the hot-path guarantee to mapped
// memory: IntentionsFor iteration and the pooled RelatedSeq walk stay
// allocation-free when every array they read aliases the mmap region.
func TestMapSnapshotZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; the alloc guard runs in the regular suite")
	}
	rng := rand.New(rand.NewSource(7))
	s, err := MapSnapshotFile(writeV2File(t, randomGraph(t, rng, 300).Freeze()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var intHead string
	var relHead []byte
	bestInt, bestRel := 0, 0
	for _, n := range s.Nodes() {
		if l := s.IntentionsFor(n.ID).Len(); l > bestInt {
			bestInt, intHead = l, n.ID
		}
		if l := len(s.RelatedProducts(n.ID, 1<<20)); l > bestRel {
			bestRel, relHead = l, []byte(n.ID)
		}
	}
	if bestInt == 0 || bestRel == 0 {
		t.Fatal("no head with intentions and related products")
	}
	if allocs := testing.AllocsPerRun(200, func() {
		seq := s.IntentionsFor(intHead)
		for i := 0; i < seq.Len(); i++ {
			allocSink += seq.At(i).TypicalScore
		}
	}); allocs != 0 {
		t.Fatalf("mapped IntentionsFor allocates %v per run, want 0", allocs)
	}
	s.RelatedSeq(relHead, 10).Release() // warm the pool
	if allocs := testing.AllocsPerRun(200, func() {
		seq := s.RelatedSeq(relHead, 10)
		for i := 0; i < seq.Len(); i++ {
			r := seq.At(i)
			allocSink += r.Score + float64(len(r.Via))
		}
		seq.Release()
	}); allocs != 0 {
		t.Fatalf("mapped RelatedSeq lookup allocates %v per run, want 0", allocs)
	}
}

// TestMappingLifetime pins the refcount/Close semantics: Close releases
// the mapping exactly once and later Closes are no-ops.
func TestMappingLifetime(t *testing.T) {
	s, err := MapSnapshotFile(writeV2File(t, buildTestGraph(t).Freeze()))
	if err != nil {
		t.Fatal(err)
	}
	m := s.mapping
	if m == nil {
		t.Fatal("mapped snapshot has no mapping")
	}
	if !m.Mapped() || m.Size() == 0 {
		t.Fatal("mapping not live after load")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Mapped() {
		t.Fatal("mapping still live after Close")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMapSnapshotRetirementRace is the RCU story end to end: readers
// load the current snapshot from an atomic pointer and query it while
// a refresher keeps swapping in freshly mapped snapshots and dropping
// the retired ones, with the GC (and thus the munmap finalizer) forced
// in between. Readers must never observe unmapped memory — run with
// -race in CI to catch ordering bugs as well.
func TestMapSnapshotRetirementRace(t *testing.T) {
	rng := rand.New(rand.NewSource(9400))
	paths := make([]string, 3)
	ids := map[string]bool{}
	for i := range paths {
		g := randomGraph(t, rng, 80+40*i)
		s := g.Freeze()
		paths[i] = writeV2File(t, s)
		for _, n := range s.Nodes() {
			ids[n.ID] = true
		}
	}
	first, err := MapSnapshotFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	var cur atomic.Pointer[Snapshot]
	cur.Store(first)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s := cur.Load()
				for id := range ids {
					seq := s.IntentionsFor(id)
					for i := 0; i < seq.Len(); i++ {
						_ = seq.At(i)
					}
					s.RelatedSeqString(id, 5).Release()
				}
				_ = s.ComputeStats()
			}
		}()
	}
	deadline := time.Now().Add(600 * time.Millisecond)
	for i := 1; time.Now().Before(deadline); i++ {
		next, err := MapSnapshotFile(paths[i%len(paths)])
		if err != nil {
			t.Error(err)
			break
		}
		cur.Store(next) // the retired snapshot is now unreachable from here
		runtime.GC()    // provoke the munmap finalizer under live readers
	}
	stop.Store(true)
	wg.Wait()
	cur.Load().Close()
}

// TestSnapshotStamp pins the reload-skip fingerprint: same artifact →
// equal stamps; rewritten-but-identical content → SameContent; changed
// content → different TableCRC; v1 files carry no fingerprint.
func TestSnapshotStamp(t *testing.T) {
	g := buildTestGraph(t)
	s := g.Freeze()
	path := filepath.Join(t.TempDir(), "kg.cosmo")
	if err := WriteSnapshotFile(path, s); err != nil {
		t.Fatal(err)
	}
	a, err := StampSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.TableCRC == 0 {
		t.Fatal("v2 stamp has no table fingerprint")
	}
	b, err := StampSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("stamps of an untouched file differ: %+v vs %+v", a, b)
	}

	// Byte-identical rewrite with a different mtime: content fingerprint
	// holds even though the stat identity moved.
	if err := WriteSnapshotFile(path, s); err != nil {
		t.Fatal(err)
	}
	later := a.ModTime.Add(3 * time.Second)
	if err := os.Chtimes(path, later, later); err != nil {
		t.Fatal(err)
	}
	c, err := StampSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("stamps equal across an mtime change")
	}
	if !a.SameContent(c) {
		t.Fatalf("identical content not recognized: %+v vs %+v", a, c)
	}

	// Different content: fingerprint must move.
	g2 := buildTestGraph(t)
	if err := g2.AddEdge(Edge{Head: "p:P1", Relation: relations.CapableOf, Tail: "i:used_for:camping",
		Domain: catalog.Sports, PlausibleScore: 0.5, TypicalScore: 0.5, Support: 1}); err == nil {
		if err := WriteSnapshotFile(path, g2.Freeze()); err != nil {
			t.Fatal(err)
		}
		d, err := StampSnapshotFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if a.SameContent(d) {
			t.Fatal("different content shares a fingerprint")
		}
	}

	// v1 artifacts: stat identity only.
	v1 := filepath.Join(t.TempDir(), "v1.cosmo")
	if err := WriteSnapshotFileVersion(v1, s, 1); err != nil {
		t.Fatal(err)
	}
	e, err := StampSnapshotFile(v1)
	if err != nil {
		t.Fatal(err)
	}
	if e.TableCRC != 0 {
		t.Fatalf("v1 stamp carries a v2 fingerprint: %+v", e)
	}
}
