// Mapping lifetime for memory-mapped snapshots.
//
// A mapped Snapshot's numeric sections alias the mmap'd file bytes, so
// the mapped region must stay live for as long as any goroutine can
// still read through the snapshot — including readers that loaded the
// snapshot pointer from the serving tier's RCU cell *before* a refresh
// swapped in a successor. There is no quiescent-state bookkeeping in
// the read path (that is the whole point of the RCU design: readers
// are a single atomic load), so the release edge cannot be "the server
// swapped it out"; it has to be "no reader can reach it any more".
// That is exactly the garbage collector's liveness judgment, so the
// Mapping rides it: each Snapshot holds a strong reference to its
// Mapping, and a finalizer unmaps the region only after the collector
// proves the last snapshot referencing it is unreachable. A retired
// snapshot therefore keeps serving in-flight readers correctly and the
// munmap happens strictly after the final reader drops its pointer.
//
// Tools that own their snapshot outright (cosmo-bench, cosmo-kg) can
// release deterministically with Close; the finalizer is the backstop
// and the serving-path mechanism, Close the eager path. Both funnel
// through a refcount so a Mapping shared by several snapshots (not
// done today, but cheap to allow) unmaps exactly once.
package kg

import (
	"runtime"
	"sync/atomic"
)

// Mapping is a refcounted handle on one mmap'd snapshot file (or, in
// the portable fallback build, a plain heap buffer standing in for
// it). data is the whole file image; unmap releases it.
type Mapping struct {
	data  []byte
	unmap func([]byte) error
	refs  atomic.Int64
}

// newMapping wraps a mapped region with refcount 1 and arms the
// finalizer that releases it when the last holder is unreachable.
// unmap may be nil (fallback build: the buffer is ordinary heap memory
// and the collector frees it without help).
func newMapping(data []byte, unmap func([]byte) error) *Mapping {
	m := &Mapping{data: data, unmap: unmap}
	m.refs.Store(1)
	if unmap != nil {
		runtime.SetFinalizer(m, func(m *Mapping) {
			m.release() //cosmo:lint-ignore dropped-error a finalizer has no caller to report munmap failure to
		})
	}
	return m
}

// retain adds a reference (a second snapshot sharing the mapping).
func (m *Mapping) retain() { m.refs.Add(1) }

// release drops one reference and unmaps on the last. Idempotent past
// zero: extra releases (finalizer racing an explicit Close) are no-ops.
func (m *Mapping) release() error {
	for {
		n := m.refs.Load()
		if n <= 0 {
			return nil
		}
		if m.refs.CompareAndSwap(n, n-1) {
			if n != 1 {
				return nil
			}
			break
		}
	}
	runtime.SetFinalizer(m, nil)
	data := m.data
	m.data = nil
	if m.unmap == nil {
		return nil
	}
	return m.unmap(data)
}

// Mapped reports whether the region is still live (mainly for tests).
func (m *Mapping) Mapped() bool { return m.refs.Load() > 0 }

// Size is the byte length of the mapped file image.
func (m *Mapping) Size() int { return len(m.data) }

// Close releases the snapshot's hold on its mapped region, if any.
// After Close the snapshot must not be used: its aliased sections
// point into unmapped memory. Snapshots loaded by ReadSnapshot (heap
// copies) have no mapping; Close is then a no-op. The serving path
// never calls Close — retired snapshots are released by the collector
// once the last RCU reader drops them (see the package comment).
func (s *Snapshot) Close() error {
	if s.mapping == nil {
		return nil
	}
	m := s.mapping
	s.mapping = nil
	return m.release()
}

// Mapped reports whether this snapshot aliases a memory-mapped file
// (true only for MapSnapshot-loaded snapshots on native builds).
func (s *Snapshot) Mapped() bool { return s.mapping != nil && s.mapping.unmap != nil }
