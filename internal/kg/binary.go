// Binary snapshot persistence: a versioned, checksummed flat encoding
// of the frozen Snapshot so cosmo-kg can build a graph once and
// cosmo-serve can load it in O(read) — no re-interning, no re-sorting,
// no CSR rebuild. The mutable-Graph gob format pays a full Freeze()
// (hash, sort, index) on every load; at the paper's million-edge scale
// that dominates startup, so the interned CSR arrays themselves are the
// durable artifact here.
//
// Layout (all integers little-endian; see DESIGN.md, "Binary snapshot
// persistence", for the normative spec):
//
//	magic   [8]byte  "COSMOSNP"
//	version uint32   (currently 1)
//	nsect   uint32   section count
//	table   nsect ×  { id uint32, length uint64 }
//	body    the sections, contiguous, in table order
//	footer  uint64   CRC-64/ECMA of every preceding byte
//
// String-list sections are a uint32 count followed by count ×
// (uint32 length + raw bytes). Numeric sections are raw arrays (the
// element count is the section length over the element width). Node
// types and behavior types are interned through their own small string
// tables with one index byte per node/edge.
//
// ReadSnapshot verifies the whole-file checksum and structurally
// validates every section (counts consistent, symbols in range, CSR
// offsets monotone and exhaustive) before building the snapshot, so a
// corrupt or adversarial input returns an error instead of panicking —
// or worse, serving wrong edges.
package kg

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc64"
	"io"
	"math"
	"os"
	"sort"

	"cosmo/internal/catalog"
	"cosmo/internal/know"
	"cosmo/internal/relations"
)

// snapshotMagic opens every binary snapshot file.
const snapshotMagic = "COSMOSNP"

// snapshotVersion is the current format version. Any change to the
// layout — new sections, changed encodings, changed sort invariants —
// bumps this; readers reject versions they do not know.
const snapshotVersion = 1

// Sentinel errors for the three failure classes of ReadSnapshot.
// Structural and checksum failures wrap ErrSnapshotCorrupt so callers
// can distinguish "not a snapshot" from "a damaged snapshot".
var (
	ErrSnapshotMagic   = errors.New("kg: not a snapshot file (bad magic)")
	ErrSnapshotVersion = errors.New("kg: unsupported snapshot version")
	ErrSnapshotCorrupt = errors.New("kg: snapshot corrupt")
)

// Section identifiers. Version 1 requires every section exactly once.
const (
	secNodeIDs    = 1  // string list, strictly ascending node IDs
	secNodeLabels = 2  // string list, one label per node
	secNodeTypes  = 3  // string list, interned NodeType table
	secNodeTypeIx = 4  // u8 per node, index into secNodeTypes
	secRels       = 5  // string list, strictly ascending relations
	secDoms       = 6  // string list, strictly ascending domains
	secBehs       = 7  // string list, interned BehaviorType table
	secEdgeHead   = 8  // i32 per edge, node symbol
	secEdgeTail   = 9  // i32 per edge, node symbol
	secEdgeRel    = 10 // i32 per edge, relation symbol
	secEdgeDom    = 11 // i32 per edge, domain symbol
	secEdgeBeh    = 12 // u8 per edge, index into secBehs
	secEdgeSup    = 13 // i32 per edge, support count
	secEdgePla    = 14 // f64 per edge, plausibility score
	secEdgeTyp    = 15 // f64 per edge, typicality score
	secHeadOff    = 16 // i32 × (nodes+1), byHead CSR offsets
	secHeadIdx    = 17 // i32 per edge, byHead CSR indexes
	secTailOff    = 18 // i32 × (nodes+1), byTail CSR offsets
	secTailIdx    = 19 // i32 per edge, byTail CSR indexes
	secRelOff     = 20 // i32 × (relations+1), byRel CSR offsets
	secRelIdx     = 21 // i32 per edge, byRel CSR indexes
	secDomOff     = 22 // i32 × (domains+1), byDom CSR offsets
	secDomIdx     = 23 // i32 per edge, byDom CSR indexes
)

// sectionOrder fixes the canonical write order; the reader accepts any
// table order but requires each id exactly once.
var sectionOrder = []uint32{
	secNodeIDs, secNodeLabels, secNodeTypes, secNodeTypeIx,
	secRels, secDoms, secBehs,
	secEdgeHead, secEdgeTail, secEdgeRel, secEdgeDom,
	secEdgeBeh, secEdgeSup, secEdgePla, secEdgeTyp,
	secHeadOff, secHeadIdx, secTailOff, secTailIdx,
	secRelOff, secRelIdx, secDomOff, secDomIdx,
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// IsSnapshotHeader reports whether b (the first bytes of a file) opens
// a binary snapshot; callers use it to sniff .cosmo vs gob inputs.
func IsSnapshotHeader(b []byte) bool {
	return len(b) >= len(snapshotMagic) && string(b[:len(snapshotMagic)]) == snapshotMagic
}

// crcWriter tees everything written through a CRC-64 so the footer
// checksum covers the exact bytes on the wire.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash64
	err error
}

func (cw *crcWriter) write(p []byte) {
	if cw.err != nil {
		return
	}
	if _, err := cw.w.Write(p); err != nil {
		cw.err = err
		return
	}
	cw.crc.Write(p) //cosmo:lint-ignore dropped-error hash.Hash Write never fails by contract
}

func (cw *crcWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	cw.write(b[:])
}

func (cw *crcWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	cw.write(b[:])
}

// u32n writes a non-negative int count as u32, failing the stream if
// the value cannot be represented instead of truncating silently. The
// freeze capacity guards keep real snapshots far inside the bound;
// this is the on-disk backstop.
func (cw *crcWriter) u32n(n int) {
	if n < 0 || uint64(n) > math.MaxUint32 {
		cw.err = fmt.Errorf("kg: snapshot: count %d does not fit in u32", n)
		return
	}
	cw.u32(uint32(n))
}

// chunk is the staging buffer for numeric array sections: elements are
// encoded into it and flushed in blocks so the writer never
// materializes a whole section in memory.
const chunkElems = 8192

func (cw *crcWriter) i32s(xs []int32) {
	var buf [chunkElems * 4]byte
	for len(xs) > 0 {
		n := min(len(xs), chunkElems)
		for i, v := range xs[:n] {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(v))
		}
		cw.write(buf[:n*4])
		xs = xs[n:]
	}
}

func (cw *crcWriter) f64s(xs []float64) {
	var buf [chunkElems * 8]byte
	for len(xs) > 0 {
		n := min(len(xs), chunkElems)
		for i, v := range xs[:n] {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		cw.write(buf[:n*8])
		xs = xs[n:]
	}
}

func (cw *crcWriter) stringList(xs []string) {
	cw.u32n(len(xs))
	for _, s := range xs {
		cw.u32n(len(s))
		cw.write([]byte(s))
	}
}

// stringListLen is the encoded size of a string-list section.
func stringListLen(xs []string) uint64 {
	n := uint64(4)
	for _, s := range xs {
		n += 4 + uint64(len(s))
	}
	return n
}

// internStrings builds the sorted unique table over xs plus the
// per-element index into it. The table is capped at 256 entries (the
// index is one byte); node and behavior types are tiny closed sets.
func internStrings(xs []string) (table []string, idx []uint8, err error) {
	seen := map[string]bool{}
	for _, s := range xs {
		if !seen[s] {
			seen[s] = true
			table = append(table, s)
		}
	}
	sort.Strings(table)
	if len(table) > 256 {
		return nil, nil, fmt.Errorf("kg: snapshot: %d distinct interned values exceed the u8 index space", len(table))
	}
	pos := make(map[string]uint8, len(table))
	for i, s := range table {
		pos[s] = uint8(i)
	}
	idx = make([]uint8, len(xs))
	for i, s := range xs {
		idx[i] = pos[s]
	}
	return table, idx, nil
}

// WriteSnapshot encodes the snapshot in the versioned binary format.
// The write is streaming — section lengths are computed analytically,
// so no section is materialized in memory — and finishes with the
// CRC-64 footer over every byte written.
func (s *Snapshot) WriteSnapshot(w io.Writer) error {
	ntypeStrs := make([]string, len(s.ntypes))
	for i, t := range s.ntypes {
		ntypeStrs[i] = string(t)
	}
	ntypeTable, ntypeIx, err := internStrings(ntypeStrs)
	if err != nil {
		return err
	}
	behStrs := make([]string, len(s.eBeh))
	for i, b := range s.eBeh {
		behStrs[i] = string(b)
	}
	behTable, behIx, err := internStrings(behStrs)
	if err != nil {
		return err
	}
	relStrs := make([]string, len(s.rels))
	for i, r := range s.rels {
		relStrs[i] = string(r)
	}
	domStrs := make([]string, len(s.doms))
	for i, d := range s.doms {
		domStrs[i] = string(d)
	}

	nn, ne := uint64(len(s.ids)), uint64(len(s.eHead))
	lengths := map[uint32]uint64{
		secNodeIDs:    stringListLen(s.ids),
		secNodeLabels: stringListLen(s.labels),
		secNodeTypes:  stringListLen(ntypeTable),
		secNodeTypeIx: nn,
		secRels:       stringListLen(relStrs),
		secDoms:       stringListLen(domStrs),
		secBehs:       stringListLen(behTable),
		secEdgeHead:   ne * 4,
		secEdgeTail:   ne * 4,
		secEdgeRel:    ne * 4,
		secEdgeDom:    ne * 4,
		secEdgeBeh:    ne,
		secEdgeSup:    ne * 4,
		secEdgePla:    ne * 8,
		secEdgeTyp:    ne * 8,
		secHeadOff:    uint64(len(s.byHead.off)) * 4,
		secHeadIdx:    ne * 4,
		secTailOff:    uint64(len(s.byTail.off)) * 4,
		secTailIdx:    ne * 4,
		secRelOff:     uint64(len(s.byRel.off)) * 4,
		secRelIdx:     ne * 4,
		secDomOff:     uint64(len(s.byDom.off)) * 4,
		secDomIdx:     ne * 4,
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &crcWriter{w: bw, crc: crc64.New(crcTable)}
	cw.write([]byte(snapshotMagic))
	cw.u32(snapshotVersion)
	cw.u32n(len(sectionOrder))
	for _, id := range sectionOrder {
		cw.u32(id)
		cw.u64(lengths[id])
	}
	for _, id := range sectionOrder {
		switch id {
		case secNodeIDs:
			cw.stringList(s.ids)
		case secNodeLabels:
			cw.stringList(s.labels)
		case secNodeTypes:
			cw.stringList(ntypeTable)
		case secNodeTypeIx:
			cw.write(ntypeIx)
		case secRels:
			cw.stringList(relStrs)
		case secDoms:
			cw.stringList(domStrs)
		case secBehs:
			cw.stringList(behTable)
		case secEdgeHead:
			cw.i32s(s.eHead)
		case secEdgeTail:
			cw.i32s(s.eTail)
		case secEdgeRel:
			cw.i32s(s.eRel)
		case secEdgeDom:
			cw.i32s(s.eDom)
		case secEdgeBeh:
			cw.write(behIx)
		case secEdgeSup:
			cw.i32s(s.eSup)
		case secEdgePla:
			cw.f64s(s.ePla)
		case secEdgeTyp:
			cw.f64s(s.eTyp)
		case secHeadOff:
			cw.i32s(s.byHead.off)
		case secHeadIdx:
			cw.i32s(s.byHead.idx)
		case secTailOff:
			cw.i32s(s.byTail.off)
		case secTailIdx:
			cw.i32s(s.byTail.idx)
		case secRelOff:
			cw.i32s(s.byRel.off)
		case secRelIdx:
			cw.i32s(s.byRel.idx)
		case secDomOff:
			cw.i32s(s.byDom.off)
		case secDomIdx:
			cw.i32s(s.byDom.idx)
		}
	}
	if cw.err != nil {
		return fmt.Errorf("kg: write snapshot: %w", cw.err)
	}
	sum := cw.crc.Sum64()
	var foot [8]byte
	binary.LittleEndian.PutUint64(foot[:], sum)
	if _, err := bw.Write(foot[:]); err != nil {
		return fmt.Errorf("kg: write snapshot footer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("kg: flush snapshot: %w", err)
	}
	return nil
}

// corrupt wraps a structural or checksum failure with the
// ErrSnapshotCorrupt sentinel.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
}

// ReadSnapshot decodes a binary snapshot. The cost is O(bytes read):
// the flat arrays are copied straight into place and the pre-sorted CSR
// indexes are reused as-is — no Freeze, no sorting, no re-interning.
// (The three symbol-lookup hash maps are rebuilt in one linear pass;
// they are the only derived state.) The whole-file checksum and a full
// structural validation run before any query API can observe the data,
// so a truncated, bit-flipped or adversarial input fails with an error
// wrapping ErrSnapshotCorrupt rather than panicking later.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	crc := crc64.New(crcTable)
	tr := io.TeeReader(br, crc)

	head := make([]byte, len(snapshotMagic)+8)
	if _, err := io.ReadFull(tr, head); err != nil {
		return nil, fmt.Errorf("%w: short header (%v)", ErrSnapshotMagic, err)
	}
	if !IsSnapshotHeader(head) {
		return nil, ErrSnapshotMagic
	}
	version := binary.LittleEndian.Uint32(head[len(snapshotMagic):])
	if version != snapshotVersion {
		return nil, fmt.Errorf("%w: version %d (reader supports %d)", ErrSnapshotVersion, version, snapshotVersion)
	}
	nsect := binary.LittleEndian.Uint32(head[len(snapshotMagic)+4:])
	if int(nsect) != len(sectionOrder) {
		return nil, corrupt("section count %d, want %d", nsect, len(sectionOrder))
	}

	// Section table: every known id exactly once, no unknown ids.
	type sect struct {
		id     uint32
		length uint64
	}
	known := map[uint32]bool{}
	for _, id := range sectionOrder {
		known[id] = true
	}
	table := make([]sect, nsect)
	seen := map[uint32]bool{}
	entry := make([]byte, 12)
	for i := range table {
		if _, err := io.ReadFull(tr, entry); err != nil {
			return nil, corrupt("short section table (%v)", err)
		}
		id := binary.LittleEndian.Uint32(entry)
		if !known[id] {
			return nil, corrupt("unknown section id %d", id)
		}
		if seen[id] {
			return nil, corrupt("duplicate section id %d", id)
		}
		seen[id] = true
		table[i] = sect{id: id, length: binary.LittleEndian.Uint64(entry[4:])}
	}

	// Section bodies, contiguous in table order. io.CopyN into a growing
	// buffer keeps allocation proportional to bytes actually delivered,
	// so a lying length cannot force a huge up-front allocation.
	bodies := make(map[uint32][]byte, nsect)
	for _, t := range table {
		var buf bytes.Buffer
		if n, err := io.CopyN(&buf, tr, int64(t.length)); err != nil {
			return nil, corrupt("section %d: got %d of %d bytes (%v)", t.id, n, t.length, err)
		}
		bodies[t.id] = buf.Bytes()
	}

	// Footer: the checksum is read from the raw stream (it is not part
	// of its own coverage) and compared against the running CRC.
	want := crc.Sum64()
	foot := make([]byte, 8)
	if _, err := io.ReadFull(br, foot); err != nil {
		return nil, corrupt("short checksum footer (%v)", err)
	}
	if got := binary.LittleEndian.Uint64(foot); got != want {
		return nil, corrupt("checksum mismatch: file %016x, computed %016x", got, want)
	}

	return buildSnapshot(bodies)
}

// parseStringList decodes a string-list section, requiring exact
// consumption of the body.
func parseStringList(sec uint32, b []byte) ([]string, error) {
	if len(b) < 4 {
		return nil, corrupt("section %d: string list shorter than its count", sec)
	}
	count := binary.LittleEndian.Uint32(b)
	b = b[4:]
	out := make([]string, 0, min(int(count), len(b)+1))
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			return nil, corrupt("section %d: string %d: missing length", sec, i)
		}
		n := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint64(n) > uint64(len(b)) {
			return nil, corrupt("section %d: string %d: length %d exceeds remaining %d bytes", sec, i, n, len(b))
		}
		out = append(out, string(b[:n]))
		b = b[n:]
	}
	if len(b) != 0 {
		return nil, corrupt("section %d: %d trailing bytes", sec, len(b))
	}
	return out, nil
}

// parseI32s decodes a raw int32 array section.
func parseI32s(sec uint32, b []byte) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, corrupt("section %d: length %d not a multiple of 4", sec, len(b))
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// parseF64s decodes a raw float64 array section.
func parseF64s(sec uint32, b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, corrupt("section %d: length %d not a multiple of 8", sec, len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// validateCSR checks one CSR index: offsets are monotone, cover exactly
// [0, edges), every index is in range, appears exactly once across all
// rows, and lands in the row the edge array assigns it. Row-internal
// sort order is not re-derived here — it is covered by the checksum.
func validateCSR(name string, c csr, rows, edges int, rowOf func(int32) int32, mark []bool) error {
	if len(c.off) != rows+1 {
		return corrupt("%s: %d offsets for %d rows", name, len(c.off), rows)
	}
	if len(c.idx) != edges {
		return corrupt("%s: %d indexes for %d edges", name, len(c.idx), edges)
	}
	if rows > 0 || edges > 0 {
		if c.off[0] != 0 {
			return corrupt("%s: first offset %d, want 0", name, c.off[0])
		}
		if int(c.off[rows]) != edges {
			return corrupt("%s: last offset %d, want %d", name, c.off[rows], edges)
		}
	}
	for r := 0; r < rows; r++ {
		if c.off[r] > c.off[r+1] {
			return corrupt("%s: offsets not monotone at row %d (%d > %d)", name, r, c.off[r], c.off[r+1])
		}
	}
	for i := range mark {
		mark[i] = false
	}
	for r := int32(0); r < int32(rows); r++ {
		for _, e := range c.idx[c.off[r]:c.off[r+1]] {
			if e < 0 || int(e) >= edges {
				return corrupt("%s: row %d: edge index %d out of range [0,%d)", name, r, e, edges)
			}
			if mark[e] {
				return corrupt("%s: edge %d indexed twice", name, e)
			}
			mark[e] = true
			if rowOf(e) != r {
				return corrupt("%s: edge %d filed under row %d, belongs to row %d", name, e, r, rowOf(e))
			}
		}
	}
	return nil
}

// ascending verifies a symbol table is strictly ascending — the
// invariant the snapshot's symbol-order-is-ID-order comparisons and the
// lookup maps depend on.
func ascending(name string, xs []string) error {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] >= xs[i] {
			return corrupt("%s table not strictly ascending at %d (%q >= %q)", name, i, xs[i-1], xs[i])
		}
	}
	return nil
}

// buildSnapshot assembles and validates the Snapshot from parsed
// section bodies. Everything that could later index out of range is
// checked here.
func buildSnapshot(bodies map[uint32][]byte) (*Snapshot, error) {
	s := &Snapshot{}
	var err error
	if s.ids, err = parseStringList(secNodeIDs, bodies[secNodeIDs]); err != nil {
		return nil, err
	}
	if s.labels, err = parseStringList(secNodeLabels, bodies[secNodeLabels]); err != nil {
		return nil, err
	}
	ntypeTable, err := parseStringList(secNodeTypes, bodies[secNodeTypes])
	if err != nil {
		return nil, err
	}
	relStrs, err := parseStringList(secRels, bodies[secRels])
	if err != nil {
		return nil, err
	}
	domStrs, err := parseStringList(secDoms, bodies[secDoms])
	if err != nil {
		return nil, err
	}
	behTable, err := parseStringList(secBehs, bodies[secBehs])
	if err != nil {
		return nil, err
	}

	nn := len(s.ids)
	if len(s.labels) != nn {
		return nil, corrupt("%d labels for %d nodes", len(s.labels), nn)
	}
	ntypeIx := bodies[secNodeTypeIx]
	if len(ntypeIx) != nn {
		return nil, corrupt("%d node-type indexes for %d nodes", len(ntypeIx), nn)
	}
	if err := ascending("node ID", s.ids); err != nil {
		return nil, err
	}
	if err := ascending("relation", relStrs); err != nil {
		return nil, err
	}
	if err := ascending("domain", domStrs); err != nil {
		return nil, err
	}
	s.ntypes = make([]NodeType, nn)
	for i, ix := range ntypeIx {
		if int(ix) >= len(ntypeTable) {
			return nil, corrupt("node %d: type index %d out of range [0,%d)", i, ix, len(ntypeTable))
		}
		s.ntypes[i] = NodeType(ntypeTable[ix])
	}
	s.rels = make([]relations.Relation, len(relStrs))
	for i, r := range relStrs {
		s.rels[i] = relations.Relation(r)
	}
	s.doms = make([]catalog.Category, len(domStrs))
	for i, d := range domStrs {
		s.doms[i] = catalog.Category(d)
	}

	if s.eHead, err = parseI32s(secEdgeHead, bodies[secEdgeHead]); err != nil {
		return nil, err
	}
	if s.eTail, err = parseI32s(secEdgeTail, bodies[secEdgeTail]); err != nil {
		return nil, err
	}
	if s.eRel, err = parseI32s(secEdgeRel, bodies[secEdgeRel]); err != nil {
		return nil, err
	}
	if s.eDom, err = parseI32s(secEdgeDom, bodies[secEdgeDom]); err != nil {
		return nil, err
	}
	if s.eSup, err = parseI32s(secEdgeSup, bodies[secEdgeSup]); err != nil {
		return nil, err
	}
	if s.ePla, err = parseF64s(secEdgePla, bodies[secEdgePla]); err != nil {
		return nil, err
	}
	if s.eTyp, err = parseF64s(secEdgeTyp, bodies[secEdgeTyp]); err != nil {
		return nil, err
	}
	ne := len(s.eHead)
	behIx := bodies[secEdgeBeh]
	for what, n := range map[string]int{
		"tail symbols": len(s.eTail), "relation symbols": len(s.eRel),
		"domain symbols": len(s.eDom), "supports": len(s.eSup),
		"plausibility scores": len(s.ePla), "typicality scores": len(s.eTyp),
		"behavior indexes": len(behIx),
	} {
		if n != ne {
			return nil, corrupt("%d %s for %d edges", n, what, ne)
		}
	}
	s.eBeh = make([]know.BehaviorType, ne)
	for i := 0; i < ne; i++ {
		if h := s.eHead[i]; h < 0 || int(h) >= nn {
			return nil, corrupt("edge %d: head symbol %d out of range [0,%d)", i, h, nn)
		}
		if t := s.eTail[i]; t < 0 || int(t) >= nn {
			return nil, corrupt("edge %d: tail symbol %d out of range [0,%d)", i, t, nn)
		}
		if r := s.eRel[i]; r < 0 || int(r) >= len(s.rels) {
			return nil, corrupt("edge %d: relation symbol %d out of range [0,%d)", i, r, len(s.rels))
		}
		if d := s.eDom[i]; d < 0 || int(d) >= len(s.doms) {
			return nil, corrupt("edge %d: domain symbol %d out of range [0,%d)", i, d, len(s.doms))
		}
		if b := behIx[i]; int(b) >= len(behTable) {
			return nil, corrupt("edge %d: behavior index %d out of range [0,%d)", i, b, len(behTable))
		}
		if s.eSup[i] < 0 {
			return nil, corrupt("edge %d: negative support %d", i, s.eSup[i])
		}
		s.eBeh[i] = know.BehaviorType(behTable[behIx[i]])
	}

	readCSR := func(name string, offSec, idxSec uint32) (csr, error) {
		off, err := parseI32s(offSec, bodies[offSec])
		if err != nil {
			return csr{}, err
		}
		idx, err := parseI32s(idxSec, bodies[idxSec])
		if err != nil {
			return csr{}, err
		}
		return csr{off: off, idx: idx}, nil
	}
	if s.byHead, err = readCSR("byHead", secHeadOff, secHeadIdx); err != nil {
		return nil, err
	}
	if s.byTail, err = readCSR("byTail", secTailOff, secTailIdx); err != nil {
		return nil, err
	}
	if s.byRel, err = readCSR("byRel", secRelOff, secRelIdx); err != nil {
		return nil, err
	}
	if s.byDom, err = readCSR("byDom", secDomOff, secDomIdx); err != nil {
		return nil, err
	}
	mark := make([]bool, ne)
	if err := validateCSR("byHead", s.byHead, nn, ne, func(e int32) int32 { return s.eHead[e] }, mark); err != nil {
		return nil, err
	}
	if err := validateCSR("byTail", s.byTail, nn, ne, func(e int32) int32 { return s.eTail[e] }, mark); err != nil {
		return nil, err
	}
	if err := validateCSR("byRel", s.byRel, len(s.rels), ne, func(e int32) int32 { return s.eRel[e] }, mark); err != nil {
		return nil, err
	}
	if err := validateCSR("byDom", s.byDom, len(s.doms), ne, func(e int32) int32 { return s.eDom[e] }, mark); err != nil {
		return nil, err
	}

	// The only derived state: the symbol-lookup maps and the walk
	// scratch pool. One linear pass; everything else above was a copy.
	s.sym = make(map[string]int32, nn)
	for i, id := range s.ids {
		s.sym[id] = int32(i)
	}
	s.relSym = make(map[relations.Relation]int32, len(s.rels))
	for i, r := range s.rels {
		s.relSym[r] = int32(i)
	}
	s.domSym = make(map[catalog.Category]int32, len(s.doms))
	for i, d := range s.doms {
		s.domSym[d] = int32(i)
	}
	s.scratch.New = func() any { return &relatedScratch{} }
	return s, nil
}

// WriteSnapshotFile packs the snapshot to path, fsync-free but with
// every write and close error surfaced.
func WriteSnapshotFile(path string, s *Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("kg: write snapshot: %w", err)
	}
	if err := s.WriteSnapshot(f); err != nil {
		f.Close() //cosmo:lint-ignore dropped-error already on the error path; the write error is the root cause
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("kg: close snapshot %s: %w", path, err)
	}
	return nil
}

// ReadSnapshotFile loads a packed snapshot from path in O(read).
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kg: read snapshot: %w", err)
	}
	s, err := ReadSnapshot(f)
	f.Close() //cosmo:lint-ignore dropped-error close of a read-only file; the decode outcome is what matters
	if err != nil {
		return nil, fmt.Errorf("kg: read snapshot %s: %w", path, err)
	}
	return s, nil
}
