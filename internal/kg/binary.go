// Binary snapshot persistence: a versioned, checksummed flat encoding
// of the frozen Snapshot so cosmo-kg can build a graph once and
// cosmo-serve can load it in O(read) — no re-interning, no re-sorting,
// no CSR rebuild. The mutable-Graph gob format pays a full Freeze()
// (hash, sort, index) on every load; at the paper's million-edge scale
// that dominates startup, so the interned CSR arrays themselves are the
// durable artifact here.
//
// Two format versions share the magic and section vocabulary (all
// integers little-endian; see DESIGN.md, "Binary snapshot persistence"
// and "Memory-mapped serving", for the normative spec):
//
// Version 1 (legacy; still read, no longer written by default):
//
//	magic   [8]byte  "COSMOSNP"
//	version uint32   1
//	nsect   uint32   section count
//	table   nsect ×  { id uint32, length uint64 }
//	body    the sections, contiguous, in table order
//	footer  uint64   CRC-64/ECMA of every preceding byte
//
// Version 2 (current) trades the whole-file footer for a per-section
// CRC-64 in the table and 8-byte section alignment, which is what lets
// kg.MapSnapshot alias the numeric arrays straight out of an mmap'd
// file and validate each section lazily on first touch:
//
//	magic    [8]byte  "COSMOSNP"
//	version  uint32   2
//	nsect    uint32   section count
//	table    nsect ×  { id uint32, reserved uint32 = 0,
//	                    offset uint64, length uint64, crc uint64 }
//	tablecrc uint64   CRC-64/ECMA of every preceding byte
//	body     the sections at their table offsets, each offset 8-byte
//	         aligned, zero padding between sections, no trailing pad
//
// Each v2 section crc covers exactly its length payload bytes (never
// the padding, which readers require to be zero). The tablecrc seals
// the header and table — and, because the table contains every
// section's crc, it is a content fingerprint for the whole artifact
// (cosmo-serve uses it to skip reloading an unchanged file).
//
// String-list sections are a uint32 count followed by count ×
// (uint32 length + raw bytes). Numeric sections are raw arrays (the
// element count is the section length over the element width). Node
// types and behavior types are interned through their own small string
// tables with one index byte per node/edge — the same u8-over-table
// layout the in-memory Snapshot now uses, so neither writing nor
// loading re-interns anything.
//
// ReadSnapshot verifies the checksums (whole-file for v1, per-section
// for v2) and structurally validates every section (counts consistent,
// symbols in range, CSR offsets monotone and exhaustive) before
// building the snapshot, so a corrupt or adversarial input returns an
// error instead of panicking — or worse, serving wrong edges. Decode
// failures detected inside a section are reported as a *SectionError
// naming the section and its byte offset, so triaging a damaged
// artifact does not require a hex dump.
package kg

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc64"
	"io"
	"math"
	"os"
	"runtime"

	"cosmo/internal/catalog"
	"cosmo/internal/know"
	"cosmo/internal/relations"
)

// snapshotMagic opens every binary snapshot file.
const snapshotMagic = "COSMOSNP"

// Format versions. WriteSnapshot emits snapshotVersion; the reader
// accepts both. Any change to the layout — new sections, changed
// encodings, changed sort invariants — bumps the current version;
// readers reject versions they do not know.
const (
	snapshotVersionLegacy = 1
	snapshotVersion       = 2
)

// Sentinel errors for the three failure classes of ReadSnapshot.
// Structural and checksum failures wrap ErrSnapshotCorrupt so callers
// can distinguish "not a snapshot" from "a damaged snapshot".
var (
	ErrSnapshotMagic   = errors.New("kg: not a snapshot file (bad magic)")
	ErrSnapshotVersion = errors.New("kg: unsupported snapshot version")
	ErrSnapshotCorrupt = errors.New("kg: snapshot corrupt")
)

// Section identifiers. Both versions require every section exactly once.
const (
	secNodeIDs    = 1  // string list, strictly ascending node IDs
	secNodeLabels = 2  // string list, one label per node
	secNodeTypes  = 3  // string list, interned NodeType table
	secNodeTypeIx = 4  // u8 per node, index into secNodeTypes
	secRels       = 5  // string list, strictly ascending relations
	secDoms       = 6  // string list, strictly ascending domains
	secBehs       = 7  // string list, interned BehaviorType table
	secEdgeHead   = 8  // i32 per edge, node symbol
	secEdgeTail   = 9  // i32 per edge, node symbol
	secEdgeRel    = 10 // i32 per edge, relation symbol
	secEdgeDom    = 11 // i32 per edge, domain symbol
	secEdgeBeh    = 12 // u8 per edge, index into secBehs
	secEdgeSup    = 13 // i32 per edge, support count
	secEdgePla    = 14 // f64 per edge, plausibility score
	secEdgeTyp    = 15 // f64 per edge, typicality score
	secHeadOff    = 16 // i32 × (nodes+1), byHead CSR offsets
	secHeadIdx    = 17 // i32 per edge, byHead CSR indexes
	secTailOff    = 18 // i32 × (nodes+1), byTail CSR offsets
	secTailIdx    = 19 // i32 per edge, byTail CSR indexes
	secRelOff     = 20 // i32 × (relations+1), byRel CSR offsets
	secRelIdx     = 21 // i32 per edge, byRel CSR indexes
	secDomOff     = 22 // i32 × (domains+1), byDom CSR offsets
	secDomIdx     = 23 // i32 per edge, byDom CSR indexes
)

// sectionOrder fixes the canonical write order; the reader accepts any
// table order but requires each id exactly once.
var sectionOrder = []uint32{
	secNodeIDs, secNodeLabels, secNodeTypes, secNodeTypeIx,
	secRels, secDoms, secBehs,
	secEdgeHead, secEdgeTail, secEdgeRel, secEdgeDom,
	secEdgeBeh, secEdgeSup, secEdgePla, secEdgeTyp,
	secHeadOff, secHeadIdx, secTailOff, secTailIdx,
	secRelOff, secRelIdx, secDomOff, secDomIdx,
}

// sectionNames label sections in SectionError messages.
var sectionNames = map[uint32]string{
	secNodeIDs: "node-ids", secNodeLabels: "node-labels",
	secNodeTypes: "node-type-table", secNodeTypeIx: "node-type-index",
	secRels: "relations", secDoms: "domains", secBehs: "behavior-table",
	secEdgeHead: "edge-heads", secEdgeTail: "edge-tails",
	secEdgeRel: "edge-relations", secEdgeDom: "edge-domains",
	secEdgeBeh: "edge-behaviors", secEdgeSup: "edge-supports",
	secEdgePla: "edge-plausibility", secEdgeTyp: "edge-typicality",
	secHeadOff: "byhead-offsets", secHeadIdx: "byhead-indexes",
	secTailOff: "bytail-offsets", secTailIdx: "bytail-indexes",
	secRelOff: "byrel-offsets", secRelIdx: "byrel-indexes",
	secDomOff: "bydom-offsets", secDomIdx: "bydom-indexes",
}

// SectionName returns the human-readable name of a section id (for
// error messages and tooling); unknown ids format as "section-N".
func SectionName(id uint32) string {
	if n, ok := sectionNames[id]; ok {
		return n
	}
	return fmt.Sprintf("section-%d", id)
}

// SectionError attributes a snapshot decode or validation failure to
// the file section it was detected in: the section id and the byte
// offset of that section's body in the file. It wraps
// ErrSnapshotCorrupt, so errors.Is(err, ErrSnapshotCorrupt) keeps
// working, and errors.As(&SectionError{}) recovers the attribution.
type SectionError struct {
	Section uint32 // section id (sec* constants)
	Offset  int64  // byte offset of the section body in the file
	Err     error  // the underlying decode/validation failure
}

func (e *SectionError) Error() string {
	return fmt.Sprintf("kg: snapshot corrupt: section %s (id %d) at offset %d: %v",
		SectionName(e.Section), e.Section, e.Offset, e.Err)
}

// Unwrap exposes both the corrupt sentinel and the underlying cause.
func (e *SectionError) Unwrap() []error { return []error{ErrSnapshotCorrupt, e.Err} }

// secErr wraps a failure with its section attribution; nil stays nil.
func secErr(sec uint32, off int64, err error) error {
	if err == nil {
		return nil
	}
	return &SectionError{Section: sec, Offset: off, Err: err}
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// align8 rounds up to the next 8-byte boundary (v2 section alignment:
// every numeric array starts 8-aligned so float64 and int32 sections
// can be aliased in place by the mmap loader).
func align8(x uint64) uint64 { return (x + 7) &^ 7 }

// v2 fixed sizes: the 16-byte header (magic + version + nsect), one
// 32-byte table entry per section, and the 8-byte table checksum.
const (
	v2HeaderLen     = len(snapshotMagic) + 8
	v2TableEntryLen = 32
)

// v2BodyStart is the offset of the first section body in a v2 file.
func v2BodyStart() uint64 {
	return uint64(v2HeaderLen + len(sectionOrder)*v2TableEntryLen + 8)
}

// IsSnapshotHeader reports whether b (the first bytes of a file) opens
// a binary snapshot; callers use it to sniff .cosmo vs gob inputs.
func IsSnapshotHeader(b []byte) bool {
	return len(b) >= len(snapshotMagic) && string(b[:len(snapshotMagic)]) == snapshotMagic
}

// crcWriter tees everything written through a CRC-64 so checksums
// cover the exact bytes on the wire.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash64
	err error
}

func (cw *crcWriter) write(p []byte) {
	if cw.err != nil {
		return
	}
	if _, err := cw.w.Write(p); err != nil {
		cw.err = err
		return
	}
	cw.crc.Write(p) //cosmo:lint-ignore dropped-error hash.Hash Write never fails by contract
}

func (cw *crcWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	cw.write(b[:])
}

func (cw *crcWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	cw.write(b[:])
}

// u32n writes a non-negative int count as u32, failing the stream if
// the value cannot be represented instead of truncating silently. The
// freeze capacity guards keep real snapshots far inside the bound;
// this is the on-disk backstop.
func (cw *crcWriter) u32n(n int) {
	if n < 0 || uint64(n) > math.MaxUint32 {
		cw.err = fmt.Errorf("kg: snapshot: count %d does not fit in u32", n)
		return
	}
	cw.u32(uint32(n))
}

// chunk is the staging buffer for numeric array sections: elements are
// encoded into it and flushed in blocks so the writer never
// materializes a whole section in memory.
const chunkElems = 8192

func (cw *crcWriter) i32s(xs []int32) {
	var buf [chunkElems * 4]byte
	for len(xs) > 0 {
		n := min(len(xs), chunkElems)
		for i, v := range xs[:n] {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(v))
		}
		cw.write(buf[:n*4])
		xs = xs[n:]
	}
}

func (cw *crcWriter) f64s(xs []float64) {
	var buf [chunkElems * 8]byte
	for len(xs) > 0 {
		n := min(len(xs), chunkElems)
		for i, v := range xs[:n] {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		cw.write(buf[:n*8])
		xs = xs[n:]
	}
}

func (cw *crcWriter) stringList(xs []string) {
	cw.u32n(len(xs))
	for _, s := range xs {
		cw.u32n(len(s))
		cw.write([]byte(s))
	}
}

// stringListLen is the encoded size of a string-list section.
func stringListLen(xs []string) uint64 {
	n := uint64(4)
	for _, s := range xs {
		n += 4 + uint64(len(s))
	}
	return n
}

// sectionStrings carries the []string views of the snapshot's typed
// string tables, built once per write.
type sectionStrings struct {
	ntypes, behs, rels, doms []string
}

func (s *Snapshot) sectionStrings() sectionStrings {
	var ss sectionStrings
	ss.ntypes = make([]string, len(s.ntypeTable))
	for i, t := range s.ntypeTable {
		ss.ntypes[i] = string(t)
	}
	ss.behs = make([]string, len(s.behTable))
	for i, b := range s.behTable {
		ss.behs[i] = string(b)
	}
	ss.rels = make([]string, len(s.rels))
	for i, r := range s.rels {
		ss.rels[i] = string(r)
	}
	ss.doms = make([]string, len(s.doms))
	for i, d := range s.doms {
		ss.doms[i] = string(d)
	}
	return ss
}

// sectionLengths computes every section's encoded length analytically,
// so the writers can emit the table before any body bytes exist.
func (s *Snapshot) sectionLengths(ss sectionStrings) map[uint32]uint64 {
	nn, ne := uint64(len(s.ids)), uint64(len(s.eHead))
	return map[uint32]uint64{
		secNodeIDs:    stringListLen(s.ids),
		secNodeLabels: stringListLen(s.labels),
		secNodeTypes:  stringListLen(ss.ntypes),
		secNodeTypeIx: nn,
		secRels:       stringListLen(ss.rels),
		secDoms:       stringListLen(ss.doms),
		secBehs:       stringListLen(ss.behs),
		secEdgeHead:   ne * 4,
		secEdgeTail:   ne * 4,
		secEdgeRel:    ne * 4,
		secEdgeDom:    ne * 4,
		secEdgeBeh:    ne,
		secEdgeSup:    ne * 4,
		secEdgePla:    ne * 8,
		secEdgeTyp:    ne * 8,
		secHeadOff:    uint64(len(s.byHead.off)) * 4,
		secHeadIdx:    ne * 4,
		secTailOff:    uint64(len(s.byTail.off)) * 4,
		secTailIdx:    ne * 4,
		secRelOff:     uint64(len(s.byRel.off)) * 4,
		secRelIdx:     ne * 4,
		secDomOff:     uint64(len(s.byDom.off)) * 4,
		secDomIdx:     ne * 4,
	}
}

// writeSectionBody encodes one section through cw. Shared by the v1
// writer, the v2 checksum pass and the v2 write pass, so the encoding
// cannot drift between them.
func (s *Snapshot) writeSectionBody(cw *crcWriter, ss sectionStrings, id uint32) {
	switch id {
	case secNodeIDs:
		cw.stringList(s.ids)
	case secNodeLabels:
		cw.stringList(s.labels)
	case secNodeTypes:
		cw.stringList(ss.ntypes)
	case secNodeTypeIx:
		cw.write(s.ntypes)
	case secRels:
		cw.stringList(ss.rels)
	case secDoms:
		cw.stringList(ss.doms)
	case secBehs:
		cw.stringList(ss.behs)
	case secEdgeHead:
		cw.i32s(s.eHead)
	case secEdgeTail:
		cw.i32s(s.eTail)
	case secEdgeRel:
		cw.i32s(s.eRel)
	case secEdgeDom:
		cw.i32s(s.eDom)
	case secEdgeBeh:
		cw.write(s.eBeh)
	case secEdgeSup:
		cw.i32s(s.eSup)
	case secEdgePla:
		cw.f64s(s.ePla)
	case secEdgeTyp:
		cw.f64s(s.eTyp)
	case secHeadOff:
		cw.i32s(s.byHead.off)
	case secHeadIdx:
		cw.i32s(s.byHead.idx)
	case secTailOff:
		cw.i32s(s.byTail.off)
	case secTailIdx:
		cw.i32s(s.byTail.idx)
	case secRelOff:
		cw.i32s(s.byRel.off)
	case secRelIdx:
		cw.i32s(s.byRel.idx)
	case secDomOff:
		cw.i32s(s.byDom.off)
	case secDomIdx:
		cw.i32s(s.byDom.idx)
	}
}

// WriteSnapshot encodes the snapshot in the current binary format
// version (v2: per-section CRC-64, 8-byte aligned sections). The write
// is streaming — section lengths are computed analytically and the v2
// checksum pass encodes through the CRC without buffering — so no
// section is ever materialized in memory.
func (s *Snapshot) WriteSnapshot(w io.Writer) error {
	return s.WriteSnapshotVersion(w, snapshotVersion)
}

// WriteSnapshotVersion encodes the snapshot in an explicit format
// version: 2 (current) or 1 (legacy, for artifacts that must remain
// readable by pre-v2 deployments).
func (s *Snapshot) WriteSnapshotVersion(w io.Writer, version uint32) error {
	s.touch(maskAll) // re-encoding reads every aliased section
	switch version {
	case snapshotVersionLegacy:
		return s.writeSnapshotV1(w)
	case snapshotVersion:
		return s.writeSnapshotV2(w)
	}
	return fmt.Errorf("%w: cannot write version %d (writer supports %d and %d)",
		ErrSnapshotVersion, version, snapshotVersionLegacy, snapshotVersion)
}

// writeSnapshotV1 emits the legacy layout: {id,len} table, contiguous
// unaligned bodies, whole-file CRC-64 footer.
func (s *Snapshot) writeSnapshotV1(w io.Writer) error {
	ss := s.sectionStrings()
	lengths := s.sectionLengths(ss)

	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &crcWriter{w: bw, crc: crc64.New(crcTable)}
	cw.write([]byte(snapshotMagic))
	cw.u32(snapshotVersionLegacy)
	cw.u32n(len(sectionOrder))
	for _, id := range sectionOrder {
		cw.u32(id)
		cw.u64(lengths[id])
	}
	for _, id := range sectionOrder {
		s.writeSectionBody(cw, ss, id)
	}
	if cw.err != nil {
		return fmt.Errorf("kg: write snapshot: %w", cw.err)
	}
	sum := cw.crc.Sum64()
	var foot [8]byte
	binary.LittleEndian.PutUint64(foot[:], sum)
	if _, err := bw.Write(foot[:]); err != nil {
		return fmt.Errorf("kg: write snapshot footer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("kg: flush snapshot: %w", err)
	}
	runtime.KeepAlive(s) // aliased sections must outlive the encode (mmap-backed snapshots)
	return nil
}

// writeSnapshotV2 emits the current layout. Pass one streams every
// section through a CRC-only writer to fill the table's per-section
// checksums (no buffering); pass two writes the real bytes.
func (s *Snapshot) writeSnapshotV2(w io.Writer) error {
	ss := s.sectionStrings()
	lengths := s.sectionLengths(ss)

	offs := make(map[uint32]uint64, len(sectionOrder))
	pos := v2BodyStart()
	for _, id := range sectionOrder {
		offs[id] = pos
		pos = align8(pos + lengths[id])
	}

	crcs := make(map[uint32]uint64, len(sectionOrder))
	for _, id := range sectionOrder {
		cc := &crcWriter{w: io.Discard, crc: crc64.New(crcTable)}
		s.writeSectionBody(cc, ss, id)
		if cc.err != nil {
			return fmt.Errorf("kg: write snapshot (checksum pass): %w", cc.err)
		}
		crcs[id] = cc.crc.Sum64()
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &crcWriter{w: bw, crc: crc64.New(crcTable)}
	cw.write([]byte(snapshotMagic))
	cw.u32(snapshotVersion)
	cw.u32n(len(sectionOrder))
	for _, id := range sectionOrder {
		cw.u32(id)
		cw.u32(0) // reserved
		cw.u64(offs[id])
		cw.u64(lengths[id])
		cw.u64(crcs[id])
	}
	tableCRC := cw.crc.Sum64() // header + table, before the seal itself
	cw.u64(tableCRC)

	var pad [8]byte
	at := v2BodyStart()
	for _, id := range sectionOrder {
		cw.write(pad[:offs[id]-at]) // zero padding up to the aligned offset
		s.writeSectionBody(cw, ss, id)
		at = offs[id] + lengths[id]
	}
	if cw.err != nil {
		return fmt.Errorf("kg: write snapshot: %w", cw.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("kg: flush snapshot: %w", err)
	}
	runtime.KeepAlive(s) // aliased sections must outlive the encode (mmap-backed snapshots)
	return nil
}

// corrupt wraps a structural or checksum failure with the
// ErrSnapshotCorrupt sentinel.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
}

// ReadSnapshot decodes a binary snapshot (either version) by copying
// it onto the heap. The cost is O(bytes read): the flat arrays are
// copied straight into place and the pre-sorted CSR indexes are reused
// as-is — no Freeze, no sorting, no re-interning. (The three
// symbol-lookup hash maps are rebuilt in one linear pass; they are the
// only derived state.) The checksums and a full structural validation
// run before any query API can observe the data, so a truncated,
// bit-flipped or adversarial input fails with an error wrapping
// ErrSnapshotCorrupt — attributed to the damaged section where
// detectable — rather than panicking later. For a zero-copy load that
// defers section validation to first touch, see MapSnapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, v2HeaderLen)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header (%v)", ErrSnapshotMagic, err)
	}
	if !IsSnapshotHeader(head) {
		return nil, ErrSnapshotMagic
	}
	version := binary.LittleEndian.Uint32(head[len(snapshotMagic):])
	nsect := binary.LittleEndian.Uint32(head[len(snapshotMagic)+4:])
	if int(nsect) != len(sectionOrder) {
		return nil, corrupt("section count %d, want %d", nsect, len(sectionOrder))
	}
	switch version {
	case snapshotVersionLegacy:
		return readSnapshotV1(br, head)
	case snapshotVersion:
		return readSnapshotV2(br, head)
	}
	return nil, fmt.Errorf("%w: version %d (reader supports %d and %d)",
		ErrSnapshotVersion, version, snapshotVersionLegacy, snapshotVersion)
}

// readSnapshotV1 decodes the legacy contiguous layout behind its
// whole-file checksum.
func readSnapshotV1(br *bufio.Reader, head []byte) (*Snapshot, error) {
	crc := crc64.New(crcTable)
	crc.Write(head) //cosmo:lint-ignore dropped-error hash.Hash Write never fails by contract
	tr := io.TeeReader(br, crc)

	// Section table: every known id exactly once, no unknown ids.
	type sect struct {
		id     uint32
		length uint64
	}
	known := map[uint32]bool{}
	for _, id := range sectionOrder {
		known[id] = true
	}
	table := make([]sect, len(sectionOrder))
	seen := map[uint32]bool{}
	entry := make([]byte, 12)
	for i := range table {
		if _, err := io.ReadFull(tr, entry); err != nil {
			return nil, corrupt("short section table (%v)", err)
		}
		id := binary.LittleEndian.Uint32(entry)
		if !known[id] {
			return nil, corrupt("unknown section id %d", id)
		}
		if seen[id] {
			return nil, corrupt("duplicate section id %d", id)
		}
		seen[id] = true
		table[i] = sect{id: id, length: binary.LittleEndian.Uint64(entry[4:])}
	}

	// Section bodies, contiguous in table order. io.CopyN into a growing
	// buffer keeps allocation proportional to bytes actually delivered,
	// so a lying length cannot force a huge up-front allocation.
	bodies := make(map[uint32][]byte, len(table))
	offs := make(map[uint32]int64, len(table))
	pos := int64(len(head) + len(table)*12)
	for _, t := range table {
		var buf bytes.Buffer
		offs[t.id] = pos
		if n, err := io.CopyN(&buf, tr, int64(t.length)); err != nil {
			return nil, secErr(t.id, pos, fmt.Errorf("got %d of %d bytes (%v)", n, t.length, err))
		}
		bodies[t.id] = buf.Bytes()
		pos += int64(t.length)
	}

	// Footer: the checksum is read from the raw stream (it is not part
	// of its own coverage) and compared against the running CRC.
	want := crc.Sum64()
	foot := make([]byte, 8)
	if _, err := io.ReadFull(br, foot); err != nil {
		return nil, corrupt("short checksum footer (%v)", err)
	}
	if got := binary.LittleEndian.Uint64(foot); got != want {
		return nil, corrupt("checksum mismatch: file %016x, computed %016x", got, want)
	}

	return buildSnapshot(bodies, offs)
}

// sectV2 is one parsed v2 table entry.
type sectV2 struct {
	id               uint32
	off, length, crc uint64
}

// parseTableV2 decodes and cross-checks the v2 section table from its
// raw bytes (the reader has already verified the tablecrc): every
// known id exactly once, offsets 8-aligned, bodies laid out ascending
// in table order with sub-8-byte gaps starting at v2BodyStart. Returns
// the entries in layout (== table) order.
func parseTableV2(tbl []byte) ([]sectV2, error) {
	known := map[uint32]bool{}
	for _, id := range sectionOrder {
		known[id] = true
	}
	seen := map[uint32]bool{}
	sects := make([]sectV2, len(sectionOrder))
	for i := range sects {
		e := tbl[i*v2TableEntryLen:]
		id := binary.LittleEndian.Uint32(e)
		if !known[id] {
			return nil, corrupt("unknown section id %d", id)
		}
		if seen[id] {
			return nil, corrupt("duplicate section id %d", id)
		}
		seen[id] = true
		if reserved := binary.LittleEndian.Uint32(e[4:]); reserved != 0 {
			return nil, corrupt("section id %d: nonzero reserved field %d", id, reserved)
		}
		sects[i] = sectV2{
			id:     id,
			off:    binary.LittleEndian.Uint64(e[8:]),
			length: binary.LittleEndian.Uint64(e[16:]),
			crc:    binary.LittleEndian.Uint64(e[24:]),
		}
	}
	pos := v2BodyStart()
	for _, t := range sects {
		if t.off%8 != 0 {
			return nil, corrupt("section %s: offset %d not 8-byte aligned", SectionName(t.id), t.off)
		}
		if t.off < pos || t.off-pos >= 8 {
			return nil, corrupt("section %s: offset %d outside the expected [%d,%d) padding window",
				SectionName(t.id), t.off, pos, pos+8)
		}
		if t.off > math.MaxInt64-t.length {
			return nil, corrupt("section %s: offset %d + length %d overflows", SectionName(t.id), t.off, t.length)
		}
		pos = t.off + t.length
	}
	return sects, nil
}

// readSnapshotV2 decodes the aligned per-section-checksum layout from
// a stream: table first (sealed by tablecrc), then each body in layout
// order, verifying zero padding and every section's CRC as it goes.
func readSnapshotV2(br *bufio.Reader, head []byte) (*Snapshot, error) {
	tbl := make([]byte, len(sectionOrder)*v2TableEntryLen)
	if _, err := io.ReadFull(br, tbl); err != nil {
		return nil, corrupt("short section table (%v)", err)
	}
	crc := crc64.New(crcTable)
	crc.Write(head) //cosmo:lint-ignore dropped-error hash.Hash Write never fails by contract
	crc.Write(tbl)  //cosmo:lint-ignore dropped-error hash.Hash Write never fails by contract
	seal := make([]byte, 8)
	if _, err := io.ReadFull(br, seal); err != nil {
		return nil, corrupt("short table checksum (%v)", err)
	}
	if got, want := binary.LittleEndian.Uint64(seal), crc.Sum64(); got != want {
		return nil, corrupt("table checksum mismatch: file %016x, computed %016x", got, want)
	}
	sects, err := parseTableV2(tbl)
	if err != nil {
		return nil, err
	}

	bodies := make(map[uint32][]byte, len(sects))
	offs := make(map[uint32]int64, len(sects))
	pos := v2BodyStart()
	pad := make([]byte, 8)
	for _, t := range sects {
		if gap := t.off - pos; gap > 0 {
			if _, err := io.ReadFull(br, pad[:gap]); err != nil {
				return nil, corrupt("short padding before section %s (%v)", SectionName(t.id), err)
			}
			for _, b := range pad[:gap] {
				if b != 0 {
					return nil, corrupt("nonzero padding before section %s", SectionName(t.id))
				}
			}
		}
		var buf bytes.Buffer
		sum := crc64.New(crcTable)
		if n, err := io.CopyN(&buf, io.TeeReader(br, sum), int64(t.length)); err != nil {
			return nil, secErr(t.id, int64(t.off), fmt.Errorf("got %d of %d bytes (%v)", n, t.length, err))
		}
		if got := sum.Sum64(); got != t.crc {
			return nil, secErr(t.id, int64(t.off),
				fmt.Errorf("checksum mismatch: table %016x, computed %016x", t.crc, got))
		}
		bodies[t.id] = buf.Bytes()
		offs[t.id] = int64(t.off)
		pos = t.off + t.length
	}
	if n, err := br.Read(pad[:1]); n != 0 || !errors.Is(err, io.EOF) {
		return nil, corrupt("trailing data after the last section")
	}
	return buildSnapshot(bodies, offs)
}

// parseStringList decodes a string-list section, requiring exact
// consumption of the body.
func parseStringList(b []byte) ([]string, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("string list shorter than its count")
	}
	count := binary.LittleEndian.Uint32(b)
	b = b[4:]
	out := make([]string, 0, min(int(count), len(b)+1))
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("string %d: missing length", i)
		}
		n := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint64(n) > uint64(len(b)) {
			return nil, fmt.Errorf("string %d: length %d exceeds remaining %d bytes", i, n, len(b))
		}
		out = append(out, string(b[:n]))
		b = b[n:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%d trailing bytes", len(b))
	}
	return out, nil
}

// parseI32s decodes a raw int32 array section.
func parseI32s(b []byte) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("length %d not a multiple of 4", len(b))
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// parseF64s decodes a raw float64 array section.
func parseF64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("length %d not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// validateCSR checks one CSR index: offsets are monotone, cover exactly
// [0, edges), every index is in range, appears exactly once across all
// rows, and lands in the row the edge array assigns it. Row-internal
// sort order is not re-derived here — it is covered by the checksum.
func validateCSR(name string, c csr, rows, edges int, rowOf func(int32) int32, mark []bool) error {
	if len(c.off) != rows+1 {
		return fmt.Errorf("%s: %d offsets for %d rows", name, len(c.off), rows)
	}
	if len(c.idx) != edges {
		return fmt.Errorf("%s: %d indexes for %d edges", name, len(c.idx), edges)
	}
	if rows > 0 || edges > 0 {
		if c.off[0] != 0 {
			return fmt.Errorf("%s: first offset %d, want 0", name, c.off[0])
		}
		if int(c.off[rows]) != edges {
			return fmt.Errorf("%s: last offset %d, want %d", name, c.off[rows], edges)
		}
	}
	for r := 0; r < rows; r++ {
		if c.off[r] > c.off[r+1] {
			return fmt.Errorf("%s: offsets not monotone at row %d (%d > %d)", name, r, c.off[r], c.off[r+1])
		}
	}
	for i := range mark {
		mark[i] = false
	}
	for r := int32(0); r < int32(rows); r++ {
		for _, e := range c.idx[c.off[r]:c.off[r+1]] {
			if e < 0 || int(e) >= edges {
				return fmt.Errorf("%s: row %d: edge index %d out of range [0,%d)", name, r, e, edges)
			}
			if mark[e] {
				return fmt.Errorf("%s: edge %d indexed twice", name, e)
			}
			mark[e] = true
			if rowOf(e) != r {
				return fmt.Errorf("%s: edge %d filed under row %d, belongs to row %d", name, e, r, rowOf(e))
			}
		}
	}
	return nil
}

// ascending verifies a symbol table is strictly ascending — the
// invariant the snapshot's symbol-order-is-ID-order comparisons and the
// lookup maps depend on.
func ascending(name string, xs []string) error {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] >= xs[i] {
			return fmt.Errorf("%s table not strictly ascending at %d (%q >= %q)", name, i, xs[i-1], xs[i])
		}
	}
	return nil
}

// validateStructure runs the full cross-section validation over an
// assembled snapshot: every symbol in range, supports non-negative,
// and all four CSR indexes exact permutations filed under the right
// rows. Shared by the copy loaders (eagerly) and Snapshot.Verify (the
// eager path over a mapped snapshot); errors are attributed to the
// section that owns the violated invariant via offs (nil is fine: the
// offsets then report as 0).
func validateStructure(s *Snapshot, offs map[uint32]int64) error {
	off := func(sec uint32) int64 { return offs[sec] }
	nn, ne := len(s.ids), len(s.eHead)
	for i := 0; i < ne; i++ {
		if h := s.eHead[i]; h < 0 || int(h) >= nn {
			return secErr(secEdgeHead, off(secEdgeHead),
				fmt.Errorf("edge %d: head symbol %d out of range [0,%d)", i, h, nn))
		}
		if t := s.eTail[i]; t < 0 || int(t) >= nn {
			return secErr(secEdgeTail, off(secEdgeTail),
				fmt.Errorf("edge %d: tail symbol %d out of range [0,%d)", i, t, nn))
		}
		if r := s.eRel[i]; r < 0 || int(r) >= len(s.rels) {
			return secErr(secEdgeRel, off(secEdgeRel),
				fmt.Errorf("edge %d: relation symbol %d out of range [0,%d)", i, r, len(s.rels)))
		}
		if d := s.eDom[i]; d < 0 || int(d) >= len(s.doms) {
			return secErr(secEdgeDom, off(secEdgeDom),
				fmt.Errorf("edge %d: domain symbol %d out of range [0,%d)", i, d, len(s.doms)))
		}
		if b := s.eBeh[i]; int(b) >= len(s.behTable) {
			return secErr(secEdgeBeh, off(secEdgeBeh),
				fmt.Errorf("edge %d: behavior index %d out of range [0,%d)", i, b, len(s.behTable)))
		}
		if s.eSup[i] < 0 {
			return secErr(secEdgeSup, off(secEdgeSup),
				fmt.Errorf("edge %d: negative support %d", i, s.eSup[i]))
		}
	}
	for i, ix := range s.ntypes {
		if int(ix) >= len(s.ntypeTable) {
			return secErr(secNodeTypeIx, off(secNodeTypeIx),
				fmt.Errorf("node %d: type index %d out of range [0,%d)", i, ix, len(s.ntypeTable)))
		}
	}
	mark := make([]bool, ne)
	type csrCheck struct {
		name   string
		c      csr
		rows   int
		rowOf  func(int32) int32
		idxSec uint32
	}
	for _, cc := range []csrCheck{
		{"byHead", s.byHead, nn, func(e int32) int32 { return s.eHead[e] }, secHeadIdx},
		{"byTail", s.byTail, nn, func(e int32) int32 { return s.eTail[e] }, secTailIdx},
		{"byRel", s.byRel, len(s.rels), func(e int32) int32 { return s.eRel[e] }, secRelIdx},
		{"byDom", s.byDom, len(s.doms), func(e int32) int32 { return s.eDom[e] }, secDomIdx},
	} {
		if err := validateCSR(cc.name, cc.c, cc.rows, ne, cc.rowOf, mark); err != nil {
			return secErr(cc.idxSec, off(cc.idxSec), err)
		}
	}
	runtime.KeepAlive(s)
	return nil
}

// buildSnapshot assembles and validates the Snapshot from parsed
// section bodies. Everything that could later index out of range is
// checked here.
func buildSnapshot(bodies map[uint32][]byte, offs map[uint32]int64) (*Snapshot, error) {
	s := &Snapshot{}
	var err error
	wrap := func(sec uint32, err error) error { return secErr(sec, offs[sec], err) }
	if s.ids, err = parseStringList(bodies[secNodeIDs]); err != nil {
		return nil, wrap(secNodeIDs, err)
	}
	if s.labels, err = parseStringList(bodies[secNodeLabels]); err != nil {
		return nil, wrap(secNodeLabels, err)
	}
	ntypeTable, err := parseStringList(bodies[secNodeTypes])
	if err != nil {
		return nil, wrap(secNodeTypes, err)
	}
	relStrs, err := parseStringList(bodies[secRels])
	if err != nil {
		return nil, wrap(secRels, err)
	}
	domStrs, err := parseStringList(bodies[secDoms])
	if err != nil {
		return nil, wrap(secDoms, err)
	}
	behTable, err := parseStringList(bodies[secBehs])
	if err != nil {
		return nil, wrap(secBehs, err)
	}

	nn := len(s.ids)
	if nn > math.MaxInt32 {
		return nil, corrupt("%d nodes exceed the int32 symbol space", nn)
	}
	if len(relStrs) > math.MaxInt32 || len(domStrs) > math.MaxInt32 {
		return nil, corrupt("%d relations / %d domains exceed the int32 symbol space",
			len(relStrs), len(domStrs))
	}
	if len(s.labels) != nn {
		return nil, corrupt("%d labels for %d nodes", len(s.labels), nn)
	}
	if len(bodies[secNodeTypeIx]) != nn {
		return nil, corrupt("%d node-type indexes for %d nodes", len(bodies[secNodeTypeIx]), nn)
	}
	if err := ascending("node ID", s.ids); err != nil {
		return nil, wrap(secNodeIDs, err)
	}
	if err := ascending("node type", ntypeTable); err != nil {
		return nil, wrap(secNodeTypes, err)
	}
	if err := ascending("relation", relStrs); err != nil {
		return nil, wrap(secRels, err)
	}
	if err := ascending("domain", domStrs); err != nil {
		return nil, wrap(secDoms, err)
	}
	if err := ascending("behavior", behTable); err != nil {
		return nil, wrap(secBehs, err)
	}
	s.ntypes = bodies[secNodeTypeIx]
	s.ntypeTable = make([]NodeType, len(ntypeTable))
	for i, t := range ntypeTable {
		s.ntypeTable[i] = NodeType(t)
	}
	s.rels = make([]relations.Relation, len(relStrs))
	for i, r := range relStrs {
		s.rels[i] = relations.Relation(r)
	}
	s.doms = make([]catalog.Category, len(domStrs))
	for i, d := range domStrs {
		s.doms[i] = catalog.Category(d)
	}
	s.behTable = make([]know.BehaviorType, len(behTable))
	for i, b := range behTable {
		s.behTable[i] = know.BehaviorType(b)
	}

	if s.eHead, err = parseI32s(bodies[secEdgeHead]); err != nil {
		return nil, wrap(secEdgeHead, err)
	}
	if s.eTail, err = parseI32s(bodies[secEdgeTail]); err != nil {
		return nil, wrap(secEdgeTail, err)
	}
	if s.eRel, err = parseI32s(bodies[secEdgeRel]); err != nil {
		return nil, wrap(secEdgeRel, err)
	}
	if s.eDom, err = parseI32s(bodies[secEdgeDom]); err != nil {
		return nil, wrap(secEdgeDom, err)
	}
	if s.eSup, err = parseI32s(bodies[secEdgeSup]); err != nil {
		return nil, wrap(secEdgeSup, err)
	}
	if s.ePla, err = parseF64s(bodies[secEdgePla]); err != nil {
		return nil, wrap(secEdgePla, err)
	}
	if s.eTyp, err = parseF64s(bodies[secEdgeTyp]); err != nil {
		return nil, wrap(secEdgeTyp, err)
	}
	ne := len(s.eHead)
	s.eBeh = bodies[secEdgeBeh]
	for what, n := range map[string]int{
		"tail symbols": len(s.eTail), "relation symbols": len(s.eRel),
		"domain symbols": len(s.eDom), "supports": len(s.eSup),
		"plausibility scores": len(s.ePla), "typicality scores": len(s.eTyp),
		"behavior indexes": len(s.eBeh),
	} {
		if n != ne {
			return nil, corrupt("%d %s for %d edges", n, what, ne)
		}
	}

	readCSR := func(offSec, idxSec uint32) (csr, error) {
		off, err := parseI32s(bodies[offSec])
		if err != nil {
			return csr{}, wrap(offSec, err)
		}
		idx, err := parseI32s(bodies[idxSec])
		if err != nil {
			return csr{}, wrap(idxSec, err)
		}
		return csr{off: off, idx: idx}, nil
	}
	if s.byHead, err = readCSR(secHeadOff, secHeadIdx); err != nil {
		return nil, err
	}
	if s.byTail, err = readCSR(secTailOff, secTailIdx); err != nil {
		return nil, err
	}
	if s.byRel, err = readCSR(secRelOff, secRelIdx); err != nil {
		return nil, err
	}
	if s.byDom, err = readCSR(secDomOff, secDomIdx); err != nil {
		return nil, err
	}
	if err := validateStructure(s, offs); err != nil {
		return nil, err
	}

	// The only derived state: the symbol-lookup maps and the walk
	// scratch pool. One linear pass; everything else above was a copy.
	s.sym = make(map[string]int32, nn)
	for i, id := range s.ids {
		s.sym[id] = int32(i)
	}
	s.relSym = make(map[relations.Relation]int32, len(s.rels))
	for i, r := range s.rels {
		s.relSym[r] = int32(i)
	}
	s.domSym = make(map[catalog.Category]int32, len(s.doms))
	for i, d := range s.doms {
		s.domSym[d] = int32(i)
	}
	s.bindDerived()
	return s, nil
}

// WriteSnapshotFile packs the snapshot to path, fsync-free but with
// every write and close error surfaced.
func WriteSnapshotFile(path string, s *Snapshot) error {
	return WriteSnapshotFileVersion(path, s, snapshotVersion)
}

// WriteSnapshotFileVersion packs the snapshot to path in an explicit
// format version (see WriteSnapshotVersion).
func WriteSnapshotFileVersion(path string, s *Snapshot, version uint32) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("kg: write snapshot: %w", err)
	}
	if err := s.WriteSnapshotVersion(f, version); err != nil {
		f.Close() //cosmo:lint-ignore dropped-error already on the error path; the write error is the root cause
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("kg: close snapshot %s: %w", path, err)
	}
	return nil
}

// ReadSnapshotFile loads a packed snapshot from path in O(read).
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kg: read snapshot: %w", err)
	}
	s, err := ReadSnapshot(f)
	f.Close() //cosmo:lint-ignore dropped-error close of a read-only file; the decode outcome is what matters
	if err != nil {
		return nil, fmt.Errorf("kg: read snapshot %s: %w", path, err)
	}
	return s, nil
}
