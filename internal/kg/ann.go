package kg

import (
	"math/rand"
	"sort"
	"sync"

	"cosmo/internal/embedding"
)

// This file implements the approximate-nearest-neighbor retrieval layer
// over the snapshot's intention space: a bit-sampled LSH (SimHash)
// index on the hashed n-gram embeddings of intention labels. The
// salience-ranking and similarity-filter paths need "intentions like
// this text" lookups; before this index that was a linear scan over
// every intention embedding per query. The index is built once per
// snapshot (at load/refresh time) and swapped RCU-style alongside it —
// like the Snapshot, a built SimilarityIndex is immutable and is shared
// freely across goroutines with no locking.
//
// Scheme: each of Tables hash tables projects an embedding onto Bits
// seeded random hyperplanes; the sign pattern is the bucket signature.
// Nearby vectors agree on most signs, so they collide in some table
// with high probability. Lookup gathers bucket candidates with
// multiprobing (widening from the exact signature to 1-bit and 2-bit
// flips until the candidate floor is met), then rescores candidates
// exactly by cosine, so returned scores are identical to the exact
// scan's — only the candidate set is approximate.

// Default LSH shape: chosen so that on harness-scale graphs the probe
// sequence (17 signatures per table per width step across 16 tables)
// reaches the candidate floor within the 1-bit ring for clustered
// queries while the 2-bit ring keeps recall@k >= 0.9 even for queries
// whose true neighbors are only weakly similar.
const (
	DefaultSimilarityDim    = 64
	DefaultSimilarityTables = 16
	DefaultSimilarityBits   = 10
)

// similarityCandidateFloor is the minimum distinct-candidate count
// Lookup tries to gather (scaled by k) before it stops widening probes.
const similarityCandidateFloor = 64

// SimilarityConfig shapes a SimilarityIndex. The zero value gets the
// defaults above; Seed fixes the hyperplane sample, so equal
// (snapshot, config) pairs build identical indexes.
type SimilarityConfig struct {
	Dim    int   // embedding dimension
	Tables int   // number of hash tables
	Bits   int   // hyperplanes (signature bits) per table, max 32
	Seed   int64 // hyperplane sample seed
}

func (c SimilarityConfig) withDefaults() SimilarityConfig {
	if c.Dim <= 0 {
		c.Dim = DefaultSimilarityDim
	}
	if c.Tables <= 0 {
		c.Tables = DefaultSimilarityTables
	}
	if c.Bits <= 0 {
		c.Bits = DefaultSimilarityBits
	}
	if c.Bits > 32 {
		c.Bits = 32
	}
	return c
}

// SimilarMatch is one retrieved intention with its exact cosine score
// against the query.
type SimilarMatch struct {
	ID    string
	Label string
	Score float64
}

// SimilarityIndex is the immutable LSH index over a snapshot's
// intention embeddings. Build once, share freely; pair it with its
// snapshot behind the same atomic swap.
type SimilarityIndex struct {
	snap  *Snapshot
	model *embedding.Model
	cfg   SimilarityConfig

	// planes holds Tables*Bits hyperplanes of Dim floats, flattened.
	planes []float64
	// nodes[p] is the intention symbol at index position p, ascending;
	// vecs holds the matching L2-normalized embeddings, flattened.
	nodes []int32
	vecs  []float64
	// tables[t] maps a signature to the index positions in its bucket.
	tables []map[uint32][]int32

	scratch sync.Pool
}

// simScratch pools the per-lookup accumulators: the per-table query
// signatures, the gathered candidate positions with their dedupe marks,
// and the rescored matches.
type simScratch struct {
	sigs    []uint32
	cand    []int32
	mark    []bool
	matches []SimilarMatch
}

// BuildSimilarityIndex embeds every intention label in the snapshot and
// indexes the non-zero embeddings under cfg's LSH shape. Deterministic
// for equal (snapshot, config).
func BuildSimilarityIndex(s *Snapshot, cfg SimilarityConfig) *SimilarityIndex {
	cfg = cfg.withDefaults()
	ix := &SimilarityIndex{snap: s, model: embedding.New(cfg.Dim), cfg: cfg}

	rng := rand.New(rand.NewSource(cfg.Seed))
	ix.planes = make([]float64, cfg.Tables*cfg.Bits*cfg.Dim)
	for i := range ix.planes {
		ix.planes[i] = rng.NormFloat64()
	}

	s.touch(maskNodeTypes)
	for i := range s.ntypes {
		if s.nodeType(sym32(i)) != NodeIntention {
			continue
		}
		vec := ix.model.Embed(s.labels[i])
		zero := true
		for _, x := range vec {
			if x != 0 {
				zero = false
				break
			}
		}
		if zero {
			// Blank labels embed to the zero vector; it is equidistant
			// from everything, so indexing it would only add noise.
			continue
		}
		ix.nodes = append(ix.nodes, sym32(i))
		ix.vecs = append(ix.vecs, vec...)
	}

	ix.tables = make([]map[uint32][]int32, cfg.Tables)
	for t := range ix.tables {
		ix.tables[t] = map[uint32][]int32{}
	}
	for p := 0; p < len(ix.nodes); p++ {
		vec := ix.vecs[p*cfg.Dim : (p+1)*cfg.Dim]
		for t := 0; t < cfg.Tables; t++ {
			sig := ix.signature(t, vec)
			ix.tables[t][sig] = append(ix.tables[t][sig], sym32(p))
		}
	}

	ix.scratch.New = func() any { return &simScratch{} }
	return ix
}

// Config returns the resolved (defaulted) configuration.
func (ix *SimilarityIndex) Config() SimilarityConfig { return ix.cfg }

// NumIndexed returns how many intentions the index holds.
func (ix *SimilarityIndex) NumIndexed() int { return len(ix.nodes) }

// signature projects vec onto table t's hyperplanes and packs the signs.
func (ix *SimilarityIndex) signature(t int, vec []float64) uint32 {
	var sig uint32
	base := t * ix.cfg.Bits * ix.cfg.Dim
	for b := 0; b < ix.cfg.Bits; b++ {
		plane := ix.planes[base+b*ix.cfg.Dim : base+(b+1)*ix.cfg.Dim]
		dot := 0.0
		for i, x := range vec {
			dot += plane[i] * x
		}
		if dot >= 0 {
			sig |= 1 << b
		}
	}
	return sig
}

// probe appends table t's bucket for sig to the candidate set,
// deduplicating across tables and probes.
func (ix *SimilarityIndex) probe(t int, sig uint32, sc *simScratch) {
	for _, p := range ix.tables[t][sig] {
		if sc.mark[p] {
			continue
		}
		sc.mark[p] = true
		sc.cand = append(sc.cand, p)
	}
}

// emptySimilar is the canonical empty result for blank queries.
var emptySimilar = []SimilarMatch{}

// Lookup returns up to k intentions most similar to q, gathered through
// the LSH tables and rescored by exact cosine (score descending, ID
// ascending on ties — the same order as Exact, so equal candidate sets
// produce byte-equal results). Probing widens from the exact signatures
// through 1-bit and 2-bit flips per table until the candidate floor
// (max(8k, 64) distinct candidates) is met, which keeps recall high on
// sparse harness-scale indexes without giving up sublinear rescoring on
// dense ones.
func (ix *SimilarityIndex) Lookup(q string, k int) []SimilarMatch {
	qvec := ix.model.Embed(q)
	zero := true
	for _, x := range qvec {
		if x != 0 {
			zero = false
			break
		}
	}
	if zero || k <= 0 {
		return emptySimilar
	}

	sc := ix.scratch.Get().(*simScratch)
	if len(sc.mark) < len(ix.nodes) {
		sc.mark = make([]bool, len(ix.nodes))
	}
	if len(sc.sigs) < ix.cfg.Tables {
		sc.sigs = make([]uint32, ix.cfg.Tables)
	}
	for t := 0; t < ix.cfg.Tables; t++ {
		sc.sigs[t] = ix.signature(t, qvec)
	}

	floor := 8 * k
	if floor < similarityCandidateFloor {
		floor = similarityCandidateFloor
	}
	// Width 0: exact signatures.
	for t := 0; t < ix.cfg.Tables; t++ {
		ix.probe(t, sc.sigs[t], sc)
	}
	// Width 1: single-bit flips.
	if len(sc.cand) < floor {
		for t := 0; t < ix.cfg.Tables; t++ {
			for b := 0; b < ix.cfg.Bits; b++ {
				ix.probe(t, sc.sigs[t]^(1<<b), sc)
			}
		}
	}
	// Width 2: double-bit flips.
	if len(sc.cand) < floor {
		for t := 0; t < ix.cfg.Tables; t++ {
			for b1 := 0; b1 < ix.cfg.Bits; b1++ {
				for b2 := b1 + 1; b2 < ix.cfg.Bits; b2++ {
					ix.probe(t, sc.sigs[t]^(1<<b1)^(1<<b2), sc)
				}
			}
		}
	}
	// Probe exhaustion below the floor means the index is sparser than
	// the probe sequence (harness-scale graphs): scan the remainder so a
	// small index never trades recall for nothing. Dense indexes meet
	// the floor within the rings and never take this branch.
	if len(sc.cand) < floor && len(sc.cand) < len(ix.nodes) {
		for p := range ix.nodes {
			if !sc.mark[p] {
				sc.mark[p] = true
				sc.cand = append(sc.cand, sym32(p))
			}
		}
	}

	sc.matches = sc.matches[:0]
	for _, p := range sc.cand {
		sc.matches = append(sc.matches, ix.match(p, qvec))
	}
	out := topKMatches(sc.matches, k)

	for _, p := range sc.cand {
		sc.mark[p] = false
	}
	sc.cand = sc.cand[:0]
	sc.matches = sc.matches[:0]
	ix.scratch.Put(sc)
	return out
}

// Exact returns up to k intentions most similar to q by scanning every
// indexed embedding — the recall baseline and the path the index makes
// obsolete on the hot path.
func (ix *SimilarityIndex) Exact(q string, k int) []SimilarMatch {
	qvec := ix.model.Embed(q)
	zero := true
	for _, x := range qvec {
		if x != 0 {
			zero = false
			break
		}
	}
	if zero || k <= 0 {
		return emptySimilar
	}
	matches := make([]SimilarMatch, 0, len(ix.nodes))
	for p := range ix.nodes {
		matches = append(matches, ix.match(sym32(p), qvec))
	}
	return topKMatches(matches, k)
}

// match rescores index position p against the query vector. Indexed
// vectors and query embeddings are L2-normalized, so the dot product is
// the cosine.
func (ix *SimilarityIndex) match(p int32, qvec []float64) SimilarMatch {
	vec := ix.vecs[int(p)*ix.cfg.Dim : (int(p)+1)*ix.cfg.Dim]
	dot := 0.0
	for i, x := range vec {
		dot += x * qvec[i]
	}
	sym := ix.nodes[p]
	return SimilarMatch{ID: ix.snap.ids[sym], Label: ix.snap.labels[sym], Score: dot}
}

// topKMatches sorts matches best-first (score descending, ID ascending)
// and returns an owned copy of the top k.
func topKMatches(matches []SimilarMatch, k int) []SimilarMatch {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Score != matches[j].Score {
			return matches[i].Score > matches[j].Score
		}
		return matches[i].ID < matches[j].ID
	})
	if k > len(matches) {
		k = len(matches)
	}
	out := make([]SimilarMatch, k)
	copy(out, matches[:k])
	return out
}

// RecallAt measures Lookup's recall against Exact: the mean over
// queries of |ANN ∩ exact| / |exact| at depth k (queries with no exact
// matches are skipped). The experiments harness reports this for the
// scaled graphs; acceptance is >= 0.9.
func (ix *SimilarityIndex) RecallAt(queries []string, k int) float64 {
	sum, n := 0.0, 0
	for _, q := range queries {
		exact := ix.Exact(q, k)
		if len(exact) == 0 {
			continue
		}
		ann := ix.Lookup(q, k)
		inAnn := make(map[string]bool, len(ann))
		for _, m := range ann {
			inAnn[m.ID] = true
		}
		hit := 0
		for _, m := range exact {
			if inAnn[m.ID] {
				hit++
			}
		}
		sum += float64(hit) / float64(len(exact))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
