package kg

import (
	"sort"
	"strings"

	"cosmo/internal/textproc"
)

// HierarchyNode is one node of the intention hierarchy of paper Figure 8:
// coarse-grained intentions ("camping") expand to fine-grained ones
// ("winter camping"), whose leaves link to product concepts
// ("winter boots").
type HierarchyNode struct {
	Label    string
	Children []*HierarchyNode
	// Products are linked product-concept labels (for leaf intents).
	Products []string
	// EdgeCount is the KG support behind this intention.
	EdgeCount int
}

// tailInfo aggregates one intention tail's evidence for hierarchy
// assembly: its label's stemmed content tokens, total edge support,
// and the product labels attached to it.
type tailInfo struct {
	id       string // tail node ID, the deterministic tie-breaker
	label    string
	tokens   map[string]bool
	count    int
	products map[string]bool
}

// BuildHierarchy organizes the graph's intention tails into a
// specialization forest: tail B is a child of tail A when A's content
// tokens are a strict subset of B's (e.g. "camping" ⊂ "winter camping").
// Products attached to an intention in the KG become the leaf links.
// Roots are returned sorted by descending edge support.
func (g *Graph) BuildHierarchy(minSupport int) []*HierarchyNode {
	g.mu.RLock()
	byTail := map[string]*tailInfo{}
	for _, e := range g.edges {
		n := g.nodes[e.Tail]
		in := byTail[e.Tail]
		if in == nil {
			toks := map[string]bool{}
			for _, t := range textproc.StemAll(textproc.ContentTokens(n.Label)) {
				toks[t] = true
			}
			in = &tailInfo{id: e.Tail, label: n.Label, tokens: toks, products: map[string]bool{}}
			byTail[e.Tail] = in
		}
		in.count += e.Support
		if hn, ok := g.nodes[e.Head]; ok && hn.Type == NodeProduct {
			in.products[hn.Label] = true
		}
	}
	g.mu.RUnlock()
	return assembleHierarchy(byTail, minSupport)
}

// assembleHierarchy turns per-tail aggregates into the specialization
// forest. Shared by the mutable Graph and the frozen Snapshot so the
// two read paths produce identical hierarchies.
func assembleHierarchy(byTail map[string]*tailInfo, minSupport int) []*HierarchyNode {
	infos := make([]*tailInfo, 0, len(byTail))
	for _, in := range byTail {
		if in.count >= minSupport && len(in.tokens) > 0 {
			infos = append(infos, in)
		}
	}
	// Sort by token-set size so parents precede children; the tail-ID
	// tie-break makes the order (and so the forest) fully deterministic
	// even when two tails share a label.
	sort.Slice(infos, func(i, j int) bool {
		if len(infos[i].tokens) != len(infos[j].tokens) {
			return len(infos[i].tokens) < len(infos[j].tokens)
		}
		if infos[i].label != infos[j].label {
			return infos[i].label < infos[j].label
		}
		return infos[i].id < infos[j].id
	})
	nodes := make([]*HierarchyNode, len(infos))
	for i, in := range infos {
		products := make([]string, 0, len(in.products))
		for p := range in.products {
			products = append(products, p)
		}
		sort.Strings(products)
		nodes[i] = &HierarchyNode{Label: in.label, Products: products, EdgeCount: in.count}
	}
	// Attach each node to its most specific strict-subset ancestor.
	isSubset := func(a, b map[string]bool) bool {
		if len(a) >= len(b) {
			return false
		}
		for t := range a {
			if !b[t] {
				return false
			}
		}
		return true
	}
	var roots []*HierarchyNode
	for i := range infos {
		bestParent := -1
		for j := i - 1; j >= 0; j-- {
			if isSubset(infos[j].tokens, infos[i].tokens) {
				if bestParent == -1 || len(infos[j].tokens) > len(infos[bestParent].tokens) {
					bestParent = j
				}
			}
		}
		if bestParent >= 0 {
			nodes[bestParent].Children = append(nodes[bestParent].Children, nodes[i])
		} else {
			roots = append(roots, nodes[i])
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].EdgeCount != roots[j].EdgeCount {
			return roots[i].EdgeCount > roots[j].EdgeCount
		}
		return roots[i].Label < roots[j].Label
	})
	return roots
}

// Render pretty-prints a hierarchy subtree to depth levels.
func (n *HierarchyNode) Render(depth int) string {
	var b strings.Builder
	n.render(&b, 0, depth)
	return b.String()
}

func (n *HierarchyNode) render(b *strings.Builder, indent, depth int) {
	b.WriteString(strings.Repeat("  ", indent))
	b.WriteString(n.Label)
	if len(n.Products) > 0 {
		b.WriteString(" -> [")
		max := len(n.Products)
		if max > 3 {
			max = 3
		}
		b.WriteString(strings.Join(n.Products[:max], ", "))
		b.WriteString("]")
	}
	b.WriteString("\n")
	if depth <= 0 {
		return
	}
	for _, c := range n.Children {
		c.render(b, indent+1, depth-1)
	}
}

// Size returns the number of nodes in the subtree.
func (n *HierarchyNode) Size() int {
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}
