package kg

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"cosmo/internal/catalog"
	"cosmo/internal/relations"
)

// danglingGraph builds a graph holding an edge whose tail node is
// missing — a state AddEdge refuses but that corruption, partial loads
// or future delete operations could produce. The test reaches into the
// unexported maps deliberately.
func danglingGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.AddNode(Node{ID: "p:P1", Type: NodeProduct, Label: "tent"})
	g.AddNode(Node{ID: "i:used_for:camping", Type: NodeIntention, Label: "camping"})
	if err := g.AddEdge(Edge{Head: "p:P1", Relation: relations.UsedForEve, Tail: "i:used_for:camping",
		Domain: catalog.Sports, Support: 1}); err != nil {
		t.Fatal(err)
	}
	delete(g.nodes, "i:used_for:camping")
	return g
}

// TestWriteJSONLDanglingEdge is the regression test for the silent
// empty-label bug: a dangling edge used to export a row with
// tail_label "", poisoning downstream feature pipelines. Now the
// export fails naming the edge.
func TestWriteJSONLDanglingEdge(t *testing.T) {
	g := danglingGraph(t)
	var buf bytes.Buffer
	err := g.WriteJSONL(&buf)
	if err == nil {
		t.Fatal("WriteJSONL succeeded on a dangling edge")
	}
	if !strings.Contains(err.Error(), "unknown tail node") || !strings.Contains(err.Error(), "i:used_for:camping") {
		t.Fatalf("error does not name the dangling node: %v", err)
	}
}

// TestWriteTSVDanglingEdge is the same regression for the TSV path.
func TestWriteTSVDanglingEdge(t *testing.T) {
	g := danglingGraph(t)
	var buf bytes.Buffer
	err := g.WriteTSV(&buf)
	if err == nil {
		t.Fatal("WriteTSV succeeded on a dangling edge")
	}
	if !strings.Contains(err.Error(), "unknown tail node") {
		t.Fatalf("error does not report the missing node: %v", err)
	}
}

// failAfterWriter errors once n bytes have been written — it simulates
// a disk filling up mid-write.
type failAfterWriter struct {
	n       int
	written int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errors.New("disk full")
	}
	w.written += len(p)
	return len(p), nil
}

// TestWriteGobSurfacesFlushError is the regression test for the
// unbuffered-gob bug's sibling failure: with buffering, a write error
// that only materializes at flush time must still be reported.
func TestWriteGobSurfacesFlushError(t *testing.T) {
	g := buildTestGraph(t)
	// Small cap: the buffered encoder only hits the sink at flush.
	if err := g.WriteGob(&failAfterWriter{n: 64}); err == nil {
		t.Fatal("WriteGob swallowed the sink's write error")
	}
	// Sanity: the same graph still writes fine to a working sink.
	var buf bytes.Buffer
	if err := g.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGob(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

// TestWriteSnapshotSurfacesWriteError covers the binary writer's error
// path the same way.
func TestWriteSnapshotSurfacesWriteError(t *testing.T) {
	s := buildTestGraph(t).Freeze()
	if err := s.WriteSnapshot(&failAfterWriter{n: 64}); err == nil {
		t.Fatal("WriteSnapshot swallowed the sink's write error")
	}
}

// TestCheckFreezeCapacity exercises the int32 guard directly — the
// counts themselves cannot be constructed in a test process.
func TestCheckFreezeCapacity(t *testing.T) {
	if err := checkFreezeCapacity(10, 20, 3, 4); err != nil {
		t.Fatalf("small graph rejected: %v", err)
	}
	over := math.MaxInt32 + 1
	for name, args := range map[string][4]int{
		"nodes":     {over, 0, 0, 0},
		"edges":     {0, over, 0, 0},
		"relations": {0, 0, over, 0},
		"domains":   {0, 0, 0, over},
	} {
		err := checkFreezeCapacity(args[0], args[1], args[2], args[3])
		if err == nil {
			t.Fatalf("%s over int32 accepted", name)
		}
		if !strings.Contains(err.Error(), name) || !strings.Contains(err.Error(), "int32") {
			t.Fatalf("%s guard error not descriptive: %v", name, err)
		}
	}
}

// TestFreezeCheckedSupportOverflow pins the per-edge support guard: a
// support count beyond int32 used to truncate silently into the
// snapshot's eSup array.
func TestFreezeCheckedSupportOverflow(t *testing.T) {
	g := buildTestGraph(t)
	// Push one edge's merged support past int32 via the mutable store.
	for k := range g.edges {
		g.edges[k].Support = math.MaxInt32 + 1
		break
	}
	if _, err := g.FreezeChecked(); err == nil {
		t.Fatal("FreezeChecked accepted an edge with support > MaxInt32")
	} else if !strings.Contains(err.Error(), "support") {
		t.Fatalf("support guard error not descriptive: %v", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Freeze did not panic on support overflow")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "support") {
			t.Fatalf("Freeze panic lacks the reason: %v", r)
		}
	}()
	g.Freeze()
}

// TestFreezeCheckedMatchesFreeze pins that the checked path returns the
// same snapshot a plain Freeze builds.
func TestFreezeCheckedMatchesFreeze(t *testing.T) {
	g := buildTestGraph(t)
	s, err := g.FreezeChecked()
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotsEqual(t, g.Freeze(), s)
}
