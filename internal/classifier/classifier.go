// Package classifier implements the critic classifiers of §3.3.2: models
// trained on the human-annotated sample that populate plausibility and
// typicality judgments to every knowledge candidate that survived coarse
// filtering. The paper fine-tunes DeBERTa-large; this reproduction uses
// L2-regularized logistic regression over hashed text features, which
// separates the simulator's generation modes with comparable reliability
// and is consumed identically (scores thresholded at 0.5).
package classifier

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"cosmo/internal/know"
	"cosmo/internal/parallel"
	"cosmo/internal/textproc"
)

// Featurizer maps candidates to sparse hashed feature indices.
type Featurizer struct {
	dim int
}

// NewFeaturizer returns a featurizer with the given hash dimension.
func NewFeaturizer(dim int) *Featurizer {
	if dim < 64 {
		dim = 64
	}
	return &Featurizer{dim: dim}
}

// Dim returns the feature space dimension.
func (f *Featurizer) Dim() int { return f.dim }

func (f *Featurizer) hash(s string) int {
	h := fnv.New32a()
	h.Write([]byte(s)) //cosmo:lint-ignore dropped-error hash.Hash Write never returns an error (hash package contract)
	//cosmo:lint-ignore unchecked-narrowing dim is clamped to >= 64 in NewFeaturizer and config dims stay far below 2^32
	return int(h.Sum32() % uint32(f.dim))
}

// Features extracts sparse feature indices for a candidate. Duplicate
// indices are allowed (they act as feature counts).
func (f *Featurizer) Features(c know.Candidate) []int {
	var idx []int
	toks := textproc.StemAll(textproc.Tokenize(c.Text))
	for i, t := range toks {
		idx = append(idx, f.hash("w:"+t))
		if i+1 < len(toks) {
			idx = append(idx, f.hash("b:"+t+"_"+toks[i+1]))
		}
	}
	idx = append(idx,
		f.hash("rel:"+string(c.Relation)),
		f.hash("beh:"+string(c.Behavior)),
		f.hash("dom:"+string(c.Domain)),
		f.hash("len:"+lengthBucket(len(toks))),
	)
	// Overlap between the knowledge text and the behavior context: high
	// overlap signals paraphrase, low overlap signals new information.
	overlap := textproc.TokenOverlap(c.Text, c.ContextText)
	idx = append(idx, f.hash("ovl:"+overlapBucket(overlap)))
	// Cross features between the knowledge content and the product-type
	// labels let the model memorize which intents belong to which types —
	// the world knowledge a fine-tuned LM encodes. For co-buy this is
	// what separates a shared reason from a one-sided one.
	content := toks
	if len(content) > 4 {
		content = content[:4]
	}
	for _, t := range content {
		if textproc.IsStopword(t) {
			continue
		}
		if c.TypeA != "" {
			idx = append(idx, f.hash("x:"+t+"|"+c.TypeA))
		}
		if c.TypeB != "" {
			idx = append(idx, f.hash("x:"+t+"|"+c.TypeB))
		}
	}
	// Full text × type-pair cross (order-normalized): typicality of a
	// co-buy explanation is a property of (knowledge, type pair), so the
	// head memorizes exactly and generalizes through the additive
	// features above for unseen pairs.
	ta, tb := c.TypeA, c.TypeB
	if ta > tb {
		ta, tb = tb, ta
	}
	norm := textproc.Join(toks)
	idx = append(idx, f.hash("t3:"+norm+"|"+ta+"|"+tb))
	return idx
}

func lengthBucket(n int) string {
	switch {
	case n <= 2:
		return "xs"
	case n <= 4:
		return "s"
	case n <= 7:
		return "m"
	default:
		return "l"
	}
}

func overlapBucket(o float64) string {
	switch {
	case o < 0.1:
		return "none"
	case o < 0.3:
		return "low"
	case o < 0.6:
		return "mid"
	default:
		return "high"
	}
}

// LogReg is a binary logistic-regression model over sparse features.
type LogReg struct {
	W    []float64
	Bias float64
}

// TrainConfig controls SGD training.
type TrainConfig struct {
	Epochs int
	LR     float64
	L2     float64
	Seed   int64
}

// DefaultTrainConfig returns sane defaults for the critic heads.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, LR: 0.25, L2: 1e-6, Seed: 23}
}

// TrainLogReg fits a model on sparse samples X with boolean labels y.
func TrainLogReg(dim int, X [][]int, y []bool, cfg TrainConfig) *LogReg {
	m := &LogReg{W: make([]float64, dim)}
	if len(X) == 0 {
		return m
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(X))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := cfg.LR / (1 + 0.3*float64(epoch))
		for _, i := range order {
			p := m.Prob(X[i])
			t := 0.0
			if y[i] {
				t = 1.0
			}
			g := p - t
			for _, j := range X[i] {
				m.W[j] -= lr * (g + cfg.L2*m.W[j])
			}
			m.Bias -= lr * g
		}
	}
	return m
}

// Prob returns P(label=true | x).
func (m *LogReg) Prob(x []int) float64 {
	z := m.Bias
	for _, j := range x {
		if j >= 0 && j < len(m.W) {
			z += m.W[j]
		}
	}
	return sigmoid(z)
}

func sigmoid(z float64) float64 {
	if z > 35 {
		return 1
	}
	if z < -35 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

// Critic bundles the plausibility and typicality heads over a shared
// featurizer — the deployed scoring model of the pipeline.
type Critic struct {
	Feat      *Featurizer
	Plausible *LogReg
	Typical   *LogReg
}

// Labeled pairs a candidate with its adjudicated human labels.
type Labeled struct {
	Candidate know.Candidate
	Plausible bool
	Typical   bool
}

// TrainCritic fits both heads on the annotated sample.
func TrainCritic(dim int, data []Labeled, cfg TrainConfig) *Critic {
	feat := NewFeaturizer(dim)
	X := make([][]int, len(data))
	yp := make([]bool, len(data))
	yt := make([]bool, len(data))
	for i, d := range data {
		X[i] = feat.Features(d.Candidate)
		yp[i] = d.Plausible
		yt[i] = d.Typical
	}
	cfgT := cfg
	cfgT.Seed = cfg.Seed + 1
	return &Critic{
		Feat:      feat,
		Plausible: TrainLogReg(dim, X, yp, cfg),
		Typical:   TrainLogReg(dim, X, yt, cfgT),
	}
}

// Score fills PlausibleScore and TypicalScore on each candidate.
func (c *Critic) Score(cands []know.Candidate) []know.Candidate {
	return c.ScoreParallel(cands, 1)
}

// ScoreParallel scores across the given worker count (<= 0 means
// GOMAXPROCS). Scoring is pure per candidate — featurization and the
// logistic heads only read trained state — so the output is identical
// to Score for every worker count.
func (c *Critic) ScoreParallel(cands []know.Candidate, workers int) []know.Candidate {
	return parallel.Map(workers, cands, func(i int, cd know.Candidate) know.Candidate {
		x := c.Feat.Features(cd)
		cd.PlausibleScore = c.Plausible.Prob(x)
		cd.TypicalScore = c.Typical.Prob(x)
		return cd
	})
}

// Evaluate measures head accuracy and AUC on labeled data.
func (c *Critic) Evaluate(data []Labeled) (plauAcc, typAcc, plauAUC, typAUC float64) {
	if len(data) == 0 {
		return
	}
	var pScores, tScores []float64
	var pLabels, tLabels []bool
	pCorrect, tCorrect := 0, 0
	for _, d := range data {
		x := c.Feat.Features(d.Candidate)
		pp := c.Plausible.Prob(x)
		tp := c.Typical.Prob(x)
		if (pp >= 0.5) == d.Plausible {
			pCorrect++
		}
		if (tp >= 0.5) == d.Typical {
			tCorrect++
		}
		pScores = append(pScores, pp)
		tScores = append(tScores, tp)
		pLabels = append(pLabels, d.Plausible)
		tLabels = append(tLabels, d.Typical)
	}
	n := float64(len(data))
	return float64(pCorrect) / n, float64(tCorrect) / n, AUC(pScores, pLabels), AUC(tScores, tLabels)
}

// AUC computes the area under the ROC curve via the rank statistic.
// Returns 0.5 when one class is absent.
func AUC(scores []float64, labels []bool) float64 {
	type pair struct {
		s   float64
		pos bool
	}
	ps := make([]pair, len(scores))
	npos, nneg := 0, 0
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
		if labels[i] {
			npos++
		} else {
			nneg++
		}
	}
	if npos == 0 || nneg == 0 {
		return 0.5
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	// Sum ranks of positives, handling ties by average rank.
	rankSum := 0.0
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		avgRank := float64(i+j+1) / 2.0 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			if ps[k].pos {
				rankSum += avgRank
			}
		}
		i = j
	}
	return (rankSum - float64(npos)*float64(npos+1)/2.0) / (float64(npos) * float64(nneg))
}
