package classifier

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cosmo/internal/behavior"
	"cosmo/internal/catalog"
	"cosmo/internal/know"
	"cosmo/internal/llm"
)

// corpus builds a mixed candidate corpus with ground-truth labels.
func corpus(tb testing.TB, n int) []Labeled {
	tb.Helper()
	c := catalog.Generate(catalog.Config{ProductsPerType: 4, Seed: 1})
	log := behavior.Simulate(c, behavior.Config{
		Seed: 3, CoBuyEvents: 6000, SearchEvents: 6000,
		NoiseRate: 0.25, BroadQueryRate: 0.4,
	})
	teach := llm.NewTeacher(c, llm.DefaultConfig(llm.OPT30B))
	var out []Labeled
	id := 0
	for _, e := range log.CoBuys {
		if len(out) >= n {
			break
		}
		pa, _ := c.ByID(e.A)
		pb, _ := c.ByID(e.B)
		for _, g := range teach.GenerateCoBuy(pa, pb, 2) {
			id++
			cd := know.Candidate{
				ID: id, Behavior: know.CoBuy, Domain: pa.Category,
				ProductA: e.A, ProductB: e.B, TypeA: pa.Type, TypeB: pb.Type,
				ContextText: pa.Title + " and " + pb.Title,
				Text:        g.Text, Truth: g.Truth,
			}
			out = append(out, Labeled{Candidate: cd, Plausible: g.Truth.Plausible, Typical: g.Truth.Typical})
		}
	}
	// The raw log is sorted by product ID, which follows type order; an
	// unshuffled split would sever whole categories from training.
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func TestCriticSeparatesTypicality(t *testing.T) {
	data := corpus(t, 4000)
	split := len(data) * 4 / 5
	critic := TrainCritic(1<<15, data[:split], DefaultTrainConfig())
	plauAcc, typAcc, plauAUC, typAUC := critic.Evaluate(data[split:])
	if typAcc < 0.90 {
		t.Errorf("typicality accuracy %.3f too low", typAcc)
	}
	if typAUC < 0.90 {
		t.Errorf("typicality AUC %.3f too low", typAUC)
	}
	if plauAcc < 0.85 {
		t.Errorf("plausibility accuracy %.3f too low", plauAcc)
	}
	if plauAUC < 0.85 {
		t.Errorf("plausibility AUC %.3f too low", plauAUC)
	}
}

func TestCriticHighScorePrecision(t *testing.T) {
	// The pipeline consumes the typicality head by thresholding high:
	// candidates scored in the top quintile must be typical far more
	// often than the base rate.
	data := corpus(t, 4000)
	split := len(data) * 4 / 5
	critic := TrainCritic(1<<15, data[:split], DefaultTrainConfig())
	test := data[split:]
	type scored struct {
		s float64
		y bool
	}
	ss := make([]scored, len(test))
	base := 0
	for i, d := range test {
		ss[i] = scored{critic.Typical.Prob(critic.Feat.Features(d.Candidate)), d.Typical}
		if d.Typical {
			base++
		}
	}
	baseRate := float64(base) / float64(len(test))
	sort.Slice(ss, func(i, j int) bool { return ss[i].s > ss[j].s })
	top := ss[:len(ss)/5]
	hits := 0
	for _, s := range top {
		if s.y {
			hits++
		}
	}
	prec := float64(hits) / float64(len(top))
	if prec < baseRate+0.15 {
		t.Errorf("top-quintile precision %.3f not well above base rate %.3f", prec, baseRate)
	}
}

func TestScoreFillsFields(t *testing.T) {
	data := corpus(t, 1000)
	critic := TrainCritic(1<<12, data, DefaultTrainConfig())
	cands := make([]know.Candidate, len(data))
	for i, d := range data {
		cands[i] = d.Candidate
	}
	scored := critic.Score(cands)
	if len(scored) != len(cands) {
		t.Fatalf("scored %d of %d", len(scored), len(cands))
	}
	for _, c := range scored {
		if c.PlausibleScore < 0 || c.PlausibleScore > 1 {
			t.Fatalf("plausible score %v out of range", c.PlausibleScore)
		}
		if c.TypicalScore < 0 || c.TypicalScore > 1 {
			t.Fatalf("typical score %v out of range", c.TypicalScore)
		}
	}
}

func TestLogRegLearnsSeparableData(t *testing.T) {
	// Feature 0 present => positive; feature 1 present => negative.
	X := [][]int{}
	y := []bool{}
	for i := 0; i < 200; i++ {
		X = append(X, []int{0, 2})
		y = append(y, true)
		X = append(X, []int{1, 3})
		y = append(y, false)
	}
	m := TrainLogReg(8, X, y, DefaultTrainConfig())
	if p := m.Prob([]int{0, 2}); p < 0.9 {
		t.Errorf("positive prob %.3f", p)
	}
	if p := m.Prob([]int{1, 3}); p > 0.1 {
		t.Errorf("negative prob %.3f", p)
	}
}

func TestLogRegEmptyTraining(t *testing.T) {
	m := TrainLogReg(16, nil, nil, DefaultTrainConfig())
	if p := m.Prob([]int{1, 2}); p != 0.5 {
		t.Errorf("untrained model prob %v, want 0.5", p)
	}
}

func TestLogRegIgnoresOutOfRangeIndices(t *testing.T) {
	m := &LogReg{W: make([]float64, 4)}
	if p := m.Prob([]int{-1, 100}); p != 0.5 {
		t.Errorf("out-of-range prob %v", p)
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	perfect := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []bool{false, false, true, true})
	if perfect != 1.0 {
		t.Errorf("perfect AUC = %v", perfect)
	}
	inverted := AUC([]float64{0.9, 0.8, 0.2, 0.1}, []bool{false, false, true, true})
	if inverted != 0.0 {
		t.Errorf("inverted AUC = %v", inverted)
	}
	ties := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []bool{false, true, false, true})
	if math.Abs(ties-0.5) > 1e-12 {
		t.Errorf("all-tied AUC = %v", ties)
	}
	oneClass := AUC([]float64{0.3, 0.7}, []bool{true, true})
	if oneClass != 0.5 {
		t.Errorf("single-class AUC = %v", oneClass)
	}
}

func TestFeaturizerDeterministic(t *testing.T) {
	f := NewFeaturizer(1 << 10)
	c := know.Candidate{Text: "capable of holding snacks", Behavior: know.CoBuy}
	a := f.Features(c)
	b := f.Features(c)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("features not deterministic")
		}
	}
	for _, j := range a {
		if j < 0 || j >= f.Dim() {
			t.Fatalf("index %d out of range", j)
		}
	}
}

func TestFeaturizerMinDim(t *testing.T) {
	f := NewFeaturizer(2)
	if f.Dim() != 64 {
		t.Errorf("dim = %d, want 64 floor", f.Dim())
	}
}

func TestCriticDeterministic(t *testing.T) {
	data := corpus(t, 600)
	c1 := TrainCritic(1<<10, data, DefaultTrainConfig())
	c2 := TrainCritic(1<<10, data, DefaultTrainConfig())
	for i := range c1.Plausible.W {
		if c1.Plausible.W[i] != c2.Plausible.W[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func BenchmarkCriticScore(b *testing.B) {
	data := corpus(b, 1000)
	critic := TrainCritic(1<<12, data, DefaultTrainConfig())
	cands := make([]know.Candidate, len(data))
	for i, d := range data {
		cands[i] = d.Candidate
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		critic.Score(cands)
	}
}
