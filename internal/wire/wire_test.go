package wire

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// marshal is the stdlib oracle with the json.Encoder defaults the
// serving handlers used before the hand-rolled encoders (HTML escaping
// on). Encode's trailing newline is stripped; the handler layer adds it
// back explicitly.
func marshal(t *testing.T, v any) string {
	t.Helper()
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	if err := enc.Encode(v); err != nil {
		t.Fatalf("stdlib encode %#v: %v", v, err)
	}
	return strings.TrimSuffix(sb.String(), "\n")
}

// TestAppendStringGolden holds AppendString byte-identical to
// encoding/json across the escaping edge cases: quotes, backslashes,
// every control byte, HTML characters, multi-byte UTF-8, invalid
// UTF-8, and the JSONP line separators.
func TestAppendStringGolden(t *testing.T) {
	cases := []string{
		"",
		"plain ascii",
		`quotes " and \ backslash`,
		"tabs\tnewlines\nreturns\rbackspace\bformfeed\f",
		"\x00\x01\x02\x1e\x1f", // control bytes without short escapes
		"<script>alert('x') & co</script>",
		"héllo wörld — emoji 🏕️ tent",
		"日本語のテキスト",
		"invalid \xff\xfe utf8 \xc3\x28 tail \xe2\x82",
		"line sep \u2028 and para sep \u2029 done",
		"mixed < \xffé\t>&",
		strings.Repeat("a", 100) + "\"" + strings.Repeat("b", 100),
	}
	// Every 1-byte string, to sweep the full ASCII table and each
	// possible lone byte.
	for b := 0; b < 256; b++ {
		cases = append(cases, string([]byte{byte(b)}))
	}
	for _, s := range cases {
		want := marshal(t, s)
		if got := string(AppendString(nil, s)); got != want {
			t.Errorf("AppendString(%q) = %s, want %s", s, got, want)
		}
		if got := string(AppendStringBytes(nil, []byte(s))); got != want {
			t.Errorf("AppendStringBytes(%q) = %s, want %s", s, got, want)
		}
	}
}

// TestAppendFloatGolden pins the float format to encoding/json's: 'f'
// form in the middle range, cleaned 'e' form outside it.
func TestAppendFloatGolden(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.25, 3.1400000000000001,
		1e-6, 9.999999e-7, 1e-7, 1e-9, 2.5e-9, 1e21, 1e20,
		9.99999999e20, 1.0000001e21, 1e300, 5e-324, math.MaxFloat64,
		-1e21, -1e-9, 0.1, 2.0 / 3.0, 1234567890.123456789,
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		cases = append(cases, (rng.Float64()-0.5)*math.Pow(10, float64(rng.Intn(50)-25)))
	}
	for _, f := range cases {
		want := marshal(t, f)
		if got := string(AppendFloat(nil, f)); got != want {
			t.Errorf("AppendFloat(%v) = %s, want %s", f, got, want)
		}
	}
	// NaN and infinities are unencodable by the stdlib (it errors after
	// headers are gone); the wire encoder degrades to null.
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := string(AppendFloat(nil, f)); got != "null" {
			t.Errorf("AppendFloat(%v) = %s, want null", f, got)
		}
	}
}

// TestAppendScalarsGolden covers ints, bools and times.
func TestAppendScalarsGolden(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 42, -9007199254740993, math.MaxInt64, math.MinInt64} {
		if got, want := string(AppendInt(nil, v)), marshal(t, v); got != want {
			t.Errorf("AppendInt(%d) = %s, want %s", v, got, want)
		}
	}
	for _, v := range []uint64{0, 7, math.MaxUint64} {
		if got, want := string(AppendUint(nil, v)), marshal(t, v); got != want {
			t.Errorf("AppendUint(%d) = %s, want %s", v, got, want)
		}
	}
	for _, v := range []bool{true, false} {
		if got, want := string(AppendBool(nil, v)), marshal(t, v); got != want {
			t.Errorf("AppendBool(%v) = %s, want %s", v, got, want)
		}
	}
	times := []time.Time{
		{}, // zero time
		time.Date(2026, 8, 8, 12, 30, 45, 0, time.UTC),
		time.Date(2026, 8, 8, 12, 30, 45, 123456789, time.UTC),
		time.Date(2026, 8, 8, 12, 30, 45, 120000000, time.UTC), // trailing zeros trimmed
		time.Date(1999, 12, 31, 23, 59, 59, 1, time.FixedZone("X", 5*3600+1800)),
	}
	for _, v := range times {
		if got, want := string(AppendTime(nil, v)), marshal(t, v); got != want {
			t.Errorf("AppendTime(%v) = %s, want %s", v, got, want)
		}
	}
}

var allocSink []byte

// TestAppendAllocFree is the runtime oracle for the //cosmo:alloc-free
// annotations: once the destination has capacity, the primitives
// allocate nothing.
func TestAppendAllocFree(t *testing.T) {
	dst := make([]byte, 0, 4096)
	s := "escaping <markup> & \"quotes\" — héllo   done"
	bs := []byte(s)
	ts := time.Date(2026, 8, 8, 12, 30, 45, 123456789, time.UTC)
	allocs := testing.AllocsPerRun(200, func() {
		b := dst[:0]
		b = AppendString(b, s)
		b = AppendStringBytes(b, bs)
		b = AppendFloat(b, 0.123456789)
		b = AppendFloat(b, 2.5e-9)
		b = AppendInt(b, -987654321)
		b = AppendUint(b, 987654321)
		b = AppendBool(b, true)
		b = AppendTime(b, ts)
		b = AppendBinHeader(b, BinIntentions)
		b = AppendBinUvarint(b, 1<<40)
		b = AppendBinString(b, s)
		b = AppendBinStringBytes(b, bs)
		b = AppendBinFloat(b, 0.75)
		allocSink = b
	})
	if allocs != 0 {
		t.Fatalf("append primitives allocate %v per run, want 0", allocs)
	}
}

// TestBufferPool pins the pool lifecycle: Get re-arms length, Put
// recycles bounded capacities and drops oversized ones.
func TestBufferPool(t *testing.T) {
	b := Get()
	if len(b.B) != 0 {
		t.Fatalf("Get returned len %d, want 0", len(b.B))
	}
	b.B = append(b.B, "hello"...)
	Put(b)
	b2 := Get()
	if len(b2.B) != 0 {
		t.Fatalf("recycled buffer has len %d, want 0", len(b2.B))
	}
	Put(b2)

	huge := &Buffer{B: make([]byte, 0, MaxRetainedBuffer+1)}
	Put(huge) // must be dropped, not retained
	if got := Get(); cap(got.B) > MaxRetainedBuffer {
		t.Fatalf("pool retained an oversized buffer (cap %d)", cap(got.B))
	}
}
