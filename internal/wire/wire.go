// Package wire implements the pooled, hand-rolled response encoding
// that keeps the serving tier's wire path as fast as the frozen
// snapshot behind it. The KG read path has been zero-alloc since the
// snapshot freeze (PR 4), but every HTTP response still rented an
// encoder, reflected over struct fields and built intermediate maps in
// encoding/json — at high RPS the wire, not the graph, was the
// allocation hot spot.
//
// The package provides append-style primitives in the strconv.Append*
// idiom: each takes a destination []byte and returns it extended, so a
// whole response is built into one pooled buffer with zero heap
// allocations at steady state. The JSON emitted is byte-identical to
// what encoding/json produces for the same value (same string escaping
// including HTML escaping, same float format, same map-key ordering at
// the call sites) — golden tests in wire_test.go hold every primitive
// to the stdlib's output.
//
// Buffers come from a pool with a bounded recycle capacity: Put drops
// buffers whose capacity grew past MaxRetainedBuffer so one pathological
// response cannot pin memory for the lifetime of the pool.
package wire

import (
	"math"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// MaxRetainedBuffer caps the capacity of buffers returned to the pool.
// A buffer grown past this by one oversized response is dropped for the
// GC instead of pinning its backing array forever.
const MaxRetainedBuffer = 1 << 20

// Buffer is a pooled byte buffer for response encoding. Use Get to
// obtain one, append into B (re-armed to length zero), and Put it back
// when the bytes have been written out.
type Buffer struct {
	B []byte
}

var bufPool = sync.Pool{
	New: func() any { return &Buffer{B: make([]byte, 0, 1024)} },
}

// Get returns a pooled buffer with length reset to zero.
func Get() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// Put recycles the buffer unless it grew past MaxRetainedBuffer.
func Put(b *Buffer) {
	if cap(b.B) > MaxRetainedBuffer {
		return
	}
	bufPool.Put(b)
}

const hexDigits = "0123456789abcdef"

// htmlSafeSet holds the ASCII bytes that encoding/json emits verbatim
// inside a string when HTML escaping is on (the Encoder default): all
// printable ASCII except ", \, <, > and &.
var htmlSafeSet = [utf8.RuneSelf]bool{}

func init() {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		htmlSafeSet[c] = true
	}
	for _, c := range []byte{'"', '\\', '<', '>', '&'} {
		htmlSafeSet[c] = false
	}
}

// AppendString appends s as a JSON string, byte-identical to
// encoding/json with its default HTML escaping: quotes, backslashes and
// control characters are escaped (\b \f \n \r \t get their short
// forms, the rest \u00XX), <, > and & become </>/&,
// invalid UTF-8 bytes become �, and U+2028/U+2029 are escaped for
// JSONP safety.
//
//cosmo:alloc-free
func AppendString(dst []byte, s string) []byte {
	return appendEscaped(dst, s)
}

// AppendStringBytes is AppendString for a byte-slice source (the batch
// request parser hands ids through without materializing strings).
//
//cosmo:alloc-free
func AppendStringBytes(dst []byte, s []byte) []byte {
	return appendEscaped(dst, s)
}

// appendEscaped is the shared escaping core; it mirrors the stdlib's
// appendString over either source type.
func appendEscaped[T string | []byte](dst []byte, src T) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(src); {
		if b := src[i]; b < utf8.RuneSelf {
			if htmlSafeSet[b] {
				i++
				continue
			}
			dst = append(dst, src[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Bytes < 0x20 without a short escape, plus <, > and &.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		// Decode at most UTFMax bytes through a small string conversion
		// that stays on the stack (the stdlib's own idiom).
		n := len(src) - i
		if n > utf8.UTFMax {
			n = utf8.UTFMax
		}
		c, size := utf8.DecodeRuneInString(string(src[i : i+n]))
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, src[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		// U+2028 and U+2029 are valid JSON but break JSONP; the stdlib
		// escapes them unconditionally, so the wire encoder does too.
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, src[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, src[start:]...)
	return append(dst, '"')
}

// AppendInt appends the base-10 representation of v.
//
//cosmo:alloc-free
func AppendInt(dst []byte, v int64) []byte {
	return strconv.AppendInt(dst, v, 10)
}

// AppendUint appends the base-10 representation of v.
//
//cosmo:alloc-free
func AppendUint(dst []byte, v uint64) []byte {
	return strconv.AppendUint(dst, v, 10)
}

// AppendBool appends "true" or "false".
//
//cosmo:alloc-free
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 't', 'r', 'u', 'e')
	}
	return append(dst, 'f', 'a', 'l', 's', 'e')
}

// AppendFloat appends v in encoding/json's float64 format: shortest
// round-trip representation, 'f' form except for magnitudes below 1e-6
// or at/above 1e21 which use 'e' form with a cleaned exponent ("2e-9",
// not "2e-09"). NaN and infinities — which encoding/json rejects with
// an error after the response status is already committed — encode as
// null instead of corrupting the stream.
//
//cosmo:alloc-free
func AppendFloat(dst []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(dst, 'n', 'u', 'l', 'l')
	}
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, v, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		n := len(dst)
		if n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// AppendTime appends t as a JSON string in RFC 3339 format with
// nanoseconds, matching time.Time's MarshalJSON for in-range years.
//
//cosmo:alloc-free
func AppendTime(dst []byte, t time.Time) []byte {
	dst = append(dst, '"')
	dst = t.AppendFormat(dst, time.RFC3339Nano)
	return append(dst, '"')
}
