package wire

import (
	"math"
	"testing"
)

// TestBinaryRoundTrip encodes a frame with the append primitives and
// decodes it with BinReader, pinning the wire contract both ways.
func TestBinaryRoundTrip(t *testing.T) {
	b := AppendBinHeader(nil, BinRelated)
	b = AppendBinString(b, "p:P1")
	b = AppendBinUvarint(b, 2)
	b = AppendBinString(b, "p:P2")
	b = AppendBinStringBytes(b, []byte("dome tent — héllo"))
	b = AppendBinFloat(b, 0.875)
	b = AppendBinUvarint(b, 1)
	b = AppendBinString(b, "camping")
	b = AppendBinString(b, "p:P3")
	b = AppendBinString(b, "")
	b = AppendBinFloat(b, math.Inf(1))
	b = AppendBinUvarint(b, 0)

	r := NewBinReader(b)
	version, tag, err := r.ReadHeader()
	if err != nil || version != BinaryVersion || tag != BinRelated {
		t.Fatalf("ReadHeader = (%d, %d, %v), want (%d, %d, nil)", version, tag, err, BinaryVersion, BinRelated)
	}
	readStr := func(want string) {
		t.Helper()
		s, err := r.ReadString()
		if err != nil || s != want {
			t.Fatalf("ReadString = (%q, %v), want (%q, nil)", s, err, want)
		}
	}
	readUvarint := func(want uint64) {
		t.Helper()
		v, err := r.ReadUvarint()
		if err != nil || v != want {
			t.Fatalf("ReadUvarint = (%d, %v), want (%d, nil)", v, err, want)
		}
	}
	readFloat := func(want float64) {
		t.Helper()
		v, err := r.ReadFloat()
		if err != nil || v != want {
			t.Fatalf("ReadFloat = (%v, %v), want (%v, nil)", v, err, want)
		}
	}
	readStr("p:P1")
	readUvarint(2)
	readStr("p:P2")
	readStr("dome tent — héllo")
	readFloat(0.875)
	readUvarint(1)
	readStr("camping")
	readStr("p:P3")
	readStr("")
	readFloat(math.Inf(1))
	readUvarint(0)
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d after full decode, want 0", r.Remaining())
	}
}

// TestBinaryUvarintBoundaries sweeps varint length boundaries.
func TestBinaryUvarintBoundaries(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 16383, 16384, 1 << 32, math.MaxUint64}
	var b []byte
	for _, v := range vals {
		b = AppendBinUvarint(b, v)
	}
	r := NewBinReader(b)
	for _, want := range vals {
		got, err := r.ReadUvarint()
		if err != nil || got != want {
			t.Fatalf("ReadUvarint = (%d, %v), want (%d, nil)", got, err, want)
		}
	}
}

// TestBinaryTruncation verifies every reader reports ErrBinTruncated on
// short frames instead of panicking or reading garbage.
func TestBinaryTruncation(t *testing.T) {
	full := AppendBinHeader(nil, BinSimilar)
	full = AppendBinString(full, "query text")
	full = AppendBinFloat(full, 1.5)
	for n := 0; n < len(full); n++ {
		r := NewBinReader(full[:n])
		_, _, err := r.ReadHeader()
		if err == nil {
			if _, err = r.ReadString(); err == nil {
				_, err = r.ReadFloat()
			}
		}
		if err == nil {
			t.Fatalf("truncated frame of %d/%d bytes decoded without error", n, len(full))
		}
	}
}
