// Compact binary response format, negotiated per request via the
// Accept header. JSON stays the default and the only format for write
// paths; clients that want the KG read endpoints without JSON parsing
// cost send
//
//	Accept: application/x-cosmo-bin
//
// and receive a length-prefixed little-endian frame instead:
//
//	byte 0    format version (BinaryVersion)
//	byte 1    shape tag (BinIntentions, BinRelated, BinKG, BinSimilar)
//	payload   shape-specific fields, in order, using
//	          - uvarint   for counts and non-negative integers
//	          - str       uvarint byte length + UTF-8 bytes
//	          - f64       IEEE 754 bits, little-endian, 8 bytes
//
// Shapes (field order is the wire contract, documented in DESIGN.md):
//
//	BinIntentions: id str, count uvarint, then per edge:
//	               relation str, intention str, plausible f64,
//	               typical f64, support uvarint
//	BinRelated:    id str, count uvarint, then per product:
//	               product_id str, label str, score f64,
//	               via_count uvarint, via labels str...
//	BinKG:         nodes uvarint, edges uvarint, relations uvarint
//	BinSimilar:    q str, count uvarint, then per match:
//	               id str, label str, score f64
//
// The primitives below are append-style like the JSON side, so binary
// responses share the same pooled-buffer, zero-alloc discipline.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// BinaryContentType is the negotiated media type of the compact binary
// response format.
const BinaryContentType = "application/x-cosmo-bin"

// BinaryVersion is the first byte of every binary frame.
const BinaryVersion = 1

// Binary frame shape tags (second byte of the frame).
const (
	BinIntentions = 1
	BinRelated    = 2
	BinKG         = 3
	BinSimilar    = 4
)

// AppendBinHeader appends the two-byte frame header.
//
//cosmo:alloc-free
func AppendBinHeader(dst []byte, tag byte) []byte {
	return append(dst, BinaryVersion, tag)
}

// AppendBinUvarint appends v as an unsigned varint.
//
//cosmo:alloc-free
func AppendBinUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendBinString appends a length-prefixed string.
//
//cosmo:alloc-free
func AppendBinString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBinStringBytes appends a length-prefixed byte string.
//
//cosmo:alloc-free
func AppendBinStringBytes(dst []byte, s []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBinFloat appends the IEEE 754 bits of v, little-endian.
//
//cosmo:alloc-free
func AppendBinFloat(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// ErrBinTruncated reports a binary frame that ended mid-field.
var ErrBinTruncated = errors.New("wire: truncated binary frame")

// BinReader decodes a binary frame (test and client-side use; the
// serving hot path only encodes).
type BinReader struct {
	b []byte
	i int
}

// NewBinReader wraps a frame. Header validation is the caller's first
// ReadHeader call.
func NewBinReader(b []byte) *BinReader { return &BinReader{b: b} }

// ReadHeader consumes and returns the (version, tag) header.
func (r *BinReader) ReadHeader() (version, tag byte, err error) {
	if len(r.b)-r.i < 2 {
		return 0, 0, ErrBinTruncated
	}
	version, tag = r.b[r.i], r.b[r.i+1]
	r.i += 2
	return version, tag, nil
}

// ReadUvarint consumes one unsigned varint.
func (r *BinReader) ReadUvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.i:])
	if n <= 0 {
		return 0, ErrBinTruncated
	}
	r.i += n
	return v, nil
}

// ReadString consumes one length-prefixed string.
func (r *BinReader) ReadString() (string, error) {
	n, err := r.ReadUvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(r.b)-r.i) < n {
		return "", ErrBinTruncated
	}
	s := string(r.b[r.i : r.i+int(n)])
	r.i += int(n)
	return s, nil
}

// ReadFloat consumes one little-endian float64.
func (r *BinReader) ReadFloat() (float64, error) {
	if len(r.b)-r.i < 8 {
		return 0, ErrBinTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.i:]))
	r.i += 8
	return v, nil
}

// Remaining reports how many bytes are left unread.
func (r *BinReader) Remaining() int { return len(r.b) - r.i }
