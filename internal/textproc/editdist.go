package textproc

// EditDistance returns the Levenshtein distance between a and b, computed
// over runes with O(min(|a|,|b|)) memory. It backs the paper's rule that
// drops generations that merely copy the query, product type, or product
// title (edit distance below a threshold).
func EditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// NormalizedEditDistance returns EditDistance(a,b) divided by the length
// of the longer string, in [0,1]. Identical strings score 0.
func NormalizedEditDistance(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	n := la
	if lb > n {
		n = lb
	}
	if n == 0 {
		return 0
	}
	return float64(EditDistance(a, b)) / float64(n)
}

// TokenOverlap returns the Jaccard overlap between the stemmed content
// token sets of a and b. Used by the similarity filter tests as an
// embedding-free reference measure.
func TokenOverlap(a, b string) float64 {
	sa := map[string]bool{}
	for _, t := range StemAll(ContentTokens(a)) {
		sa[t] = true
	}
	sb := map[string]bool{}
	for _, t := range StemAll(ContentTokens(b)) {
		sb[t] = true
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 0
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}
