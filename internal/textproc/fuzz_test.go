package textproc

import (
	"testing"
	"unicode/utf8"
)

// Fuzz targets double as robustness tests: `go test` runs the seed
// corpus; `go test -fuzz=FuzzTokenize` explores further.

func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "hello world", "cat's toy", "co-buy", "日本語", "\x00\xff",
		"a-", "-a", "''", "1.5 oz.", "USED FOR X",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatal("empty token")
			}
			if !utf8.ValidString(tok) && utf8.ValidString(s) {
				t.Fatalf("invalid UTF-8 token %q from valid input", tok)
			}
		}
		// Idempotence: tokenizing the joined tokens is stable.
		again := Tokenize(Join(toks))
		if len(again) != len(toks) {
			t.Fatalf("not idempotent: %v vs %v", toks, again)
		}
	})
}

func FuzzSplitSentences(f *testing.F) {
	for _, seed := range []string{
		"", "One. Two.", "Dr. Smith went home.", "1.5 liters",
		"no terminator", "!!!", "a.b.c.", "é. ü. ñ.",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sentences := SplitSentences(s)
		for _, sent := range sentences {
			if sent == "" {
				t.Fatal("empty sentence")
			}
		}
		// FirstSentence must agree with SplitSentences.
		first := FirstSentence(s)
		if len(sentences) == 0 && first != "" {
			t.Fatalf("FirstSentence %q but no sentences", first)
		}
		if len(sentences) > 0 && first != sentences[0] {
			t.Fatalf("FirstSentence %q != sentences[0] %q", first, sentences[0])
		}
	})
}

func FuzzEditDistance(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "abc")
	f.Add("日本", "日本語")
	f.Fuzz(func(t *testing.T, a, b string) {
		d := EditDistance(a, b)
		if d != EditDistance(b, a) {
			t.Fatal("not symmetric")
		}
		la, lb := len([]rune(a)), len([]rune(b))
		hi := la
		if lb > hi {
			hi = lb
		}
		if d > hi {
			t.Fatalf("distance %d exceeds max length %d", d, hi)
		}
		if a == b && d != 0 {
			t.Fatal("identical strings nonzero distance")
		}
	})
}

func FuzzPerplexity(f *testing.F) {
	f.Add("used for camping")
	f.Add("")
	f.Add("\x00 control")
	f.Fuzz(func(t *testing.T, s string) {
		m := trainedLM()
		p := m.Perplexity(s)
		if p < 0 {
			t.Fatalf("negative perplexity %v", p)
		}
	})
}
