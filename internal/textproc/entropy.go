package textproc

import "math"

// Entropy returns the Shannon entropy (bits) of the distribution implied
// by counts. Zero counts are ignored.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// CooccurrenceStats tracks, for each knowledge string, the set of distinct
// contexts (products or queries) it was generated for. The paper identifies
// generic knowledge ("used for the same reason") by combining frequency and
// entropy: generic strings co-occur with many distinct contexts rather than
// specific ones.
type CooccurrenceStats struct {
	counts map[string]map[string]int
	total  map[string]int
}

// NewCooccurrenceStats returns an empty tracker.
func NewCooccurrenceStats() *CooccurrenceStats {
	return &CooccurrenceStats{
		counts: map[string]map[string]int{},
		total:  map[string]int{},
	}
}

// Observe records one generation of knowledge string k for context c.
func (s *CooccurrenceStats) Observe(k, c string) {
	m := s.counts[k]
	if m == nil {
		m = map[string]int{}
		s.counts[k] = m
	}
	m[c]++
	s.total[k]++
}

// Frequency returns how many times k was generated (over all contexts).
func (s *CooccurrenceStats) Frequency(k string) int { return s.total[k] }

// ContextEntropy returns the entropy (bits) of the context distribution
// for k. High entropy means k spreads evenly over many contexts — a
// hallmark of generic knowledge.
func (s *CooccurrenceStats) ContextEntropy(k string) float64 {
	m := s.counts[k]
	if len(m) == 0 {
		return 0
	}
	counts := make([]int, 0, len(m))
	for _, c := range m {
		counts = append(counts, c)
	}
	return Entropy(counts)
}

// DistinctContexts returns the number of distinct contexts k appeared with.
func (s *CooccurrenceStats) DistinctContexts(k string) int {
	return len(s.counts[k])
}

// IsGeneric applies the paper's frequency+entropy test: k is generic if it
// was generated at least minFreq times AND its context entropy is at least
// minEntropy bits (it appears broadly rather than with specific contexts).
func (s *CooccurrenceStats) IsGeneric(k string, minFreq int, minEntropy float64) bool {
	return s.Frequency(k) >= minFreq && s.ContextEntropy(k) >= minEntropy
}

// Keys returns all observed knowledge strings (order unspecified).
func (s *CooccurrenceStats) Keys() []string {
	out := make([]string, 0, len(s.counts))
	for k := range s.counts {
		out = append(out, k)
	}
	return out
}
