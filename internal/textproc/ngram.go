package textproc

import (
	"math"
	"strings"
)

// NgramLM is a trigram language model with stupid-backoff smoothing. It is
// the reproduction's substitute for the GPT-2 perplexity filter in the
// paper's coarse-grained filtering stage: trained on well-formed knowledge
// strings, it assigns markedly higher perplexity to truncated or malformed
// generations, and a tuned threshold removes them.
type NgramLM struct {
	uni   map[string]int
	bi    map[string]int
	tri   map[string]int
	total int
	vocab int
	// backoff is the stupid-backoff discount (0.4 in the original paper
	// by Brants et al.; kept configurable for tests).
	backoff float64
}

const (
	bosToken = "<s>"
	eosToken = "</s>"
	oovToken = "<unk>"
)

// NewNgramLM returns an empty model with the standard 0.4 backoff factor.
func NewNgramLM() *NgramLM {
	return &NgramLM{
		uni:     map[string]int{},
		bi:      map[string]int{},
		tri:     map[string]int{},
		backoff: 0.4,
	}
}

// Train adds one sentence to the model.
func (m *NgramLM) Train(sentence string) {
	toks := Tokenize(sentence)
	if len(toks) == 0 {
		return
	}
	seq := make([]string, 0, len(toks)+3)
	seq = append(seq, bosToken, bosToken)
	seq = append(seq, toks...)
	seq = append(seq, eosToken)
	for i := 2; i < len(seq); i++ {
		w := seq[i]
		if m.uni[w] == 0 {
			m.vocab++
		}
		m.uni[w]++
		m.total++
		m.bi[seq[i-1]+" "+w]++
		m.tri[seq[i-2]+" "+seq[i-1]+" "+w]++
	}
	// Count context unigrams/bigrams for denominators.
	for i := 1; i < len(seq); i++ {
		m.uni[seq[i-1]] += 0 // context keys exist implicitly via counts below
	}
}

// TrainAll trains on every sentence.
func (m *NgramLM) TrainAll(sentences []string) {
	for _, s := range sentences {
		m.Train(s)
	}
}

// prob returns the stupid-backoff score of w given the two preceding
// tokens. It is a score, not a normalized probability, which is fine for
// thresholding perplexity-like quantities.
func (m *NgramLM) prob(w2, w1, w string) float64 {
	if c := m.tri[w2+" "+w1+" "+w]; c > 0 {
		if d := m.bi[w2+" "+w1]; d > 0 {
			return float64(c) / float64(d)
		}
	}
	if c := m.bi[w1+" "+w]; c > 0 {
		if d := m.uni[w1]; d > 0 {
			return m.backoff * float64(c) / float64(d)
		}
	}
	if c := m.uni[w]; c > 0 {
		return m.backoff * m.backoff * float64(c) / float64(m.total)
	}
	// OOV: uniform over an extended vocabulary.
	return m.backoff * m.backoff / float64(m.total+m.vocab+1)
}

// LogProb returns the total natural-log score of the sentence.
func (m *NgramLM) LogProb(sentence string) float64 {
	toks := Tokenize(sentence)
	seq := make([]string, 0, len(toks)+3)
	seq = append(seq, bosToken, bosToken)
	seq = append(seq, toks...)
	seq = append(seq, eosToken)
	lp := 0.0
	for i := 2; i < len(seq); i++ {
		lp += math.Log(m.prob(seq[i-2], seq[i-1], seq[i]))
	}
	return lp
}

// Perplexity returns exp(-LogProb/N) where N counts the scored tokens
// (words plus the end marker). Lower is better. Empty input returns +Inf.
func (m *NgramLM) Perplexity(sentence string) float64 {
	toks := Tokenize(sentence)
	n := len(toks) + 1
	if len(toks) == 0 {
		return math.Inf(1)
	}
	return math.Exp(-m.LogProb(sentence) / float64(n))
}

// VocabSize returns the number of distinct trained unigram types.
func (m *NgramLM) VocabSize() int { return m.vocab }

// KnownFraction returns the fraction of tokens in sentence that are in
// the model vocabulary; a cheap well-formedness signal used in tests.
func (m *NgramLM) KnownFraction(sentence string) float64 {
	toks := Tokenize(sentence)
	if len(toks) == 0 {
		return 0
	}
	known := 0
	for _, t := range toks {
		if m.uni[t] > 0 {
			known++
		}
	}
	return float64(known) / float64(len(toks))
}

// TruncateWords returns the first n words of s joined by spaces; used by
// the teacher-LLM noise model to fabricate incomplete generations.
func TruncateWords(s string, n int) string {
	f := strings.Fields(s)
	if n >= len(f) {
		return s
	}
	return strings.Join(f[:n], " ")
}
