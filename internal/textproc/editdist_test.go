package textproc

import (
	"testing"
	"testing/quick"
)

func TestEditDistanceBasic(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"a", "b", 1},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		return EditDistance(a, b) == EditDistance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEditDistanceIdentityProperty(t *testing.T) {
	f := func(a string) bool { return EditDistance(a, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEditDistanceTriangleProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEditDistanceBoundedProperty(t *testing.T) {
	f := func(a, b string) bool {
		d := EditDistance(a, b)
		la, lb := len([]rune(a)), len([]rune(b))
		hi := la
		if lb > hi {
			hi = lb
		}
		lo := la - lb
		if lo < 0 {
			lo = -lo
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizedEditDistance(t *testing.T) {
	if got := NormalizedEditDistance("", ""); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := NormalizedEditDistance("abcd", "abcd"); got != 0 {
		t.Errorf("identical = %v", got)
	}
	if got := NormalizedEditDistance("abcd", "wxyz"); got != 1 {
		t.Errorf("disjoint = %v", got)
	}
}

func TestTokenOverlap(t *testing.T) {
	if got := TokenOverlap("walking the dog", "walk a dog"); got != 1.0 {
		t.Errorf("stems should fully overlap, got %v", got)
	}
	if got := TokenOverlap("camera lens", "hiking boots"); got != 0 {
		t.Errorf("disjoint should be 0, got %v", got)
	}
}

func BenchmarkEditDistance(b *testing.B) {
	s1 := "customers bought them together because they provide protection for the camera"
	s2 := "capable of providing protection for camera and screen"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EditDistance(s1, s2)
	}
}
