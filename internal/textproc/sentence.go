package textproc

import "strings"

// abbreviations that should not terminate a sentence when followed by '.'.
var abbreviations = map[string]bool{
	"mr": true, "mrs": true, "ms": true, "dr": true, "st": true,
	"vs": true, "etc": true, "e.g": true, "i.e": true, "inc": true,
	"oz": true, "fl": true, "pkg": true, "no": true, "approx": true,
}

// SplitSentences segments text into sentences. It is the reproduction's
// substitute for the nltk sentence segmenter used by the paper's
// rule-based filter: the first sentence of an LLM generation is extracted
// and the rest discarded.
func SplitSentences(text string) []string {
	var sentences []string
	var b strings.Builder
	runes := []rune(text)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		b.WriteRune(r)
		if r != '.' && r != '!' && r != '?' {
			continue
		}
		// Look back for abbreviation before '.'.
		if r == '.' {
			cur := strings.ToLower(strings.TrimSpace(b.String()))
			cur = strings.TrimSuffix(cur, ".")
			if j := strings.LastIndexAny(cur, " \t"); j >= 0 {
				cur = cur[j+1:]
			}
			if abbreviations[cur] {
				continue
			}
			// Decimal number like "2.5".
			if i > 0 && i+1 < len(runes) && isDigit(runes[i-1]) && isDigit(runes[i+1]) {
				continue
			}
		}
		// Sentence boundary requires following space+capital, end of text,
		// or a newline.
		if i+1 >= len(runes) || isBoundaryFollow(runes, i+1) {
			if s := strings.TrimSpace(b.String()); s != "" {
				sentences = append(sentences, s)
			}
			b.Reset()
		}
	}
	if s := strings.TrimSpace(b.String()); s != "" {
		sentences = append(sentences, s)
	}
	return sentences
}

func isBoundaryFollow(runes []rune, i int) bool {
	// Skip closing quotes/brackets.
	for i < len(runes) && (runes[i] == '"' || runes[i] == '\'' || runes[i] == ')') {
		i++
	}
	if i >= len(runes) {
		return true
	}
	return runes[i] == ' ' || runes[i] == '\n' || runes[i] == '\t'
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }

// FirstSentence returns the first sentence of text, or "" if text is blank.
func FirstSentence(text string) string {
	ss := SplitSentences(text)
	if len(ss) == 0 {
		return ""
	}
	return ss[0]
}

// LooksComplete applies the linguistic completeness heuristics from the
// paper's coarse-grained rule filter: a knowledge string must contain at
// least two tokens, must not end mid-word (trailing comma, conjunction,
// preposition, or article), and must contain at least one non-stopword.
func LooksComplete(s string) bool {
	toks := Tokenize(s)
	if len(toks) < 2 {
		return false
	}
	last := toks[len(toks)-1]
	switch last {
	case "and", "or", "but", "the", "a", "an", "of", "to", "for", "with",
		"in", "on", "at", "by", "because", "is", "are", "that", "which":
		return false
	}
	if strings.HasSuffix(strings.TrimSpace(s), ",") {
		return false
	}
	content := 0
	for _, t := range toks {
		if !stopwords[t] {
			content++
		}
	}
	return content >= 1
}
