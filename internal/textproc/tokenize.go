// Package textproc provides the text-processing substrate used across the
// COSMO pipeline: tokenization, sentence segmentation, edit distance,
// lightweight stemming, entropy statistics, and an n-gram language model
// used for perplexity-based filtering (the paper's GPT-2 substitute).
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase word tokens. Punctuation separates
// tokens and is dropped, except that intra-word apostrophes and hyphens
// are preserved ("cat's", "co-buy").
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	runes := []rune(s)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case (r == '\'' || r == '-') && b.Len() > 0 && i+1 < len(runes) &&
			(unicode.IsLetter(runes[i+1]) || unicode.IsDigit(runes[i+1])):
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Join is the inverse-ish of Tokenize: join tokens with single spaces.
func Join(tokens []string) string { return strings.Join(tokens, " ") }

// NormalizeSpace collapses runs of whitespace into single spaces and trims.
func NormalizeSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// stopwords is a small English stopword list tuned for e-commerce
// knowledge strings ("used for walking the dog" → content words
// "used walking dog" minus relation markers).
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "to": true, "in": true,
	"on": true, "for": true, "with": true, "and": true, "or": true,
	"is": true, "are": true, "be": true, "been": true, "being": true,
	"it": true, "its": true, "they": true, "them": true, "their": true,
	"this": true, "that": true, "these": true, "those": true,
	"at": true, "by": true, "as": true, "was": true, "were": true,
	"because": true, "so": true, "can": true, "will": true, "would": true,
}

// IsStopword reports whether the (lowercase) token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// ContentTokens returns the tokens of s with stopwords removed.
func ContentTokens(s string) []string {
	toks := Tokenize(s)
	out := toks[:0]
	for _, t := range toks {
		if !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// Stem applies a tiny suffix-stripping stemmer (a Porter-lite) adequate
// for matching inflected forms of e-commerce vocabulary
// ("protects" / "protecting" / "protection" → "protect").
func Stem(tok string) string {
	t := tok
	for _, suf := range []string{"'s", "'"} {
		t = strings.TrimSuffix(t, suf)
	}
	rules := []struct{ suffix, replace string }{
		{"ations", "ate"}, {"ation", "ate"}, {"nesses", "ness"},
		{"ements", "ement"}, {"ings", ""}, {"ing", ""},
		{"ies", "y"}, {"ied", "y"}, {"edly", ""}, {"eds", ""},
		{"ed", ""}, {"es", ""}, {"s", ""},
	}
	for _, r := range rules {
		if strings.HasSuffix(t, r.suffix) && len(t)-len(r.suffix) >= 3 {
			return t[:len(t)-len(r.suffix)] + r.replace
		}
	}
	return t
}

// StemAll stems every token.
func StemAll(tokens []string) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = Stem(t)
	}
	return out
}
