package textproc

import (
	"strings"
	"testing"
)

func TestSplitSentencesBasic(t *testing.T) {
	ss := SplitSentences("They are used for hiking. They also keep feet dry! Do you agree?")
	if len(ss) != 3 {
		t.Fatalf("got %d sentences: %v", len(ss), ss)
	}
	if ss[0] != "They are used for hiking." {
		t.Errorf("first sentence = %q", ss[0])
	}
}

func TestSplitSentencesAbbreviation(t *testing.T) {
	ss := SplitSentences("Dr. Smith bought 2.5 oz. of tea. It was good.")
	if len(ss) != 2 {
		t.Fatalf("got %d sentences: %v", len(ss), ss)
	}
}

func TestSplitSentencesDecimal(t *testing.T) {
	ss := SplitSentences("The bottle holds 1.5 liters of water.")
	if len(ss) != 1 {
		t.Fatalf("decimal split wrongly: %v", ss)
	}
}

func TestSplitSentencesNoTerminator(t *testing.T) {
	ss := SplitSentences("used for walking the dog")
	if len(ss) != 1 || ss[0] != "used for walking the dog" {
		t.Fatalf("got %v", ss)
	}
}

func TestSplitSentencesEmpty(t *testing.T) {
	if ss := SplitSentences(""); len(ss) != 0 {
		t.Fatalf("got %v", ss)
	}
	if ss := SplitSentences("   \n  "); len(ss) != 0 {
		t.Fatalf("got %v", ss)
	}
}

func TestFirstSentence(t *testing.T) {
	got := FirstSentence("capable of holding snacks. 2. used for parties.")
	if got != "capable of holding snacks." {
		t.Errorf("got %q", got)
	}
	if FirstSentence("") != "" {
		t.Error("empty input should give empty first sentence")
	}
}

func TestLooksComplete(t *testing.T) {
	complete := []string{
		"used for walking the dog",
		"capable of holding snacks",
		"they keep the baby's feet dry",
	}
	for _, s := range complete {
		if !LooksComplete(s) {
			t.Errorf("%q should look complete", s)
		}
	}
	incomplete := []string{
		"used for the",
		"capable of",
		"they are good because",
		"nice and",
		"used for walking the dog and",
		"dog",
		"",
		"they can be used with,",
	}
	for _, s := range incomplete {
		if LooksComplete(s) {
			t.Errorf("%q should look incomplete", s)
		}
	}
}

func TestSplitSentencesReconstructs(t *testing.T) {
	text := "First one. Second one! Third one?"
	ss := SplitSentences(text)
	joined := strings.Join(ss, " ")
	if joined != text {
		t.Errorf("reconstruction mismatch: %q vs %q", joined, text)
	}
}
