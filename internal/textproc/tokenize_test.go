package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"cat's toy", []string{"cat's", "toy"}},
		{"co-buy behavior", []string{"co-buy", "behavior"}},
		{"", nil},
		{"   ", nil},
		{"USB-C 2.0 cable", []string{"usb-c", "2", "0", "cable"}},
		{"dog-", []string{"dog"}},
		{"'quoted'", []string{"quoted"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeLowercases(t *testing.T) {
	for _, tok := range Tokenize("MIXED Case TOKENS Here") {
		if tok != strings.ToLower(tok) {
			t.Errorf("token %q not lowercase", tok)
		}
	}
}

func TestTokenizeIdempotentProperty(t *testing.T) {
	// Tokenizing the joined tokens yields the same tokens.
	f := func(s string) bool {
		first := Tokenize(s)
		second := Tokenize(Join(first))
		return reflect.DeepEqual(first, second)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeSpace(t *testing.T) {
	if got := NormalizeSpace("  a \t b\n\nc  "); got != "a b c" {
		t.Errorf("got %q", got)
	}
}

func TestContentTokens(t *testing.T) {
	got := ContentTokens("used for walking the dog")
	want := []string{"used", "walking", "dog"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"protects":   "protect",
		"protecting": "protect",
		"walked":     "walk",
		"walking":    "walk",
		"dogs":       "dog",
		"dog":        "dog",
		"batteries":  "battery",
		"it":         "it", // too short to strip
		"cat's":      "cat",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemAllLength(t *testing.T) {
	in := []string{"walking", "dogs", "fast"}
	out := StemAll(in)
	if len(out) != len(in) {
		t.Fatalf("length changed: %d vs %d", len(out), len(in))
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") {
		t.Error("'the' should be a stopword")
	}
	if IsStopword("camera") {
		t.Error("'camera' should not be a stopword")
	}
}

func TestStemNeverEmptyProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if Stem(tok) == "" && tok != "" && tok != "'" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
