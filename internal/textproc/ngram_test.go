package textproc

import (
	"math"
	"testing"
)

var trainingSentences = []string{
	"used for walking the dog",
	"used for walking in the park",
	"capable of holding snacks",
	"capable of providing protection for the camera",
	"used for peeling potatoes",
	"used to build a fence",
	"used for biking on trails",
	"capable of keeping the feet dry",
	"used for sharpening scissors",
	"used to protect the headset",
	"used for stamping on fabric",
	"capable of hydrating the skin",
	"used for writing down important information",
	"used to make potato chips",
	"capable of tracking calories burned",
	"used for wedding party",
	"capable of flying in the air",
	"used for the dog to play",
}

func trainedLM() *NgramLM {
	m := NewNgramLM()
	m.TrainAll(trainingSentences)
	return m
}

func TestPerplexityOrdersWellFormedFirst(t *testing.T) {
	m := trainedLM()
	good := m.Perplexity("used for walking the dog")
	garbled := m.Perplexity("dog the walking for used")
	if good >= garbled {
		t.Errorf("good=%v should beat garbled=%v", good, garbled)
	}
	oov := m.Perplexity("zzyzx qwrk flrm")
	if good >= oov {
		t.Errorf("good=%v should beat OOV=%v", good, oov)
	}
}

func TestPerplexityPenalizesTruncation(t *testing.T) {
	m := trainedLM()
	full := m.Perplexity("capable of providing protection for the camera")
	// Truncated mid-phrase: "capable of providing protection for the".
	trunc := m.Perplexity(TruncateWords("capable of providing protection for the camera", 6))
	if full >= trunc {
		t.Errorf("full=%v should beat truncated=%v", full, trunc)
	}
}

func TestPerplexityEmptyIsInf(t *testing.T) {
	m := trainedLM()
	if p := m.Perplexity(""); !math.IsInf(p, 1) {
		t.Errorf("empty perplexity = %v, want +Inf", p)
	}
}

func TestPerplexityPositive(t *testing.T) {
	m := trainedLM()
	for _, s := range trainingSentences {
		if p := m.Perplexity(s); p <= 0 || math.IsNaN(p) {
			t.Errorf("Perplexity(%q) = %v", s, p)
		}
	}
}

func TestLogProbMonotoneInLength(t *testing.T) {
	m := trainedLM()
	// Adding tokens can only decrease total log-prob (probs < 1... scores <= 1).
	short := m.LogProb("used for walking")
	long := m.LogProb("used for walking the dog in the park every day")
	if long > short {
		t.Errorf("longer sequence should not have higher logprob: %v > %v", long, short)
	}
}

func TestKnownFraction(t *testing.T) {
	m := trainedLM()
	if f := m.KnownFraction("used for walking the dog"); f != 1.0 {
		t.Errorf("all-known = %v", f)
	}
	if f := m.KnownFraction("zzyzx qwrk"); f != 0.0 {
		t.Errorf("all-unknown = %v", f)
	}
	if f := m.KnownFraction(""); f != 0 {
		t.Errorf("empty = %v", f)
	}
}

func TestVocabSize(t *testing.T) {
	m := NewNgramLM()
	m.Train("a b c")
	m.Train("a b d")
	// vocab: a b c d </s>
	if got := m.VocabSize(); got != 5 {
		t.Errorf("vocab = %d, want 5", got)
	}
}

func TestTruncateWords(t *testing.T) {
	if got := TruncateWords("a b c d", 2); got != "a b" {
		t.Errorf("got %q", got)
	}
	if got := TruncateWords("a b", 5); got != "a b" {
		t.Errorf("got %q", got)
	}
}

func TestEntropy(t *testing.T) {
	if h := Entropy([]int{1, 1}); math.Abs(h-1.0) > 1e-12 {
		t.Errorf("uniform-2 entropy = %v, want 1", h)
	}
	if h := Entropy([]int{4}); h != 0 {
		t.Errorf("point mass entropy = %v, want 0", h)
	}
	if h := Entropy(nil); h != 0 {
		t.Errorf("empty entropy = %v, want 0", h)
	}
	if h := Entropy([]int{1, 1, 1, 1}); math.Abs(h-2.0) > 1e-12 {
		t.Errorf("uniform-4 entropy = %v, want 2", h)
	}
}

func TestCooccurrenceGenericDetection(t *testing.T) {
	s := NewCooccurrenceStats()
	// Generic knowledge appears with many distinct contexts.
	for _, ctx := range []string{"p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8"} {
		s.Observe("used for the same reason", ctx)
	}
	// Specific knowledge appears with one context repeatedly.
	for i := 0; i < 8; i++ {
		s.Observe("used for peeling potatoes", "peeler")
	}
	if !s.IsGeneric("used for the same reason", 5, 2.0) {
		t.Error("broad knowledge should be flagged generic")
	}
	if s.IsGeneric("used for peeling potatoes", 5, 2.0) {
		t.Error("specific knowledge should not be flagged generic")
	}
	if s.DistinctContexts("used for the same reason") != 8 {
		t.Errorf("distinct contexts = %d", s.DistinctContexts("used for the same reason"))
	}
	if s.Frequency("used for peeling potatoes") != 8 {
		t.Errorf("frequency = %d", s.Frequency("used for peeling potatoes"))
	}
	if len(s.Keys()) != 2 {
		t.Errorf("keys = %v", s.Keys())
	}
}

func BenchmarkPerplexity(b *testing.B) {
	m := trainedLM()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Perplexity("capable of providing protection for the camera")
	}
}
